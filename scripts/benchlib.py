"""Shared plumbing for the repo's JSON report checkers.

check_fleet.py, check_trace.py and check_perf.py all follow the same
shape: load a JSON (or JSONL) artifact, collect invariant failures into
a list, print them with a prefix and exit non-zero if any. This module
is that shape, factored out; the checkers keep only their
domain-specific assertions. Stdlib only, importable because Python puts
the running script's directory on sys.path.
"""

import json
import sys

errors = []


def err(msg):
    """Record one failed invariant; reported by finish()."""
    errors.append(msg)


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def load_jsonl(path):
    """Parse one JSON object per non-blank line; bad lines become errors."""
    rows = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                err(f"{path}:{lineno}: bad JSON: {e}")
    return rows


def finish(ok=None, prefix="error"):
    """Print collected errors (exit code 1) or the success line (0)."""
    if errors:
        for e in errors:
            print(f"{prefix}: {e}", file=sys.stderr)
        return 1
    if ok:
        print(ok)
    return 0
