#!/usr/bin/env python3
"""Schema + invariant checks for xchain's causal-trace exports.

Stdlib only. Validates, for one traced `xchain load` (or `xchain trace`)
run:

  1. the Chrome trace-event JSON shape (--chrome): loadable structure,
     known phase kinds, one matched "f" per flow start "s", slices with
     non-negative durations;
  2. the happens-before DAG dump (--dag): one JSON object per line,
     consecutive ids, edges strictly forward (acyclic by construction),
     every deliver node descending from exactly one send via exactly one
     message edge;
  3. the blame decomposition embedded in a load report (--report): the
     per-category gaps sum exactly to the end-to-end total, for both the
     full population and the p99 tail.

Exit 0 when everything holds; a diagnostic and exit 1 otherwise.
"""

import argparse
import sys

from benchlib import err, finish, load_json, load_jsonl

PHASES = {"M", "i", "s", "f", "X"}


def check_chrome(path):
    doc = load_json(path)
    if doc.get("displayTimeUnit") != "ms":
        err(f"{path}: displayTimeUnit missing or not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        err(f"{path}: traceEvents missing or empty")
        return
    flows = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in PHASES:
            err(f"{path}: event {i} has unknown phase {ph!r}")
            continue
        if ph != "M" and not isinstance(e.get("ts"), int):
            err(f"{path}: event {i} ({ph}) lacks an integer ts")
        if ph in ("i", "s", "f", "X") and "name" not in e:
            err(f"{path}: event {i} ({ph}) lacks a name")
        if ph in ("s", "f"):
            flows.setdefault(e.get("id"), []).append(ph)
        if ph == "X":
            if not isinstance(e.get("dur"), int) or e["dur"] < 0:
                err(f"{path}: slice {i} has bad duration {e.get('dur')!r}")
    for fid, phs in sorted(flows.items(), key=lambda kv: str(kv[0])):
        if sorted(phs) != ["f", "s"]:
            err(f"{path}: flow {fid!r} is unpaired: {phs}")
    print(f"{path}: {len(events)} events, {len(flows)} flows: ok")


def check_dag(path):
    nodes = []
    for n in load_jsonl(path):
        if n.get("id") != len(nodes):
            err(f"{path}: id {n.get('id')} at position {len(nodes)}: out of order")
        nodes.append(n)
    for n in nodes:
        nid = n["id"]
        preds = n.get("preds", [])
        for p in preds:
            if not (0 <= p["src"] < nid):
                err(f"{path}: node {nid} has non-forward pred {p['src']}")
        if n.get("kind") == "deliver":
            msgs = [p for p in preds if p["kind"] == "message"]
            if len(msgs) != 1:
                err(f"{path}: deliver {nid} has {len(msgs)} message preds")
            elif nodes[msgs[0]["src"]].get("kind") != "send":
                err(f"{path}: deliver {nid} descends from a non-send")
    print(f"{path}: {len(nodes)} nodes: ok")


def check_blame(path):
    doc = load_json(path)
    blame = doc.get("blame")
    if blame is None:
        err(f"{path}: report has no blame section (was --blame passed?)")
        return
    for label, section in (("population", blame), ("tail", blame["tail"])):
        total = section["total"]
        sums = sum(section["by_category"].values())
        if sums != total:
            err(
                f"{path}: {label} blame categories sum to {sums}, "
                f"not the end-to-end total {total}"
            )
    print(
        f"{path}: blame over {blame['payments']} payments "
        f"({blame['total']} ticks) sums exactly: ok"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--chrome", help="Chrome trace-event JSON (--trace-out)")
    ap.add_argument("--dag", help="DAG JSONL dump (--dag-out)")
    ap.add_argument("--report", help="load report JSON with a blame section")
    args = ap.parse_args()
    if not (args.chrome or args.dag or args.report):
        ap.error("nothing to check")
    if args.chrome:
        check_chrome(args.chrome)
    if args.dag:
        check_dag(args.dag)
    if args.report:
        check_blame(args.report)
    sys.exit(finish())


if __name__ == "__main__":
    main()
