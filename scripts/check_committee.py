#!/usr/bin/env python3
"""Schema + invariant checks for BENCH_committee.json (shared notary
committee sweep).

Stdlib only. Validates the report `bench/main.exe` writes:

  1. shape: scale, payments, hops, pipeline, and a non-empty ``sweep``
     of cells with family/size/f/batch, counts, a latency object and
     the committee certificate statistics;
  2. completeness: every cell committed all its payments (a burst of
     payments through one committee must fully drain);
  3. batching: at every committee size present with both a batch-1 and
     a batch-32 cell, the batched decided-payments rate is strictly
     above the unbatched baseline;
  4. batch fill: the largest committee's batch-32 cell assembled at
     least one certificate carrying >= 32 verdicts;
  5. bounded consensus: certificates decide in bounded rounds — total
     rounds across a cell's certificates stay within ROUNDS_SLACK x
     certs (round 0 everywhere means rounds == certs; the slack admits
     an occasional view change without letting unbounded retries pass).

Exit 0 when everything holds; a diagnostic and exit 1 otherwise.
"""

import sys

from benchlib import err, finish, load_json

ROUNDS_SLACK = 2
FILL_TARGET = 32

CELL_INTS = [
    "size",
    "f",
    "batch",
    "committed",
    "decided_cpm",
    "messages",
    "certs",
    "verdicts",
    "max_batch",
    "rounds",
    "cert_lat_sum",
    "cert_lat_max",
]


def check_cell(payments, cell):
    name = (
        f"{cell.get('family')}:{cell.get('size')}"
        f":{cell.get('f')} batch {cell.get('batch')}"
    )
    for k in CELL_INTS:
        v = cell.get(k)
        if not isinstance(v, int) or v < 0:
            err(f"{name}: {k} must be a non-negative int, got {v!r}")
            return None
    lat = cell.get("latency")
    if not isinstance(lat, dict) or not all(
        isinstance(lat.get(k), int) for k in ("p50", "p95", "max")
    ):
        err(f"{name}: latency object missing p50/p95/max ints")
        return None
    if cell["committed"] != payments:
        err(f"{name}: committed {cell['committed']} of {payments} payments")
    if cell["verdicts"] < cell["committed"]:
        err(
            f"{name}: {cell['verdicts']} certified verdicts cannot cover "
            f"{cell['committed']} commits"
        )
    if cell["max_batch"] > cell["batch"]:
        err(
            f"{name}: max_batch {cell['max_batch']} exceeds the "
            f"{cell['batch']}-verdict cap"
        )
    if cell["certs"] > 0 and cell["rounds"] > ROUNDS_SLACK * cell["certs"]:
        err(
            f"{name}: {cell['rounds']} rounds over {cell['certs']} certs — "
            f"consensus is not bounded (want <= {ROUNDS_SLACK}x)"
        )
    if cell["certs"] == 0 and cell["committed"] > 0:
        err(f"{name}: payments committed without any certificate")
    return name


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_committee.json"
    doc = load_json(path)

    if doc.get("scale") not in ("quick", "full"):
        err(f"scale is {doc.get('scale')!r}, want 'quick' or 'full'")
    payments = doc.get("payments")
    if not isinstance(payments, int) or payments < 1:
        err(f"payments must be a positive int, got {payments!r}")
        payments = 0
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        err("sweep missing or empty")
        sweep = []

    by_size = {}
    for cell in sweep:
        if check_cell(payments, cell) is None:
            continue
        by_size.setdefault(cell["size"], {})[cell["batch"]] = cell

    for size, cells in sorted(by_size.items()):
        if 1 in cells and 32 in cells:
            unbatched = cells[1]["decided_cpm"]
            batched = cells[32]["decided_cpm"]
            if batched <= unbatched:
                err(
                    f"size {size}: batched rate {batched} must strictly "
                    f"beat unbatched {unbatched}"
                )

    if by_size:
        largest = max(by_size)
        cell = by_size[largest].get(32)
        if cell is None:
            err(f"largest committee ({largest}) has no batch-32 cell")
        elif cell["max_batch"] < FILL_TARGET:
            err(
                f"largest committee ({largest}) filled only "
                f"{cell['max_batch']}-verdict certificates, want >= "
                f"{FILL_TARGET}"
            )

    return finish(ok=f"{path}: committee sweep report OK", prefix="FAIL")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
