#!/usr/bin/env python3
"""Schema + invariant checks for BENCH_routing.json (payment-graph routing).

Stdlib only. Validates the report `bench/main.exe` writes:

  1. shape: scale and a non-empty per-workload map where every entry
     carries a ``routing`` block (topology, strategy, max_splits,
     offered/committed value, instance counters) plus the usual load
     report fields;
  2. safety: no workload recorded protocol violations and every ledger
     audit passed (``conservation_ok: true``) — liquidity is consumed
     and swept back, never created;
  3. arithmetic: committed_value <= offered_value, settled instances
     never exceed admitted instances, and a payment count reconciles
     with committed + aborted + rejected + stuck;
  4. the headline claim: on the constrained diamond, single-path
     routing strands at least STRAND_PCT% of the offered value while
     multi-path splitting commits strictly more.

Exit 0 when everything holds; a diagnostic and exit 1 otherwise.
"""

import sys

from benchlib import err, finish, load_json

STRAND_PCT = 30

ROUTING_INT_FIELDS = [
    "max_splits",
    "offered_value",
    "committed_value",
    "paths_selected",
    "split_payments",
    "partial_payments",
    "no_route_rejections",
    "instances",
    "instances_committed",
    "instances_settled",
]


def check_workload(name, wl):
    """Validate one workload entry; return its routing block (or None)."""
    if wl.get("conservation_ok") is not True:
        err(f"{name}: ledger audit failed (conservation_ok != true)")
    if wl.get("violated", 0) != 0:
        err(f"{name}: {wl.get('violated')} protocol violations recorded")
    payments = wl.get("payments")
    parts = [wl.get(k, 0) for k in ("committed", "aborted", "rejected", "stuck")]
    if isinstance(payments, int) and payments != sum(parts):
        err(f"{name}: payments {payments} != committed+aborted+rejected+stuck {sum(parts)}")

    routing = wl.get("routing")
    if not isinstance(routing, dict):
        err(f"{name}: routing block missing")
        return None
    topo = routing.get("topology", "")
    if not isinstance(topo, str) or not topo.startswith("graph:"):
        err(f"{name}: topology {topo!r} is not canonical graph:N;... form")
    if routing.get("strategy") not in ("shortest", "round-robin"):
        err(f"{name}: strategy {routing.get('strategy')!r} unknown")
    for k in ROUTING_INT_FIELDS:
        v = routing.get(k)
        if not isinstance(v, int) or v < 0:
            err(f"{name}: routing.{k} must be a non-negative int, got {v!r}")
            return None
    if routing["committed_value"] > routing["offered_value"]:
        err(
            f"{name}: committed_value {routing['committed_value']} exceeds "
            f"offered_value {routing['offered_value']}"
        )
    if routing["instances_settled"] > routing["instances"]:
        err(
            f"{name}: settled instances {routing['instances_settled']} exceed "
            f"admitted {routing['instances']}"
        )
    if routing["instances_committed"] > routing["instances_settled"]:
        err(
            f"{name}: committed instances {routing['instances_committed']} "
            f"exceed settled {routing['instances_settled']}"
        )
    return routing


def check_diamond(workloads):
    """Multi-path must strictly beat single-path on the constrained pair."""
    single = workloads.get("diamond_single", {}).get("routing")
    multi = workloads.get("diamond_multi", {}).get("routing")
    if not single or not multi:
        err("constrained pair diamond_single/diamond_multi missing")
        return
    offered = single["offered_value"]
    if offered < 1 or offered != multi["offered_value"]:
        err(
            f"diamond pair offered values diverge: {offered} vs "
            f"{multi['offered_value']}"
        )
        return
    stranded = offered - single["committed_value"]
    if 100 * stranded < STRAND_PCT * offered:
        err(
            f"diamond_single strands {stranded}/{offered} "
            f"({100 * stranded // offered}%), want >= {STRAND_PCT}%"
        )
    if multi["committed_value"] <= single["committed_value"]:
        err(
            f"diamond_multi committed {multi['committed_value']} does not "
            f"beat single-path {single['committed_value']}"
        )
    if multi["max_splits"] <= single["max_splits"]:
        err(
            f"diamond pair is not a split contrast: max_splits "
            f"{single['max_splits']} vs {multi['max_splits']}"
        )


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_routing.json"
    doc = load_json(path)

    if doc.get("scale") not in ("quick", "full"):
        err(f"scale is {doc.get('scale')!r}, want 'quick' or 'full'")
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        err("workloads missing or empty")
        workloads = {}

    for name, wl in sorted(workloads.items()):
        check_workload(name, wl)

    if workloads:
        check_diamond(workloads)

    return finish(ok=f"{path}: routing report OK", prefix="FAIL")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
