#!/usr/bin/env python3
"""Invariant checker for the runtime-verification artifacts.

Validates the two deterministic sinks the online monitor writes:

* ``--series FILE`` — a ``--series-out`` telemetry series: one JSON
  object per line, each with an integer ``t`` (sim-time, nondecreasing)
  plus integer-valued columns that stay the same set on every row, and
  a trailing ``{"series":{"rows":N,"interval":I}}`` meta line whose
  ``rows`` equals the number of data rows and whose ``interval`` is
  positive.

* ``--bundle FILE`` — a ``--bundle-out`` forensic bundle: a single
  ``{"bundle":{...}}`` object carrying reason (violation | stuck), the
  first-breach property/detail, a breach sim-time ``at >= 0``, a repro
  line that starts with ``xchain ``, and a flight-ring whose window is
  time-ordered and consistent with its recorded/dropped/capacity
  counters. A violation bundle must name a property; a stuck bundle
  uses ``-``.

Both flags are repeatable and may be mixed. Exit 0 when every artifact
holds, a diagnostic per failed invariant and exit 1 otherwise. Stdlib
only (benchlib).
"""

import sys

from benchlib import err, errors, finish, load_json, load_jsonl

RING_KINDS = {"deliver", "fire", "crash", "recover"}


def check_series(path):
    rows = load_jsonl(path)
    if not rows:
        err(f"{path}: empty series (not even a meta line)")
        return
    meta, data = rows[-1], rows[:-1]
    if set(meta) != {"series"} or not isinstance(meta["series"], dict):
        err(f"{path}: last line is not the series meta object")
        return
    m = meta["series"]
    if m.get("rows") != len(data):
        err(f"{path}: meta rows={m.get('rows')!r} but {len(data)} data rows")
    if not (isinstance(m.get("interval"), int) and m["interval"] > 0):
        err(f"{path}: meta interval must be a positive int, got "
            f"{m.get('interval')!r}")
    prev_t = -1
    columns = None
    for lineno, row in enumerate(data, 1):
        t = row.get("t")
        if not isinstance(t, int) or t < 0:
            err(f"{path}:{lineno}: t must be a nonnegative int, got {t!r}")
            continue
        if t < prev_t:
            err(f"{path}:{lineno}: sim-time goes backwards ({t} < {prev_t})")
        prev_t = t
        cols = frozenset(k for k in row if k != "t")
        if columns is None:
            columns = cols
        elif cols != columns:
            err(f"{path}:{lineno}: column set changed mid-series")
        bad = [k for k in cols if not isinstance(row[k], int)]
        if bad:
            err(f"{path}:{lineno}: non-integer columns {sorted(bad)}")


def check_bundle(path):
    doc = load_json(path)
    if not isinstance(doc, dict) or set(doc) != {"bundle"}:
        err(f"{path}: expected a single {{\"bundle\": ...}} object")
        return
    b = doc["bundle"]
    for key in ("reason", "property", "detail", "at", "repro", "ring"):
        if key not in b:
            err(f"{path}: bundle lacks {key!r}")
    if errors:
        return
    if b["reason"] not in ("violation", "stuck"):
        err(f"{path}: reason must be violation|stuck, got {b['reason']!r}")
    if b["reason"] == "violation" and b["property"] in ("", "-"):
        err(f"{path}: a violation bundle must name the breached property")
    if not (isinstance(b["at"], int) and b["at"] >= 0):
        err(f"{path}: breach time must be a nonnegative int, got {b['at']!r}")
    if not (isinstance(b["repro"], str) and b["repro"].startswith("xchain ")):
        err(f"{path}: repro must be an xchain command line, got {b['repro']!r}")
    ring = b["ring"]
    if not isinstance(ring, dict):
        err(f"{path}: ring must be an object")
        return
    cap = ring.get("capacity")
    recorded = ring.get("recorded")
    dropped = ring.get("dropped")
    window = ring.get("window")
    if not (isinstance(cap, int) and cap > 0):
        err(f"{path}: ring capacity must be positive, got {cap!r}")
        return
    if not isinstance(window, list):
        err(f"{path}: ring window must be an array")
        return
    if len(window) > cap:
        err(f"{path}: window of {len(window)} exceeds capacity {cap}")
    if recorded != len(window) + (dropped or 0):
        err(f"{path}: recorded={recorded!r} != window {len(window)} + "
            f"dropped {dropped!r}")
    prev_t = -1
    for i, e in enumerate(window):
        t = e.get("at")
        if not isinstance(t, int) or t < 0:
            err(f"{path}: window[{i}]: bad sim-time {t!r}")
            continue
        if t < prev_t:
            err(f"{path}: window[{i}]: time goes backwards ({t} < {prev_t})")
        prev_t = t
        if e.get("kind") not in RING_KINDS:
            err(f"{path}: window[{i}]: unknown kind {e.get('kind')!r}")
    if b["reason"] == "violation" and window and b["at"] < window[0]["at"]:
        err(f"{path}: breach at {b['at']} predates the whole ring window")


def main(argv):
    args = argv[1:]
    if not args or len(args) % 2:
        print(f"usage: {argv[0]} (--series FILE | --bundle FILE)...",
              file=sys.stderr)
        return 2
    checked = []
    for flag, path in zip(args[::2], args[1::2]):
        if flag == "--series":
            check_series(path)
        elif flag == "--bundle":
            check_bundle(path)
        else:
            print(f"usage: {argv[0]} (--series FILE | --bundle FILE)...",
                  file=sys.stderr)
            return 2
        checked.append(path)
    return finish(ok=f"{', '.join(checked)}: monitor artifacts hold")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
