#!/usr/bin/env python3
"""Schema + invariant checks for the `xchain hunt` JSON report.

Stdlib only. Validates the coverage-guided search's contract:

  1. shape: a ``hunt`` object with budget / generation / corpus members,
     one corpus entry per distinct signature, generation run counts
     summing to the budget and novel counts summing to the corpus size;
  2. coverage: run with ``--baseline``, the hunt must discover strictly
     more distinct outcome signatures than uniform sampling at the same
     budget and root seed (``signatures > uniform_signatures``) — the
     whole point of searching instead of sampling;
  3. shrinking: every stuck / safety-violation witness carries a shrunk
     plan no larger (in clause count) than the plan that discovered it,
     and a repro line quoting exactly that shrunk plan;
  4. optionally, the ``--repros-out`` file matches the corpus: one line
     per interesting witness, in discovery order.

Exit 0 when everything holds; a diagnostic and exit 1 otherwise.
"""

import sys

from benchlib import err, finish, load_json

INTERESTING = {"stuck", "safety-violation"}
CLASSIFICATIONS = INTERESTING | {"safe-commit", "safe-abort"}


def clauses(plan):
    """Clause count of a one-line plan string ('none' has no clauses)."""
    if plan in ("", "none"):
        return 0
    return len([c for c in plan.split(";") if c.strip()])


def check_entry(i, e):
    cls = e.get("classification")
    if cls not in CLASSIFICATIONS:
        err(f"corpus[{i}]: unknown classification {cls!r}")
        return
    plan = e.get("plan")
    repro = e.get("repro", "")
    if not isinstance(plan, str) or not plan:
        err(f"corpus[{i}]: missing plan")
        return
    if cls in INTERESTING:
        shrunk = e.get("shrunk")
        if not isinstance(shrunk, str):
            err(f"corpus[{i}] ({cls}): no shrunk plan")
            return
        if clauses(shrunk) > clauses(plan):
            err(
                f"corpus[{i}]: shrunk plan has {clauses(shrunk)} clauses, "
                f"original {clauses(plan)}"
            )
        if f"--plan '{shrunk}'" not in repro:
            err(f"corpus[{i}]: repro does not quote the shrunk plan")
        if f"--seed {e.get('seed')}" not in repro:
            err(f"corpus[{i}]: repro does not quote the witness seed")


def main():
    if len(sys.argv) < 2:
        print(
            "usage: check_hunt.py HUNT.json [--repros FILE]", file=sys.stderr
        )
        return 2
    report = load_json(sys.argv[1])
    hunt = report.get("hunt")
    if not isinstance(hunt, dict):
        err("no 'hunt' object in report")
        return finish()

    for field in (
        "budget",
        "gen_size",
        "seed",
        "signatures",
        "uniform_signatures",
        "commits",
        "aborts",
        "stuck",
        "violations",
        "shrink_trials",
        "events",
    ):
        if not isinstance(hunt.get(field), int):
            err(f"hunt.{field} must be an int, got {hunt.get(field)!r}")

    budget = hunt.get("budget", 0)
    gens = hunt.get("generations")
    if not isinstance(gens, list) or not gens:
        err("hunt.generations missing")
        gens = []
    corpus = hunt.get("corpus")
    if not isinstance(corpus, list):
        err("hunt.corpus missing")
        corpus = []

    if sum(g.get("runs", 0) for g in gens) != budget:
        err(f"generation runs do not sum to the budget {budget}")
    if sum(g.get("novel", 0) for g in gens) != len(corpus):
        err("generation novel counts do not sum to the corpus size")
    if hunt.get("signatures") != len(corpus):
        err(
            f"signatures={hunt.get('signatures')} but corpus has "
            f"{len(corpus)} entries"
        )
    sigs = [e.get("signature") for e in corpus]
    if len(set(sigs)) != len(sigs):
        err("corpus contains duplicate signatures")

    uniform = hunt.get("uniform_signatures", -1)
    if uniform < 0:
        err("report lacks a uniform baseline (run hunt with --baseline)")
    elif hunt.get("signatures", 0) <= uniform:
        err(
            f"hunt found {hunt.get('signatures')} signatures, uniform "
            f"sampling found {uniform} at the same budget — search must "
            "strictly beat sampling"
        )

    for i, e in enumerate(corpus):
        check_entry(i, e)

    if len(sys.argv) >= 4 and sys.argv[2] == "--repros":
        with open(sys.argv[3], encoding="utf-8") as f:
            lines = [l.rstrip("\n") for l in f if l.strip()]
        expected = [
            e.get("repro")
            for e in corpus
            if e.get("classification") in INTERESTING
        ]
        if lines != expected:
            err(
                f"repro file has {len(lines)} lines, corpus expects "
                f"{len(expected)} (or order differs)"
            )

    return finish(
        ok=(
            f"check_hunt: {hunt.get('signatures')} signatures "
            f"(uniform {uniform}), "
            f"{sum(1 for e in corpus if e.get('classification') in INTERESTING)}"
            " shrunken repros — all invariants hold"
        )
    )


if __name__ == "__main__":
    sys.exit(main())
