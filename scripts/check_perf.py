#!/usr/bin/env python3
"""Perf-trajectory regression gate over bench/history/trajectory.jsonl.

Every `bench/main.exe` run appends one JSON line: events/sec per
canonical load workload (host wall clock) and minor-heap words per
dispatched event on a profiled canonical run (deterministic), keyed by
git sha, UTC date, host domain count and scale (quick / full).

This gate compares the newest entry against the trailing window (up to
5 preceding entries of the same scale) and fails on

  * a  >20% drop in any workload's events/sec vs the window median
    (generous, because CI hosts are noisy), or
  * a  >10% rise in allocation-per-event vs the window median (tight,
    because the figure is deterministic).

With no prior comparable entries the newest run is recorded as the
baseline and the gate passes. A missing or empty trajectory file is not
an error either — there is nothing to gate yet, so the script says so
and exits 0 (first CI run on a fresh branch, or a wiped history).
Exit 0 when within budget; a diagnostic and exit 1 otherwise. Stdlib
only.
"""

import os
import sys

from benchlib import err, errors, finish, load_jsonl

WINDOW = 5
EPS_DROP = 0.20  # events/sec: >20% below the trailing median fails
ALLOC_RISE = 0.10  # words/event: >10% above the trailing median fails


def median(xs):
    xs = sorted(xs)
    n = len(xs)
    mid = n // 2
    return xs[mid] if n % 2 else (xs[mid - 1] + xs[mid]) / 2


def gate(name, new_val, prior, *, floor=None, ceil=None):
    if not prior:
        return
    base = median(prior)
    if base <= 0:
        err(f"{name}: nonsensical trailing median {base!r}")
        return
    ratio = new_val / base
    if floor is not None and ratio < floor:
        err(
            f"{name}: {new_val:.1f} is a {(1 - ratio) * 100:.0f}% drop from "
            f"the trailing median {base:.1f} (>{(1 - floor) * 100:.0f}% fails)"
        )
    if ceil is not None and ratio > ceil:
        err(
            f"{name}: {new_val:.2f} is a {(ratio - 1) * 100:.0f}% rise over "
            f"the trailing median {base:.2f} (>{(ceil - 1) * 100:.0f}% fails)"
        )


def main(argv):
    path = argv[1] if len(argv) > 1 else "bench/history/trajectory.jsonl"
    if not os.path.exists(path):
        print(f"{path}: no trajectory yet — run bench/main.exe to record "
              f"a baseline; nothing to gate")
        return 0
    entries = load_jsonl(path)
    if errors:
        return finish()
    if not entries:
        print(f"{path}: empty trajectory — run bench/main.exe to record "
              f"a baseline; nothing to gate")
        return 0
    new = entries[-1]
    for key in ("sha", "date", "scale", "host_domains", "events_per_sec",
                "alloc_per_event"):
        if key not in new:
            err(f"{path}: newest entry lacks {key!r}")
    if not isinstance(new.get("events_per_sec"), dict) or not isinstance(
        new.get("alloc_per_event"), dict
    ):
        err(f"{path}: events_per_sec / alloc_per_event must be objects")
    if errors:
        return finish()

    window = [e for e in entries[:-1] if e.get("scale") == new["scale"]]
    window = window[-WINDOW:]
    if not window:
        print(
            f"{path}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
            f"no prior scale={new['scale']!r} runs to compare — "
            f"baseline recorded for {new['sha'][:12]}"
        )
        return 0

    for name, val in sorted(new["events_per_sec"].items()):
        prior = [
            e["events_per_sec"][name]
            for e in window
            if name in e.get("events_per_sec", {})
        ]
        gate(f"events_per_sec.{name}", val, prior, floor=1 - EPS_DROP)
    for name, val in sorted(new["alloc_per_event"].items()):
        prior = [
            e["alloc_per_event"][name]
            for e in window
            if name in e.get("alloc_per_event", {})
        ]
        gate(f"alloc_per_event.{name}", val, prior, ceil=1 + ALLOC_RISE)

    return finish(
        ok=f"{path}: run {new['sha'][:12]} within budget of the "
        f"{len(window)}-entry trailing window"
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
