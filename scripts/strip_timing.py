#!/usr/bin/env python3
"""Strip the nondeterministic timing members from an xchain JSON report.

Every JSON report the CLI and bench write (`xchain chaos --out`,
`xchain explore --out`, `xchain load --out`, `xchain trace --out`,
`xchain profile --out/--profile-out`, BENCH_load.json) is
byte-identical for a fixed (workload, seed, plan) at any domain count —
except the ``"timing": {...}`` and ``"prof_timing": {...}`` objects,
which carry host wall-clock measurements. This filter removes exactly
those members so reports can be byte-compared across reruns, machines,
and ``-j`` values:

    xchain chaos --soak --runs 200 -j 1 --out a.json
    xchain chaos --soak --runs 200 -j 4 --out b.json
    cmp <(strip_timing.py a.json) <(strip_timing.py b.json)

The runtime-verification sinks (``--series-out`` telemetry series,
``--bundle-out`` forensic bundles, the ``monitor:`` verdict line) are
deterministic by design and carry no wall-clock members; the pattern
nevertheless also covers a ``"mon_timing": {...}`` block so a future
monitor that grows one keeps byte-compares working without touching
every caller of this script.

Equivalent to ``sed -E 's/,"(prof_|mon_)?timing":\\{[^}]*\\}//g'``
(all of these objects are flat, so the scan to the first closing brace
is exact), but kept as a script so CI and docs have one named, testable
normalizer.

Reads the file arguments (or stdin) and writes the stripped bytes to
stdout. Stdlib only.
"""

import re
import sys

TIMING = re.compile(r',"(?:prof_|mon_)?timing":\{[^}]*\}')


def strip(text: str) -> str:
    return TIMING.sub("", text)


def main(argv):
    if len(argv) > 1:
        for path in argv[1:]:
            with open(path, encoding="utf-8") as f:
                sys.stdout.write(strip(f.read()))
    else:
        sys.stdout.write(strip(sys.stdin.read()))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
