#!/usr/bin/env python3
"""Schema + invariant checks for BENCH_fleet.json (fleet scaling curves).

Stdlib only. Validates the report `bench/main.exe` writes:

  1. shape: scale, host_domains, and per-workload objects with a
     ``curve`` of ``{domains, wall_ns, speedup}`` points at 1, 2 and 4
     domains;
  2. the determinism guardrail ran and passed (``deterministic: true``
     — the bench aborts before writing the file if any domain count
     produced different report bytes than -j 1);
  3. arithmetic: the 1-domain point has speedup 1.0 and every point's
     speedup equals wall_ns(1) / wall_ns(d) within rounding;
  4. scaling: on hosts with >= 4 cores (host_domains >= 4), at least
     one workload reaches >= 2x speedup at 4 domains. Single-core CI
     runners (like this repo's default container) skip this assertion —
     there is nothing to parallelize onto — but still enforce 1–3.

Exit 0 when everything holds; a diagnostic and exit 1 otherwise.
"""

import sys

from benchlib import err, finish, load_json

EXPECTED_DOMAINS = [1, 2, 4]
SPEEDUP_TARGET = 2.0


def check_curve(name, wl):
    if wl.get("deterministic") is not True:
        err(f"{name}: determinism guardrail did not pass")
    jobs = wl.get("jobs")
    if not isinstance(jobs, int) or jobs < 1:
        err(f"{name}: jobs must be a positive int, got {jobs!r}")
    curve = wl.get("curve")
    if not isinstance(curve, list):
        err(f"{name}: curve missing")
        return None
    domains = [p.get("domains") for p in curve]
    if domains != EXPECTED_DOMAINS:
        err(f"{name}: curve domains {domains} != {EXPECTED_DOMAINS}")
        return None
    base = curve[0]
    if abs(base.get("speedup", 0.0) - 1.0) > 1e-9:
        err(f"{name}: 1-domain speedup is {base.get('speedup')}, want 1.0")
    for p in curve:
        wall = p.get("wall_ns")
        if not isinstance(wall, int) or wall < 1:
            err(f"{name}: wall_ns must be a positive int, got {wall!r}")
            return None
        expect = base["wall_ns"] / wall
        if abs(p.get("speedup", 0.0) - expect) > max(1e-4, expect * 1e-3):
            err(
                f"{name}: speedup at {p['domains']} domains is "
                f"{p.get('speedup')}, expected {expect:.4f}"
            )
    return curve[-1].get("speedup", 0.0)


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_fleet.json"
    doc = load_json(path)

    if doc.get("scale") not in ("quick", "full"):
        err(f"scale is {doc.get('scale')!r}, want 'quick' or 'full'")
    host = doc.get("host_domains")
    if not isinstance(host, int) or host < 1:
        err(f"host_domains must be a positive int, got {host!r}")
        host = 1
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        err("workloads missing or empty")
        workloads = {}

    best = 0.0
    for name, wl in sorted(workloads.items()):
        s = check_curve(name, wl)
        if s is not None:
            best = max(best, s)

    if host >= 4 and workloads:
        if best < SPEEDUP_TARGET:
            err(
                f"host has {host} domains but best 4-domain speedup is "
                f"{best:.2f}x, want >= {SPEEDUP_TARGET}x"
            )
    elif workloads:
        print(
            f"{path}: host_domains={host} < 4 — speedup assertion skipped "
            f"(best 4-domain speedup {best:.2f}x)"
        )

    return finish(ok=f"{path}: fleet scaling report OK", prefix="FAIL")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
