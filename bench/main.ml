(* Benchmark / reproduction harness.

   Running this executable regenerates every table of the reproduction
   (E1..E12, one per paper claim — the paper has no numbered evaluation
   tables, see DESIGN.md §3), then times the substrate and the protocols
   with Bechamel micro-benchmarks (one Test per experiment workload plus
   the core primitives).

   Scale: quick samples by default; set XCHAIN_BENCH_FULL=1 for the full
   (400 runs/config) tables recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit
open Protocols

let scale =
  match Sys.getenv_opt "XCHAIN_BENCH_FULL" with
  | Some ("1" | "true" | "yes") -> Xchain.Experiments.Full
  | _ -> Xchain.Experiments.Quick

(* ----------------------- reproduction tables -------------------------- *)

(* Runs every experiment, rendering its table and isolating its telemetry:
   the registry is reset before each experiment and snapshotted (as JSON)
   after it, so the BENCH_metrics.json written below attributes counters
   to the experiment that produced them. *)
let print_tables () =
  Fmt.pr "##### Reproduction tables (%s scale) #####@.@."
    (match scale with Xchain.Experiments.Quick -> "quick" | Full -> "full");
  Obsv.Span.set_capture Obsv.Span.default false;
  List.map
    (fun name ->
      Obsv.Metrics.reset Obsv.Metrics.default;
      let table =
        match Xchain.Experiments.by_name name with
        | Some f -> f scale
        | None -> Fmt.invalid_arg "unknown experiment %s" name
      in
      Fmt.pr "%a@." Xchain.Table.render table;
      (name, Obsv.Metrics.to_json Obsv.Metrics.default))
    Xchain.Experiments.names

let metrics_json_file = "BENCH_metrics.json"

let write_metrics_json per_experiment =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"scale\":";
  Buffer.add_string buf
    (match scale with
    | Xchain.Experiments.Quick -> "\"quick\""
    | Full -> "\"full\"");
  Buffer.add_string buf ",\"experiments\":{";
  List.iteri
    (fun i (name, json) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf name;
      Buffer.add_string buf "\":";
      Buffer.add_string buf json)
    per_experiment;
  Buffer.add_string buf "}}\n";
  let oc = open_out metrics_json_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "telemetry snapshots written to %s@." metrics_json_file

(* --------------------------- load workloads ---------------------------- *)

(* Canonical load workloads: each is one deterministic Load.run whose full
   report lands in BENCH_load.json. Quick scale trims the payment counts;
   full scale is the 10k-payment run recorded in EXPERIMENTS.md. *)
let load_workloads =
  let n = match scale with Xchain.Experiments.Quick -> 500 | Full -> 10_000 in
  let w s =
    match Traffic.Workload.of_string s with
    | Ok w -> w
    | Error e -> failwith e
  in
  [
    ( "mixed_open_loop",
      w
        (Printf.sprintf
           "payments=%d hops=2 value=1000 commission=10 arrival=poisson:4 \
            mix=sync:2,weak:2,htlc:1,atomic:1,committee:1 policy=reserve \
            cap=0 liquidity=0 patience=2000 stuck=0 drift=10000 gst=none"
           n) );
    ( "closed_loop_contention",
      w
        (Printf.sprintf
           "payments=%d hops=2 value=1000 commission=10 arrival=closed:16:5 \
            mix=weak policy=reserve cap=0 liquidity=%d patience=500 stuck=0 \
            drift=10000 gst=none"
           (n / 2) (n / 8)) );
    (* a healed escrow crash stays inside the paper's model (eventual
       delivery), so zero violations is asserted; silent drops would not —
       the weak protocol genuinely loses CS2 without reliable delivery,
       and both this classifier and chaos report that truthfully *)
    ( "crash_heal",
      w
        (Printf.sprintf
           "payments=%d hops=2 value=1000 commission=10 arrival=poisson:40 \
            mix=weak:1,atomic:1 policy=reserve cap=0 liquidity=0 \
            patience=2000 stuck=0 drift=10000 gst=none"
           (n / 5)) );
  ]

let load_plan_for = function
  | "crash_heal" -> (
      match Faults.Fault_plan.of_string "crash 3@1500+2500" with
      | Ok p -> Some p
      | Error e -> failwith e)
  | _ -> None

let load_json_file = "BENCH_load.json"

let write_load_json () =
  Fmt.pr "@.##### Load workloads (one run each, seed 1) #####@.@.";
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"scale\":";
  Buffer.add_string buf
    (match scale with
    | Xchain.Experiments.Quick -> "\"quick\""
    | Full -> "\"full\"");
  Buffer.add_string buf ",\"workloads\":{";
  let reports =
    List.mapi
      (fun i (name, workload) ->
        if i > 0 then Buffer.add_char buf ',';
        let r =
          match load_plan_for name with
          | Some plan -> Traffic.Load.run ~plan ~workload ~seed:1 ()
          | None -> Traffic.Load.run ~workload ~seed:1 ()
        in
        Fmt.pr "%s:@.%a@.@." name Traffic.Load.pp_summary r;
        if r.Traffic.Load.violated > 0 || not r.Traffic.Load.conservation_ok
        then Fmt.failwith "load workload %s violated safety" name;
        Buffer.add_char buf '"';
        Buffer.add_string buf name;
        Buffer.add_string buf "\":";
        Buffer.add_string buf (Traffic.Load.to_json r);
        (name, r))
      load_workloads
  in
  Buffer.add_string buf "}}\n";
  let oc = open_out load_json_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "load reports written to %s@." load_json_file;
  reports

(* ---------------------------- routing graphs --------------------------- *)

(* One run per topology family (throughput parity with the linear chain)
   plus the constrained-liquidity diamond pair that motivates splitting: a
   fat path that carries exactly two payments and three thin paths only a
   splitting router can use. diamond_single strands >=30% of the offered
   value; diamond_multi must commit strictly more (scripts/check_routing.py
   gates both, and the harness refuses to write a JSON that fails). *)
let routing_json_file = "BENCH_routing.json"

let routing_workloads =
  let n = match scale with Xchain.Experiments.Quick -> 200 | Full -> 2_000 in
  let w s =
    match Traffic.Workload.of_string s with
    | Ok w -> w
    | Error e -> failwith e
  in
  let family name topo splits =
    ( name,
      w
        (Printf.sprintf
           "payments=%d hops=2 value=1000 commission=10 arrival=poisson:4 \
            mix=sync:1,weak:1 policy=reserve cap=0 liquidity=0 \
            patience=2000 stuck=0 drift=10000 gst=none topology=%s \
            route=shortest splits=%d"
           n topo splits) )
  in
  let diamond =
    "graph:6;0>1:2100:0,0>2:700:0,0>3:700:0,0>4:700:0,1>5:2100:0,2>5:700:0,3>5:700:0,4>5:700:0"
  in
  let constrained name splits =
    ( name,
      w
        (Printf.sprintf
           "payments=4 hops=2 value=1000 commission=10 arrival=burst:4:1 \
            mix=sync:1 policy=reserve cap=0 liquidity=0 patience=9000 \
            stuck=0 drift=10000 gst=none topology=%s route=shortest \
            splits=%d"
           diamond splits) )
  in
  [
    family "linear_chain" "linear:3" 1;
    family "hub_spoke" "hub:4" 2;
    family "er_mesh" "er:6:4:9" 3;
    family "scale_free" "sf:6:2:5" 3;
    constrained "diamond_single" 1;
    constrained "diamond_multi" 4;
  ]

let write_routing_json () =
  Fmt.pr "@.##### Routing workloads (one run each, seed 1) #####@.@.";
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"scale\":";
  Buffer.add_string buf
    (match scale with
    | Xchain.Experiments.Quick -> "\"quick\""
    | Full -> "\"full\"");
  Buffer.add_string buf ",\"workloads\":{";
  let reports =
    List.mapi
      (fun i (name, workload) ->
        if i > 0 then Buffer.add_char buf ',';
        let r = Traffic.Load.run ~workload ~seed:1 () in
        Fmt.pr "%s:@.%a@.@." name Traffic.Load.pp_summary r;
        if r.Traffic.Load.violated > 0 || not r.Traffic.Load.conservation_ok
        then Fmt.failwith "routing workload %s violated safety" name;
        Buffer.add_char buf '"';
        Buffer.add_string buf name;
        Buffer.add_string buf "\":";
        Buffer.add_string buf (Traffic.Load.to_json r);
        (name, r))
      routing_workloads
  in
  let committed_value name =
    match (List.assoc name reports).Traffic.Load.routing with
    | Some s -> s.Traffic.Load.committed_value
    | None -> Fmt.failwith "routing workload %s produced no routing stats" name
  in
  let single = committed_value "diamond_single"
  and multi = committed_value "diamond_multi" in
  if 100 * (4000 - single) < 30 * 4000 then
    Fmt.failwith
      "diamond_single strands only %d of 4000 — the constrained pair no \
       longer demonstrates stranded value"
      (4000 - single);
  if multi <= single then
    Fmt.failwith
      "multi-path routing (%d) must commit strictly more value than \
       single-path (%d)"
      multi single;
  Buffer.add_string buf "}}\n";
  let oc = open_out routing_json_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "routing reports written to %s@." routing_json_file;
  reports

(* --------------------------- causal tracing ---------------------------- *)

(* One canonically-traced load run: its aggregate blame table, plus the
   tracing-off vs tracing-on wall-clock of the identical run, land in
   BENCH_blame.json. Tracing off must be in the noise (the engine guards
   every causal block behind one option match); tracing on reports its
   actual overhead ratio honestly. *)
let blame_json_file = "BENCH_blame.json"

let blame_workload =
  let n = match scale with Xchain.Experiments.Quick -> 200 | Full -> 2_000 in
  match
    Traffic.Workload.of_string
      (Printf.sprintf
         "payments=%d hops=2 value=1000 commission=10 arrival=poisson:10 \
          mix=sync:1,weak:1 policy=reserve cap=0 liquidity=0 patience=2000 \
          stuck=0 drift=10000 gst=none"
         n)
  with
  | Ok w -> w
  | Error e -> failwith e

let write_blame_json () =
  Fmt.pr "@.##### Causal tracing: blame + overhead (seed 1) #####@.@.";
  let reps = match scale with Xchain.Experiments.Quick -> 3 | Full -> 10 in
  let time_runs ~causal () =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      let c = if causal then Some (Obsv.Causal.create ()) else None in
      ignore (Traffic.Load.run ?causal:c ~workload:blame_workload ~seed:1 ())
    done;
    Sys.time () -. t0
  in
  let off_s = time_runs ~causal:false () in
  let on_s = time_runs ~causal:true () in
  let ratio = if off_s > 0. then on_s /. off_s else 1. in
  let c = Obsv.Causal.create () in
  let r = Traffic.Load.run ~causal:c ~workload:blame_workload ~seed:1 () in
  let agg =
    match r.Traffic.Load.blame with
    | Some a -> a
    | None -> failwith "traced load run produced no blame aggregate"
  in
  (* the exact-sum invariant, re-checked on the bench workload *)
  List.iter
    (fun (_, b) ->
      if not (Obsv.Blame.check b) then
        failwith "blame gaps do not sum to the commit latency")
    r.Traffic.Load.blame_reports;
  Fmt.pr "%a@." Obsv.Blame.pp_agg agg;
  Fmt.pr "overhead: off %.3fs, on %.3fs over %d runs — ratio %.2f@." off_s
    on_s reps ratio;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"scale\":";
  Buffer.add_string buf
    (match scale with
    | Xchain.Experiments.Quick -> "\"quick\""
    | Full -> "\"full\"");
  Buffer.add_string buf ",\"workload\":\"";
  Buffer.add_string buf
    (Obsv.Metrics.json_escape (Traffic.Workload.to_string blame_workload));
  Buffer.add_string buf "\",\"blame\":";
  Buffer.add_string buf (Obsv.Blame.agg_to_json agg);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"overhead\":{\"runs\":%d,\"off_s\":%.6f,\"on_s\":%.6f,\"ratio\":%.4f}}\n"
       reps off_s on_s ratio);
  let oc = open_out blame_json_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "blame report written to %s@." blame_json_file

(* ---------------------------- fleet scaling ---------------------------- *)

(* Speedup-vs-domain-count curves for the two embarrassingly parallel
   harnesses (chaos soak, corner sweep), with the determinism contract
   enforced as a guardrail: the stripped report at every domain count
   must equal the 1-domain bytes, or the bench aborts. The curve is only
   meaningful on multi-core hosts, so host_domains is recorded and
   scripts/check_fleet.py gates its speedup assertion on it. *)
let fleet_json_file = "BENCH_fleet.json"

(* Same normalization as scripts/strip_timing.py and the cram tests: the
   "timing" object is flat, so scanning to its closing brace is exact. *)
let strip_timing s =
  let marker = {|,"timing":{|} in
  let mlen = String.length marker in
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + mlen <= n && String.sub s !i mlen = marker then begin
      let j = ref (!i + mlen) in
      while !j < n && s.[!j] <> '}' do
        incr j
      done;
      i := !j + 1
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let fleet_domain_counts = [ 1; 2; 4 ]

let fleet_workloads =
  let runs = match scale with Xchain.Experiments.Quick -> 120 | Full -> 600 in
  [
    ( "chaos_soak",
      runs,
      fun domains ->
        let s = Xchain.Chaos.soak ~hops:2 ~runs ~domains ~seed:1 () in
        ( strip_timing (Xchain.Chaos.summary_to_json ~seed:1 s),
          s.Xchain.Chaos.wall_ns ) );
    ( "corner_sweep",
      512,
      fun domains ->
        let r =
          Xchain.Explore.sweep ~hops:1 ~domains ~protocol:Runner.Sync_timebound
            ()
        in
        ( strip_timing
            (Xchain.Explore.result_to_json ~hops:1
               ~protocol:Runner.Sync_timebound r),
          r.Xchain.Explore.wall_ns ) );
  ]

let write_fleet_json () =
  Fmt.pr "@.##### Fleet scaling (speedup vs 1 domain) #####@.@.";
  let host = Fleet.recommended_domains () in
  Fmt.pr "host reports %d recommended domain(s)@." host;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"scale\":";
  Buffer.add_string buf
    (match scale with
    | Xchain.Experiments.Quick -> "\"quick\""
    | Full -> "\"full\"");
  Buffer.add_string buf (Printf.sprintf ",\"host_domains\":%d" host);
  Buffer.add_string buf ",\"workloads\":{";
  List.iteri
    (fun i (name, jobs, run) ->
      if i > 0 then Buffer.add_char buf ',';
      let curve = List.map (fun d -> (d, run d)) fleet_domain_counts in
      let _, (baseline_bytes, baseline_wall) = List.hd curve in
      List.iter
        (fun (d, (bytes, _)) ->
          if bytes <> baseline_bytes then
            Fmt.failwith
              "fleet workload %s: report at %d domains diverges from the \
               1-domain bytes"
              name d)
        curve;
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"jobs\":%d,\"deterministic\":true,\"curve\":["
           name jobs);
      List.iteri
        (fun k (d, (_, wall)) ->
          if k > 0 then Buffer.add_char buf ',';
          let speedup = float_of_int baseline_wall /. float_of_int wall in
          Fmt.pr "%-16s -j %d: %8.3f ms  (speedup %.2fx)@." name d
            (float_of_int wall /. 1e6)
            speedup;
          Buffer.add_string buf
            (Printf.sprintf "{\"domains\":%d,\"wall_ns\":%d,\"speedup\":%.4f}" d
               wall speedup))
        curve;
      Buffer.add_string buf "]}")
    fleet_workloads;
  Buffer.add_string buf "}}\n";
  let oc = open_out fleet_json_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "fleet scaling written to %s@." fleet_json_file

(* --------------------------- shared committees ------------------------- *)

(* Committee-size x batch-cap sweep over the shared notary committee:
   every payment in a cell arrives in one burst and is decided by one
   external batching committee, so certificate batching and consensus
   rounds are the whole story. The harness refuses to write a JSON where
   batching does not strictly beat the unbatched baseline at equal
   committee size, or where the largest committee fails to fill a >= 32
   verdict certificate (scripts/check_committee.py re-gates both in CI).
   Cells shard over the fleet; reports merge in cell order, so the JSON
   is byte-identical for any domain count (modulo the timing block). *)
let committee_json_file = "BENCH_committee.json"

let committee_sizes =
  match scale with
  | Xchain.Experiments.Quick -> [ 4; 16; 64 ]
  | Full -> [ 4; 16; 64; 100 ]

let committee_batches = [ 1; 32 ]

let committee_payments =
  match scale with Xchain.Experiments.Quick -> 64 | Full -> 256

let write_committee_json () =
  Fmt.pr "@.##### Shared committee sweep (size x batch, seed 1) #####@.@.";
  let cells =
    List.concat_map
      (fun n -> List.map (fun b -> (n, b)) committee_batches)
      committee_sizes
  in
  let workload_of (n, batch) =
    let spec =
      Printf.sprintf
        "payments=%d hops=2 value=1000 commission=10 arrival=burst:%d:1 \
         mix=shared policy=reserve cap=0 liquidity=0 patience=100000 \
         stuck=0 drift=0 gst=none committee=majority:%d:%d:%d:4"
        committee_payments committee_payments n ((n - 1) / 3) batch
    in
    match Traffic.Workload.of_string spec with
    | Ok w -> w
    | Error e -> failwith e
  in
  let cells_a = Array.of_list cells in
  let outcomes, _ =
    Fleet.run
      ~domains:(min (Fleet.recommended_domains ()) (Array.length cells_a))
      ~jobs:(Array.length cells_a)
      (fun i -> Traffic.Load.run ~workload:(workload_of cells_a.(i)) ~seed:1 ())
  in
  let reports =
    Array.mapi
      (fun i -> function
        | Error (f : Fleet.failure) ->
            let n, b = cells_a.(i) in
            Fmt.failwith "committee cell %dx%d raised: %s" n b f.Fleet.message
        | Ok r -> r)
      outcomes
  in
  (* one burst, so the decide span is the slowest payment's latency *)
  let decided_cpm (r : Traffic.Load.report) =
    if r.Traffic.Load.latency_max = 0 then 0
    else r.Traffic.Load.committed * 1_000_000 / r.Traffic.Load.latency_max
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"scale\":";
  Buffer.add_string buf
    (match scale with
    | Xchain.Experiments.Quick -> "\"quick\""
    | Full -> "\"full\"");
  Printf.bprintf buf ",\"payments\":%d,\"hops\":2,\"pipeline\":4,\"sweep\":["
    committee_payments;
  Array.iteri
    (fun i (r : Traffic.Load.report) ->
      let n, batch = cells_a.(i) in
      if
        r.Traffic.Load.violated > 0
        || (not r.Traffic.Load.conservation_ok)
        || r.Traffic.Load.committed <> committee_payments
      then
        Fmt.failwith "committee cell %dx%d: %d/%d committed, %d violations" n
          batch r.Traffic.Load.committed committee_payments
          r.Traffic.Load.violated;
      let cs =
        match r.Traffic.Load.committee_stats with
        | Some s -> s
        | None -> Fmt.failwith "committee cell %dx%d: no committee stats" n batch
      in
      Fmt.pr
        "majority %3d  batch %2d: %3d certs, max batch %2d, %3d rounds, \
         %6d decided/Mtick@."
        n batch cs.Traffic.Load.certs cs.Traffic.Load.max_batch
        cs.Traffic.Load.rounds (decided_cpm r);
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"family\":\"majority\",\"size\":%d,\"f\":%d,\"batch\":%d,\"committed\":%d,\"decided_cpm\":%d,\"messages\":%d,\"latency\":{\"p50\":%d,\"p95\":%d,\"max\":%d},\"certs\":%d,\"verdicts\":%d,\"max_batch\":%d,\"rounds\":%d,\"cert_lat_sum\":%d,\"cert_lat_max\":%d}"
        n ((n - 1) / 3) batch r.Traffic.Load.committed (decided_cpm r)
        r.Traffic.Load.messages r.Traffic.Load.latency_p50
        r.Traffic.Load.latency_p95 r.Traffic.Load.latency_max
        cs.Traffic.Load.certs cs.Traffic.Load.verdicts
        cs.Traffic.Load.max_batch cs.Traffic.Load.rounds
        cs.Traffic.Load.cert_lat_sum cs.Traffic.Load.cert_lat_max)
    reports;
  Buffer.add_string buf "]}\n";
  (* in-harness gates, mirrored by scripts/check_committee.py *)
  List.iter
    (fun n ->
      let cell b =
        let i = ref (-1) in
        Array.iteri (fun k (m, bb) -> if m = n && bb = b then i := k) cells_a;
        reports.(!i)
      in
      let unbatched = decided_cpm (cell 1)
      and batched = decided_cpm (cell 32) in
      if batched <= unbatched then
        Fmt.failwith
          "committee size %d: batched throughput %d must strictly beat \
           unbatched %d"
          n batched unbatched)
    committee_sizes;
  (let largest = List.fold_left max 0 committee_sizes in
   let i = ref (-1) in
   Array.iteri (fun k (m, b) -> if m = largest && b = 32 then i := k) cells_a;
   match reports.(!i).Traffic.Load.committee_stats with
   | Some cs when cs.Traffic.Load.max_batch >= 32 -> ()
   | Some cs ->
       Fmt.failwith
         "largest committee (%d) filled only %d-verdict certificates (want \
          >= 32)"
         largest cs.Traffic.Load.max_batch
   | None -> assert false);
  let oc = open_out committee_json_file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "committee sweep written to %s@." committee_json_file

(* ------------------------ perf-trajectory ledger ----------------------- *)

(* Every bench run appends one JSON line to bench/history/trajectory.jsonl:
   events/sec per canonical load workload (nondeterministic, host wall
   clock) and minor-heap words per dispatched event on a profiled
   canonical run (deterministic), keyed by git sha, UTC date, host domain
   count and scale. scripts/check_perf.py compares the newest entry
   against the trailing window of same-scale entries and fails CI on a
   >20% events/sec or >10% allocation-per-event regression. *)
let history_file = "bench/history/trajectory.jsonl"

let write_history load_reports =
  let sha =
    match Sys.getenv_opt "GITHUB_SHA" with
    | Some s when s <> "" -> s
    | _ -> (
        try
          let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
          let line = try input_line ic with End_of_file -> "" in
          match Unix.close_process_in ic with
          | Unix.WEXITED 0 when line <> "" -> line
          | _ -> "unknown"
        with _ -> "unknown")
  in
  let date =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  (* allocation per dispatched event on the canonical traced workload,
     via the dispatch profiler: deterministic, so the 10% gate is tight *)
  let prof = Obsv.Prof.create () in
  ignore (Traffic.Load.run ~prof ~workload:blame_workload ~seed:1 ());
  let _, _, alloc = Obsv.Prof.site_totals prof in
  let prof_events = max 1 (Obsv.Prof.events prof) in
  let alloc_per_event = float_of_int alloc /. float_of_int prof_events in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"sha\":\"%s\",\"date\":\"%s\",\"scale\":%s,\"host_domains\":%d,\
        \"events_per_sec\":{"
       (Obsv.Metrics.json_escape sha)
       date
       (match scale with
       | Xchain.Experiments.Quick -> "\"quick\""
       | Full -> "\"full\"")
       (Fleet.recommended_domains ()));
  List.iteri
    (fun i (name, (r : Traffic.Load.report)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%.1f" name
           (float_of_int r.Traffic.Load.events
           /. (float_of_int r.Traffic.Load.wall_ns /. 1e9))))
    load_reports;
  Buffer.add_string buf
    (Printf.sprintf
       "},\"alloc_per_event\":{\"canonical_load\":%.2f},\"profiled_events\":%d}\n"
       alloc_per_event prof_events);
  (try Unix.mkdir "bench" 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir "bench/history" 0o755 with Unix.Unix_error _ -> ());
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 history_file
  in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "perf trajectory appended to %s@." history_file

(* -------------------------- micro-benchmarks -------------------------- *)

let payment_run protocol ~hops ~seed =
  let cfg = Runner.default_config ~hops ~seed in
  ignore (Runner.run cfg protocol)

(* One Test.make per experiment: times a single representative run of that
   experiment's workload (the tables above aggregate hundreds of them). *)
let experiment_tests =
  let wcfg = Weak_protocol.default_config in
  let committee =
    { wcfg with Weak_protocol.tm = Weak_protocol.Committee { f = 1 } }
  in
  [
    Test.make ~name:"e1_sync_payment_4hops"
      (Staged.stage (fun () -> payment_run Runner.Sync_timebound ~hops:4 ~seed:1));
    Test.make ~name:"e2_adversarial_psync"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Runner.default_config ~hops:3 ~seed:1) with
               network = Runner.Psync { gst = 10_000 };
             }
           in
           ignore (Runner.run cfg Runner.Sync_timebound)));
    Test.make ~name:"e3_weak_single_tm"
      (Staged.stage (fun () -> payment_run (Runner.Weak wcfg) ~hops:3 ~seed:1));
    Test.make ~name:"e4_weak_abort_path"
      (Staged.stage (fun () ->
           payment_run
             (Runner.Weak { wcfg with Weak_protocol.patience = 0 })
             ~hops:3 ~seed:1));
    Test.make ~name:"e5_htlc_8hops"
      (Staged.stage (fun () -> payment_run Runner.Htlc ~hops:8 ~seed:1));
    Test.make ~name:"e6_byzantine_thief"
      (Staged.stage (fun () ->
           let topo = Topology.create ~hops:3 in
           let cfg =
             {
               (Runner.default_config ~hops:3 ~seed:1) with
               faults = [ (Topology.escrow topo 0, Byzantine.Thief_escrow) ];
             }
           in
           ignore (Runner.run cfg Runner.Sync_timebound)));
    Test.make ~name:"e7_deal_3cycle_timelock"
      (Staged.stage (fun () ->
           ignore
             (Deals.Deal_runner.run
                (Deals.Deal_runner.default_config
                   (Deals.Deal.three_cycle ())
                   Deals.Deal_runner.Timelock))));
    Test.make ~name:"e8_committee_consensus"
      (Staged.stage (fun () ->
           payment_run (Runner.Weak committee) ~hops:2 ~seed:1));
    Test.make ~name:"e9_naive_drift_run"
      (Staged.stage (fun () ->
           let cfg =
             { (Runner.default_config ~hops:5 ~seed:1) with drift_ppm = 80_000 }
           in
           ignore (Runner.run cfg Runner.Naive_universal)));
    Test.make ~name:"e10_deal_embedding"
      (Staged.stage (fun () ->
           ignore
             (Deals.Deal_runner.run
                (Deals.Deal_runner.default_config
                   (Deals.Deal.two_party_swap ())
                   Deals.Deal_runner.Cbc))));
    Test.make ~name:"e11_ilp_atomic"
      (Staged.stage (fun () ->
           payment_run
             (Runner.Atomic Atomic_protocol.default_config)
             ~hops:3 ~seed:1));
    Test.make ~name:"chaos_faulted_payment"
      (Staged.stage
         (let plan =
            match
              Faults.Fault_plan.of_string
                "drop *>* 0.1; dup *>* 0.05; crash 1@500+800"
            with
            | Ok p -> p
            | Error e -> failwith e
          in
          fun () ->
            ignore (Xchain.Chaos.run_one ~hops:3 ~plan ~seed:1 ())));
    Test.make ~name:"chaos_soak_10plans"
      (Staged.stage (fun () ->
           ignore (Xchain.Chaos.soak ~hops:2 ~runs:10 ~seed:1 ())));
    Test.make ~name:"load_100_mixed_payments"
      (Staged.stage
         (let workload =
            match
              Traffic.Workload.of_string
                "payments=100 hops=2 value=1000 commission=10 \
                 arrival=poisson:10 mix=sync:1,weak:1 policy=reserve cap=0 \
                 liquidity=0 patience=2000 stuck=0 drift=10000 gst=none"
            with
            | Ok w -> w
            | Error e -> failwith e
          in
          fun () -> ignore (Traffic.Load.run ~workload ~seed:1 ())));
    Test.make ~name:"load_100_causal_on"
      (Staged.stage
         (let workload =
            match
              Traffic.Workload.of_string
                "payments=100 hops=2 value=1000 commission=10 \
                 arrival=poisson:10 mix=sync:1,weak:1 policy=reserve cap=0 \
                 liquidity=0 patience=2000 stuck=0 drift=10000 gst=none"
            with
            | Ok w -> w
            | Error e -> failwith e
          in
          fun () ->
            ignore
              (Traffic.Load.run ~causal:(Obsv.Causal.create ()) ~workload
                 ~seed:1 ())));
  ]

(* Occupancy churn for the event queue's cancel path: build a heap of n
   timers, cancel every other one through the O(1) liveness table, then
   drain (pops lazily discard the tombstones). Before the liveness table,
   cancel was a heap scan and this was quadratic in n. *)
let queue_churn n =
  let q = Sim.Event_queue.create () in
  let toks =
    Array.init n (fun i -> Sim.Event_queue.push q ~time:((i * 7919) land 0xfffff) i)
  in
  let cancelled = ref 0 in
  Array.iteri
    (fun i t ->
      if i land 1 = 0 && Sim.Event_queue.cancel q t then incr cancelled)
    toks;
  while not (Sim.Event_queue.is_empty q) do
    ignore (Sim.Event_queue.pop q)
  done;
  assert (!cancelled = (n + 1) / 2)

let queue_occupancy_tests =
  let mk n label =
    Test.make
      ~name:(Printf.sprintf "sim_event_queue_churn_%s" label)
      (Staged.stage (fun () -> queue_churn n))
  in
  [ mk 10_000 "10k"; mk 100_000 "100k" ]
  @ (match scale with
    | Xchain.Experiments.Full -> [ mk 1_000_000 "1M" ]
    | Quick -> [])

let substrate_tests =
  queue_occupancy_tests
  @ [
    Test.make ~name:"sim_event_queue_push_pop_1k"
      (Staged.stage (fun () ->
           let q = Sim.Event_queue.create () in
           for i = 0 to 999 do
             ignore (Sim.Event_queue.push q ~time:((i * 7919) mod 1000) i)
           done;
           while not (Sim.Event_queue.is_empty q) do
             ignore (Sim.Event_queue.pop q)
           done));
    Test.make ~name:"sim_rng_splitmix_1k"
      (Staged.stage
         (let g = Sim.Rng.create ~seed:1 in
          fun () ->
            for _ = 1 to 1000 do
              ignore (Sim.Rng.next_int64 g)
            done));
    Test.make ~name:"xcrypto_sign_verify"
      (Staged.stage
         (let reg = Xcrypto.Auth.create ~seed:1 in
          let signer = Xcrypto.Auth.register reg 0 in
          fun () ->
            let s = Xcrypto.Auth.sign signer "message body" in
            assert (Xcrypto.Auth.verify reg 0 "message body" s)));
    Test.make ~name:"ledger_deposit_release_cycle"
      (Staged.stage
         (let book = Ledger.Book.create ~currency:"x" in
          Ledger.Book.open_account book ~owner:0 ~balance:1_000_000;
          Ledger.Book.open_account book ~owner:1 ~balance:0;
          fun () ->
            match Ledger.Book.deposit book ~from_:0 ~amount:10 with
            | Ok dep -> (
                match Ledger.Book.release book dep ~to_:1 with
                | Ok () ->
                    ignore (Ledger.Book.transfer book ~src:1 ~dst:0 ~amount:10)
                | Error _ -> assert false)
            | Error _ -> assert false));
    Test.make ~name:"params_derive_32hops"
      (Staged.stage (fun () ->
           ignore (Params.derive (Params.default_input ~hops:32))));
  ]

let run_benchmarks () =
  Fmt.pr "@.##### Micro-benchmarks (Bechamel, monotonic clock) #####@.@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let groups =
    [
      Test.make_grouped ~name:"experiments" experiment_tests;
      Test.make_grouped ~name:"substrate" substrate_tests;
    ]
  in
  Fmt.pr "%-48s %16s %10s@." "benchmark" "time/run" "r²";
  Fmt.pr "%s@." (String.make 76 '-');
  List.iter
    (fun grouped ->
      let raw = Benchmark.all cfg instances grouped in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
      List.iter
        (fun name ->
          let v = Hashtbl.find results name in
          let est =
            match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square v with Some r -> r | None -> nan
          in
          let human =
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Fmt.pr "%-48s %16s %10.4f@." name human r2)
        (List.sort compare names))
    groups

let () =
  let per_experiment = print_tables () in
  write_metrics_json per_experiment;
  let load_reports = write_load_json () in
  let routing_reports = write_routing_json () in
  write_blame_json ();
  write_fleet_json ();
  write_committee_json ();
  (* the tiny diamond pair is a correctness artifact, not a throughput
     figure — only the family-sized runs join the perf trajectory *)
  let routing_history =
    List.filter_map
      (fun (name, (r : Traffic.Load.report)) ->
        if r.Traffic.Load.workload.Traffic.Workload.payments >= 50 then
          Some ("routing_" ^ name, r)
        else None)
      routing_reports
  in
  write_history (load_reports @ routing_history);
  run_benchmarks ();
  Fmt.pr "@.done.@."
