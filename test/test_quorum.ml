(* Tests for the quorum-system subsystem: the Byzantine quorum laws on
   every constructor family (checked by brute force on small systems),
   the batched pipelined committee runner, and the golden pin that the
   quorum-parametrized consensus is byte-identical to the pre-refactor
   2f+1 committee TM on seeded scenarios. *)

module QS = Quorum_system
module C = Quorum.Committee
module Runner = Protocols.Runner
module Weak_protocol = Protocols.Weak_protocol
open Xcrypto

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------ quorum laws *)

(* Brute force over all subsets of a small system: every pair of quorums
   must intersect in at least f+1 processes (so any two certificates
   share an honest signer), and the complement of any f processes must
   still be a quorum (so f failures never strand the system). is_quorum
   is monotone, so checking every accepting subset covers every quorum. *)
let laws_by_brute_force qs =
  let n = QS.size qs in
  let f = QS.fault_bound qs in
  assert (n <= 12);
  let subsets = 1 lsl n in
  let present mask = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
  let quorums = ref [] in
  for mask = 0 to subsets - 1 do
    if QS.is_quorum qs ~present:(present mask) then quorums := mask :: !quorums
  done;
  let popcount mask =
    let c = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr c
    done;
    !c
  in
  let intersection_ok =
    List.for_all
      (fun a -> List.for_all (fun b -> popcount (a land b) >= f + 1) !quorums)
      !quorums
  in
  let availability_ok =
    (* every f-subset of faulty processes leaves a quorum alive *)
    let rec faulty_masks k lo =
      if k = 0 then [ 0 ]
      else
        List.concat_map
          (fun i ->
            List.map (fun m -> m lor (1 lsl i)) (faulty_masks (k - 1) (i + 1)))
          (List.init (max 0 (n - lo)) (fun d -> lo + d))
    in
    List.for_all
      (fun faulty ->
        QS.is_quorum qs ~present:(present (lnot faulty land (subsets - 1))))
      (faulty_masks f 0)
  in
  !quorums <> [] && intersection_ok && availability_ok

let arbitrary_system =
  let open QCheck.Gen in
  let majority =
    let* n = int_range 1 8 in
    let* f = int_range 0 2 in
    let* q = int_range 1 n in
    return (QS.majority ~q ~n ~f ())
  in
  let weighted =
    let* n = int_range 1 6 in
    let* weights = array_repeat n (int_range 1 3) in
    let* f = int_range 0 2 in
    let total = Array.fold_left ( + ) 0 weights in
    let* threshold = int_range 1 total in
    return (QS.weighted ~threshold ~weights ~f ())
  in
  let grid =
    let* rows = int_range 1 3 in
    let* cols = int_range 1 3 in
    let* f = int_range 0 2 in
    let* qr = int_range 1 rows in
    let* qc = int_range 1 cols in
    return (QS.grid ~qr ~qc ~rows ~cols ~f ())
  in
  QCheck.make
    ~print:(fun qs -> QS.describe qs)
    (oneof [ majority; weighted; grid ])

(* --------------------------------------------- committee test world *)

(* The committee module is a pure state machine, so a test world is an
   array of replicas plus a message queue drained by hand; dropping or
   forging messages is just not enqueueing / enqueueing them. *)
type world = {
  coms : C.t array;
  registry : Auth.registry;
  signers : Auth.signer array;
  queue : (int * int * C.msg) Queue.t;  (* from, to, msg *)
  mutable timers : (int * int * int) list;  (* replica, slot, round *)
}

let effects w ~from_ effs =
  let n = Array.length w.coms in
  List.iter
    (fun eff ->
      match eff with
      | C.Send { to_; m } -> Queue.add (from_, to_, m) w.queue
      | C.Broadcast m ->
          for k = 0 to n - 1 do
            Queue.add (from_, k, m) w.queue
          done
      | C.Set_slot_timer { slot; round; _ } ->
          w.timers <- (from_, slot, round) :: w.timers
      | C.Certified _ -> ())
    effs

let make_world ?(n = 4) ?(f = 1) ?(batch_cap = 4) ?(pipeline = 2) () =
  let registry = Auth.create ~seed:11 in
  let auth_ids = Array.init n Fun.id in
  let signers = Array.init n (fun i -> Auth.register registry i) in
  let cfg i =
    {
      C.qs = QS.majority ~n ~f ();
      self = i;
      auth_ids;
      registry;
      signer = signers.(i);
      batch_cap;
      pipeline;
      base_timeout = 50;
    }
  in
  {
    coms = Array.init n (fun i -> C.create (cfg i));
    registry;
    signers;
    queue = Queue.create ();
    timers = [];
  }

let drain ?(now = 0) ?(drop = fun ~from_:_ ~to_:_ _ -> false) w =
  let budget = ref 100_000 in
  while not (Queue.is_empty w.queue) do
    decr budget;
    if !budget < 0 then Alcotest.fail "drain: message storm";
    let from_, to_, m = Queue.pop w.queue in
    if not (drop ~from_ ~to_ m) then
      effects w ~from_:to_ (C.on_msg w.coms.(to_) ~now ~from_ m)
  done

let request w ?(now = 0) i v = effects w ~from_:i (C.request w.coms.(i) ~now v)

(* ------------------------------------------------- golden trace pins *)

(* The committee TM ran on a hardwired 2f+1 majority before the quorum
   refactor; these digests were captured on that implementation, so the
   DLS-over-quorum-system path must reproduce them byte for byte. The
   scenario is E13's: a 2|2 committee split healing mid-run. *)
let golden_pins =
  [
    (1, 11_549, "60b3b63eeaa7eca98da494338a30ab37");
    (2, 13_372, "1f968ffc55fe8c3b82b320442c0e6c44");
    (3, 13_088, "3dba97102024b65152992656d78807ed");
  ]

let e13_trace ~seed ~tm =
  let hops = 2 in
  let gst_rng = Sim.Rng.create ~seed:(seed * 7919) in
  let gst = Sim.Rng.int_in gst_rng ~lo:0 ~hi:1_000 in
  let plan =
    match Faults.Fault_plan.of_string "part 5,6|7,8@250+500" with
    | Ok p -> p
    | Error e -> invalid_arg e
  in
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      Runner.network = Runner.Psync { gst };
      fault_plan = Some plan;
    }
  in
  let wcfg = { Weak_protocol.default_config with tm; patience = 4_000 } in
  let o = Runner.run cfg (Runner.Weak wcfg) in
  Fmt.str "%a"
    (Sim.Trace.pp ~msg:Protocols.Msg.pp ~obs:Protocols.Obs.pp)
    o.Runner.trace

(* ------------------------------------------------------------ tests *)

let () =
  Alcotest.run "quorum"
    [
      ( "laws",
        [
          Alcotest.test_case "constructors validate the quorum laws" `Quick
            (fun () ->
              let ok qs = check Alcotest.bool (QS.describe qs) true
                  (QS.validate qs = Ok ())
              and bad qs = check Alcotest.bool (QS.describe qs) true
                  (Result.is_error (QS.validate qs))
              in
              ok (QS.majority ~n:4 ~f:1 ());
              ok (QS.majority ~n:7 ~f:2 ());
              ok (QS.majority ~n:100 ~f:33 ());
              ok (QS.weighted ~weights:[| 2; 2; 1; 1; 1 |] ~f:1 ());
              ok (QS.grid ~rows:3 ~cols:3 ~f:1 ());
              (* n = 3f is one replica short of a majority system *)
              bad (QS.majority ~n:3 ~f:1 ());
              (* a heavyweight makes quorums intersect in a single
                 process: one Byzantine replica could equivocate *)
              bad (QS.weighted ~weights:[| 3; 1; 1; 1; 1 |] ~f:1 ());
              (* a 4x4 grid cannot survive f=3: the quorums are there
                 but three faults can pin every row *)
              bad (QS.grid ~rows:4 ~cols:4 ~f:3 ());
              bad (QS.majority ~n:4 ~f:1 ~q:2 ()));
          Alcotest.test_case "validated systems satisfy the laws by brute \
                             force" `Quick (fun () ->
              List.iter
                (fun qs ->
                  check Alcotest.bool (QS.describe qs) true
                    (laws_by_brute_force qs))
                [
                  QS.majority ~n:4 ~f:1 ();
                  QS.majority ~n:7 ~f:2 ();
                  QS.weighted ~weights:[| 2; 2; 1; 1; 1 |] ~f:1 ();
                  QS.grid ~rows:3 ~cols:3 ~f:1 ();
                ]);
          qcheck
            (QCheck.Test.make
               ~name:"validate accepts only law-abiding systems" ~count:500
               arbitrary_system (fun qs ->
                 (* brute force is the spec: validate may reject a
                    law-abiding system only never accept a violator *)
                 match QS.validate qs with
                 | Ok () -> laws_by_brute_force qs
                 | Error _ -> QCheck.assume_fail ()));
        ] );
      ( "committee",
        [
          Alcotest.test_case "a burst batches into one verified certificate"
            `Quick (fun () ->
              (* pipeline 1: the first request opens slot 0 alone; the
                 rest queue behind the busy lane and ship as one batch *)
              let w = make_world ~batch_cap:4 ~pipeline:1 () in
              for item = 0 to 3 do
                request w ~now:5 0 { C.item; commit = item mod 2 = 0 }
              done;
              drain ~now:9 w;
              let seq = w.coms.(0) in
              check Alcotest.int "two slots" 2 (C.slot_count seq);
              check Alcotest.int "two certs" 2 (C.decided_slots seq);
              (match C.cert_of_slot seq 1 with
              | None -> Alcotest.fail "no certificate"
              | Some cert ->
                  check Alcotest.int "batch of 3" 3
                    (List.length cert.Consensus.Dls.d_value);
                  (* any holder of the registry can verify, no quorum
                     participation needed *)
                  check Alcotest.bool "verifies" true
                    (C.verify_cert
                       {
                         C.qs = QS.majority ~n:4 ~f:1 ();
                         self = 1;
                         auth_ids = Array.init 4 Fun.id;
                         registry = w.registry;
                         signer = w.signers.(1);
                         batch_cap = 4;
                         pipeline = 2;
                         base_timeout = 50;
                       }
                       cert));
              for item = 0 to 3 do
                match C.verdict_of seq ~item with
                | Some (commit, slot) ->
                    check Alcotest.bool "fate" (item mod 2 = 0) commit;
                    check Alcotest.int "slot" (if item = 0 then 0 else 1) slot
                | None -> Alcotest.failf "item %d undecided" item
              done;
              (* slot 0 opened at the request (now=5) and certified
                 during the drain (now=9) *)
              check
                Alcotest.(option int)
                "cert latency from slot open" (Some 4)
                (C.cert_latency seq 0));
          Alcotest.test_case "pipeline depth caps concurrently open slots"
            `Quick (fun () ->
              let w = make_world ~batch_cap:1 ~pipeline:2 () in
              for item = 0 to 4 do
                request w 0 { C.item; commit = true }
              done;
              (* nothing delivered yet: demand for 5 slots, lanes for 2 *)
              check Alcotest.int "open slots capped" 2
                (C.slot_count w.coms.(0));
              drain w;
              check Alcotest.int "all slots drained" 5
                (C.slot_count w.coms.(0));
              check Alcotest.int "all decided" 5
                (C.decided_slots w.coms.(0)));
          Alcotest.test_case "duplicate requests are dropped" `Quick (fun () ->
              let w = make_world () in
              request w 0 { C.item = 7; commit = true };
              check Alcotest.bool "duplicate ignored" true
                (C.request w.coms.(0) ~now:0 { C.item = 7; commit = true } = []);
              check Alcotest.bool "conflict ignored" true
                (C.request w.coms.(0) ~now:0 { C.item = 7; commit = false } = []);
              drain w;
              check
                Alcotest.(option (pair bool int))
                "first verdict won" (Some (true, 0))
                (C.verdict_of w.coms.(0) ~item:7));
          Alcotest.test_case "tampered certificates are rejected" `Quick
            (fun () ->
              let w = make_world ~batch_cap:2 () in
              request w 0 { C.item = 0; commit = true };
              request w 0 { C.item = 1; commit = true };
              drain w;
              let cert =
                match C.cert_of_slot w.coms.(0) 0 with
                | Some c -> c
                | None -> Alcotest.fail "no certificate"
              in
              let cfg =
                {
                  C.qs = QS.majority ~n:4 ~f:1 ();
                  self = 0;
                  auth_ids = Array.init 4 Fun.id;
                  registry = w.registry;
                  signer = w.signers.(0);
                  batch_cap = 2;
                  pipeline = 2;
                  base_timeout = 50;
                }
              in
              check Alcotest.bool "genuine cert verifies" true
                (C.verify_cert cfg cert);
              let flipped =
                {
                  cert with
                  Consensus.Dls.d_value =
                    List.map
                      (fun v -> { v with C.commit = not v.C.commit })
                      cert.Consensus.Dls.d_value;
                }
              in
              check Alcotest.bool "flipped verdicts rejected" false
                (C.verify_cert cfg flipped);
              let wrong_registry =
                { cfg with C.registry = Auth.create ~seed:12 }
              in
              check Alcotest.bool "foreign registry rejected" false
                (C.verify_cert wrong_registry cert));
          Alcotest.test_case "foreign-batch decision requeues uncovered items"
            `Quick (fun () ->
              (* the sequencer proposes [0;1] for slot 0, but a forged
                 propose (channel-authenticated as the sequencer — what a
                 Byzantine sequencer could send) routes [9] to the other
                 replicas, whose 3-strong quorum decides it without the
                 sequencer's help. The sequencer must adopt that foreign
                 certificate and requeue the uncovered items into a fresh
                 slot rather than lose them. *)
              let w = make_world ~batch_cap:2 ~pipeline:1 () in
              request w 0 { C.item = 0; commit = true };
              request w 0 { C.item = 1; commit = true };
              (* replace the genuine round-0 propose with the forgery *)
              Queue.clear w.queue;
              let forged =
                {
                  C.slot = 0;
                  dm =
                    Consensus.Dls.Propose
                      {
                        round = 0;
                        value = [ { C.item = 9; commit = false } ];
                        justif = None;
                      };
                }
              in
              for k = 1 to 3 do
                Queue.add (0, k, forged) w.queue
              done;
              drain w;
              let seq = w.coms.(0) in
              check
                Alcotest.(option (pair bool int))
                "foreign item decided" (Some (false, 0))
                (C.verdict_of seq ~item:9);
              check Alcotest.bool "requeued item 0" true
                (match C.verdict_of seq ~item:0 with
                | Some (true, slot) -> slot > 0
                | _ -> false);
              check Alcotest.bool "requeued item 1" true
                (match C.verdict_of seq ~item:1 with
                | Some (true, slot) -> slot > 0
                | _ -> false);
              check Alcotest.int "two certificates" 2 (C.decided_slots seq));
          Alcotest.test_case "shared-mode workload spec roundtrips" `Quick
            (fun () ->
              let spec =
                "payments=64 hops=2 value=1000 commission=10 \
                 arrival=burst:64:1 mix=shared policy=reserve cap=0 \
                 liquidity=0 patience=100000 stuck=0 drift=0 gst=none \
                 committee=majority:16:5:32:4"
              in
              match Traffic.Workload.of_string spec with
              | Error e -> Alcotest.fail e
              | Ok w ->
                  (match w.Traffic.Workload.committee with
                  | Some c ->
                      check Alcotest.string "family" "majority"
                        c.Traffic.Workload.c_family;
                      check Alcotest.int "size" 16 c.Traffic.Workload.c_size;
                      check Alcotest.int "f" 5 c.Traffic.Workload.c_f;
                      check Alcotest.int "batch" 32 c.Traffic.Workload.c_batch;
                      check Alcotest.int "pipeline" 4
                        c.Traffic.Workload.c_pipeline;
                      check Alcotest.int "faulty" 0
                        c.Traffic.Workload.c_faulty
                  | None -> Alcotest.fail "committee spec lost");
                  check Alcotest.bool "roundtrip" true
                    (Traffic.Workload.of_string (Traffic.Workload.to_string w)
                    = Ok w));
        ] );
      ( "golden",
        [
          Alcotest.test_case
            "quorum-parametrized DLS is byte-identical to the pre-refactor \
             committee TM" `Quick (fun () ->
              List.iter
                (fun (seed, len, digest) ->
                  let rendered =
                    e13_trace ~seed ~tm:(Weak_protocol.Committee { f = 1 })
                  in
                  check Alcotest.int
                    (Printf.sprintf "seed %d length" seed)
                    len (String.length rendered);
                  check Alcotest.string
                    (Printf.sprintf "seed %d digest" seed)
                    digest
                    (Digest.to_hex (Digest.string rendered)))
                golden_pins);
          Alcotest.test_case
            "Committee {f} is the majority quorum system, trace for trace"
            `Quick (fun () ->
              List.iter
                (fun seed ->
                  let a =
                    e13_trace ~seed ~tm:(Weak_protocol.Committee { f = 1 })
                  in
                  let b =
                    e13_trace ~seed
                      ~tm:
                        (Weak_protocol.Quorum
                           { qs = QS.majority ~n:4 ~f:1 () })
                  in
                  check Alcotest.string
                    (Printf.sprintf "seed %d" seed)
                    (Digest.to_hex (Digest.string a))
                    (Digest.to_hex (Digest.string b)))
                [ 1; 2; 3 ]);
        ] );
    ]
