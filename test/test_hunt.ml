(* Tests for the coverage-guided adversarial hunt: outcome signatures,
   plan mutation, repro shrinking, and the search loop's determinism and
   coverage contracts. *)

open Sim
module FP = Faults.Fault_plan
module C = Xchain.Chaos
module Sig = Hunt.Signature

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let plan_of s =
  match FP.of_string s with Ok p -> p | Error e -> Alcotest.fail e

(* the hunt's blame split point: delta + sigma of the default config *)
let delta =
  let cfg = Protocols.Runner.default_config ~hops:2 ~seed:1 in
  cfg.Protocols.Runner.delta + cfg.Protocols.Runner.sigma

(* one signed run, exactly as the hunt executes candidates *)
let signed ~plan ~seed =
  let causal = Obsv.Causal.create () in
  let r = C.run_one ~causal ~plan ~seed () in
  (r, Sig.to_string (Sig.of_run ~causal ~delta r))

(* the soak's uniform plan for run seed [s] (2 hops, sync horizon) *)
let uniform_plan s =
  let prng = Rng.create ~seed:(s + 7919) in
  FP.random prng ~nprocs:5 ~horizon:4_345

(* ------------------------------ signature ------------------------------ *)

let signature_tests =
  [
    Alcotest.test_case "signatures are replay-stable" `Quick (fun () ->
        for s = 1 to 10 do
          let plan = uniform_plan s in
          let _, a = signed ~plan ~seed:s in
          let _, b = signed ~plan ~seed:s in
          check Alcotest.string (Printf.sprintf "seed %d" s) a b
        done);
    Alcotest.test_case "distinct behaviours get distinct signatures" `Quick
      (fun () ->
        let _, clean = signed ~plan:FP.none ~seed:1 in
        let _, blackout = signed ~plan:(plan_of "drop *>* 1") ~seed:1 in
        check Alcotest.bool "differ" true (clean <> blackout));
    Alcotest.test_case "count buckets are monotone log-ish" `Quick (fun () ->
        let b = Sig.count_bucket in
        check Alcotest.int "0" 0 (b 0);
        check Alcotest.int "1" 1 (b 1);
        check Alcotest.int "3" 2 (b 3);
        check Alcotest.int "7" 3 (b 7);
        check Alcotest.int "8" 4 (b 8);
        check Alcotest.int "big" 4 (b 10_000));
    Alcotest.test_case "share buckets split on 10/40/80 percent" `Quick
      (fun () ->
        let b = Sig.share_bucket ~total:100 in
        check Alcotest.int "zero" 0 (b 0);
        check Alcotest.int "10%" 1 (b 10);
        check Alcotest.int "40%" 2 (b 40);
        check Alcotest.int "80%" 3 (b 80);
        check Alcotest.int "all" 4 (b 100);
        check Alcotest.int "empty total" 0 (Sig.share_bucket ~total:0 5));
  ]

(* ------------------------------- mutate -------------------------------- *)

let mutate_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"mutation preserves validity and canonical form"
         ~count:100 QCheck.small_int (fun seed ->
           let rng = Rng.create ~seed in
           let nprocs = 5 and horizon = 2_000 in
           let p = ref (FP.normalize (FP.random rng ~nprocs ~horizon)) in
           let ok = ref true in
           for _ = 1 to 15 do
             p := Hunt.Mutate.mutate rng ~nprocs ~horizon ~corpus:[||] !p;
             ok :=
               !ok
               && FP.validate !p ~nprocs = Ok ()
               && (not (FP.is_none !p))
               && FP.normalize !p = !p
           done;
           !ok));
    Alcotest.test_case "mutation stream is a pure function of its seed" `Quick
      (fun () ->
        let stream seed =
          let rng = Rng.create ~seed in
          let p = ref (FP.normalize (FP.random rng ~nprocs:5 ~horizon:2_000)) in
          List.init 20 (fun _ ->
              p := Hunt.Mutate.mutate rng ~nprocs:5 ~horizon:2_000 ~corpus:[||] !p;
              FP.to_string !p)
        in
        check Alcotest.(list string) "same seed, same plans" (stream 7)
          (stream 7));
    Alcotest.test_case "splice draws from the corpus" `Quick (fun () ->
        (* with a single-plan corpus, repeated mutation eventually splices
           its crash clause in — pure determinism makes this a fixed fact
           of seed 3, not a flaky sample *)
        let rng = Rng.create ~seed:3 in
        let corpus = [| plan_of "crash 4@123+456" |] in
        let p = ref (plan_of "drop *>* 0.2") in
        let spliced = ref false in
        for _ = 1 to 40 do
          p := Hunt.Mutate.mutate rng ~nprocs:5 ~horizon:2_000 ~corpus !p;
          if
            List.exists
              (fun c -> c.FP.pid = 4 && c.FP.at = 123)
              !p.FP.crashes
          then spliced := true
        done;
        check Alcotest.bool "spliced" true !spliced);
  ]

(* ------------------------------- shrink -------------------------------- *)

(* interesting seeds of the uniform stream around seed 5 (stuck runs) *)
let interesting_seeds =
  List.filter
    (fun s ->
      match (fst (signed ~plan:(uniform_plan s) ~seed:s)).C.classification with
      | C.Stuck | C.Safety_violation -> true
      | _ -> false)
    (List.init 30 (fun i -> 5 + i))

let shrink_one ?max_trials s =
  let plan = uniform_plan s in
  let r, signature = signed ~plan ~seed:s in
  let replay q = snd (signed ~plan:q ~seed:s) in
  let shrunk, trials =
    Hunt.Shrink.shrink ~nprocs:5 ~horizon:4_345 ~signature ~replay
      ~fired:r.C.fired ?max_trials plan
  in
  (plan, signature, shrunk, trials)

let shrink_tests =
  [
    Alcotest.test_case "shrinking preserves the signature" `Quick (fun () ->
        check Alcotest.bool "have targets" true (interesting_seeds <> []);
        List.iter
          (fun s ->
            let _, signature, shrunk, _ = shrink_one s in
            check Alcotest.string
              (Printf.sprintf "seed %d" s)
              signature
              (snd (signed ~plan:shrunk ~seed:s)))
          interesting_seeds);
    Alcotest.test_case "shrunk plans are never larger" `Quick (fun () ->
        List.iter
          (fun s ->
            let plan, _, shrunk, _ = shrink_one s in
            check Alcotest.bool
              (Printf.sprintf "clauses seed %d" s)
              true
              (FP.clause_count shrunk <= FP.clause_count plan);
            check Alcotest.bool
              (Printf.sprintf "valid seed %d" s)
              true
              (FP.validate shrunk ~nprocs:5 = Ok ()))
          interesting_seeds);
    Alcotest.test_case "shrinking terminates at a fixpoint" `Quick (fun () ->
        List.iter
          (fun s ->
            let _, signature, shrunk, _ = shrink_one s in
            let replay q = snd (signed ~plan:q ~seed:s) in
            let again, _ =
              Hunt.Shrink.shrink ~nprocs:5 ~horizon:4_345 ~signature ~replay
                shrunk
            in
            check Alcotest.string
              (Printf.sprintf "seed %d" s)
              (FP.to_string shrunk) (FP.to_string again))
          interesting_seeds);
    Alcotest.test_case "max_trials caps the replay count" `Quick (fun () ->
        List.iter
          (fun s ->
            let _, _, _, trials = shrink_one ~max_trials:5 s in
            check Alcotest.bool
              (Printf.sprintf "seed %d" s)
              true (trials <= 5))
          interesting_seeds);
  ]

(* -------------------------------- hunt --------------------------------- *)

let hunt_tests =
  [
    Alcotest.test_case "report is identical for any domain count" `Quick
      (fun () ->
        let run domains =
          Hunt.Search.hunt ~gen_size:20 ~domains ~budget:60 ~seed:5 ()
        in
        let a = run 1 and b = run 2 in
        check Alcotest.string "corpus" (Hunt.Search.corpus_to_jsonl a)
          (Hunt.Search.corpus_to_jsonl b);
        check Alcotest.(list string) "repros" (Hunt.Search.repro_lines a)
          (Hunt.Search.repro_lines b);
        check Alcotest.int "signatures" a.Hunt.Search.signatures
          b.Hunt.Search.signatures);
    Alcotest.test_case "generation 0 replays the uniform stream" `Quick
      (fun () ->
        (* budget = one generation: the hunt IS the uniform sweep, so the
           baseline must count exactly the same signatures *)
        let r =
          Hunt.Search.hunt ~gen_size:40 ~budget:40 ~baseline:true
            ~shrink:false ~seed:5 ()
        in
        check Alcotest.int "equal coverage" r.Hunt.Search.signatures
          r.Hunt.Search.uniform_signatures);
    Alcotest.test_case "hunt beats uniform sampling at equal budget" `Quick
      (fun () ->
        let r =
          Hunt.Search.hunt ~gen_size:25 ~budget:100 ~baseline:true
            ~shrink:false ~seed:5 ()
        in
        check Alcotest.bool
          (Printf.sprintf "%d > %d" r.Hunt.Search.signatures
             r.Hunt.Search.uniform_signatures)
          true
          (r.Hunt.Search.signatures > r.Hunt.Search.uniform_signatures));
    Alcotest.test_case "every interesting witness ships a shrunken repro"
      `Quick (fun () ->
        let r = Hunt.Search.hunt ~gen_size:25 ~budget:75 ~seed:5 () in
        let interesting =
          List.filter
            (fun (e : Hunt.Search.entry) ->
              match e.Hunt.Search.classification with
              | C.Stuck | C.Safety_violation -> true
              | _ -> false)
            r.Hunt.Search.corpus
        in
        check Alcotest.bool "have witnesses" true (interesting <> []);
        List.iter
          (fun (e : Hunt.Search.entry) ->
            match e.Hunt.Search.shrunk with
            | None -> Alcotest.failf "witness %d not shrunk" e.Hunt.Search.index
            | Some (q, _) ->
                check Alcotest.bool
                  (Printf.sprintf "smaller %d" e.Hunt.Search.index)
                  true
                  (FP.clause_count q
                  <= FP.clause_count e.Hunt.Search.plan);
                (* the emitted repro replays to the same signature *)
                check Alcotest.string
                  (Printf.sprintf "replays %d" e.Hunt.Search.index)
                  e.Hunt.Search.signature
                  (snd (signed ~plan:q ~seed:e.Hunt.Search.seed)))
          interesting);
    Alcotest.test_case "budget is spent exactly" `Quick (fun () ->
        let r = Hunt.Search.hunt ~gen_size:30 ~budget:70 ~shrink:false ~seed:2 () in
        check Alcotest.int "runs" 70
          (List.fold_left
             (fun a (g : Hunt.Search.gen_stat) -> a + g.Hunt.Search.runs)
             0 r.Hunt.Search.generations);
        check Alcotest.(list int) "batch sizes" [ 30; 30; 10 ]
          (List.map
             (fun (g : Hunt.Search.gen_stat) -> g.Hunt.Search.runs)
             r.Hunt.Search.generations));
  ]

let () =
  Alcotest.run "hunt"
    [
      ("signature", signature_tests);
      ("mutate", mutate_tests);
      ("shrink", shrink_tests);
      ("hunt", hunt_tests);
    ]
