Golden CLI tests. Every output below is deterministic by construction
(integer time, seeded randomness, tie-breaking by insertion order), so
any drift in these transcripts is a real behavioural change.

The timeout-window derivation at zero drift is exact arithmetic:

  $ xchain params -n 2 --drift-ppm 0
  params n=2 δ=100 σ=10 ρ=0ppm margin=5
  a=[780; 225]
  d=[795; 240]
  ε=25 horizon=1790
  recurrence check: ok

Drift inflates the windows, never deflates them:

  $ xchain params -n 2 --drift-ppm 50000
  params n=2 δ=100 σ=10 ρ=50000ppm margin=5
  a=[846; 237]
  d=[862; 253]
  ε=26 horizon=1901
  recurrence check: ok

A seeded happy-path payment replays identically:

  $ xchain pay -n 2 --seed 3
  payment SUCCEEDED (12 messages, Bob paid at t=467)
  terminations:
    e1       released
    Bob      paid
    e0       released
    Alice    certified
    Chloe1   paid
  properties:
  C    ok       every honest step was executable
  T    ok       all active honest customers terminated in bound
  ES   ok       no honest escrow lost money
  CS1  ok       Alice holds χ
  CS2  ok       Bob was paid
  CS3  ok       every terminated honest connector is whole
  L    ok       Bob was paid

The audit postmortem pinpoints a mute Bob and conditions CS2 exactly as
the paper states it:

  $ xchain audit -n 2 --fault mute@bob --seed 2
  payment DID NOT COMPLETE under sync-timebound (8 messages, status quiescent)
  
  participants:
    Alice    refunded at t=955, conforms to Fig.2
    Chloe1   refunded at t=506, conforms to Fig.2
    Bob      [byzantine: mute] never terminated, DEVIATES from Fig.2
    e0       refunded at t=857, conforms to Fig.2
    e1       refunded at t=489, conforms to Fig.2
  
  properties:
  C    ok       every honest step was executable
  T    ok       all active honest customers terminated
  ES   ok       no honest escrow lost money
  CS1  ok       Alice got her money back
  CS2  n/a      Bob or his escrow is Byzantine
  CS3  ok       every terminated honest connector is whole
  L    n/a      some party does not abide
  
  promises: all honoured
  conservation: every book audits




An atomic swap deal completes with acceptable payoffs on both sides:

  $ xchain deal swap
  deal(2 parties)
    0 -> 1: 5 coinA
    1 -> 0: 3 coinB
  well-formed: true
  Safety         ok       all payoffs acceptable
  Termination    ok       no compliant asset left in escrow
  StrongLiveness ok       all transfers happened
  party 0: gained {3 coinB}, lost {5 coinA}
  party 1: gained {5 coinA}, lost {3 coinB}

The metrics catalogue enumerates every telemetry family the binary can
emit, populated by deterministic probe workloads:

  $ xchain metrics | head -8
  # metric families registered after probe workloads
  xchain_consensus_rounds_total              counter   Consensus rounds entered (across all replicas)
  xchain_consensus_view_changes_total        counter   Round timeouts that forced a view change
  xchain_consensus_decisions_total           counter   Decision certificates assembled
  xchain_consensus_rounds_to_decide          histogram Rounds needed to reach a decision (1 = decided in round 0)
  xchain_committee_requests_total            counter   Verdict requests accepted by committee sequencers
  xchain_committee_certs_total               counter   Batch certificates assembled (slots decided)
  xchain_committee_batch_occupancy           histogram Verdicts per batch certificate

The shared-committee runner contributes its own families — request and
certificate counters plus batching and latency histograms:

  $ xchain metrics | grep -E '^xchain_committee_'
  xchain_committee_requests_total            counter   Verdict requests accepted by committee sequencers
  xchain_committee_certs_total               counter   Batch certificates assembled (slots decided)
  xchain_committee_batch_occupancy           histogram Verdicts per batch certificate
  xchain_committee_rounds_to_certify         histogram Consensus rounds needed per certificate (1 = round 0)
  xchain_committee_cert_latency              histogram Sim-time from slot open to certificate

  $ xchain metrics --help | head -6
  NAME
         xchain-metrics - List every telemetry metric the simulator can emit
         (runs small probe workloads to populate the registry)
  
  SYNOPSIS
         xchain metrics [--full] [OPTION]…


Simulation commands export their registry as Prometheus text with
"--metrics-out -"; the metric names below are a stable interface:

  $ xchain pay -n 2 --seed 3 --metrics-out - --spans-out spans.jsonl > pay.out
  $ grep -E '^xchain_(messages_sent_total|payments_committed_total|payment_latency_count)' pay.out
  xchain_messages_sent_total 12
  xchain_payments_committed_total{protocol="sync-timebound"} 1
  xchain_payment_latency_count{protocol="sync-timebound"} 1

The same run writes one JSONL span per participant and phase under a
root payment span carrying the commit status:

  $ head -2 spans.jsonl
  {"id":0,"parent":null,"name":"payment","start":0,"end":467,"status":"commit","attrs":{"seed":"3","hops":"2","protocol":"sync-timebound"}}
  {"id":1,"parent":0,"name":"participant:alice","start":0,"end":545,"status":"certified","attrs":{}}

A chaos run with no plan is an ordinary payment and commits; a forced
crash of a connector stalls it without ever violating safety, and the
outcome replays from the printed seed and plan:

  $ xchain chaos --seed 3
  plan: none
  classification: safe-commit

  $ xchain chaos --seed 3 --plan 'crash 1@100'
  plan: crash 1@100
  classification: stuck

A bounded soak sweeps random plans and reports the outcome taxonomy on
one line (zero safety violations is the exit-0 criterion):

  $ xchain chaos --soak --runs 20 --seed 1
  chaos soak: 20 runs — 10 safe-commit, 0 safe-abort, 10 stuck, 0 safety-violation

The soak shards runs over OCaml domains; every deterministic output is
byte-identical at any -j, and --out captures the taxonomy as JSON whose
only nondeterministic member is the trailing timing block:

  $ xchain chaos --soak --runs 20 --seed 1 -j 4
  chaos soak: 20 runs — 10 safe-commit, 0 safe-abort, 10 stuck, 0 safety-violation
  $ xchain chaos --soak --runs 20 --seed 1 -j 1 --out c1.json > /dev/null
  $ xchain chaos --soak --runs 20 --seed 1 -j 4 --out c4.json > /dev/null
  $ sed 's/,"timing":{[^}]*}//g' c1.json > c1.stripped
  $ sed 's/,"timing":{[^}]*}//g' c4.json > c4.stripped
  $ cmp c1.stripped c4.stripped && echo deterministic
  deterministic
  $ sed 's/,"timing":{[^}]*}//g' c1.json
  {"chaos":{"runs":20,"hops":2,"protocol":"sync","seed":1,"commits":10,"aborts":0,"stuck":10,"events":197,"violations":[]}}

--out without --soak is a usage error, as is a negative -j:

  $ xchain chaos --seed 3 --out c.json
  xchain chaos: --out requires --soak
  [2]
  $ xchain chaos --soak --runs 4 --jobs=-2
  xchain chaos: -j must be >= 0
  [2]

Coverage-guided hunting mutates fault plans toward unseen outcome
signatures and shrinks every stuck or violating witness to a minimal
one-line repro:

  $ xchain hunt --budget 40 --gen 20 --seed 5
  hunt: 40 runs over 2 generations, 19 signatures
    commits=22 aborts=0 stuck=18 violations=0 events=443
    corpus: 19 entries, 8 shrunk (238 shrink trials)
    [stuck] xchain chaos -p sync --hops 2 --seed 5 --plan 'crash 1@1016+1; crash 3@1297+1; part 0,2|1,3,4@240+1'
    [stuck] xchain chaos -p sync --hops 2 --seed 7 --plan 'corrupt *>* 0.148; crash 0@957+1; crash 3@1812'
    [stuck] xchain chaos -p sync --hops 2 --seed 10 --plan 'corrupt *>* 0.088'
    [stuck] xchain chaos -p sync --hops 2 --seed 14 --plan 'drop 3>* 0.057; crash 1@1812; crash 0@1812'
    [stuck] xchain chaos -p sync --hops 2 --seed 16 --plan 'part 0,3,4|1,2@55'
    [stuck] xchain chaos -p sync --hops 2 --seed 35 --plan 'corrupt 3>1 0.074; crash 1@1812; crash 4@859+1; part 0|1,2,3,4@216'
    [stuck] xchain chaos -p sync --hops 2 --seed 37 --plan 'corrupt *>1 0.299; crash 1@1812; crash 0@1812'
    [stuck] xchain chaos -p sync --hops 2 --seed 42 --plan 'crash 1@1016+1; crash 3@1297+1; part 0,2|1,3,4@315+1; part 0,1,2|3,4@447+1'

A shrunken repro replays to the same outcome bit-for-bit:

  $ xchain chaos -p sync --hops 2 --seed 16 --plan 'part 0,3,4|1,2@55'
  plan: part 0,3,4|1,2@55
  classification: stuck

The hunt's report, corpus and repro files are byte-identical at any -j
(only the report's trailing timing block differs):

  $ xchain hunt --budget 40 --gen 20 --seed 5 -j 1 --out h1.json --corpus-out hc1.jsonl --repros-out hr1.txt > /dev/null
  $ xchain hunt --budget 40 --gen 20 --seed 5 -j 4 --out h4.json --corpus-out hc4.jsonl --repros-out hr4.txt > /dev/null
  $ sed 's/,"timing":{[^}]*}//g' h1.json > h1.stripped
  $ sed 's/,"timing":{[^}]*}//g' h4.json > h4.stripped
  $ cmp h1.stripped h4.stripped && cmp hc1.jsonl hc4.jsonl && cmp hr1.txt hr4.txt && echo deterministic
  deterministic

A plan that parses but fails structural validation is a clean usage
error in chaos and hunt alike, not a crash:

  $ xchain chaos --plan 'crash 9@100'
  xchain chaos: bad fault plan: crash: pid 9 out of range (0..4)
  [2]
  $ xchain chaos --plan 'drop 1>2 0'
  xchain chaos: bad fault plan: link rule: all probabilities zero (degenerate clause with no effect)
  [2]
  $ xchain hunt --budget 0
  xchain hunt: --budget must be positive
  [2]

An exhaustive corner sweep proves the sync protocol clean on every
extremal schedule of a one-hop instance, and convicts the drift-blind
baseline with a concrete witness corner; the sweep is sharded over
domains and byte-identical at any -j:

  $ xchain explore --protocol sync --hops 1 -j 1 --out e1.json
  explore: 1 hops, 512 corners — 0 violations
  $ xchain explore --protocol sync --hops 1 -j 4 --out e4.json > /dev/null
  $ sed 's/,"timing":{[^}]*}//g' e1.json > e1.stripped
  $ sed 's/,"timing":{[^}]*}//g' e4.json > e4.stripped
  $ cmp e1.stripped e4.stripped && echo deterministic
  deterministic
  $ sed 's/,"timing":{[^}]*}//g' e1.json
  {"explore":{"hops":1,"protocol":"sync-timebound","drift_ppm":50000,"corners":512,"violations":0,"first_witness":null,"events":3584}}

  $ xchain explore --protocol naive --hops 1
  explore: 1 hops, 512 corners — 64 violations
  first witness: hops=1 delays=0xc/6 clocks=0x4/3 -> T    VIOLATED c1 (pid 1) never terminated; L    VIOLATED all parties abided and Bob was not paid
  [1]

A corner budget too small for the instance is a usage error:

  $ xchain explore --protocol sync --hops 1 --max-corners 100
  xchain explore: Explore.sweep: 512 corners exceed the budget 100
  [2]

Malformed plans and unreadable plan files are usage errors:

  $ xchain chaos --plan 'flood *>* 1'
  xchain chaos: bad fault plan (--plan): unrecognised clause "flood *>* 1"
  [2]

  $ xchain chaos --plan-file no-such.plan
  xchain chaos: cannot read plan file: no-such.plan: No such file or directory
  [2]

The Figure 2 escrow automaton renders with its grey output states:

  $ xchain dot escrow | head -6
  digraph "escrow0" {
    rankdir=LR;
    node [fontsize=10];
    "send_g" [shape=box style=filled fillcolor=lightgrey];
    "await_money" [shape=circle];
    "send_p" [shape=box style=filled fillcolor=lightgrey];

A load run multiplexes many concurrent payments over one engine run with
shared escrow books; exit 0 certifies zero safety violations plus clean
conservation across the shared ledgers:

  $ xchain load --payments 12 --arrival poisson:30 --mix sync:1,weak:1 --seed 3
  load: payments=12 hops=2 value=1000 commission=10 arrival=poisson:30 mix=sync:1,weak:1 policy=reserve cap=0 liquidity=0 patience=2000 stuck=0 drift=10000 gst=none
  seed 3, plan none, engine quiescent
  payments 12: committed 12, aborted 0, rejected 0, stuck 0, violated 0
  liquidity rejections 0, conservation ok
  latency ticks p50 227, p95 437, p99 437, max 437
  makespan 22271 ticks, throughput 538 commits/Mtick, peak in-flight 12
    sync       5 assigned, 5 committed
    weak       7 assigned, 7 committed
  

Closed-loop traffic under scarce liquidity rejects the unfunded tail at
the admission queue instead of violating safety (commits permanently
consume payer liquidity, so 2 units fund exactly 2 commits):

  $ xchain load --payments 8 --arrival closed:2:10 --mix weak --liquidity 2 --patience 300 --seed 5
  load: payments=8 hops=2 value=1000 commission=10 arrival=closed:2:10 mix=weak:1 policy=reserve cap=0 liquidity=2 patience=300 stuck=0 drift=10000 gst=none
  seed 5, plan none, engine quiescent
  payments 8: committed 2, aborted 0, rejected 6, stuck 0, violated 0
  liquidity rejections 0, conservation ok
  latency ticks p50 115, p95 258, p99 258, max 258
  makespan 22002 ticks, throughput 90 commits/Mtick, peak in-flight 2
    weak       8 assigned, 2 committed
  

A fault plan addresses host-level pids (0..stride-1) and applies to every
payment block; an unhealed escrow crash wedges in-flight payments as
stuck without ever violating safety:

  $ xchain load --payments 20 --arrival poisson:50 --mix weak --plan 'crash 4@1500' --seed 9 | grep 'payments 20'
  payments 20: committed 19, aborted 0, rejected 0, stuck 1, violated 0

The JSON report is bit-identical for equal (workload, seed, plan) once
the trailing host wall-clock block is stripped (that block is the only
nondeterministic member):

  $ xchain load --payments 10 --mix htlc,atomic --seed 7 --out a.json > /dev/null
  $ xchain load --payments 10 --mix htlc,atomic --seed 7 --out b.json > /dev/null
  $ sed 's/,"timing":{[^}]*}//g' a.json > a.stripped
  $ sed 's/,"timing":{[^}]*}//g' b.json > b.stripped
  $ cmp a.stripped b.stripped && echo deterministic
  deterministic

The report counts engine events (the deterministic numerator of the
events/sec throughput in the timing block):

  $ grep -c '"events":' a.stripped
  1

A multi-replication load run shards seeds over fleet domains; every
deterministic line is byte-identical for any -j, so -j 1 and -j 4
transcripts and stripped reports must agree exactly:

  $ xchain load --payments 8 --mix sync --seed 3 --replications 3 -j 1 --out r1.json
  load: payments=8 hops=2 value=1000 commission=10 arrival=poisson:40 mix=sync:1 policy=reserve cap=0 liquidity=0 patience=2000 stuck=0 drift=10000 gst=none
  replications 3: seeds 3..5, plan none
    seed 3: committed 8, aborted 0, rejected 0, stuck 0, violated 0
    seed 4: committed 8, aborted 0, rejected 0, stuck 0, violated 0
    seed 5: committed 8, aborted 0, rejected 0, stuck 0, violated 0
  total: committed 24, aborted 0, rejected 0, stuck 0, violated 0 — all clean
  $ xchain load --payments 8 --mix sync --seed 3 --replications 3 -j 4 --out r4.json > /dev/null
  $ sed 's/,"timing":{[^}]*}//g' r1.json > r1.stripped
  $ sed 's/,"timing":{[^}]*}//g' r4.json > r4.stripped
  $ cmp r1.stripped r4.stripped && echo deterministic
  deterministic

A shared-committee sweep runs a burst of payments through one batching
notary committee per cell (family x batch cap); every cell must commit
every payment, and batching cuts certificates (6 certs for 16 payments
at cap 8 vs one per payment unbatched):

  $ xchain committee --payments 16 --committees majority:4:1 --batches 1,8 --seed 1
  committee sweep: 16 payments x 2 hops, pipeline 4, seed 1, 2 cells
  family      size   f faulty  batch  committed  certs maxbat rounds  decided/Mt cert-lat
  majority       4   1      0      1         16     16      1     16       14440      226
  majority       4   1      0      8         16      6      8      6       24390      224
  all cells clean

Per-run telemetry sinks are refused under replications (their ids would
interleave nondeterministically across domains):

  $ xchain load --payments 8 --replications 2 --blame
  xchain load: --replications > 1 is incompatible with --spans-out/--metrics-out/--trace-out/--dag-out/--blame/--profile/--monitor/--series-out/--bundle-out (run a single replication for per-run telemetry)
  [2]

Bad specs, incompatible policies and malformed plans are usage errors:

  $ xchain load --spec 'bogus'
  xchain load: bad --spec: expected key=value, got "bogus"
  [2]

  $ xchain load --mix sync --policy optimistic
  xchain load: bad workload: optimistic policy is incompatible with sync/naive: their escrows proceed past a failed deposit (use policy=reserve)
  [2]

  $ xchain load --plan 'flood 1'
  xchain load: bad fault plan (--plan): unrecognised clause "flood 1"
  [2]

A malformed value inside the multi-key spec line names its own key:

  $ xchain load --spec 'payments=5 arrival=fibonacci:3'
  xchain load: bad --spec: arrival: unrecognised arrival "fibonacci:3"
  [2]
  $ xchain load --spec 'payments=5 topology=ring:4'
  xchain load: bad --spec: topology: unknown topology family "ring"
  [2]

Payment-graph routing (docs/routing.md): `xchain route` analyses a
topology — candidate disjoint paths, the max-flow ceiling, and the split
a router would pick for a value:

  $ xchain route 'graph:4;0>1:600:0,0>2:600:0,1>3:600:0,2>3:600:0' --value 1000 --splits 2
  topology: graph:4;0>1:600:0,0>2:600:0,1>3:600:0,2>3:600:0
  nodes 4, edges 4, source 0, sink 3
  max-flow bound: 1200
  liquidity histogram:
    100-999    4 edge(s)
  candidate paths (cost order, max 2):
    0>1>3  capacity 600
    0>2>3  capacity 600
  route 1000 via shortest:
    0>1>3  carries 600
    0>2>3  carries 400

Rebalancing proposes batched moves that even out a node's outgoing
liquidity:

  $ xchain route 'graph:3;0>1:900:0,0>2:100:0,1>2:500:0' --value 100 --rebalance
  topology: graph:3;0>1:900:0,0>2:100:0,1>2:500:0
  nodes 3, edges 3, source 0, sink 2
  max-flow bound: 600
  liquidity histogram:
    100-999    3 edge(s)
  candidate paths (cost order, max 4):
    0>2  capacity 100
    0>1>2  capacity 500
  route 100 via shortest:
    0>2  carries 100
  rebalance: 1 move(s), volume 400, 1 batch(es)
  batch 0:
    node 0: 0 -> 1 amount 400
  

A graph workload routes every payment over shared per-edge liquidity;
each split runs the unmodified linear protocol over its path:

  $ xchain load --payments 6 --topology 'graph:4;0>1:3000:5,0>2:3000:5,1>3:3000:5,2>3:3000:5' --splits 2 --seed 3
  load: payments=6 hops=2 value=1000 commission=10 arrival=poisson:40 mix=sync:1 policy=reserve cap=0 liquidity=0 patience=2000 stuck=0 drift=10000 gst=none topology=graph:4;0>1:3000:5,0>2:3000:5,1>3:3000:5,2>3:3000:5 route=shortest splits=2
  seed 3, plan none, engine quiescent
  payments 6: committed 5, aborted 0, rejected 1, stuck 0, violated 0
  liquidity rejections 0, conservation ok
  latency ticks p50 389, p95 444, p99 444, max 444
  makespan 12673 ticks, throughput 394 commits/Mtick, peak in-flight 5
  routing shortest over graph:4;0>1:3000:5,0>2:3000:5,1>3:3000:5,2>3:3000:5: 6 paths, 1 split, 0 partial
    value 5000/6000 committed, 6/6 instances paid, 1 no-route
    sync       6 assigned, 5 committed
  

Graph runs shard over fleet domains like linear ones — stripped reports
are byte-identical for any -j:

  $ xchain load --payments 6 --topology 'hub:3:3000:5' --splits 2 --seed 3 --replications 2 -j 1 --out g1.json > /dev/null
  $ xchain load --payments 6 --topology 'hub:3:3000:5' --splits 2 --seed 3 --replications 2 -j 4 --out g4.json > /dev/null
  $ sed 's/,"timing":{[^}]*}//g' g1.json > g1.stripped
  $ sed 's/,"timing":{[^}]*}//g' g4.json > g4.stripped
  $ cmp g1.stripped g4.stripped && echo deterministic
  deterministic

chaos and hunt study one payment, so --topology reduces to the path the
router would pick — or a clean refusal when the graph cannot carry the
payment:

  $ xchain chaos --topology 'hub:3' --seed 3 --plan 'crash 1@100'
  plan: crash 1@100
  classification: stuck

  $ xchain chaos --topology 'graph:3;0>1:500:600,1>2:500:10' --seed 3
  xchain chaos: --topology: no route: 1 disjoint path(s) carry at most 490 of 1000
  [2]

Causal tracing reconstructs one payment's happens-before graph and
decomposes its end-to-end latency along the critical path — under a late
GST the protocol still commits (the paper's success guarantee) and the
blame table shows the latency was the pre-GST network, not the timeouts:

  $ xchain trace --seed 2 --gst 2000
  protocol sync-timebound, 2 hops, seed 2: commit, engine stopped at t=2803
  causal graph: 26 nodes, 33 edges
  blame trace=-1 total=2225 ticks (rooted path, 12 hops)
    transit          429 ticks   19%
    gst_wait        1796 ticks   80%
  
  critical path:
  t=0        pid 3    send:G                       +110    transit
  t=0        pid 3    send:G                       +968    gst_wait
  t=1078     pid 0    deliver:G                    +0      processing
  t=1078     pid 0    send:money                   +110    transit
  t=1078     pid 0    send:money                   +828    gst_wait
  t=2016     pid 3    deliver:money                +0      processing
  t=2016     pid 3    send:P                       +95     transit
  t=2111     pid 1    deliver:P                    +0      processing
  t=2111     pid 1    send:money                   +94     transit
  t=2205     pid 4    deliver:money                +0      processing
  t=2205     pid 4    send:P                       +7      transit
  t=2212     pid 2    deliver:P                    +0      processing
  t=2212     pid 2    send:chi                     +13     transit
  t=2225     pid 4    deliver:chi                  +0      processing
  t=2225     pid 4    send:chi (sink)

On a load run the decomposition aggregates over every committed payment
plus the slowest 1%, and an in-flight cap shows up as queueing blame:

  $ xchain load --payments 30 --seed 2 --cap 2 --blame | tail -n 8
  
  blame: 11 payments, 14890 ticks end-to-end
    queueing       11265 ticks   75%
    transit         3625 ticks   24%
  slowest 1 (p99 tail): 2378 ticks
    queueing        1999 ticks   84%
    transit          379 ticks   15%
  

The Chrome-trace and DAG exports are byte-identical for equal inputs:

  $ xchain load --payments 10 --mix sync --seed 7 --trace-out ta.json --dag-out da.jsonl > /dev/null
  $ xchain load --payments 10 --mix sync --seed 7 --trace-out tb.json --dag-out db.jsonl > /dev/null
  $ cmp ta.json tb.json && cmp da.jsonl db.jsonl && echo deterministic
  deterministic

xchain trace exports its run as JSON too; everything but the trailing
timing block (events/sec over host wall time) is deterministic:

  $ xchain trace --seed 2 --gst 2000 --out t1.json > /dev/null
  $ xchain trace --seed 2 --gst 2000 --out t2.json > /dev/null
  $ sed -E 's/,"(prof_)?timing":\{[^}]*\}//g' t1.json > t1.stripped
  $ sed -E 's/,"(prof_)?timing":\{[^}]*\}//g' t2.json > t2.stripped
  $ cmp t1.stripped t2.stripped && echo deterministic
  deterministic
  $ cat t1.stripped
  {"trace":{"protocol":"sync-timebound","hops":2,"seed":2,"committed":true,"end_time":2803,"nodes":26,"edges":33},"blame":{"trace":-1,"root":0,"sink":16,"total":2225,"rooted":true,"path":[0,2,3,5,6,8,9,10,11,13,14,15,16],"by_category":{"queueing":0,"transit":429,"gst_wait":1796,"timeout":0,"downtime":0,"processing":0,"external":0}}}
  $ grep -c '"events_processed":' t1.json
  1

The dispatch profiler attributes wall time and allocation to
(payment, process role, event kind) sites. Its hot-site table orders by
measured wall time, so it stays off this transcript; but site counts,
allocation words and stack frames are deterministic — only the wall
figures vary, and they live in strippable "prof_timing" members (JSON)
or the trailing weight column (collapsed stacks):

  $ xchain profile --payments 12 --seed 3 --out r.json --profile-out p1.json --collapsed-out s1.folded > /dev/null
  $ xchain profile --payments 12 --seed 3 --profile-out p2.json --collapsed-out s2.folded > /dev/null
  $ sed -E 's/,"(prof_)?timing":\{[^}]*\}//g' p1.json > p1.stripped
  $ sed -E 's/,"(prof_)?timing":\{[^}]*\}//g' p2.json > p2.stripped
  $ cmp p1.stripped p2.stripped && echo deterministic
  deterministic
  $ sed 's/ [0-9]*$//' s1.folded > s1.frames
  $ sed 's/ [0-9]*$//' s2.folded > s2.frames
  $ cmp s1.frames s2.frames && echo deterministic
  deterministic
  $ head -4 s1.frames
  run;sched;timer
  run;escrow;timer
  pay#0;sched;deliver
  pay#0;sched;timer

Every dequeued engine event lands in exactly one profile site: the
profile's totals count reconciles exactly with the engine events the
load report itself counts:

  $ grep -o '"events":[0-9]*' r.json
  "events":300
  $ grep -o '"totals":{"count":[0-9]*' p1.json
  "totals":{"count":300

--profile on load and chaos arms the same profiler (the table is
wall-ordered, so only the exit codes and sinks are asserted here); a
profiled soak is forced onto one domain and keeps its deterministic
summary:

  $ xchain load --payments 12 --arrival poisson:30 --mix sync:1,weak:1 --seed 3 --profile > /dev/null
  $ xchain chaos --soak --runs 20 --seed 1 --profile --profile-out cp.json > /dev/null
  $ grep -c '"profile"' cp.json
  1

The metrics catalogue's probe workloads include a routed hub graph, so
the load and routing families are part of the stable catalogue:

  $ xchain metrics | grep -E '^xchain_(load|route)_'
  xchain_load_payments_total                 counter   Load-run payment outcomes
  xchain_load_commit_latency                 histogram Commit latency (arrival to Bob's payout), ticks
  xchain_load_in_flight_max                  gauge     Peak concurrently admitted payments
  xchain_route_paths_total                   counter   Paths selected by the payment router
  xchain_route_no_route_total                counter   Payments rejected because no route could carry them
  xchain_route_committed_value_total         counter   Value committed end-to-end across all splits

The profiler handles a graph workload like a linear one: per-payment
attribution, deterministic frames, and totals that reconcile with the
routed run's own event count:

  $ xchain profile --payments 12 --topology hub:3:3000:5 --splits 2 --seed 3 --out gr.json --profile-out gp1.json --collapsed-out gs1.folded > /dev/null
  $ xchain profile --payments 12 --topology hub:3:3000:5 --splits 2 --seed 3 --profile-out gp2.json --collapsed-out gs2.folded > /dev/null
  $ sed -E 's/,"(prof_|mon_)?timing":\{[^}]*\}//g' gp1.json > gp1.stripped
  $ sed -E 's/,"(prof_|mon_)?timing":\{[^}]*\}//g' gp2.json > gp2.stripped
  $ cmp gp1.stripped gp2.stripped && echo deterministic
  deterministic
  $ sed 's/ [0-9]*$//' gs1.folded > gs1.frames
  $ sed 's/ [0-9]*$//' gs2.folded > gs2.frames
  $ cmp gs1.frames gs2.frames && echo deterministic
  deterministic
  $ grep -o '"events":[0-9]*' gr.json
  "events":70
  $ grep -o '"totals":{"count":[0-9]*' gp1.json
  "totals":{"count":70

Runtime verification (docs/observability.md): --monitor re-checks the
safety properties online and pins the exact sim-time of the first
breach, where the post-hoc report only sees the final state:

  $ xchain chaos -p htlc --hops 2 --seed 9 --plan 'dup *>* 0.289' --monitor
  plan: dup *>* 0.289
  classification: safety-violation
  violated CS1: Alice terminated with net -1010 and no χ
  monitor: first breach CS1 at t=513: Alice terminated with net -1010 and no χ
  repro: xchain chaos -p htlc --hops 2 --seed 9 --plan 'dup *>* 0.289'
  [1]

--stop-on-violation halts the engine at that instant (the bundle's
end_time equals the breach time, not the full horizon), and the
forensic bundle plus telemetry series replay byte-for-byte:

  $ xchain chaos -p htlc --hops 2 --seed 9 --plan 'dup *>* 0.289' --monitor --stop-on-violation --bundle-out vb1.json --series-out vs1.jsonl > /dev/null
  [1]
  $ grep -o '"reason":"[a-z]*"' vb1.json && grep -o '"end_time":[0-9]*' vb1.json
  "reason":"violation"
  "end_time":513
  $ xchain chaos -p htlc --hops 2 --seed 9 --plan 'dup *>* 0.289' --monitor --stop-on-violation --bundle-out vb2.json --series-out vs2.jsonl > /dev/null
  [1]
  $ cmp vb1.json vb2.json && cmp vs1.jsonl vs2.jsonl && echo deterministic
  deterministic

The series samples on the deterministic sim-clock — queue depth and
per-escrow pools every 100 ticks, with a trailing meta line:

  $ cat vs1.jsonl
  {"t":70,"queue_depth":1,"escrow0_pool":0,"escrow1_pool":0}
  {"t":170,"queue_depth":3,"escrow0_pool":1010,"escrow1_pool":0}
  {"t":302,"queue_depth":3,"escrow0_pool":1010,"escrow1_pool":1000}
  {"t":421,"queue_depth":3,"escrow0_pool":1010,"escrow1_pool":0}
  {"series":{"rows":4,"interval":100}}

A stuck run is a liveness loss, not a safety breach: the monitor stays
clean but the flight recorder still dumps a bundle showing what the
system was (not) doing when progress died:

  $ xchain chaos --seed 3 --plan 'crash 1@100' --monitor --bundle-out sb.json
  plan: crash 1@100
  classification: stuck
  monitor: clean after 8 steps
  $ grep -o '"reason":"[a-z]*"' sb.json && grep -o '"property":"[^"]*"' sb.json
  "reason":"stuck"
  "property":"-"

Per-run telemetry is single-run only; the soak refuses it and points at
replaying a repro line:

  $ xchain chaos --soak --runs 5 --stop-on-violation
  xchain chaos: --soak is incompatible with --stop-on-violation/--series-out/--fault (replay a single run from its repro line for per-run telemetry)
  [2]

chaos single runs take the Byzantine --fault strategies audit uses, so
repro lines for strategy-induced outcomes replay directly:

  $ xchain chaos --seed 3 --fault mute@bob
  plan: none
  classification: safe-abort
  $ xchain chaos --seed 3 --fault bogus@nobody
  xchain chaos: unknown role "nobody"
  [2]

A monitored load run prints the same verdict line — clean here, with
the online checks re-evaluating the exact audits the report performs:

  $ xchain load --payments 8 --mix sync --seed 3 --monitor | tail -1
  monitor: clean after 201 steps
