(* Tests for the fault-injection subsystem: the declarative plan grammar,
   the deterministic injector, engine crash–recovery semantics, runner
   wiring, and the chaos soak's safety guarantee. *)

open Sim
module FP = Faults.Fault_plan

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let plan_of s =
  match FP.of_string s with Ok p -> p | Error e -> Alcotest.fail e

(* Arbitrary plan records for 6 processes, unconstrained by the grammar:
   link rules may combine several kinds in one record (which the grammar
   prints as separate clauses), probabilities and windows may be
   degenerate (which validate rejects). *)
let arbitrary_plan =
  let open QCheck.Gen in
  let endpoint = oneof [ return None; map Option.some (int_range 0 5) ] in
  let pm = int_range 0 1000 in
  let link =
    map
      (fun ((src, dst), (drop_pm, dup_pm, corrupt_pm)) ->
        { FP.src; dst; drop_pm; dup_pm; corrupt_pm })
      (pair (pair endpoint endpoint) (triple pm pm pm))
  in
  let crash =
    map
      (fun (pid, at, dur) ->
        { FP.pid; at; recover_at = Option.map (fun d -> at + d) dur })
      (triple (int_range 0 5) (int_range 0 1_000) (option (int_range 0 500)))
  in
  let partition =
    map
      (fun (((cut, from_), dur), named) ->
        let pids = [ 0; 1; 2; 3; 4; 5 ] in
        let groups =
          [
            List.filteri (fun i _ -> i < cut) pids;
            List.filteri (fun i _ -> i >= cut) pids;
          ]
        in
        let gnames =
          if named then
            List.mapi (fun i _ -> Some (Printf.sprintf "blk%d" i)) groups
          else []
        in
        { FP.groups; gnames; from_; until_ = Option.map (fun d -> from_ + d) dur })
      (pair
         (pair (pair (int_range 1 5) (int_range 0 1_000)) (option (int_range 0 500)))
         bool)
  in
  let plan =
    map
      (fun ((links, crashes), (partitions, gst_jitter)) ->
        (* keep at most one crash per pid so only interesting validation
           failures (degenerate windows, zero rules) remain reachable *)
        let crashes =
          List.rev
            (List.fold_left
               (fun acc (c : FP.crash_spec) ->
                 if
                   List.exists
                     (fun (c' : FP.crash_spec) -> c'.FP.pid = c.FP.pid)
                     acc
                 then acc
                 else c :: acc)
               [] crashes)
        in
        { FP.links; crashes; partitions; gst_jitter })
      (pair
         (pair (list_size (int_range 0 4) link) (list_size (int_range 0 3) crash))
         (pair (list_size (int_range 0 2) partition) (int_range 0 100)))
  in
  QCheck.make ~print:(fun p -> FP.to_string p) plan

(* ------------------------------ fault plan ----------------------------- *)

let plan_tests =
  [
    Alcotest.test_case "empty plan prints and parses as none" `Quick (fun () ->
        check Alcotest.string "print" "none" (FP.to_string FP.none);
        check Alcotest.bool "parse none" true (FP.of_string "none" = Ok FP.none);
        check Alcotest.bool "parse empty" true (FP.of_string "" = Ok FP.none));
    Alcotest.test_case "full grammar roundtrip" `Quick (fun () ->
        let s =
          "drop *>3 0.2; dup 1>* 0.05; corrupt *>* 0.001; crash 2@500+800; \
           part 0,1|2,3@200+400; gst+50"
        in
        let p = plan_of s in
        check Alcotest.string "roundtrip" s (FP.to_string p);
        check Alcotest.int "links" 3 (List.length p.FP.links);
        check Alcotest.int "crashes" 1 (List.length p.FP.crashes);
        (match p.FP.crashes with
        | [ c ] ->
            check Alcotest.int "pid" 2 c.FP.pid;
            check Alcotest.int "at" 500 c.FP.at;
            check Alcotest.(option int) "recover" (Some 1300) c.FP.recover_at
        | _ -> Alcotest.fail "one crash expected");
        check Alcotest.int "gst" 50 p.FP.gst_jitter);
    Alcotest.test_case "probabilities parse to per mille" `Quick (fun () ->
        let pm s =
          match (plan_of (Printf.sprintf "drop *>* %s" s)).FP.links with
          | [ r ] -> r.FP.drop_pm
          | _ -> Alcotest.fail "one rule expected"
        in
        check Alcotest.int "1" 1000 (pm "1");
        check Alcotest.int "0.5" 500 (pm "0.5");
        check Alcotest.int "0.25" 250 (pm "0.25");
        check Alcotest.int "0.005" 5 (pm "0.005");
        check Alcotest.int ".3" 300 (pm ".3");
        check Alcotest.int "0" 0 (pm "0"));
    Alcotest.test_case "malformed plans are rejected" `Quick (fun () ->
        let bad s =
          match FP.of_string s with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %S" s
        in
        bad "drop *>* 1.5";
        bad "drop * 0.1";
        bad "crash x@10";
        bad "crash 1@10+0";
        bad "part 0,1@5";
        bad "part 3-1|4@5";
        bad "part 2bad:0,1|b:2,3@5";
        bad "gst+abc";
        bad "flood *>* 0.1");
    Alcotest.test_case "named groups and ranges parse" `Quick (fun () ->
        (* a range is parse-time sugar for the inclusive pid list *)
        check Alcotest.string "range expands" "part 0,1,2|3,4,5@9"
          (FP.to_string (plan_of "part 0-2|3-5@9"));
        (* group names survive the roundtrip verbatim *)
        let named = "part wing_a:0,1|wing_b:2,3@200+400" in
        check Alcotest.string "names roundtrip" named
          (FP.to_string (plan_of named));
        let p = plan_of named in
        (match p.FP.partitions with
        | [ s ] ->
            check
              Alcotest.(list (option string))
              "gnames parallel" [ Some "wing_a"; Some "wing_b" ] s.FP.gnames
        | _ -> Alcotest.fail "one partition expected");
        (* naming is all-or-nothing and names must be distinct *)
        let invalid s =
          match FP.validate (plan_of s) ~nprocs:6 with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "validated %S" s
        in
        invalid "part a:0,1|2,3@5";
        invalid "part a:0,1|a:2,3@5");
    Alcotest.test_case "validate catches structural errors" `Quick (fun () ->
        let invalid s =
          match FP.validate (plan_of s) ~nprocs:4 with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "validated %S" s
        in
        invalid "drop 4>* 0.1";
        invalid "crash 9@10";
        invalid "crash 1@10; crash 1@20";
        invalid "part 0,1|1,2@5";
        check Alcotest.bool "good plan ok" true
          (FP.validate (plan_of "drop *>3 0.2; crash 2@500+800") ~nprocs:4
          = Ok ()));
    qcheck
      (QCheck.Test.make ~name:"random plans roundtrip exactly" ~count:500
         QCheck.(pair small_int (int_range 1 9))
         (fun (seed, nprocs) ->
           let rng = Rng.create ~seed in
           let p = FP.random rng ~nprocs ~horizon:2_000 in
           FP.of_string (FP.to_string p) = Ok p));
    qcheck
      (QCheck.Test.make ~name:"random plans validate for their nprocs"
         ~count:500
         QCheck.(pair small_int (int_range 1 9))
         (fun (seed, nprocs) ->
           let rng = Rng.create ~seed in
           let p = FP.random rng ~nprocs ~horizon:2_000 in
           FP.validate p ~nprocs = Ok ()));
    Alcotest.test_case "normalize splits combined rules in kind order" `Quick
      (fun () ->
        let combined =
          {
            FP.links =
              [
                {
                  FP.src = Some 0;
                  dst = None;
                  drop_pm = 100;
                  dup_pm = 0;
                  corrupt_pm = 50;
                };
              ];
            crashes = [];
            partitions = [];
            gst_jitter = 0;
          }
        in
        let n = FP.normalize combined in
        check Alcotest.string "canonical print"
          "drop 0>* 0.1; corrupt 0>* 0.05" (FP.to_string n);
        (* printing a combined rule yields one clause per kind, so the
           general round-trip law goes through normalize *)
        check Alcotest.bool "roundtrip via normalize" true
          (FP.of_string (FP.to_string combined) = Ok n);
        check Alcotest.bool "idempotent" true (FP.normalize n = n));
    Alcotest.test_case "validate rejects degenerate clauses" `Quick (fun () ->
        let invalid p =
          match FP.validate p ~nprocs:4 with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "validated %s" (FP.to_string p)
        in
        let base = FP.none in
        (* an all-zero link rule matches sends but never does anything *)
        invalid
          {
            base with
            FP.links =
              [
                { FP.src = None; dst = None; drop_pm = 0; dup_pm = 0;
                  corrupt_pm = 0 };
              ];
          };
        (* a crash that recovers the instant it happens is no outage *)
        invalid
          { base with FP.crashes = [ { FP.pid = 1; at = 10; recover_at = Some 10 } ] };
        invalid
          { base with FP.crashes = [ { FP.pid = 1; at = -5; recover_at = None } ] };
        (* a partition that heals when it starts is no window *)
        invalid
          {
            base with
            FP.partitions =
              [ { FP.groups = [ [ 0 ]; [ 1 ] ]; gnames = []; from_ = 7; until_ = Some 7 } ];
          };
        invalid { base with FP.gst_jitter = -1 });
    (* arbitrary records — combined rules included — round-trip through
       the grammar up to normalize, whenever they validate at all *)
    qcheck
      (QCheck.Test.make ~name:"valid plans roundtrip up to normalize"
         ~count:1_000 arbitrary_plan (fun p ->
           match FP.validate p ~nprocs:6 with
           | Error _ -> QCheck.assume_fail ()
           | Ok () ->
               FP.of_string (FP.to_string p) = Ok (FP.normalize p)
               && FP.normalize (FP.normalize p) = FP.normalize p
               && FP.validate (FP.normalize p) ~nprocs:6 = Ok ()));
  ]

(* ------------------------------- injector ------------------------------ *)

let fates inj ~n ~src ~dst =
  List.init n (fun i ->
      Faults.Injector.tamper inj ~send_time:(i * 10) ~src ~dst ~tag:"m")

let injector_tests =
  [
    Alcotest.test_case "same plan and seed give the same fates" `Quick
      (fun () ->
        let plan = plan_of "drop *>* 0.3; dup *>* 0.2; corrupt *>* 0.1" in
        let mk () =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan ~seed:5 ()
        in
        check Alcotest.bool "deterministic" true
          (fates (mk ()) ~n:200 ~src:0 ~dst:1
          = fates (mk ()) ~n:200 ~src:0 ~dst:1));
    Alcotest.test_case "empty plan never touches a send" `Quick (fun () ->
        let inj =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan:FP.none ~seed:1 ()
        in
        List.iter
          (fun f -> check Alcotest.bool "intact" true (f = [ Network.Intact ]))
          (fates inj ~n:100 ~src:0 ~dst:1));
    Alcotest.test_case "drop 1 empties every fate on the matching link" `Quick
      (fun () ->
        let inj =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan:(plan_of "drop 0>1 1") ~seed:1 ()
        in
        List.iter
          (fun f -> check Alcotest.bool "dropped" true (f = []))
          (fates inj ~n:50 ~src:0 ~dst:1);
        List.iter
          (fun f -> check Alcotest.bool "other link intact" true
              (f = [ Network.Intact ]))
          (fates inj ~n:50 ~src:1 ~dst:0));
    Alcotest.test_case "dup 1 duplicates every send" `Quick (fun () ->
        let inj =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan:(plan_of "dup *>* 1") ~seed:1 ()
        in
        List.iter
          (fun f -> check Alcotest.int "two copies" 2 (List.length f))
          (fates inj ~n:50 ~src:0 ~dst:1));
    Alcotest.test_case "corrupt 1 marks every copy" `Quick (fun () ->
        let inj =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan:(plan_of "corrupt *>* 1") ~seed:1 ()
        in
        List.iter
          (fun f ->
            check Alcotest.bool "corrupted" true (f = [ Network.Corrupted ]))
          (fates inj ~n:50 ~src:0 ~dst:1));
    Alcotest.test_case "partition drops cross-group sends while active" `Quick
      (fun () ->
        let inj =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan:(plan_of "part 0,1|2,3@100+200") ~seed:1 ()
        in
        let fate ~send_time ~src ~dst =
          Faults.Injector.tamper inj ~send_time ~src ~dst ~tag:"m"
        in
        check Alcotest.bool "before" true
          (fate ~send_time:50 ~src:0 ~dst:2 = [ Network.Intact ]);
        check Alcotest.bool "cross during" true
          (fate ~send_time:150 ~src:0 ~dst:2 = []);
        check Alcotest.bool "within group during" true
          (fate ~send_time:150 ~src:0 ~dst:1 = [ Network.Intact ]);
        check Alcotest.bool "unlisted pid during" true
          (fate ~send_time:150 ~src:0 ~dst:7 = [ Network.Intact ]);
        check Alcotest.bool "after heal" true
          (fate ~send_time:300 ~src:0 ~dst:2 = [ Network.Intact ]));
    Alcotest.test_case "injections are counted by kind" `Quick (fun () ->
        let metrics = Obsv.Metrics.create () in
        let inj =
          Faults.Injector.create ~metrics
            ~plan:(plan_of "drop 0>1 1; part 2,3|4,5@0")
            ~seed:1 ()
        in
        ignore (fates inj ~n:10 ~src:0 ~dst:1);
        ignore (Faults.Injector.tamper inj ~send_time:5 ~src:2 ~dst:4 ~tag:"m");
        let count kind =
          Obsv.Metrics.counter_value
            (Obsv.Metrics.counter metrics ~labels:[ ("kind", kind) ]
               "xchain_faults_injected_total")
        in
        check Alcotest.int "drops" 10 (count "drop");
        check Alcotest.int "partition" 1 (count "partition"));
    Alcotest.test_case "gst jitter shifts only psync models" `Quick (fun () ->
        let inj =
          Faults.Injector.create
            ~metrics:(Obsv.Metrics.create ())
            ~plan:(plan_of "gst+50") ~seed:1 ()
        in
        check Alcotest.bool "psync shifted" true
          (Faults.Injector.jittered_model inj
             (Network.Partially_synchronous { gst = 100; delta = 10 })
          = Network.Partially_synchronous { gst = 150; delta = 10 });
        check Alcotest.bool "sync untouched" true
          (Faults.Injector.jittered_model inj
             (Network.Synchronous { delta = 10 })
          = Network.Synchronous { delta = 10 }));
  ]

(* -------------------------- engine crash–recovery ---------------------- *)

type msg = Ping

let mk_engine ?mangle ?tamper ?(seed = 1) () =
  let network =
    Network.create ?tamper
      ~metrics:(Obsv.Metrics.create ())
      (Network.Synchronous { delta = 10 })
      (Rng.create ~seed:(seed + 1))
  in
  Engine.create
    ~tag_of:(fun Ping -> "ping")
    ?mangle ~network
    ~metrics:(Obsv.Metrics.create ())
    ~seed ()

let pinger ~dst ~every =
  {
    Engine.on_start =
      (fun ctx ->
        Engine.send ctx ~dst Ping;
        Engine.set_timer_after ctx ~after:every ~label:"tick");
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer =
      (fun ctx ~label:_ ->
        if Engine.local_now ctx < 500 then begin
          Engine.send ctx ~dst Ping;
          Engine.set_timer_after ctx ~after:every ~label:"tick"
        end);
  }

let counter_handlers received =
  {
    Engine.on_start = (fun _ -> ());
    on_receive = (fun _ ~src:_ _ -> incr received);
    on_timer = (fun _ ~label:_ -> ());
  }

let crash_tests =
  [
    Alcotest.test_case "a down process silently discards deliveries" `Quick
      (fun () ->
        let run ~crash =
          let e = mk_engine () in
          let received = ref 0 in
          ignore (Engine.add_process e (pinger ~dst:1 ~every:50));
          ignore (Engine.add_process e (counter_handlers received));
          if crash then Engine.schedule_crash e ~pid:1 ~at:200 ();
          ignore (Engine.run e);
          !received
        in
        let all = run ~crash:false and cut = run ~crash:true in
        check Alcotest.bool "fewer deliveries" true (cut < all && cut > 0));
    Alcotest.test_case "recovery resumes deliveries" `Quick (fun () ->
        let e = mk_engine () in
        let received = ref 0 in
        ignore (Engine.add_process e (pinger ~dst:1 ~every:50));
        ignore (Engine.add_process e (counter_handlers received));
        Engine.schedule_crash e ~pid:1 ~at:100 ~recover_at:300 ();
        ignore (Engine.run e);
        (* ~10 pings total; those landing inside [100, 300) are lost *)
        check Alcotest.bool "lost some" true (!received < 10 && !received >= 5));
    Alcotest.test_case "timer fires swallowed by an outage re-run at reboot"
      `Quick (fun () ->
        let e = mk_engine () in
        let fired_at = ref [] in
        let p =
          {
            Engine.on_start =
              (fun ctx -> Engine.set_timer ctx ~deadline:150 ~label:"d");
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer =
              (fun ctx ~label:_ ->
                fired_at := Engine.local_now ctx :: !fired_at);
          }
        in
        ignore (Engine.add_process e p);
        Engine.schedule_crash e ~pid:0 ~at:100 ~recover_at:400 ();
        ignore (Engine.run e);
        (* the deadline passed mid-outage; the recovered process must see
           the expired deadline immediately at reboot, not never *)
        check Alcotest.(list int) "fired once at reboot" [ 400 ] !fired_at);
    Alcotest.test_case "no recovery means timers never fire" `Quick (fun () ->
        let e = mk_engine () in
        let fired = ref false in
        let p =
          {
            Engine.on_start =
              (fun ctx -> Engine.set_timer ctx ~deadline:150 ~label:"d");
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> fired := true);
          }
        in
        ignore (Engine.add_process e p);
        Engine.schedule_crash e ~pid:0 ~at:100 ();
        check Alcotest.bool "quiescent" true (Engine.run e = Engine.Quiescent);
        check Alcotest.bool "never fired" false !fired);
    Alcotest.test_case "crash and recovery land in the trace" `Quick (fun () ->
        let e = mk_engine () in
        ignore (Engine.add_process e Engine.silent);
        Engine.schedule_crash e ~pid:0 ~at:50 ~recover_at:80 ();
        ignore (Engine.run e);
        let kinds =
          List.filter_map
            (function
              | Trace.Crashed { t; pid; recover_at } ->
                  Some (Printf.sprintf "crash:%d:%d:%s" t pid
                          (match recover_at with
                          | Some r -> string_of_int r
                          | None -> "never"))
              | Trace.Recovered { t; pid } ->
                  Some (Printf.sprintf "recover:%d:%d" t pid)
              | _ -> None)
            (Trace.to_list (Engine.trace e))
        in
        check
          Alcotest.(list string)
          "entries"
          [ "crash:50:0:80"; "recover:80:0" ]
          kinds);
    Alcotest.test_case "schedule_crash validates its arguments" `Quick
      (fun () ->
        let e = mk_engine () in
        ignore (Engine.add_process e Engine.silent);
        Alcotest.check_raises "bad pid"
          (Invalid_argument "Engine.schedule_crash: bad pid") (fun () ->
            Engine.schedule_crash e ~pid:7 ~at:10 ());
        Alcotest.check_raises "recovery before crash"
          (Invalid_argument
             "Engine.schedule_crash: recovery must follow the crash")
          (fun () -> Engine.schedule_crash e ~pid:0 ~at:10 ~recover_at:10 ()));
    Alcotest.test_case "corrupted copies die without a mangler" `Quick
      (fun () ->
        let tamper ~send_time:_ ~src:_ ~dst:_ ~tag:_ = [ Network.Corrupted ] in
        let e = mk_engine ~tamper () in
        let received = ref 0 in
        ignore (Engine.add_process e (pinger ~dst:1 ~every:50));
        ignore (Engine.add_process e (counter_handlers received));
        ignore (Engine.run e);
        check Alcotest.int "all dropped" 0 !received);
    Alcotest.test_case "a mangler can rewrite corrupted copies" `Quick
      (fun () ->
        let tamper ~send_time:_ ~src:_ ~dst:_ ~tag:_ = [ Network.Corrupted ] in
        let mangle Ping _rng = Some Ping in
        let e = mk_engine ~tamper ~mangle () in
        let received = ref 0 in
        ignore (Engine.add_process e (pinger ~dst:1 ~every:50));
        ignore (Engine.add_process e (counter_handlers received));
        ignore (Engine.run e);
        check Alcotest.bool "delivered mangled" true (!received > 0));
    Alcotest.test_case "duplicated sends deliver twice" `Quick (fun () ->
        let tamper ~send_time:_ ~src:_ ~dst:_ ~tag:_ =
          [ Network.Intact; Network.Intact ]
        in
        let e = mk_engine ~tamper () in
        let received = ref 0 in
        let one_shot =
          {
            Engine.on_start = (fun ctx -> Engine.send ctx ~dst:1 Ping);
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        ignore (Engine.add_process e one_shot);
        ignore (Engine.add_process e (counter_handlers received));
        ignore (Engine.run e);
        check Alcotest.int "two deliveries" 2 !received);
  ]

(* ------------------------------- runner -------------------------------- *)

let runner_tests =
  [
    Alcotest.test_case "config validation rejects nonsense" `Quick (fun () ->
        let base = Protocols.Runner.default_config ~hops:2 ~seed:1 in
        let rejects what cfg =
          match Protocols.Runner.run cfg Protocols.Runner.Sync_timebound with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "accepted %s" what
        in
        rejects "hops 0" { base with Protocols.Runner.hops = 0 };
        rejects "value 0" { base with Protocols.Runner.value = 0 };
        rejects "negative commission"
          { base with Protocols.Runner.commission = -1 };
        rejects "bad plan"
          { base with
            Protocols.Runner.fault_plan = Some (plan_of "crash 99@10") });
    Alcotest.test_case "crashed pids are registered as non-abiding" `Quick
      (fun () ->
        let cfg =
          { (Protocols.Runner.default_config ~hops:2 ~seed:1) with
            Protocols.Runner.fault_plan =
              Some (plan_of "crash 1@100; crash 2@50+500")
          }
        in
        let o = Protocols.Runner.run cfg Protocols.Runner.Sync_timebound in
        check Alcotest.(option string) "crash-stop" (Some "crash-stop")
          (List.assoc_opt 1 o.Protocols.Runner.fault_names);
        check Alcotest.(option string) "crash-recovery" (Some "crash-recovery")
          (List.assoc_opt 2 o.Protocols.Runner.fault_names));
    Alcotest.test_case "fault-free plan leaves the schedule untouched" `Quick
      (fun () ->
        let run plan =
          let cfg =
            { (Protocols.Runner.default_config ~hops:2 ~seed:7) with
              Protocols.Runner.fault_plan = plan }
          in
          let o = Protocols.Runner.run cfg Protocols.Runner.Sync_timebound in
          (o.Protocols.Runner.message_count, o.Protocols.Runner.end_time)
        in
        check
          Alcotest.(pair int int)
          "same run" (run None)
          (run (Some FP.none)));
    Alcotest.test_case "runs under a plan are reproducible" `Quick (fun () ->
        let run () =
          let cfg =
            { (Protocols.Runner.default_config ~hops:3 ~seed:13) with
              Protocols.Runner.fault_plan =
                Some (plan_of "drop *>* 0.2; dup *>* 0.1; crash 2@300+900")
            }
          in
          let o = Protocols.Runner.run cfg Protocols.Runner.Sync_timebound in
          Fmt.str "%a"
            (Sim.Trace.pp ~msg:Protocols.Msg.pp ~obs:Protocols.Obs.pp)
            o.Protocols.Runner.trace
        in
        check Alcotest.bool "identical traces" true (run () = run ()));
  ]

(* -------------------------------- chaos -------------------------------- *)

let chaos_tests =
  [
    Alcotest.test_case "clean run commits" `Quick (fun () ->
        let r = Xchain.Chaos.run_one ~plan:FP.none ~seed:1 () in
        check Alcotest.string "commit" "safe-commit"
          (Xchain.Chaos.classification_name r.Xchain.Chaos.classification));
    Alcotest.test_case "total blackout is stuck, never unsafe" `Quick
      (fun () ->
        let r =
          Xchain.Chaos.run_one ~plan:(plan_of "drop *>* 1") ~seed:1 ()
        in
        check Alcotest.string "stuck" "stuck"
          (Xchain.Chaos.classification_name r.Xchain.Chaos.classification));
    Alcotest.test_case
      "soak: 200 random plans, zero safety violations (Thm 1 protocol)"
      `Slow (fun () ->
        let s = Xchain.Chaos.soak ~runs:200 ~seed:1 () in
        check Alcotest.int "runs" 200 s.Xchain.Chaos.runs;
        check Alcotest.int "violations" 0
          (List.length s.Xchain.Chaos.violations);
        check Alcotest.int "classified" 200
          (s.Xchain.Chaos.commits + s.Xchain.Chaos.aborts
         + s.Xchain.Chaos.stuck));
    Alcotest.test_case "every soak run replays from its (seed, plan)" `Quick
      (fun () ->
        (* re-derive the plan of soak run i exactly as the soak does and
           check the standalone run classifies identically *)
        let seed = 99 in
        for i = 0 to 19 do
          let run_seed = seed + i in
          let prng = Rng.create ~seed:(run_seed + 7919) in
          let plan = FP.random prng ~nprocs:5 ~horizon:4_345 in
          let a = Xchain.Chaos.run_one ~plan ~seed:run_seed () in
          let b =
            Xchain.Chaos.run_one
              ~plan:(plan_of (FP.to_string a.Xchain.Chaos.plan))
              ~seed:run_seed ()
          in
          check Alcotest.string
            (Printf.sprintf "run %d" i)
            (Xchain.Chaos.classification_name a.Xchain.Chaos.classification)
            (Xchain.Chaos.classification_name b.Xchain.Chaos.classification);
          check Alcotest.int
            (Printf.sprintf "end time %d" i)
            a.Xchain.Chaos.end_time b.Xchain.Chaos.end_time
        done);
  ]

let () =
  Alcotest.run "faults"
    [
      ("fault_plan", plan_tests);
      ("injector", injector_tests);
      ("crash_recovery", crash_tests);
      ("runner", runner_tests);
      ("chaos", chaos_tests);
    ]
