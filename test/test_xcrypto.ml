(* Tests for the simulated-authentication substrate: hashing, signatures,
   signed values, hashlocks. *)

open Xcrypto

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let hash_tests =
  [
    Alcotest.test_case "deterministic" `Quick (fun () ->
        check Alcotest.bool "eq" true
          (Hash.equal (Hash.of_string "abc") (Hash.of_string "abc")));
    Alcotest.test_case "different inputs differ" `Quick (fun () ->
        check Alcotest.bool "neq" false
          (Hash.equal (Hash.of_string "abc") (Hash.of_string "abd")));
    Alcotest.test_case "empty vs non-empty" `Quick (fun () ->
        check Alcotest.bool "neq" false
          (Hash.equal (Hash.of_string "") (Hash.of_string "x")));
    Alcotest.test_case "concat is order-sensitive" `Quick (fun () ->
        let a = Hash.of_string "a" and b = Hash.of_string "b" in
        check Alcotest.bool "neq" false
          (Hash.equal (Hash.concat a b) (Hash.concat b a)));
    Alcotest.test_case "hex is 32 chars" `Quick (fun () ->
        check Alcotest.int "len" 32 (String.length (Hash.to_hex (Hash.of_string "q"))));
    Alcotest.test_case "short is an 8-char prefix" `Quick (fun () ->
        let h = Hash.of_string "q" in
        check Alcotest.string "prefix" (String.sub (Hash.to_hex h) 0 8) (Hash.short h));
    Alcotest.test_case "compare consistent with equal" `Quick (fun () ->
        let a = Hash.of_string "m" and b = Hash.of_string "m" in
        check Alcotest.int "cmp" 0 (Hash.compare a b));
    qcheck
      (QCheck.Test.make ~name:"no collisions on random distinct strings"
         QCheck.(pair string string)
         (fun (s1, s2) ->
           String.equal s1 s2
           || not (Hash.equal (Hash.of_string s1) (Hash.of_string s2))));
  ]

let auth_tests =
  [
    Alcotest.test_case "sign/verify roundtrip" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        let s = Auth.register reg 7 in
        let signature = Auth.sign s "hello" in
        check Alcotest.bool "ok" true (Auth.verify reg 7 "hello" signature));
    Alcotest.test_case "wrong message fails" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        let s = Auth.register reg 7 in
        let signature = Auth.sign s "hello" in
        check Alcotest.bool "bad" false (Auth.verify reg 7 "hellp" signature));
    Alcotest.test_case "wrong identity fails" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        let s7 = Auth.register reg 7 in
        let _s8 = Auth.register reg 8 in
        let signature = Auth.sign s7 "hello" in
        check Alcotest.bool "bad id" false (Auth.verify reg 8 "hello" signature));
    Alcotest.test_case "forged signature fails" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        let _ = Auth.register reg 7 in
        check Alcotest.bool "forged" false
          (Auth.verify reg 7 "hello" (Auth.forged 7)));
    Alcotest.test_case "unknown identity fails" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        check Alcotest.bool "unknown" false
          (Auth.verify reg 99 "hello" (Auth.forged 99)));
    Alcotest.test_case "re-registration raises" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        let _ = Auth.register reg 7 in
        Alcotest.check_raises "dup"
          (Invalid_argument "Auth.register: id 7 already registered") (fun () ->
            ignore (Auth.register reg 7)));
    Alcotest.test_case "signer_id" `Quick (fun () ->
        let reg = Auth.create ~seed:1 in
        check Alcotest.int "id" 3 (Auth.signer_id (Auth.register reg 3)));
    Alcotest.test_case "signed value verifies" `Quick (fun () ->
        let reg = Auth.create ~seed:2 in
        let s = Auth.register reg 0 in
        let sv = Auth.sign_value s ~ser:string_of_int 42 in
        check Alcotest.bool "ok" true (Auth.verify_value reg ~ser:string_of_int sv);
        check Alcotest.int "payload" 42 sv.Auth.payload;
        check Alcotest.int "author" 0 sv.Auth.author);
    Alcotest.test_case "forged signed value fails" `Quick (fun () ->
        let reg = Auth.create ~seed:2 in
        let _ = Auth.register reg 0 in
        let sv = Auth.forge_value ~author:0 42 in
        check Alcotest.bool "bad" false (Auth.verify_value reg ~ser:string_of_int sv));
    Alcotest.test_case "serialization change invalidates" `Quick (fun () ->
        (* same payload signed under one serializer must not verify under
           another — signatures bind the exact statement *)
        let reg = Auth.create ~seed:2 in
        let s = Auth.register reg 0 in
        let sv = Auth.sign_value s ~ser:string_of_int 42 in
        check Alcotest.bool "other ser" false
          (Auth.verify_value reg ~ser:(fun n -> Printf.sprintf "%d!" n) sv));
    Alcotest.test_case "cross-registry verification fails" `Quick (fun () ->
        let reg1 = Auth.create ~seed:1 and reg2 = Auth.create ~seed:99 in
        let s = Auth.register reg1 0 in
        let _ = Auth.register reg2 0 in
        let signature = Auth.sign s "m" in
        check Alcotest.bool "bad" false (Auth.verify reg2 0 "m" signature));
    qcheck
      (QCheck.Test.make ~name:"verify accepts exactly the signed message"
         QCheck.(pair string string)
         (fun (m1, m2) ->
           let reg = Auth.create ~seed:5 in
           let s = Auth.register reg 1 in
           let signature = Auth.sign s m1 in
           Auth.verify reg 1 m2 signature = String.equal m1 m2));
  ]

let hashlock_tests =
  [
    Alcotest.test_case "preimage matches its lock" `Quick (fun () ->
        let p = Hashlock.fresh (Sim.Rng.create ~seed:3) in
        check Alcotest.bool "match" true (Hashlock.matches (Hashlock.lock_of p) p));
    Alcotest.test_case "bogus preimage fails" `Quick (fun () ->
        let p = Hashlock.fresh (Sim.Rng.create ~seed:3) in
        check Alcotest.bool "no match" false
          (Hashlock.matches (Hashlock.lock_of p) (Hashlock.bogus_preimage ())));
    Alcotest.test_case "distinct preimages give distinct locks" `Quick (fun () ->
        let g = Sim.Rng.create ~seed:3 in
        let p1 = Hashlock.fresh g and p2 = Hashlock.fresh g in
        check Alcotest.bool "distinct" false
          (Hashlock.equal_lock (Hashlock.lock_of p1) (Hashlock.lock_of p2)));
    Alcotest.test_case "lock equality is structural" `Quick (fun () ->
        let p = Hashlock.fresh (Sim.Rng.create ~seed:3) in
        check Alcotest.bool "eq" true
          (Hashlock.equal_lock (Hashlock.lock_of p) (Hashlock.lock_of p)));
  ]

let () =
  Alcotest.run "xcrypto"
    [ ("hash", hash_tests); ("auth", auth_tests); ("hashlock", hashlock_tests) ]
