(* Tests for the property monitors: the verdict algebra, the per-property
   checkers on real runs (positive and negative), and the CC /
   certificate checks on synthesised traces. *)

open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

let check = Alcotest.check

let verdict_tests =
  [
    Alcotest.test_case "all_hold ignores vacuous entries" `Quick (fun () ->
        let r = [ V.ok "A" ""; V.vacuous "B" "n/a" ] in
        check Alcotest.bool "holds" true (V.all_hold r));
    Alcotest.test_case "violations are reported" `Quick (fun () ->
        let r = [ V.ok "A" ""; V.violated "B" "boom" ] in
        check Alcotest.bool "fails" false (V.all_hold r);
        check Alcotest.int "one failure" 1 (List.length (V.failures r)));
    Alcotest.test_case "find and holds" `Quick (fun () ->
        let r = [ V.ok "A" ""; V.violated "B" ""; V.vacuous "C" "" ] in
        check Alcotest.bool "A" true (V.holds r "A");
        check Alcotest.bool "B" false (V.holds r "B");
        check Alcotest.bool "C vacuous counts as holding" true (V.holds r "C");
        check Alcotest.bool "missing" false (V.holds r "Z"));
  ]

let run_sync ?(hops = 3) ?(seed = 1) ?(faults = []) ?adversary ?network () =
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      faults;
      adversary;
      network = Option.value ~default:Runner.Sync network;
    }
  in
  Runner.run cfg Runner.Sync_timebound

let positive_tests =
  [
    Alcotest.test_case "happy run satisfies all of Def.1" `Quick (fun () ->
        let v = PP.view (run_sync ()) in
        let r = PP.check_def1 ~time_bounded:true v in
        List.iter
          (fun (verdict : V.t) ->
            check Alcotest.bool verdict.V.property true
              ((not verdict.V.applicable) || verdict.V.holds))
          r;
        check Alcotest.int "seven properties" 7 (List.length r));
    Alcotest.test_case "net positions on the happy path" `Quick (fun () ->
        let o = run_sync () in
        let v = PP.view o in
        let topo = o.Runner.env.Env.topo in
        check Alcotest.int "alice" (-1020) (v.PP.net (Topology.alice topo));
        check Alcotest.int "chloe1 commission" 10 (v.PP.net 1);
        check Alcotest.int "bob" 1000 (v.PP.net (Topology.bob topo)));
    Alcotest.test_case "lock_time is positive and bounded by run length"
      `Quick (fun () ->
        let o = run_sync () in
        let v = PP.view o in
        let lt = PP.lock_time v in
        check Alcotest.bool "positive" true (lt > 0);
        check Alcotest.bool "bounded" true (lt <= 3 * o.Runner.end_time));
    Alcotest.test_case "money is conserved" `Quick (fun () ->
        check Alcotest.bool "conserved" true
          (PP.money_conserved (PP.view (run_sync ()))));
    Alcotest.test_case "bob_paid and alice_has_chi on success" `Quick (fun () ->
        let v = PP.view (run_sync ()) in
        check Alcotest.bool "paid" true (PP.bob_paid v);
        check Alcotest.bool "chi" true (PP.alice_has_chi v));
  ]

let chi_stall : Sim.Network.adversary =
 fun ~send_time:_ ~src:_ ~dst:_ ~tag ~bounds ->
  if String.equal tag "chi" then Some bounds.Sim.Network.hi
  else Some bounds.Sim.Network.lo

let negative_tests =
  [
    Alcotest.test_case "stalled chi under partial synchrony violates T and L"
      `Quick (fun () ->
        let o =
          run_sync ~network:(Runner.Psync { gst = 200_000 })
            ~adversary:chi_stall ()
        in
        let v = PP.view o in
        let r = PP.check_def1 ~time_bounded:false v in
        check Alcotest.bool "T" false (V.holds r "T");
        check Alcotest.bool "L" false (V.holds r "L");
        (* but never safety: ES and the CS clauses survive *)
        check Alcotest.bool "ES" true (V.holds r "ES");
        check Alcotest.bool "CS1" true (V.holds r "CS1");
        check Alcotest.bool "CS3" true (V.holds r "CS3"));
    Alcotest.test_case "guarantees go vacuous when the hypothesis fails" `Quick
      (fun () ->
        let topo = Topology.create ~hops:3 in
        let o =
          run_sync ~faults:[ (Topology.escrow topo 0, Byzantine.Thief_escrow) ] ()
        in
        let v = PP.view o in
        let r = PP.check_def1 ~time_bounded:false v in
        (match V.find r "CS1" with
        | Some verdict -> check Alcotest.bool "CS1 vacuous" false verdict.V.applicable
        | None -> Alcotest.fail "CS1 missing");
        match V.find r "L" with
        | Some verdict -> check Alcotest.bool "L vacuous" false verdict.V.applicable
        | None -> Alcotest.fail "L missing");
    Alcotest.test_case "naive protocol under heavy drift fails T" `Quick
      (fun () ->
        (* hunt a violating seed; the drift race is probabilistic per seed *)
        let max_delay : Sim.Network.adversary =
         fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds -> Some bounds.Sim.Network.hi
        in
        let violated = ref false in
        let seed = ref 1 in
        while (not !violated) && !seed <= 60 do
          let cfg =
            {
              (Runner.default_config ~hops:5 ~seed:!seed) with
              drift_ppm = 80_000;
              delta = 200;
              margin = 1;
              adversary = Some max_delay;
            }
          in
          let o = Runner.run cfg Runner.Naive_universal in
          let v = PP.view o in
          if not (V.all_hold (PP.check_def1 ~time_bounded:false v)) then
            violated := true;
          incr seed
        done;
        check Alcotest.bool "found a drift violation" true !violated);
  ]

(* --------------- synthesised outcomes for the CC monitors -------------- *)

(* Build a Runner.outcome by hand around a fabricated trace: the monitors
   are pure functions of the record, so this is legitimate and lets us test
   violation branches that no honest component can produce. *)
let synthetic_outcome ~entries =
  let cfg = Runner.default_config ~hops:2 ~seed:1 in
  let topo = Topology.create ~hops:2 in
  let params = Params.derive (Params.default_input ~hops:2) in
  let env = Env.make ~topo ~params () in
  let trace = Sim.Trace.create () in
  List.iter (Sim.Trace.record trace) entries;
  let engine =
    Sim.Engine.create ~tag_of:Protocols.Msg.tag
      ~network:
        (Sim.Network.create (Sim.Network.Synchronous { delta = 100 })
           (Sim.Rng.create ~seed:1))
      ~seed:1 ()
  in
  {
    Runner.config = cfg;
    protocol = Runner.Weak Weak_protocol.default_config;
    env;
    params;
    engine;
    status = Sim.Engine.Quiescent;
    trace;
    end_time = 1_000;
    message_count = 0;
    events = 0;
    fault_names = [];
    tm_pids = [| Topology.aux_base topo |];
    clocks = Array.init (Topology.payment_count topo + 1) (fun _ -> Sim.Clock.perfect);
    paid_node = -1;
    settled_node = -1;
    injector = None;
  }

let obs t pid o = Sim.Trace.Observed { t; pid; obs = o }

let cc_tests =
  [
    Alcotest.test_case "conflicting decisions violate CC" `Quick (fun () ->
        let o =
          synthetic_outcome
            ~entries:
              [
                obs 10 5 (Obs.Decision_made { by = 5; commit = true });
                obs 20 5 (Obs.Decision_made { by = 5; commit = false });
              ]
        in
        let v = PP.view o in
        check Alcotest.bool "CC violated" false
          ((PP.check_cc v).V.holds));
    Alcotest.test_case "a customer holding both certificates violates CC"
      `Quick (fun () ->
        let o =
          synthetic_outcome
            ~entries:
              [
                obs 10 0
                  (Obs.Cert_received { pid = 0; kind = Obs.Chi_commit; valid = true });
                obs 20 0
                  (Obs.Cert_received { pid = 0; kind = Obs.Chi_abort; valid = true });
              ]
        in
        let v = PP.view o in
        check Alcotest.bool "CC violated" false (PP.check_cc v).V.holds);
    Alcotest.test_case "a single decision kind satisfies CC" `Quick (fun () ->
        let o =
          synthetic_outcome
            ~entries:
              [
                obs 10 5 (Obs.Decision_made { by = 5; commit = true });
                obs 11 5 (Obs.Decision_made { by = 5; commit = true });
              ]
        in
        let v = PP.view o in
        check Alcotest.bool "CC ok" true (PP.check_cc v).V.holds);
    Alcotest.test_case "lock_time from a synthesised ledger history" `Quick
      (fun () ->
        let o =
          synthetic_outcome
            ~entries:
              [
                obs 100 3
                  (Obs.Deposited { escrow = 3; depositor = 0; amount = 5; deposit = 0 });
                obs 400 3
                  (Obs.Released { escrow = 3; deposit = 0; to_ = 1; amount = 5 });
                obs 200 4
                  (Obs.Deposited { escrow = 4; depositor = 1; amount = 5; deposit = 0 });
                (* never resolved: counts until end_time (1000) *)
              ]
        in
        let v = PP.view o in
        check Alcotest.int "300 + 800" 1100 (PP.lock_time v));
    Alcotest.test_case "unterminated customers leave weak-T violated" `Quick
      (fun () ->
        let o = synthetic_outcome ~entries:[] in
        let v = PP.view o in
        check Alcotest.bool "T" false (PP.check_t_weak v).V.holds);
  ]

let promise_tests =
  [
    Alcotest.test_case "honest runs have no promise breaches" `Quick (fun () ->
        for seed = 1 to 10 do
          let v = PP.view (run_sync ~seed ()) in
          check Alcotest.int "clean" 0
            (List.length (Props.Promises.breaches v));
          check Alcotest.bool "PR" true (Props.Promises.check_promises v).V.holds
        done);
    Alcotest.test_case "premature refund breaches P" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let e1 = Topology.escrow topo 1 in
        let o =
          run_sync ~faults:[ (e1, Byzantine.Premature_refund_escrow) ] ()
        in
        let v = PP.view o in
        let bs = Props.Promises.breaches v in
        check Alcotest.bool "found" true
          (List.exists
             (fun (b : Props.Promises.breach) ->
               b.Props.Promises.escrow = e1 && b.Props.Promises.promise = "P")
             bs);
        (* PR only covers honest escrows, so it still holds *)
        check Alcotest.bool "PR" true (Props.Promises.check_promises v).V.holds);
    Alcotest.test_case "no-resolve escrow breaches G" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let e1 = Topology.escrow topo 1 in
        let o = run_sync ~faults:[ (e1, Byzantine.No_resolve_escrow) ] () in
        let v = PP.view o in
        check Alcotest.bool "found" true
          (List.exists
             (fun (b : Props.Promises.breach) ->
               b.Props.Promises.escrow = e1 && b.Props.Promises.promise = "G")
             (Props.Promises.breaches v)));
    Alcotest.test_case
      "naive drift failures are parameter failures, not promise breaches"
      `Quick (fun () ->
        (* even in runs where the naive protocol loses liveness, every
           escrow honoured the (badly derived) promises it issued: the flaw
           is in the window derivation, exactly the paper's point *)
        let max_delay : Sim.Network.adversary =
         fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds ->
          Some bounds.Sim.Network.hi
        in
        for seed = 1 to 20 do
          let cfg =
            {
              (Runner.default_config ~hops:5 ~seed) with
              drift_ppm = 80_000;
              delta = 200;
              margin = 1;
              adversary = Some max_delay;
            }
          in
          let o = Runner.run cfg Runner.Naive_universal in
          let v = PP.view o in
          check Alcotest.int "no breach" 0
            (List.length (Props.Promises.breaches v))
        done);
  ]

(* Monitor sensitivity: each checker must be able to fire. We synthesise
   outcomes exhibiting each violation (no honest component can produce
   them, which is the point) and check the monitor catches it. *)
let sensitivity_tests =
  let term pid tag t = obs t pid (Obs.Terminated { pid; outcome = tag }) in
  [
    Alcotest.test_case "CS1 fires: Alice paid out with no certificate" `Quick
      (fun () ->
        (* drain Alice's account so her net is negative, terminate her,
           give her no χ *)
        let o = synthetic_outcome ~entries:[ term 0 "certified" 500 ] in
        let topo = o.Runner.env.Protocols.Env.topo in
        let e0_book = o.Runner.env.Protocols.Env.books.(0) in
        (match
           Ledger.Book.transfer e0_book ~src:(Topology.alice topo)
             ~dst:(Topology.customer topo 1)
             ~amount:(Protocols.Env.amount_at o.Runner.env 0)
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "setup transfer failed");
        let v = PP.view o in
        check Alcotest.bool "CS1 violated" false (PP.check_cs1 v).V.holds);
    Alcotest.test_case "CS2 fires: Bob issued χ, terminated, unpaid" `Quick
      (fun () ->
        let o =
          synthetic_outcome
            ~entries:
              [
                obs 10 2 (Obs.Cert_issued { by = 2; kind = Obs.Chi });
                term 2 "gave-up" 600;
              ]
        in
        let v = PP.view o in
        check Alcotest.bool "CS2 violated" false (PP.check_cs2 v).V.holds);
    Alcotest.test_case "CS3 fires: a connector out of pocket" `Quick (fun () ->
        let o = synthetic_outcome ~entries:[ term 1 "paid" 700 ] in
        let topo = o.Runner.env.Protocols.Env.topo in
        let e1_book = o.Runner.env.Protocols.Env.books.(1) in
        (match
           Ledger.Book.transfer e1_book ~src:(Topology.customer topo 1)
             ~dst:(Topology.bob topo)
             ~amount:(Protocols.Env.amount_at o.Runner.env 1)
         with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "setup transfer failed");
        let v = PP.view o in
        check Alcotest.bool "CS3 violated" false (PP.check_cs3 v).V.holds);
    Alcotest.test_case "L fires: all abided, Bob unpaid" `Quick (fun () ->
        let o = synthetic_outcome ~entries:[] in
        let v = PP.view o in
        check Alcotest.bool "L violated" false (PP.check_l v).V.holds);
    Alcotest.test_case "C fires: an honest participant was rejected" `Quick
      (fun () ->
        let o =
          synthetic_outcome
            ~entries:[ obs 5 3 (Obs.Rejected { pid = 3; what = "boom" }) ]
        in
        let v = PP.view o in
        check Alcotest.bool "C violated" false (PP.check_c v).V.holds);
    Alcotest.test_case "T fires: an active customer never terminates" `Quick
      (fun () ->
        (* Alice sent money (trace Sent) but never terminated *)
        let o = synthetic_outcome ~entries:[] in
        Sim.Trace.record o.Runner.trace
          (Sim.Trace.Sent
             { t = 5; src = 0; dst = 3; tag = "money"; msg = Msg.Money { amount = 1020 } });
        let v = PP.view o in
        check Alcotest.bool "T violated" false (PP.check_t ~time_bounded:false v).V.holds);
    Alcotest.test_case "ES holds even for synthetic runs (books are \
                        structurally safe)" `Quick (fun () ->
        (* the substrate makes ES violations unconstructible through the
           API: the monitor must still pass on arbitrary op sequences *)
        let o = synthetic_outcome ~entries:[] in
        let v = PP.view o in
        check Alcotest.bool "ES" true (PP.check_es v).V.holds);
  ]

let () =
  Alcotest.run "props"
    [
      ("verdict", verdict_tests);
      ("positive", positive_tests);
      ("negative", negative_tests);
      ("synthetic", cc_tests);
      ("sensitivity", sensitivity_tests);
      ("promises", promise_tests);
    ]
