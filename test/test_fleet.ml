(* Tests for the fleet: chunked work-sharing over OCaml domains. The
   load-bearing claim is the determinism contract — merged results are a
   function of the job batch alone, never of the domain count — plus
   failure isolation (a raising job is a tagged result, not a dead pool)
   and the accounting invariants behind the per-domain metrics. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Strip the one nondeterministic JSON member, mirroring the cram tests'
   and CI's sed 's/,"timing":{[^}]*}//g' (the timing object is flat, so
   scanning to the first closing brace is exact). *)
let strip_timing s =
  let marker = {|,"timing":{|} in
  let mlen = String.length marker in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + mlen <= n && String.sub s !i mlen = marker then begin
      let j = ref (!i + mlen) in
      while !j < n && s.[!j] <> '}' do
        incr j
      done;
      i := !j + 1
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let ok_exn = function
  | Ok v -> v
  | Error (f : Fleet.failure) -> Alcotest.failf "job %d failed: %s" f.Fleet.job f.Fleet.message

(* ------------------------------ mechanics ------------------------------ *)

let mechanics_tests =
  [
    Alcotest.test_case "results land at their job index" `Quick (fun () ->
        let outcomes, stats = Fleet.run ~domains:3 ~jobs:100 (fun i -> i * i) in
        Array.iteri
          (fun i o -> check Alcotest.int "slot" (i * i) (ok_exn o))
          outcomes;
        check Alcotest.int "jobs" 100 stats.Fleet.jobs;
        check Alcotest.int "failed" 0 stats.Fleet.failed);
    Alcotest.test_case "empty batch" `Quick (fun () ->
        let outcomes, stats = Fleet.run ~domains:4 ~jobs:0 (fun i -> i) in
        check Alcotest.int "no results" 0 (Array.length outcomes);
        check Alcotest.int "one domain" 1 stats.Fleet.domains);
    Alcotest.test_case "domains clamp to jobs" `Quick (fun () ->
        let _, stats = Fleet.run ~domains:8 ~jobs:3 (fun i -> i) in
        check Alcotest.int "clamped" 3 stats.Fleet.domains);
    Alcotest.test_case "invalid arguments rejected" `Quick (fun () ->
        let invalid f =
          try
            ignore (f ());
            false
          with Invalid_argument _ -> true
        in
        check Alcotest.bool "jobs < 0" true
          (invalid (fun () -> Fleet.run ~jobs:(-1) (fun i -> i)));
        check Alcotest.bool "domains < 1" true
          (invalid (fun () -> Fleet.run ~domains:0 ~jobs:4 (fun i -> i)));
        check Alcotest.bool "chunk < 1" true
          (invalid (fun () -> Fleet.run ~chunk:0 ~jobs:4 (fun i -> i))));
    Alcotest.test_case "per-domain accounting sums to the batch" `Quick
      (fun () ->
        let jobs = 97 and chunk = 5 in
        let _, s = Fleet.run ~domains:4 ~chunk ~jobs (fun i -> i) in
        let sum = Array.fold_left ( + ) 0 in
        check Alcotest.int "jobs partitioned" jobs (sum s.Fleet.per_domain_jobs);
        check Alcotest.int "chunks partitioned"
          ((jobs + chunk - 1) / chunk)
          (sum s.Fleet.per_domain_chunks);
        check Alcotest.bool "wall clock ticked" true (s.Fleet.wall_ns > 0));
  ]

(* --------------------------- failure capture --------------------------- *)

exception Poison of int

let failure_tests =
  [
    Alcotest.test_case "poison job is captured, pool survives" `Quick
      (fun () ->
        let outcomes, stats =
          Fleet.run ~domains:4 ~chunk:1 ~jobs:50 (fun i ->
              if i mod 7 = 3 then raise (Poison i) else i)
        in
        let fs = Fleet.failures outcomes in
        check Alcotest.int "failed stat" (List.length fs) stats.Fleet.failed;
        List.iter
          (fun (f : Fleet.failure) ->
            check Alcotest.int "poison index" 3 (f.Fleet.job mod 7);
            check Alcotest.bool "message names the exception" true
              (String.length f.Fleet.message > 0))
          fs;
        Array.iteri
          (fun i o ->
            match o with
            | Ok v ->
                check Alcotest.bool "healthy job" true (i mod 7 <> 3);
                check Alcotest.int "value" i v
            | Error f -> check Alcotest.int "tagged with its id" i f.Fleet.job)
          outcomes);
    qcheck
      (QCheck.Test.make ~name:"failure sets agree at any domain count"
         ~count:30
         QCheck.(pair (int_range 1 60) (int_range 0 59))
         (fun (jobs, bad) ->
           let run d =
             let outcomes, _ =
               Fleet.run ~domains:d ~jobs (fun i ->
                   if i = bad then failwith "boom" else i)
             in
             Array.map (Result.map_error (fun f -> f.Fleet.job)) outcomes
           in
           run 1 = run 2 && run 2 = run 4));
  ]

(* ------------------------------ progress ------------------------------- *)

let progress_tests =
  [
    Alcotest.test_case "progress is monotone and reaches total" `Quick
      (fun () ->
        let seen = ref [] in
        let _ =
          Fleet.run ~domains:2 ~chunk:3 ~jobs:31
            ~on_progress:(fun ~completed ~total ->
              check Alcotest.int "total" 31 total;
              seen := completed :: !seen)
            (fun i -> i)
        in
        let seen = List.rev !seen in
        check Alcotest.bool "called" true (seen <> []);
        check Alcotest.int "final" 31 (List.hd (List.rev seen));
        let rec monotone = function
          | a :: (b :: _ as rest) -> a < b && monotone rest
          | _ -> true
        in
        check Alcotest.bool "strictly increasing" true (monotone seen));
    Alcotest.test_case "empty batch reports 0/0 once" `Quick (fun () ->
        let calls = ref 0 in
        let _ =
          Fleet.run ~jobs:0
            ~on_progress:(fun ~completed ~total ->
              check Alcotest.int "completed" 0 completed;
              check Alcotest.int "total" 0 total;
              incr calls)
            (fun i -> i)
        in
        check Alcotest.int "exactly once" 1 !calls);
  ]

(* ------------------------------ metrics -------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "batch metrics account for every job" `Quick (fun () ->
        let m = Obsv.Metrics.create () in
        let _ =
          Fleet.run ~metrics:m ~domains:2 ~chunk:2 ~jobs:20 (fun i ->
              if i = 7 then failwith "boom" else i)
        in
        let value name labels =
          List.fold_left
            (fun acc (s : Obsv.Metrics.sample) ->
              if s.Obsv.Metrics.s_name = name && s.Obsv.Metrics.s_labels = labels
              then
                match s.Obsv.Metrics.s_value with
                | Obsv.Metrics.Counter_v v | Obsv.Metrics.Gauge_v v -> acc + v
                | Obsv.Metrics.Histogram_v _ -> acc
              else acc)
            0
            (Obsv.Metrics.snapshot m)
        in
        check Alcotest.int "batches" 1 (value "xchain_fleet_batches_total" []);
        check Alcotest.int "ok jobs" 19
          (value "xchain_fleet_jobs_total" [ ("status", "ok") ]);
        check Alcotest.int "failed jobs" 1
          (value "xchain_fleet_jobs_total" [ ("status", "failed") ]);
        let per_domain name =
          List.init 2 (fun d -> value name [ ("domain", string_of_int d) ])
          |> List.fold_left ( + ) 0
        in
        check Alcotest.int "per-domain jobs sum" 20
          (per_domain "xchain_fleet_domain_jobs_total");
        (* Each domain's steal count is (slices claimed - 1), so the sum is
           10 slices minus however many domains won at least one slice —
           which domain claims what is timing-dependent, the range is not. *)
        let steals = per_domain "xchain_fleet_steals_total" in
        check Alcotest.bool "steals within [chunks-domains, chunks-1]" true
          (steals >= 8 && steals <= 9));
  ]

(* ---------------------------- determinism ------------------------------ *)

(* The tentpole property: for a random batch of chaos plans, the merged
   soak summary — counts, per-violation repro lines, event totals, the
   full JSON minus its timing block — is byte-identical at -j 1, 2 and 4. *)
let determinism_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"fleet merge is domain-count invariant"
         ~count:50
         QCheck.(triple (int_range 1 200) (int_range 1 32) small_int)
         (fun (jobs, chunk, salt) ->
           let f i = (i * 2654435761) lxor salt in
           let run d = fst (Fleet.run ~domains:d ~chunk ~jobs f) in
           run 1 = run 2 && run 2 = run 4));
    qcheck
      (QCheck.Test.make
         ~name:"chaos soak JSON is byte-identical at -j 1/2/4 (mod timing)"
         ~count:8
         QCheck.(pair (int_range 1 1000) (int_range 4 24))
         (fun (seed, runs) ->
           let soak d =
             let s = Xchain.Chaos.soak ~runs ~domains:d ~seed () in
             strip_timing (Xchain.Chaos.summary_to_json ~seed s)
           in
           let j1 = soak 1 in
           j1 = soak 2 && j1 = soak 4));
    Alcotest.test_case "corner sweep is domain-count invariant" `Quick
      (fun () ->
        let sweep d =
          let r =
            Xchain.Explore.sweep ~hops:1 ~domains:d
              ~protocol:Protocols.Runner.Naive_universal ()
          in
          ( r.Xchain.Explore.corners,
            r.Xchain.Explore.violations,
            r.Xchain.Explore.first_witness,
            r.Xchain.Explore.events )
        in
        let r1 = sweep 1 in
        check Alcotest.bool "-j2 = -j1" true (sweep 2 = r1);
        check Alcotest.bool "-j4 = -j1" true (sweep 4 = r1);
        let _, violations, witness, _ = r1 in
        check Alcotest.bool "baseline convicted" true (violations > 0);
        check Alcotest.bool "witness stable" true (witness <> None));
  ]

let () =
  Alcotest.run "fleet"
    [
      ("mechanics", mechanics_tests);
      ("failures", failure_tests);
      ("progress", progress_tests);
      ("metrics", metrics_tests);
      ("determinism", determinism_tests);
    ]
