(* End-to-end integration tests: miniature versions of the reproduction
   experiments asserting each headline result, plus cross-cutting checks
   (determinism, conservation across protocols, API facade). *)

open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

let check = Alcotest.check

let max_delay : Sim.Network.adversary =
 fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds -> Some bounds.Sim.Network.hi

let chi_stall : Sim.Network.adversary =
 fun ~send_time:_ ~src:_ ~dst:_ ~tag ~bounds ->
  if String.equal tag "chi" then Some bounds.Sim.Network.hi
  else Some bounds.Sim.Network.lo

let headline_tests =
  [
    Alcotest.test_case "E1 headline: Thm 1 holds across seeds and drift"
      `Quick (fun () ->
        List.iter
          (fun drift ->
            for seed = 1 to 10 do
              let cfg =
                { (Runner.default_config ~hops:3 ~seed) with drift_ppm = drift }
              in
              let o = Runner.run cfg Runner.Sync_timebound in
              let v = PP.view o in
              check Alcotest.bool
                (Printf.sprintf "drift %d seed %d" drift seed)
                true
                (V.all_hold (PP.check_def1 ~time_bounded:true v))
            done)
          [ 0; 50_000 ]);
    Alcotest.test_case "E1 headline: termination within the a-priori bound"
      `Quick (fun () ->
        let cfg = Runner.default_config ~hops:4 ~seed:3 in
        let o = Runner.run cfg Runner.Sync_timebound in
        let horizon = o.Runner.params.Params.horizon in
        List.iter
          (fun (_, _, t) ->
            check Alcotest.bool "within bound" true (t <= horizon))
          (Runner.terminated_pids o));
    Alcotest.test_case "E2 headline: the adversary defeats every finite timeout"
      `Quick (fun () ->
        List.iter
          (fun scale ->
            let probe =
              Runner.derive_params
                { (Runner.default_config ~hops:2 ~seed:0) with
                  window_scale = Some (scale, 1) }
                Runner.Sync_timebound
            in
            let gst = (Array.fold_left max 0 probe.Params.a * 2) + 50_000 in
            let cfg =
              {
                (Runner.default_config ~hops:2 ~seed:1) with
                network = Runner.Psync { gst };
                adversary = Some chi_stall;
                window_scale = Some (scale, 1);
                horizon = Some (gst + 500_000);
              }
            in
            let o = Runner.run cfg Runner.Sync_timebound in
            let v = PP.view o in
            check Alcotest.bool
              (Printf.sprintf "scale %dx broken" scale)
              false
              (V.all_hold (PP.check_def1 ~time_bounded:false v)))
          [ 1; 4; 16 ]);
    Alcotest.test_case "E3 headline: Thm 3 holds under partial synchrony"
      `Quick (fun () ->
        List.iter
          (fun (gst, tm) ->
            for seed = 1 to 5 do
              let cfg =
                {
                  (Runner.default_config ~hops:2 ~seed) with
                  network = Runner.Psync { gst };
                }
              in
              let wc =
                { Weak_protocol.default_config with patience = gst + 60_000; tm }
              in
              let o = Runner.run cfg (Runner.Weak wc) in
              let v = PP.view o in
              check Alcotest.bool "def2" true
                (V.all_hold (PP.check_def2 ~patience_sufficient:true v));
              check Alcotest.bool "paid" true (PP.bob_paid v)
            done)
          [
            (500, Weak_protocol.Single);
            (500, Weak_protocol.Committee { f = 1 });
            (3_000, Weak_protocol.Single);
          ]);
    Alcotest.test_case "E4 headline: success is monotone in patience" `Quick
      (fun () ->
        let success patience =
          let hits = ref 0 in
          for seed = 1 to 12 do
            let gst = 200 + (seed * 250) in
            let cfg =
              {
                (Runner.default_config ~hops:2 ~seed) with
                network = Runner.Psync { gst };
              }
            in
            let wc = { Weak_protocol.default_config with patience } in
            let o = Runner.run cfg (Runner.Weak wc) in
            if PP.bob_paid (PP.view o) then incr hits
          done;
          !hits
        in
        let impatient = success 0 and patient = success 50_000 in
        check Alcotest.int "impatient never succeeds" 0 impatient;
        check Alcotest.int "patient always succeeds" 12 patient);
    Alcotest.test_case "E5 headline: the weak protocol locks value for far \
                        less time" `Quick (fun () ->
        let lock protocol =
          let cfg = Runner.default_config ~hops:8 ~seed:4 in
          PP.lock_time (PP.view (Runner.run cfg protocol))
        in
        let sync = lock Runner.Sync_timebound in
        let weak =
          lock
            (Runner.Weak
               { Weak_protocol.default_config with patience = Sim.Sim_time.infinity })
        in
        check Alcotest.bool "weak << sync" true (weak * 2 < sync));
    Alcotest.test_case "E9 headline: only the naive protocol breaks under \
                        drift" `Quick (fun () ->
        let violations protocol =
          let bad = ref 0 in
          for seed = 1 to 30 do
            let cfg =
              {
                (Runner.default_config ~hops:5 ~seed) with
                drift_ppm = 80_000;
                delta = 200;
                margin = 1;
                adversary = Some max_delay;
              }
            in
            let o = Runner.run cfg protocol in
            if not (V.all_hold (PP.check_def1 ~time_bounded:false (PP.view o)))
            then incr bad
          done;
          !bad
        in
        check Alcotest.int "tuned never" 0 (violations Runner.Sync_timebound);
        check Alcotest.bool "naive sometimes" true
          (violations Runner.Naive_universal > 0));
  ]

let explorer_tests =
  [
    Alcotest.test_case "E12: the tuned protocol is clean on all 1-hop corners"
      `Quick (fun () ->
        let r =
          Xchain.Explore.sweep ~hops:1 ~protocol:Runner.Sync_timebound ()
        in
        check Alcotest.int "corners" 512 r.Xchain.Explore.corners;
        check Alcotest.int "violations" 0 r.Xchain.Explore.violations);
    Alcotest.test_case "E12: the naive protocol fails on witnessed corners"
      `Quick (fun () ->
        let r =
          Xchain.Explore.sweep ~hops:1 ~protocol:Runner.Naive_universal ()
        in
        check Alcotest.bool "violations exist" true (r.Xchain.Explore.violations > 0);
        check Alcotest.bool "witness recorded" true
          (r.Xchain.Explore.first_witness <> None));
    Alcotest.test_case "E12/E10: HTLC fails CS1 on every corner — the                         certificate gap is structural, not a race" `Quick
      (fun () ->
        let r = Xchain.Explore.sweep ~hops:1 ~protocol:Runner.Htlc () in
        check Alcotest.int "all corners" r.Xchain.Explore.corners
          r.Xchain.Explore.violations);
    Alcotest.test_case "explorer rejects TM protocols" `Quick (fun () ->
        Alcotest.check_raises "weak"
          (Invalid_argument
             "Explore.message_budget: TM protocols are not corner-enumerable here")
          (fun () ->
            ignore
              (Xchain.Explore.sweep ~hops:1
                 ~protocol:(Runner.Weak Weak_protocol.default_config) ())));
    Alcotest.test_case "message budgets are exact for the chain protocols"
      `Quick (fun () ->
        check Alcotest.int "sync h3" 18
          (Xchain.Explore.message_budget ~hops:3 ~protocol:Runner.Sync_timebound);
        check Alcotest.int "htlc h3" 16
          (Xchain.Explore.message_budget ~hops:3 ~protocol:Runner.Htlc));
  ]

let report_tests =
  [
    Alcotest.test_case "postmortem of a happy run" `Quick (fun () ->
        let o = Runner.run (Runner.default_config ~hops:2 ~seed:1) Runner.Sync_timebound in
        let r = Xchain.Report.build o in
        check Alcotest.bool "headline" true
          (String.length r.Xchain.Report.headline > 0);
        check Alcotest.int "participants" 5
          (List.length r.Xchain.Report.participants);
        check Alcotest.bool "all conform" true
          (List.for_all
             (fun p -> p.Xchain.Report.conforms = Some true)
             r.Xchain.Report.participants);
        check Alcotest.bool "no breaches" true (r.Xchain.Report.breaches = []);
        check Alcotest.bool "conserved" true r.Xchain.Report.conserved;
        check Alcotest.bool "verdicts hold" true
          (V.all_hold r.Xchain.Report.verdicts);
        (* the rendering mentions the participants *)
        let s = Xchain.Report.to_string r in
        let mem sub =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "mentions Alice" true (mem "Alice");
        check Alcotest.bool "mentions properties" true (mem "properties:"));
    Alcotest.test_case "postmortem flags the thief" `Quick (fun () ->
        let topo = Topology.create ~hops:2 in
        let cfg =
          {
            (Runner.default_config ~hops:2 ~seed:1) with
            faults = [ (Topology.escrow topo 0, Byzantine.Thief_escrow) ];
          }
        in
        let r = Xchain.Report.build (Runner.run cfg Runner.Sync_timebound) in
        let thief =
          List.find
            (fun p -> p.Xchain.Report.pid = Topology.escrow topo 0)
            r.Xchain.Report.participants
        in
        check Alcotest.bool "marked byzantine" true (thief.Xchain.Report.byzantine <> None);
        check Alcotest.bool "deviates" true (thief.Xchain.Report.conforms = Some false));
    Alcotest.test_case "weak-protocol postmortem uses Def.2 and skips                         conformance" `Quick (fun () ->
        let o =
          Runner.run (Runner.default_config ~hops:2 ~seed:1)
            (Runner.Weak Weak_protocol.default_config)
        in
        let r = Xchain.Report.build o in
        check Alcotest.bool "CC present" true
          (V.find r.Xchain.Report.verdicts "CC" <> None);
        check Alcotest.bool "no conformance claims" true
          (List.for_all
             (fun p -> p.Xchain.Report.conforms = None)
             r.Xchain.Report.participants));
  ]

let crosscut_tests =
  [
    Alcotest.test_case "determinism: byte-identical reruns" `Quick (fun () ->
        let run () =
          let cfg =
            {
              (Runner.default_config ~hops:4 ~seed:77) with
              network = Runner.Psync { gst = 700 };
            }
          in
          let o = Runner.run cfg (Runner.Weak Weak_protocol.default_config) in
          ( o.Runner.message_count,
            o.Runner.end_time,
            Sim.Trace.length o.Runner.trace,
            Runner.terminated_pids o )
        in
        let m1, e1, t1, p1 = run () in
        let m2, e2, t2, p2 = run () in
        check Alcotest.int "msgs" m1 m2;
        check Alcotest.int "end" e1 e2;
        check Alcotest.int "trace" t1 t2;
        check Alcotest.int "terms" (List.length p1) (List.length p2));
    Alcotest.test_case "conservation holds in every protocol" `Quick (fun () ->
        List.iter
          (fun protocol ->
            for seed = 1 to 5 do
              let cfg = Runner.default_config ~hops:3 ~seed in
              let o = Runner.run cfg protocol in
              check Alcotest.bool "conserved" true
                (PP.money_conserved (PP.view o))
            done)
          [
            Runner.Sync_timebound;
            Runner.Naive_universal;
            Runner.Htlc;
            Runner.Weak Weak_protocol.default_config;
          ]);
    Alcotest.test_case "API facade: defaults succeed" `Quick (fun () ->
        let r = Xchain.Api.pay () in
        check Alcotest.bool "success" true r.Xchain.Api.success;
        check Alcotest.bool "props" true r.Xchain.Api.all_properties_hold;
        check Alcotest.bool "bob time known" true (r.Xchain.Api.bob_paid_at <> None));
    Alcotest.test_case "API facade: weak committee under psync" `Quick
      (fun () ->
        let r =
          Xchain.Api.pay ~hops:2
            ~network:(Xchain.Api.Partially_synchronous { gst = 400 })
            ~protocol:(Xchain.Api.Weak_committee { patience = 60_000; f = 1 })
            ()
        in
        check Alcotest.bool "success" true r.Xchain.Api.success);
    Alcotest.test_case "API facade: chain TM and atomic baselines" `Quick
      (fun () ->
        let chain =
          Xchain.Api.pay ~hops:2
            ~protocol:(Xchain.Api.Weak_chain { patience = 60_000; validators = 3 })
            ()
        in
        check Alcotest.bool "chain success" true chain.Xchain.Api.success;
        let atomic =
          Xchain.Api.pay ~hops:2 ~protocol:(Xchain.Api.Atomic { deadline = 5_000 }) ()
        in
        check Alcotest.bool "atomic success" true atomic.Xchain.Api.success;
        let aborted =
          Xchain.Api.pay ~hops:2
            ~network:(Xchain.Api.Partially_synchronous { gst = 20_000 })
            ~protocol:(Xchain.Api.Atomic { deadline = 1_000 })
            ()
        in
        check Alcotest.bool "atomic aborts past GST" false
          aborted.Xchain.Api.success;
        check Alcotest.bool "but safely" true
          aborted.Xchain.Api.all_properties_hold);
    Alcotest.test_case "API facade: participant names" `Quick (fun () ->
        let r = Xchain.Api.pay ~hops:2 () in
        let o = r.Xchain.Api.outcome in
        check Alcotest.string "alice" "Alice" (Xchain.Api.participant_name o 0);
        check Alcotest.string "chloe" "Chloe1" (Xchain.Api.participant_name o 1);
        check Alcotest.string "bob" "Bob" (Xchain.Api.participant_name o 2);
        check Alcotest.string "e0" "e0" (Xchain.Api.participant_name o 3));
    Alcotest.test_case "experiment registry is total" `Quick (fun () ->
        List.iter
          (fun name ->
            check Alcotest.bool name true (Xchain.Experiments.by_name name <> None))
          Xchain.Experiments.names;
        check Alcotest.bool "unknown" true (Xchain.Experiments.by_name "e99" = None));
    Alcotest.test_case "table rendering stays aligned" `Quick (fun () ->
        let t =
          Xchain.Table.make ~title:"t" ~header:[ "a"; "bb" ]
            [ [ "1"; "2" ]; [ "333"; "4" ] ]
        in
        let s = Xchain.Table.to_string t in
        check Alcotest.bool "has title" true
          (String.length s > 0
          &&
          let mem sub =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          mem "== t ==" && mem "333"));
    Alcotest.test_case "table rejects ragged rows" `Quick (fun () ->
        Alcotest.check_raises "ragged"
          (Invalid_argument "Table.make (x): row 0 has 1 cells, header has 2")
          (fun () ->
            ignore (Xchain.Table.make ~title:"x" ~header:[ "a"; "b" ] [ [ "1" ] ])));
    Alcotest.test_case "E10 sign structure: Alice never gains, Bob never \
                        loses" `Quick (fun () ->
        for seed = 1 to 10 do
          let cfg = Runner.default_config ~hops:2 ~seed in
          let o = Runner.run cfg Runner.Sync_timebound in
          let v = PP.view o in
          let topo = o.Runner.env.Env.topo in
          check Alcotest.bool "alice <= 0" true
            (v.PP.net (Topology.alice topo) <= 0);
          check Alcotest.bool "bob >= 0" true (v.PP.net (Topology.bob topo) >= 0)
        done);
  ]

let () =
  Alcotest.run "integration"
    [
      ("headline", headline_tests);
      ("explorer", explorer_tests);
      ("report", report_tests);
      ("crosscut", crosscut_tests);
    ]
