(* Tests for the telemetry subsystem: metrics registry semantics, label
   cardinality, Prometheus escaping, span JSONL round-trips, and the
   zero-allocation guarantee on the hot path. *)

open Obsv

let check = Alcotest.check

(* ------------------------------ counters ------------------------------ *)

let counter_tests =
  [
    Alcotest.test_case "starts at zero, inc and add" `Quick (fun () ->
        let r = Metrics.create () in
        let c = Metrics.counter r "t_counter_basic" in
        check Alcotest.int "zero" 0 (Metrics.counter_value c);
        Metrics.inc c;
        Metrics.inc c;
        Metrics.add c 40;
        check Alcotest.int "42" 42 (Metrics.counter_value c));
    Alcotest.test_case "add rejects negative" `Quick (fun () ->
        let r = Metrics.create () in
        let c = Metrics.counter r "t_counter_neg" in
        Alcotest.check_raises "neg"
          (Invalid_argument "Metrics.add: counters only go up") (fun () ->
            Metrics.add c (-1)));
    Alcotest.test_case "re-registration returns same handle" `Quick (fun () ->
        let r = Metrics.create () in
        let a = Metrics.counter r ~labels:[ ("k", "v") ] "t_counter_idem" in
        let b = Metrics.counter r ~labels:[ ("k", "v") ] "t_counter_idem" in
        Metrics.inc a;
        Metrics.inc b;
        check Alcotest.int "shared" 2 (Metrics.counter_value a));
    Alcotest.test_case "label order does not split children" `Quick (fun () ->
        let r = Metrics.create () in
        let a =
          Metrics.counter r ~labels:[ ("x", "1"); ("y", "2") ] "t_counter_ord"
        in
        let b =
          Metrics.counter r ~labels:[ ("y", "2"); ("x", "1") ] "t_counter_ord"
        in
        Metrics.inc a;
        Metrics.inc b;
        check Alcotest.int "canonical" 2 (Metrics.counter_value b));
    Alcotest.test_case "kind mismatch raises" `Quick (fun () ->
        let r = Metrics.create () in
        ignore (Metrics.counter r "t_kind_clash");
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument
             "Metrics: t_kind_clash re-registered as gauge (was counter)")
          (fun () -> ignore (Metrics.gauge r "t_kind_clash")));
    Alcotest.test_case "bad names rejected" `Quick (fun () ->
        let r = Metrics.create () in
        Alcotest.check_raises "leading digit"
          (Invalid_argument "Metrics: invalid metric name \"9lives\"")
          (fun () -> ignore (Metrics.counter r "9lives")));
  ]

(* ------------------------------- gauges ------------------------------- *)

let gauge_tests =
  [
    Alcotest.test_case "set and add both directions" `Quick (fun () ->
        let r = Metrics.create () in
        let g = Metrics.gauge r "t_gauge" in
        Metrics.set g 10;
        Metrics.gauge_add g 5;
        Metrics.gauge_add g (-12);
        check Alcotest.int "3" 3 (Metrics.gauge_value g));
  ]

(* ----------------------------- histograms ----------------------------- *)

let histogram_tests =
  [
    Alcotest.test_case "observe fills cumulative buckets" `Quick (fun () ->
        let r = Metrics.create () in
        let h = Metrics.histogram r ~buckets:[| 10; 100 |] "t_hist" in
        List.iter (Metrics.observe h) [ 1; 10; 11; 1000 ];
        check Alcotest.int "count" 4 (Metrics.histogram_count h);
        check Alcotest.int "sum" 1022 (Metrics.histogram_sum h);
        check
          Alcotest.(list (pair int int))
          "buckets"
          [ (10, 2); (100, 3); (max_int, 4) ]
          (Metrics.histogram_buckets h));
    Alcotest.test_case "bucket layout mismatch raises" `Quick (fun () ->
        let r = Metrics.create () in
        ignore (Metrics.histogram r ~buckets:[| 1; 2 |] "t_hist_layout");
        Alcotest.check_raises "layout"
          (Invalid_argument
             "Metrics: t_hist_layout re-registered with different buckets")
          (fun () ->
            ignore (Metrics.histogram r ~buckets:[| 1; 3 |] "t_hist_layout")));
    Alcotest.test_case "default buckets are strictly increasing" `Quick
      (fun () ->
        let b = Metrics.log_buckets in
        Array.iteri
          (fun i v -> if i > 0 then check Alcotest.bool "incr" true (v > b.(i - 1)))
          b);
  ]

(* --------------------------- cardinality cap --------------------------- *)

let cardinality_tests =
  [
    Alcotest.test_case "past the cap lands in the overflow child" `Quick
      (fun () ->
        let r = Metrics.create () in
        for i = 1 to Metrics.cardinality_cap + 10 do
          let c =
            Metrics.counter r
              ~labels:[ ("id", string_of_int i) ]
              "t_cardinality"
          in
          Metrics.inc c
        done;
        let samples =
          List.filter
            (fun s -> s.Metrics.s_name = "t_cardinality")
            (Metrics.snapshot r)
        in
        (* cap distinct children plus one shared overflow child *)
        check Alcotest.int "children" (Metrics.cardinality_cap + 1)
          (List.length samples);
        let overflow =
          List.find
            (fun s -> List.mem_assoc "overflow" s.Metrics.s_labels)
            samples
        in
        (match overflow.Metrics.s_value with
        | Metrics.Counter_v v -> check Alcotest.int "overflowed" 10 v
        | _ -> Alcotest.fail "overflow child is not a counter");
        check Alcotest.string "marker" "true"
          (List.assoc "overflow" overflow.Metrics.s_labels));
  ]

(* --------------------------- prometheus text --------------------------- *)

let prometheus_tests =
  [
    Alcotest.test_case "label escaping" `Quick (fun () ->
        check Alcotest.string "backslash" {|a\\b|}
          (Prometheus.escape_label_value {|a\b|});
        check Alcotest.string "quote" {|a\"b|}
          (Prometheus.escape_label_value {|a"b|});
        check Alcotest.string "newline" {|a\nb|}
          (Prometheus.escape_label_value "a\nb"));
    Alcotest.test_case "exposition carries escaped label values" `Quick
      (fun () ->
        let r = Metrics.create () in
        let c =
          Metrics.counter r
            ~labels:[ ("path", "a\\b\"c\nd") ]
            ~help:"tricky" "t_promtext"
        in
        Metrics.inc c;
        let text = Prometheus.render r in
        let expected = {|t_promtext{path="a\\b\"c\nd"} 1|} in
        let found =
          String.split_on_char '\n' text |> List.exists (String.equal expected)
        in
        if not found then
          Alcotest.failf "missing %S in:\n%s" expected text);
    Alcotest.test_case "histogram exposition shape" `Quick (fun () ->
        let r = Metrics.create () in
        let h = Metrics.histogram r ~buckets:[| 5 |] ~help:"h" "t_promhist" in
        Metrics.observe h 3;
        Metrics.observe h 9;
        let text = Prometheus.render r in
        List.iter
          (fun line ->
            let found =
              String.split_on_char '\n' text |> List.exists (String.equal line)
            in
            if not found then Alcotest.failf "missing %S in:\n%s" line text)
          [
            "# TYPE t_promhist histogram";
            {|t_promhist_bucket{le="5"} 1|};
            {|t_promhist_bucket{le="+Inf"} 2|};
            "t_promhist_sum 12";
            "t_promhist_count 2";
          ]);
    Alcotest.test_case "help text printed once per family" `Quick (fun () ->
        let r = Metrics.create () in
        ignore (Metrics.counter r ~labels:[ ("a", "1") ] ~help:"x" "t_once");
        ignore (Metrics.counter r ~labels:[ ("a", "2") ] ~help:"x" "t_once");
        let text = Prometheus.render r in
        let headers =
          String.split_on_char '\n' text
          |> List.filter (fun l -> l = "# TYPE t_once counter")
        in
        check Alcotest.int "one TYPE line" 1 (List.length headers));
  ]

(* ------------------------- minimal JSON parser ------------------------- *)
(* Just enough JSON to round-trip the exporters' output without a JSON
   dependency: objects, arrays, strings (with escapes), ints, null, bools. *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'u' ->
              (* only ever produced for control chars by our exporters *)
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 3;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex)))
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while match peek () with Some '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then fail "expected number";
    J_int (int_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          J_list [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                J_list (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> J_string (parse_string ())
    | Some 'n' -> literal "null" J_null
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some _ -> parse_int ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let obj_field o k =
  match o with
  | J_obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing field %S" k)
  | _ -> Alcotest.fail "not an object"

(* -------------------------------- spans -------------------------------- *)

let span_tests =
  [
    Alcotest.test_case "lifecycle and accessors" `Quick (fun () ->
        let t = Span.create () in
        let root = Span.start t ~name:"payment" ~at:0 () in
        let child =
          Span.start t ~parent:root ~attrs:[ ("pid", "3") ] ~name:"leg" ~at:5 ()
        in
        check Alcotest.string "running" "running" (Span.span_status child);
        check Alcotest.(option int) "open" None (Span.span_end child);
        Span.finish ~status:"ok" ~at:9 child;
        Span.finish ~status:"commit" ~at:12 root;
        check Alcotest.(option int) "parent" (Some (Span.span_id root))
          (Span.span_parent child);
        check Alcotest.(option int) "closed" (Some 9) (Span.span_end child);
        check Alcotest.int "roots" 1 (List.length (Span.roots t));
        check Alcotest.int "count" 2 (Span.count t));
    Alcotest.test_case "double finish raises" `Quick (fun () ->
        let t = Span.create () in
        let s = Span.start t ~name:"x" ~at:0 () in
        Span.finish ~at:1 s;
        Alcotest.check_raises "twice"
          (Invalid_argument "Span.finish: span already finished") (fun () ->
            Span.finish ~at:2 s));
    Alcotest.test_case "capture off records nothing" `Quick (fun () ->
        let t = Span.create () in
        Span.set_capture t false;
        let s = Span.start t ~name:"ghost" ~at:0 () in
        Span.finish ~at:1 s;
        check Alcotest.int "empty" 0 (Span.count t);
        Span.set_capture t true);
    Alcotest.test_case "jsonl round-trips line by line" `Quick (fun () ->
        let t = Span.create () in
        let root =
          Span.start t
            ~attrs:[ ("protocol", "sync"); ("note", "q\"uo\\te\nnl") ]
            ~name:"payment" ~at:0 ()
        in
        let child = Span.start t ~parent:root ~name:"leg" ~at:3 () in
        Span.finish ~status:"ok" ~at:8 child;
        Span.finish ~status:"commit" ~at:11 root;
        ignore (Span.start t ~name:"dangling" ~at:20 ());
        let lines =
          Span.to_jsonl t |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "3 lines" 3 (List.length lines);
        let parsed = List.map parse_json lines in
        (match parsed with
        | [ r; c; d ] ->
            check Alcotest.string "root name" "payment"
              (match obj_field r "name" with
              | J_string s -> s
              | _ -> Alcotest.fail "name");
            (match obj_field r "parent" with
            | J_null -> ()
            | _ -> Alcotest.fail "root parent should be null");
            check Alcotest.string "escaped attr survives" "q\"uo\\te\nnl"
              (match obj_field (obj_field r "attrs") "note" with
              | J_string s -> s
              | _ -> Alcotest.fail "attr");
            (match (obj_field c "parent", obj_field r "id") with
            | J_int p, J_int id -> check Alcotest.int "link" id p
            | _ -> Alcotest.fail "ids");
            (match (obj_field d "end", obj_field d "status") with
            | J_null, J_string "running" -> ()
            | _ -> Alcotest.fail "running span must export end:null")
        | _ -> Alcotest.fail "expected 3 spans"));
    Alcotest.test_case "registry to_json parses" `Quick (fun () ->
        let r = Metrics.create () in
        Metrics.inc (Metrics.counter r ~labels:[ ("a", "b\"c") ] "t_json");
        Metrics.observe (Metrics.histogram r ~buckets:[| 2 |] "t_json_h") 1;
        match parse_json (Metrics.to_json r) with
        | J_obj [ ("metrics", J_list (_ :: _)) ] -> ()
        | _ -> Alcotest.fail "unexpected to_json shape");
  ]

(* --------------------------- causal recorder --------------------------- *)

let node c ~kind ~pid ~at ?trace ~label () =
  Causal.record c ~kind ~pid ~at ?trace ~label ()

(* a little payment history exercising every edge kind:

     n0 arrive --queue--> n1 admit --prog--> n2 send:G --msg--> n3 deliver:G
     --prog--> n4 timer_set --prog--> n5 crash --outage--> n6 recover
     n4 --timer--> n7 fire (also n6 --outage--> n7) --prog--> n8 send (sink)

   with delta = 100 the message gap of 120 splits 100 transit + 20 gst. *)
let build_history () =
  let c = Causal.create () in
  let n0 = node c ~kind:Causal.Note ~pid:0 ~at:0 ~trace:7 ~label:"arrive" () in
  let n1 = node c ~kind:Causal.Note ~pid:0 ~at:40 ~trace:7 ~label:"admit" () in
  Causal.add_edge c ~kind:Causal.Queue ~src:n0 ~dst:n1;
  let n2 = node c ~kind:Causal.Send ~pid:1 ~at:40 ~trace:7 ~label:"G" () in
  Causal.add_edge c ~kind:Causal.Program ~src:n1 ~dst:n2;
  let n3 =
    node c ~kind:Causal.Deliver ~pid:2 ~at:160 ~trace:7 ~label:"G" ()
  in
  Causal.add_edge c ~kind:Causal.Message ~src:n2 ~dst:n3;
  let n4 =
    node c ~kind:Causal.Timer_set ~pid:2 ~at:160 ~trace:7 ~label:"win" ()
  in
  Causal.add_edge c ~kind:Causal.Program ~src:n3 ~dst:n4;
  let n5 = node c ~kind:Causal.Crash ~pid:2 ~at:200 ~label:"crash" () in
  Causal.add_edge c ~kind:Causal.Program ~src:n4 ~dst:n5;
  let n6 = node c ~kind:Causal.Recover ~pid:2 ~at:260 ~label:"recover" () in
  Causal.add_edge c ~kind:Causal.Outage ~src:n5 ~dst:n6;
  let n7 =
    node c ~kind:Causal.Timer_fire ~pid:2 ~at:300 ~trace:7 ~label:"win" ()
  in
  Causal.add_edge c ~kind:Causal.Timer ~src:n4 ~dst:n7;
  Causal.add_edge c ~kind:Causal.Outage ~src:n6 ~dst:n7;
  let n8 = node c ~kind:Causal.Send ~pid:2 ~at:300 ~trace:7 ~label:"chi" () in
  Causal.add_edge c ~kind:Causal.Program ~src:n7 ~dst:n8;
  (c, n0, n8)

let causal_tests =
  [
    Alcotest.test_case "ids are consecutive, edges forward-only" `Quick
      (fun () ->
        let c = Causal.create () in
        let a = node c ~kind:Causal.Send ~pid:0 ~at:0 ~label:"a" () in
        let b = node c ~kind:Causal.Deliver ~pid:1 ~at:5 ~label:"a" () in
        check Alcotest.int "first id" 0 a;
        check Alcotest.int "second id" 1 b;
        Causal.add_edge c ~kind:Causal.Message ~src:a ~dst:b;
        check Alcotest.int "edges" 1 (Causal.edge_count c);
        let forbidden = [ (b, a); (a, a); (a, 5); (-1, b) ] in
        List.iter
          (fun (src, dst) ->
            match Causal.add_edge c ~kind:Causal.Program ~src ~dst with
            | () -> Alcotest.failf "edge %d->%d accepted" src dst
            | exception Invalid_argument _ -> ())
          forbidden);
    Alcotest.test_case "negative time rejected" `Quick (fun () ->
        let c = Causal.create () in
        match node c ~kind:Causal.Note ~pid:0 ~at:(-1) ~label:"x" () with
        | _ -> Alcotest.fail "negative at accepted"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "acyclic by construction: ids topo-sort the graph"
      `Quick (fun () ->
        let c, _, _ = build_history () in
        (* every edge goes id-forward, so no cycle can exist *)
        Causal.iter_edges c ~f:(fun ~kind:_ ~src ~dst ->
            check Alcotest.bool "forward" true (src < dst));
        (* and times are non-decreasing along every edge *)
        Causal.iter_edges c ~f:(fun ~kind:_ ~src ~dst ->
            check Alcotest.bool "time monotone" true
              (Causal.time_of c src <= Causal.time_of c dst)));
    Alcotest.test_case "path_valid accepts edges, rejects jumps" `Quick
      (fun () ->
        let c, _, _ = build_history () in
        check Alcotest.bool "real path" true (Causal.path_valid c [ 0; 1; 2 ]);
        check Alcotest.bool "no edge 0->2" false (Causal.path_valid c [ 0; 2 ]);
        check Alcotest.bool "decreasing" false (Causal.path_valid c [ 2; 1 ]);
        check Alcotest.bool "singleton" true (Causal.path_valid c [ 3 ]);
        check Alcotest.bool "empty" true (Causal.path_valid c []));
    Alcotest.test_case "set_trace retags a node" `Quick (fun () ->
        let c = Causal.create () in
        let a = node c ~kind:Causal.Note ~pid:0 ~at:0 ~label:"x" () in
        check Alcotest.int "default" (-1) (Causal.trace_of c a);
        Causal.set_trace c a ~trace:9;
        check Alcotest.int "retagged" 9 (Causal.trace_of c a));
    Alcotest.test_case "jsonl exporter round-trips" `Quick (fun () ->
        let c, _, _ = build_history () in
        let lines =
          Causal.to_jsonl c |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "one line per node" (Causal.node_count c)
          (List.length lines);
        List.iteri
          (fun i line ->
            let j = parse_json line in
            (match obj_field j "id" with
            | J_int id -> check Alcotest.int "id in order" i id
            | _ -> Alcotest.fail "id");
            match obj_field j "preds" with
            | J_list ps ->
                check Alcotest.int "pred count" (List.length (Causal.preds c i))
                  (List.length ps)
            | _ -> Alcotest.fail "preds")
          lines);
    Alcotest.test_case "chrome exporter shape" `Quick (fun () ->
        let c, n0, n8 = build_history () in
        let start = Causal.time_of c n0 and stop = Causal.time_of c n8 in
        let out =
          Causal.to_chrome ~payments:[ ("pay#7", 7, start, stop, "committed") ]
            c
        in
        let j = parse_json out in
        (match obj_field j "displayTimeUnit" with
        | J_string "ms" -> ()
        | _ -> Alcotest.fail "displayTimeUnit");
        let events =
          match obj_field j "traceEvents" with
          | J_list es -> es
          | _ -> Alcotest.fail "traceEvents"
        in
        let ph e =
          match obj_field e "ph" with
          | J_string s -> s
          | _ -> Alcotest.fail "ph"
        in
        let count p = List.length (List.filter (fun e -> ph e = p) events) in
        check Alcotest.int "one instant per node" (Causal.node_count c)
          (count "i");
        (* one s/f pair per message edge *)
        let messages = ref 0 in
        Causal.iter_edges c ~f:(fun ~kind ~src:_ ~dst:_ ->
            if kind = Causal.Message then incr messages);
        check Alcotest.int "flow starts" !messages (count "s");
        check Alcotest.int "flow ends" !messages (count "f");
        check Alcotest.int "payment slice" 1 (count "X"));
    Alcotest.test_case "chrome export is deterministic" `Quick (fun () ->
        let c1, _, _ = build_history () and c2, _, _ = build_history () in
        check Alcotest.string "byte-identical" (Causal.to_chrome c1)
          (Causal.to_chrome c2));
  ]

(* ------------------------------- blame --------------------------------- *)

let blame_tests =
  [
    Alcotest.test_case "categories sum exactly to end-to-end latency" `Quick
      (fun () ->
        let c, n0, n8 = build_history () in
        let r = Obsv.Blame.attribute ~delta:100 c ~root:n0 ~sink:n8 in
        check Alcotest.bool "rooted" true r.Blame.rooted;
        check Alcotest.int "total" 300 r.Blame.total;
        check Alcotest.bool "invariant" true (Blame.check r);
        check Alcotest.bool "path is real" true (Causal.path_valid c r.Blame.path);
        let cat name = List.assoc name r.Blame.by_category in
        check Alcotest.int "queueing" 40 (cat Blame.Queueing);
        check Alcotest.int "transit" 100 (cat Blame.Transit);
        check Alcotest.int "gst" 20 (cat Blame.Gst_wait);
        check Alcotest.int "timeout" 0 (cat Blame.Timeout);
        check Alcotest.int "downtime" 100 (cat Blame.Downtime);
        check Alcotest.int "processing" 40 (cat Blame.Processing);
        check Alcotest.int "external" 0 (cat Blame.External);
        check Alcotest.int "trace from sink" 7 r.Blame.trace);
    Alcotest.test_case "no delta: whole message gap is transit" `Quick
      (fun () ->
        let c, n0, n8 = build_history () in
        let r = Blame.attribute c ~root:n0 ~sink:n8 in
        check Alcotest.int "transit"
          120
          (List.assoc Blame.Transit r.Blame.by_category);
        check Alcotest.int "gst" 0 (List.assoc Blame.Gst_wait r.Blame.by_category);
        check Alcotest.bool "still exact" true (Blame.check r));
    Alcotest.test_case "queue edge outranks a later program edge" `Quick
      (fun () ->
        let c = Causal.create () in
        let a = node c ~kind:Causal.Note ~pid:0 ~at:0 ~label:"root" () in
        let b = node c ~kind:Causal.Note ~pid:1 ~at:50 ~label:"noise" () in
        Causal.add_edge c ~kind:Causal.Program ~src:a ~dst:b;
        let s = node c ~kind:Causal.Note ~pid:1 ~at:60 ~label:"sink" () in
        Causal.add_edge c ~kind:Causal.Program ~src:b ~dst:s;
        Causal.add_edge c ~kind:Causal.Queue ~src:a ~dst:s;
        let r = Blame.attribute c ~root:a ~sink:s in
        check Alcotest.(list int) "skips the noise" [ a; s ] r.Blame.path;
        check Alcotest.int "queueing" 60
          (List.assoc Blame.Queueing r.Blame.by_category));
    Alcotest.test_case "walk that exits history is cut as external" `Quick
      (fun () ->
        let c = Causal.create () in
        let before =
          node c ~kind:Causal.Note ~pid:0 ~at:0 ~label:"pre-history" ()
        in
        let root = node c ~kind:Causal.Note ~pid:1 ~at:10 ~label:"root" () in
        let sink = node c ~kind:Causal.Note ~pid:0 ~at:50 ~label:"sink" () in
        Causal.add_edge c ~kind:Causal.Program ~src:before ~dst:sink;
        let r = Blame.attribute c ~root ~sink in
        check Alcotest.bool "not rooted" false r.Blame.rooted;
        check Alcotest.int "external gap" 40
          (List.assoc Blame.External r.Blame.by_category);
        check Alcotest.int "total still exact" 40 r.Blame.total;
        check Alcotest.bool "invariant" true (Blame.check r));
    Alcotest.test_case "degenerate root = sink" `Quick (fun () ->
        let c = Causal.create () in
        let a = node c ~kind:Causal.Note ~pid:0 ~at:5 ~label:"x" () in
        let r = Blame.attribute c ~root:a ~sink:a in
        check Alcotest.int "zero total" 0 r.Blame.total;
        check Alcotest.bool "rooted" true r.Blame.rooted;
        check Alcotest.bool "invariant" true (Blame.check r));
    Alcotest.test_case "sink before root rejected" `Quick (fun () ->
        let c, n0, n8 = build_history () in
        match Blame.attribute c ~root:n8 ~sink:n0 with
        | _ -> Alcotest.fail "accepted"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "aggregate totals and p99 tail" `Quick (fun () ->
        let c, n0, n8 = build_history () in
        let slow = Blame.attribute ~delta:100 c ~root:n0 ~sink:n8 in
        let fast = Blame.attribute c ~root:2 ~sink:3 in
        let a = Blame.aggregate [ fast; slow ] in
        check Alcotest.int "payments" 2 a.Blame.payments;
        check Alcotest.int "grand total"
          (fast.Blame.total + slow.Blame.total)
          a.Blame.agg_total;
        check Alcotest.int "tail of 2 is 1" 1 a.Blame.tail_count;
        check Alcotest.int "tail is the slow one" slow.Blame.total
          a.Blame.tail_total;
        List.iter
          (fun cat ->
            check Alcotest.int
              (Blame.category_name cat ^ " adds up")
              (List.assoc cat fast.Blame.by_category
              + List.assoc cat slow.Blame.by_category)
              (List.assoc cat a.Blame.agg_by_category))
          Blame.categories);
    Alcotest.test_case "json exporters parse" `Quick (fun () ->
        let c, n0, n8 = build_history () in
        let r = Blame.attribute ~delta:100 c ~root:n0 ~sink:n8 in
        (match parse_json (Blame.report_to_json r) with
        | J_obj kvs ->
            check Alcotest.bool "has path" true (List.mem_assoc "path" kvs);
            check Alcotest.bool "has by_category" true
              (List.mem_assoc "by_category" kvs)
        | _ -> Alcotest.fail "report_to_json");
        match parse_json (Blame.agg_to_json (Blame.aggregate [ r ])) with
        | J_obj kvs ->
            check Alcotest.bool "has tail" true (List.mem_assoc "tail" kvs)
        | _ -> Alcotest.fail "agg_to_json");
  ]

(* ------------------------- span <-> causal links ------------------------ *)

let span_link_tests =
  [
    Alcotest.test_case "trace/root_event exported only when linked" `Quick
      (fun () ->
        let t = Span.create () in
        let linked =
          Span.start t ~trace_id:7 ~root_event:42 ~name:"pay" ~at:0 ()
        in
        let plain = Span.start t ~name:"pay" ~at:0 () in
        check Alcotest.(option int) "trace" (Some 7) (Span.span_trace_id linked);
        check
          Alcotest.(option int)
          "root event" (Some 42)
          (Span.span_root_event linked);
        check Alcotest.(option int) "unlinked" None (Span.span_trace_id plain);
        Span.finish ~status:"commit" ~at:5 linked;
        Span.finish ~status:"commit" ~at:5 plain;
        match
          Span.to_jsonl t |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
          |> List.map parse_json
        with
        | [ l; p ] ->
            (match (obj_field l "trace", obj_field l "root_event") with
            | J_int 7, J_int 42 -> ()
            | _ -> Alcotest.fail "linked fields");
            check Alcotest.bool "plain row has no trace field" false
              (match p with
              | J_obj kvs -> List.mem_assoc "trace" kvs
              | _ -> true)
        | _ -> Alcotest.fail "expected two spans");
    Alcotest.test_case "finish_running closes stuck spans at the horizon"
      `Quick (fun () ->
        let t = Span.create () in
        let stuck = Span.start t ~name:"pay" ~at:100 () in
        let done_ = Span.start t ~name:"pay" ~at:110 () in
        Span.finish ~status:"commit" ~at:150 done_;
        let late = Span.start t ~name:"pay" ~at:900 () in
        check Alcotest.int "two forced" 2
          (Span.finish_running ~status:"stuck" ~at:500 t);
        check Alcotest.string "stuck status" "stuck" (Span.span_status stuck);
        check Alcotest.(option int) "stuck at horizon" (Some 500)
          (Span.span_end stuck);
        check Alcotest.string "finished span untouched" "commit"
          (Span.span_status done_);
        (* a span that started after the horizon is clamped, never negative *)
        check Alcotest.(option int) "clamped to start" (Some 900)
          (Span.span_end late);
        check Alcotest.int "nothing left running" 0
          (Span.finish_running ~at:600 t));
  ]

(* ------------------------------ profiler ------------------------------- *)

(* A deterministic fake host clock: strictly monotonic, 3 "ns" per read,
   so even wall-time attributions are exactly reproducible across runs. *)
let fake_clock () =
  let t = ref 0 in
  fun () ->
    t := !t + 3;
    !t

type ping = Ping of int

(* A two-process ping-pong with one timer firing and (optionally) a
   crash/recover pair: the smallest engine that exercises all four
   dispatch kinds. Returned unrun so callers can bracket {!Sim.Engine.run}
   with their own measurements. *)
let mk_pingpong ?prof ?(rounds = 40) ?(crash = true) ~seed () =
  let network =
    Sim.Network.create
      (Sim.Network.Synchronous { delta = 10 })
      (Sim.Rng.create ~seed:(seed + 1))
  in
  let e =
    Sim.Engine.create ~tag_of:(fun (Ping _) -> "ping") ~network ?prof ~seed ()
  in
  let handlers =
    {
      Sim.Engine.on_start =
        (fun ctx ->
          if Sim.Engine.pid ctx = 0 then begin
            Sim.Engine.send ctx ~dst:1 (Ping rounds);
            Sim.Engine.set_timer_after ctx ~after:5000 ~label:"stop"
          end);
      on_receive =
        (fun ctx ~src (Ping n) ->
          if n > 0 then Sim.Engine.send ctx ~dst:src (Ping (n - 1)));
      on_timer = (fun _ ~label:_ -> ());
    }
  in
  ignore (Sim.Engine.add_process e ~label:"left" handlers);
  ignore (Sim.Engine.add_process e ~label:"right" handlers);
  if crash then Sim.Engine.schedule_crash e ~pid:1 ~at:2000 ~recover_at:2500 ();
  e

let run_pingpong ?prof ?rounds ?crash ~seed () =
  let e = mk_pingpong ?prof ?rounds ?crash ~seed () in
  ignore (Sim.Engine.run e);
  e

let fresh_prof () =
  Prof.create ~now_ns:(fake_clock ()) ~metrics:(Metrics.create ()) ()

let site_fingerprint s =
  Printf.sprintf "%d/%s/%s:%d:%dw:%dns" s.Prof.s_trace s.Prof.s_label
    (Prof.kind_name s.Prof.s_kind)
    s.Prof.s_count s.Prof.s_alloc_words s.Prof.s_wall_ns

let prof_tests =
  [
    Alcotest.test_case "per-site sums reconcile with engine totals" `Quick
      (fun () ->
        let prof = fresh_prof () in
        let e = run_pingpong ~prof ~seed:5 () in
        let dequeued = Sim.Engine.events_processed e in
        check Alcotest.int "every dequeued event profiled" dequeued
          (Prof.events prof);
        let count, wall, alloc = Prof.site_totals prof in
        check Alcotest.int "site counts sum exactly" dequeued count;
        let s = Prof.sites prof in
        check Alcotest.int "sites list agrees with totals" count
          (List.fold_left (fun a x -> a + x.Prof.s_count) 0 s);
        (* wall/alloc epsilon: the run loop's own pop/peek/bookkeeping is
           outside the enter/leave bracket, so site sums can only fall
           short of the run totals, never exceed them. *)
        let run_wall, run_alloc = Prof.run_totals prof in
        check Alcotest.bool "site wall <= run wall" true (wall <= run_wall);
        check Alcotest.bool "site alloc <= run alloc" true (alloc <= run_alloc);
        let kinds =
          List.sort_uniq compare (List.map (fun x -> x.Prof.s_kind) s)
        in
        check Alcotest.int "all four dispatch kinds attributed" 4
          (List.length kinds);
        let labels =
          List.sort_uniq compare (List.map (fun x -> x.Prof.s_label) s)
        in
        check
          Alcotest.(list string)
          "role labels as interned" [ "left"; "right" ] labels);
    Alcotest.test_case "metrics counters mirror the site counts" `Quick
      (fun () ->
        let m = Metrics.create () in
        let prof = Prof.create ~now_ns:(fake_clock ()) ~metrics:m () in
        let e = run_pingpong ~prof ~seed:5 () in
        let by_kind k =
          Metrics.counter_value
            (Metrics.counter m
               ~labels:[ ("kind", k) ]
               "xchain_prof_dispatch_total")
        in
        check Alcotest.int "dispatch counters sum to events"
          (Sim.Engine.events_processed e)
          (by_kind "deliver" + by_kind "timer" + by_kind "crash"
         + by_kind "recover");
        check Alcotest.int "one crash" 1 (by_kind "crash");
        check Alcotest.int "one recovery" 1 (by_kind "recover"));
    Alcotest.test_case "identical runs profile identically" `Quick (fun () ->
        let go () =
          let prof = fresh_prof () in
          ignore (run_pingpong ~prof ~seed:7 ());
          List.map site_fingerprint (Prof.sites prof)
        in
        (* warm-up triggers any one-time lazy runtime initialisation so
           the measured pair sees identical allocation behaviour *)
        ignore (go ());
        check Alcotest.(list string) "counts, words and fake-clock wall" (go ())
          (go ()));
    Alcotest.test_case "profiling does not change the schedule" `Quick
      (fun () ->
        let off = run_pingpong ~seed:3 () in
        let on_ = run_pingpong ~prof:(fresh_prof ()) ~seed:3 () in
        check Alcotest.int "same event count"
          (Sim.Engine.events_processed off)
          (Sim.Engine.events_processed on_));
    Alcotest.test_case "label intern saturates into one overflow slot" `Quick
      (fun () ->
        let p = Prof.create ~metrics:(Metrics.create ()) () in
        let ids =
          List.init (Prof.label_cap + 10) (fun i ->
              Prof.intern p (Printf.sprintf "l%d" i))
        in
        check Alcotest.bool "ids bounded" true
          (List.for_all (fun id -> id >= 0 && id < Prof.label_cap) ids);
        check Alcotest.int "distinct ids capped" Prof.label_cap
          (List.length (List.sort_uniq compare ids));
        let overflow = List.nth ids (Prof.label_cap - 1) in
        check Alcotest.bool "tail shares the overflow id" true
          (List.for_all
             (fun i -> List.nth ids i = overflow)
             (List.init 10 (fun k -> Prof.label_cap - 1 + k)));
        check Alcotest.int "early names keep their ids" 0 (Prof.intern p "l0"));
    Alcotest.test_case "json and collapsed exports are well-formed" `Quick
      (fun () ->
        let prof = fresh_prof () in
        ignore (run_pingpong ~prof ~seed:9 ());
        (match parse_json (String.trim (Prof.to_json prof)) with
        | J_obj [ ("profile", profile) ] -> (
            (match (obj_field profile "events", Prof.events prof) with
            | J_int n, m -> check Alcotest.int "events field" m n
            | _ -> Alcotest.fail "events field missing");
            match obj_field profile "sites" with
            | J_list sites ->
                check Alcotest.int "one object per site"
                  (List.length (Prof.sites prof))
                  (List.length sites)
            | _ -> Alcotest.fail "sites array missing")
        | _ -> Alcotest.fail "profile envelope");
        let lines =
          String.split_on_char '\n' (Prof.to_collapsed prof)
          |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "one stack per site"
          (List.length (Prof.sites prof))
          (List.length lines);
        List.iter
          (fun l ->
            match String.split_on_char ' ' l with
            | [ stack; weight ] ->
                check Alcotest.int "payment;process;kind frames" 3
                  (List.length (String.split_on_char ';' stack));
                check Alcotest.bool "positive weight" true
                  (int_of_string weight >= 1)
            | _ -> Alcotest.failf "bad collapsed line %S" l)
          lines);
  ]

(* ------------------------------ allocation ----------------------------- *)

let allocation_tests =
  [
    Alcotest.test_case "engine dispatch with profiling off stays in budget"
      `Quick (fun () ->
        (* warm up: first run pays one-time lazy initialisation *)
        ignore (run_pingpong ~rounds:100 ~crash:false ~seed:11 ());
        let e = mk_pingpong ~rounds:2000 ~crash:false ~seed:11 () in
        let before = Gc.minor_words () in
        ignore (Sim.Engine.run e);
        let delta = int_of_float (Gc.minor_words () -. before) in
        let per_event = delta / Sim.Engine.events_processed e in
        (* send + trace records are handler-attributable work; the budget
           bounds the whole loop so a profiling hook that started
           allocating on the off path would blow straight through it. *)
        if per_event > 128 then
          Alcotest.failf "unprofiled dispatch allocates %d words/event"
            per_event);
    Alcotest.test_case "hot path allocates zero words" `Quick (fun () ->
        let r = Metrics.create () in
        let c = Metrics.counter r "t_alloc_c" in
        let g = Metrics.gauge r "t_alloc_g" in
        let h = Metrics.histogram r "t_alloc_h" in
        (* warm up: first calls may trigger lazy init inside the runtime *)
        Metrics.inc c;
        Metrics.set g 1;
        Metrics.observe h 1;
        let before = Gc.minor_words () in
        for i = 1 to 10_000 do
          Metrics.inc c;
          Metrics.add c 2;
          Metrics.set g i;
          Metrics.gauge_add g (-1);
          Metrics.observe h i
        done;
        let after = Gc.minor_words () in
        let delta = int_of_float (after -. before) in
        (* 50k instrument operations; allow a few words of slack for the
           Gc.minor_words calls themselves. *)
        if delta > 16 then
          Alcotest.failf "hot path allocated %d words over 50k ops" delta);
  ]

let () =
  Alcotest.run "obsv"
    [
      ("counters", counter_tests);
      ("gauges", gauge_tests);
      ("histograms", histogram_tests);
      ("cardinality", cardinality_tests);
      ("prometheus", prometheus_tests);
      ("spans", span_tests);
      ("causal", causal_tests);
      ("blame", blame_tests);
      ("span-links", span_link_tests);
      ("profiler", prof_tests);
      ("allocation", allocation_tests);
    ]
