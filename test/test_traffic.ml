(* Tests for the traffic subsystem: workload grammar, validation, and the
   load scheduler's end-to-end guarantees (safety subset, contention
   accounting, fault classification, determinism). *)

open Traffic

let qcheck = QCheck_alcotest.to_alcotest

(* ----------------------------- workload ------------------------------- *)

let wl_gen =
  QCheck.Gen.(
    let arrival =
      oneof
        [
          map (fun g -> Workload.Poisson { gap = 1 + g }) (int_bound 200);
          map2
            (fun c t -> Workload.Closed { clients = 1 + c; think = t })
            (int_bound 20) (int_bound 100);
          map2
            (fun s e -> Workload.Burst { size = 1 + s; every = 1 + e })
            (int_bound 10) (int_bound 200);
          map2
            (fun hi lo ->
              Workload.Ramp { gap_hi = 1 + lo + hi; gap_lo = 1 + lo })
            (int_bound 100) (int_bound 100);
        ]
    in
    let proto =
      oneofl
        Workload.[ Sync; Naive; Htlc; Weak_single; Committee; Atomic ]
    in
    let mix =
      map
        (fun l ->
          (* dedup by protocol; grammar keys mixes by name *)
          List.fold_left
            (fun acc (p, w) ->
              if List.mem_assoc p acc then acc else (p, w) :: acc)
            [] l
          |> List.rev)
        (list_size (int_range 1 4) (pair proto (int_range 1 9)))
    in
    let policy = oneofl Workload.[ Reserve; Optimistic ] in
    let* payments = int_bound 500 in
    let* hops = int_bound 3 in
    let* value = int_bound 1000 in
    let* commission = int_bound 20 in
    let* arrival = arrival in
    let* mix = mix in
    let* policy = policy in
    (* of_string validates: optimistic is illegal with sync/naive in the mix *)
    let policy =
      if
        List.mem_assoc Workload.Sync mix
        || List.mem_assoc Workload.Naive mix
      then Workload.Reserve
      else policy
    in
    let* cap = int_bound 64 in
    let* liq = int_bound 8 in
    let+ pat = int_bound 5000 in
    {
      Workload.payments = 1 + payments;
      hops = 1 + hops;
      value = 100 + value;
      commission = 1 + commission;
      arrival;
      mix;
      policy;
      cap;
      liquidity = liq;
      patience = 1 + pat;
      stuck_after = 0;
      drift_ppm = 0;
      gst = None;
      topology = None;
      route = Routing.Router.Shortest;
      splits = 1;
      committee = None;
    })

let wl_arb =
  QCheck.make ~print:(fun w -> Workload.to_string w) wl_gen

let workload_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"grammar round-trips" ~count:500 wl_arb
         (fun w ->
           match Workload.of_string (Workload.to_string w) with
           | Ok w' -> w' = w
           | Error e -> QCheck.Test.fail_reportf "no parse: %s" e));
    Alcotest.test_case "default spec round-trips" `Quick (fun () ->
        let w = Workload.default ~payments:100 in
        match Workload.of_string (Workload.to_string w) with
        | Ok w' -> Alcotest.(check bool) "equal" true (w = w')
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "parse errors name the offending key" `Quick
      (fun () ->
        let base = Workload.to_string (Workload.default ~payments:10) in
        let broken key bad =
          (* swap one key's value for garbage inside an otherwise-valid
             spec; the error must say which key refused it *)
          String.split_on_char ' ' base
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | Some i when String.sub kv 0 i = key -> key ^ "=" ^ bad
                 | _ -> kv)
          |> String.concat " "
        in
        List.iter
          (fun (key, bad) ->
            match Workload.of_string (broken key bad) with
            | Ok _ -> Alcotest.failf "%s=%s should not parse" key bad
            | Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%S names %s" e key)
                  true
                  (String.length e >= String.length key
                  && String.sub e 0 (String.length key) = key))
          [
            ("arrival", "fibonacci:3");
            ("mix", "sync:0");
            ("policy", "yolo");
            ("payments", "many");
          ];
        match
          Workload.of_string (base ^ " topology=graph:9;nonsense route=warp")
        with
        | Ok _ -> Alcotest.fail "bad topology accepted"
        | Error e ->
            Alcotest.(check bool) "topology error is keyed" true
              (String.length e >= 8 && String.sub e 0 8 = "topology"));
    Alcotest.test_case "optimistic forbids sync and naive" `Quick (fun () ->
        let w =
          {
            (Workload.default ~payments:10) with
            policy = Workload.Optimistic;
            mix = [ (Workload.Sync, 1) ];
          }
        in
        (match Workload.validate w with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "optimistic+sync accepted");
        let w = { w with mix = [ (Workload.Naive, 1) ] } in
        match Workload.validate w with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "optimistic+naive accepted");
    Alcotest.test_case "naive requires zero drift" `Quick (fun () ->
        let w =
          {
            (Workload.default ~payments:10) with
            mix = [ (Workload.Naive, 1) ];
            drift_ppm = 500;
          }
        in
        (match Workload.validate w with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "naive with drift accepted");
        match Workload.validate { w with drift_ppm = 0 } with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "arrivals are monotone and deterministic" `Quick
      (fun () ->
        let w =
          {
            (Workload.default ~payments:200) with
            arrival = Workload.Ramp { gap_hi = 80; gap_lo = 5 };
          }
        in
        match (Workload.arrivals w ~seed:7, Workload.arrivals w ~seed:7) with
        | Some a, Some b ->
            Alcotest.(check bool) "same seed, same ticks" true (a = b);
            Array.iteri
              (fun i t ->
                if i > 0 && t < a.(i - 1) then
                  Alcotest.fail "arrival ticks not monotone")
              a
        | _ -> Alcotest.fail "open-loop arrivals expected");
    Alcotest.test_case "closed loop has no precomputed arrivals" `Quick
      (fun () ->
        let w =
          {
            (Workload.default ~payments:50) with
            arrival = Workload.Closed { clients = 4; think = 10 };
          }
        in
        match Workload.arrivals w ~seed:1 with
        | None -> ()
        | Some _ -> Alcotest.fail "closed loop should settle-drive arrivals");
    qcheck
      (QCheck.Test.make ~name:"assign_mix draws only from the mix" ~count:100
         wl_arb (fun w ->
           let assigned = Workload.assign_mix w ~seed:13 in
           Array.length assigned = w.Workload.payments
           && Array.for_all
                (fun p -> List.mem_assoc p w.Workload.mix)
                assigned));
  ]

(* ------------------------------- load ---------------------------------- *)

let spec s =
  match Workload.of_string s with
  | Ok w -> w
  | Error e -> Alcotest.fail ("bad spec: " ^ e)

let no_violations r =
  Alcotest.(check int) "violated" 0 r.Load.violated;
  Alcotest.(check (list string)) "violations" []
    (List.map
       (fun v -> Printf.sprintf "%d/%s: %s" v.Load.payment v.property v.detail)
       r.Load.violations);
  Alcotest.(check bool) "conservation" true r.Load.conservation_ok

let load_tests =
  [
    Alcotest.test_case "mixed open-loop run commits everything" `Slow
      (fun () ->
        let w =
          spec
            "payments=40 hops=2 value=1000 commission=10 arrival=poisson:30 \
             mix=sync:2,weak:2,htlc:1,atomic:1 policy=reserve cap=0 \
             liquidity=0 patience=2000 stuck=0 drift=10000 gst=none"
        in
        let r = Load.run ~workload:w ~seed:3 () in
        no_violations r;
        Alcotest.(check int) "committed" 40 r.Load.committed;
        Alcotest.(check int) "rejected" 0 r.Load.rejected;
        Alcotest.(check bool) "latency measured" true (r.Load.latency_p50 > 0);
        Alcotest.(check bool) "throughput measured" true
          (r.Load.throughput_cpm > 0);
        let assigned = List.fold_left (fun a (_, n, _) -> a + n) 0 r.Load.by_protocol in
        Alcotest.(check int) "by_protocol covers all payments" 40 assigned);
    Alcotest.test_case "committee payments multiplex too" `Slow (fun () ->
        let w =
          spec
            "payments=12 hops=2 value=1000 commission=10 arrival=burst:4:200 \
             mix=committee policy=reserve cap=0 liquidity=0 patience=3000 \
             stuck=0 drift=10000 gst=none"
        in
        let r = Load.run ~workload:w ~seed:5 () in
        no_violations r;
        Alcotest.(check int) "committed" 12 r.Load.committed);
    Alcotest.test_case "closed loop under scarce liquidity rejects, never \
                        violates" `Slow (fun () ->
        let w =
          spec
            "payments=60 hops=2 value=1000 commission=10 arrival=closed:6:5 \
             mix=weak policy=reserve cap=0 liquidity=3 patience=400 stuck=0 \
             drift=10000 gst=none"
        in
        let r = Load.run ~workload:w ~seed:11 () in
        no_violations r;
        Alcotest.(check bool) "liquidity bites: some payments rejected" true
          (r.Load.rejected > 0);
        Alcotest.(check bool) "the funded prefix still commits" true
          (r.Load.committed >= 3);
        Alcotest.(check int) "everything is accounted for"
          w.Workload.payments
          (r.Load.committed + r.Load.aborted + r.Load.rejected + r.Load.stuck
         + r.Load.violated));
    Alcotest.test_case "optimistic policy surfaces deposit races safely"
      `Slow (fun () ->
        let w =
          spec
            "payments=30 hops=2 value=1000 commission=10 arrival=burst:30:1 \
             mix=weak policy=optimistic cap=0 liquidity=5 patience=200 \
             stuck=0 drift=10000 gst=none"
        in
        let r = Load.run ~workload:w ~seed:2 () in
        no_violations r;
        Alcotest.(check bool) "losers hit Insufficient_funds in-protocol" true
          (r.Load.liquidity_rejections > 0));
    Alcotest.test_case "a crashed escrow leaves its payments stuck, never \
                        unsafe" `Slow (fun () ->
        (* host pid 4 is e1's contract process in a 2-hop block; crashing it
           mid-run wedges unsettled payments without violating safety *)
        let w =
          spec
            "payments=20 hops=2 value=1000 commission=10 arrival=poisson:50 \
             mix=weak policy=reserve cap=0 liquidity=0 patience=2000 \
             stuck=0 drift=10000 gst=none"
        in
        let plan =
          match Faults.Fault_plan.of_string "crash 4@1500" with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        let r = Load.run ~plan ~workload:w ~seed:9 () in
        no_violations r;
        Alcotest.(check bool) "some payments wedge" true (r.Load.stuck > 0);
        Alcotest.(check bool) "pre-crash payments commit" true
          (r.Load.committed > 0));
    Alcotest.test_case "a healed crash only delays" `Slow (fun () ->
        let w =
          spec
            "payments=15 hops=2 value=1000 commission=10 arrival=poisson:40 \
             mix=weak policy=reserve cap=0 liquidity=0 patience=2000 \
             stuck=0 drift=10000 gst=none"
        in
        let plan =
          match Faults.Fault_plan.of_string "crash 3@1000+2000" with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        let r = Load.run ~plan ~workload:w ~seed:9 () in
        no_violations r;
        Alcotest.(check int) "all commit after the heal" 15 r.Load.committed);
    Alcotest.test_case "reports are bit-identical across reruns" `Slow
      (fun () ->
        let w =
          spec
            "payments=25 hops=3 value=900 commission=15 arrival=ramp:60:10 \
             mix=sync:1,htlc:1,atomic:1 policy=reserve cap=8 liquidity=0 \
             patience=2500 stuck=0 drift=10000 gst=none"
        in
        (* Pin the one nondeterministic field (host wall time) so the
           whole report, timing block included, must match byte-for-byte. *)
        let norm r = Load.to_json { r with Load.wall_ns = 1_000_000_000 } in
        let a = norm (Load.run ~workload:w ~seed:21 ()) in
        let b = norm (Load.run ~workload:w ~seed:21 ()) in
        Alcotest.(check string) "same seed, same bytes" a b;
        let c = norm (Load.run ~workload:w ~seed:22 ()) in
        Alcotest.(check bool) "different seed, different run" true (a <> c));
    Alcotest.test_case "bounded trace never skews accounting" `Slow (fun () ->
        let w =
          spec
            "payments=30 hops=2 value=1000 commission=10 arrival=poisson:20 \
             mix=sync,weak policy=reserve cap=0 liquidity=0 patience=2000 \
             stuck=0 drift=10000 gst=none"
        in
        let tiny = Load.run ~trace_capacity:64 ~workload:w ~seed:4 () in
        let full = Load.run ~trace_capacity:0 ~workload:w ~seed:4 () in
        Alcotest.(check bool) "tiny ring evicted entries" true
          (tiny.Load.trace_dropped > 0);
        Alcotest.(check int) "unbounded run drops nothing" 0
          full.Load.trace_dropped;
        Alcotest.(check string) "identical reports modulo trace_dropped"
          (Load.to_json { tiny with Load.trace_dropped = 0; Load.wall_ns = 1 })
          (Load.to_json { full with Load.trace_dropped = 0; Load.wall_ns = 1 }));
    Alcotest.test_case "run rejects an invalid workload" `Quick (fun () ->
        let w =
          {
            (Workload.default ~payments:5) with
            policy = Workload.Optimistic;
            mix = [ (Workload.Sync, 1) ];
          }
        in
        match Load.run ~workload:w ~seed:1 () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "invalid workload accepted");
  ]

(* --------------------------- causal tracing ---------------------------- *)

module Causal = Obsv.Causal
module Blame = Obsv.Blame

let causal_spec =
  "payments=15 hops=2 value=1000 commission=10 arrival=poisson:40 mix=sync \
   policy=reserve cap=0 liquidity=0 patience=2000 stuck=0 drift=10000 \
   gst=none"

(* structural well-formedness of a recorded load graph: what the engine
   promises regardless of faults *)
let check_graph c =
  for id = 0 to Causal.node_count c - 1 do
    let preds = Causal.preds c id in
    List.iter
      (fun (_, src) ->
        if src < 0 || src >= id then
          Alcotest.failf "node %d has dangling pred %d" id src;
        if Causal.time_of c src > Causal.time_of c id then
          Alcotest.failf "edge %d->%d goes back in time" src id)
      preds;
    (* every deliver descends from exactly one send: down-drops and stale
       firings record no node, so no deliver can be orphaned or doubled *)
    match Causal.kind_of c id with
    | Causal.Deliver ->
        let msgs =
          List.filter (fun (k, _) -> k = Causal.Message) preds
        in
        (match msgs with
        | [ (_, src) ] ->
            if Causal.kind_of c src <> Causal.Send then
              Alcotest.failf "deliver %d descends from a non-send" id
        | _ ->
            Alcotest.failf "deliver %d has %d message preds" id
              (List.length msgs))
    | Causal.Timer_fire ->
        (match List.filter (fun (k, _) -> k = Causal.Timer) preds with
        | [ (_, src) ] ->
            if Causal.kind_of c src <> Causal.Timer_set then
              Alcotest.failf "fire %d descends from a non-arm" id
        | _ -> Alcotest.failf "fire %d lacks a timer pred" id)
    | _ -> ()
  done

let causal_tests =
  [
    Alcotest.test_case "blame totals are the commit latencies" `Slow (fun () ->
        let w = spec causal_spec in
        let c = Causal.create () in
        let r = Load.run ~causal:c ~workload:w ~seed:6 () in
        no_violations r;
        Alcotest.(check int) "every committed payment has a report"
          r.Load.committed
          (List.length r.Load.blame_reports);
        List.iter
          (fun (k, b) ->
            Alcotest.(check int) "report tagged with its payment" k
              b.Blame.trace;
            Alcotest.(check bool) "gaps sum exactly to the latency" true
              (Blame.check b);
            Alcotest.(check bool) "critical path is a real DAG path" true
              (Causal.path_valid c b.Blame.path);
            Alcotest.(check bool) "rooted at the arrival" true b.Blame.rooted)
          r.Load.blame_reports;
        let slowest =
          List.fold_left (fun m (_, b) -> max m b.Blame.total) 0
            r.Load.blame_reports
        in
        Alcotest.(check int) "slowest critical path = latency_max"
          r.Load.latency_max slowest;
        match r.Load.blame with
        | None -> Alcotest.fail "aggregate missing on a traced run"
        | Some a ->
            Alcotest.(check int) "aggregate covers every commit"
              r.Load.committed a.Blame.payments);
    Alcotest.test_case "tracing adds nodes, never events" `Slow (fun () ->
        let w = spec causal_spec in
        let plain = Load.run ~workload:w ~seed:6 () in
        let traced =
          Load.run ~causal:(Causal.create ()) ~workload:w ~seed:6 ()
        in
        Alcotest.(check string) "identical reports modulo blame"
          (Load.to_json { plain with Load.wall_ns = 1 })
          (Load.to_json { traced with Load.blame = None; Load.wall_ns = 1 }));
    Alcotest.test_case "chrome export is byte-identical across reruns" `Slow
      (fun () ->
        let w = spec causal_spec in
        let once () =
          let c = Causal.create () in
          ignore (Load.run ~causal:c ~workload:w ~seed:13 ());
          (Causal.to_chrome c, Causal.to_jsonl c)
        in
        let a_chrome, a_dag = once () and b_chrome, b_dag = once () in
        Alcotest.(check string) "chrome bytes" a_chrome b_chrome;
        Alcotest.(check string) "dag bytes" a_dag b_dag);
    qcheck
      (QCheck.Test.make ~name:"graphs stay well-formed under random faults"
         ~count:12
         QCheck.(int_bound 999)
         (fun seed ->
           let w = spec causal_spec in
           (* same derivation as the chaos soak: plan from the seed alone,
              addressed at the block's host pids (stride 5 at 2 hops) *)
           let prng = Sim.Rng.create ~seed:(seed + 7919) in
           let plan = Faults.Fault_plan.random prng ~nprocs:5 ~horizon:4000 in
           let c = Causal.create () in
           let r = Load.run ~causal:c ~plan ~workload:w ~seed () in
           check_graph c;
           List.iter
             (fun (_, b) ->
               if not (Blame.check b) then
                 QCheck.Test.fail_reportf "inexact blame under %s"
                   (Faults.Fault_plan.to_string plan);
               if not (Causal.path_valid c b.Blame.path) then
                 QCheck.Test.fail_reportf "broken path under %s"
                   (Faults.Fault_plan.to_string plan))
             r.Load.blame_reports;
           true));
    Alcotest.test_case "stuck payments export stuck spans, never running"
      `Slow (fun () ->
        let w =
          spec
            "payments=20 hops=2 value=1000 commission=10 arrival=poisson:50 \
             mix=weak policy=reserve cap=0 liquidity=0 patience=2000 stuck=0 \
             drift=10000 gst=none"
        in
        let plan =
          match Faults.Fault_plan.of_string "crash 4@1500" with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        let spans = Obsv.Span.default in
        Obsv.Span.clear spans;
        Obsv.Span.set_capture spans true;
        let r = Load.run ~plan ~workload:w ~seed:9 () in
        Obsv.Span.set_capture spans false;
        Alcotest.(check bool) "scenario wedges payments" true (r.Load.stuck > 0);
        let payment_spans =
          List.filter
            (fun s -> Obsv.Span.span_name s = "payment")
            (Obsv.Span.spans spans)
        in
        Alcotest.(check int) "a span per payment" w.Workload.payments
          (List.length payment_spans);
        let stuck_spans =
          List.filter
            (fun s -> Obsv.Span.span_status s = "stuck")
            payment_spans
        in
        Alcotest.(check int) "stuck spans match the count" r.Load.stuck
          (List.length stuck_spans);
        List.iter
          (fun s ->
            if Obsv.Span.span_status s = "running" then
              Alcotest.failf "span %d exported running" (Obsv.Span.span_id s);
            match Obsv.Span.span_end s with
            | Some e when e >= Obsv.Span.span_start s -> ()
            | _ -> Alcotest.failf "span %d open-ended" (Obsv.Span.span_id s))
          payment_spans;
        Obsv.Span.clear spans);
  ]

let () =
  Alcotest.run "traffic"
    [
      ("workload", workload_tests);
      ("load", load_tests);
      ("causal", causal_tests);
    ]
