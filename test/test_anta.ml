(* Tests for the ANTA formalism: the store, automaton construction, the
   well-formedness checker (property C's executable core) and the executor
   semantics (pool buffering, branch priority, deadline guards). *)

open Anta
module A = Automaton
module E = Sim.Engine

let check = Alcotest.check

let store_tests =
  [
    Alcotest.test_case "clock set/get" `Quick (fun () ->
        let s = Store.create () in
        Store.set_clock s "u" 42;
        check Alcotest.int "u" 42 (Store.clock s "u"));
    Alcotest.test_case "unset clock raises with the name" `Quick (fun () ->
        let s : int Store.t = Store.create () in
        Alcotest.check_raises "unset"
          (Invalid_argument "Anta.Store.clock: w unset") (fun () ->
            ignore (Store.clock s "w")));
    Alcotest.test_case "data set/get" `Quick (fun () ->
        let s = Store.create () in
        Store.set_data s "m" "payload";
        check Alcotest.string "m" "payload" (Store.data s "m"));
    Alcotest.test_case "var listings" `Quick (fun () ->
        let s = Store.create () in
        Store.set_clock s "b" 1;
        Store.set_clock s "a" 2;
        Store.set_data s "x" 0;
        check Alcotest.(list string) "clocks" [ "a"; "b" ] (Store.clock_vars s);
        check Alcotest.(list string) "datas" [ "x" ] (Store.data_vars s));
  ]

(* small automata used below; messages are ints *)
let receive_any ~from_ ~next = A.on_receive ~from_ ~accept:(fun _ -> true) ~next ()

let construction_tests =
  [
    Alcotest.test_case "duplicate state raises" `Quick (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Automaton A: duplicate state s") (fun () ->
            ignore
              (A.make ~name:"A" ~initial:"s"
                 ~nodes:[ ("s", A.final ()); ("s", A.final ()) ])));
    Alcotest.test_case "unknown initial raises" `Quick (fun () ->
        Alcotest.check_raises "init"
          (Invalid_argument "Automaton A: unknown initial state nope") (fun () ->
            ignore (A.make ~name:"A" ~initial:"nope" ~nodes:[ ("s", A.final ()) ])));
    Alcotest.test_case "states and node lookup" `Quick (fun () ->
        let a =
          A.make ~name:"A" ~initial:"s"
            ~nodes:[ ("s", A.input [ receive_any ~from_:0 ~next:"t" ]); ("t", A.final ()) ]
        in
        check Alcotest.(list string) "states" [ "s"; "t" ] (A.states a);
        check Alcotest.bool "node" true (A.node a "t" <> None);
        check Alcotest.bool "missing" true (A.node a "zz" = None));
  ]

let errs_of a = match A.check a with Ok () -> [] | Error es -> es

let check_tests =
  [
    Alcotest.test_case "well-formed automaton passes" `Quick (fun () ->
        let a =
          A.make ~name:"ok" ~initial:"s"
            ~nodes:
              [
                ("s", A.input [ receive_any ~from_:0 ~next:"t" ]);
                ("t", A.final ());
              ]
        in
        check Alcotest.bool "ok" true (A.check a = Ok ()));
    Alcotest.test_case "unknown target detected" `Quick (fun () ->
        let a =
          A.make ~name:"bad" ~initial:"s"
            ~nodes:[ ("s", A.input [ receive_any ~from_:0 ~next:"gone" ]) ]
        in
        check Alcotest.bool "err" true
          (List.exists
             (function A.Unknown_target _ -> true | _ -> false)
             (errs_of a)));
    Alcotest.test_case "empty input state detected" `Quick (fun () ->
        let a = A.make ~name:"bad" ~initial:"s" ~nodes:[ ("s", A.input []) ] in
        check Alcotest.bool "err" true
          (List.exists (function A.Empty_input "s" -> true | _ -> false) (errs_of a)));
    Alcotest.test_case "deadline on unassigned clock detected" `Quick (fun () ->
        let a =
          A.make ~name:"bad" ~initial:"s"
            ~nodes:
              [
                ("s", A.input [ A.on_deadline ~base:"u" ~offset:5 ~next:"t" () ]);
                ("t", A.final ());
              ]
        in
        check Alcotest.bool "err" true
          (List.exists
             (function A.Unassigned_clock { var = "u"; _ } -> true | _ -> false)
             (errs_of a)));
    Alcotest.test_case "clock assigned on every path passes" `Quick (fun () ->
        let a =
          A.make ~name:"ok" ~initial:"s"
            ~nodes:
              [
                ( "s",
                  A.input
                    [
                      A.on_receive ~from_:0 ~accept:(fun _ -> true)
                        ~save_now:[ "u" ] ~next:"w" ();
                    ] );
                ( "w",
                  A.input
                    [
                      A.on_deadline ~base:"u" ~offset:5 ~next:"t" ();
                      receive_any ~from_:0 ~next:"t";
                    ] );
                ("t", A.final ());
              ]
        in
        check Alcotest.bool "ok" true (A.check a = Ok ()));
    Alcotest.test_case "clock assigned on only one path fails" `Quick (fun () ->
        let a =
          A.make ~name:"bad" ~initial:"s"
            ~nodes:
              [
                ( "s",
                  A.input
                    [
                      A.on_receive ~from_:0 ~accept:(fun _ -> true)
                        ~save_now:[ "u" ] ~next:"w" ();
                      A.on_receive ~from_:1 ~accept:(fun _ -> true) ~next:"w" ();
                    ] );
                ("w", A.input [ A.on_deadline ~base:"u" ~offset:5 ~next:"t" () ]);
                ("t", A.final ());
              ]
        in
        check Alcotest.bool "err" true
          (List.exists
             (function A.Unassigned_clock _ -> true | _ -> false)
             (errs_of a)));
    Alcotest.test_case "unreachable state detected" `Quick (fun () ->
        let a =
          A.make ~name:"bad" ~initial:"s"
            ~nodes:[ ("s", A.final ()); ("island", A.final ()) ]
        in
        check Alcotest.bool "err" true
          (List.exists
             (function A.Unreachable_state "island" -> true | _ -> false)
             (errs_of a)));
    Alcotest.test_case "no reachable final detected" `Quick (fun () ->
        let a =
          A.make ~name:"bad" ~initial:"s"
            ~nodes:[ ("s", A.input [ receive_any ~from_:0 ~next:"s" ]) ]
        in
        check Alcotest.bool "err" true
          (List.exists (function A.No_final_reachable -> true | _ -> false) (errs_of a)));
    Alcotest.test_case "dot rendering mentions the states" `Quick (fun () ->
        let a =
          A.make ~name:"viz" ~initial:"s"
            ~nodes:
              [
                ("s", A.input [ receive_any ~from_:3 ~next:"t" ]);
                ("t", A.final ());
              ]
        in
        let dot = A.to_dot a in
        let mem sub =
          let n = String.length sub and m = String.length dot in
          let rec go i = i + n <= m && (String.sub dot i n = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "s" true (mem "\"s\"");
        check Alcotest.bool "r(3, msg)" true (mem "r(3, msg)"));
  ]

(* ------------------------- executor semantics ------------------------- *)

let mk_engine ?(seed = 1) () =
  let network =
    Sim.Network.create
      (Sim.Network.Synchronous { delta = 10 })
      (Sim.Rng.create ~seed:(seed + 1))
  in
  E.create ~tag_of:string_of_int ~network ~seed ()

(* process 0 runs [auto]; process 1 runs [driver] *)
let run_pair auto driver =
  let e = mk_engine () in
  let handlers, running = Executor.handlers auto () in
  ignore (E.add_process e handlers);
  ignore (E.add_process e driver);
  ignore (E.run e);
  (running, e)

let send_at_start msgs =
  {
    E.on_start = (fun ctx -> List.iter (fun m -> E.send ctx ~dst:0 m) msgs);
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let executor_tests =
  [
    Alcotest.test_case "receive transition fires and records visit" `Quick
      (fun () ->
        let auto =
          A.make ~name:"recv" ~initial:"s"
            ~nodes:
              [ ("s", A.input [ receive_any ~from_:1 ~next:"t" ]); ("t", A.final ()) ]
        in
        let running, _ = run_pair auto (send_at_start [ 5 ]) in
        check Alcotest.bool "done" true (Executor.terminated running);
        check Alcotest.(list string) "visited" [ "s"; "t" ]
          (Executor.visited running));
    Alcotest.test_case "early message waits in the pool" `Quick (fun () ->
        (* the automaton consumes msg A then msg B, but B is sent first *)
        let auto =
          A.make ~name:"pool" ~initial:"wait_a"
            ~nodes:
              [
                ( "wait_a",
                  A.input [ A.on_receive ~from_:1 ~accept:(( = ) 1) ~next:"wait_b" () ] );
                ( "wait_b",
                  A.input [ A.on_receive ~from_:1 ~accept:(( = ) 2) ~next:"t" () ] );
                ("t", A.final ());
              ]
        in
        (* with FIFO channels msg 2 arrives first *)
        let running, _ = run_pair auto (send_at_start [ 2; 1 ]) in
        check Alcotest.bool "done" true (Executor.terminated running);
        check Alcotest.int "pool drained" 0 (Executor.pending_count running));
    Alcotest.test_case "unmatched messages stay pending" `Quick (fun () ->
        let auto =
          A.make ~name:"picky" ~initial:"s"
            ~nodes:
              [
                ("s", A.input [ A.on_receive ~from_:1 ~accept:(( = ) 7) ~next:"t" () ]);
                ("t", A.final ());
              ]
        in
        let running, _ = run_pair auto (send_at_start [ 1; 2; 3 ]) in
        check Alcotest.bool "stuck" false (Executor.terminated running);
        check Alcotest.int "pending" 3 (Executor.pending_count running));
    Alcotest.test_case "textual branch order is the priority" `Quick (fun () ->
        let hit = ref "" in
        let auto =
          A.make ~name:"prio" ~initial:"s"
            ~nodes:
              [
                ( "s",
                  A.input
                    [
                      A.on_receive ~from_:1 ~accept:(fun v -> v > 0)
                        ~act:(fun _ _ _ -> hit := "first")
                        ~next:"t" ();
                      A.on_receive ~from_:1 ~accept:(fun v -> v > 0)
                        ~act:(fun _ _ _ -> hit := "second")
                        ~next:"t" ();
                    ] );
                ("t", A.final ());
              ]
        in
        let _ = run_pair auto (send_at_start [ 9 ]) in
        check Alcotest.string "first wins" "first" !hit);
    Alcotest.test_case "deadline fires when no message comes" `Quick (fun () ->
        let auto =
          A.make ~name:"to" ~initial:"s"
            ~nodes:
              [
                ( "s",
                  A.input
                    [
                      A.on_receive ~from_:1 ~accept:(fun _ -> true)
                        ~save_now:[ "u" ] ~next:"w" ();
                    ] );
                ( "w",
                  A.input
                    [
                      A.on_receive ~from_:1 ~accept:(( = ) 99) ~next:"got" ();
                      A.on_deadline ~base:"u" ~offset:50 ~next:"expired" ();
                    ] );
                ("got", A.final ());
                ("expired", A.final ());
              ]
        in
        let running, _ = run_pair auto (send_at_start [ 1 ]) in
        check Alcotest.bool "done" true (Executor.terminated running);
        check Alcotest.string "expired" "expired" (Executor.current_state running));
    Alcotest.test_case "message beats a later deadline" `Quick (fun () ->
        let driver =
          {
            E.on_start = (fun ctx -> E.send ctx ~dst:0 1);
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        let auto =
          A.make ~name:"race" ~initial:"s"
            ~nodes:
              [
                ( "s",
                  A.input
                    [
                      A.on_receive ~from_:1 ~accept:(( = ) 1) ~save_now:[ "u" ]
                        ~next:"w" ();
                    ] );
                ( "w",
                  A.input
                    [
                      A.on_receive ~from_:1 ~accept:(( = ) 2) ~next:"got" ();
                      A.on_deadline ~base:"u" ~offset:10_000 ~next:"expired" ();
                    ] );
                ("got", A.final ());
                ("expired", A.final ());
              ]
        in
        let e = mk_engine () in
        let handlers, running = Executor.handlers auto () in
        ignore (E.add_process e handlers);
        ignore
          (E.add_process e
             {
               driver with
               E.on_receive = (fun _ ~src:_ _ -> ());
               on_start =
                 (fun ctx ->
                   E.send ctx ~dst:0 1;
                   E.send ctx ~dst:0 2);
             });
        ignore (E.run e);
        check Alcotest.string "got" "got" (Executor.current_state running));
    Alcotest.test_case "output chains send then land on input" `Quick (fun () ->
        let got = ref [] in
        let auto =
          A.make ~name:"out" ~initial:"a"
            ~nodes:
              [
                ("a", A.output ~to_:1 ~message:(fun _ _ -> 10) ~next:"b" ());
                ("b", A.output ~to_:1 ~message:(fun _ _ -> 20) ~next:"t" ());
                ("t", A.final ());
              ]
        in
        let e = mk_engine () in
        let handlers, running = Executor.handlers auto () in
        ignore (E.add_process e handlers);
        ignore
          (E.add_process e
             {
               E.on_start = (fun _ -> ());
               on_receive = (fun _ ~src:_ m -> got := m :: !got);
               on_timer = (fun _ ~label:_ -> ());
             });
        ignore (E.run e);
        check Alcotest.(list int) "both" [ 10; 20 ] (List.rev !got);
        check Alcotest.bool "done" true (Executor.terminated running));
    Alcotest.test_case "save_msg makes the payload forwardable" `Quick (fun () ->
        let forwarded = ref 0 in
        let auto =
          A.make ~name:"fwd" ~initial:"s"
            ~nodes:
              [
                ( "s",
                  A.input
                    [
                      A.on_receive ~from_:1 ~accept:(fun _ -> true)
                        ~save_msg:"m" ~next:"send" ();
                    ] );
                ( "send",
                  A.output ~to_:1 ~message:(fun _ store -> Store.data store "m")
                    ~next:"t" () );
                ("t", A.final ());
              ]
        in
        let e = mk_engine () in
        let handlers, _ = Executor.handlers auto () in
        ignore (E.add_process e handlers);
        ignore
          (E.add_process e
             {
               E.on_start = (fun ctx -> E.send ctx ~dst:0 77);
               on_receive = (fun _ ~src:_ m -> forwarded := m);
               on_timer = (fun _ ~label:_ -> ());
             });
        ignore (E.run e);
        check Alcotest.int "echoed" 77 !forwarded);
    Alcotest.test_case "init_clocks seeds the store at start" `Quick (fun () ->
        let auto =
          A.make ~name:"init" ~initial:"s"
            ~nodes:
              [
                ("s", A.input [ A.on_deadline ~base:"birth" ~offset:5 ~next:"t" () ]);
                ("t", A.final ());
              ]
        in
        let e = mk_engine () in
        let handlers, running =
          Executor.handlers auto ~init_clocks:[ "birth" ] ()
        in
        ignore (E.add_process e handlers);
        ignore (E.run e);
        check Alcotest.bool "done" true (Executor.terminated running));
    Alcotest.test_case "on_final hook runs" `Quick (fun () ->
        let called = ref false in
        let auto = A.make ~name:"f" ~initial:"t" ~nodes:[ ("t", A.final ()) ] in
        let e = mk_engine () in
        let handlers, _ =
          Executor.handlers auto ~on_final:(fun _ _ -> called := true) ()
        in
        ignore (E.add_process e handlers);
        ignore (E.run e);
        check Alcotest.bool "hook" true !called);
  ]

(* ---------------------- trace conformance ----------------------------- *)

let conformance_tests =
  let open Protocols in
  let run ?(faults = []) ?(seed = 1) () =
    let cfg = { (Runner.default_config ~hops:3 ~seed) with faults } in
    Runner.run cfg Runner.Sync_timebound
  in
  [
    Alcotest.test_case "honest participants conform to Figure 2" `Quick
      (fun () ->
        let o = run () in
        let env = o.Runner.env in
        let topo = env.Env.topo in
        List.iter
          (fun pid ->
            let auto = Sync_protocol.automaton_for env pid in
            match
              Conformance.check auto ~pid ~tag_of:Msg.tag o.Runner.trace
            with
            | Ok () -> ()
            | Error d ->
                Alcotest.failf "pid %d deviates: %a" pid
                  Conformance.pp_deviation d)
          (Topology.customers topo @ Topology.escrows topo));
    Alcotest.test_case "honest runs conform across seeds" `Quick (fun () ->
        for seed = 1 to 10 do
          let o = run ~seed () in
          let env = o.Runner.env in
          List.iter
            (fun pid ->
              let auto = Sync_protocol.automaton_for env pid in
              check Alcotest.bool "conforms" true
                (Conformance.check auto ~pid ~tag_of:Msg.tag o.Runner.trace
                 = Ok ()))
            (Topology.escrows env.Env.topo)
        done);
    Alcotest.test_case "a thief escrow is flagged" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let e0 = Topology.escrow topo 0 in
        let o = run ~faults:[ (e0, Byzantine.Thief_escrow) ] () in
        let auto = Sync_protocol.automaton_for o.Runner.env e0 in
        check Alcotest.bool "deviates" true
          (Result.is_error
             (Conformance.check auto ~pid:e0 ~tag_of:Msg.tag o.Runner.trace)));
    Alcotest.test_case "a premature refunder is flagged" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let e1 = Topology.escrow topo 1 in
        let o = run ~faults:[ (e1, Byzantine.Premature_refund_escrow) ] () in
        let auto = Sync_protocol.automaton_for o.Runner.env e1 in
        check Alcotest.bool "deviates" true
          (Result.is_error
             (Conformance.check auto ~pid:e1 ~tag_of:Msg.tag o.Runner.trace)));
    Alcotest.test_case "an eager-chi Bob is flagged" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let bob = Topology.bob topo in
        let o = run ~faults:[ (bob, Byzantine.Eager_chi_bob) ] () in
        let auto = Sync_protocol.automaton_for o.Runner.env bob in
        check Alcotest.bool "deviates" true
          (Result.is_error
             (Conformance.check auto ~pid:bob ~tag_of:Msg.tag o.Runner.trace)));
    Alcotest.test_case "naive-protocol failures are conformant: the flaw is \
                        the derivation, not the behaviour" `Quick (fun () ->
        (* find a drift-violating naive run and verify every participant
           still followed its automaton to the letter *)
        let open Protocols in
        let max_delay : Sim.Network.adversary =
         fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds ->
          Some bounds.Sim.Network.hi
        in
        let found = ref false in
        let seed = ref 1 in
        while (not !found) && !seed <= 40 do
          let cfg =
            {
              (Runner.default_config ~hops:5 ~seed:!seed) with
              drift_ppm = 80_000;
              delta = 200;
              margin = 1;
              adversary = Some max_delay;
            }
          in
          let o = Runner.run cfg Runner.Naive_universal in
          let v = Props.Payment_props.view o in
          if
            not
              (Props.Verdict.all_hold
                 (Props.Payment_props.check_def1 ~time_bounded:false v))
          then begin
            found := true;
            let env = o.Runner.env in
            List.iter
              (fun pid ->
                let auto = Sync_protocol.automaton_for env pid in
                match
                  Conformance.check auto ~pid ~tag_of:Msg.tag o.Runner.trace
                with
                | Ok () -> ()
                | Error d ->
                    Alcotest.failf "pid %d wrongly flagged: %a" pid
                      Conformance.pp_deviation d)
              (Topology.customers env.Env.topo @ Topology.escrows env.Env.topo)
          end;
          incr seed
        done;
        check Alcotest.bool "found a violating run" true !found);
    Alcotest.test_case "other participants still conform around a Byzantine \
                        one" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let bob = Topology.bob topo in
        let o = run ~faults:[ (bob, Byzantine.Withhold_chi_bob) ] () in
        let env = o.Runner.env in
        List.iter
          (fun pid ->
            if pid <> bob then
              let auto = Sync_protocol.automaton_for env pid in
              match
                Conformance.check auto ~pid ~tag_of:Msg.tag o.Runner.trace
              with
              | Ok () -> ()
              | Error d ->
                  Alcotest.failf "pid %d wrongly flagged: %a" pid
                    Conformance.pp_deviation d)
          (Topology.customers topo @ Topology.escrows topo));
  ]

(* ----------------------- network-level checking ------------------------ *)

let network_tests =
  let mk_pair () =
    (* 0 sends to 1; 1 listens to 0 and answers *)
    let a0 =
      A.make ~name:"a0" ~initial:"send"
        ~nodes:
          [
            ("send", A.output ~to_:1 ~message:(fun _ _ -> 1) ~next:"wait" ());
            ("wait", A.input [ receive_any ~from_:1 ~next:"done" ]);
            ("done", A.final ());
          ]
    in
    let a1 =
      A.make ~name:"a1" ~initial:"wait"
        ~nodes:
          [
            ("wait", A.input [ receive_any ~from_:0 ~next:"reply" ]);
            ("reply", A.output ~to_:0 ~message:(fun _ _ -> 2) ~next:"done" ());
            ("done", A.final ());
          ]
    in
    (a0, a1)
  in
  [
    Alcotest.test_case "a well-wired pair passes" `Quick (fun () ->
        let a0, a1 = mk_pair () in
        check Alcotest.int "clean" 0
          (List.length (Network_check.check [ (0, a0); (1, a1) ])));
    Alcotest.test_case "dangling send detected" `Quick (fun () ->
        let a0, _ = mk_pair () in
        let issues = Network_check.check [ (0, a0) ] in
        check Alcotest.bool "dangling" true
          (List.exists
             (function
               | Network_check.Dangling_send { to_ = 1; _ } -> true
               | _ -> false)
             issues));
    Alcotest.test_case "deaf receiver detected" `Quick (fun () ->
        let a0, _ = mk_pair () in
        (* replace a1 with an automaton that never listens to 0 *)
        let deaf =
          A.make ~name:"deaf" ~initial:"wait"
            ~nodes:
              [
                ("wait", A.input [ receive_any ~from_:9 ~next:"done" ]);
                ("done", A.final ());
              ]
        in
        let issues = Network_check.check [ (0, a0); (1, deaf); (9, a0) ] in
        check Alcotest.bool "deaf" true
          (List.exists
             (function
               | Network_check.Deaf_receiver { from_ = 0; to_ = 1 } -> true
               | _ -> false)
             issues));
    Alcotest.test_case "unheard listener is a warning" `Quick (fun () ->
        (* a pure listener waits on 0, but 0 is absent *)
        let listener =
          A.make ~name:"listener" ~initial:"wait"
            ~nodes:
              [
                ("wait", A.input [ receive_any ~from_:0 ~next:"done" ]);
                ("done", A.final ());
              ]
        in
        let issues = Network_check.check [ (1, listener) ] in
        check Alcotest.bool "warned" true
          (List.exists
             (function
               | Network_check.Unheard_listener { from_ = 0; _ } -> true
               | _ -> false)
             issues);
        check Alcotest.int "but no errors"
          0
          (List.length (Network_check.errors issues)));
    Alcotest.test_case "the Figure 2 network is clean for every size" `Quick
      (fun () ->
        let open Protocols in
        List.iter
          (fun hops ->
            let topo = Topology.create ~hops in
            let params = Params.derive (Params.default_input ~hops) in
            let env = Env.make ~topo ~params () in
            let network =
              List.map
                (fun pid -> (pid, Sync_protocol.automaton_for env pid))
                (Topology.customers topo @ Topology.escrows topo)
            in
            let issues = Network_check.check network in
            check Alcotest.int
              (Printf.sprintf "hops %d" hops)
              0 (List.length issues))
          [ 1; 2; 3; 8 ]);
  ]

let () =
  Alcotest.run "anta"
    [
      ("store", store_tests);
      ("construction", construction_tests);
      ("check", check_tests);
      ("executor", executor_tests);
      ("conformance", conformance_tests);
      ("network", network_tests);
    ]
