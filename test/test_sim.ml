(* Tests for the simulation substrate: time arithmetic, RNG, event queue,
   drifting clocks, statistics, network models, and the engine itself. *)

open Sim

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------ Sim_time ------------------------------ *)

let time_tests =
  [
    Alcotest.test_case "add basic" `Quick (fun () ->
        check Alcotest.int "3+4" 7 (Sim_time.add 3 4));
    Alcotest.test_case "add saturates at infinity" `Quick (fun () ->
        check Alcotest.bool "inf" true
          (Sim_time.is_infinite (Sim_time.add Sim_time.infinity 1));
        check Alcotest.bool "overflow" true
          (Sim_time.is_infinite (Sim_time.add max_int (max_int / 2))));
    Alcotest.test_case "sub clamps at zero" `Quick (fun () ->
        check Alcotest.int "3-7" 0 (Sim_time.sub 3 7);
        check Alcotest.int "7-3" 4 (Sim_time.sub 7 3));
    Alcotest.test_case "sub of infinity stays infinite" `Quick (fun () ->
        check Alcotest.bool "inf" true
          (Sim_time.is_infinite (Sim_time.sub Sim_time.infinity 5)));
    Alcotest.test_case "scale exact" `Quick (fun () ->
        check Alcotest.int "10*3/2" 15 (Sim_time.scale 10 ~num:3 ~den:2));
    Alcotest.test_case "scale rounds up" `Quick (fun () ->
        check Alcotest.int "ceil(10/3)" 4 (Sim_time.scale 10 ~num:1 ~den:3);
        check Alcotest.int "ceil(7*3/2)" 11 (Sim_time.scale 7 ~num:3 ~den:2));
    Alcotest.test_case "scale by zero" `Quick (fun () ->
        check Alcotest.int "0" 0 (Sim_time.scale 1000 ~num:0 ~den:7));
    Alcotest.test_case "scale of infinity" `Quick (fun () ->
        check Alcotest.bool "inf" true
          (Sim_time.is_infinite (Sim_time.scale Sim_time.infinity ~num:1 ~den:2)));
    Alcotest.test_case "scale rejects bad den" `Quick (fun () ->
        Alcotest.check_raises "den 0" (Invalid_argument "Sim_time.scale: den must be positive")
          (fun () -> ignore (Sim_time.scale 1 ~num:1 ~den:0)));
    Alcotest.test_case "of_int rejects negatives" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Sim_time.of_int: negative")
          (fun () -> ignore (Sim_time.of_int (-1))));
    Alcotest.test_case "pp" `Quick (fun () ->
        check Alcotest.string "42" "42" (Sim_time.to_string 42);
        check Alcotest.string "inf" "inf" (Sim_time.to_string Sim_time.infinity));
    qcheck
      (QCheck.Test.make ~name:"scale never under-approximates"
         QCheck.(triple (int_bound 1_000_000) (int_bound 1000) (int_range 1 1000))
         (fun (t, num, den) ->
           (* ceil semantics: scale t * den >= t * num *)
           Sim_time.scale t ~num ~den * den >= t * num));
    qcheck
      (QCheck.Test.make ~name:"scale tight: subtracting one breaks the bound"
         QCheck.(pair (int_range 1 1_000_000) (int_range 1 1000))
         (fun (t, den) ->
           let s = Sim_time.scale t ~num:1 ~den in
           (s - 1) * den < t));
  ]

(* -------------------------------- Rng --------------------------------- *)

let rng_tests =
  [
    Alcotest.test_case "same seed same stream" `Quick (fun () ->
        let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
        for _ = 1 to 100 do
          check Alcotest.int64 "same" (Rng.next_int64 a) (Rng.next_int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
        check Alcotest.bool "differ" true (Rng.next_int64 a <> Rng.next_int64 b));
    Alcotest.test_case "copy replays" `Quick (fun () ->
        let a = Rng.create ~seed:7 in
        ignore (Rng.next_int64 a);
        let b = Rng.copy a in
        check Alcotest.int64 "replay" (Rng.next_int64 a) (Rng.next_int64 b));
    Alcotest.test_case "split independent of parent continuation" `Quick
      (fun () ->
        let a = Rng.create ~seed:9 in
        let child = Rng.split a in
        let c1 = Rng.next_int64 child in
        (* child's future must not depend on further parent draws *)
        let a2 = Rng.create ~seed:9 in
        let child2 = Rng.split a2 in
        ignore (Rng.next_int64 a2);
        check Alcotest.int64 "stable" c1 (Rng.next_int64 child2));
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        Alcotest.check_raises "bound 0"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int (Rng.create ~seed:1) 0)));
    Alcotest.test_case "shuffle preserves elements" `Quick (fun () ->
        let a = Array.init 100 Fun.id in
        Rng.shuffle (Rng.create ~seed:5) a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted);
    qcheck
      (QCheck.Test.make ~name:"int within bound"
         QCheck.(pair small_int (int_range 1 10_000))
         (fun (seed, bound) ->
           let g = Rng.create ~seed in
           let v = Rng.int g bound in
           v >= 0 && v < bound));
    qcheck
      (QCheck.Test.make ~name:"int_in inclusive range"
         QCheck.(triple small_int (int_range (-500) 500) (int_bound 1000))
         (fun (seed, lo, extra) ->
           let hi = lo + extra in
           let g = Rng.create ~seed in
           let v = Rng.int_in g ~lo ~hi in
           v >= lo && v <= hi));
    qcheck
      (QCheck.Test.make ~name:"exponential positive and capped"
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, mean) ->
           let g = Rng.create ~seed in
           let v = Rng.exponential_ticks g ~mean in
           v >= 1 && v <= 50 * mean));
  ]

(* ----------------------------- Event_queue ---------------------------- *)

let queue_tests =
  [
    Alcotest.test_case "pops in time order" `Quick (fun () ->
        let q = Event_queue.create () in
        ignore (Event_queue.push q ~time:30 "c");
        ignore (Event_queue.push q ~time:10 "a");
        ignore (Event_queue.push q ~time:20 "b");
        check
          Alcotest.(list (pair int string))
          "order"
          [ (10, "a"); (20, "b"); (30, "c") ]
          (Event_queue.drain q));
    Alcotest.test_case "insertion order breaks ties" `Quick (fun () ->
        let q = Event_queue.create () in
        ignore (Event_queue.push q ~time:5 "first");
        ignore (Event_queue.push q ~time:5 "second");
        ignore (Event_queue.push q ~time:5 "third");
        check
          Alcotest.(list string)
          "fifo" [ "first"; "second"; "third" ]
          (List.map snd (Event_queue.drain q)));
    Alcotest.test_case "cancel hides an event" `Quick (fun () ->
        let q = Event_queue.create () in
        let tok = Event_queue.push q ~time:1 "gone" in
        ignore (Event_queue.push q ~time:2 "kept");
        check Alcotest.bool "cancelled" true (Event_queue.cancel q tok);
        check
          Alcotest.(list string)
          "remaining" [ "kept" ]
          (List.map snd (Event_queue.drain q)));
    Alcotest.test_case "cancel after pop returns false" `Quick (fun () ->
        let q = Event_queue.create () in
        let tok = Event_queue.push q ~time:1 () in
        ignore (Event_queue.pop q);
        check Alcotest.bool "late cancel" false (Event_queue.cancel q tok));
    Alcotest.test_case "peek skips cancelled" `Quick (fun () ->
        let q = Event_queue.create () in
        let tok = Event_queue.push q ~time:1 "x" in
        ignore (Event_queue.push q ~time:9 "y");
        ignore (Event_queue.cancel q tok);
        check Alcotest.(option int) "peek" (Some 9) (Event_queue.peek_time q));
    Alcotest.test_case "length counts live only" `Quick (fun () ->
        let q = Event_queue.create () in
        let tok = Event_queue.push q ~time:1 () in
        ignore (Event_queue.push q ~time:2 ());
        ignore (Event_queue.cancel q tok);
        check Alcotest.int "len" 1 (Event_queue.length q));
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let q = Event_queue.create () in
        ignore (Event_queue.push q ~time:1 ());
        Event_queue.clear q;
        check Alcotest.bool "empty" true (Event_queue.is_empty q));
    qcheck
      (QCheck.Test.make ~name:"drain equals stable sort"
         QCheck.(list (int_bound 1000))
         (fun times ->
           let q = Event_queue.create () in
           List.iteri (fun i t -> ignore (Event_queue.push q ~time:t i)) times;
           let drained = Event_queue.drain q in
           let expected =
             List.mapi (fun i t -> (t, i)) times
             |> List.stable_sort (fun (t1, i1) (t2, i2) ->
                    if t1 <> t2 then compare t1 t2 else compare i1 i2)
           in
           drained = expected));
    Alcotest.test_case "double cancel returns false" `Quick (fun () ->
        let q = Event_queue.create () in
        let tok = Event_queue.push q ~time:1 () in
        check Alcotest.bool "first" true (Event_queue.cancel q tok);
        check Alcotest.bool "second" false (Event_queue.cancel q tok));
    Alcotest.test_case "cancel of a foreign token is a no-op" `Quick (fun () ->
        let q = Event_queue.create () in
        ignore (Event_queue.push q ~time:1 "keep");
        check Alcotest.bool "unknown token" false (Event_queue.cancel q 4242);
        check Alcotest.int "nothing lost" 1 (Event_queue.length q));
    qcheck
      (QCheck.Test.make ~name:"cancel agrees with liveness at any occupancy"
         QCheck.(list (pair (int_bound 100) bool))
         (fun plan ->
           (* push everything, cancel the flagged ones, then verify pops
              return exactly the survivors and late cancels return false *)
           let q = Event_queue.create () in
           let toks =
             List.map (fun (t, c) -> (Event_queue.push q ~time:t (), c)) plan
           in
           let cancelled =
             List.filter_map
               (fun (tok, c) ->
                 if c then begin
                   ignore (Event_queue.cancel q tok);
                   Some tok
                 end
                 else None)
               toks
           in
           let live = List.length plan - List.length cancelled in
           List.length (Event_queue.drain q) = live
           && List.for_all (fun tok -> not (Event_queue.cancel q tok)) cancelled));
  ]

(* -------------------------------- Clock ------------------------------- *)

let clock_tests =
  [
    Alcotest.test_case "perfect clock is identity" `Quick (fun () ->
        check Alcotest.int "read" 12345 (Clock.local_of_global Clock.perfect 12345);
        check Alcotest.int "inverse" 12345 (Clock.global_of_local Clock.perfect 12345));
    Alcotest.test_case "fast clock runs ahead" `Quick (fun () ->
        let c = Clock.create ~num:11 ~den:10 () in
        check Alcotest.int "110" 110 (Clock.local_of_global c 100));
    Alcotest.test_case "slow clock lags" `Quick (fun () ->
        let c = Clock.create ~num:9 ~den:10 () in
        check Alcotest.int "90" 90 (Clock.local_of_global c 100));
    Alcotest.test_case "offset applies" `Quick (fun () ->
        let c = Clock.create ~l0:500 ~num:1 ~den:1 () in
        check Alcotest.int "shifted" 600 (Clock.local_of_global c 100));
    Alcotest.test_case "envelope check" `Quick (fun () ->
        let c = Clock.create ~num:1_005_000 ~den:1_000_000 () in
        check Alcotest.bool "within 1%" true (Clock.envelope_ok c ~drift_ppm:10_000);
        check Alcotest.bool "outside 0.1%" false (Clock.envelope_ok c ~drift_ppm:1_000));
    Alcotest.test_case "create rejects bad rate" `Quick (fun () ->
        Alcotest.check_raises "zero num"
          (Invalid_argument "Clock.create: rate must be positive") (fun () ->
            ignore (Clock.create ~num:0 ~den:1 ())));
    qcheck
      (QCheck.Test.make ~name:"local_of_global monotone"
         QCheck.(
           quad (int_range 900_000 1_100_000) (int_bound 100_000)
             (int_bound 100_000) (int_bound 10_000))
         (fun (num, g1, g2, l0) ->
           let c = Clock.create ~l0 ~num ~den:1_000_000 () in
           let lo = min g1 g2 and hi = max g1 g2 in
           Clock.local_of_global c lo <= Clock.local_of_global c hi));
    qcheck
      (QCheck.Test.make ~name:"global_of_local is the exact inverse bound"
         QCheck.(pair (int_range 900_000 1_100_000) (int_bound 1_000_000))
         (fun (num, deadline) ->
           let c = Clock.create ~num ~den:1_000_000 () in
           let g = Clock.global_of_local c deadline in
           (* minimal global time whose local reading reaches the deadline *)
           Clock.local_of_global c g >= deadline
           && (g = 0 || Clock.local_of_global c (g - 1) < deadline)));
    qcheck
      (QCheck.Test.make ~name:"random clocks stay in the drift envelope"
         QCheck.(pair small_int (int_range 0 200_000))
         (fun (seed, drift_ppm) ->
           let rng = Rng.create ~seed in
           Clock.envelope_ok (Clock.random rng ~drift_ppm) ~drift_ppm));
  ]

(* -------------------------------- Stats ------------------------------- *)

let stats_tests =
  [
    Alcotest.test_case "summary of a known sample" `Quick (fun () ->
        let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
        check (Alcotest.float 1e-9) "mean" 3.0 s.Stats.mean;
        check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
        check (Alcotest.float 1e-9) "max" 5.0 s.Stats.max;
        check (Alcotest.float 1e-9) "median" 3.0 s.Stats.p50);
    Alcotest.test_case "stddev of constant sample is 0" `Quick (fun () ->
        check (Alcotest.float 1e-9) "sd" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]));
    Alcotest.test_case "percentile interpolates" `Quick (fun () ->
        check (Alcotest.float 1e-9) "p50" 1.5
          (Stats.percentile [| 1.0; 2.0 |] 50.0));
    Alcotest.test_case "summarize rejects empty" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Stats.summarize: empty sample") (fun () ->
            ignore (Stats.summarize [])));
    Alcotest.test_case "rate" `Quick (fun () ->
        check (Alcotest.float 1e-9) "50%" 50.0 (Stats.rate ~hits:1 ~total:2);
        check (Alcotest.float 1e-9) "empty" 0.0 (Stats.rate ~hits:0 ~total:0));
    Alcotest.test_case "wilson interval brackets the point estimate" `Quick
      (fun () ->
        let lo, hi = Stats.wilson ~hits:32 ~total:400 in
        let p = Stats.rate ~hits:32 ~total:400 in
        check Alcotest.bool "lo < p < hi" true (lo < p && p < hi);
        check Alcotest.bool "ordered" true (lo >= 0.0 && hi <= 100.0));
    Alcotest.test_case "wilson at the extremes" `Quick (fun () ->
        let lo0, _ = Stats.wilson ~hits:0 ~total:100 in
        check (Alcotest.float 1e-9) "zero hits lo" 0.0 lo0;
        let _, hi1 = Stats.wilson ~hits:100 ~total:100 in
        check (Alcotest.float 1e-6) "all hits hi" 100.0 hi1;
        check Alcotest.bool "empty sample" true
          (Stats.wilson ~hits:0 ~total:0 = (0.0, 100.0)));
    Alcotest.test_case "wilson narrows with sample size" `Quick (fun () ->
        let lo1, hi1 = Stats.wilson ~hits:5 ~total:20 in
        let lo2, hi2 = Stats.wilson ~hits:100 ~total:400 in
        check Alcotest.bool "narrower" true (hi2 -. lo2 < hi1 -. lo1));
  ]

(* ------------------------------- Network ------------------------------ *)

let network_tests =
  [
    Alcotest.test_case "sync bounds" `Quick (fun () ->
        let b =
          Network.bounds_at (Network.Synchronous { delta = 50 }) ~send_time:123
        in
        check Alcotest.int "lo" 1 b.Network.lo;
        check Alcotest.int "hi" 50 b.Network.hi);
    Alcotest.test_case "psync bounds before GST stretch to GST+delta" `Quick
      (fun () ->
        let model = Network.Partially_synchronous { gst = 1000; delta = 50 } in
        let b = Network.bounds_at model ~send_time:200 in
        check Alcotest.int "hi pre-GST" 850 b.Network.hi;
        let b2 = Network.bounds_at model ~send_time:1500 in
        check Alcotest.int "hi post-GST" 50 b2.Network.hi);
    Alcotest.test_case "adversary is clamped to the model" `Quick (fun () ->
        let adversary ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds:_ =
          Some 1_000_000
        in
        let t =
          Network.create ~adversary ~fifo:false
            (Network.Synchronous { delta = 10 })
            (Rng.create ~seed:1)
        in
        let at = Network.delivery_time t ~send_time:100 ~src:0 ~dst:1 ~tag:"x" in
        check Alcotest.bool "within delta" true (at <= 110 && at >= 101));
    Alcotest.test_case "fifo prevents overtaking" `Quick (fun () ->
        let slow_then_fast =
          let n = ref 0 in
          fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds:(_ : Network.bounds) ->
            incr n;
            if !n = 1 then Some 100 else Some 1
        in
        let t =
          Network.create ~adversary:slow_then_fast
            (Network.Synchronous { delta = 100 })
            (Rng.create ~seed:1)
        in
        let a1 = Network.delivery_time t ~send_time:0 ~src:0 ~dst:1 ~tag:"m" in
        let a2 = Network.delivery_time t ~send_time:1 ~src:0 ~dst:1 ~tag:"m" in
        check Alcotest.bool "no overtake" true (a2 >= a1));
    Alcotest.test_case "distinct channels are independent" `Quick (fun () ->
        let slow_then_fast =
          let n = ref 0 in
          fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds:(_ : Network.bounds) ->
            incr n;
            if !n = 1 then Some 100 else Some 1
        in
        let t =
          Network.create ~adversary:slow_then_fast
            (Network.Synchronous { delta = 100 })
            (Rng.create ~seed:1)
        in
        let _ = Network.delivery_time t ~send_time:0 ~src:0 ~dst:1 ~tag:"m" in
        let a2 = Network.delivery_time t ~send_time:1 ~src:0 ~dst:2 ~tag:"m" in
        check Alcotest.int "fast on other channel" 2 a2);
    qcheck
      (QCheck.Test.make ~name:"sampled delays within model bounds"
         QCheck.(pair small_int (int_bound 10_000))
         (fun (seed, send_time) ->
           let model = Network.Partially_synchronous { gst = 5_000; delta = 77 } in
           let t = Network.create ~fifo:false model (Rng.create ~seed) in
           let at =
             Network.delivery_time t ~send_time ~src:0 ~dst:1 ~tag:"q"
           in
           let b = Network.bounds_at model ~send_time in
           let d = at - send_time in
           d >= b.Network.lo && d <= b.Network.hi));
    qcheck
      (QCheck.Test.make
         ~name:"fifo keeps per-link deliveries monotone under any fault plan"
         ~count:100 QCheck.small_int
         (fun seed ->
           (* drive the network exactly as the engine does — fate first,
              then one delivery_time per surviving copy — under a random
              fault plan (drops, duplicates, corruption, partitions) and a
              randomly meddling adversary, and require that on every
              (src, dst) link delivery times never go backwards *)
           let prng = Rng.create ~seed:(seed + 1) in
           let plan = Faults.Fault_plan.random prng ~nprocs:4 ~horizon:1_000 in
           let inj =
             Faults.Injector.create
               ~metrics:(Obsv.Metrics.create ())
               ~plan ~seed ()
           in
           let arng = Rng.create ~seed:(seed + 2) in
           let adversary ~send_time:_ ~src:_ ~dst:_ ~tag:_
               ~bounds:(b : Network.bounds) =
             if Rng.bool arng then
               Some (Rng.int_in arng ~lo:b.Network.lo ~hi:b.Network.hi)
             else None
           in
           let t =
             Network.create ~adversary ~tamper:(Faults.Injector.tamper inj)
               ~fifo:true
               ~metrics:(Obsv.Metrics.create ())
               (Network.Synchronous { delta = 50 })
               (Rng.create ~seed:(seed + 3))
           in
           let last = Hashtbl.create 16 in
           let ok = ref true in
           for i = 0 to 199 do
             let send_time = i * 3 in
             let src = Rng.int arng 4 and dst = Rng.int arng 4 in
             let copies = Network.fate t ~send_time ~src ~dst ~tag:"m" in
             List.iter
               (fun (_ : Network.copy) ->
                 let at =
                   Network.delivery_time t ~send_time ~src ~dst ~tag:"m"
                 in
                 (match Hashtbl.find_opt last (src, dst) with
                 | Some prev when at < prev -> ok := false
                 | _ -> ());
                 Hashtbl.replace last (src, dst) at)
               copies
           done;
           !ok));
  ]

(* -------------------------------- Engine ------------------------------ *)

type msg = Ping | Pong | Data of int

let tag_of = function Ping -> "ping" | Pong -> "pong" | Data _ -> "data"

let mk_engine ?(delta = 10) ?(sigma = 0) ?(seed = 1) () =
  let network =
    Network.create (Network.Synchronous { delta }) (Rng.create ~seed:(seed + 1))
  in
  Engine.create ~tag_of ~network ~sigma ~seed ()

let engine_tests =
  [
    Alcotest.test_case "message delivery triggers handler" `Quick (fun () ->
        let e = mk_engine () in
        let got = ref None in
        let p0 =
          {
            Engine.on_start = (fun ctx -> Engine.send ctx ~dst:1 (Data 42));
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        let p1 =
          {
            Engine.on_start = (fun _ -> ());
            on_receive =
              (fun _ ~src m ->
                match m with Data v -> got := Some (src, v) | _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        ignore (Engine.add_process e p0);
        ignore (Engine.add_process e p1);
        check Alcotest.bool "quiescent" true (Engine.run e = Engine.Quiescent);
        check Alcotest.(option (pair int int)) "got" (Some (0, 42)) !got);
    Alcotest.test_case "timer fires at the drifted local deadline" `Quick
      (fun () ->
        let e = mk_engine () in
        let fired_at = ref (-1) in
        let clock = Clock.create ~num:2 ~den:1 () in
        let p =
          {
            Engine.on_start =
              (fun ctx -> Engine.set_timer ctx ~deadline:100 ~label:"t");
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer =
              (fun ctx ~label:_ -> fired_at := Engine.local_now ctx);
          }
        in
        ignore (Engine.add_process e ~clock p);
        ignore (Engine.run e);
        (* rate 2: local 100 reached at global 50; local reading >= 100 *)
        check Alcotest.bool "fired" true (!fired_at >= 100 && !fired_at <= 101));
    Alcotest.test_case "cancel_timer suppresses firing" `Quick (fun () ->
        let e = mk_engine () in
        let fired = ref false in
        let p =
          {
            Engine.on_start =
              (fun ctx ->
                Engine.set_timer_after ctx ~after:10 ~label:"t";
                Engine.cancel_timer ctx ~label:"t");
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> fired := true);
          }
        in
        ignore (Engine.add_process e p);
        ignore (Engine.run e);
        check Alcotest.bool "not fired" false !fired);
    Alcotest.test_case "re-arming replaces the previous deadline" `Quick
      (fun () ->
        let e = mk_engine () in
        let count = ref 0 in
        let p =
          {
            Engine.on_start =
              (fun ctx ->
                Engine.set_timer_after ctx ~after:10 ~label:"t";
                Engine.set_timer_after ctx ~after:20 ~label:"t");
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> incr count);
          }
        in
        ignore (Engine.add_process e p);
        ignore (Engine.run e);
        check Alcotest.int "fires once" 1 !count);
    Alcotest.test_case "halted process ignores deliveries" `Quick (fun () ->
        let e = mk_engine () in
        let received = ref 0 in
        let sender =
          {
            Engine.on_start =
              (fun ctx ->
                Engine.send ctx ~dst:1 Ping;
                Engine.send ctx ~dst:1 Ping);
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        let quitter =
          {
            Engine.on_start = (fun _ -> ());
            on_receive =
              (fun ctx ~src:_ _ ->
                incr received;
                Engine.halt ctx);
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        ignore (Engine.add_process e sender);
        ignore (Engine.add_process e quitter);
        ignore (Engine.run e);
        check Alcotest.int "one delivery" 1 !received);
    Alcotest.test_case "identical seeds give identical traces" `Quick
      (fun () ->
        let build () =
          let e = mk_engine ~seed:33 () in
          let p0 =
            {
              Engine.on_start =
                (fun ctx ->
                  for i = 1 to 10 do
                    Engine.send ctx ~dst:1 (Data i)
                  done);
              on_receive = (fun _ ~src:_ _ -> ());
              on_timer = (fun _ ~label:_ -> ());
            }
          in
          let p1 =
            {
              Engine.on_start = (fun _ -> ());
              on_receive =
                (fun ctx ~src _ -> Engine.send ctx ~dst:src Pong);
              on_timer = (fun _ ~label:_ -> ());
            }
          in
          ignore (Engine.add_process e p0);
          ignore (Engine.add_process e p1);
          ignore (Engine.run e);
          List.map
            (function
              | Trace.Delivered { t; src; dst; tag; _ } ->
                  Printf.sprintf "%d:%d->%d:%s" t src dst tag
              | _ -> "")
            (Trace.to_list (Engine.trace e))
        in
        check Alcotest.(list string) "equal traces" (build ()) (build ()));
    Alcotest.test_case "horizon stops the run" `Quick (fun () ->
        let e = mk_engine () in
        let p =
          {
            Engine.on_start =
              (fun ctx -> Engine.set_timer_after ctx ~after:1_000 ~label:"t");
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer =
              (fun ctx ~label:_ ->
                Engine.set_timer_after ctx ~after:1_000 ~label:"t");
          }
        in
        ignore (Engine.add_process e p);
        check Alcotest.bool "horizon" true
          (Engine.run ~horizon:5_000 e = Engine.Horizon_reached));
    Alcotest.test_case "event limit stops the run" `Quick (fun () ->
        let e = mk_engine () in
        let p0 =
          {
            Engine.on_start = (fun ctx -> Engine.send ctx ~dst:1 Ping);
            on_receive = (fun ctx ~src _ -> Engine.send ctx ~dst:src Pong);
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        let p1 =
          {
            Engine.on_start = (fun _ -> ());
            on_receive = (fun ctx ~src _ -> Engine.send ctx ~dst:src Ping);
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        ignore (Engine.add_process e p0);
        ignore (Engine.add_process e p1);
        check Alcotest.bool "limit" true
          (Engine.run ~max_events:50 e = Engine.Event_limit));
    Alcotest.test_case "observations land in the trace" `Quick (fun () ->
        let e = mk_engine () in
        let p =
          {
            Engine.on_start = (fun ctx -> Engine.observe ctx Ping);
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        ignore (Engine.add_process e p);
        ignore (Engine.run e);
        check Alcotest.int "one obs" 1
          (List.length (Trace.observations (Engine.trace e))));
    Alcotest.test_case "sigma delays departures" `Quick (fun () ->
        let e = mk_engine ~sigma:5 ~delta:1 () in
        let p0 =
          {
            Engine.on_start = (fun ctx -> Engine.send ctx ~dst:1 Ping);
            on_receive = (fun _ ~src:_ _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        ignore (Engine.add_process e p0);
        ignore (Engine.add_process e Engine.silent);
        ignore (Engine.run e);
        let t =
          List.find_map
            (function Trace.Delivered { t; _ } -> Some t | _ -> None)
            (Trace.to_list (Engine.trace e))
        in
        check Alcotest.bool "within sigma+delta" true
          (match t with Some t -> t >= 1 && t <= 6 | None -> false));
    Alcotest.test_case "base offsets rebase pid, send and delivery src" `Quick
      (fun () ->
        (* two blocks of two processes each; the same handler code runs in
           both, always speaking logical pids 0/1 *)
        let e = mk_engine () in
        let log = ref [] in
        let talker =
          {
            Engine.on_start =
              (fun ctx ->
                if Engine.pid ctx = 0 then Engine.send ctx ~dst:1 (Data 7));
            on_receive =
              (fun ctx ~src m ->
                match m with
                | Data v -> log := (Engine.pid ctx, src, v) :: !log
                | _ -> ());
            on_timer = (fun _ ~label:_ -> ());
          }
        in
        for block = 0 to 1 do
          for _l = 0 to 1 do
            ignore (Engine.add_process e ~base:(block * 2) talker)
          done
        done;
        check Alcotest.bool "quiescent" true (Engine.run e = Engine.Quiescent);
        check
          Alcotest.(list (triple int int int))
          "each block's logical pid 1 heard logical pid 0"
          [ (1, 0, 7); (1, 0, 7) ]
          (List.sort compare !log));
    Alcotest.test_case "send_absolute escapes the base" `Quick (fun () ->
        let e = mk_engine () in
        let got = ref None in
        let collector =
          {
            Engine.silent with
            Engine.on_receive =
              (fun _ ~src m ->
                match m with Data v -> got := Some (src, v) | _ -> ());
          }
        in
        let escapee =
          {
            Engine.silent with
            Engine.on_start = (fun ctx -> Engine.send_absolute ctx ~dst:0 (Data 9));
          }
        in
        ignore (Engine.add_process e collector);
        ignore (Engine.add_process e ~base:1 escapee);
        ignore (Engine.run e);
        (* collector has base 0, so the reported src is the engine pid *)
        check Alcotest.(option (pair int int)) "escaped" (Some (1, 9)) !got);
    Alcotest.test_case "set_clock re-anchors the local epoch" `Quick (fun () ->
        let e = mk_engine ~delta:1 () in
        let local = ref (-1) in
        let observerd =
          {
            Engine.silent with
            Engine.on_receive =
              (fun ctx ~src:_ _ -> local := Engine.local_now ctx);
          }
        in
        let pinger =
          {
            Engine.silent with
            Engine.on_start =
              (fun ctx ->
                Engine.set_timer_after ctx ~after:50 ~label:"late");
            on_timer = (fun ctx ~label:_ -> Engine.send ctx ~dst:1 Ping);
          }
        in
        ignore (Engine.add_process e pinger);
        ignore (Engine.add_process e observerd);
        (* re-anchor pid 1's clock to read 1000 at global time 0 *)
        Engine.set_clock e ~pid:1
          (Clock.create ~l0:1000 ~g0:0 ~num:1 ~den:1 ());
        ignore (Engine.run e);
        check Alcotest.bool "re-anchored local time" true (!local >= 1050));
  ]

let semantics_tests =
  [
    Alcotest.test_case "an earlier-armed timer beats a same-tick delivery"
      `Quick (fun () ->
        (* the escrow window rule v < u + a relies on this: when χ lands on
           the very tick the timer fires, the timer (armed long before)
           must be dispatched first *)
        let e = mk_engine ~delta:10 () in
        let order = ref [] in
        let p0 =
          {
            Engine.on_start =
              (fun ctx ->
                (* timer at t=10; message also arrives at t=10 *)
                Engine.set_timer ctx ~deadline:10 ~label:"window");
            on_receive = (fun _ ~src:_ _ -> order := "msg" :: !order);
            on_timer = (fun _ ~label:_ -> order := "timer" :: !order);
          }
        in
        let adversary ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds:_ = Some 10 in
        let network =
          Network.create ~adversary
            (Network.Synchronous { delta = 10 })
            (Rng.create ~seed:3)
        in
        let e2 = Engine.create ~tag_of ~network ~seed:4 () in
        ignore e;
        let _ = Engine.add_process e2 p0 in
        let _ =
          Engine.add_process e2
            {
              Engine.on_start = (fun ctx -> Engine.send ctx ~dst:0 Ping);
              on_receive = (fun _ ~src:_ _ -> ());
              on_timer = (fun _ ~label:_ -> ());
            }
        in
        ignore (Engine.run e2);
        check Alcotest.(list string) "timer first" [ "msg"; "timer" ] !order);
    Alcotest.test_case "same-tick sends dispatch in send order" `Quick
      (fun () ->
        let adversary ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds:_ = Some 5 in
        let network =
          Network.create ~adversary ~fifo:true
            (Network.Synchronous { delta = 10 })
            (Rng.create ~seed:3)
        in
        let e = Engine.create ~tag_of ~network ~seed:4 () in
        let got = ref [] in
        let _ =
          Engine.add_process e
            {
              Engine.on_start =
                (fun ctx ->
                  Engine.send ctx ~dst:1 (Data 1);
                  Engine.send ctx ~dst:1 (Data 2);
                  Engine.send ctx ~dst:1 (Data 3));
              on_receive = (fun _ ~src:_ _ -> ());
              on_timer = (fun _ ~label:_ -> ());
            }
        in
        let _ =
          Engine.add_process e
            {
              Engine.on_start = (fun _ -> ());
              on_receive =
                (fun _ ~src:_ m ->
                  match m with Data v -> got := v :: !got | _ -> ());
              on_timer = (fun _ ~label:_ -> ());
            }
        in
        ignore (Engine.run e);
        check Alcotest.(list int) "order" [ 1; 2; 3 ] (List.rev !got));
    qcheck
      (QCheck.Test.make ~name:"async delays respect the cap" ~count:60
         QCheck.small_int
         (fun seed ->
           let model = Network.Asynchronous { mean = 100; cap = 5_000 } in
           let t = Network.create ~fifo:false model (Rng.create ~seed) in
           let ok = ref true in
           for k = 0 to 50 do
             let at =
               Network.delivery_time t ~send_time:(k * 10) ~src:0 ~dst:1 ~tag:"x"
             in
             if at - (k * 10) > 5_000 || at <= k * 10 then ok := false
           done;
           !ok));
    qcheck
      (QCheck.Test.make
         ~name:"queue with random cancellations matches a model" ~count:100
         QCheck.(list (pair (int_bound 100) bool))
         (fun ops ->
           (* push everything; cancel the even-indexed pushes where the
              bool says so; drain and compare against a reference list *)
           let q = Event_queue.create () in
           let tokens =
             List.mapi
               (fun i (time, _) -> (i, time, Event_queue.push q ~time i))
               ops
           in
           let cancelled =
             List.filteri
               (fun i (_, c) -> c && i mod 2 = 0)
               ops
             |> List.length
           in
           ignore cancelled;
           let dead =
             List.filter_map
               (fun (i, _, tok) ->
                 let _, c = List.nth ops i in
                 if c && i mod 2 = 0 then begin
                   ignore (Event_queue.cancel q tok);
                   Some i
                 end
                 else None)
               tokens
           in
           let expected =
             List.filter (fun (i, _, _) -> not (List.mem i dead)) tokens
             |> List.map (fun (i, time, _) -> (time, i))
             |> List.stable_sort (fun (t1, i1) (t2, i2) ->
                    if t1 <> t2 then compare t1 t2 else compare i1 i2)
           in
           Event_queue.drain q = expected));
  ]

let trace_tests =
  [
    Alcotest.test_case "jsonl export covers every entry kind" `Quick (fun () ->
        let tr : (string, string) Trace.t = Trace.create () in
        Trace.record tr (Trace.Sent { t = 1; src = 0; dst = 1; tag = "m"; msg = "hi" });
        Trace.record tr
          (Trace.Delivered { t = 2; sent_at = 1; src = 0; dst = 1; tag = "m"; msg = "hi" });
        Trace.record tr
          (Trace.Timer_set
             { t = 3; owner = 1; label = "w"; local_deadline = 9; global_fire = 10 });
        Trace.record tr (Trace.Timer_fired { t = 10; owner = 1; label = "w" });
        Trace.record tr (Trace.Observed { t = 11; pid = 1; obs = "done" });
        Trace.record tr (Trace.Halted { t = 12; pid = 1 });
        let out = Trace.to_jsonl ~msg:Fun.id ~obs:Fun.id tr in
        let lines = String.split_on_char '\n' (String.trim out) in
        check Alcotest.int "six lines" 6 (List.length lines);
        List.iter
          (fun l ->
            check Alcotest.bool "object" true
              (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
          lines);
    Alcotest.test_case "jsonl escapes quotes and control characters" `Quick
      (fun () ->
        let tr : (string, string) Trace.t = Trace.create () in
        Trace.record tr (Trace.Observed { t = 1; pid = 0; obs = "say \"hi\"\nplease" });
        let out = Trace.to_jsonl ~msg:Fun.id ~obs:Fun.id tr in
        let mem sub =
          let n = String.length sub and m = String.length out in
          let rec go i = i + n <= m && (String.sub out i n = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "escaped quote" true (mem {|\"hi\"|});
        check Alcotest.bool "escaped newline" true (mem {|\n|});
        check Alcotest.bool "no raw newline inside" true
          (not (mem "hi\"\nplease")));
    Alcotest.test_case "infinite deadlines serialize as strings" `Quick
      (fun () ->
        let tr : (string, string) Trace.t = Trace.create () in
        Trace.record tr
          (Trace.Timer_set
             {
               t = 0;
               owner = 0;
               label = "never";
               local_deadline = Sim_time.infinity;
               global_fire = Sim_time.infinity;
             });
        let out = Trace.to_jsonl ~msg:Fun.id ~obs:Fun.id tr in
        let mem sub =
          let n = String.length sub and m = String.length out in
          let rec go i = i + n <= m && (String.sub out i n = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "inf" true (mem {|"inf"|}));
    Alcotest.test_case "bounded trace keeps the newest window" `Quick (fun () ->
        let tr : (string, string) Trace.t = Trace.create ~capacity:3 () in
        for i = 1 to 5 do
          Trace.record tr (Trace.Observed { t = i; pid = 0; obs = string_of_int i })
        done;
        check Alcotest.int "dropped" 2 (Trace.dropped_count tr);
        check Alcotest.int "total length" 5 (Trace.length tr);
        let kept =
          List.filter_map
            (function Trace.Observed { obs; _ } -> Some obs | _ -> None)
            (Trace.to_list tr)
        in
        check Alcotest.(list string) "newest three" [ "3"; "4"; "5" ] kept);
    Alcotest.test_case "bounded trace smaller than capacity drops nothing"
      `Quick (fun () ->
        let tr : (string, string) Trace.t = Trace.create ~capacity:10 () in
        Trace.record tr (Trace.Observed { t = 1; pid = 0; obs = "a" });
        check Alcotest.int "dropped" 0 (Trace.dropped_count tr);
        check Alcotest.int "kept" 1 (List.length (Trace.to_list tr)));
    Alcotest.test_case "create rejects non-positive capacity" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Trace.create: capacity must be positive")
          (fun () -> ignore (Trace.create ~capacity:0 () : (unit, unit) Trace.t)));
    Alcotest.test_case "on_record hooks see every entry despite eviction"
      `Quick (fun () ->
        let tr : (string, string) Trace.t = Trace.create ~capacity:2 () in
        let seen = ref 0 in
        let order = ref [] in
        Trace.on_record tr (fun _ -> incr seen);
        Trace.on_record tr (fun _ -> order := "second" :: !order);
        for i = 1 to 7 do
          Trace.record tr (Trace.Observed { t = i; pid = 0; obs = "x" })
        done;
        check Alcotest.int "hook saw all" 7 !seen;
        check Alcotest.int "both hooks ran" 7 (List.length !order);
        check Alcotest.int "storage bounded" 2 (List.length (Trace.to_list tr)));
    Alcotest.test_case "message_count and last_time survive the ring" `Quick
      (fun () ->
        let tr : (string, string) Trace.t = Trace.create ~capacity:2 () in
        for i = 1 to 4 do
          Trace.record tr (Trace.Sent { t = i; src = 0; dst = 1; tag = "m"; msg = "" })
        done;
        check Alcotest.int "kept messages" 2 (Trace.message_count tr);
        check Alcotest.int "last time" 4 (Trace.last_time tr));
  ]

let () =
  Alcotest.run "sim"
    [
      ("sim_time", time_tests);
      ("rng", rng_tests);
      ("event_queue", queue_tests);
      ("clock", clock_tests);
      ("stats", stats_tests);
      ("network", network_tests);
      ("engine", engine_tests);
      ("semantics", semantics_tests);
      ("trace", trace_tests);
    ]
