(* Tests for the protocol layer: topology, the timeout-parameter
   derivation (the Thm 1 fine-tuning), the run environment, the Figure 2
   automata, the HTLC baseline, the weak protocol, Byzantine strategies,
   and the runner. *)

open Protocols

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------ topology ------------------------------ *)

let topology_tests =
  [
    Alcotest.test_case "pid layout" `Quick (fun () ->
        let t = Topology.create ~hops:3 in
        check Alcotest.int "alice" 0 (Topology.alice t);
        check Alcotest.int "bob" 3 (Topology.bob t);
        check Alcotest.int "c1" 1 (Topology.customer t 1);
        check Alcotest.int "e0" 4 (Topology.escrow t 0);
        check Alcotest.int "e2" 6 (Topology.escrow t 2);
        check Alcotest.int "aux" 7 (Topology.aux_base t);
        check Alcotest.int "count" 7 (Topology.payment_count t));
    Alcotest.test_case "role_of covers the payment pids" `Quick (fun () ->
        let t = Topology.create ~hops:2 in
        check Alcotest.bool "alice" true (Topology.role_of t 0 = Some Topology.Alice);
        check Alcotest.bool "chloe" true
          (Topology.role_of t 1 = Some (Topology.Connector 1));
        check Alcotest.bool "bob" true (Topology.role_of t 2 = Some Topology.Bob);
        check Alcotest.bool "e0" true (Topology.role_of t 3 = Some (Topology.Escrow 0));
        check Alcotest.bool "aux unknown" true (Topology.role_of t 5 = None);
        Topology.register_aux t 0;
        check Alcotest.bool "aux known" true (Topology.role_of t 5 = Some (Topology.Aux 0)));
    Alcotest.test_case "connectors list" `Quick (fun () ->
        check Alcotest.(list int) "hops 1" [] (Topology.connectors (Topology.create ~hops:1));
        check Alcotest.(list int) "hops 4" [ 1; 2; 3 ]
          (Topology.connectors (Topology.create ~hops:4)));
    Alcotest.test_case "customer/escrow adjacency" `Quick (fun () ->
        let t = Topology.create ~hops:3 in
        check Alcotest.(option int) "alice down" (Some 4)
          (Topology.escrow_of_customer_down t 0);
        check Alcotest.(option int) "alice up" None (Topology.escrow_of_customer_up t 0);
        check Alcotest.(option int) "bob up" (Some 6) (Topology.escrow_of_customer_up t 3);
        check Alcotest.(option int) "bob down" None (Topology.escrow_of_customer_down t 3));
    Alcotest.test_case "index inverses" `Quick (fun () ->
        let t = Topology.create ~hops:3 in
        check Alcotest.(option int) "cust" (Some 2) (Topology.customer_index t 2);
        check Alcotest.(option int) "escrow" (Some 1) (Topology.escrow_index t 5);
        check Alcotest.(option int) "out of range" None (Topology.escrow_index t 99));
    Alcotest.test_case "needs at least one escrow" `Quick (fun () ->
        Alcotest.check_raises "hops 0"
          (Invalid_argument "Topology.create: need at least one escrow") (fun () ->
            ignore (Topology.create ~hops:0)));
  ]

(* ------------------------------- params ------------------------------- *)

let params_tests =
  [
    Alcotest.test_case "windows shrink toward Bob" `Quick (fun () ->
        let p = Params.derive (Params.default_input ~hops:4) in
        for i = 0 to 2 do
          check Alcotest.bool "a(i) > a(i+1)" true (p.Params.a.(i) > p.Params.a.(i + 1))
        done);
    Alcotest.test_case "derived parameters pass the recurrence check" `Quick
      (fun () ->
        List.iter
          (fun hops ->
            let p = Params.derive (Params.default_input ~hops) in
            check Alcotest.bool "check" true (Params.check p = Ok ()))
          [ 1; 2; 5; 16; 64 ]);
    Alcotest.test_case "shrunk windows fail the check" `Quick (fun () ->
        let p = Params.derive (Params.default_input ~hops:3) in
        let shrunk = Params.scale_windows p ~num:1 ~den:3 in
        check Alcotest.bool "fails" true (Result.is_error (Params.check shrunk)));
    Alcotest.test_case "d leaves room beyond a" `Quick (fun () ->
        let p = Params.derive (Params.default_input ~hops:3) in
        Array.iteri
          (fun i a -> check Alcotest.bool "d > a" true (p.Params.d.(i) > a))
          p.Params.a);
    Alcotest.test_case "zero drift means no inflation" `Quick (fun () ->
        let input = { (Params.default_input ~hops:2) with Params.drift_ppm = 0 } in
        let p = Params.derive input in
        let step = input.Params.delta + input.Params.sigma in
        check Alcotest.int "a1 exact" ((2 * step) + input.Params.margin)
          p.Params.a.(1));
    Alcotest.test_case "drift inflates windows" `Quick (fun () ->
        let base = Params.derive { (Params.default_input ~hops:3) with Params.drift_ppm = 0 } in
        let drifted =
          Params.derive { (Params.default_input ~hops:3) with Params.drift_ppm = 50_000 }
        in
        for i = 0 to 2 do
          check Alcotest.bool "bigger" true (drifted.Params.a.(i) > base.Params.a.(i))
        done);
    Alcotest.test_case "horizon dominates the largest window" `Quick (fun () ->
        let p = Params.derive (Params.default_input ~hops:5) in
        check Alcotest.bool "horizon" true (p.Params.horizon > p.Params.a.(0)));
    Alcotest.test_case "per-customer bounds are within the horizon" `Quick
      (fun () ->
        let p = Params.derive (Params.default_input ~hops:5) in
        check Alcotest.int "length" 6 (Array.length p.Params.customer_bound);
        Array.iter
          (fun b -> check Alcotest.bool "<= horizon" true (b <= p.Params.horizon))
          p.Params.customer_bound);
    Alcotest.test_case "Alice's bound is the tightest payer bound" `Quick
      (fun () ->
        let p = Params.derive (Params.default_input ~hops:4) in
        for i = 0 to 2 do
          check Alcotest.bool "increasing... or not: a_i shrinks downstream"
            true
            (p.Params.customer_bound.(i) > 0
            && p.Params.customer_bound.(i + 1) > 0)
        done);
    Alcotest.test_case "input validation" `Quick (fun () ->
        Alcotest.check_raises "hops" (Invalid_argument "Params: hops must be >= 1")
          (fun () -> ignore (Params.derive { (Params.default_input ~hops:1) with Params.hops = 0 }));
        Alcotest.check_raises "margin" (Invalid_argument "Params: margin must be >= 1")
          (fun () ->
            ignore (Params.derive { (Params.default_input ~hops:1) with Params.margin = 0 })));
    qcheck
      (QCheck.Test.make ~name:"up/down compose to at least identity"
         QCheck.(pair (int_range 1 1_000_000) (int_range 0 200_000))
         (fun (t, drift_ppm) ->
           Params.down ~drift_ppm (Params.up ~drift_ppm t) >= t));
    qcheck
      (QCheck.Test.make ~name:"derive always passes its own check" ~count:50
         QCheck.(
           triple (int_range 1 12) (int_range 1 500) (int_range 0 100_000))
         (fun (hops, delta, drift_ppm) ->
           let p =
             Params.derive
               { Params.hops; delta; sigma = delta / 4; drift_ppm; margin = 2 }
           in
           Params.check p = Ok ()));
  ]

(* --------------------------------- env --------------------------------- *)

let mk_env ?(hops = 3) ?(seed = 5) () =
  let topo = Topology.create ~hops in
  let params = Params.derive (Params.default_input ~hops) in
  Env.make ~topo ~params ~seed ()

let env_tests =
  [
    Alcotest.test_case "amounts decrease toward Bob by the commission" `Quick
      (fun () ->
        let env = mk_env () in
        check Alcotest.int "a0" 1020 (Env.amount_at env 0);
        check Alcotest.int "a1" 1010 (Env.amount_at env 1);
        check Alcotest.int "a2" 1000 (Env.amount_at env 2));
    Alcotest.test_case "books open with the needed balances" `Quick (fun () ->
        let env = mk_env () in
        let topo = env.Env.topo in
        check Alcotest.int "payer" 1010
          (Ledger.Book.balance env.Env.books.(1) (Topology.customer topo 1));
        check Alcotest.int "payee" 0
          (Ledger.Book.balance env.Env.books.(1) (Topology.customer topo 2)));
    Alcotest.test_case "genuine chi verifies, forged does not" `Quick (fun () ->
        let env = mk_env () in
        check Alcotest.bool "real" true (Env.chi_ok env (Env.make_chi env));
        let bob = Topology.bob env.Env.topo in
        let fake =
          Xcrypto.Auth.forge_value ~author:bob
            { Msg.x_payment = env.Env.payment; x_bob = bob }
        in
        check Alcotest.bool "forged" false (Env.chi_ok env fake));
    Alcotest.test_case "chi for another payment is rejected" `Quick (fun () ->
        let env = mk_env () in
        let bob = Topology.bob env.Env.topo in
        let signer = Env.signer_of env bob in
        let other =
          Xcrypto.Auth.sign_value signer ~ser:Msg.ser_chi
            { Msg.x_payment = env.Env.payment + 1; x_bob = bob }
        in
        check Alcotest.bool "wrong payment" false (Env.chi_ok env other));
    Alcotest.test_case "chi signed by a non-Bob is rejected" `Quick (fun () ->
        let env = mk_env () in
        let bob = Topology.bob env.Env.topo in
        let chloe_signer = Env.signer_of env (Topology.customer env.Env.topo 1) in
        let bogus =
          Xcrypto.Auth.sign_value chloe_signer ~ser:Msg.ser_chi
            { Msg.x_payment = env.Env.payment; x_bob = bob }
        in
        check Alcotest.bool "wrong signer" false (Env.chi_ok env bogus));
    Alcotest.test_case "promise verification binds the escrow" `Quick (fun () ->
        let env = mk_env () in
        let e0 = Topology.escrow env.Env.topo 0 in
        let signer = Env.signer_of env e0 in
        let g =
          Xcrypto.Auth.sign_value signer ~ser:Msg.ser_promise_g
            { Msg.g_escrow = e0; g_customer = 0; d = 100 }
        in
        check Alcotest.bool "right escrow" true (Env.promise_g_ok env ~escrow_index:0 g);
        check Alcotest.bool "wrong escrow" false (Env.promise_g_ok env ~escrow_index:1 g));
    Alcotest.test_case "signer_of is idempotent" `Quick (fun () ->
        let env = mk_env () in
        let s1 = Env.signer_of env 0 and s2 = Env.signer_of env 0 in
        check Alcotest.int "same id" (Xcrypto.Auth.signer_id s1)
          (Xcrypto.Auth.signer_id s2));
  ]

(* ----------------------------- sync protocol --------------------------- *)

let run_sync ?(hops = 3) ?(seed = 1) ?(drift = 10_000) ?(faults = []) () =
  let cfg =
    { (Runner.default_config ~hops ~seed) with drift_ppm = drift; faults }
  in
  Runner.run cfg Runner.Sync_timebound

let outcome_of pid o =
  List.find_map
    (fun (p, tag, _) -> if p = pid then Some tag else None)
    (Runner.terminated_pids o)

let sync_tests =
  [
    Alcotest.test_case "all Figure 2 automata are well-formed (property C)"
      `Quick (fun () ->
        List.iter
          (fun hops ->
            let env = mk_env ~hops () in
            check Alcotest.bool "check_all" true (Sync_protocol.check_all env = Ok ()))
          [ 1; 2; 3; 8 ]);
    Alcotest.test_case "happy path: money and certificate flow" `Quick (fun () ->
        let o = run_sync () in
        let env = o.Runner.env in
        let topo = env.Env.topo in
        check Alcotest.int "bob" 1000
          (Runner.balance o ~escrow:2 ~pid:(Topology.bob topo));
        check Alcotest.int "alice" 0
          (Runner.balance o ~escrow:0 ~pid:(Topology.alice topo));
        check Alcotest.int "chloe1 in" 1020 (Runner.balance o ~escrow:0 ~pid:1);
        check Alcotest.int "chloe1 out" 0 (Runner.balance o ~escrow:1 ~pid:1);
        check Alcotest.(option string) "alice outcome" (Some "certified")
          (outcome_of (Topology.alice topo) o);
        check Alcotest.(option string) "bob outcome" (Some "paid")
          (outcome_of (Topology.bob topo) o));
    Alcotest.test_case "single-hop payment works" `Quick (fun () ->
        let o = run_sync ~hops:1 () in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 1 o));
    Alcotest.test_case "same seed reproduces the identical run" `Quick (fun () ->
        let o1 = run_sync ~seed:9 () and o2 = run_sync ~seed:9 () in
        check Alcotest.int "msgs" o1.Runner.message_count o2.Runner.message_count;
        check Alcotest.int "end" o1.Runner.end_time o2.Runner.end_time;
        check Alcotest.int "trace" (Sim.Trace.length o1.Runner.trace)
          (Sim.Trace.length o2.Runner.trace));
    Alcotest.test_case "message complexity is 6 per hop" `Quick (fun () ->
        List.iter
          (fun hops ->
            let o = run_sync ~hops () in
            check Alcotest.int "msgs" (6 * hops) o.Runner.message_count)
          [ 1; 2; 4 ]);
    Alcotest.test_case "mute Bob leads to universal refund" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let o = run_sync ~faults:[ (Topology.bob topo, Byzantine.Mute) ] () in
        check Alcotest.(option string) "alice refunded" (Some "refunded")
          (outcome_of (Topology.alice topo) o);
        check Alcotest.(option string) "chloe1 refunded" (Some "refunded")
          (outcome_of 1 o);
        Array.iteri
          (fun i book ->
            check Alcotest.int "payer restored" (Env.amount_at o.Runner.env i)
              (Ledger.Book.balance book (Topology.customer topo i)))
          o.Runner.env.Env.books);
    Alcotest.test_case "forged chi is never accepted by an escrow" `Quick
      (fun () ->
        let topo = Topology.create ~hops:3 in
        let o =
          run_sync
            ~faults:[ (Topology.customer topo 2, Byzantine.Forge_chi_connector) ]
            ()
        in
        let accepted_forgery =
          List.exists
            (fun (_, _, ob) ->
              match ob with
              | Obs.Cert_received { kind = Obs.Chi; valid = true; _ } -> true
              | _ -> false)
            (Runner.observations o)
        in
        check Alcotest.bool "no valid chi" false accepted_forgery);
  ]

(* -------------------------------- htlc --------------------------------- *)

let htlc_tests =
  [
    Alcotest.test_case "happy path pays everyone" `Quick (fun () ->
        let cfg = Runner.default_config ~hops:3 ~seed:2 in
        let o = Runner.run cfg Runner.Htlc in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 3 o);
        check Alcotest.(option string) "alice" (Some "preimage-receipt")
          (outcome_of 0 o);
        check Alcotest.int "bob money" 1000 (Runner.balance o ~escrow:2 ~pid:3));
    Alcotest.test_case "mute Bob: every leg refunds at its timelock" `Quick
      (fun () ->
        let topo = Topology.create ~hops:3 in
        let cfg =
          {
            (Runner.default_config ~hops:3 ~seed:2) with
            faults = [ (Topology.bob topo, Byzantine.Mute) ];
          }
        in
        let o = Runner.run cfg Runner.Htlc in
        Array.iteri
          (fun i book ->
            check Alcotest.int "restored" (Env.amount_at o.Runner.env i)
              (Ledger.Book.balance book (Topology.customer topo i)))
          o.Runner.env.Env.books);
    Alcotest.test_case "timelock ladder decreases toward Bob" `Quick (fun () ->
        let env = mk_env ~hops:4 () in
        let cfg = Htlc_protocol.default_config env in
        for i = 0 to 2 do
          check Alcotest.bool "monotone" true
            (Htlc_protocol.window_of env cfg i > Htlc_protocol.window_of env cfg (i + 1))
        done);
  ]

(* ----------------------------- weak protocol --------------------------- *)

let run_weak ?(hops = 3) ?(seed = 1) ?(gst = 0) ?(patience = 20_000)
    ?(tm = Weak_protocol.Single) ?(faults = []) () =
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      network = (if gst = 0 then Runner.Sync else Runner.Psync { gst });
      faults;
    }
  in
  Runner.run cfg (Runner.Weak { Weak_protocol.default_config with patience; tm })

let weak_tests =
  [
    Alcotest.test_case "happy path commits and pays Bob" `Quick (fun () ->
        let o = run_weak () in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 3 o);
        check Alcotest.(option string) "alice" (Some "certified") (outcome_of 0 o);
        check Alcotest.int "bob money" 1000 (Runner.balance o ~escrow:2 ~pid:3));
    Alcotest.test_case "zero patience aborts safely" `Quick (fun () ->
        let o = run_weak ~patience:0 () in
        check Alcotest.(option string) "alice refunded" (Some "refunded")
          (outcome_of 0 o);
        check Alcotest.int "bob unpaid" 0 (Runner.balance o ~escrow:2 ~pid:3);
        let decisions =
          List.filter_map
            (fun (_, _, ob) ->
              match ob with Obs.Decision_made { commit; _ } -> Some commit | _ -> None)
            (Runner.observations o)
        in
        check Alcotest.(list bool) "abort only" [ false ] decisions);
    Alcotest.test_case "committee matches the single TM on the happy path"
      `Quick (fun () ->
        let o = run_weak ~tm:(Weak_protocol.Committee { f = 1 }) () in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 3 o));
    Alcotest.test_case "committee under partial synchrony still commits" `Quick
      (fun () ->
        let o =
          run_weak ~gst:1_500 ~patience:100_000
            ~tm:(Weak_protocol.Committee { f = 1 }) ()
        in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 3 o));
    Alcotest.test_case "chain-hosted contract commits on the happy path"
      `Quick (fun () ->
        let o = run_weak ~tm:(Weak_protocol.Chain { validators = 4 }) () in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 3 o);
        check Alcotest.(option string) "alice" (Some "certified") (outcome_of 0 o));
    Alcotest.test_case "chain-hosted contract aborts on impatience" `Quick
      (fun () ->
        let o =
          run_weak ~patience:0 ~tm:(Weak_protocol.Chain { validators = 4 }) ()
        in
        check Alcotest.int "bob unpaid" 0 (Runner.balance o ~escrow:2 ~pid:3);
        (* every validator announces the same abort *)
        let decisions =
          List.filter_map
            (fun (_, _, ob) ->
              match ob with Obs.Decision_made { commit; _ } -> Some commit | _ -> None)
            (Runner.observations o)
        in
        check Alcotest.bool "all abort" true
          (decisions <> [] && List.for_all (fun c -> not c) decisions));
    Alcotest.test_case "chain-hosted contract under partial synchrony" `Quick
      (fun () ->
        for seed = 1 to 8 do
          let o =
            run_weak ~seed ~gst:1_500 ~patience:100_000
              ~tm:(Weak_protocol.Chain { validators = 3 }) ()
          in
          let v = Props.Payment_props.view o in
          check Alcotest.bool "def2" true
            (Props.Verdict.all_hold
               (Props.Payment_props.check_def2 ~patience_sufficient:true v));
          check Alcotest.bool "paid" true (Props.Payment_props.bob_paid v)
        done);
    Alcotest.test_case "chain validators agree on the decision across seeds"
      `Quick (fun () ->
        for seed = 1 to 10 do
          (* race aborts against commits on the chain *)
          let o =
            run_weak ~seed ~patience:150
              ~tm:(Weak_protocol.Chain { validators = 4 }) ()
          in
          let decisions =
            List.filter_map
              (fun (_, _, ob) ->
                match ob with
                | Obs.Decision_made { commit; _ } -> Some commit
                | _ -> None)
              (Runner.observations o)
          in
          match decisions with
          | [] -> Alcotest.fail "no decision"
          | d :: rest ->
              check Alcotest.bool "agreement" true (List.for_all (Bool.equal d) rest)
        done);
    Alcotest.test_case "never-depositing Chloe forces a refund, not a theft"
      `Quick (fun () ->
        let o =
          run_weak ~patience:2_000 ~faults:[ (1, Byzantine.Never_deposit) ] ()
        in
        check Alcotest.int "alice restored" 1020 (Runner.balance o ~escrow:0 ~pid:0);
        check Alcotest.int "bob unpaid" 0 (Runner.balance o ~escrow:2 ~pid:3));
    Alcotest.test_case
      "false-funded escrow cannot corrupt honest books" `Quick (fun () ->
        let topo = Topology.create ~hops:3 in
        let o =
          run_weak ~faults:[ (Topology.escrow topo 1, Byzantine.False_funded_escrow) ] ()
        in
        Array.iter
          (fun book ->
            check Alcotest.bool "audit" true (Result.is_ok (Ledger.Book.audit book)))
          o.Runner.env.Env.books);
    Alcotest.test_case "tm_pids layout" `Quick (fun () ->
        let env = mk_env ~hops:2 () in
        let single = Weak_protocol.tm_pids env Weak_protocol.default_config in
        check Alcotest.(array int) "single" [| 5 |] single;
        let committee =
          Weak_protocol.tm_pids env
            { Weak_protocol.default_config with tm = Weak_protocol.Committee { f = 1 } }
        in
        check Alcotest.(array int) "committee" [| 5; 6; 7; 8 |] committee);
  ]

(* -------------------- weak protocol race conditions -------------------- *)

let decisions_of o =
  List.filter_map
    (fun (_, _, ob) ->
      match ob with Obs.Decision_made { commit; _ } -> Some commit | _ -> None)
    (Runner.observations o)

let weak_race_tests =
  [
    Alcotest.test_case "abort racing commit: exactly one decision wins"
      `Quick (fun () ->
        (* patience in the same ballpark as the funded-collection time, so
           across seeds both orders occur; the single TM must still decide
           exactly once and every run must stay safe *)
        let commits = ref 0 and aborts = ref 0 in
        for seed = 1 to 40 do
          let o = run_weak ~hops:3 ~seed ~patience:150 () in
          let ds = decisions_of o in
          check Alcotest.int "one decision" 1 (List.length ds);
          if List.hd ds then incr commits else incr aborts;
          let v = Props.Payment_props.view o in
          check Alcotest.bool "safe" true
            (Props.Verdict.all_hold
               (Props.Payment_props.check_def2 ~patience_sufficient:false v))
        done;
        check Alcotest.bool "both orders occurred" true
          (!commits > 0 && !aborts > 0));
    Alcotest.test_case "a late deposit after the abort is refunded" `Quick
      (fun () ->
        (* Chloe1 aborts immediately; Alice's deposit races the decision.
           Whatever the interleaving, her money must come back. *)
        for seed = 1 to 15 do
          let o =
            run_weak ~hops:2 ~seed
              ~faults:[ (1, Byzantine.Impatient 0) ]
              ~patience:50_000 ()
          in
          check Alcotest.int "alice restored"
            (Env.amount_at o.Runner.env 0)
            (Runner.balance o ~escrow:0 ~pid:0)
        done);
    Alcotest.test_case "several simultaneous aborts yield one decision"
      `Quick (fun () ->
        let o = run_weak ~hops:3 ~seed:5 ~patience:0 () in
        check Alcotest.int "one decision" 1 (List.length (decisions_of o));
        check Alcotest.(list bool) "it is an abort" [ false ] (decisions_of o));
    Alcotest.test_case "infinite patience never aborts" `Quick (fun () ->
        let o = run_weak ~hops:2 ~seed:3 ~patience:Sim.Sim_time.infinity () in
        check Alcotest.(list bool) "commit" [ true ] (decisions_of o);
        let aborts =
          List.exists
            (fun (_, _, ob) ->
              match ob with Obs.Abort_requested _ -> true | _ -> false)
            (Runner.observations o)
        in
        check Alcotest.bool "no abort requests" false aborts);
    Alcotest.test_case "committee: abort racing commit stays consistent"
      `Quick (fun () ->
        for seed = 1 to 15 do
          let o =
            run_weak ~hops:2 ~seed ~patience:280
              ~tm:(Weak_protocol.Committee { f = 1 }) ()
          in
          let v = Props.Payment_props.view o in
          check Alcotest.bool "CC" true
            (Props.Verdict.holds
               (Props.Payment_props.check_def2 ~patience_sufficient:false v)
               "CC")
        done);
  ]

(* ---------------------------- atomic (ILP) ----------------------------- *)

let run_atomic ?(hops = 3) ?(seed = 1) ?(gst = 0) ?(deadline = 5_000) () =
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      network = (if gst = 0 then Runner.Sync else Runner.Psync { gst });
    }
  in
  Runner.run cfg (Runner.Atomic { Atomic_protocol.deadline })

let atomic_tests =
  [
    Alcotest.test_case "happy path executes and pays Bob" `Quick (fun () ->
        let o = run_atomic () in
        check Alcotest.(option string) "bob" (Some "paid") (outcome_of 3 o);
        check Alcotest.(option string) "alice" (Some "certified") (outcome_of 0 o);
        check Alcotest.int "bob money" 1000 (Runner.balance o ~escrow:2 ~pid:3));
    Alcotest.test_case "a short deadline aborts the payment safely" `Quick
      (fun () ->
        let o = run_atomic ~deadline:3 () in
        check Alcotest.int "bob unpaid" 0 (Runner.balance o ~escrow:2 ~pid:3);
        (* every deposit that was made got refunded *)
        Array.iteri
          (fun i book ->
            check Alcotest.int "restored" (Env.amount_at o.Runner.env i)
              (Ledger.Book.balance book (Topology.customer o.Runner.env.Env.topo i)))
          o.Runner.env.Env.books);
    Alcotest.test_case "the notary decides exactly once" `Quick (fun () ->
        let o = run_atomic ~gst:2_000 ~deadline:1_000 () in
        let decisions =
          List.filter
            (fun (_, _, ob) ->
              match ob with Obs.Decision_made _ -> true | _ -> false)
            (Runner.observations o)
        in
        check Alcotest.int "one decision" 1 (List.length decisions));
    Alcotest.test_case "GST past the deadline kills success, never safety"
      `Quick (fun () ->
        let o = run_atomic ~gst:20_000 ~deadline:2_000 ~seed:5 () in
        let v = Props.Payment_props.view o in
        check Alcotest.bool "unpaid" false (Props.Payment_props.bob_paid v);
        check Alcotest.bool "conserved" true (Props.Payment_props.money_conserved v);
        check Alcotest.bool "def2 safety" true
          (Props.Verdict.all_hold
             (Props.Payment_props.check_def2 ~patience_sufficient:false v)));
    qcheck
      (QCheck.Test.make ~name:"atomic runs satisfy Def.2 safety on any seed"
         ~count:25 QCheck.small_int
         (fun seed ->
           let o = run_atomic ~hops:2 ~seed ~gst:(seed mod 7 * 1000) () in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def2 ~patience_sufficient:false v)
           && Props.Payment_props.money_conserved v));
  ]

(* ------------------------------ byzantine ------------------------------ *)

let byzantine_tests =
  [
    Alcotest.test_case "applicability matrix" `Quick (fun () ->
        let open Byzantine in
        check Alcotest.bool "thief on escrow" true
          (applicable_to Thief_escrow (Topology.Escrow 0));
        check Alcotest.bool "thief on alice" false
          (applicable_to Thief_escrow Topology.Alice);
        check Alcotest.bool "withhold on bob" true
          (applicable_to Withhold_chi_bob Topology.Bob);
        check Alcotest.bool "withhold on chloe" false
          (applicable_to Withhold_chi_bob (Topology.Connector 1));
        check Alcotest.bool "crash anywhere" true
          (applicable_to Crash_at_start (Topology.Escrow 2)));
    Alcotest.test_case "inapplicable strategy raises" `Quick (fun () ->
        let env = mk_env () in
        Alcotest.check_raises "bad"
          (Invalid_argument
             "Byzantine.handlers: thief-escrow not applicable to Alice")
          (fun () -> ignore (Byzantine.handlers env ~pid:0 Byzantine.Thief_escrow)));
    Alcotest.test_case "thief escrow really takes the money" `Quick (fun () ->
        let topo = Topology.create ~hops:2 in
        let e0 = Topology.escrow topo 0 in
        let o = run_sync ~hops:2 ~faults:[ (e0, Byzantine.Thief_escrow) ] () in
        check Alcotest.int "stolen" (Env.amount_at o.Runner.env 0)
          (Runner.balance o ~escrow:0 ~pid:e0);
        check Alcotest.bool "audit still passes" true
          (Result.is_ok (Ledger.Book.audit o.Runner.env.Env.books.(0))));
    Alcotest.test_case "names are stable" `Quick (fun () ->
        check Alcotest.string "thief" "thief-escrow" (Byzantine.name Byzantine.Thief_escrow);
        check Alcotest.string "impatient" "impatient-5"
          (Byzantine.name (Byzantine.Impatient 5)));
  ]

(* -------------------------------- runner ------------------------------- *)

let runner_tests =
  [
    Alcotest.test_case "naive params are drift-blind" `Quick (fun () ->
        let cfg = Runner.default_config ~hops:3 ~seed:1 in
        let tuned = Runner.derive_params cfg Runner.Sync_timebound in
        let naive = Runner.derive_params cfg Runner.Naive_universal in
        check Alcotest.bool "tuned wider" true (tuned.Params.a.(0) > naive.Params.a.(0)));
    Alcotest.test_case "window_scale applies" `Quick (fun () ->
        let cfg =
          { (Runner.default_config ~hops:2 ~seed:1) with window_scale = Some (3, 1) }
        in
        let scaled = Runner.derive_params cfg Runner.Sync_timebound in
        let base =
          Runner.derive_params { cfg with Runner.window_scale = None }
            Runner.Sync_timebound
        in
        check Alcotest.int "tripled" (3 * base.Params.a.(0)) scaled.Params.a.(0));
    Alcotest.test_case "fault names are recorded" `Quick (fun () ->
        let o = run_sync ~faults:[ (3, Byzantine.Mute) ] () in
        check Alcotest.(list (pair int string)) "names" [ (3, "mute") ]
          o.Runner.fault_names);
    Alcotest.test_case "protocol names" `Quick (fun () ->
        check Alcotest.string "sync" "sync-timebound"
          (Runner.protocol_name Runner.Sync_timebound);
        check Alcotest.string "weak" "weak-single-tm"
          (Runner.protocol_name (Runner.Weak Weak_protocol.default_config)));
    qcheck
      (QCheck.Test.make ~name:"sync protocol satisfies Def.1 on random seeds"
         ~count:40 QCheck.small_int
         (fun seed ->
           let o = run_sync ~hops:2 ~seed () in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def1 ~time_bounded:true v)));
    qcheck
      (QCheck.Test.make ~name:"weak protocol satisfies Def.2 on random seeds"
         ~count:25 QCheck.small_int
         (fun seed ->
           let o = run_weak ~hops:2 ~seed () in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def2 ~patience_sufficient:true v)));
    qcheck
      (QCheck.Test.make
         ~name:"safety survives a random single Byzantine participant"
         ~count:40
         QCheck.(pair small_int (int_bound 100))
         (fun (seed, pick) ->
           let topo = Topology.create ~hops:3 in
           let candidates =
             [
               (Topology.alice topo, Byzantine.Crash_at_start);
               (Topology.customer topo 1, Byzantine.Mute);
               (Topology.customer topo 2, Byzantine.Forge_chi_connector);
               (Topology.bob topo, Byzantine.Withhold_chi_bob);
               (Topology.bob topo, Byzantine.Eager_chi_bob);
               (Topology.escrow topo 0, Byzantine.Thief_escrow);
               (Topology.escrow topo 1, Byzantine.Premature_refund_escrow);
               (Topology.escrow topo 2, Byzantine.No_resolve_escrow);
             ]
           in
           let fault = List.nth candidates (pick mod List.length candidates) in
           let o = run_sync ~hops:3 ~seed ~faults:[ fault ] () in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def1 ~time_bounded:false v)));
  ]

let window_robustness_tests =
  let max_delay : Sim.Network.adversary =
   fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds -> Some bounds.Sim.Network.hi
  in
  let safety_only v =
    (* the safety fragment of Def.1: everything except progress *)
    let r = Props.Payment_props.check_def1 ~time_bounded:false v in
    List.for_all
      (fun name -> Props.Verdict.holds r name)
      [ "ES"; "CS1"; "CS2"; "CS3" ]
  in
  [
    qcheck
      (QCheck.Test.make
         ~name:"shrunken windows can only lose progress, never safety"
         ~count:50
         QCheck.(pair small_int (int_range 1 3))
         (fun (seed, denom) ->
           let cfg =
             {
               (Runner.default_config ~hops:3 ~seed) with
               window_scale = Some (1, denom + 1);
               adversary = Some max_delay;
             }
           in
           let o = Runner.run cfg Runner.Sync_timebound in
           safety_only (Props.Payment_props.view o)));
    Alcotest.test_case "shrunken windows do lose liveness" `Quick (fun () ->
        (* with windows cut to a quarter and worst-case delays, at least one
           seed must fail to pay Bob — the windows were tight by design *)
        let lost = ref false in
        for seed = 1 to 20 do
          let cfg =
            {
              (Runner.default_config ~hops:3 ~seed) with
              window_scale = Some (1, 4);
              adversary = Some max_delay;
            }
          in
          let o = Runner.run cfg Runner.Sync_timebound in
          if not (Props.Payment_props.bob_paid (Props.Payment_props.view o))
          then lost := true
        done;
        check Alcotest.bool "some liveness loss" true !lost);
    qcheck
      (QCheck.Test.make
         ~name:"full asynchrony: the weak protocol stays safe" ~count:25
         QCheck.small_int
         (fun seed ->
           let cfg =
             {
               (Runner.default_config ~hops:2 ~seed) with
               network = Runner.Async { mean = 500; cap = 20_000 };
             }
           in
           let o =
             Runner.run cfg
               (Runner.Weak
                  { Weak_protocol.default_config with patience = 2_000 })
           in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def2 ~patience_sufficient:false v)
           && Props.Payment_props.money_conserved v));
    qcheck
      (QCheck.Test.make
         ~name:"full asynchrony: the time-bounded protocol stays safe"
         ~count:25 QCheck.small_int
         (fun seed ->
           let cfg =
             {
               (Runner.default_config ~hops:2 ~seed) with
               network = Runner.Async { mean = 500; cap = 20_000 };
             }
           in
           let o = Runner.run cfg Runner.Sync_timebound in
           safety_only (Props.Payment_props.view o)));
  ]

let economics_tests =
  [
    qcheck
      (QCheck.Test.make
         ~name:"every connector nets exactly her commission on success"
         ~count:40
         QCheck.(triple (int_range 1 4) (int_range 1 5000) (int_range 0 50))
         (fun (hops, value, commission) ->
           let cfg =
             { (Runner.default_config ~hops ~seed:(value + commission)) with
               value; commission }
           in
           let o = Runner.run cfg Runner.Sync_timebound in
           let v = Props.Payment_props.view o in
           let topo = o.Runner.env.Env.topo in
           Props.Payment_props.bob_paid v
           && v.Props.Payment_props.net (Topology.bob topo) = value
           && v.Props.Payment_props.net (Topology.alice topo)
              = -(value + (commission * (hops - 1)))
           && List.for_all
                (fun pid -> v.Props.Payment_props.net pid = commission)
                (Topology.connectors topo)));
    qcheck
      (QCheck.Test.make
         ~name:"on refund every customer nets exactly zero" ~count:30
         QCheck.(pair (int_range 1 4) (int_range 1 5000))
         (fun (hops, value) ->
           let topo = Topology.create ~hops in
           let cfg =
             { (Runner.default_config ~hops ~seed:value) with
               value;
               faults = [ (Topology.bob topo, Byzantine.Mute) ] }
           in
           let o = Runner.run cfg Runner.Sync_timebound in
           let v = Props.Payment_props.view o in
           List.for_all
             (fun pid -> v.Props.Payment_props.net pid = 0)
             (Topology.customers topo
             |> List.filter (fun p -> p <> Topology.bob topo))));
    Alcotest.test_case "env validates value and commission" `Quick (fun () ->
        let topo = Topology.create ~hops:2 in
        let params = Params.derive (Params.default_input ~hops:2) in
        Alcotest.check_raises "value"
          (Invalid_argument "Env.make: value must be positive") (fun () ->
            ignore (Env.make ~topo ~params ~value:0 ()));
        Alcotest.check_raises "commission"
          (Invalid_argument "Env.make: negative commission") (fun () ->
            ignore (Env.make ~topo ~params ~commission:(-1) ())));
  ]

let multi_fault_tests =
  [
    qcheck
      (QCheck.Test.make
         ~name:"safety survives two simultaneous Byzantine participants"
         ~count:60
         QCheck.(triple small_int (int_bound 100) (int_bound 100))
         (fun (seed, p1, p2) ->
           let topo = Topology.create ~hops:3 in
           let candidates =
             [|
               (Topology.alice topo, Byzantine.Crash_at_start);
               (Topology.customer topo 1, Byzantine.Mute);
               (Topology.customer topo 2, Byzantine.Forge_chi_connector);
               (Topology.bob topo, Byzantine.Withhold_chi_bob);
               (Topology.bob topo, Byzantine.Eager_chi_bob);
               (Topology.escrow topo 0, Byzantine.Thief_escrow);
               (Topology.escrow topo 1, Byzantine.Premature_refund_escrow);
               (Topology.escrow topo 2, Byzantine.No_resolve_escrow);
               (Topology.escrow topo 1, Byzantine.Crash_at_start);
             |]
           in
           let f1 = candidates.(p1 mod Array.length candidates) in
           let f2 = candidates.(p2 mod Array.length candidates) in
           QCheck.assume (fst f1 <> fst f2);
           let o = run_sync ~hops:3 ~seed ~faults:[ f1; f2 ] () in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def1 ~time_bounded:false v)
           && Props.Payment_props.money_conserved v));
    qcheck
      (QCheck.Test.make
         ~name:"weak protocol: safety survives two Byzantine participants"
         ~count:40
         QCheck.(triple small_int (int_bound 100) (int_bound 100))
         (fun (seed, p1, p2) ->
           let topo = Topology.create ~hops:3 in
           let candidates =
             [|
               (Topology.alice topo, Byzantine.Impatient 0);
               (Topology.customer topo 1, Byzantine.Never_deposit);
               (Topology.customer topo 2, Byzantine.Crash_at_start);
               (Topology.bob topo, Byzantine.Impatient 50);
               (Topology.escrow topo 0, Byzantine.False_funded_escrow);
               (Topology.escrow topo 1, Byzantine.Crash_at_start);
               (Topology.escrow topo 2, Byzantine.Mute);
             |]
           in
           let f1 = candidates.(p1 mod Array.length candidates) in
           let f2 = candidates.(p2 mod Array.length candidates) in
           QCheck.assume (fst f1 <> fst f2);
           let o = run_weak ~hops:3 ~seed ~faults:[ f1; f2 ] () in
           let v = Props.Payment_props.view o in
           Props.Verdict.all_hold
             (Props.Payment_props.check_def2 ~patience_sufficient:false v)
           && Props.Payment_props.money_conserved v));
  ]

let () =
  Alcotest.run "protocols"
    [
      ("topology", topology_tests);
      ("params", params_tests);
      ("env", env_tests);
      ("sync_protocol", sync_tests);
      ("htlc", htlc_tests);
      ("weak_protocol", weak_tests);
      ("weak_races", weak_race_tests);
      ("atomic", atomic_tests);
      ("byzantine", byzantine_tests);
      ("runner", runner_tests);
      ("robustness", window_robustness_tests);
      ("multi_fault", multi_fault_tests);
      ("economics", economics_tests);
    ]
