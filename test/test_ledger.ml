(* Tests for the escrow-ledger substrate: assets, multi-asset bags, and
   the per-escrow book with its conservation invariants. *)

open Ledger

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let coin c n = Asset.make ~currency:c ~amount:n

let asset_tests =
  [
    Alcotest.test_case "make rejects negatives" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Asset.make: negative amount")
          (fun () -> ignore (Asset.make ~currency:"x" ~amount:(-1))));
    Alcotest.test_case "add same currency" `Quick (fun () ->
        check Alcotest.bool "sum" true
          (Asset.equal (coin "btc" 8) (Asset.add (coin "btc" 3) (coin "btc" 5))));
    Alcotest.test_case "add rejects currency mismatch" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Asset.add: currency mismatch (btc vs eth)")
          (fun () -> ignore (Asset.add (coin "btc" 1) (coin "eth" 1))));
    Alcotest.test_case "sub cannot go negative" `Quick (fun () ->
        Alcotest.check_raises "neg"
          (Invalid_argument "Asset.sub: would go negative") (fun () ->
            ignore (Asset.sub (coin "btc" 1) (coin "btc" 2))));
    Alcotest.test_case "is_zero" `Quick (fun () ->
        check Alcotest.bool "zero" true (Asset.is_zero (Asset.zero "x"));
        check Alcotest.bool "nonzero" false (Asset.is_zero (coin "x" 1)));
    Alcotest.test_case "compare orders by currency then amount" `Quick (fun () ->
        check Alcotest.bool "a<b" true (Asset.compare (coin "a" 9) (coin "b" 1) < 0);
        check Alcotest.bool "amount" true (Asset.compare (coin "a" 1) (coin "a" 2) < 0));
  ]

let bag_tests =
  [
    Alcotest.test_case "of_list merges currencies" `Quick (fun () ->
        let b = Asset.Bag.of_list [ coin "a" 2; coin "b" 1; coin "a" 3 ] in
        check Alcotest.int "a" 5 (Asset.Bag.amount b "a");
        check Alcotest.int "b" 1 (Asset.Bag.amount b "b"));
    Alcotest.test_case "to_list omits zero entries and sorts" `Quick (fun () ->
        let b = Asset.Bag.of_list [ coin "z" 1; Asset.zero "a"; coin "b" 2 ] in
        check Alcotest.(list string) "currencies" [ "b"; "z" ]
          (List.map (fun (a : Asset.t) -> a.Asset.currency) (Asset.Bag.to_list b)));
    Alcotest.test_case "sub success and failure" `Quick (fun () ->
        let b = Asset.Bag.of_list [ coin "a" 5 ] in
        (match Asset.Bag.sub b (coin "a" 3) with
        | Ok b' -> check Alcotest.int "left" 2 (Asset.Bag.amount b' "a")
        | Error e -> Alcotest.fail e);
        check Alcotest.bool "too much" true
          (Result.is_error (Asset.Bag.sub b (coin "a" 6))));
    Alcotest.test_case "geq is pointwise" `Quick (fun () ->
        let big = Asset.Bag.of_list [ coin "a" 5; coin "b" 1 ] in
        let small = Asset.Bag.of_list [ coin "a" 2 ] in
        check Alcotest.bool "big>=small" true (Asset.Bag.geq big small);
        check Alcotest.bool "small>=big" false (Asset.Bag.geq small big));
    Alcotest.test_case "empty bag behaviour" `Quick (fun () ->
        check Alcotest.bool "empty" true (Asset.Bag.is_empty Asset.Bag.empty);
        check Alcotest.bool "geq empty" true
          (Asset.Bag.geq Asset.Bag.empty Asset.Bag.empty));
    Alcotest.test_case "diff" `Quick (fun () ->
        let x = Asset.Bag.of_list [ coin "a" 5; coin "b" 2 ] in
        let y = Asset.Bag.of_list [ coin "a" 3 ] in
        match Asset.Bag.diff x y with
        | Ok d ->
            check Alcotest.int "a" 2 (Asset.Bag.amount d "a");
            check Alcotest.int "b" 2 (Asset.Bag.amount d "b")
        | Error e -> Alcotest.fail e);
    qcheck
      (QCheck.Test.make ~name:"union totals are additive"
         QCheck.(pair (list (pair (int_range 0 3) (int_bound 100)))
                   (list (pair (int_range 0 3) (int_bound 100))))
         (fun (l1, l2) ->
           let mk l =
             Asset.Bag.of_list
               (List.map (fun (c, n) -> coin (string_of_int c) n) l)
           in
           let b1 = mk l1 and b2 = mk l2 in
           let u = Asset.Bag.union b1 b2 in
           List.for_all
             (fun c ->
               Asset.Bag.amount u c = Asset.Bag.amount b1 c + Asset.Bag.amount b2 c)
             [ "0"; "1"; "2"; "3" ]));
    qcheck
      (QCheck.Test.make ~name:"add then sub is identity"
         QCheck.(pair (int_range 0 3) (int_bound 100))
         (fun (c, n) ->
           let b = Asset.Bag.of_list [ coin "seed" 7 ] in
           let a = coin (string_of_int c) n in
           match Asset.Bag.sub (Asset.Bag.add b a) a with
           | Ok b' -> Asset.Bag.equal b b'
           | Error _ -> false));
  ]

let book () =
  let b = Book.create ~currency:"cur" in
  Book.open_account b ~owner:0 ~balance:100;
  Book.open_account b ~owner:1 ~balance:50;
  Book.open_account b ~owner:2 ~balance:0;
  b

let ok = function Ok v -> v | Error _ -> Alcotest.fail "unexpected error"

let book_tests =
  [
    Alcotest.test_case "opening balances" `Quick (fun () ->
        let b = book () in
        check Alcotest.int "0" 100 (Book.balance b 0);
        check Alcotest.int "unknown" 0 (Book.balance b 99);
        check Alcotest.int "supply" 150 (Book.total_supply b));
    Alcotest.test_case "idempotent reopen with same balance" `Quick (fun () ->
        let b = book () in
        Book.open_account b ~owner:0 ~balance:100;
        check Alcotest.int "unchanged" 100 (Book.balance b 0));
    Alcotest.test_case "reopen with different balance raises" `Quick (fun () ->
        let b = book () in
        Alcotest.check_raises "dup"
          (Invalid_argument "Book.open_account: account exists with other balance")
          (fun () -> Book.open_account b ~owner:0 ~balance:7));
    Alcotest.test_case "transfer moves value" `Quick (fun () ->
        let b = book () in
        ok (Book.transfer b ~src:0 ~dst:1 ~amount:30);
        check Alcotest.int "src" 70 (Book.balance b 0);
        check Alcotest.int "dst" 80 (Book.balance b 1));
    Alcotest.test_case "transfer rejects insufficient funds" `Quick (fun () ->
        let b = book () in
        match Book.transfer b ~src:1 ~dst:0 ~amount:51 with
        | Error (Book.Insufficient_funds { account = 1; has = 50; needs = 51 }) -> ()
        | _ -> Alcotest.fail "expected insufficient funds");
    Alcotest.test_case "transfer rejects unknown accounts" `Quick (fun () ->
        let b = book () in
        check Alcotest.bool "src" true
          (Result.is_error (Book.transfer b ~src:9 ~dst:0 ~amount:1));
        check Alcotest.bool "dst" true
          (Result.is_error (Book.transfer b ~src:0 ~dst:9 ~amount:1)));
    Alcotest.test_case "deposit moves value into the pool" `Quick (fun () ->
        let b = book () in
        let dep = ok (Book.deposit b ~from_:0 ~amount:40) in
        check Alcotest.int "balance" 60 (Book.balance b 0);
        check Alcotest.int "pool" 40 (Book.pool_total b);
        check Alcotest.(option int) "amount" (Some 40) (Book.deposit_amount b dep);
        check Alcotest.bool "held" true (Book.deposit_status b dep = Some Book.Held));
    Alcotest.test_case "release pays the target" `Quick (fun () ->
        let b = book () in
        let dep = ok (Book.deposit b ~from_:0 ~amount:40) in
        ok (Book.release b dep ~to_:1);
        check Alcotest.int "target" 90 (Book.balance b 1);
        check Alcotest.int "pool" 0 (Book.pool_total b);
        check Alcotest.bool "status" true
          (Book.deposit_status b dep = Some (Book.Released 1)));
    Alcotest.test_case "refund restores the depositor" `Quick (fun () ->
        let b = book () in
        let dep = ok (Book.deposit b ~from_:0 ~amount:40) in
        ok (Book.refund b dep);
        check Alcotest.int "restored" 100 (Book.balance b 0);
        check Alcotest.bool "status" true
          (Book.deposit_status b dep = Some Book.Refunded));
    Alcotest.test_case "double resolution is rejected" `Quick (fun () ->
        let b = book () in
        let dep = ok (Book.deposit b ~from_:0 ~amount:40) in
        ok (Book.release b dep ~to_:1);
        (match Book.refund b dep with
        | Error (Book.Already_resolved _) -> ()
        | _ -> Alcotest.fail "expected Already_resolved");
        match Book.release b dep ~to_:2 with
        | Error (Book.Already_resolved _) -> ()
        | _ -> Alcotest.fail "expected Already_resolved");
    Alcotest.test_case "unknown deposit is rejected" `Quick (fun () ->
        let b = book () in
        match Book.refund b 77 with
        | Error (Book.Unknown_deposit 77) -> ()
        | _ -> Alcotest.fail "expected Unknown_deposit");
    Alcotest.test_case "release to unknown account is rejected" `Quick (fun () ->
        let b = book () in
        let dep = ok (Book.deposit b ~from_:0 ~amount:10) in
        check Alcotest.bool "err" true (Result.is_error (Book.release b dep ~to_:9));
        (* deposit must remain resolvable *)
        ok (Book.refund b dep));
    Alcotest.test_case "audit passes on a fresh book" `Quick (fun () ->
        check Alcotest.bool "ok" true (Result.is_ok (Book.audit (book ()))));
    Alcotest.test_case "journal records every successful operation" `Quick
      (fun () ->
        let b = book () in
        let before = Book.journal_length b in
        ok (Book.transfer b ~src:0 ~dst:1 ~amount:1);
        let dep = ok (Book.deposit b ~from_:0 ~amount:2) in
        ok (Book.release b dep ~to_:2);
        check Alcotest.int "three more" (before + 3) (Book.journal_length b);
        (* a failed operation leaves no journal entry *)
        ignore (Book.transfer b ~src:1 ~dst:0 ~amount:10_000);
        check Alcotest.int "unchanged" (before + 3) (Book.journal_length b));
    Alcotest.test_case "error rendering is informative" `Quick (fun () ->
        let s e = Fmt.str "%a" Book.pp_error e in
        check Alcotest.string "unknown" "unknown account 9" (s (Book.Unknown_account 9));
        check Alcotest.string "funds" "account 1 has 5, needs 7"
          (s (Book.Insufficient_funds { account = 1; has = 5; needs = 7 }));
        check Alcotest.string "dep" "unknown deposit 3" (s (Book.Unknown_deposit 3));
        check Alcotest.string "resolved" "deposit 3 already resolved"
          (s (Book.Already_resolved 3)));
    Alcotest.test_case "book and bag rendering smoke" `Quick (fun () ->
        let b = book () in
        let rendered = Fmt.str "%a" Book.pp b in
        check Alcotest.bool "mentions currency" true (String.length rendered > 5);
        let bag = Asset.Bag.of_list [ coin "btc" 2; coin "eth" 1 ] in
        let rendered_bag = Fmt.str "%a" Asset.Bag.pp bag in
        check Alcotest.bool "mentions btc" true
          (let n = String.length rendered_bag in
           let rec go i =
             i + 3 <= n && (String.sub rendered_bag i 3 = "btc" || go (i + 1))
           in
           go 0);
        check Alcotest.string "empty bag" "∅" (Fmt.str "%a" Asset.Bag.pp Asset.Bag.empty));
    Alcotest.test_case "negative amounts are rejected outright" `Quick
      (fun () ->
        let b = book () in
        Alcotest.check_raises "transfer"
          (Invalid_argument "Book.transfer: negative amount") (fun () ->
            ignore (Book.transfer b ~src:0 ~dst:1 ~amount:(-1)));
        Alcotest.check_raises "deposit"
          (Invalid_argument "Book.deposit: negative amount") (fun () ->
            ignore (Book.deposit b ~from_:0 ~amount:(-1))));
    qcheck
      (QCheck.Test.make ~name:"conservation under random op sequences"
         ~count:200
         QCheck.(list (pair (int_range 0 4) (pair (int_range 0 2) (int_bound 60))))
         (fun ops ->
           let b = book () in
           let deposits = ref [] in
           List.iter
             (fun (op, (acct, amount)) ->
               match op with
               | 0 -> ignore (Book.transfer b ~src:acct ~dst:((acct + 1) mod 3) ~amount)
               | 1 -> (
                   match Book.deposit b ~from_:acct ~amount with
                   | Ok d -> deposits := d :: !deposits
                   | Error _ -> ())
               | 2 -> (
                   match !deposits with
                   | d :: rest when amount mod 2 = 0 ->
                       ignore (Book.release b d ~to_:acct);
                       deposits := rest
                   | _ -> ())
               | 3 -> (
                   match !deposits with
                   | d :: rest ->
                       ignore (Book.refund b d);
                       deposits := rest
                   | [] -> ())
               | _ -> ignore (Book.refund b amount))
             ops;
           Book.total_supply b = 150 && Result.is_ok (Book.audit b)));
  ]

(* ------------------- Book property suite (qcheck) --------------------- *)

(* A symbolic op language over the three fixed accounts, driven by random
   programs. [run_op] executes one op and returns its result; the suite
   checks the invariants the traffic subsystem leans on: conservation
   under any interleaving, at-most-once deposit resolution, and failures
   that leave the book exactly as it was. *)
type book_op =
  | Transfer of int * int * int
  | Deposit of int * int
  | Release of int * int  (** nth live deposit, recipient *)
  | Refund of int
  | Resolve_again of int  (** re-resolve the nth {e resolved} deposit *)
  | Ghost_account of int * int  (** op against an unopened account *)
  | Ghost_deposit of int  (** refund of a never-issued deposit id *)

let book_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map3 (fun s d a -> Transfer (s, d, a)) (int_bound 2) (int_bound 2) (int_bound 80));
        (4, map2 (fun f a -> Deposit (f, a)) (int_bound 2) (int_bound 80));
        (3, map2 (fun n to_ -> Release (n, to_)) (int_bound 4) (int_bound 2));
        (3, map (fun n -> Refund n) (int_bound 4));
        (2, map (fun n -> Resolve_again n) (int_bound 4));
        (1, map2 (fun a amt -> Ghost_account (a, amt)) (int_range 7 9) (int_bound 80));
        (1, map (fun d -> Ghost_deposit (d + 10_000)) (int_bound 5));
      ])

let book_op_print = function
  | Transfer (s, d, a) -> Printf.sprintf "transfer %d->%d %d" s d a
  | Deposit (f, a) -> Printf.sprintf "deposit %d %d" f a
  | Release (n, t) -> Printf.sprintf "release #%d ->%d" n t
  | Refund n -> Printf.sprintf "refund #%d" n
  | Resolve_again n -> Printf.sprintf "re-resolve #%d" n
  | Ghost_account (a, amt) -> Printf.sprintf "ghost-account %d %d" a amt
  | Ghost_deposit d -> Printf.sprintf "ghost-deposit %d" d

let book_ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map book_op_print l))
    QCheck.Gen.(list_size (int_bound 40) book_op_gen)

let nth_opt l n = List.nth_opt l n

let book_prop_tests =
  let snapshot b =
    (Book.accounts b, Book.pool_total b, Book.total_supply b)
  in
  (* Execute one op. Returns [`Failed_dirty] if the op errored yet the
     book changed, [`Double_resolution] if a resolved deposit resolved
     again, [`Ok] otherwise. [live]/[resolved] track deposit ids. *)
  let step b live resolved op =
    let pre = snapshot b in
    let result =
      match op with
      | Transfer (s, d, a) -> Book.transfer b ~src:s ~dst:d ~amount:a
      | Deposit (f, a) -> (
          match Book.deposit b ~from_:f ~amount:a with
          | Ok dep ->
              live := dep :: !live;
              Ok ()
          | Error e -> Error e)
      | Release (n, to_) -> (
          match nth_opt !live n with
          | None -> Ok ()
          | Some dep -> (
              match Book.release b dep ~to_ with
              | Ok () ->
                  live := List.filter (fun d -> d <> dep) !live;
                  resolved := dep :: !resolved;
                  Ok ()
              | Error e -> Error e))
      | Refund n -> (
          match nth_opt !live n with
          | None -> Ok ()
          | Some dep -> (
              match Book.refund b dep with
              | Ok () ->
                  live := List.filter (fun d -> d <> dep) !live;
                  resolved := dep :: !resolved;
                  Ok ()
              | Error e -> Error e))
      | Resolve_again n -> (
          match nth_opt !resolved n with
          | None -> Ok ()
          | Some dep -> (
              match Book.release b dep ~to_:0 with
              | Ok () -> raise Exit (* double resolution *)
              | Error e -> Error e))
      | Ghost_account (a, amt) ->
          Result.map (fun _ -> ()) (Book.deposit b ~from_:a ~amount:amt)
      | Ghost_deposit d -> Book.refund b d
    in
    match result with
    | Ok () -> `Ok
    | Error _ -> if snapshot b = pre then `Ok else `Failed_dirty op
  in
  let run_program ops =
    let b = book () in
    let live = ref [] and resolved = ref [] in
    let dirty =
      List.filter_map
        (fun op ->
          match step b live resolved op with
          | `Ok -> None
          | `Failed_dirty op -> Some op)
        ops
    in
    (b, dirty)
  in
  [
    qcheck
      (QCheck.Test.make ~name:"audit and total supply hold under any program"
         ~count:300 book_ops_arb (fun ops ->
           let b, _ = run_program ops in
           Book.total_supply b = 150
           && Result.is_ok (Book.audit b)
           && List.for_all (fun (_, bal) -> bal >= 0) (Book.accounts b)));
    qcheck
      (QCheck.Test.make ~name:"failed operations leave the book untouched"
         ~count:300 book_ops_arb (fun ops ->
           let _, dirty = run_program ops in
           match dirty with
           | [] -> true
           | op :: _ ->
               QCheck.Test.fail_reportf "book changed on failed %s"
                 (book_op_print op)));
    qcheck
      (QCheck.Test.make ~name:"a deposit resolves at most once" ~count:300
         book_ops_arb (fun ops ->
           (* [step] raises Exit if a second resolution of the same deposit
              ever succeeds; finishing the program is the property *)
           match run_program ops with _ -> true | exception Exit -> false));
    Alcotest.test_case "every error constructor is reachable" `Quick (fun () ->
        let b = book () in
        (match Book.transfer b ~src:9 ~dst:0 ~amount:1 with
        | Error (Book.Unknown_account 9) -> ()
        | _ -> Alcotest.fail "expected Unknown_account");
        (match Book.transfer b ~src:2 ~dst:0 ~amount:1 with
        | Error (Book.Insufficient_funds { account = 2; has = 0; needs = 1 }) -> ()
        | _ -> Alcotest.fail "expected Insufficient_funds");
        (match Book.refund b 777 with
        | Error (Book.Unknown_deposit 777) -> ()
        | _ -> Alcotest.fail "expected Unknown_deposit");
        let dep = ok (Book.deposit b ~from_:0 ~amount:5) in
        ok (Book.release b dep ~to_:1);
        (match Book.refund b dep with
        | Error (Book.Already_resolved d) when d = dep -> ()
        | _ -> Alcotest.fail "expected Already_resolved"));
  ]

let () =
  Alcotest.run "ledger"
    [
      ("asset", asset_tests);
      ("bag", bag_tests);
      ("book", book_tests);
      ("book_props", book_prop_tests);
    ]
