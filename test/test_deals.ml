(* Tests for the cross-chain deals library (§5): the deal model, the HLS
   acceptability predicate, the two commit protocols, and their property
   monitors. *)

open Deals
module Asset = Ledger.Asset

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let coin c n = Asset.make ~currency:c ~amount:n

let model_tests =
  [
    Alcotest.test_case "make validates its input" `Quick (fun () ->
        Alcotest.check_raises "range" (Invalid_argument "Deal.make: party out of range")
          (fun () -> ignore (Deal.make ~parties:2 ~transfers:[ (0, 5, coin "a" 1) ]));
        Alcotest.check_raises "self" (Invalid_argument "Deal.make: self-transfer")
          (fun () -> ignore (Deal.make ~parties:2 ~transfers:[ (0, 0, coin "a" 1) ]));
        Alcotest.check_raises "zero" (Invalid_argument "Deal.make: zero asset")
          (fun () -> ignore (Deal.make ~parties:2 ~transfers:[ (0, 1, coin "a" 0) ]));
        Alcotest.check_raises "dup" (Invalid_argument "Deal.make: duplicate arc")
          (fun () ->
            ignore
              (Deal.make ~parties:2
                 ~transfers:[ (0, 1, coin "a" 1); (0, 1, coin "b" 1) ])));
    Alcotest.test_case "strong connectivity" `Quick (fun () ->
        check Alcotest.bool "swap" true (Deal.strongly_connected (Deal.two_party_swap ()));
        check Alcotest.bool "cycle" true (Deal.strongly_connected (Deal.three_cycle ()));
        check Alcotest.bool "dag" false (Deal.strongly_connected (Deal.broker_dag ())));
    Alcotest.test_case "well-formedness needs arcs" `Quick (fun () ->
        check Alcotest.bool "no arcs" false
          (Deal.well_formed (Deal.make ~parties:1 ~transfers:[])));
    Alcotest.test_case "diameter" `Quick (fun () ->
        check Alcotest.int "swap" 1 (Deal.diameter (Deal.two_party_swap ()));
        check Alcotest.int "cycle" 2 (Deal.diameter (Deal.three_cycle ()));
        (* dag: some pairs unreachable -> penalised with [parties] *)
        check Alcotest.int "dag" 3 (Deal.diameter (Deal.broker_dag ())));
    Alcotest.test_case "incoming/outgoing/transfer" `Quick (fun () ->
        let d = Deal.three_cycle () in
        check Alcotest.int "out 0" 1 (List.length (Deal.outgoing d 0));
        check Alcotest.int "in 0" 1 (List.length (Deal.incoming d 0));
        check Alcotest.bool "arc 0->1" true (Deal.transfer d ~from_:0 ~to_:1 <> None);
        check Alcotest.bool "no arc 1->0" true (Deal.transfer d ~from_:1 ~to_:0 = None));
    Alcotest.test_case "expected gain and loss" `Quick (fun () ->
        let d = Deal.two_party_swap () in
        check Alcotest.int "p0 gains coinB" 3
          (Asset.Bag.amount (Deal.expected_gain d 0) "coinB");
        check Alcotest.int "p0 loses coinA" 5
          (Asset.Bag.amount (Deal.expected_loss d 0) "coinA"));
  ]

let acceptability_tests =
  let d = Deal.two_party_swap () in
  [
    Alcotest.test_case "full execution is acceptable" `Quick (fun () ->
        check Alcotest.bool "full" true
          (Deal.acceptable d 0
             ~gained:(Asset.Bag.of_list [ coin "coinB" 3 ])
             ~lost:(Asset.Bag.of_list [ coin "coinA" 5 ])));
    Alcotest.test_case "losing nothing is acceptable" `Quick (fun () ->
        check Alcotest.bool "nothing" true
          (Deal.acceptable d 0 ~gained:Asset.Bag.empty ~lost:Asset.Bag.empty));
    Alcotest.test_case "gaining without losing is acceptable" `Quick (fun () ->
        check Alcotest.bool "windfall" true
          (Deal.acceptable d 0
             ~gained:(Asset.Bag.of_list [ coin "coinB" 3 ])
             ~lost:Asset.Bag.empty));
    Alcotest.test_case "losing without gaining is unacceptable" `Quick (fun () ->
        check Alcotest.bool "robbed" false
          (Deal.acceptable d 0 ~gained:Asset.Bag.empty
             ~lost:(Asset.Bag.of_list [ coin "coinA" 5 ])));
    Alcotest.test_case "partial gain with full loss is unacceptable" `Quick
      (fun () ->
        check Alcotest.bool "short-changed" false
          (Deal.acceptable d 0
             ~gained:(Asset.Bag.of_list [ coin "coinB" 2 ])
             ~lost:(Asset.Bag.of_list [ coin "coinA" 5 ])));
    Alcotest.test_case "over-delivery on the gain side is acceptable" `Quick
      (fun () ->
        check Alcotest.bool "bonus" true
          (Deal.acceptable d 0
             ~gained:(Asset.Bag.of_list [ coin "coinB" 4 ])
             ~lost:(Asset.Bag.of_list [ coin "coinA" 5 ])));
  ]

let run ?(compliant = [||]) ?(gst = None) ?(seed = 11) deal protocol =
  let cfg = { (Deal_runner.default_config deal protocol) with gst; seed } in
  let cfg =
    if Array.length compliant = 0 then cfg
    else { cfg with Deal_runner.compliant }
  in
  Deal_runner.run cfg

let protocol_tests =
  [
    Alcotest.test_case "swap completes under timelock" `Quick (fun () ->
        let o = run (Deal.two_party_swap ()) Deal_runner.Timelock in
        check Alcotest.bool "all" true (Deal_props.all_hold (Deal_props.all o));
        check Alcotest.int "p0 got coinB" 3
          (Asset.Bag.amount (Deal_runner.gained o 0) "coinB");
        check Alcotest.int "p1 got coinA" 5
          (Asset.Bag.amount (Deal_runner.gained o 1) "coinA"));
    Alcotest.test_case "cycle completes under timelock" `Quick (fun () ->
        let o = run (Deal.three_cycle ()) Deal_runner.Timelock in
        check Alcotest.bool "all" true (Deal_props.all_hold (Deal_props.all o)));
    Alcotest.test_case "cbc completes under partial synchrony" `Quick (fun () ->
        let o = run ~gst:(Some 2_000) (Deal.three_cycle ()) Deal_runner.Cbc in
        check Alcotest.bool "all" true (Deal_props.all_hold (Deal_props.all o)));
    Alcotest.test_case "all-compliant broker DAG completes via the reveal \
                        cascade" `Quick (fun () ->
        let o = run (Deal.broker_dag ()) Deal_runner.Timelock in
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
        (* the broker recovers the full vote set from the on-chain claim of
           her outgoing leg and redeems her incoming one *)
        check Alcotest.int "broker got coinA" 5
          (Asset.Bag.amount (Deal_runner.gained o 1) "coinA"));
    Alcotest.test_case "disconnected deal refunds safely but is not live"
      `Quick (fun () ->
        let o = run (Deal.disconnected_pair ()) Deal_runner.Timelock in
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
        check Alcotest.bool "terminates" true
          (Deal_props.termination o).Deal_props.holds;
        check Alcotest.bool "not live" false
          (Deal_props.strong_liveness o).Deal_props.holds);
    Alcotest.test_case "broker DAG is safe under cbc" `Quick (fun () ->
        let o = run (Deal.broker_dag ()) Deal_runner.Cbc in
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds);
    Alcotest.test_case "a silent party aborts the timelock deal harmlessly"
      `Quick (fun () ->
        let o =
          run ~compliant:[| true; false; true |] (Deal.three_cycle ())
            Deal_runner.Timelock
        in
        check Alcotest.bool "safety" true (Deal_props.safety o).Deal_props.holds;
        check Alcotest.bool "termination" true
          (Deal_props.termination o).Deal_props.holds;
        (* nothing moved: every compliant deposit refunded *)
        check Alcotest.bool "p0 kept coinA" true
          (Asset.Bag.is_empty (Deal_runner.lost o 0)));
    Alcotest.test_case "a silent party aborts the cbc deal via patience" `Quick
      (fun () ->
        let o =
          run ~compliant:[| true; false; true |] (Deal.three_cycle ())
            Deal_runner.Cbc
        in
        check Alcotest.bool "safety" true (Deal_props.safety o).Deal_props.holds;
        check Alcotest.bool "termination" true
          (Deal_props.termination o).Deal_props.holds;
        (* the certifier must have issued an abort *)
        let aborted =
          List.exists
            (fun (_, _, ob) ->
              match ob with Dobs.Cb_decided { commit = false } -> true | _ -> false)
            (Sim.Trace.observations o.Deal_runner.trace)
        in
        check Alcotest.bool "cb aborted" true aborted);
    Alcotest.test_case "books audit after every run" `Quick (fun () ->
        List.iter
          (fun (deal, proto) ->
            let o = run deal proto in
            Array.iter
              (fun b ->
                check Alcotest.bool "audit" true (Result.is_ok (Ledger.Book.audit b)))
              o.Deal_runner.books)
          [
            (Deal.two_party_swap (), Deal_runner.Timelock);
            (Deal.three_cycle (), Deal_runner.Cbc);
            (Deal.broker_dag (), Deal_runner.Timelock);
          ]);
    Alcotest.test_case "compliant-size mismatch raises" `Quick (fun () ->
        Alcotest.check_raises "size"
          (Invalid_argument "Deal_runner.run: compliant array size mismatch")
          (fun () ->
            ignore
              (run ~compliant:[| true |] (Deal.two_party_swap ())
                 Deal_runner.Timelock)));
  ]

(* random well-formed deals: cycles with random extra chords *)
let random_deal_gen =
  QCheck.Gen.(
    let* parties = int_range 2 5 in
    let* extra = int_range 0 3 in
    let* seed = int_range 0 10_000 in
    return (parties, extra, seed))

let random_deal (parties, extra, seed) =
  let rng = Sim.Rng.create ~seed in
  let base =
    List.init parties (fun i ->
        (i, (i + 1) mod parties, coin (Printf.sprintf "c%d" i) (1 + Sim.Rng.int rng 9)))
  in
  let chords =
    List.filteri
      (fun k _ -> k < extra)
      (List.init 10 (fun k ->
           let from_ = Sim.Rng.int rng parties in
           let to_ = (from_ + 1 + Sim.Rng.int rng (parties - 1)) mod parties in
           (from_, to_, coin (Printf.sprintf "x%d" k) (1 + Sim.Rng.int rng 9))))
  in
  let seen = Hashtbl.create 8 in
  let transfers =
    List.filter
      (fun (f, t, _) ->
        if f = t || Hashtbl.mem seen (f, t) then false
        else begin
          Hashtbl.add seen (f, t) ();
          true
        end)
      (base @ chords)
  in
  Deal.make ~parties ~transfers

let property_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"well-formed deals satisfy all HLS properties"
         ~count:40
         (QCheck.make random_deal_gen)
         (fun spec ->
           let deal = random_deal spec in
           QCheck.assume (Deal.well_formed deal);
           let o = run deal Deal_runner.Timelock in
           Deal_props.all_hold (Deal_props.all o)));
    qcheck
      (QCheck.Test.make ~name:"termination holds on every deal, even ill-formed"
         ~count:40
         (QCheck.make random_deal_gen)
         (fun spec ->
           let deal = random_deal spec in
           let o = run deal Deal_runner.Timelock in
           (Deal_props.termination o).Deal_props.holds));
    qcheck
      (QCheck.Test.make ~name:"cbc is safe on every deal"
         ~count:30
         (QCheck.make random_deal_gen)
         (fun spec ->
           let deal = random_deal spec in
           let o = run deal Deal_runner.Cbc in
           (Deal_props.safety o).Deal_props.holds));
  ]

let byz_run ?(deal = Deal.three_cycle ()) ?(proto = Deal_runner.Timelock)
    ?(seed = 11) faults =
  let cfg = { (Deal_runner.default_config deal proto) with seed } in
  Deal_byzantine.run_with_faults cfg ~faults

let byzantine_tests =
  [
    Alcotest.test_case "freeloader gains nothing and hurts nobody" `Quick
      (fun () ->
        let o = byz_run [ (1, Deal_byzantine.Freeloader) ] in
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
        check Alcotest.bool "freeloader empty-handed" true
          (Asset.Bag.is_empty (Deal_runner.gained o 1)));
    Alcotest.test_case "forged votes never redeem a leg" `Quick (fun () ->
        let o = byz_run [ (1, Deal_byzantine.Forged_votes) ] in
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
        check Alcotest.bool "nothing paid to the forger" true
          (Asset.Bag.is_empty (Deal_runner.gained o 1));
        (* the escrow logged the rejection *)
        check Alcotest.bool "rejected" true
          (List.exists
             (fun (_, _, ob) ->
               match ob with Dobs.Rejected _ -> true | _ -> false)
             (Sim.Trace.observations o.Deal_runner.trace)));
    Alcotest.test_case "premature claims are rejected" `Quick (fun () ->
        let o = byz_run [ (1, Deal_byzantine.Premature_claim) ] in
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
        check Alcotest.bool "nothing gained" true
          (Asset.Bag.is_empty (Deal_runner.gained o 1)));
    Alcotest.test_case "double claims settle exactly once" `Quick (fun () ->
        let o = byz_run [ (1, Deal_byzantine.Double_claim) ] in
        (* the double claimer plays an otherwise honest game, so the deal
           completes; the ledger audit proves nothing was paid twice *)
        check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
        Array.iter
          (fun b ->
            check Alcotest.bool "audit" true (Result.is_ok (Ledger.Book.audit b)))
          o.Deal_runner.books;
        check Alcotest.int "paid once" 4
          (Asset.Bag.amount (Deal_runner.gained o 2) "coinB"));
    Alcotest.test_case "vote hoarding cannot break a well-formed deal" `Quick
      (fun () ->
        for seed = 1 to 10 do
          let o = byz_run ~seed [ (1, Deal_byzantine.Vote_hoarder) ] in
          check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds;
          check Alcotest.bool "terminates" true
            (Deal_props.termination o).Deal_props.holds
        done);
    Alcotest.test_case "lazy claiming is harmless in a strongly connected \
                        deal" `Quick (fun () ->
        for seed = 1 to 15 do
          let o = byz_run ~seed [ (2, Deal_byzantine.Lazy_claim) ] in
          check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds
        done);
    Alcotest.test_case "lazy claiming breaks the broker DAG's safety" `Quick
      (fun () ->
        let violated = ref 0 in
        for seed = 1 to 20 do
          let o =
            byz_run ~deal:(Deal.broker_dag ()) ~seed
              [ (2, Deal_byzantine.Lazy_claim) ]
          in
          if not (Deal_props.safety o).Deal_props.holds then incr violated
        done;
        check Alcotest.bool "some corner lost" true (!violated > 0));
    Alcotest.test_case "cbc keeps even the lazy broker DAG safe" `Quick
      (fun () ->
        for seed = 1 to 10 do
          let o =
            byz_run ~deal:(Deal.broker_dag ()) ~proto:Deal_runner.Cbc ~seed
              [ (2, Deal_byzantine.Lazy_claim) ]
          in
          check Alcotest.bool "safe" true (Deal_props.safety o).Deal_props.holds
        done);
  ]

let () =
  Alcotest.run "deals"
    [
      ("model", model_tests);
      ("acceptability", acceptability_tests);
      ("protocols", protocol_tests);
      ("byzantine", byzantine_tests);
      ("random", property_tests);
    ]
