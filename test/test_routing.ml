(* Tests for the routing subsystem: topology grammar, path selection under
   liquidity, payment splitting, rebalancing, and the routed load path's
   end-to-end guarantees (conservation, determinism, multi-path gain). *)

open Routing

let qcheck = QCheck_alcotest.to_alcotest

let topo_of s =
  match Topology.of_string s with Ok t -> t | Error e -> Alcotest.fail e

let plan_of s =
  match Faults.Fault_plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let full_avail topo e = Topology.capacity topo.Topology.edges.(e)

(* ------------------------------ topology ------------------------------- *)

let random_topo seed = Topology.random (Sim.Rng.create ~seed)

let topo_arb =
  QCheck.make
    ~print:(fun seed -> Topology.to_string (random_topo seed))
    QCheck.Gen.(int_bound 10_000)

let topology_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"grammar round-trips up to normalization"
         ~count:500 topo_arb (fun seed ->
           let t = random_topo seed in
           match Topology.of_string (Topology.to_string t) with
           | Ok t' ->
               Topology.to_string t' = Topology.to_string (Topology.normalize t)
           | Error e ->
               QCheck.Test.fail_reportf "%s failed to re-parse: %s"
                 (Topology.to_string t) e));
    qcheck
      (QCheck.Test.make ~name:"random topologies validate" ~count:500 topo_arb
         (fun seed ->
           match Topology.validate (random_topo seed) with
           | Ok () -> true
           | Error e ->
               QCheck.Test.fail_reportf "%s invalid: %s"
                 (Topology.to_string (random_topo seed))
                 e));
    Alcotest.test_case "sugar families expand to canonical graphs" `Quick
      (fun () ->
        let canon s = Topology.to_string (topo_of s) in
        Alcotest.(check string)
          "linear:2" "graph:3;0>1:0:10,1>2:0:10" (canon "linear:2");
        Alcotest.(check string)
          "linear honors liq/comm" "graph:3;0>1:500:7,1>2:500:7"
          (canon "linear:2:500:7");
        (* every family re-parses to itself: to_string is a fixpoint *)
        List.iter
          (fun s ->
            let c = canon s in
            Alcotest.(check string) (s ^ " canonical fixpoint") c (canon c))
          [ "hub:4"; "er:6:3:9"; "sf:5:2:3"; "hub:3:900:5" ]);
    Alcotest.test_case "bad specs are rejected with reasons" `Quick (fun () ->
        List.iter
          (fun s ->
            match Topology.of_string s with
            | Ok _ -> Alcotest.failf "%S should not parse" s
            | Error _ -> ())
          [
            "";
            "graph:1;0>0:0:0";
            "graph:3;0>1:0:10";
            (* sink unreachable *)
            "graph:3;0>1:0:10,0>1:5:5,1>2:0:10";
            (* duplicate edge *)
            "graph:3;0>1:-4:10,1>2:0:10";
            "ring:4";
            "linear:0";
          ]);
    Alcotest.test_case "liquidity histogram buckets by decade" `Quick
      (fun () ->
        let t = topo_of "graph:3;0>1:0:1,0>2:5:1,1>2:500:1,2>1:700:1" in
        Alcotest.(check (list (pair string int)))
          "buckets"
          [ ("unbounded", 1); ("1-9", 1); ("100-999", 2) ]
          (Topology.liquidity_histogram t));
  ]

(* ------------------------------- router -------------------------------- *)

(* random bounded-liquidity topology + value the graph can plausibly carry *)
let route_case_arb =
  QCheck.make
    ~print:(fun (seed, value, max_splits) ->
      Printf.sprintf "%s value=%d splits=%d"
        (Topology.to_string (random_topo seed))
        value max_splits)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 1 5_000) (int_range 1 4))

let router_tests =
  [
    qcheck
      (QCheck.Test.make
         ~name:"splits sum exactly, stay disjoint, respect liquidity"
         ~count:500 route_case_arb (fun (seed, value, max_splits) ->
           let topo = random_topo seed in
           let router = Router.create topo in
           match
             Router.route router ~avail:(full_avail topo) ~value ~max_splits
           with
           | Error _ -> true (* refusal is always sound *)
           | Ok splits ->
               let total =
                 List.fold_left (fun a s -> a + s.Router.value) 0 splits
               in
               if total <> value then
                 QCheck.Test.fail_reportf "split sum %d <> value %d" total
                   value;
               if List.exists (fun s -> s.Router.value < 1) splits then
                 QCheck.Test.fail_report "non-positive split";
               if List.length splits > max_splits then
                 QCheck.Test.fail_report "too many splits";
               let used = Hashtbl.create 16 in
               List.iter
                 (fun s ->
                   let amounts =
                     Router.leg_amounts topo ~path:s.Router.path
                       ~value:s.Router.value
                   in
                   List.iteri
                     (fun i e ->
                       if Hashtbl.mem used e then
                         QCheck.Test.fail_reportf "edge %d reused" e;
                       Hashtbl.add used e ();
                       (* the reservation the load scheduler would make
                          never exceeds what the edge actually holds *)
                       if amounts.(i) > full_avail topo e then
                         QCheck.Test.fail_reportf
                           "edge %d: reserve %d > liquidity %d" e amounts.(i)
                           (full_avail topo e))
                     s.Router.path)
                 splits;
               true));
    qcheck
      (QCheck.Test.make ~name:"routed value never exceeds the max-flow bound"
         ~count:500 route_case_arb (fun (seed, value, max_splits) ->
           let topo = random_topo seed in
           let router = Router.create topo in
           match
             Router.route router ~avail:(full_avail topo) ~value ~max_splits
           with
           | Error _ -> true
           | Ok _ -> value <= Router.max_flow topo ()));
    Alcotest.test_case "leg amounts carry downstream commissions" `Quick
      (fun () ->
        let t = topo_of "graph:4;0>1:0:7,1>2:0:3,2>3:0:5" in
        Alcotest.(check (array int))
          "suffix sums" [| 1008; 1005; 1000 |]
          (Router.leg_amounts t ~path:[ 0; 1; 2 ] ~value:1000));
    Alcotest.test_case "shortest fills the cheap path first" `Quick (fun () ->
        let t = topo_of "graph:4;0>1:600:0,0>2:600:0,1>3:600:0,2>3:600:0" in
        let r = Router.create t in
        match Router.route r ~avail:(full_avail t) ~value:1000 ~max_splits:2 with
        | Error e -> Alcotest.fail e
        | Ok splits ->
            Alcotest.(check (list int))
              "values" [ 600; 400 ]
              (List.map (fun s -> s.Router.value) splits));
    Alcotest.test_case "round-robin deals fair shares and rotates" `Quick
      (fun () ->
        let t = topo_of "graph:4;0>1:600:0,0>2:600:0,1>3:600:0,2>3:600:0" in
        let r = Router.create ~strategy:Router.Round_robin t in
        let route () =
          match
            Router.route r ~avail:(full_avail t) ~value:1000 ~max_splits:2
          with
          | Error e -> Alcotest.fail e
          | Ok ss ->
              List.map
                (fun s -> (Router.path_nodes t s.Router.path, s.Router.value))
                ss
        in
        let first = route () in
        Alcotest.(check (list (pair (list int) int)))
          "even deal"
          [ ([ 0; 1; 3 ], 500); ([ 0; 2; 3 ], 500) ]
          first;
        (* the cursor advances: the next payment leads with the other path *)
        let second = route () in
        Alcotest.(check (list (pair (list int) int)))
          "rotated deal"
          [ ([ 0; 2; 3 ], 500); ([ 0; 1; 3 ], 500) ]
          second);
    Alcotest.test_case "all-or-nothing refusal reports the shortfall" `Quick
      (fun () ->
        let t = topo_of "graph:3;0>1:300:0,1>2:300:0" in
        let r = Router.create t in
        match Router.route r ~avail:(full_avail t) ~value:1000 ~max_splits:3 with
        | Ok _ -> Alcotest.fail "1000 cannot fit through 300"
        | Error e ->
            Alcotest.(check string) "names paths, carried and asked"
              "no route: 1 disjoint path(s) carry at most 300 of 1000" e);
    Alcotest.test_case "max-flow matches hand-computed diamonds" `Quick
      (fun () ->
        let t = topo_of "graph:4;0>1:600:0,0>2:600:0,1>3:600:0,2>3:600:0" in
        Alcotest.(check int) "diamond" 1200 (Router.max_flow t ());
        let t2 = topo_of "linear:3" in
        Alcotest.(check bool) "unbounded chain" true
          (Router.max_flow t2 () >= Topology.unbounded));
  ]

(* ------------------------------ rebalance ------------------------------ *)

let rebalance_tests =
  [
    Alcotest.test_case "rebalancing evens a skewed node and converges" `Quick
      (fun () ->
        let t = topo_of "graph:3;0>1:900:0,0>2:100:0,1>2:500:0" in
        let p = Rebalance.plan t in
        Alcotest.(check bool) "proposes a move" true
          (p.Rebalance.moves <> []);
        Alcotest.(check int) "moves 400 toward the mean" 400
          p.Rebalance.volume;
        let t' = Rebalance.apply t p in
        Alcotest.(check int) "second pass is a fixpoint" 0
          (Rebalance.plan t').Rebalance.volume);
    Alcotest.test_case "balanced and unbounded graphs propose nothing" `Quick
      (fun () ->
        List.iter
          (fun s ->
            let p = Rebalance.plan (topo_of s) in
            Alcotest.(check int) (s ^ " volume") 0 p.Rebalance.volume)
          [
            "linear:3" (* unbounded edges are never rebalanced *);
            "graph:3;0>1:500:0,0>2:500:0,1>2:100:0";
            "graph:3;0>1:400:0,1>2:600:0" (* single out-edges *);
          ]);
  ]

(* ----------------------------- routed load ----------------------------- *)

let spec s =
  match Traffic.Workload.of_string s with
  | Ok w -> w
  | Error e -> Alcotest.fail e

let diamond_constrained =
  (* one fat path carries two whole payments; three thin paths only help a
     router that can split across them *)
  "graph:6;0>1:2100:0,1>5:2100:0,0>2:700:0,2>5:700:0,0>3:700:0,3>5:700:0,0>4:700:0,4>5:700:0"

let load_spec ~splits =
  Printf.sprintf
    "payments=4 hops=2 value=1000 commission=10 arrival=burst:4:1 mix=sync:1 \
     policy=reserve cap=0 liquidity=0 patience=9000 stuck=0 drift=10000 \
     gst=none topology=%s route=shortest splits=%d"
    diamond_constrained splits

let routed_load_tests =
  [
    Alcotest.test_case "multi-path strictly beats single-path commits" `Slow
      (fun () ->
        let single =
          Traffic.Load.run ~workload:(spec (load_spec ~splits:1)) ~seed:5 ()
        in
        let multi =
          Traffic.Load.run ~workload:(spec (load_spec ~splits:4)) ~seed:5 ()
        in
        let value r =
          match r.Traffic.Load.routing with
          | Some s -> s.Traffic.Load.committed_value
          | None -> Alcotest.fail "routed run lost its routing stats"
        in
        (* single-path routing strands the thin paths' liquidity *)
        Alcotest.(check int) "single commits the fat path only" 2
          single.Traffic.Load.committed;
        Alcotest.(check bool) ">=30% of offered value stranded" true
          (100 * (4000 - value single) >= 30 * 4000);
        Alcotest.(check int) "splitting commits everything" 4
          multi.Traffic.Load.committed;
        Alcotest.(check bool) "multi strictly beats single" true
          (value multi > value single);
        List.iter
          (fun (r : Traffic.Load.report) ->
            Alcotest.(check bool) "conservation" true
              r.Traffic.Load.conservation_ok;
            Alcotest.(check int) "no violations" 0 r.Traffic.Load.violated)
          [ single; multi ]);
    Alcotest.test_case "routed reports are bit-identical across reruns" `Slow
      (fun () ->
        let w =
          spec
            "payments=10 hops=2 value=800 commission=10 arrival=poisson:50 \
             mix=sync:1,htlc:1 policy=reserve cap=0 liquidity=0 \
             patience=4000 stuck=0 drift=10000 gst=none \
             topology=hub:3:3000:5 route=round-robin splits=2"
        in
        let norm r =
          Traffic.Load.to_json { r with Traffic.Load.wall_ns = 1 }
        in
        let a = norm (Traffic.Load.run ~workload:w ~seed:31 ()) in
        let b = norm (Traffic.Load.run ~workload:w ~seed:31 ()) in
        Alcotest.(check string) "same seed, same bytes" a b);
    qcheck
      (QCheck.Test.make
         ~name:"conservation holds under random faults and mixed outcomes"
         ~count:12
         QCheck.(int_bound 999)
         (fun seed ->
           let w =
             spec
               "payments=8 hops=2 value=600 commission=10 \
                arrival=poisson:30 mix=sync:1,weak:1 policy=reserve cap=0 \
                liquidity=0 patience=3000 stuck=0 drift=10000 gst=none \
                topology=hub:4:2500:5 route=shortest splits=2"
           in
           (* graph blocks are at least 2 hops -> stride >= 5 hosts *)
           let prng = Sim.Rng.create ~seed:(seed + 7919) in
           let plan =
             Faults.Fault_plan.random prng ~nprocs:5 ~horizon:4000
           in
           let r = Traffic.Load.run ~plan ~workload:w ~seed () in
           if not r.Traffic.Load.conservation_ok then
             QCheck.Test.fail_reportf "books broke under %s"
               (Faults.Fault_plan.to_string plan);
           if r.Traffic.Load.violated > 0 then
             QCheck.Test.fail_reportf "safety violated under %s: %s"
               (Faults.Fault_plan.to_string plan)
               (String.concat "; "
                  (List.map
                     (fun v -> v.Traffic.Load.detail)
                     r.Traffic.Load.violations));
           true));
    Alcotest.test_case "partial multi-path payments abort, never commit"
      `Slow (fun () ->
        (* crash the middle host: some splits pay before the crash bites,
           whole payments must still not count as committed *)
        let w =
          spec
            "payments=10 hops=2 value=1000 commission=10 arrival=burst:10:1 \
             mix=sync:1 policy=reserve cap=0 liquidity=0 patience=9000 \
             stuck=1500 drift=10000 gst=none topology=hub:3:8000:0 \
             route=round-robin splits=2"
        in
        let r =
          Traffic.Load.run ~plan:(plan_of "crash 2@700") ~workload:w ~seed:3
            ()
        in
        Alcotest.(check bool) "conservation" true
          r.Traffic.Load.conservation_ok;
        match r.Traffic.Load.routing with
        | None -> Alcotest.fail "missing routing stats"
        | Some s ->
            (* every committed payment delivered its full value; anything
               beyond that in committed_value came from partially-paid
               payments, which must not be counted as committed *)
            Alcotest.(check bool) "committed pay in full" true
              (s.Traffic.Load.committed_value
              >= r.Traffic.Load.committed * 1000);
            if s.Traffic.Load.partial_payments = 0 then
              Alcotest.(check int) "no partials: value = committed x 1000"
                (r.Traffic.Load.committed * 1000)
                s.Traffic.Load.committed_value
            else
              Alcotest.(check bool) "partials add paid-split value" true
                (s.Traffic.Load.committed_value
                > r.Traffic.Load.committed * 1000));
  ]

let () =
  Alcotest.run "routing"
    [
      ("topology", topology_tests);
      ("router", router_tests);
      ("rebalance", rebalance_tests);
      ("routed-load", routed_load_tests);
    ]
