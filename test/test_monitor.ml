(* Tests for the online runtime monitor, the sim-time sampler and the
   violation flight recorder: the agreement contract between online and
   post-hoc verdicts, stop-on-violation semantics, and byte-for-byte
   bundle determinism. *)

module C = Xchain.Chaos
module Runner = Protocols.Runner
module FP = Faults.Fault_plan

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* the pinned violating witness: htlc breaks CS1 under duplicated
   deliveries (docs/observability.md walks through this exact run) *)
let viol_protocol = Runner.Htlc
let viol_seed = 9
let viol_plan () =
  match FP.of_string "dup *>* 0.289" with
  | Ok p -> p
  | Error e -> Alcotest.fail e

(* the soak's plan derivation, so random cases mirror real chaos runs *)
let random_case case =
  let hops = 1 + (case mod 3) in
  let protocol =
    match case mod 5 with
    | 0 | 1 -> Runner.Sync_timebound
    | 2 | 3 -> Runner.Htlc
    | _ -> Runner.Naive_universal
  in
  let seed = 1 + (case / 2) in
  let nprocs = (2 * hops) + 1 in
  let horizon =
    (Runner.derive_params (Runner.default_config ~hops ~seed) protocol)
      .Protocols.Params.horizon
  in
  let prng = Sim.Rng.create ~seed:(seed + 7919) in
  (hops, protocol, seed, FP.random prng ~nprocs ~horizon)

let sorted_failures (r : C.run_result) =
  List.sort String.compare
    (List.map (fun v -> v.Props.Verdict.property) r.C.failures)

let sorted_violations m =
  List.sort String.compare
    (List.map
       (fun (t : Obsv.Monitor.trip) -> t.Obsv.Monitor.property)
       (Obsv.Monitor.violations m))

(* --------------------------- agreement gate --------------------------- *)

let agreement_tests =
  [
    qcheck
      (QCheck.Test.make
         ~name:"online verdict agrees with the post-hoc safety report"
         ~count:60
         QCheck.(int_bound 500)
         (fun case ->
           let hops, protocol, seed, plan = random_case case in
           let m = Obsv.Monitor.create () in
           let monitored =
             C.run_one ~hops ~protocol ~monitor:m ~plan ~seed ()
           in
           let plain = C.run_one ~hops ~protocol ~plan ~seed () in
           (* arming the monitor never perturbs the run *)
           if monitored.C.classification <> plain.C.classification then
             QCheck.Test.fail_reportf "monitor changed classification: %s/%s"
               (C.classification_name monitored.C.classification)
               (C.classification_name plain.C.classification);
           if monitored.C.end_time <> plain.C.end_time then
             QCheck.Test.fail_reportf "monitor changed end time: %d/%d"
               monitored.C.end_time plain.C.end_time;
           (* the monitor's final violated set IS the post-hoc failure
              set — agreement by construction *)
           let post = sorted_failures monitored in
           let live = sorted_violations m in
           if post <> live then
             QCheck.Test.fail_reportf "online {%s} <> post-hoc {%s}"
               (String.concat "," live) (String.concat "," post);
           (* a breach stamp exists iff something ever tripped, and it
              never postdates the run *)
           (match Obsv.Monitor.first_trip m with
           | Some t ->
               if t.Obsv.Monitor.at < 0 || t.Obsv.Monitor.at > monitored.C.end_time
               then
                 QCheck.Test.fail_reportf "breach at %d outside run (end %d)"
                   t.Obsv.Monitor.at monitored.C.end_time
           | None ->
               if monitored.C.classification = C.Safety_violation then
                 QCheck.Test.fail_report
                   "safety violation but the monitor never tripped");
           if monitored.C.breach_at <> Obsv.Monitor.breach_at m then
             QCheck.Test.fail_report "run_result.breach_at out of sync";
           true));
    Alcotest.test_case "pinned violation: breach matches post-hoc verdict"
      `Quick (fun () ->
        let m = Obsv.Monitor.create () in
        let r =
          C.run_one ~hops:2 ~protocol:viol_protocol ~monitor:m
            ~plan:(viol_plan ()) ~seed:viol_seed ()
        in
        check Alcotest.string "classification" "safety-violation"
          (C.classification_name r.C.classification);
        check (Alcotest.list Alcotest.string) "CS1 online = CS1 post-hoc"
          (sorted_failures r) (sorted_violations m);
        check Alcotest.bool "breach stamped" true (r.C.breach_at >= 0);
        check Alcotest.bool "breach within run" true
          (r.C.breach_at <= r.C.end_time));
  ]

(* -------------------------- stop-on-violation -------------------------- *)

let stop_tests =
  [
    Alcotest.test_case "stop-on-violation ends the run at the breach time"
      `Quick (fun () ->
        (* reference run: where does the breach happen? *)
        let m0 = Obsv.Monitor.create () in
        let r0 =
          C.run_one ~hops:2 ~protocol:viol_protocol ~monitor:m0
            ~plan:(viol_plan ()) ~seed:viol_seed ()
        in
        let breach = r0.C.breach_at in
        check Alcotest.bool "reference run breaches" true (breach >= 0);
        (* stopping run: must end exactly there, with the stop status *)
        let m = Obsv.Monitor.create ~stop_on_violation:true () in
        let r =
          C.run_one ~hops:2 ~protocol:viol_protocol ~monitor:m
            ~plan:(viol_plan ()) ~seed:viol_seed ()
        in
        (match r.C.status with
        | Sim.Engine.Violation_stop -> ()
        | _ -> Alcotest.fail "expected Violation_stop status");
        check Alcotest.int "ends at first breach" breach r.C.end_time;
        check Alcotest.int "same breach stamp" breach r.C.breach_at);
    Alcotest.test_case "clean runs never stop early" `Quick (fun () ->
        let m = Obsv.Monitor.create ~stop_on_violation:true () in
        let plain = C.run_one ~plan:FP.none ~seed:1 () in
        let r = C.run_one ~monitor:m ~plan:FP.none ~seed:1 () in
        (match r.C.status with
        | Sim.Engine.Violation_stop -> Alcotest.fail "clean run stopped"
        | _ -> ());
        check Alcotest.int "same end time" plain.C.end_time r.C.end_time;
        check Alcotest.int "no breach" (-1) r.C.breach_at);
  ]

(* ------------------------- bundle determinism -------------------------- *)

let run_bundled () =
  let m = Obsv.Monitor.create () in
  let rc = Obsv.Recorder.create () in
  let c = Obsv.Causal.create () in
  let s = Obsv.Sampler.create () in
  let r =
    C.run_one ~hops:2 ~protocol:viol_protocol ~causal:c ~monitor:m
      ~sampler:s ~recorder:rc ~plan:(viol_plan ()) ~seed:viol_seed ()
  in
  (C.bundle ~causal:c ~monitor:m ~recorder:rc r, Obsv.Sampler.to_jsonl s, r)

let bundle_tests =
  [
    Alcotest.test_case "replaying the repro reproduces the bundle byte for \
                        byte" `Quick (fun () ->
        let b1, s1, r1 = run_bundled () in
        let b2, s2, _ = run_bundled () in
        check Alcotest.string "bundle bit-identical" b1 b2;
        check Alcotest.string "series bit-identical" s1 s2;
        (* the bundle names the breach the monitor stamped *)
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "reason violation" true
          (contains b1 "\"reason\":\"violation\"");
        check Alcotest.bool "breach time embedded" true
          (contains b1 (Printf.sprintf "\"at\":%d" r1.C.breach_at));
        check Alcotest.bool "repro embedded" true
          (contains b1 (C.repro_line r1)));
    Alcotest.test_case "stuck runs bundle with reason stuck" `Quick (fun () ->
        (* a crashed escrow with no recovery wedges the sync payment *)
        let plan =
          match FP.of_string "crash 3@50" with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        let m = Obsv.Monitor.create () in
        let rc = Obsv.Recorder.create () in
        let r = C.run_one ~monitor:m ~recorder:rc ~plan ~seed:1 () in
        check Alcotest.string "stuck" "stuck"
          (C.classification_name r.C.classification);
        let b = C.bundle ~monitor:m ~recorder:rc r in
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "reason stuck" true
          (contains b "\"reason\":\"stuck\"");
        check Alcotest.bool "no breach property" true
          (contains b "\"property\":\"-\""));
  ]

(* ------------------------------ sampler -------------------------------- *)

let sampler_tests =
  [
    Alcotest.test_case "series rows are nondecreasing in sim-time" `Quick
      (fun () ->
        let s = Obsv.Sampler.create ~interval:50 () in
        let r = C.run_one ~sampler:s ~plan:FP.none ~seed:1 () in
        let rows = Obsv.Sampler.rows s in
        check Alcotest.bool "sampled" true (List.length rows > 0);
        let rec mono = function
          | (a, _) :: ((b, _) :: _ as tl) ->
              if a > b then Alcotest.failf "rows go back in time: %d > %d" a b;
              mono tl
          | _ -> ()
        in
        mono rows;
        List.iter
          (fun (t, _) ->
            if t < 0 || t > r.C.end_time then
              Alcotest.failf "row at %d outside run" t)
          rows);
    Alcotest.test_case "soak with monitor matches soak without" `Quick
      (fun () ->
        let a = C.soak ~protocol:viol_protocol ~runs:20 ~seed:1 () in
        let b = C.soak ~protocol:viol_protocol ~runs:20 ~monitor:true ~seed:1 () in
        check Alcotest.int "commits" a.C.commits b.C.commits;
        check Alcotest.int "aborts" a.C.aborts b.C.aborts;
        check Alcotest.int "stuck" a.C.stuck b.C.stuck;
        check Alcotest.int "violations"
          (List.length a.C.violations)
          (List.length b.C.violations);
        (* monitored soaks stamp every violation with its breach time *)
        List.iter
          (fun (r : C.run_result) ->
            check Alcotest.bool "breach stamped" true (r.C.breach_at >= 0))
          b.C.violations);
  ]

let () =
  Alcotest.run "monitor"
    [
      ("agreement", agreement_tests);
      ("stop-on-violation", stop_tests);
      ("bundles", bundle_tests);
      ("sampler", sampler_tests);
    ]
