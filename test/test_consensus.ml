(* Tests for the DLS-style committee consensus.

   The module is a pure state machine, so these tests drive replica sets
   by hand through a tiny dispatcher: effects become queued messages,
   round timers are fired explicitly, and Byzantine behaviour is injected
   as raw messages. Safety assertions (agreement, certificate validity)
   are checked against every replica that decided. *)

module Dls = Consensus.Dls
open Xcrypto

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

type world = {
  cfgs : string Dls.config array;
  replicas : string Dls.t array;
  queue : (int * int * string Dls.msg) Queue.t;  (* from, to, msg *)
  mutable decisions : (int * string Dls.decision_cert) list;
  mutable pending_timers : (int * int) list;  (* replica, round *)
}

let make_world ?(n = 4) ?(f = 1) ?qs ?(validate = fun _ -> true) () =
  let registry = Auth.create ~seed:11 in
  let auth_ids = Array.init n Fun.id in
  let signers = Array.init n (fun i -> Auth.register registry i) in
  let qs =
    match qs with Some qs -> qs | None -> Quorum_system.majority ~n ~f ()
  in
  let cfgs =
    Array.init n (fun i ->
        {
          Dls.qs;
          self = i;
          auth_ids;
          registry;
          signer = signers.(i);
          ser = Fun.id;
          equal = String.equal;
          validate;
          base_timeout = 100;
        })
  in
  {
    cfgs;
    replicas = Array.map Dls.create cfgs;
    queue = Queue.create ();
    decisions = [];
    pending_timers = [];
  }

let handle w from effects =
  List.iter
    (fun eff ->
      match eff with
      | Dls.Send { to_; m } -> Queue.add (from, to_, m) w.queue
      | Dls.Broadcast m ->
          Array.iteri (fun to_ _ -> Queue.add (from, to_, m) w.queue) w.replicas
      | Dls.Set_round_timer { round; _ } ->
          w.pending_timers <- (from, round) :: w.pending_timers
      | Dls.Decided dc -> w.decisions <- (from, dc) :: w.decisions)
    effects

let start w i v = handle w i (Dls.start w.replicas.(i) ~my_value:v)

(* deliver until quiet, optionally dropping some messages *)
let drain ?(drop = fun ~from:_ ~to_:_ _ -> false) ?(dead = fun _ -> false) w =
  let budget = ref 100_000 in
  while (not (Queue.is_empty w.queue)) && !budget > 0 do
    decr budget;
    let from, to_, m = Queue.pop w.queue in
    if (not (drop ~from ~to_ m)) && not (dead to_) then
      handle w to_ (Dls.on_msg w.replicas.(to_) ~from_:from m)
  done;
  if !budget = 0 then Alcotest.fail "dispatcher did not quiesce"

let fire_timers ?(dead = fun _ -> false) w =
  let timers = w.pending_timers in
  w.pending_timers <- [];
  List.iter
    (fun (i, round) ->
      if not (dead i) then
        handle w i (Dls.on_round_timeout w.replicas.(i) round))
    timers

let agreement w =
  match w.decisions with
  | [] -> true
  | (_, first) :: rest ->
      List.for_all (fun (_, dc) -> String.equal dc.Dls.d_value first.Dls.d_value) rest

let decided_count w = List.length w.decisions

let basic_tests =
  [
    Alcotest.test_case "leader rotation" `Quick (fun () ->
        check Alcotest.int "r0" 0 (Dls.leader_of ~n:4 0);
        check Alcotest.int "r1" 1 (Dls.leader_of ~n:4 1);
        check Alcotest.int "r5" 1 (Dls.leader_of ~n:4 5));
    Alcotest.test_case "create rejects an unavailable quorum system" `Quick
      (fun () ->
        (* majority with n = 3, f = 1 keeps intersection (2q-n = 3 >= f+1)
           but loses availability (n-f = 2 < q = 3) — the old n >= 3f+1
           rejection, now spoken in quorum-law terms *)
        let w = make_world () in
        match
          Dls.create
            { (w.cfgs.(0)) with Dls.qs = Quorum_system.majority ~n:3 ~f:1 () }
        with
        | exception Invalid_argument msg ->
            check Alcotest.bool "mentions Dls.create" true
              (String.length msg >= 11 && String.sub msg 0 11 = "Dls.create:")
        | _ -> Alcotest.fail "accepted majority(n=3,f=1)");
    Alcotest.test_case "create rejects signer mismatch" `Quick (fun () ->
        let w = make_world () in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Dls.create: signer does not match self") (fun () ->
            ignore (Dls.create { (w.cfgs.(0)) with Dls.self = 1 })));
    Alcotest.test_case "unanimous start decides in round 0" `Quick (fun () ->
        let w = make_world () in
        for i = 0 to 3 do
          start w i "commit"
        done;
        drain w;
        check Alcotest.int "all decided" 4 (decided_count w);
        check Alcotest.bool "agreement" true (agreement w);
        List.iter
          (fun (_, dc) -> check Alcotest.string "value" "commit" dc.Dls.d_value)
          w.decisions);
    Alcotest.test_case "divergent preferences still agree" `Quick (fun () ->
        let w = make_world () in
        start w 0 "commit";
        start w 1 "abort";
        start w 2 "abort";
        start w 3 "commit";
        drain w;
        (* leader 0 proposes commit; everyone echoes *)
        check Alcotest.bool "agreement" true (agreement w);
        check Alcotest.int "all" 4 (decided_count w));
    Alcotest.test_case "decision certificates verify for outsiders" `Quick
      (fun () ->
        let w = make_world () in
        for i = 0 to 3 do
          start w i "v"
        done;
        drain w;
        List.iter
          (fun (_, dc) ->
            check Alcotest.bool "verify" true (Dls.verify_decision w.cfgs.(0) dc))
          w.decisions);
    Alcotest.test_case "tampered decision certificate fails" `Quick (fun () ->
        let w = make_world () in
        for i = 0 to 3 do
          start w i "v"
        done;
        drain w;
        let _, dc = List.hd w.decisions in
        let tampered = { dc with Dls.d_value = "other" } in
        check Alcotest.bool "reject" false
          (Dls.verify_decision w.cfgs.(0) tampered));
    Alcotest.test_case "too few signatures fail verification" `Quick (fun () ->
        let w = make_world () in
        for i = 0 to 3 do
          start w i "v"
        done;
        drain w;
        let _, dc = List.hd w.decisions in
        let thin =
          { dc with Dls.d_sigs = [ List.hd dc.Dls.d_sigs ] }
        in
        check Alcotest.bool "reject" false (Dls.verify_decision w.cfgs.(0) thin));
    Alcotest.test_case "duplicate signatures do not inflate a quorum" `Quick
      (fun () ->
        let w = make_world () in
        for i = 0 to 3 do
          start w i "v"
        done;
        drain w;
        let _, dc = List.hd w.decisions in
        let one = List.hd dc.Dls.d_sigs in
        let padded = { dc with Dls.d_sigs = [ one; one; one; one; one ] } in
        check Alcotest.bool "reject" false
          (Dls.verify_decision w.cfgs.(0) padded));
  ]

let fault_tests =
  [
    Alcotest.test_case "crashed follower does not block a decision" `Quick
      (fun () ->
        let w = make_world () in
        let dead i = i = 3 in
        for i = 0 to 2 do
          start w i "v"
        done;
        drain ~dead w;
        check Alcotest.bool "agreement" true (agreement w);
        check Alcotest.bool "some decided" true (decided_count w >= 3));
    Alcotest.test_case "crashed round-0 leader: round change decides" `Quick
      (fun () ->
        let w = make_world () in
        let dead i = i = 0 in
        for i = 1 to 3 do
          start w i "v"
        done;
        drain ~dead w;
        check Alcotest.int "nothing yet" 0 (decided_count w);
        (* round 0 times out; round 1's leader (replica 1) proposes *)
        fire_timers ~dead w;
        drain ~dead w;
        check Alcotest.bool "agreement" true (agreement w);
        check Alcotest.bool "decided" true (decided_count w >= 3));
    Alcotest.test_case "equivocating leader cannot split the committee" `Quick
      (fun () ->
        (* replica 0 is Byzantine: it sends Propose("commit") to 1 and
           Propose("abort") to 2 and 3 in round 0. Echo quorums cannot form
           for both; after the round change an honest leader decides. *)
        let w = make_world () in
        for i = 1 to 3 do
          start w i "fallback"
        done;
        Queue.add (0, 1, Dls.Propose { round = 0; value = "commit"; justif = None }) w.queue;
        Queue.add (0, 2, Dls.Propose { round = 0; value = "abort"; justif = None }) w.queue;
        Queue.add (0, 3, Dls.Propose { round = 0; value = "abort"; justif = None }) w.queue;
        let dead i = i = 0 in
        drain ~dead w;
        fire_timers ~dead w;
        drain ~dead w;
        fire_timers ~dead w;
        drain ~dead w;
        check Alcotest.bool "agreement" true (agreement w);
        check Alcotest.bool "honest decided" true (decided_count w >= 3));
    Alcotest.test_case "forged echoes are ignored" `Quick (fun () ->
        let w = make_world () in
        start w 1 "v";
        (* an attacker fabricates echoes claiming to be replicas 0,2,3 *)
        List.iter
          (fun author ->
            let body = { Dls.e_round = 0; e_value = "evil" } in
            let sv = Auth.forge_value ~author body in
            Queue.add (author, 1, Dls.Echo sv) w.queue)
          [ 0; 2; 3 ];
        drain ~dead:(fun i -> i <> 1) w;
        check Alcotest.int "no decision from forgeries" 0 (decided_count w);
        check Alcotest.bool "no lock" true (Dls.locked w.replicas.(1) = None));
    Alcotest.test_case "external validity blocks invalid proposals" `Quick
      (fun () ->
        let w = make_world ~validate:(fun v -> v <> "invalid") () in
        for i = 0 to 3 do
          start w i "invalid"
        done;
        drain w;
        check Alcotest.int "no decision" 0 (decided_count w));
    Alcotest.test_case "join participates without proposing" `Quick (fun () ->
        let w = make_world () in
        (* replicas 1..3 join with no preference; 0 starts with a value *)
        for i = 1 to 3 do
          handle w i (Dls.join w.replicas.(i))
        done;
        start w 0 "v";
        drain w;
        check Alcotest.bool "decided" true (decided_count w >= 4);
        check Alcotest.bool "agreement" true (agreement w));
    Alcotest.test_case "update_preference lets a late leader propose" `Quick
      (fun () ->
        let w = make_world () in
        (* everyone joins silently; then replica 0 (round-0 leader) gets a
           preference and proposes *)
        for i = 0 to 3 do
          handle w i (Dls.join w.replicas.(i))
        done;
        drain w;
        check Alcotest.int "nothing" 0 (decided_count w);
        handle w 0 (Dls.update_preference w.replicas.(0) "late");
        drain w;
        check Alcotest.bool "decided" true (decided_count w >= 4));
    Alcotest.test_case "stale round timer is a no-op" `Quick (fun () ->
        let w = make_world () in
        for i = 0 to 3 do
          start w i "v"
        done;
        drain w;
        let r = decided_count w in
        (* fire leftover round-0 timers after the decision *)
        fire_timers w;
        drain w;
        check Alcotest.int "unchanged" r (decided_count w));
  ]

let random_schedule_tests =
  [
    qcheck
      (QCheck.Test.make ~name:"agreement under random drops and timers"
         ~count:60
         QCheck.(pair small_int (list (int_bound 20)))
         (fun (seed, _) ->
           let rng = Sim.Rng.create ~seed in
           let w = make_world () in
           for i = 0 to 3 do
             start w i (if Sim.Rng.bool rng then "commit" else "abort")
           done;
           (* phase 1: drop ~30% of messages, then fire timers, then let
              everything through — models a pre-GST mess followed by
              stabilization *)
           let drop ~from:_ ~to_:_ _ = Sim.Rng.int rng 10 < 3 in
           drain ~drop w;
           fire_timers w;
           drain ~drop w;
           fire_timers w;
           drain w;
           fire_timers w;
           drain w;
           agreement w));
    qcheck
      (QCheck.Test.make ~name:"decisions always carry verifiable certificates"
         ~count:30
         QCheck.small_int
         (fun seed ->
           let rng = Sim.Rng.create ~seed in
           let w = make_world () in
           for i = 0 to 3 do
             start w i (if Sim.Rng.bool rng then "x" else "y")
           done;
           drain w;
           List.for_all
             (fun (_, dc) -> Dls.verify_decision w.cfgs.(0) dc)
             w.decisions));
  ]

(* ---------------- bounded-exhaustive schedule exploration -------------- *)

(* Systematic concurrency testing: explore EVERY delivery order of the
   first [k] messages (the scheduler branches on which pending message to
   deliver next), then drain deterministically, fire round timers, and
   drain again. Agreement must hold at every leaf. This covers the
   schedule prefixes where quorum races actually happen — a bounded
   version of the quantification in the DLS safety proof. *)

let explore_agreement ~k ~prefs =
  let leaves = ref 0 in
  let run_path path =
    (* re-execute the whole world following [path]; return `Choice n if the
       path ran out with n pending messages and budget left, else check the
       leaf *)
    let w = make_world () in
    Array.iteri (fun i v -> start w i v) prefs;
    let depth = ref 0 in
    let rec step remaining_path =
      if Queue.is_empty w.queue then `Leaf
      else if !depth >= k then begin
        (* deterministic tail: FIFO *)
        let from, to_, m = Queue.pop w.queue in
        handle w to_ (Dls.on_msg w.replicas.(to_) ~from_:from m);
        step remaining_path
      end
      else
        match remaining_path with
        | [] -> `Choice (Queue.length w.queue)
        | choice :: rest ->
            (* deliver the [choice]-th pending message *)
            let items = Queue.to_seq w.queue |> List.of_seq in
            let n = List.length items in
            let idx = choice mod n in
            Queue.clear w.queue;
            List.iteri (fun i it -> if i <> idx then Queue.add it w.queue) items;
            let from, to_, m = List.nth items idx in
            incr depth;
            handle w to_ (Dls.on_msg w.replicas.(to_) ~from_:from m);
            step rest
    in
    match step path with
    | `Choice n -> `Choice n
    | `Leaf ->
        (* stabilise: timers + full drains until quiet *)
        for _ = 1 to 3 do
          fire_timers w;
          drain w
        done;
        if not (agreement w) then
          Alcotest.failf "disagreement on path [%s]"
            (String.concat ";" (List.map string_of_int path));
        incr leaves;
        `Leaf
  in
  let rec dfs path =
    match run_path path with
    | `Leaf -> ()
    | `Choice n ->
        for i = 0 to n - 1 do
          dfs (path @ [ i ])
        done
  in
  dfs [];
  !leaves

let exploration_tests =
  [
    Alcotest.test_case "agreement over all orderings (unanimous, k=4)" `Slow
      (fun () ->
        let leaves =
          explore_agreement ~k:4 ~prefs:[| "c"; "c"; "c"; "c" |]
        in
        check Alcotest.bool "explored some schedules" true (leaves > 10));
    Alcotest.test_case "agreement over all orderings (split, k=4)" `Slow
      (fun () ->
        let leaves =
          explore_agreement ~k:4 ~prefs:[| "c"; "a"; "a"; "c" |]
        in
        check Alcotest.bool "explored some schedules" true (leaves > 10));
    Alcotest.test_case "agreement over all orderings (split, k=5)" `Slow
      (fun () ->
        let leaves =
          explore_agreement ~k:5 ~prefs:[| "a"; "c"; "a"; "c" |]
        in
        check Alcotest.bool "explored some schedules" true (leaves > 50));
  ]

(* ------------------------ authority chain ------------------------------ *)

module Chain = Consensus.Chain

(* simpler driver: explicit broadcast fan-out *)
let run_chain ?(n = 3) ~txs ~rounds () =
  let cfgs =
    Array.init n (fun i ->
        {
          Chain.n;
          self = i;
          block_interval = 100;
          initial_state = [];
          apply = (fun st tx -> (tx :: st, [ tx ]));
          tx_equal = String.equal;
        })
  in
  let validators = Array.map Chain.create cfgs in
  let pending : (int * int option * string Chain.msg) Queue.t = Queue.create () in
  let emitted = Array.make n [] in
  let timers = ref [] in
  let rec handle i effs =
    List.iter
      (fun eff ->
        match eff with
        | Chain.Broadcast m ->
            for j = 0 to n - 1 do
              Queue.add (j, Some i, m) pending
            done
        | Chain.Set_round_timer { round; _ } -> timers := (i, round) :: !timers
        | Chain.Emit evs -> emitted.(i) <- emitted.(i) @ evs)
      effs;
    ignore handle
  in
  Array.iteri (fun i v -> handle i (Chain.start v)) validators;
  (* submit txs to every validator *)
  List.iter
    (fun tx ->
      for j = 0 to n - 1 do
        Queue.add (j, None, Chain.Submit tx) pending
      done)
    txs;
  for _ = 1 to rounds do
    (* drain messages *)
    while not (Queue.is_empty pending) do
      let to_, from_, m = Queue.pop pending in
      handle to_ (Chain.on_msg validators.(to_) ~from_ m)
    done;
    (* fire pending round timers *)
    let ts = !timers in
    timers := [];
    List.iter
      (fun (i, round) -> handle i (Chain.on_round_timeout validators.(i) round))
      ts
  done;
  (validators, emitted)

let chain_tests =
  [
    Alcotest.test_case "submitted transactions reach every replica in the \
                        same order" `Quick (fun () ->
        let validators, _emitted = run_chain ~txs:[ "a"; "b"; "c" ] ~rounds:8 () in
        let h0 = Chain.height validators.(0) in
        check Alcotest.bool "chain grew" true (h0 > 0);
        Array.iter
          (fun v -> check Alcotest.int "same height" h0 (Chain.height v))
          validators;
        let s0 = Chain.state validators.(0) in
        Array.iter
          (fun v -> check Alcotest.(list string) "same state" s0 (Chain.state v))
          validators;
        check Alcotest.int "all applied" 3 (List.length s0));
    Alcotest.test_case "every replica emits each event exactly once" `Quick
      (fun () ->
        let _, emitted = run_chain ~txs:[ "x"; "y" ] ~rounds:8 () in
        Array.iter
          (fun evs ->
            check Alcotest.int "two events" 2 (List.length evs);
            check Alcotest.bool "x once" true
              (List.length (List.filter (String.equal "x") evs) = 1))
          emitted);
    Alcotest.test_case "duplicate submissions are deduplicated" `Quick
      (fun () ->
        let validators, emitted =
          run_chain ~txs:[ "a"; "a"; "a" ] ~rounds:8 ()
        in
        check Alcotest.int "one tx" 1 (List.length (Chain.state validators.(0)));
        Array.iter
          (fun evs -> check Alcotest.int "one event" 1 (List.length evs))
          emitted);
    Alcotest.test_case "height rotates the proposer" `Quick (fun () ->
        let validators, _ =
          run_chain ~n:3
            ~txs:[ "t1" ] ~rounds:4 ()
        in
        (* submit more txs in a second wave so later heights get produced
           by later proposers *)
        let blocks = Chain.chain validators.(1) in
        List.iter
          (fun (b : string Chain.block) ->
            check Alcotest.int "proposer = height mod n" (b.Chain.height mod 3)
              b.Chain.proposer)
          blocks);
    Alcotest.test_case "announcements from non-validators are ignored" `Quick
      (fun () ->
        let cfg =
          {
            Chain.n = 2;
            self = 0;
            block_interval = 50;
            initial_state = [];
            apply = (fun st tx -> (tx :: st, []));
            tx_equal = String.equal;
          }
        in
        let v = Chain.create cfg in
        ignore (Chain.start v);
        let bogus =
          { Chain.height = 0; round = 0; proposer = 0; txs = [ "evil" ] }
        in
        let effs = Chain.on_msg v ~from_:None (Chain.Announce bogus) in
        check Alcotest.int "no effects" 0 (List.length effs);
        check Alcotest.int "height unchanged" 0 (Chain.height v));
    Alcotest.test_case "create validates its config" `Quick (fun () ->
        Alcotest.check_raises "bad self"
          (Invalid_argument "Chain.create: bad self") (fun () ->
            ignore
              (Chain.create
                 {
                   Chain.n = 2;
                   self = 5;
                   block_interval = 10;
                   initial_state = ();
                   apply = (fun () _ -> ((), []));
                   tx_equal = (fun (_ : int) _ -> true);
                 })));
  ]

let () =
  Alcotest.run "consensus"
    [
      ("basic", basic_tests);
      ("faults", fault_tests);
      ("random", random_schedule_tests);
      ("exploration", exploration_tests);
      ("chain", chain_tests);
    ]
