(* The three transaction-manager instantiations of §3, side by side.

   "The transaction manager could be a single external party trusted by
   all, or a smart contract running on a permissionless blockchain shared
   by every customer. It can also be a collection of notaries appointed
   by the participants in the protocol, of which less than one-third is
   assumed to be unreliable."

   The same 3-hop payment runs under all three TMs over the same
   partially synchronous network — including a committee whose round-0
   leader has crashed. Every variant must commit, and the decision time
   shows what each trust model costs.

   Run with:  dune exec examples/transaction_managers.exe *)

open Protocols

let decision_time o =
  List.find_map
    (fun (t, _, ob) ->
      match ob with Obs.Decision_made _ -> Some t | _ -> None)
    (Runner.observations o)

let run ~label tm ~notary_faults =
  let cfg =
    {
      (Runner.default_config ~hops:3 ~seed:5) with
      network = Runner.Psync { gst = 800 };
    }
  in
  let wc =
    {
      Weak_protocol.default_config with
      tm;
      patience = 100_000;
      notary_faults;
    }
  in
  let o = Runner.run cfg (Runner.Weak wc) in
  let v = Props.Payment_props.view o in
  let paid = Props.Payment_props.bob_paid v in
  Fmt.pr "  %-26s Bob paid: %-5b  decision at t=%s@." label paid
    (match decision_time o with Some t -> string_of_int t | None -> "-");
  paid

let () =
  Fmt.pr "3-hop payment, partial synchrony (GST 800), patient customers:@.";
  (* bind in sequence: list literals evaluate right-to-left in OCaml *)
  let a = run ~label:"single trusted party" Weak_protocol.Single ~notary_faults:[||] in
  let b =
    run ~label:"blockchain contract (m=4)"
      (Weak_protocol.Chain { validators = 4 })
      ~notary_faults:[||]
  in
  let c =
    run ~label:"notary committee (f=1)"
      (Weak_protocol.Committee { f = 1 })
      ~notary_faults:[||]
  in
  let d =
    run ~label:"committee, leader crashed"
      (Weak_protocol.Committee { f = 1 })
      ~notary_faults:
        [| Weak_protocol.Notary_crash; Weak_protocol.Notary_honest;
           Weak_protocol.Notary_honest; Weak_protocol.Notary_honest |]
  in
  let ok = a && b && c && d in
  if not ok then exit 1;
  Fmt.pr
    "@.All three instantiations commit; trust buys latency: a crashed \
     leader costs the committee one round change, the chain costs a block \
     interval, the single party costs nothing but its trustworthiness.@."
