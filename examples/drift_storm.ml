(* Clock drift vs the universal protocol — the fine-tuning of Theorem 1.

   Both runs face the same adversary (every message delayed to the
   synchrony bound δ) and the same drifting clocks (up to 8%, tight
   1-tick margins). The naive protocol computes its timeout windows as if
   clocks were perfect; the tuned protocol inflates them by the drift
   envelope exactly as Params derives. Across seeds, only the naive
   protocol strands participants: an escrow's window closes early in real
   time, the certificate χ arrives late, and termination (property T) is
   lost — with deeper chains, a connector can be left out of pocket.

   Run with:  dune exec examples/drift_storm.exe *)

open Protocols

let worst_case : Sim.Network.adversary =
 fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds -> Some bounds.Sim.Network.hi

let violations protocol =
  let bad = ref 0 in
  let seeds = 60 in
  for seed = 1 to seeds do
    let cfg =
      {
        (Runner.default_config ~hops:5 ~seed) with
        drift_ppm = 80_000;
        delta = 200;
        margin = 1;
        adversary = Some worst_case;
      }
    in
    let outcome = Runner.run cfg protocol in
    let view = Props.Payment_props.view outcome in
    let report = Props.Payment_props.check_def1 ~time_bounded:false view in
    if not (Props.Verdict.all_hold report) then begin
      incr bad;
      if !bad = 1 then begin
        Fmt.pr "first violating run (seed %d):@." seed;
        List.iter
          (fun v -> Fmt.pr "  %a@." Props.Verdict.pp v)
          (Props.Verdict.failures report)
      end
    end
  done;
  (!bad, seeds)

let () =
  Fmt.pr "=== naive universal protocol (drift-blind windows) ===@.";
  let bad_naive, n = violations Runner.Naive_universal in
  Fmt.pr "violations: %d/%d@.@." bad_naive n;
  Fmt.pr "=== drift-tuned protocol (Thm 1) ===@.";
  let bad_tuned, _ = violations Runner.Sync_timebound in
  Fmt.pr "violations: %d/%d@.@." bad_tuned n;
  if bad_tuned > 0 then begin
    Fmt.pr "the tuned protocol must never fail under synchrony@.";
    exit 1
  end;
  if bad_naive = 0 then begin
    Fmt.pr "expected the naive protocol to fail under this drift@.";
    exit 1
  end;
  Fmt.pr "Same schedules, same clocks: only the window derivation differs.@."
