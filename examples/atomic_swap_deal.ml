(* Cross-chain deals (§5): an atomic swap, a broker chain, and a
   disconnected pair, run under the Herlihy-Liskov-Shrira commit
   protocols.

   The swap (strongly connected, "well-formed") completes with all three
   HLS properties intact, even against a Byzantine party that claims at
   the last moment of the timelock. The broker DAG is NOT strongly
   connected: the broker can only learn the full vote set from the
   on-chain reveal of her outgoing leg, and the lazy claimer defeats that
   cascade — Safety breaks for the compliant broker. The disconnected
   pair shows the other failure mode: nothing unsafe, but strong liveness
   is gone. This is the well-formedness hypothesis of HLS's correctness
   theorem, exhibited as executable counterexamples.

   Run with:  dune exec examples/atomic_swap_deal.exe *)

open Deals

let show label deal protocol ~faults =
  let cfg = Deal_runner.default_config deal protocol in
  let outcome =
    if faults = [] then Deal_runner.run cfg
    else Deal_byzantine.run_with_faults cfg ~faults
  in
  Fmt.pr "--- %s ---@.%a@." label Deal.pp deal;
  Fmt.pr "well-formed (strongly connected): %b@." (Deal.well_formed deal);
  List.iter (fun v -> Fmt.pr "  %a@." Deal_props.pp v) (Deal_props.all outcome);
  List.iter
    (fun p ->
      Fmt.pr "  party %d: gained %a, lost %a@." p Ledger.Asset.Bag.pp
        (Deal_runner.gained outcome p)
        Ledger.Asset.Bag.pp
        (Deal_runner.lost outcome p))
    (List.init (Deal.parties deal) Fun.id);
  Fmt.pr "@.";
  (Deal_props.safety outcome).Deal_props.holds

let () =
  let ok = ref true in
  if not (show "atomic swap, timelock commit" (Deal.two_party_swap ())
            Deal_runner.Timelock ~faults:[])
  then ok := false;
  if not (show "3-cycle with a lazy Byzantine claimer" (Deal.three_cycle ())
            Deal_runner.Timelock ~faults:[ (2, Deal_byzantine.Lazy_claim) ])
  then ok := false;
  (* the broker DAG + lazy claimer violates safety on many seeds; find one *)
  let broker_violated = ref false in
  for seed = 1 to 20 do
    if not !broker_violated then begin
      let cfg =
        { (Deal_runner.default_config (Deal.broker_dag ()) Deal_runner.Timelock)
          with seed }
      in
      let o =
        Deal_byzantine.run_with_faults cfg
          ~faults:[ (2, Deal_byzantine.Lazy_claim) ]
      in
      if not (Deal_props.safety o).Deal_props.holds then begin
        broker_violated := true;
        Fmt.pr "--- broker DAG, lazy claimer (seed %d) ---@." seed;
        List.iter (fun v -> Fmt.pr "  %a@." Deal_props.pp v) (Deal_props.all o);
        Fmt.pr "@."
      end
    end
  done;
  let disc =
    show "disconnected pair, all compliant" (Deal.disconnected_pair ())
      Deal_runner.Timelock ~faults:[]
  in
  if (not !ok) || (not !broker_violated) || not disc then exit 1;
  Fmt.pr "Well-formedness is exactly what separates the safe deals from \
          the broker's loss; the certificate-gated CBC protocol (or the \
          paper's transaction manager) removes the race altogether.@."
