(* The Interledger atomic protocol vs the paper's weak protocol.

   Both run over the same partially synchronous network whose global
   stabilisation time (GST) is unknown to the participants. The atomic
   protocol's notary decides by a deadline fixed in advance; the weak
   protocol's customers decide how long they are willing to wait.

   When the network stabilises after the notary's deadline, the atomic
   payment aborts — safely, but unavoidably — while the patient weak
   protocol still succeeds. This is the gap the paper's title points at:
   prior cross-chain payment protocols did not (and per Theorem 2 with
   fixed deadlines, could not) guarantee success.

   Run with:  dune exec examples/interledger_atomic.exe *)

open Protocols

let run ~label protocol ~gst ~seed =
  let cfg =
    {
      (Runner.default_config ~hops:3 ~seed) with
      network = Runner.Psync { gst };
    }
  in
  let o = Runner.run cfg protocol in
  let v = Props.Payment_props.view o in
  let paid = Props.Payment_props.bob_paid v in
  let safe =
    Props.Verdict.all_hold
      (Props.Payment_props.check_def2 ~patience_sufficient:false v)
  in
  Fmt.pr "  %-12s Bob paid: %-5b  safety: %b@." label paid safe;
  paid

let () =
  let deadline = 5_000 in
  List.iter
    (fun gst ->
      Fmt.pr "GST = %d (notary deadline fixed at %d):@." gst deadline;
      let atomic_paid =
        run ~label:"atomic" (Runner.Atomic { Atomic_protocol.deadline }) ~gst
          ~seed:3
      in
      let weak_paid =
        run ~label:"weak"
          (Runner.Weak
             { Weak_protocol.default_config with patience = gst + 60_000 })
          ~gst ~seed:3
      in
      Fmt.pr "@.";
      if gst > (2 * deadline) && atomic_paid then exit 1;
      if not weak_paid then exit 1)
    [ 0; 2_000; 12_000 ];
  Fmt.pr "Fixed deadlines race an unknown GST and lose; customer-owned \
          patience does not. Success became a guarantee only in the \
          paper's weak protocol.@."
