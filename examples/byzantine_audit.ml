(* Byzantine behaviour vs the paper's conditional guarantees.

   Three attacks on a 3-hop payment:
   - escrow e0 steals Alice's deposit;
   - connector Chloe2 sends a forged certificate χ upstream;
   - Bob withholds χ entirely.

   In each case the paper's properties — conditioned exactly as stated
   ("provided her escrows abide…") — still hold: forged signatures are
   rejected, honest escrows lose nothing, and only the customers whose own
   escrow misbehaved lose their (conditional) guarantee.

   Run with:  dune exec examples/byzantine_audit.exe *)

open Protocols

let audit ~label ~faults =
  let result = Xchain.Api.pay ~hops:3 ~faults ~seed:21 () in
  Fmt.pr "--- %s ---@." label;
  Fmt.pr "Bob paid: %b@." result.Xchain.Api.success;
  Fmt.pr "%a@.@." Props.Verdict.pp_report result.Xchain.Api.report;
  if not result.Xchain.Api.all_properties_hold then begin
    Fmt.pr "a conditional guarantee was violated — this must not happen@.";
    exit 1
  end

let () =
  let topo = Topology.create ~hops:3 in
  audit ~label:"thief escrow e0"
    ~faults:[ (Topology.escrow topo 0, Byzantine.Thief_escrow) ];
  audit ~label:"Chloe2 forges χ"
    ~faults:[ (Topology.customer topo 2, Byzantine.Forge_chi_connector) ];
  audit ~label:"Bob withholds χ"
    ~faults:[ (Topology.bob topo, Byzantine.Withhold_chi_bob) ];
  Fmt.pr "Every applicable guarantee survived every attack: safety in this \
          protocol never depends on the attacker's cooperation.@."
