(* A longer chain: Alice pays Bob 1000 through three connectors, each
   taking a 25-unit commission. The example inspects the escrow ledgers
   before and after to show where the value went.

   Run with:  dune exec examples/connector_commission.exe *)

open Protocols

let () =
  let hops = 4 and value = 1000 and commission = 25 in
  let result =
    Xchain.Api.pay ~hops ~value ~commission ~seed:3 ()
  in
  let outcome = result.Xchain.Api.outcome in
  let env = outcome.Runner.env in
  let topo = env.Env.topo in

  Fmt.pr "Chain: %a@." Topology.pp topo;
  Fmt.pr "Leg amounts (decreasing toward Bob — the difference is each \
          connector's commission):@.";
  Array.iteri
    (fun i a -> Fmt.pr "  c%d pays %d at e%d@." i a i)
    env.Env.amounts;

  Fmt.pr "@.Final balances per escrow book:@.";
  Array.iteri
    (fun i book ->
      Fmt.pr "  e%d: %a@." i Ledger.Book.pp book)
    env.Env.books;

  Fmt.pr "@.Net positions (received - paid):@.";
  let view = Props.Payment_props.view outcome in
  List.iter
    (fun pid ->
      Fmt.pr "  %-8s %+d@."
        (Xchain.Api.participant_name outcome pid)
        (view.Props.Payment_props.net pid))
    (Topology.customers topo);

  Fmt.pr "@.%a@." Props.Verdict.pp_report result.Xchain.Api.report;
  if not result.Xchain.Api.success then exit 1
