(* Quickstart: Alice pays Bob through one connector (Chloe1) using the
   paper's time-bounded protocol (Thm 1 / Fig. 2) on a synchronous network
   with 1% clock drift.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let result = Xchain.Api.pay () in
  Fmt.pr "%a@." Xchain.Api.pp_result result;
  if result.Xchain.Api.all_properties_hold then
    Fmt.pr "@.All of C, T, ES, CS1-CS3 and L hold on this run — exactly \
            what Theorem 1 promises under synchrony.@."
  else exit 1
