(* Small-scope exhaustive verification.

   The timeout-window inequalities behind Theorem 1 are monotone in every
   message delay and in every clock rate, so their binding schedules sit
   at the corners of the schedule space: each delay at its minimum or
   maximum, each clock at an envelope extreme. For a one-hop payment that
   is 2^6 delay patterns x 2^3 clock patterns = 512 corners — few enough
   to check every single one.

   The drift-tuned protocol must be clean on all of them. The drift-blind
   baseline fails on 64 concrete corners, and the explorer names one: the
   exact bit pattern of delays and fast/slow clocks that loses the race.

   Run with:  dune exec examples/exhaustive_corners.exe *)

let () =
  let show label protocol =
    let r = Xchain.Explore.sweep ~hops:1 ~drift_ppm:50_000 ~protocol () in
    Fmt.pr "%-6s: %d corners, %d violations@." label r.Xchain.Explore.corners
      r.Xchain.Explore.violations;
    (match r.Xchain.Explore.first_witness with
    | Some w -> Fmt.pr "        first witness: %s@." w
    | None -> ());
    r
  in
  let tuned = show "tuned" Protocols.Runner.Sync_timebound in
  let naive = show "naive" Protocols.Runner.Naive_universal in
  if tuned.Xchain.Explore.violations > 0 then exit 1;
  if naive.Xchain.Explore.violations = 0 then exit 1;
  Fmt.pr "@.Every corner of the schedule space agrees with Theorem 1: the \
          tuned windows always win the race they were derived to win.@."
