(* The weak protocol of Theorem 3 under partial synchrony.

   Two runs over the same slow network (GST = 2000 ticks):
   - an impatient Alice (patience 300) aborts: the transaction manager
     issues the abort certificate χa, every deposit is refunded, and
     nobody loses money — "each customer can, at any moment of their
     choice, lose patience and abort the transaction, without a risk of
     losing value";
   - a patient Alice (patience 50_000) outlasts the network turbulence:
     the TM collects every funded report and commits, and Bob is paid.

   Run with:  dune exec examples/impatient_abort.exe *)

let run ~patience ~label =
  let result =
    Xchain.Api.pay ~hops:3
      ~network:(Xchain.Api.Partially_synchronous { gst = 2000 })
      ~protocol:(Xchain.Api.Weak_single { patience })
      ~seed:7 ()
  in
  Fmt.pr "--- %s (patience = %d) ---@.%a@.@." label patience
    Xchain.Api.pp_result result;
  result

let () =
  let aborted = run ~patience:300 ~label:"impatient Alice" in
  let succeeded = run ~patience:50_000 ~label:"patient Alice" in
  (* The impatient run must be safe (no value lost) even though it failed;
     the patient run must succeed outright. *)
  if aborted.Xchain.Api.success then begin
    Fmt.pr "unexpected: impatient run still succeeded@.";
    exit 1
  end;
  if not aborted.Xchain.Api.all_properties_hold then exit 1;
  if not succeeded.Xchain.Api.success then exit 1;
  Fmt.pr "Weak liveness in action: success is conditional on patience, \
          safety is not.@."
