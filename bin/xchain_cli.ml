(* Command-line front end.

   xchain pay         — run one payment and report outcome + properties
   xchain experiment  — regenerate the reproduction tables (e1..e13, all)
   xchain params      — show the derived timeout windows (Thm 1 tuning)
   xchain metrics     — the telemetry catalogue / a probe-run exposition
   xchain explore     — exhaustive corner sweep, sharded over -j domains
   xchain dot         — emit the Figure 2 automata as Graphviz *)

open Cmdliner
open Protocols

(* ----------------------------- telemetry ------------------------------- *)

(* Every simulation subcommand accepts --metrics-out / --spans-out; "-"
   writes to stdout (after the human-readable report). Span capture is
   enabled only when a sink was requested, so bulk commands (experiment)
   don't accumulate spans nobody will read. *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry as Prometheus text exposition to \
           $(docv) after the run ('-' for stdout). See docs/observability.md \
           for the metric catalogue.")

let spans_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans-out" ] ~docv:"FILE"
        ~doc:
          "Write payment/deal spans as JSON lines to $(docv) after the run \
           ('-' for stdout). One object per span; root spans carry the \
           commit/abort status.")

let write_sink path content =
  match path with
  | None -> ()
  | Some "-" -> print_string content
  | Some file -> (
      try
        let oc = open_out file in
        output_string oc content;
        close_out oc
      with Sys_error msg ->
        Fmt.epr "xchain: cannot write telemetry: %s@." msg;
        exit 2)

let arm_span_capture spans_out =
  Obsv.Span.set_capture Obsv.Span.default (spans_out <> None)

let dump_telemetry ~metrics_out ~spans_out =
  write_sink metrics_out (Obsv.Prometheus.render Obsv.Metrics.default);
  write_sink spans_out (Obsv.Span.to_jsonl Obsv.Span.default)

(* ------------------------------- fleet --------------------------------- *)

(* The soak/sweep/replication commands shard their independent runs over a
   fleet of OCaml domains. Results are merged in job order, so every
   deterministic output is byte-identical for any -j value. *)

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard the work over $(docv) OCaml domains (0 = auto: the \
           XCHAIN_FLEET_JOBS environment variable if set, else the \
           runtime's recommended domain count). Every deterministic output \
           is byte-identical for any value; only wall-clock timing changes. \
           See docs/parallelism.md.")

let resolve_domains ~cmd j =
  if j < 0 then begin
    Fmt.epr "xchain %s: -j must be >= 0@." cmd;
    exit 2
  end
  else if j = 0 then Fleet.default_domains ()
  else j

(* Live progress on stderr, only when someone is watching: piped runs
   (cram, CI) see nothing, so transcripts stay deterministic. *)
let tty_progress label =
  if Unix.isatty Unix.stderr then
    Some
      (fun ~completed ~total ->
        Printf.eprintf "\r%s: %d/%d%!" label completed total;
        if completed >= total then prerr_newline ())
  else None

(* --- causal tracing (trace / chaos / load) --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's happens-before graph as Chrome trace-event JSON \
           to $(docv) ('-' for stdout) — load it in chrome://tracing or \
           Perfetto. One track per engine pid; message transits are flow \
           arrows. Byte-identical across reruns with equal inputs.")

let dag_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dag-out" ] ~docv:"FILE"
        ~doc:
          "Write the happens-before DAG as JSON lines to $(docv) ('-' for \
           stdout): one node per line with its incoming edges, joinable \
           against --spans-out rows by trace/root_event id.")

let blame_arg =
  Arg.(
    value & flag
    & info [ "blame" ]
        ~doc:
          "Print the critical-path blame breakdown: end-to-end latency \
           decomposed into queueing / transit / gst_wait / timeout / \
           downtime / processing, summing exactly to the observed total.")

(* any causal sink requested? then the engine records the graph *)
let causal_wanted ~trace_out ~dag_out ~blame =
  if trace_out <> None || dag_out <> None || blame then
    Some (Obsv.Causal.create ())
  else None

let dump_causal causal ~trace_out ~dag_out ~payments =
  Option.iter
    (fun c ->
      write_sink trace_out (Obsv.Causal.to_chrome ~payments c);
      write_sink dag_out (Obsv.Causal.to_jsonl c))
    causal

(* a single payment's blame report: root is the run's first causal node
   (the initial on_start send at t=0) *)
let print_payment_blame c ~delta ~sink =
  if Obsv.Causal.node_count c = 0 || sink < 0 then
    Fmt.pr "blame: no settlement sink recorded (payment never paid out)@."
  else begin
    let r = Obsv.Blame.attribute ~delta c ~root:0 ~sink in
    Fmt.pr "%a@." Obsv.Blame.pp_report r;
    Fmt.pr "critical path:@.%a@." (Obsv.Blame.pp_path c) r
  end

(* --- hot-path profiling (profile / load / chaos) --- *)

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Profile engine dispatch (wall time + minor-heap allocation per \
           payment x process x event kind) and print the hot-site table \
           after the run. See docs/observability.md, section Profiling.")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Write the JSON profile report to $(docv) ('-' for stdout). \
           Deterministic except the flat \"prof_timing\" objects (host \
           wall clock), which scripts/strip_timing.py removes.")

let collapsed_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "collapsed-out" ] ~docv:"FILE"
        ~doc:
          "Write the profile as collapsed stacks (payment;process;kind \
           wall_ns) to $(docv) ('-' for stdout) — load it in speedscope \
           or feed it to flamegraph.pl.")

(* any profile sink requested? then the engine carries a profiler *)
let prof_wanted ~profile ~profile_out ~collapsed_out =
  if profile || profile_out <> None || collapsed_out <> None then
    Some (Obsv.Prof.create ~now_ns:Fleet.now_ns ())
  else None

let dump_prof ?(top = 15) ~table prof ~profile_out ~collapsed_out =
  Option.iter
    (fun p ->
      if table then Fmt.pr "%a" (Obsv.Prof.pp_top ~n:top) p;
      write_sink profile_out (Obsv.Prof.to_json p);
      write_sink collapsed_out (Obsv.Prof.to_collapsed p))
    prof

(* --- online runtime verification (chaos / load / hunt) --- *)

let monitor_flag =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:
          "Arm the online runtime monitor: the safety subset is re-checked \
           after every engine dispatch, so the run reports the exact \
           sim-time of first breach. The final verdict always agrees with \
           the post-hoc report. See docs/observability.md, section Runtime \
           verification.")

let stop_on_violation_flag =
  Arg.(
    value & flag
    & info [ "stop-on-violation" ]
        ~doc:
          "End the run at the first safety breach (implies --monitor): the \
           engine exits with status violation-stop at the exact sim-time \
           the monitor tripped.")

let series_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "series-out" ] ~docv:"FILE"
        ~doc:
          "Sample sim-time telemetry (queue depth, in-flight work, \
           per-escrow liquidity) on a fixed interval and write the series \
           as JSON lines to $(docv) ('-' for stdout). Deterministic.")

let bundle_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundle-out" ] ~docv:"FILE"
        ~doc:
          "On a safety violation or a stuck run, write the forensic \
           flight-recorder bundle — first breach, the last events before \
           it, a causal-DAG slice, a metrics snapshot and the one-line \
           repro — as JSON to $(docv) ('-' for stdout). Deterministic: \
           replaying the repro reproduces the bundle byte for byte.")

(* --monitor/--stop-on-violation/--bundle-out arm the monitor; --series-out
   arms the sampler; --bundle-out arms the flight-recorder ring *)
let watch_wanted ~monitor ~stop_on_violation ~series_out ~bundle_out =
  let monitor =
    if monitor || stop_on_violation || bundle_out <> None then
      Some (Obsv.Monitor.create ~stop_on_violation ())
    else None
  in
  let sampler = Option.map (fun _ -> Obsv.Sampler.create ()) series_out in
  let recorder = Option.map (fun _ -> Obsv.Recorder.create ()) bundle_out in
  (monitor, sampler, recorder)

let print_monitor_verdict monitor =
  Option.iter
    (fun m ->
      match Obsv.Monitor.first_trip m with
      | Some tr ->
          Fmt.pr "monitor: first breach %s at t=%d: %s@."
            tr.Obsv.Monitor.property tr.Obsv.Monitor.at
            tr.Obsv.Monitor.detail
      | None ->
          Fmt.pr "monitor: clean after %d steps@." (Obsv.Monitor.steps m))
    monitor

(* ------------------------------- pay ---------------------------------- *)

let protocol_conv =
  let parse = function
    | "sync" -> Ok `Sync
    | "naive" -> Ok `Naive
    | "htlc" -> Ok `Htlc
    | "weak" -> Ok `Weak
    | "committee" -> Ok `Committee
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p =
    Fmt.string ppf
      (match p with
      | `Sync -> "sync"
      | `Naive -> "naive"
      | `Htlc -> "htlc"
      | `Weak -> "weak"
      | `Committee -> "committee")
  in
  Arg.conv (parse, print)

let pay_cmd =
  let run protocol hops value commission drift gst patience seed trace_wanted
      jsonl_wanted metrics_out spans_out =
    arm_span_capture spans_out;
    let network =
      match gst with
      | None -> Xchain.Api.Synchronous
      | Some gst -> Xchain.Api.Partially_synchronous { gst }
    in
    let protocol =
      match protocol with
      | `Sync -> Xchain.Api.Time_bounded
      | `Naive -> Xchain.Api.Naive
      | `Htlc -> Xchain.Api.Htlc_chain
      | `Weak -> Xchain.Api.Weak_single { patience }
      | `Committee -> Xchain.Api.Weak_committee { patience; f = 1 }
    in
    let result =
      Xchain.Api.pay ~hops ~value ~commission ~drift_ppm:drift ~network
        ~protocol ~seed ()
    in
    Fmt.pr "%a@." Xchain.Api.pp_result result;
    if trace_wanted then
      Fmt.pr "@.trace:@.%a@."
        (Sim.Trace.pp ~msg:Msg.pp ~obs:Obs.pp)
        result.Xchain.Api.outcome.Runner.trace;
    if jsonl_wanted then
      print_string
        (Sim.Trace.to_jsonl
           ~msg:(Fmt.str "%a" Msg.pp)
           ~obs:(Fmt.str "%a" Obs.pp)
           result.Xchain.Api.outcome.Runner.trace);
    dump_telemetry ~metrics_out ~spans_out;
    if result.Xchain.Api.all_properties_hold then 0 else 1
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Protocol: sync | naive | htlc | weak | committee.")
  in
  let hops =
    Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Number of escrows.")
  in
  let value = Arg.(value & opt int 1000 & info [ "value" ] ~doc:"Amount Bob is owed.") in
  let commission =
    Arg.(value & opt int 10 & info [ "commission" ] ~doc:"Per-connector commission.")
  in
  let drift =
    Arg.(value & opt int 10_000 & info [ "drift-ppm" ] ~doc:"Clock drift in ppm.")
  in
  let gst =
    Arg.(value & opt (some int) None
         & info [ "gst" ] ~doc:"Partial synchrony with this GST (default: synchronous).")
  in
  let patience =
    Arg.(value & opt int 20_000 & info [ "patience" ] ~doc:"Weak-protocol patience.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed.") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")
  in
  let jsonl =
    Arg.(value & flag
         & info [ "trace-jsonl" ]
             ~doc:"Print the trace as JSON lines (machine-readable).")
  in
  Cmd.v
    (Cmd.info "pay" ~doc:"Run one cross-chain payment and check the paper's properties")
    Term.(
      const run $ protocol $ hops $ value $ commission $ drift $ gst $ patience
      $ seed $ trace $ jsonl $ metrics_out_arg $ spans_out_arg)

(* ---------------------------- experiment ------------------------------- *)

let experiment_cmd =
  let run name full j metrics_out spans_out =
    arm_span_capture spans_out;
    let scale = if full then Xchain.Experiments.Full else Xchain.Experiments.Quick in
    let domains = resolve_domains ~cmd:"experiment" j in
    let code =
      match name with
      | "all" ->
          List.iter
            (fun t -> Fmt.pr "%a@." Xchain.Table.render t)
            (Xchain.Experiments.all ~domains scale);
          0
      | "e12" ->
          (* the one experiment with a fleet-sharded inner loop, so the
             named path must forward -j like the "all" path does *)
          Fmt.pr "%a@." Xchain.Table.render
            (Xchain.Experiments.e12_exhaustive_corners ~domains scale);
          0
      | name -> (
          match Xchain.Experiments.by_name name with
          | Some f ->
              Fmt.pr "%a@." Xchain.Table.render (f scale);
              0
          | None ->
              Fmt.epr "unknown experiment %S (use e1..e12 or all)@." name;
              2)
    in
    if code = 0 then dump_telemetry ~metrics_out ~spans_out;
    code
  in
  let name_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"NAME" ~doc:"Experiment name (e1..e12) or 'all'.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Full sample sizes (400 runs/config) instead of quick.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the reproduction tables (see EXPERIMENTS.md)")
    Term.(const run $ name_arg $ full $ jobs_arg $ metrics_out_arg
          $ spans_out_arg)

(* ------------------------------ params --------------------------------- *)

let params_cmd =
  let run hops delta sigma drift margin =
    let p =
      Params.derive { Params.hops; delta; sigma; drift_ppm = drift; margin }
    in
    Fmt.pr "%a@." Params.pp p;
    (match Params.check p with
    | Ok () ->
        Fmt.pr "recurrence check: ok@.";
        0
    | Error e ->
        Fmt.pr "recurrence check: %s@." e;
        1)
  in
  let hops = Arg.(value & opt int 3 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let delta = Arg.(value & opt int 100 & info [ "delta" ] ~doc:"Message delay bound.") in
  let sigma = Arg.(value & opt int 10 & info [ "sigma" ] ~doc:"Computation bound.") in
  let drift = Arg.(value & opt int 10_000 & info [ "drift-ppm" ] ~doc:"Clock drift, ppm.") in
  let margin = Arg.(value & opt int 5 & info [ "margin" ] ~doc:"Safety margin, ticks.") in
  Cmd.v
    (Cmd.info "params" ~doc:"Derive the a/d timeout windows (the Thm 1 fine-tuning)")
    Term.(const run $ hops $ delta $ sigma $ drift $ margin)

(* ------------------------------- audit --------------------------------- *)

let parse_fault topo spec =
  (* "strategy@role", e.g. "thief-escrow@e0", "mute@bob", "forge-chi@chloe2" *)
  match String.split_on_char '@' spec with
  | [ strat; role ] ->
      let pid =
        match role with
        | "alice" -> Topology.alice topo
        | "bob" -> Topology.bob topo
        | r when String.length r > 5 && String.sub r 0 5 = "chloe" ->
            Topology.customer topo (int_of_string (String.sub r 5 (String.length r - 5)))
        | r when String.length r > 1 && r.[0] = 'e' ->
            Topology.escrow topo (int_of_string (String.sub r 1 (String.length r - 1)))
        | r -> failwith (Printf.sprintf "unknown role %S" r)
      in
      let strategy =
        match strat with
        | "crash" -> Byzantine.Crash_at_start
        | "mute" -> Byzantine.Mute
        | "thief-escrow" -> Byzantine.Thief_escrow
        | "premature-refund" -> Byzantine.Premature_refund_escrow
        | "no-resolve" -> Byzantine.No_resolve_escrow
        | "eager-chi" -> Byzantine.Eager_chi_bob
        | "withhold-chi" -> Byzantine.Withhold_chi_bob
        | "forge-chi" -> Byzantine.Forge_chi_connector
        | "double-money" -> Byzantine.Double_money_customer
        | "never-deposit" -> Byzantine.Never_deposit
        | "false-funded" -> Byzantine.False_funded_escrow
        | s -> failwith (Printf.sprintf "unknown strategy %S" s)
      in
      (pid, strategy)
  | _ -> failwith (Printf.sprintf "fault %S is not strategy@role" spec)

let audit_cmd =
  let run protocol hops gst seed fault_specs metrics_out spans_out =
    arm_span_capture spans_out;
    let topo = Topology.create ~hops in
    let faults =
      try List.map (parse_fault topo) fault_specs
      with Failure m ->
        Fmt.epr "%s@." m;
        exit 2
    in
    let cfg =
      {
        (Runner.default_config ~hops ~seed) with
        network =
          (match gst with None -> Runner.Sync | Some gst -> Runner.Psync { gst });
        faults;
      }
    in
    let runner_protocol =
      match protocol with
      | `Sync -> Runner.Sync_timebound
      | `Naive -> Runner.Naive_universal
      | `Htlc -> Runner.Htlc
      | `Weak -> Runner.Weak Weak_protocol.default_config
      | `Committee ->
          Runner.Weak
            { Weak_protocol.default_config with
              tm = Weak_protocol.Committee { f = 1 } }
    in
    let outcome = Runner.run cfg runner_protocol in
    let report = Xchain.Report.build outcome in
    Fmt.pr "%a@." Xchain.Report.pp report;
    dump_telemetry ~metrics_out ~spans_out;
    if Props.Verdict.all_hold report.Xchain.Report.verdicts then 0 else 1
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Protocol: sync | naive | htlc | weak | committee.")
  in
  let hops = Arg.(value & opt int 3 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let gst =
    Arg.(value & opt (some int) None
         & info [ "gst" ] ~doc:"Partial synchrony with this GST.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed.") in
  let faults =
    Arg.(value & opt_all string []
         & info [ "fault" ] ~docv:"STRATEGY@ROLE"
             ~doc:"Byzantine substitution, e.g. thief-escrow AT e0 (strategy@role), mute AT bob;                    repeatable.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Run a payment and print the full postmortem (verdicts, promise              breaches, Figure 2 conformance)")
    Term.(const run $ protocol $ hops $ gst $ seed $ faults $ metrics_out_arg
          $ spans_out_arg)

(* ------------------------------- metrics ------------------------------- *)

(* Populate the registry with one probe run of each workload family so the
   exposition lists every metric family the binary can emit, then print
   either the catalogue (default) or the full exposition.  Span capture is
   left off during the probes: the catalogue is about metric names, and the
   probe spans would only add noise to --spans-out users. *)
let metrics_cmd =
  let run full =
    Obsv.Span.set_capture Obsv.Span.default false;
    let silently f =
      (* Probe runs must not print their own reports. *)
      ignore (f ())
    in
    silently (fun () ->
        Runner.run (Runner.default_config ~hops:3 ~seed:1) Runner.Sync_timebound);
    silently (fun () ->
        Runner.run
          { (Runner.default_config ~hops:3 ~seed:1) with
            network = Runner.Psync { gst = 150 } }
          (Runner.Weak
             { Weak_protocol.default_config with
               tm = Weak_protocol.Committee { f = 1 } }));
    silently (fun () ->
        Deals.Deal_runner.run
          (Deals.Deal_runner.default_config
             (Deals.Deal.two_party_swap ())
             Deals.Deal_runner.Timelock));
    silently (fun () ->
        (* a routed load registers the xchain_load_* / xchain_route_*
           families the linear probes never touch *)
        let topology =
          match Routing.Topology.of_string "hub:3:3000:5" with
          | Ok t -> Some t
          | Error _ -> assert false
        in
        Traffic.Load.run
          ~workload:
            { (Traffic.Workload.default ~payments:4) with
              Traffic.Workload.topology;
              splits = 2;
            }
          ~seed:1 ());
    if full then print_string (Obsv.Prometheus.render Obsv.Metrics.default)
    else begin
      Fmt.pr "# metric families registered after probe workloads@.";
      List.iter
        (fun (name, kind, help) -> Fmt.pr "%-42s %-9s %s@." name kind help)
        (Obsv.Metrics.families Obsv.Metrics.default)
    end;
    0
  in
  let full =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Print the full Prometheus exposition (per-label samples)                    instead of the family catalogue.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"List every telemetry metric the simulator can emit (runs small               probe workloads to populate the registry)")
    Term.(const run $ full)

(* -------------------------------- deal --------------------------------- *)

let deal_cmd =
  let run which protocol gst seed lazy_party =
    let deal =
      match which with
      | "swap" -> Deals.Deal.two_party_swap ()
      | "cycle" -> Deals.Deal.three_cycle ()
      | "broker" -> Deals.Deal.broker_dag ()
      | "disconnected" -> Deals.Deal.disconnected_pair ()
      | other ->
          Fmt.epr "unknown deal %S (swap | cycle | broker | disconnected)@."
            other;
          exit 2
    in
    let proto =
      match protocol with
      | "timelock" -> Deals.Deal_runner.Timelock
      | "cbc" -> Deals.Deal_runner.Cbc
      | other ->
          Fmt.epr "unknown protocol %S (timelock | cbc)@." other;
          exit 2
    in
    let cfg =
      { (Deals.Deal_runner.default_config deal proto) with gst; seed }
    in
    let outcome =
      match lazy_party with
      | None -> Deals.Deal_runner.run cfg
      | Some p ->
          Deals.Deal_byzantine.run_with_faults cfg
            ~faults:[ (p, Deals.Deal_byzantine.Lazy_claim) ]
    in
    Fmt.pr "%a@.well-formed: %b@." Deals.Deal.pp deal
      (Deals.Deal.well_formed deal);
    List.iter
      (fun v -> Fmt.pr "%a@." Deals.Deal_props.pp v)
      (Deals.Deal_props.all outcome);
    List.iter
      (fun p ->
        Fmt.pr "party %d: gained %a, lost %a@." p Ledger.Asset.Bag.pp
          (Deals.Deal_runner.gained outcome p)
          Ledger.Asset.Bag.pp
          (Deals.Deal_runner.lost outcome p))
      (List.init (Deals.Deal.parties deal) Fun.id);
    if Deals.Deal_props.all_hold (Deals.Deal_props.all outcome) then 0 else 1
  in
  let which =
    Arg.(value & pos 0 string "swap"
         & info [] ~docv:"DEAL" ~doc:"swap | cycle | broker | disconnected.")
  in
  let protocol =
    Arg.(value & opt string "timelock"
         & info [ "p"; "protocol" ] ~doc:"timelock | cbc.")
  in
  let gst =
    Arg.(value & opt (some int) None
         & info [ "gst" ] ~doc:"Partial synchrony with this GST.")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Schedule seed.") in
  let lazy_party =
    Arg.(value & opt (some int) None
         & info [ "lazy" ] ~docv:"PARTY"
             ~doc:"Substitute this party with the lazy-claim Byzantine                    strategy.")
  in
  Cmd.v
    (Cmd.info "deal"
       ~doc:"Run a Herlihy-Liskov-Shrira cross-chain deal (§5) and check its              properties")
    Term.(const run $ which $ protocol $ gst $ seed $ lazy_party)

(* --- graph topologies (chaos / hunt / load / route) --- *)

let topology_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Routing.Topology.of_string s)
  in
  Arg.conv (parse, Routing.Topology.pp)

let topology_arg ~extra =
  Arg.(value & opt (some topology_conv) None
       & info [ "topology" ] ~docv:"SPEC"
           ~doc:
             ("Payment graph to route over: linear:H | hub:K | er:N:E:SEED \
               | sf:N:D:SEED | graph:N;U>V:LIQ:COMM,... (see \
               docs/routing.md). " ^ extra))

(* chaos and hunt study one payment at a time, so a graph reduces to the
   single path the router would pick for it at full liquidity: the run's
   hop count becomes that path's length. *)
let hops_of_topology ~cmd ~value ~hops = function
  | None -> hops
  | Some topo ->
      let router = Routing.Router.create topo in
      let avail e = Routing.Topology.capacity topo.Routing.Topology.edges.(e) in
      (match Routing.Router.route router ~avail ~value ~max_splits:1 with
      | Ok (s :: _) -> List.length s.Routing.Router.path
      | Ok [] -> assert false (* route never returns an empty split list *)
      | Error e ->
          Fmt.epr "xchain %s: --topology: %s@." cmd e;
          exit 2)

(* -------------------------------- chaos -------------------------------- *)

let runner_protocol_of = function
  | `Sync -> Runner.Sync_timebound
  | `Naive -> Runner.Naive_universal
  | `Htlc -> Runner.Htlc
  | `Weak -> Runner.Weak Weak_protocol.default_config
  | `Committee ->
      Runner.Weak
        { Weak_protocol.default_config with
          tm = Weak_protocol.Committee { f = 1 } }

(* Runner validates fault plans against the protocol's real process
   count (payment pids plus any TM pids) — the CLI cannot know that
   count without re-deriving protocol internals, so an out-of-range pid
   in a syntactically valid plan surfaces as Invalid_argument from the
   run itself. Turn that into a clean diagnostic instead of a crash. *)
let surface_bad_plan ~cmd f =
  match f () with
  | v -> v
  | exception Invalid_argument e ->
      let e =
        let prefix = "Runner.run: " in
        if String.starts_with ~prefix e then
          String.sub e (String.length prefix)
            (String.length e - String.length prefix)
        else e
      in
      Fmt.epr "xchain %s: %s@." cmd e;
      exit 2

let chaos_cmd =
  let run protocol hops topology seed plan plan_file soak runs j out repro_out
      metrics_out trace_out dag_out blame profile profile_out collapsed_out
      fault_specs monitor stop_on_violation series_out bundle_out =
    let protocol = runner_protocol_of protocol in
    let hops = hops_of_topology ~cmd:"chaos" ~value:1000 ~hops topology in
    if out <> None && not soak then begin
      Fmt.epr "xchain chaos: --out requires --soak@.";
      exit 2
    end;
    if soak && (stop_on_violation || series_out <> None || fault_specs <> [])
    then begin
      Fmt.epr
        "xchain chaos: --soak is incompatible with \
         --stop-on-violation/--series-out/--fault (replay a single run \
         from its repro line for per-run telemetry)@.";
      exit 2
    end;
    let faults =
      let topo = Topology.create ~hops in
      try List.map (parse_fault topo) fault_specs
      with Failure m ->
        Fmt.epr "xchain chaos: %s@." m;
        exit 2
    in
    let parse_plan ~what s =
      match Faults.Fault_plan.of_string s with
      | Ok p -> p
      | Error e ->
          Fmt.epr "xchain chaos: bad fault plan (%s): %s@." what e;
          exit 2
    in
    let plan =
      match (plan_file, plan) with
      | Some file, _ -> (
          match In_channel.with_open_text file In_channel.input_all with
          | contents -> parse_plan ~what:file (String.trim contents)
          | exception Sys_error msg ->
              Fmt.epr "xchain chaos: cannot read plan file: %s@." msg;
              exit 2)
      | None, Some s -> parse_plan ~what:"--plan" s
      | None, None -> Faults.Fault_plan.none
    in
    let prof = prof_wanted ~profile ~profile_out ~collapsed_out in
    let code =
      if soak then begin
        let domains = resolve_domains ~cmd:"chaos" j in
        (* live tty health line: outcome taxonomy instead of a bare
           completion count, only when the monitor is armed *)
        let on_health =
          if monitor && Unix.isatty Unix.stderr then
            Some
              (fun (h : Xchain.Chaos.health) ->
                Printf.eprintf
                  "\rchaos soak: %d/%d commit:%d abort:%d stuck:%d \
                   violation:%d%!"
                  h.Xchain.Chaos.h_done h.Xchain.Chaos.h_total
                  h.Xchain.Chaos.h_commits h.Xchain.Chaos.h_aborts
                  h.Xchain.Chaos.h_stuck h.Xchain.Chaos.h_violations;
                if h.Xchain.Chaos.h_done >= h.Xchain.Chaos.h_total then
                  prerr_newline ())
          else None
        in
        let on_progress =
          if on_health <> None then None else tty_progress "chaos soak"
        in
        let s =
          Xchain.Chaos.soak ~hops ~protocol ~runs ~seed ~domains ?prof
            ~monitor ?on_progress ?on_health ()
        in
        Fmt.pr "%a@." Xchain.Chaos.pp_summary s;
        dump_prof ~table:profile prof ~profile_out ~collapsed_out;
        write_sink out (Xchain.Chaos.summary_to_json ~hops ~protocol ~seed s);
        (match repro_out with
        | None -> ()
        | Some file ->
            let lines =
              List.map Xchain.Chaos.repro_line s.Xchain.Chaos.violations
            in
            write_sink (Some file)
              (String.concat "" (List.map (fun l -> l ^ "\n") lines)));
        (* forensic bundle for the soak's first violation: replay it with
           the full watch armed — same (seed, plan), so the replay is the
           violating run, bit for bit *)
        (match (bundle_out, s.Xchain.Chaos.violations) with
        | Some _, v :: _ ->
            let m = Obsv.Monitor.create () in
            let rc = Obsv.Recorder.create () in
            let c = Obsv.Causal.create () in
            let r =
              Xchain.Chaos.run_one ~hops ~protocol ~causal:c ~monitor:m
                ~recorder:rc ~plan:v.Xchain.Chaos.plan
                ~seed:v.Xchain.Chaos.seed ()
            in
            write_sink bundle_out
              (Xchain.Chaos.bundle ~causal:c ~monitor:m ~recorder:rc r)
        | _ -> ());
        if s.Xchain.Chaos.violations = [] then 0 else 1
      end
      else begin
        let mon, sampler, recorder =
          watch_wanted ~monitor ~stop_on_violation ~series_out ~bundle_out
        in
        let causal =
          match
            (causal_wanted ~trace_out ~dag_out ~blame, bundle_out)
          with
          | Some c, _ -> Some c
          | None, Some _ -> Some (Obsv.Causal.create ())
          | None, None -> None
        in
        let r =
          surface_bad_plan ~cmd:"chaos" (fun () ->
              Xchain.Chaos.run_one ~hops ~protocol ?causal ?prof ?monitor:mon
                ?sampler ?recorder ~faults ~plan ~seed ())
        in
        Fmt.pr "plan: %a@.classification: %s@." Faults.Fault_plan.pp
          r.Xchain.Chaos.plan
          (Xchain.Chaos.classification_name r.Xchain.Chaos.classification);
        List.iter
          (fun v ->
            Fmt.pr "violated %s: %s@." v.Props.Verdict.property
              v.Props.Verdict.detail)
          r.Xchain.Chaos.failures;
        print_monitor_verdict mon;
        (match sampler with
        | None -> ()
        | Some s -> write_sink series_out (Obsv.Sampler.to_jsonl s));
        (match (recorder, mon, r.Xchain.Chaos.classification) with
        | ( Some rc,
            Some m,
            (Xchain.Chaos.Safety_violation | Xchain.Chaos.Stuck) ) ->
            write_sink bundle_out
              (Xchain.Chaos.bundle ?causal ~monitor:m ~recorder:rc r)
        | _ -> ());
        let cls = Xchain.Chaos.classification_name r.Xchain.Chaos.classification in
        if blame then
          Option.iter
            (fun c ->
              let cfg = Runner.default_config ~hops ~seed in
              print_payment_blame c
                ~delta:(cfg.Runner.delta + cfg.Runner.sigma)
                ~sink:
                  (if r.Xchain.Chaos.paid_node >= 0 then
                     r.Xchain.Chaos.paid_node
                   else r.Xchain.Chaos.settled_node))
            causal;
        dump_causal causal ~trace_out ~dag_out
          ~payments:
            [
              ( Runner.protocol_name protocol,
                0,
                0,
                r.Xchain.Chaos.end_time,
                cls );
            ];
        dump_prof ~table:profile prof ~profile_out ~collapsed_out;
        match r.Xchain.Chaos.classification with
        | Xchain.Chaos.Safety_violation ->
            Fmt.pr "repro: %s@." (Xchain.Chaos.repro_line r);
            1
        | _ -> 0
      end
    in
    dump_telemetry ~metrics_out ~spans_out:None;
    code
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Protocol under test: sync | naive | htlc | weak | committee.")
  in
  let hops = Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~doc:"Schedule seed (soak: seed of run 0).")
  in
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"PLAN"
             ~doc:"Fault plan, e.g. 'drop *>3 0.2; crash 2AT500+800' (see \
                   docs/fault_injection.md for the grammar). Default: none.")
  in
  let plan_file =
    Arg.(value & opt (some string) None
         & info [ "plan-file" ] ~docv:"FILE"
             ~doc:"Read the fault plan from $(docv) (overrides --plan).")
  in
  let soak =
    Arg.(value & flag
         & info [ "soak" ]
             ~doc:"Sweep random fault plans across seeds and classify every \
                   run; exit non-zero on any safety violation.")
  in
  let runs =
    Arg.(value & opt int 200
         & info [ "runs" ] ~doc:"Soak: number of random plans to run.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Soak: write the summary as JSON to $(docv) ('-' for \
                   stdout). Deterministic except the trailing timing block \
                   (strip it with scripts/strip_timing.py before comparing \
                   across -j values).")
  in
  let repro_out =
    Arg.(value & opt (some string) None
         & info [ "repro-out" ] ~docv:"FILE"
             ~doc:"Soak: write one repro line per safety violation to $(docv) \
                   ('-' for stdout).")
  in
  let faults =
    Arg.(value & opt_all string []
         & info [ "fault" ] ~docv:"STRATEGY@ROLE"
             ~doc:"Byzantine substitution on top of the fault plan, e.g. \
                   thief-escrow AT e0 (strategy@role), exactly as xchain \
                   audit --fault; repeatable. Repro lines round-trip it.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run payments under a declarative fault plan (lossy links,               crashes, partitions), or soak hundreds of random plans and check              the safety properties")
    Term.(const run $ protocol $ hops
          $ topology_arg
              ~extra:
                "The run's hop count becomes the cheapest source-to-sink \
                 path's length (overrides --hops)."
          $ seed $ plan $ plan_file $ soak $ runs
          $ jobs_arg $ out $ repro_out $ metrics_out_arg $ trace_out_arg
          $ dag_out_arg $ blame_arg $ profile_flag $ profile_out_arg
          $ collapsed_out_arg $ faults $ monitor_flag
          $ stop_on_violation_flag $ series_out_arg $ bundle_out_arg)

(* -------------------------------- hunt --------------------------------- *)

let hunt_cmd =
  let run protocol hops topology seed budget gen_size j baseline no_shrink
      max_shrink_trials out corpus_out repros_out metrics_out bundle_out =
    let protocol = runner_protocol_of protocol in
    let hops = hops_of_topology ~cmd:"hunt" ~value:1000 ~hops topology in
    if budget <= 0 then begin
      Fmt.epr "xchain hunt: --budget must be positive@.";
      exit 2
    end;
    if gen_size <= 0 then begin
      Fmt.epr "xchain hunt: --gen must be positive@.";
      exit 2
    end;
    let domains = resolve_domains ~cmd:"hunt" j in
    let r =
      surface_bad_plan ~cmd:"hunt" (fun () ->
          Hunt.Search.hunt ~hops ~protocol ~gen_size ~domains ~baseline
            ~shrink:(not no_shrink) ?max_shrink_trials
            ?on_progress:(tty_progress "hunt") ~budget ~seed ())
    in
    Fmt.pr "@[<v>%a@]@." Hunt.Search.pp_report r;
    write_sink out (Hunt.Search.report_to_json r);
    write_sink corpus_out (Hunt.Search.corpus_to_jsonl r);
    (match repros_out with
    | None -> ()
    | Some file ->
        let lines = Hunt.Search.repro_lines r in
        write_sink (Some file)
          (String.concat "" (List.map (fun l -> l ^ "\n") lines)));
    (* forensic bundle for the hunt's first violating witness: replay its
       (seed, plan) with the full watch armed *)
    (match
       ( bundle_out,
         List.find_opt
           (fun (e : Hunt.Search.entry) ->
             e.Hunt.Search.classification = Xchain.Chaos.Safety_violation)
           r.Hunt.Search.corpus )
     with
    | Some _, Some e ->
        let m = Obsv.Monitor.create () in
        let rc = Obsv.Recorder.create () in
        let c = Obsv.Causal.create () in
        let rr =
          Xchain.Chaos.run_one ~hops ~protocol ~causal:c ~monitor:m
            ~recorder:rc ~plan:e.Hunt.Search.plan ~seed:e.Hunt.Search.seed ()
        in
        write_sink bundle_out
          (Xchain.Chaos.bundle ~causal:c ~monitor:m ~recorder:rc rr)
    | _ -> ());
    dump_telemetry ~metrics_out ~spans_out:None;
    if r.Hunt.Search.violations > 0 then 1 else 0
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Protocol under test: sync | naive | htlc | weak | committee.")
  in
  let hops = Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:"Root seed; the whole hunt (corpus, repros) is a pure \
                   function of it.")
  in
  let budget =
    Arg.(value & opt int 200
         & info [ "budget" ] ~docv:"N"
             ~doc:"Total chaos runs to spend searching.")
  in
  let gen_size =
    Arg.(value & opt int 50
         & info [ "gen" ] ~docv:"N"
             ~doc:"Runs per generation (generation 0 replays the uniform \
                   soak stream; later generations mutate the corpus).")
  in
  let baseline =
    Arg.(value & flag
         & info [ "baseline" ]
             ~doc:"Also run the uniform soak stream at the full budget and \
                   report its distinct signature count for comparison.")
  in
  let no_shrink =
    Arg.(value & flag
         & info [ "no-shrink" ]
             ~doc:"Skip minimizing stuck / violating witnesses.")
  in
  let max_shrink_trials =
    Arg.(value & opt (some int) None
         & info [ "max-shrink-trials" ] ~docv:"N"
             ~doc:"Cap replays per shrunk witness (default 400).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the hunt report as JSON to $(docv) ('-' for \
                   stdout). Deterministic except the trailing timing block \
                   (strip it with scripts/strip_timing.py before comparing \
                   across -j values).")
  in
  let corpus_out =
    Arg.(value & opt (some string) None
         & info [ "corpus-out" ] ~docv:"FILE"
             ~doc:"Write the corpus (one JSON object per discovered \
                   signature, discovery order) to $(docv) ('-' for stdout).")
  in
  let repros_out =
    Arg.(value & opt (some string) None
         & info [ "repros-out" ] ~docv:"FILE"
             ~doc:"Write one shrunken repro line per stuck / violating \
                   signature to $(docv) ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Coverage-guided adversarial fault-plan search: mutate plans \
             toward unseen outcome signatures, then shrink every stuck or \
             violating witness to a minimal one-line repro")
    Term.(const run $ protocol $ hops
          $ topology_arg
              ~extra:
                "The hunt explores faults along the cheapest source-to-sink \
                 path (its length overrides --hops); signatures carry a \
                 path-shape bucket."
          $ seed $ budget $ gen_size $ jobs_arg
          $ baseline $ no_shrink $ max_shrink_trials $ out $ corpus_out
          $ repros_out $ metrics_out_arg $ bundle_out_arg)

(* ------------------------------- explore ------------------------------- *)

let explore_cmd =
  let run protocol hops drift max_corners j out metrics_out =
    let protocol = runner_protocol_of protocol in
    let domains = resolve_domains ~cmd:"explore" j in
    match
      Xchain.Explore.sweep ~hops ~drift_ppm:drift ~max_corners ~domains
        ?on_progress:(tty_progress "explore") ~protocol ()
    with
    | exception Invalid_argument e ->
        Fmt.epr "xchain explore: %s@." e;
        exit 2
    | r ->
        Fmt.pr "explore: %d hops, %d corners — %d violations@." hops
          r.Xchain.Explore.corners r.Xchain.Explore.violations;
        (match r.Xchain.Explore.first_witness with
        | Some w -> Fmt.pr "first witness: %s@." w
        | None -> ());
        write_sink out
          (Xchain.Explore.result_to_json ~hops ~drift_ppm:drift ~protocol r);
        dump_telemetry ~metrics_out ~spans_out:None;
        if r.Xchain.Explore.violations = 0 then 0 else 1
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Protocol to enumerate: sync | naive | htlc (TM protocols \
                   are not corner-enumerable).")
  in
  let hops = Arg.(value & opt int 1 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let drift =
    Arg.(value & opt int 50_000
         & info [ "drift-ppm" ] ~doc:"Clock drift bound for the corner clocks, ppm.")
  in
  let max_corners =
    Arg.(value & opt int 600_000
         & info [ "max-corners" ]
             ~doc:"Refuse instances needing more corners than this.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the sweep result as JSON to $(docv) ('-' for \
                   stdout). Deterministic except the trailing timing block.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively enumerate every extremal delay x clock corner of a \
             small payment instance and check Definition 1 on each — \
             exit 0 iff the sweep is clean. The corner space shards over \
             -j domains with byte-identical results")
    Term.(const run $ protocol $ hops $ drift $ max_corners $ jobs_arg $ out
          $ metrics_out_arg)

(* ------------------------------- trace --------------------------------- *)

let trace_cmd =
  let run protocol hops gst seed plan out trace_out dag_out =
    let protocol = runner_protocol_of protocol in
    let fault_plan =
      match plan with
      | None -> None
      | Some s -> (
          match Faults.Fault_plan.of_string s with
          | Ok p -> Some p
          | Error e ->
              Fmt.epr "xchain trace: bad fault plan: %s@." e;
              exit 2)
    in
    let causal = Obsv.Causal.create () in
    let cfg =
      {
        (Runner.default_config ~hops ~seed) with
        Runner.network =
          (match gst with
          | None -> Runner.Sync
          | Some gst -> Runner.Psync { gst });
        fault_plan;
        causal = Some causal;
      }
    in
    let wall_t0 = Fleet.now_ns () in
    let o = Runner.run cfg protocol in
    let wall_ns = max 1 (Fleet.now_ns () - wall_t0) in
    let committed = o.Runner.paid_node >= 0 in
    Fmt.pr "protocol %s, %d hops, seed %d: %s, engine stopped at t=%d@."
      (Runner.protocol_name protocol)
      hops seed
      (if committed then "commit" else "abort")
      o.Runner.end_time;
    Fmt.pr "causal graph: %d nodes, %d edges@."
      (Obsv.Causal.node_count causal)
      (Obsv.Causal.edge_count causal);
    print_payment_blame causal
      ~delta:(cfg.Runner.delta + cfg.Runner.sigma)
      ~sink:(if committed then o.Runner.paid_node else o.Runner.settled_node);
    let slice_end =
      if o.Runner.settled_node >= 0 then
        Obsv.Causal.time_of causal o.Runner.settled_node
      else o.Runner.end_time
    in
    dump_causal (Some causal) ~trace_out ~dag_out
      ~payments:
        [
          ( Runner.protocol_name protocol,
            0,
            0,
            slice_end,
            if committed then "commit" else "abort" );
        ];
    (match out with
    | None -> ()
    | Some _ ->
        (* same convention as chaos/explore/load reports: everything
           deterministic except the trailing flat "timing" object *)
        let sink =
          if committed then o.Runner.paid_node else o.Runner.settled_node
        in
        let blame_json =
          if sink >= 0 then
            Obsv.Blame.report_to_json
              (Obsv.Blame.attribute
                 ~delta:(cfg.Runner.delta + cfg.Runner.sigma)
                 causal ~root:0 ~sink)
          else "null"
        in
        write_sink out
          (Printf.sprintf
             "{\"trace\":{\"protocol\":\"%s\",\"hops\":%d,\"seed\":%d,\
              \"committed\":%b,\"end_time\":%d,\"nodes\":%d,\"edges\":%d},\
              \"blame\":%s,\"timing\":{\"events_processed\":%d,\
              \"wall_ns\":%d,\"events_per_sec\":%d}}\n"
             (Runner.protocol_name protocol)
             hops seed committed o.Runner.end_time
             (Obsv.Causal.node_count causal)
             (Obsv.Causal.edge_count causal)
             blame_json o.Runner.events wall_ns
             (int_of_float
                (float_of_int o.Runner.events
                /. (float_of_int wall_ns /. 1e9)))));
    0
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Protocol: sync | naive | htlc | weak | committee.")
  in
  let hops = Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let gst =
    Arg.(value & opt (some int) None
         & info [ "gst" ]
             ~doc:"Partial synchrony with this GST (default: synchronous).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule seed.") in
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"PLAN"
             ~doc:"Fault plan to run the payment under (see \
                   docs/fault_injection.md). Default: none.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the trace report (graph stats + blame \
                   decomposition) as JSON to $(docv) ('-' for stdout). \
                   Deterministic except the trailing timing block \
                   (events_processed / wall_ns / events_per_sec).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one payment with causal tracing on: reconstruct its \
             happens-before graph, print the critical path and the blame \
             decomposition of its end-to-end latency, and export the graph \
             as Chrome trace-event JSON or a DAG dump")
    Term.(const run $ protocol $ hops $ gst $ seed $ plan $ out $ trace_out_arg
          $ dag_out_arg)

(* -------------------------------- load --------------------------------- *)

let load_cmd =
  let run spec payments hops value commission arrival mix policy cap liquidity
      topology route splits patience stuck drift gst seed plan plan_file
      trace_cap replications j out metrics_out spans_out trace_out dag_out
      blame profile profile_out collapsed_out monitor stop_on_violation
      series_out bundle_out =
    arm_span_capture spans_out;
    let fail fmt = Fmt.kstr (fun s -> Fmt.epr "xchain load: %s@." s; exit 2) fmt in
    let workload =
      match spec with
      | Some s -> (
          match Traffic.Workload.of_string s with
          | Ok w -> w
          | Error e -> fail "bad --spec: %s" e)
      | None ->
          let parse what f s = match f s with Ok v -> v | Error e -> fail "bad %s: %s" what e in
          let w =
            {
              (Traffic.Workload.default ~payments) with
              Traffic.Workload.hops;
              value;
              commission;
              arrival = parse "--arrival" Traffic.Workload.arrival_of_string arrival;
              mix = parse "--mix" Traffic.Workload.mix_of_string mix;
              policy = parse "--policy" Traffic.Workload.policy_of_string policy;
              cap;
              liquidity;
              topology;
              route = parse "--route" Routing.Router.strategy_of_string route;
              splits;
              patience;
              stuck_after = stuck;
              drift_ppm = drift;
              gst;
            }
          in
          (match Traffic.Workload.validate w with
          | Ok () -> w
          | Error e -> fail "bad workload: %s" e)
    in
    let plan =
      let parse_plan ~what s =
        match Faults.Fault_plan.of_string s with
        | Ok p -> p
        | Error e -> fail "bad fault plan (%s): %s" what e
      in
      match (plan_file, plan) with
      | Some file, _ -> (
          match In_channel.with_open_text file In_channel.input_all with
          | contents -> parse_plan ~what:file (String.trim contents)
          | exception Sys_error msg -> fail "cannot read plan file: %s" msg)
      | None, Some s -> parse_plan ~what:"--plan" s
      | None, None -> Faults.Fault_plan.none
    in
    if replications < 1 then fail "--replications must be >= 1";
    if replications > 1 then begin
      (* Per-run telemetry sinks interleave nondeterministically across
         domains; the replication path only produces the deterministic
         aggregate (plus the strippable timing block). *)
      if
        spans_out <> None || trace_out <> None || dag_out <> None || blame
        || metrics_out <> None || profile || profile_out <> None
        || collapsed_out <> None || monitor || stop_on_violation
        || series_out <> None || bundle_out <> None
      then
        fail
          "--replications > 1 is incompatible with \
           --spans-out/--metrics-out/--trace-out/--dag-out/--blame/--profile/--monitor/--series-out/--bundle-out \
           (run a single replication for per-run telemetry)";
      let domains = resolve_domains ~cmd:"load" j in
      Obsv.Span.set_capture Obsv.Span.default false;
      let outcomes, stats =
        Fleet.run ~domains
          ?on_progress:(tty_progress "load replications")
          ~jobs:replications
          (fun i ->
            Traffic.Load.run ~plan ~trace_capacity:trace_cap ~workload
              ~seed:(seed + i) ())
      in
      let reports =
        Array.map
          (function
            | Error (f : Fleet.failure) ->
                fail "replication %d raised: %s" f.Fleet.job f.Fleet.message
            | Ok r -> r)
          outcomes
      in
      Fmt.pr "load: %a@." Traffic.Workload.pp workload;
      Fmt.pr "replications %d: seeds %d..%d, plan %s@." replications seed
        (seed + replications - 1)
        (Faults.Fault_plan.to_string plan);
      Array.iteri
        (fun i (r : Traffic.Load.report) ->
          Fmt.pr
            "  seed %d: committed %d, aborted %d, rejected %d, stuck %d, \
             violated %d@."
            (seed + i) r.Traffic.Load.committed r.Traffic.Load.aborted
            r.Traffic.Load.rejected r.Traffic.Load.stuck
            r.Traffic.Load.violated)
        reports;
      let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
      let clean =
        Array.for_all
          (fun (r : Traffic.Load.report) ->
            r.Traffic.Load.violations = [] && r.Traffic.Load.conservation_ok)
          reports
      in
      Fmt.pr "total: committed %d, aborted %d, rejected %d, stuck %d, \
              violated %d — %s@."
        (sum (fun r -> r.Traffic.Load.committed))
        (sum (fun r -> r.Traffic.Load.aborted))
        (sum (fun r -> r.Traffic.Load.rejected))
        (sum (fun r -> r.Traffic.Load.stuck))
        (sum (fun r -> r.Traffic.Load.violated))
        (if clean then "all clean" else "VIOLATIONS");
      (match out with
      | None -> ()
      | Some _ ->
          let buf = Buffer.create 4096 in
          Buffer.add_string buf "{\"replications\":[";
          Array.iteri
            (fun i r ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Traffic.Load.to_json r))
            reports;
          let events = sum (fun r -> r.Traffic.Load.events) in
          let wall_ns = stats.Fleet.wall_ns in
          Printf.bprintf buf
            "],\"timing\":{\"wall_ns\":%d,\"domains\":%d,\"events_per_sec\":%d}}\n"
            wall_ns stats.Fleet.domains
            (int_of_float
               (float_of_int events /. (float_of_int wall_ns /. 1e9)));
          write_sink out (Buffer.contents buf));
      exit (if clean then 0 else 1)
    end;
    let mon, sampler, recorder =
      watch_wanted ~monitor ~stop_on_violation ~series_out ~bundle_out
    in
    let causal =
      match (causal_wanted ~trace_out ~dag_out ~blame, bundle_out) with
      | Some c, _ -> Some c
      | None, Some _ -> Some (Obsv.Causal.create ())
      | None, None -> None
    in
    let prof = prof_wanted ~profile ~profile_out ~collapsed_out in
    let report =
      try
        Traffic.Load.run ?causal ?prof ?monitor:mon ?sampler ?recorder ~plan
          ~trace_capacity:trace_cap ~workload ~seed ()
      with Invalid_argument e -> fail "%s" e
    in
    Fmt.pr "%a@." Traffic.Load.pp_summary report;
    print_monitor_verdict mon;
    (match sampler with
    | None -> ()
    | Some s -> write_sink series_out (Obsv.Sampler.to_jsonl s));
    (match (recorder, mon) with
    | Some rc, Some m ->
        let failed =
          report.Traffic.Load.violations <> []
          || (not report.Traffic.Load.conservation_ok)
          || report.Traffic.Load.stuck > 0
        in
        if failed then begin
          let reason, property, detail, at =
            match Obsv.Monitor.first_trip m with
            | Some tr ->
                ( "violation",
                  tr.Obsv.Monitor.property,
                  tr.Obsv.Monitor.detail,
                  tr.Obsv.Monitor.at )
            | None ->
                ( "stuck",
                  "-",
                  "unsettled payments when the run stopped",
                  report.Traffic.Load.makespan )
          in
          let repro =
            Printf.sprintf "xchain load --spec '%s' --seed %d%s"
              (Traffic.Workload.to_string workload)
              seed
              (if Faults.Fault_plan.is_none plan then ""
               else
                 Printf.sprintf " --plan '%s'"
                   (Faults.Fault_plan.to_string plan))
          in
          let dag = Option.map Xchain.Chaos.dag_slice_json causal in
          write_sink bundle_out
            (Obsv.Recorder.bundle_json ~reason ~property ~detail ~at ~repro
               ?dag
               ~metrics:(Obsv.Metrics.to_json Obsv.Metrics.default)
               rc)
        end
    | _ -> ());
    if blame then
      Option.iter
        (fun agg -> Fmt.pr "%a@." Obsv.Blame.pp_agg agg)
        report.Traffic.Load.blame;
    Option.iter
      (fun c ->
        let payments =
          List.map
            (fun (k, r) ->
              ( "pay#" ^ string_of_int k,
                k,
                Obsv.Causal.time_of c r.Obsv.Blame.root,
                Obsv.Causal.time_of c r.Obsv.Blame.sink,
                "committed" ))
            report.Traffic.Load.blame_reports
        in
        dump_causal (Some c) ~trace_out ~dag_out ~payments)
      causal;
    dump_prof ~table:profile prof ~profile_out ~collapsed_out;
    write_sink out (Traffic.Load.to_json report ^ "\n");
    dump_telemetry ~metrics_out ~spans_out;
    if report.Traffic.Load.violations = [] && report.Traffic.Load.conservation_ok
    then 0
    else 1
  in
  let spec =
    Arg.(value & opt (some string) None
         & info [ "spec" ] ~docv:"WORKLOAD"
             ~doc:"Full workload as the one-line key=value grammar (exactly \
                   what a report embeds); overrides the individual flags.")
  in
  let payments =
    Arg.(value & opt int 100 & info [ "payments" ] ~doc:"Concurrent payment instances.")
  in
  let hops = Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Escrows per payment.") in
  let value = Arg.(value & opt int 1000 & info [ "value" ] ~doc:"What Bob is owed.") in
  let commission =
    Arg.(value & opt int 10 & info [ "commission" ] ~doc:"Per-connector commission.")
  in
  let arrival =
    Arg.(value & opt string "poisson:40"
         & info [ "arrival" ] ~docv:"PROC"
             ~doc:"Arrival process: poisson:GAP | closed:CLIENTS:THINK | \
                   burst:SIZE:EVERY | ramp:HI:LO.")
  in
  let mix =
    Arg.(value & opt string "sync"
         & info [ "mix" ] ~docv:"MIX"
             ~doc:"Weighted protocol mix, e.g. 'sync:2,weak:1,htlc:1'. \
                   Protocols: sync naive htlc weak committee atomic.")
  in
  let policy =
    Arg.(value & opt string "reserve"
         & info [ "policy" ]
             ~doc:"Admission policy: reserve (scheduler holds each leg's \
                   funds) or optimistic (deposits race; funding-checked \
                   protocols only).")
  in
  let cap =
    Arg.(value & opt int 0
         & info [ "cap" ] ~doc:"Max payments in flight (0 = unlimited).")
  in
  let liquidity =
    Arg.(value & opt int 0
         & info [ "liquidity" ]
             ~doc:"Payer funding in multiples of one payment's leg amount \
                   (0 = ample: one unit per payment).")
  in
  let route =
    Arg.(value & opt string "shortest"
         & info [ "route" ] ~docv:"STRATEGY"
             ~doc:"Path-selection strategy over --topology: shortest \
                   (cheapest-first greedy) or round-robin (rotating fair \
                   shares).")
  in
  let splits =
    Arg.(value & opt int 1
         & info [ "splits" ] ~docv:"N"
             ~doc:"Max edge-disjoint paths a payment may split across \
                   (requires --topology).")
  in
  let patience =
    Arg.(value & opt int 2000
         & info [ "patience" ] ~doc:"Admission-queue patience, ticks.")
  in
  let stuck =
    Arg.(value & opt int 0
         & info [ "stuck-after" ]
             ~doc:"Stuck deadline after admission, ticks (0 = derived from \
                   the mix's protocol horizons).")
  in
  let drift =
    Arg.(value & opt int 10_000 & info [ "drift" ] ~doc:"Clock drift bound, ppm.")
  in
  let gst =
    Arg.(value & opt (some int) None
         & info [ "gst" ] ~doc:"Partial synchrony with this GST (default: synchronous).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.") in
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"PLAN"
             ~doc:"Fault plan over host pids 0..block-1, applied to every \
                   payment (see docs/fault_injection.md). Default: none.")
  in
  let plan_file =
    Arg.(value & opt (some string) None
         & info [ "plan-file" ] ~docv:"FILE"
             ~doc:"Read the fault plan from $(docv) (overrides --plan).")
  in
  let trace_cap =
    Arg.(value & opt int 4096
         & info [ "trace-cap" ]
             ~doc:"Engine trace ring-buffer capacity (0 = unbounded). \
                   Accounting is hook-fed, so eviction never skews the report.")
  in
  let replications =
    Arg.(value & opt int 1
         & info [ "replications" ] ~docv:"N"
             ~doc:"Run the workload $(docv) times with seeds seed, seed+1, \
                   …, sharded over -j fleet domains, and report every \
                   replication plus the aggregate. Incompatible with the \
                   per-run telemetry sinks.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON report to $(docv) ('-' for stdout). \
                   Bit-identical across runs with equal inputs, except the \
                   trailing timing block (host wall clock).")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Run thousands of concurrent payments in one engine over shared \
             escrow liquidity, classify every outcome, check the safety \
             subset, and report throughput and latency percentiles")
    Term.(
      const run $ spec $ payments $ hops $ value $ commission $ arrival $ mix
      $ policy $ cap $ liquidity
      $ topology_arg
          ~extra:
            "Payments are routed source-to-sink over the graph's per-edge \
             liquidity instead of the fixed --hops chain (requires \
             --policy reserve)."
      $ route $ splits $ patience $ stuck $ drift $ gst $ seed $ plan
      $ plan_file $ trace_cap $ replications $ jobs_arg $ out $ metrics_out_arg
      $ spans_out_arg $ trace_out_arg $ dag_out_arg $ blame_arg $ profile_flag
      $ profile_out_arg $ collapsed_out_arg $ monitor_flag
      $ stop_on_violation_flag $ series_out_arg $ bundle_out_arg)

(* ------------------------------ committee ------------------------------ *)

let committee_cmd =
  let run committees batches pipeline payments hops patience gst seed j out
      metrics_out =
    let fail fmt =
      Fmt.kstr
        (fun s ->
          Fmt.epr "xchain committee: %s@." s;
          exit 2)
        fmt
    in
    let parse_committee s =
      (* family:size:f[:faulty] — batch and pipeline come from the sweep *)
      match String.split_on_char ':' s with
      | ([ fam; size; f ] | [ fam; size; f; _ ]) as fields -> (
          let faulty = match fields with [ _; _; _; x ] -> x | _ -> "0" in
          match
            ( int_of_string_opt size,
              int_of_string_opt f,
              int_of_string_opt faulty )
          with
          | Some size, Some f, Some faulty ->
              (fam, size, f, faulty)
          | _ -> fail "bad committee %S (want family:size:f[:faulty])" s)
      | _ -> fail "bad committee %S (want family:size:f[:faulty])" s
    in
    let committees =
      List.map parse_committee (String.split_on_char ',' committees)
    in
    let batches =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some b when b >= 1 -> b
          | _ -> fail "bad --batches entry %S" s)
        (String.split_on_char ',' batches)
    in
    if committees = [] || batches = [] then
      fail "--committees and --batches must be non-empty";
    (* cells in (committee, batch) order: batch is the inner axis so the
       unbatched baseline sits next to its batched counterpart *)
    let cells =
      List.concat_map
        (fun c -> List.map (fun b -> (c, b)) batches)
        committees
    in
    let workload_of ((fam, size, f, faulty), batch) =
      let w =
        {
          (Traffic.Workload.default ~payments) with
          Traffic.Workload.hops;
          arrival = Traffic.Workload.Burst { size = payments; every = 1 };
          mix = [ (Traffic.Workload.Shared, 1) ];
          patience;
          drift_ppm = 0;
          gst;
          committee =
            Some
              {
                Traffic.Workload.c_family = fam;
                c_size = size;
                c_f = f;
                c_batch = batch;
                c_pipeline = pipeline;
                c_faulty = faulty;
              };
        }
      in
      (match Traffic.Workload.validate w with
      | Ok () -> ()
      | Error e -> fail "cell %s:%d:%d batch %d: %s" fam size f batch e);
      w
    in
    let cells = Array.of_list cells in
    let workloads = Array.map workload_of cells in
    let domains = resolve_domains ~cmd:"committee" j in
    Obsv.Span.set_capture Obsv.Span.default false;
    let outcomes, stats =
      Fleet.run ~domains
        ?on_progress:(tty_progress "committee sweep")
        ~jobs:(Array.length cells)
        (fun i -> Traffic.Load.run ~workload:workloads.(i) ~seed ())
    in
    let reports =
      Array.mapi
        (fun i -> function
          | Error (fl : Fleet.failure) ->
              let (fam, size, f, _), batch = cells.(i) in
              fail "cell %s:%d:%d batch %d raised: %s" fam size f batch
                fl.Fleet.message
          | Ok r -> r)
        outcomes
    in
    Fmt.pr
      "committee sweep: %d payments x %d hops, pipeline %d, seed %d, %d \
       cells@."
      payments hops pipeline seed (Array.length cells);
    (* all payments arrive in one burst, so the decide span is exactly
       the slowest payment's latency — the makespan is padded out to the
       patience horizon and would wash batching out of a rate *)
    let decided_cpm (r : Traffic.Load.report) =
      if r.Traffic.Load.latency_max = 0 then 0
      else r.Traffic.Load.committed * 1_000_000 / r.Traffic.Load.latency_max
    in
    Fmt.pr "%-10s %5s %3s %6s %6s  %9s %6s %6s %6s %11s %8s@." "family" "size"
      "f" "faulty" "batch" "committed" "certs" "maxbat" "rounds" "decided/Mt"
      "cert-lat";
    let clean = ref true in
    Array.iteri
      (fun i (r : Traffic.Load.report) ->
        let (fam, size, f, faulty), batch = cells.(i) in
        let cs =
          match r.Traffic.Load.committee_stats with
          | Some s -> s
          | None -> fail "cell %s:%d:%d batch %d: no committee stats" fam size f batch
        in
        if
          r.Traffic.Load.violations <> []
          || (not r.Traffic.Load.conservation_ok)
          || r.Traffic.Load.committed <> payments
        then clean := false;
        Fmt.pr "%-10s %5d %3d %6d %6d  %9d %6d %6d %6d %11d %8d@." fam size f
          faulty batch r.Traffic.Load.committed cs.Traffic.Load.certs
          cs.Traffic.Load.max_batch cs.Traffic.Load.rounds (decided_cpm r)
          (if cs.Traffic.Load.certs = 0 then 0
           else cs.Traffic.Load.cert_lat_sum / cs.Traffic.Load.certs))
      reports;
    Fmt.pr "%s@." (if !clean then "all cells clean" else "CELLS FAILED");
    (match out with
    | None -> ()
    | Some _ ->
        let buf = Buffer.create 4096 in
        Printf.bprintf buf
          "{\"payments\":%d,\"hops\":%d,\"pipeline\":%d,\"seed\":%d,\"sweep\":["
          payments hops pipeline seed;
        Array.iteri
          (fun i (r : Traffic.Load.report) ->
            let (fam, size, f, faulty), batch = cells.(i) in
            let cs = Option.get r.Traffic.Load.committee_stats in
            if i > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf
              "{\"family\":\"%s\",\"size\":%d,\"f\":%d,\"faulty\":%d,\"batch\":%d,\"status\":\"%s\",\"committed\":%d,\"decided_cpm\":%d,\"messages\":%d,\"latency\":{\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d},\"committee\":{\"certs\":%d,\"verdicts\":%d,\"max_batch\":%d,\"rounds\":%d,\"cert_lat_sum\":%d,\"cert_lat_max\":%d}}"
              fam size f faulty batch r.Traffic.Load.status
              r.Traffic.Load.committed (decided_cpm r)
              r.Traffic.Load.messages r.Traffic.Load.latency_p50
              r.Traffic.Load.latency_p95 r.Traffic.Load.latency_p99
              r.Traffic.Load.latency_max cs.Traffic.Load.certs
              cs.Traffic.Load.verdicts cs.Traffic.Load.max_batch
              cs.Traffic.Load.rounds cs.Traffic.Load.cert_lat_sum
              cs.Traffic.Load.cert_lat_max)
          reports;
        let events =
          Array.fold_left
            (fun acc (r : Traffic.Load.report) -> acc + r.Traffic.Load.events)
            0 reports
        in
        let wall_ns = stats.Fleet.wall_ns in
        Printf.bprintf buf
          "],\"timing\":{\"wall_ns\":%d,\"domains\":%d,\"events_per_sec\":%d}}\n"
          wall_ns stats.Fleet.domains
          (int_of_float (float_of_int events /. (float_of_int wall_ns /. 1e9)));
        write_sink out (Buffer.contents buf));
    write_sink metrics_out (Obsv.Prometheus.render Obsv.Metrics.default);
    if !clean then 0 else 1
  in
  let committees =
    Arg.(
      value
      & opt string "majority:4:1,majority:16:5,majority:64:21"
      & info [ "committees" ] ~docv:"LIST"
          ~doc:
            "Comma-separated committee shapes, each family:size:f[:faulty] \
             (family: majority | weighted | grid; grid sizes must be \
             perfect squares; faulty replicas are crash-silent, never the \
             sequencer).")
  in
  let batches =
    Arg.(
      value & opt string "1,32"
      & info [ "batches" ] ~docv:"LIST"
          ~doc:
            "Comma-separated certificate batch caps; include 1 for the \
             unbatched baseline.")
  in
  let pipeline =
    Arg.(
      value & opt int 4
      & info [ "pipeline" ] ~docv:"N"
          ~doc:"Max concurrently undecided slots (>= 1).")
  in
  let payments =
    Arg.(
      value & opt int 128
      & info [ "payments" ]
          ~doc:
            "Payments per cell, all arriving in one burst so batches can \
             fill.")
  in
  let hops = Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Escrows per payment.") in
  let patience =
    Arg.(
      value & opt int 100_000
      & info [ "patience" ]
          ~doc:
            "Admission-queue patience, ticks; generous because the burst \
             queues every payment at once.")
  in
  let gst =
    Arg.(
      value
      & opt (some int) None
      & info [ "gst" ]
          ~doc:"Partial synchrony with this GST (default: synchronous).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed (same for every cell).") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the sweep as JSON to $(docv) ('-' for stdout). \
             Bit-identical across runs with equal inputs for any -j, except \
             the trailing timing block.")
  in
  Cmd.v
    (Cmd.info "committee"
       ~doc:
         "Sweep shared notary committees (size x quorum family x batch cap) \
          under a burst of payments and report certificate batching, \
          consensus rounds and decided-payment throughput")
    Term.(
      const run $ committees $ batches $ pipeline $ payments $ hops $ patience
      $ gst $ seed $ jobs_arg $ out $ metrics_out_arg)

(* -------------------------------- route -------------------------------- *)

let route_cmd =
  let run spec value splits strategy rebalance json out metrics_out =
    let module RT = Routing.Topology in
    let module RR = Routing.Router in
    let topo =
      match RT.of_string spec with
      | Ok t -> t
      | Error e ->
          Fmt.epr "xchain route: bad topology: %s@." e;
          exit 2
    in
    let strat =
      match RR.strategy_of_string strategy with
      | Ok s -> s
      | Error e ->
          Fmt.epr "xchain route: bad --strategy: %s@." e;
          exit 2
    in
    if value < 1 then begin
      Fmt.epr "xchain route: --value must be positive@.";
      exit 2
    end;
    if splits < 1 then begin
      Fmt.epr "xchain route: --splits must be positive@.";
      exit 2
    end;
    let avail e = RT.capacity topo.RT.edges.(e) in
    let flow = RR.max_flow topo () in
    let flow_str =
      if flow >= RT.unbounded then "unbounded" else string_of_int flow
    in
    let candidates = RR.paths topo ~max:splits () in
    let router = RR.create ~strategy:strat topo in
    let routed = RR.route router ~avail ~value ~max_splits:splits in
    let reb = Routing.Rebalance.plan topo in
    if json then begin
      let b = Buffer.create 1024 in
      let str s =
        Buffer.add_string b ("\"" ^ Obsv.Metrics.json_escape s ^ "\"")
      in
      Buffer.add_string b "{\"topology\":";
      str (RT.to_string topo);
      Printf.bprintf b ",\"nodes\":%d,\"edges\":%d,\"max_flow\":"
        topo.RT.nodes
        (Array.length topo.RT.edges);
      if flow >= RT.unbounded then str "unbounded"
      else Buffer.add_string b (string_of_int flow);
      Buffer.add_string b ",\"liquidity_histogram\":{";
      List.iteri
        (fun i (bucket, n) ->
          if i > 0 then Buffer.add_char b ',';
          str bucket;
          Printf.bprintf b ":%d" n)
        (RT.liquidity_histogram topo);
      Printf.bprintf b "},\"value\":%d,\"strategy\":" value;
      str (RR.strategy_name strat);
      Buffer.add_string b ",\"route\":";
      (match routed with
      | Ok ss ->
          Buffer.add_char b '[';
          List.iteri
            (fun i (s : RR.split) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b "{\"nodes\":[";
              List.iteri
                (fun j n ->
                  if j > 0 then Buffer.add_char b ',';
                  Buffer.add_string b (string_of_int n))
                (RR.path_nodes topo s.RR.path);
              Printf.bprintf b "],\"value\":%d}" s.RR.value)
            ss;
          Buffer.add_char b ']'
      | Error e ->
          Buffer.add_string b "{\"error\":";
          str e;
          Buffer.add_char b '}');
      Printf.bprintf b ",\"rebalance\":{\"moves\":%d,\"volume\":%d}}"
        (List.length reb.Routing.Rebalance.moves)
        reb.Routing.Rebalance.volume;
      Buffer.add_char b '\n';
      write_sink (Some (Option.value out ~default:"-")) (Buffer.contents b)
    end
    else begin
      Fmt.pr "topology: %s@." (RT.to_string topo);
      Fmt.pr "nodes %d, edges %d, source %d, sink %d@." topo.RT.nodes
        (Array.length topo.RT.edges) (RT.source topo) (RT.sink topo);
      Fmt.pr "max-flow bound: %s@." flow_str;
      Fmt.pr "liquidity histogram:@.";
      List.iter
        (fun (bucket, n) -> Fmt.pr "  %-10s %d edge(s)@." bucket n)
        (RT.liquidity_histogram topo);
      Fmt.pr "candidate paths (cost order, max %d):@." splits;
      List.iter
        (fun p ->
          let cap = RR.path_capacity topo ~avail p in
          Fmt.pr "  %s  capacity %s@."
            (String.concat ">"
               (List.map string_of_int (RR.path_nodes topo p)))
            (if cap >= RT.unbounded then "unbounded" else string_of_int cap))
        candidates;
      (match routed with
      | Ok ss ->
          Fmt.pr "route %d via %s:@." value (RR.strategy_name strat);
          List.iter
            (fun (s : RR.split) ->
              Fmt.pr "  %s  carries %d@."
                (String.concat ">"
                   (List.map string_of_int (RR.path_nodes topo s.RR.path)))
                s.RR.value)
            ss
      | Error e -> Fmt.pr "route %d: %s@." value e);
      if rebalance then Fmt.pr "%a@." Routing.Rebalance.pp reb;
      match out with
      | None -> ()
      | Some _ -> write_sink out (RT.to_string topo ^ "\n")
    end;
    let reg = Obsv.Metrics.default in
    Obsv.Metrics.set
      (Obsv.Metrics.gauge reg
         ~help:"Volume a rebalancing pass would move on this topology"
         "xchain_route_rebalance_volume")
      reb.Routing.Rebalance.volume;
    dump_telemetry ~metrics_out ~spans_out:None;
    match routed with Ok _ -> 0 | Error _ -> 1
  in
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TOPOLOGY"
             ~doc:"Topology spec: linear:H | hub:K | er:N:E:SEED | \
                   sf:N:D:SEED | graph:N;U>V:LIQ:COMM,... (see \
                   docs/routing.md).")
  in
  let value =
    Arg.(value & opt int 1000
         & info [ "value" ] ~doc:"Payment value to route.")
  in
  let splits =
    Arg.(value & opt int 4
         & info [ "splits" ] ~docv:"N"
             ~doc:"Max edge-disjoint paths to split across.")
  in
  let strategy =
    Arg.(value & opt string "shortest"
         & info [ "strategy" ] ~docv:"STRATEGY"
             ~doc:"shortest or round-robin.")
  in
  let rebalance =
    Arg.(value & flag
         & info [ "rebalance" ]
             ~doc:"Print the liquidity-rebalancing plan (batched transfers \
                   evening out each node's bounded out-edges).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the analysis as JSON instead of text.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON analysis (with --json) or the canonical \
                   topology line to $(docv) ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Analyse a payment graph: candidate source-to-sink paths, \
             max-flow bound, liquidity histogram, the split a router would \
             choose for a value, and an optional rebalancing plan")
    Term.(const run $ spec $ value $ splits $ strategy $ rebalance $ json
          $ out $ metrics_out_arg)

(* ------------------------------- profile ------------------------------- *)

let profile_cmd =
  let run workload payments hops arrival mix protocol runs seed top out
      profile_out collapsed_out topology splits =
    let prof = Obsv.Prof.create ~now_ns:Fleet.now_ns () in
    let code =
      match workload with
      | "load" ->
          (* causal tracing on: dispatch sites then attribute to
             individual payments (pay#K frames) instead of one "run"
             bucket, cross-linking profiles with xchain trace ids *)
          let causal = Obsv.Causal.create () in
          let workload =
            let w = Traffic.Workload.default ~payments in
            let parse what f s =
              match f s with
              | Ok v -> v
              | Error e ->
                  Fmt.epr "xchain profile: bad %s: %s@." what e;
                  exit 2
            in
            {
              w with
              Traffic.Workload.hops;
              arrival =
                parse "--arrival" Traffic.Workload.arrival_of_string arrival;
              mix = parse "--mix" Traffic.Workload.mix_of_string mix;
              topology;
              splits;
            }
          in
          let report =
            try Traffic.Load.run ~causal ~prof ~workload ~seed ()
            with Invalid_argument e ->
              Fmt.epr "xchain profile: %s@." e;
              exit 2
          in
          Fmt.pr "%a@." Traffic.Load.pp_summary report;
          write_sink out (Traffic.Load.to_json report ^ "\n");
          if
            report.Traffic.Load.violations = []
            && report.Traffic.Load.conservation_ok
          then 0
          else 1
      | "chaos" ->
          let protocol = runner_protocol_of protocol in
          let hops =
            hops_of_topology ~cmd:"profile" ~value:1000 ~hops topology
          in
          let s =
            Xchain.Chaos.soak ~hops ~protocol ~runs ~seed ~prof
              ?on_progress:(tty_progress "profile chaos") ()
          in
          Fmt.pr "%a@." Xchain.Chaos.pp_summary s;
          write_sink out (Xchain.Chaos.summary_to_json ~hops ~protocol ~seed s);
          if s.Xchain.Chaos.violations = [] then 0 else 1
      | "explore" -> (
          let protocol = runner_protocol_of protocol in
          let hops =
            hops_of_topology ~cmd:"profile" ~value:1000 ~hops topology
          in
          match
            Xchain.Explore.sweep ~hops ~prof
              ?on_progress:(tty_progress "profile explore") ~protocol ()
          with
          | exception Invalid_argument e ->
              Fmt.epr "xchain profile: %s@." e;
              exit 2
          | r ->
              Fmt.pr "explore: %d hops, %d corners — %d violations@." hops
                r.Xchain.Explore.corners r.Xchain.Explore.violations;
              write_sink out (Xchain.Explore.result_to_json ~hops ~protocol r);
              if r.Xchain.Explore.violations = 0 then 0 else 1)
      | other ->
          Fmt.epr "xchain profile: unknown workload %S (load|chaos|explore)@."
            other;
          exit 2
    in
    dump_prof ~top ~table:true (Some prof) ~profile_out ~collapsed_out;
    code
  in
  let workload =
    Arg.(
      value & pos 0 string "load"
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "What to profile: load (default — a multiplexed load run with \
             per-payment attribution), chaos (a single-domain soak), or \
             explore (a corner sweep).")
  in
  let payments =
    Arg.(value & opt int 1000
         & info [ "payments" ] ~doc:"Load: concurrent payment instances.")
  in
  let hops = Arg.(value & opt int 2 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let arrival =
    Arg.(value & opt string "poisson:40"
         & info [ "arrival" ] ~docv:"PROC" ~doc:"Load: arrival process.")
  in
  let mix =
    Arg.(value & opt string "sync"
         & info [ "mix" ] ~docv:"MIX" ~doc:"Load: weighted protocol mix.")
  in
  let protocol =
    Arg.(value & opt protocol_conv `Sync
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Chaos/explore: protocol under test.")
  in
  let runs =
    Arg.(value & opt int 200
         & info [ "runs" ] ~doc:"Chaos: number of random plans to run.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.") in
  let top =
    Arg.(value & opt int 15
         & info [ "top" ] ~docv:"N" ~doc:"Rows in the hot-site table.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the wrapped workload's own JSON report to $(docv) \
                   ('-' for stdout), exactly as the underlying command \
                   would.")
  in
  let splits =
    Arg.(value & opt int 1
         & info [ "splits" ] ~docv:"N"
             ~doc:"Load: max edge-disjoint paths a payment may split across \
                   (requires --topology).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a load, chaos or explore workload with the dispatch profiler \
          armed: wall time and allocation attributed per payment x process \
          x event kind, a top-N hot-site table, and JSON / collapsed-stack \
          (speedscope) exports. Deterministic modulo the strippable \
          timing/prof_timing blocks")
    Term.(
      const run $ workload $ payments $ hops $ arrival $ mix $ protocol $ runs
      $ seed $ top $ out $ profile_out_arg $ collapsed_out_arg
      $ topology_arg
          ~extra:
            "Load: payments route over the graph's per-edge liquidity; \
             chaos/explore: the hop count becomes the cheapest \
             source-to-sink path's length (overrides --hops)."
      $ splits)

(* -------------------------------- dot ---------------------------------- *)

let dot_cmd =
  let run hops who =
    let topo = Topology.create ~hops in
    let params = Params.derive (Params.default_input ~hops) in
    let env = Env.make ~topo ~params () in
    let auto =
      match who with
      | "alice" -> Sync_protocol.alice_automaton env
      | "bob" -> Sync_protocol.bob_automaton env
      | "escrow" -> Sync_protocol.escrow_automaton env 0
      | "chloe" ->
          if hops < 2 then failwith "need >= 2 hops for a connector"
          else Sync_protocol.connector_automaton env 1
      | other -> failwith (Printf.sprintf "unknown automaton %S" other)
    in
    print_string (Anta.Automaton.to_dot auto);
    0
  in
  let hops = Arg.(value & opt int 3 & info [ "n"; "hops" ] ~doc:"Escrows.") in
  let who =
    Arg.(value & pos 0 string "escrow"
         & info [] ~docv:"WHO" ~doc:"alice | chloe | bob | escrow.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Figure 2 automaton as Graphviz")
    Term.(const run $ hops $ who)

let () =
  let info =
    Cmd.info "xchain" ~version:"1.0.0"
      ~doc:"Cross-chain payment with success guarantees (SPAA 2020) — reproduction"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ pay_cmd; experiment_cmd; params_cmd; dot_cmd; audit_cmd; deal_cmd;
            chaos_cmd; hunt_cmd; explore_cmd; trace_cmd; load_cmd;
            committee_cmd; route_cmd;
            profile_cmd;
            metrics_cmd ]))
