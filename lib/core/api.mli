(** High-level convenience API.

    One call sets up a payment chain, runs a protocol over it, checks the
    paper's properties, and returns a compact result — the entry point used
    by the examples and the CLI. For full control use {!Protocols.Runner}
    directly; for the reproduction tables use {!Experiments}. *)

type protocol_choice =
  | Time_bounded  (** Thm 1's protocol (requires a synchronous network) *)
  | Naive  (** the drift-blind baseline *)
  | Htlc_chain
  | Weak_single of { patience : int }
  | Weak_committee of { patience : int; f : int }
  | Weak_chain of { patience : int; validators : int }
      (** the TM as a blockchain-replicated contract *)
  | Atomic of { deadline : int }  (** the Interledger atomic baseline *)

type network_choice =
  | Synchronous  (** delays within δ = 100 ticks *)
  | Partially_synchronous of { gst : int }
  | Asynchronous

type result = {
  success : bool;  (** Bob was paid *)
  outcome : Protocols.Runner.outcome;
  report : Props.Verdict.report;
  all_properties_hold : bool;
  terminations : (string * string) list;  (** (participant, outcome tag) *)
  bob_paid_at : int option;  (** global ticks *)
  messages : int;
}

val pay :
  ?hops:int ->
  ?value:int ->
  ?commission:int ->
  ?drift_ppm:int ->
  ?network:network_choice ->
  ?protocol:protocol_choice ->
  ?faults:(int * Protocols.Byzantine.t) list ->
  ?seed:int ->
  unit ->
  result
(** Defaults: 2 hops (one connector), value 1000, commission 10, 1% drift,
    synchronous network, the time-bounded protocol, no faults, seed 1. *)

val participant_name : Protocols.Runner.outcome -> int -> string
(** "Alice", "Chloe1", "Bob", "e0", "tm0", … *)

val pp_result : Format.formatter -> result -> unit
(** A human-oriented summary: outcome, per-participant terminations,
    property report. *)
