(** Human-readable postmortems of payment runs.

    A report gathers everything an operator would ask after a run: the
    headline outcome, a per-participant account (role, termination, net
    position, final balances), the property verdicts, promise breaches,
    and — for the automata-based protocols — per-participant conformance
    against Figure 2. Rendering is plain text, suitable for terminals and
    for golden-file tests. *)

type participant = {
  pid : int;
  name : string;  (** "Alice", "Chloe2", "e0", "tm0", … *)
  byzantine : string option;  (** substituted strategy, if any *)
  terminated : (int * string) option;  (** (global time, outcome tag) *)
  net : int;  (** customers: net position; others 0 *)
  conforms : bool option;
      (** Figure 2 conformance; [None] when not applicable (non-automaton
          protocol, or TM pids) *)
}

type t = {
  outcome : Protocols.Runner.outcome;
  headline : string;
  participants : participant list;
  verdicts : Props.Verdict.report;
  breaches : Props.Promises.breach list;
  conserved : bool;
}

val build : Protocols.Runner.outcome -> t
(** Chooses the Def. 1 or Def. 2 verdict set from the outcome's protocol,
    runs the promise monitors, and — for [Sync_timebound] /
    [Naive_universal] — checks every payment participant's conformance. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
