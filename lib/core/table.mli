(** Plain-text result tables for the experiment harness. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** printed under the table *)
}

val make :
  title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val cell_f : float -> string
(** One decimal. *)

val cell_pct : float -> string
(** "97.5%". *)

val cell_i : int -> string
val cell_b : bool -> string
(** "yes"/"no". *)

val render : Format.formatter -> t -> unit
(** Column-aligned ASCII; header separated by dashes. *)

val to_string : t -> string
