open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

type result = {
  corners : int;
  violations : int;
  first_witness : string option;
  events : int;
  domains : int;
  wall_ns : int;
}

(* The sync protocol sends exactly 6 messages per hop (G, $, P, χ,
   χ-forward, settlement $); naive is the same automaton. *)
let message_budget ~hops ~protocol =
  match protocol with
  | Runner.Sync_timebound | Runner.Naive_universal -> 6 * hops
  | Runner.Htlc -> (5 * hops) + 1
  | Runner.Weak _ | Runner.Atomic _ ->
      invalid_arg "Explore.message_budget: TM protocols are not corner-enumerable here"

(* A bit-vector adversary: the k-th send of the run takes its delay from
   bit k — set means the model's upper bound, clear means the lower. *)
let bitvector_adversary bits : Sim.Network.adversary =
  let counter = ref 0 in
  fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds ->
    let k = !counter in
    incr counter;
    let hi = k < 62 && (bits lsr k) land 1 = 1 in
    Some (if hi then bounds.Sim.Network.hi else bounds.Sim.Network.lo)

let corner_clock ~drift_ppm fast =
  let ppm = 1_000_000 in
  let num = if fast then ppm + drift_ppm else ppm - drift_ppm in
  Sim.Clock.create ~num ~den:ppm ()

let describe ~hops ~delay_bits ~clock_bits ~msgs ~procs report =
  Fmt.str "hops=%d delays=0x%x/%d clocks=0x%x/%d -> %a" hops delay_bits msgs
    clock_bits procs
    Fmt.(list ~sep:(any "; ") V.pp)
    (V.failures report)

(* Everything except the trailing "timing" member is deterministic; see
   Chaos.summary_to_json for the convention. *)
let result_to_json ?(hops = 1) ?(drift_ppm = 50_000) ~protocol r =
  let protocol_name = Runner.protocol_name protocol in
  let witness =
    match r.first_witness with
    | None -> "null"
    | Some w -> "\"" ^ Obsv.Metrics.json_escape w ^ "\""
  in
  let wall_s = float_of_int r.wall_ns /. 1e9 in
  Printf.sprintf
    "{\"explore\":{\"hops\":%d,\"protocol\":\"%s\",\"drift_ppm\":%d,\
     \"corners\":%d,\"violations\":%d,\"first_witness\":%s,\"events\":%d},\
     \"timing\":{\"wall_ns\":%d,\"domains\":%d,\"events_per_sec\":%d}}\n"
    hops protocol_name drift_ppm r.corners r.violations witness r.events
    r.wall_ns r.domains
    (int_of_float (float_of_int r.events /. wall_s))

let sweep ?(hops = 1) ?(drift_ppm = 50_000) ?(max_corners = 600_000) ?domains
    ?prof ?on_progress ~protocol () =
  (* profiled sweeps run on one domain: the profiler is single-threaded *)
  let domains = match prof with Some _ -> Some 1 | None -> domains in
  let msgs = message_budget ~hops ~protocol in
  let procs = (2 * hops) + 1 in
  if msgs + procs >= 40 then
    invalid_arg "Explore.sweep: instance too large to enumerate";
  let total = (1 lsl msgs) * (1 lsl procs) in
  if total > max_corners then
    invalid_arg
      (Printf.sprintf "Explore.sweep: %d corners exceed the budget %d" total
         max_corners);
  (* Corner [i] flattens the original (delay outer, clock inner) loop
     nest, so job ids preserve the historical enumeration order and
     "first witness" means the same corner at any domain count. *)
  let corner i =
    let delay_bits = i lsr procs and clock_bits = i land ((1 lsl procs) - 1) in
    let cfg =
      {
        (Runner.default_config ~hops ~seed:1) with
        drift_ppm;
        prof;
        adversary = Some (bitvector_adversary delay_bits);
        clock_override =
          Some
            (fun pid -> corner_clock ~drift_ppm ((clock_bits lsr pid) land 1 = 1));
      }
    in
    let o = Runner.run cfg protocol in
    let report = PP.check_def1 ~time_bounded:false (PP.view o) in
    let witness =
      if V.all_hold report then None
      else Some (describe ~hops ~delay_bits ~clock_bits ~msgs ~procs report)
    in
    (o.Runner.events, witness)
  in
  let outcomes, stats = Fleet.run ?domains ?on_progress ~jobs:total corner in
  let violations = ref 0 and events = ref 0 and first_witness = ref None in
  Array.iter
    (function
      | Error (f : Fleet.failure) ->
          failwith
            (Printf.sprintf "Explore.sweep: corner %d raised: %s" f.Fleet.job
               f.Fleet.message)
      | Ok (ev, witness) -> (
          events := !events + ev;
          match witness with
          | None -> ()
          | Some w ->
              incr violations;
              if !first_witness = None then first_witness := Some w))
    outcomes;
  {
    corners = total;
    violations = !violations;
    first_witness = !first_witness;
    events = !events;
    domains = stats.Fleet.domains;
    wall_ns = stats.Fleet.wall_ns;
  }
