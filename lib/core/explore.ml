open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

type result = {
  corners : int;
  violations : int;
  first_witness : string option;
}

(* The sync protocol sends exactly 6 messages per hop (G, $, P, χ,
   χ-forward, settlement $); naive is the same automaton. *)
let message_budget ~hops ~protocol =
  match protocol with
  | Runner.Sync_timebound | Runner.Naive_universal -> 6 * hops
  | Runner.Htlc -> (5 * hops) + 1
  | Runner.Weak _ | Runner.Atomic _ ->
      invalid_arg "Explore.message_budget: TM protocols are not corner-enumerable here"

(* A bit-vector adversary: the k-th send of the run takes its delay from
   bit k — set means the model's upper bound, clear means the lower. *)
let bitvector_adversary bits : Sim.Network.adversary =
  let counter = ref 0 in
  fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds ->
    let k = !counter in
    incr counter;
    let hi = k < 62 && (bits lsr k) land 1 = 1 in
    Some (if hi then bounds.Sim.Network.hi else bounds.Sim.Network.lo)

let corner_clock ~drift_ppm fast =
  let ppm = 1_000_000 in
  let num = if fast then ppm + drift_ppm else ppm - drift_ppm in
  Sim.Clock.create ~num ~den:ppm ()

let describe ~hops ~delay_bits ~clock_bits ~msgs ~procs report =
  Fmt.str "hops=%d delays=0x%x/%d clocks=0x%x/%d -> %a" hops delay_bits msgs
    clock_bits procs
    Fmt.(list ~sep:(any "; ") V.pp)
    (V.failures report)

let sweep ?(hops = 1) ?(drift_ppm = 50_000) ?(max_corners = 600_000) ~protocol
    () =
  let msgs = message_budget ~hops ~protocol in
  let procs = (2 * hops) + 1 in
  if msgs + procs >= 40 then
    invalid_arg "Explore.sweep: instance too large to enumerate";
  let total = (1 lsl msgs) * (1 lsl procs) in
  if total > max_corners then
    invalid_arg
      (Printf.sprintf "Explore.sweep: %d corners exceed the budget %d" total
         max_corners);
  let violations = ref 0 in
  let first_witness = ref None in
  for delay_bits = 0 to (1 lsl msgs) - 1 do
    for clock_bits = 0 to (1 lsl procs) - 1 do
      let cfg =
        {
          (Runner.default_config ~hops ~seed:1) with
          drift_ppm;
          adversary = Some (bitvector_adversary delay_bits);
          clock_override =
            Some (fun pid -> corner_clock ~drift_ppm ((clock_bits lsr pid) land 1 = 1));
        }
      in
      let o = Runner.run cfg protocol in
      let report = PP.check_def1 ~time_bounded:false (PP.view o) in
      if not (V.all_hold report) then begin
        incr violations;
        if !first_witness = None then
          first_witness :=
            Some (describe ~hops ~delay_bits ~clock_bits ~msgs ~procs report)
      end
    done
  done;
  { corners = total; violations = !violations; first_witness = !first_witness }
