open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

type protocol_choice =
  | Time_bounded
  | Naive
  | Htlc_chain
  | Weak_single of { patience : int }
  | Weak_committee of { patience : int; f : int }
  | Weak_chain of { patience : int; validators : int }
  | Atomic of { deadline : int }

type network_choice =
  | Synchronous
  | Partially_synchronous of { gst : int }
  | Asynchronous

type result = {
  success : bool;
  outcome : Runner.outcome;
  report : V.report;
  all_properties_hold : bool;
  terminations : (string * string) list;
  bob_paid_at : int option;
  messages : int;
}

let to_runner_protocol = function
  | Time_bounded -> Runner.Sync_timebound
  | Naive -> Runner.Naive_universal
  | Htlc_chain -> Runner.Htlc
  | Weak_single { patience } ->
      Runner.Weak { Weak_protocol.default_config with patience }
  | Weak_committee { patience; f } ->
      Runner.Weak
        {
          Weak_protocol.default_config with
          patience;
          tm = Weak_protocol.Committee { f };
        }
  | Weak_chain { patience; validators } ->
      Runner.Weak
        {
          Weak_protocol.default_config with
          patience;
          tm = Weak_protocol.Chain { validators };
        }
  | Atomic { deadline } -> Runner.Atomic { Atomic_protocol.deadline }

let to_runner_network = function
  | Synchronous -> Runner.Sync
  | Partially_synchronous { gst } -> Runner.Psync { gst }
  | Asynchronous -> Runner.Async { mean = 200; cap = 50_000 }

let participant_name (outcome : Runner.outcome) pid =
  let topo = outcome.Runner.env.Env.topo in
  match Topology.role_of topo pid with
  | Some Topology.Alice -> "Alice"
  | Some Topology.Bob -> "Bob"
  | Some (Topology.Connector i) -> Printf.sprintf "Chloe%d" i
  | Some (Topology.Escrow i) -> Printf.sprintf "e%d" i
  | Some (Topology.Aux i) -> Printf.sprintf "tm%d" i
  | None -> Printf.sprintf "pid%d" pid

let pay ?(hops = 2) ?(value = 1000) ?(commission = 10) ?(drift_ppm = 10_000)
    ?(network = Synchronous) ?(protocol = Time_bounded) ?(faults = [])
    ?(seed = 1) () =
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      value;
      commission;
      drift_ppm;
      network = to_runner_network network;
      faults;
    }
  in
  let runner_protocol = to_runner_protocol protocol in
  let outcome = Runner.run cfg runner_protocol in
  let v = PP.view outcome in
  let report =
    match runner_protocol with
    | Runner.Weak _ | Runner.Atomic _ ->
        PP.check_def2 ~patience_sufficient:false v
    | _ -> PP.check_def1 ~time_bounded:(network = Synchronous) v
  in
  let terms = Runner.terminated_pids outcome in
  let bob = Topology.bob outcome.Runner.env.Env.topo in
  {
    success = PP.bob_paid v;
    outcome;
    report;
    all_properties_hold = V.all_hold report;
    terminations =
      List.map (fun (pid, tag, _) -> (participant_name outcome pid, tag)) terms;
    bob_paid_at =
      List.find_map
        (fun (pid, _, t) -> if pid = bob then Some t else None)
        terms;
    messages = outcome.Runner.message_count;
  }

let pp_result ppf r =
  Fmt.pf ppf "@[<v>payment %s (%d messages%a)@,"
    (if r.success then "SUCCEEDED" else "did not complete")
    r.messages
    Fmt.(option (fun ppf t -> pf ppf ", Bob paid at t=%d" t))
    r.bob_paid_at;
  Fmt.pf ppf "terminations:@,";
  List.iter (fun (who, how) -> Fmt.pf ppf "  %-8s %s@," who how) r.terminations;
  Fmt.pf ppf "properties:@,%a@]" V.pp_report r.report
