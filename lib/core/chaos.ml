module Runner = Protocols.Runner
module Topology = Protocols.Topology
module P = Props.Payment_props
module V = Props.Verdict
module Fault_plan = Faults.Fault_plan

type classification = Safe_commit | Safe_abort | Stuck | Safety_violation

let classification_name = function
  | Safe_commit -> "safe-commit"
  | Safe_abort -> "safe-abort"
  | Stuck -> "stuck"
  | Safety_violation -> "safety-violation"

type run_result = {
  seed : int;
  hops : int;
  protocol : Runner.protocol;
  plan : Fault_plan.t;
  classification : classification;
  failures : V.t list;
  status : Sim.Engine.status;
  end_time : Sim.Sim_time.t;
  events : int;
  paid_node : int;
  settled_node : int;
  fired : int array;
  injected : int array;
}

(* the CLI's -p spelling of a protocol, for repro lines *)
let protocol_flag = function
  | Runner.Sync_timebound -> "sync"
  | Runner.Naive_universal -> "naive"
  | Runner.Htlc -> "htlc"
  | Runner.Weak { Protocols.Weak_protocol.tm = Protocols.Weak_protocol.Single; _ }
    ->
      "weak"
  | Runner.Weak
      { Protocols.Weak_protocol.tm = Protocols.Weak_protocol.Committee _; _ } ->
      "committee"
  | p -> Runner.protocol_name p

let safety_report view =
  [
    P.check_c view;
    P.check_es view;
    P.check_cs1 view;
    P.check_cs2 view;
    P.check_cs3 view;
    (if P.money_conserved view then V.ok "M" "money conserved"
     else V.violated "M" "money not conserved across books");
  ]

let classify view report =
  let failed = List.filter (fun v -> v.V.applicable && not v.V.holds) report in
  if failed <> [] then (Safety_violation, failed)
  else if P.bob_paid view then (Safe_commit, [])
  else begin
    let topo = view.P.outcome.Runner.env.Protocols.Env.topo in
    let settled =
      List.for_all
        (fun pid ->
          view.P.byzantine pid || Option.is_some (view.P.terminated pid))
        (Topology.customers topo)
    in
    ((if settled then Safe_abort else Stuck), [])
  end

let run_one ?(hops = 2) ?(protocol = Runner.Sync_timebound) ?causal ?prof ~plan
    ~seed () =
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      fault_plan = Some plan;
      causal;
      prof;
    }
  in
  let outcome = Runner.run cfg protocol in
  let view = P.view outcome in
  let report = safety_report view in
  let classification, failures = classify view report in
  let fired, injected =
    match outcome.Runner.injector with
    | None -> ([||], Array.make 4 0)
    | Some inj ->
        ( Faults.Injector.clause_hits inj ~end_time:outcome.Runner.end_time,
          Faults.Injector.kind_counts inj )
  in
  {
    seed;
    hops;
    protocol;
    plan;
    classification;
    failures;
    status = outcome.Runner.status;
    end_time = outcome.Runner.end_time;
    events = outcome.Runner.events;
    paid_node = outcome.Runner.paid_node;
    settled_node = outcome.Runner.settled_node;
    fired;
    injected;
  }

let repro_line r =
  Printf.sprintf "xchain chaos -p %s --hops %d --seed %d --plan '%s'"
    (protocol_flag r.protocol) r.hops r.seed
    (Fault_plan.to_string r.plan)

type summary = {
  runs : int;
  commits : int;
  aborts : int;
  stuck : int;
  violations : run_result list;
  events : int;
  domains : int;
  wall_ns : int;
}

let soak ?(hops = 2) ?(protocol = Runner.Sync_timebound) ?(runs = 200) ?domains
    ?prof ?on_progress ~seed () =
  (* a profiler is single-threaded mutable state: profiled soaks run on
     one domain so every dispatch lands in the same accumulator set *)
  let domains = match prof with Some _ -> Some 1 | None -> domains in
  let nprocs = 2 * hops + 1 in
  let horizon =
    (Runner.derive_params (Runner.default_config ~hops ~seed) protocol)
      .Protocols.Params.horizon
  in
  (* One chaos run per fleet job: everything derives from the run seed
     alone (the plan included), so a single run replays from its printed
     repro without re-running the sweep — and the job is pure, which is
     what lets the fleet shard it across domains. *)
  let job i =
    let run_seed = seed + i in
    let prng = Sim.Rng.create ~seed:(run_seed + 7919) in
    let plan = Fault_plan.random prng ~nprocs ~horizon in
    run_one ~hops ~protocol ?prof ~plan ~seed:run_seed ()
  in
  let outcomes, stats = Fleet.run ?domains ?on_progress ~jobs:runs job in
  let commits = ref 0
  and aborts = ref 0
  and stuck = ref 0
  and events = ref 0
  and violations = ref [] in
  Array.iter
    (fun outcome ->
      match outcome with
      | Error (f : Fleet.failure) ->
          (* a raising run is a harness bug, not a protocol outcome;
             surface it exactly as the sequential loop would have *)
          failwith
            (Printf.sprintf "chaos soak: job %d raised: %s" f.Fleet.job
               f.Fleet.message)
      | Ok (r : run_result) -> (
          events := !events + r.events;
          match r.classification with
          | Safe_commit -> incr commits
          | Safe_abort -> incr aborts
          | Stuck -> incr stuck
          | Safety_violation -> violations := r :: !violations))
    outcomes;
  {
    runs;
    commits = !commits;
    aborts = !aborts;
    stuck = !stuck;
    violations = List.rev !violations;
    events = !events;
    domains = stats.Fleet.domains;
    wall_ns = stats.Fleet.wall_ns;
  }

(* The leading object is a pure function of (hops, protocol, runs, seed);
   everything timing-dependent lives in the trailing "timing" member so
   byte-identity checks across domain counts can strip it (see
   scripts/strip_timing.py). *)
let summary_to_json ?(hops = 2) ?(protocol = Runner.Sync_timebound) ~seed s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"chaos\":{\"runs\":%d,\"hops\":%d,\"protocol\":\"%s\",\"seed\":%d,\
        \"commits\":%d,\"aborts\":%d,\"stuck\":%d,\"events\":%d,\
        \"violations\":["
       s.runs hops (protocol_flag protocol) seed s.commits s.aborts s.stuck
       s.events);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"seed\":%d,\"plan\":\"%s\",\"repro\":\"%s\"}" r.seed
           (Obsv.Metrics.json_escape (Fault_plan.to_string r.plan))
           (Obsv.Metrics.json_escape (repro_line r))))
    s.violations;
  let wall_s = float_of_int s.wall_ns /. 1e9 in
  Buffer.add_string buf
    (Printf.sprintf
       "]},\"timing\":{\"wall_ns\":%d,\"domains\":%d,\"events_per_sec\":%d}}\n"
       s.wall_ns s.domains
       (int_of_float (float_of_int s.events /. wall_s)));
  Buffer.contents buf

let pp_summary ppf s =
  Fmt.pf ppf
    "chaos soak: %d runs — %d safe-commit, %d safe-abort, %d stuck, %d \
     safety-violation"
    s.runs s.commits s.aborts s.stuck
    (List.length s.violations);
  List.iter
    (fun r ->
      Fmt.pf ppf "@.VIOLATION %s"
        (repro_line r);
      List.iter
        (fun v -> Fmt.pf ppf "@.  %s: %s" v.V.property v.V.detail)
        r.failures)
    s.violations
