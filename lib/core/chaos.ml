module Runner = Protocols.Runner
module Topology = Protocols.Topology
module P = Props.Payment_props
module V = Props.Verdict
module Fault_plan = Faults.Fault_plan

type classification = Safe_commit | Safe_abort | Stuck | Safety_violation

let classification_name = function
  | Safe_commit -> "safe-commit"
  | Safe_abort -> "safe-abort"
  | Stuck -> "stuck"
  | Safety_violation -> "safety-violation"

type run_result = {
  seed : int;
  hops : int;
  protocol : Runner.protocol;
  plan : Fault_plan.t;
  faults : (int * Protocols.Byzantine.t) list;
  classification : classification;
  failures : V.t list;
  status : Sim.Engine.status;
  end_time : Sim.Sim_time.t;
  events : int;
  paid_node : int;
  settled_node : int;
  fired : int array;
  injected : int array;
  breach_at : int;
      (* sim-time the online monitor first tripped; -1 when unmonitored
         or nothing ever tripped *)
}

(* the CLI's -p spelling of a protocol, for repro lines *)
let protocol_flag = function
  | Runner.Sync_timebound -> "sync"
  | Runner.Naive_universal -> "naive"
  | Runner.Htlc -> "htlc"
  | Runner.Weak { Protocols.Weak_protocol.tm = Protocols.Weak_protocol.Single; _ }
    ->
      "weak"
  | Runner.Weak
      { Protocols.Weak_protocol.tm = Protocols.Weak_protocol.Committee _; _ } ->
      "committee"
  | p -> Runner.protocol_name p

let safety_report view =
  [
    P.check_c view;
    P.check_es view;
    P.check_cs1 view;
    P.check_cs2 view;
    P.check_cs3 view;
    (if P.money_conserved view then V.ok "M" "money conserved"
     else V.violated "M" "money not conserved across books");
  ]

let classify view report =
  let failed = List.filter (fun v -> v.V.applicable && not v.V.holds) report in
  if failed <> [] then (Safety_violation, failed)
  else if P.bob_paid view then (Safe_commit, [])
  else begin
    let topo = view.P.outcome.Runner.env.Protocols.Env.topo in
    let settled =
      List.for_all
        (fun pid ->
          view.P.byzantine pid || Option.is_some (view.P.terminated pid))
        (Topology.customers topo)
    in
    ((if settled then Safe_abort else Stuck), [])
  end

(* Register the safety subset as online monitor checks over the live run.
   Each closure re-derives the post-hoc view from the provisional outcome
   — the books and the trace it reads are the run's own mutable state —
   so the monitor's final verdict set IS the post-hoc [safety_report]
   evaluated at the final state, by construction. *)
let register_safety_checks m (o : Runner.outcome) =
  let reg name check =
    Obsv.Monitor.register m ~name (fun () ->
        let v = check (P.view o) in
        if v.V.applicable && not v.V.holds then Some v.V.detail else None)
  in
  reg "C" P.check_c;
  reg "ES" P.check_es;
  reg "CS1" P.check_cs1;
  reg "CS2" P.check_cs2;
  reg "CS3" P.check_cs3;
  Obsv.Monitor.register m ~name:"M" (fun () ->
      if P.money_conserved (P.view o) then None
      else Some "money not conserved across books")

(* Probe columns for a single-payment chaos run: engine queue depth plus
   each escrow book's pooled (escrowed) funds. *)
let install_probe s (o : Runner.outcome) =
  let books = o.Runner.env.Protocols.Env.books in
  let n = Array.length books in
  let columns =
    "queue_depth" :: List.init n (fun i -> Printf.sprintf "escrow%d_pool" i)
  in
  Obsv.Sampler.set_probe s ~columns (fun () ->
      Array.init (n + 1) (fun i ->
          if i = 0 then Sim.Engine.queue_depth o.Runner.engine
          else Ledger.Book.pool_total books.(i - 1)))

let run_one ?(hops = 2) ?(protocol = Runner.Sync_timebound) ?causal ?prof
    ?monitor ?sampler ?recorder ?(faults = []) ~plan ~seed () =
  let on_ready =
    match (monitor, sampler) with
    | None, None -> None
    | _ ->
        Some
          (fun o ->
            Option.iter (fun m -> register_safety_checks m o) monitor;
            Option.iter (fun s -> install_probe s o) sampler)
  in
  let cfg =
    {
      (Runner.default_config ~hops ~seed) with
      fault_plan = Some plan;
      causal;
      prof;
      monitor;
      sampler;
      recorder;
      on_ready;
      faults;
    }
  in
  let outcome = Runner.run cfg protocol in
  let view = P.view outcome in
  let report = safety_report view in
  let classification, failures = classify view report in
  let fired, injected =
    match outcome.Runner.injector with
    | None -> ([||], Array.make 4 0)
    | Some inj ->
        ( Faults.Injector.clause_hits inj ~end_time:outcome.Runner.end_time,
          Faults.Injector.kind_counts inj )
  in
  {
    seed;
    hops;
    protocol;
    plan;
    faults;
    classification;
    failures;
    status = outcome.Runner.status;
    end_time = outcome.Runner.end_time;
    events = outcome.Runner.events;
    paid_node = outcome.Runner.paid_node;
    settled_node = outcome.Runner.settled_node;
    fired;
    injected;
    breach_at =
      (match monitor with None -> -1 | Some m -> Obsv.Monitor.breach_at m);
  }

(* The --fault spelling of a Byzantine substitution, inverse of the CLI's
   strategy@role grammar. *)
let fault_flag ~hops (pid, strategy) =
  let topo = Topology.create ~hops in
  let role =
    match Topology.role_of topo pid with
    | Some Topology.Alice -> "alice"
    | Some Topology.Bob -> "bob"
    | Some (Topology.Connector i) -> Printf.sprintf "chloe%d" i
    | Some (Topology.Escrow i) -> Printf.sprintf "e%d" i
    | _ -> Printf.sprintf "pid%d" pid
  in
  let strat =
    match Protocols.Byzantine.name strategy with
    | "crash-at-start" -> "crash"
    | s -> s
  in
  Printf.sprintf "%s@%s" strat role

let repro_line r =
  Printf.sprintf "xchain chaos -p %s --hops %d --seed %d --plan '%s'%s"
    (protocol_flag r.protocol) r.hops r.seed
    (Fault_plan.to_string r.plan)
    (String.concat ""
       (List.map
          (fun f -> " --fault " ^ fault_flag ~hops:r.hops f)
          r.faults))

(* --------------------------- forensic bundle --------------------------- *)

(* The tail of the causal DAG around the breach: node metadata for the
   last 64 recorded nodes, plus totals, as an embeddable JSON object. *)
let dag_slice_json c =
  let n = Obsv.Causal.node_count c in
  let first = max 0 (n - 64) in
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  for i = first to n - 1 do
    if i > first then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf
         "{\"id\":%d,\"kind\":\"%s\",\"pid\":%d,\"t\":%d,\"label\":\"%s\"}" i
         (Obsv.Causal.kind_name (Obsv.Causal.kind_of c i))
         (Obsv.Causal.pid_of c i) (Obsv.Causal.time_of c i)
         (Obsv.Metrics.json_escape (Obsv.Causal.label_of c i)))
  done;
  Buffer.add_char buf ']';
  Printf.sprintf "{\"nodes\":%d,\"edges\":%d,\"slice_from\":%d,\"slice\":%s}" n
    (Obsv.Causal.edge_count c) first (Buffer.contents buf)

let bundle ?causal ~monitor ~recorder r =
  let reason, property, detail, at =
    match Obsv.Monitor.first_trip monitor with
    | Some tr ->
        ( "violation",
          tr.Obsv.Monitor.property,
          tr.Obsv.Monitor.detail,
          tr.Obsv.Monitor.at )
    | None -> ("stuck", "-", "unsettled when the run stopped", r.end_time)
  in
  let dag = Option.map dag_slice_json causal in
  (* per-run figures, not the process-global registry: a bundle must be
     byte-identical whenever its (seed, plan) replays, even from a
     process that has already run other payments *)
  let metrics =
    let inj i = if Array.length r.injected > i then r.injected.(i) else 0 in
    Printf.sprintf
      "{\"classification\":\"%s\",\"end_time\":%d,\"events\":%d,\"injected\":{\"drops\":%d,\"dups\":%d,\"corruptions\":%d,\"partition_suppressions\":%d}}"
      (classification_name r.classification)
      r.end_time r.events (inj 0) (inj 1) (inj 2) (inj 3)
  in
  Obsv.Recorder.bundle_json ~reason ~property ~detail ~at
    ~repro:(repro_line r) ?dag ~metrics recorder

type summary = {
  runs : int;
  commits : int;
  aborts : int;
  stuck : int;
  violations : run_result list;
  events : int;
  domains : int;
  wall_ns : int;
}

type health = {
  h_done : int;
  h_total : int;
  h_commits : int;
  h_aborts : int;
  h_stuck : int;
  h_violations : int;
}

let soak ?(hops = 2) ?(protocol = Runner.Sync_timebound) ?(runs = 200) ?domains
    ?prof ?(monitor = false) ?on_progress ?on_health ~seed () =
  (* a profiler is single-threaded mutable state: profiled soaks run on
     one domain so every dispatch lands in the same accumulator set *)
  let domains = match prof with Some _ -> Some 1 | None -> domains in
  let nprocs = 2 * hops + 1 in
  let horizon =
    (Runner.derive_params (Runner.default_config ~hops ~seed) protocol)
      .Protocols.Params.horizon
  in
  (* One chaos run per fleet job: everything derives from the run seed
     alone (the plan included), so a single run replays from its printed
     repro without re-running the sweep — and the job is pure, which is
     what lets the fleet shard it across domains. *)
  (* live health counters: jobs bump them from their own domains, the
     calling domain renders them inside Fleet's progress callback *)
  let a_commits = Atomic.make 0
  and a_aborts = Atomic.make 0
  and a_stuck = Atomic.make 0
  and a_violations = Atomic.make 0 in
  let job i =
    let run_seed = seed + i in
    let prng = Sim.Rng.create ~seed:(run_seed + 7919) in
    let plan = Fault_plan.random prng ~nprocs ~horizon in
    let mon = if monitor then Some (Obsv.Monitor.create ()) else None in
    let r = run_one ~hops ~protocol ?prof ?monitor:mon ~plan ~seed:run_seed () in
    (match r.classification with
    | Safe_commit -> Atomic.incr a_commits
    | Safe_abort -> Atomic.incr a_aborts
    | Stuck -> Atomic.incr a_stuck
    | Safety_violation -> Atomic.incr a_violations);
    r
  in
  let on_progress =
    match on_health with
    | None -> on_progress
    | Some health ->
        Some
          (fun ~completed ~total ->
            (match on_progress with
            | Some f -> f ~completed ~total
            | None -> ());
            health
              {
                h_done = completed;
                h_total = total;
                h_commits = Atomic.get a_commits;
                h_aborts = Atomic.get a_aborts;
                h_stuck = Atomic.get a_stuck;
                h_violations = Atomic.get a_violations;
              })
  in
  let outcomes, stats = Fleet.run ?domains ?on_progress ~jobs:runs job in
  let commits = ref 0
  and aborts = ref 0
  and stuck = ref 0
  and events = ref 0
  and violations = ref [] in
  Array.iter
    (fun outcome ->
      match outcome with
      | Error (f : Fleet.failure) ->
          (* a raising run is a harness bug, not a protocol outcome;
             surface it exactly as the sequential loop would have *)
          failwith
            (Printf.sprintf "chaos soak: job %d raised: %s" f.Fleet.job
               f.Fleet.message)
      | Ok (r : run_result) -> (
          events := !events + r.events;
          match r.classification with
          | Safe_commit -> incr commits
          | Safe_abort -> incr aborts
          | Stuck -> incr stuck
          | Safety_violation -> violations := r :: !violations))
    outcomes;
  {
    runs;
    commits = !commits;
    aborts = !aborts;
    stuck = !stuck;
    violations = List.rev !violations;
    events = !events;
    domains = stats.Fleet.domains;
    wall_ns = stats.Fleet.wall_ns;
  }

(* The leading object is a pure function of (hops, protocol, runs, seed);
   everything timing-dependent lives in the trailing "timing" member so
   byte-identity checks across domain counts can strip it (see
   scripts/strip_timing.py). *)
let summary_to_json ?(hops = 2) ?(protocol = Runner.Sync_timebound) ~seed s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"chaos\":{\"runs\":%d,\"hops\":%d,\"protocol\":\"%s\",\"seed\":%d,\
        \"commits\":%d,\"aborts\":%d,\"stuck\":%d,\"events\":%d,\
        \"violations\":["
       s.runs hops (protocol_flag protocol) seed s.commits s.aborts s.stuck
       s.events);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"seed\":%d,\"plan\":\"%s\",\"repro\":\"%s\"}" r.seed
           (Obsv.Metrics.json_escape (Fault_plan.to_string r.plan))
           (Obsv.Metrics.json_escape (repro_line r))))
    s.violations;
  let wall_s = float_of_int s.wall_ns /. 1e9 in
  Buffer.add_string buf
    (Printf.sprintf
       "]},\"timing\":{\"wall_ns\":%d,\"domains\":%d,\"events_per_sec\":%d}}\n"
       s.wall_ns s.domains
       (int_of_float (float_of_int s.events /. wall_s)));
  Buffer.contents buf

let pp_summary ppf s =
  Fmt.pf ppf
    "chaos soak: %d runs — %d safe-commit, %d safe-abort, %d stuck, %d \
     safety-violation"
    s.runs s.commits s.aborts s.stuck
    (List.length s.violations);
  List.iter
    (fun r ->
      Fmt.pf ppf "@.VIOLATION %s"
        (repro_line r);
      List.iter
        (fun v -> Fmt.pf ppf "@.  %s: %s" v.V.property v.V.detail)
        r.failures)
    s.violations
