(** The reproduction harness: one experiment per claim of the paper.

    The brief announcement has no numbered evaluation tables — its results
    are theorems and protocol properties. DESIGN.md §3 maps each claim to
    an experiment below; running every experiment (see [bench/main.ml] or
    the [xchain] CLI) regenerates the full set of tables recorded in
    EXPERIMENTS.md.

    Each experiment takes [~quick] (CI-sized samples) or full samples, and
    is deterministic for a given [seed]: tables are exactly reproducible. *)

type scale = Quick | Full

val runs : scale -> int
(** Sample size per configuration (40 / 400). *)

val e1_theorem1 : scale -> Table.t
(** Thm 1: under synchrony, the drift-tuned protocol satisfies all of
    C, T(bounded), ES, CS1–CS3, L across hops × drift × random schedules. *)

val e2_impossibility : scale -> Table.t
(** Thm 2: under partial synchrony, every finite-timeout tuning of the
    universal protocol is broken by an adversarial schedule, and the
    no-timeout variant never terminates in bounded time — the dichotomy at
    the heart of the impossibility proof, exhibited mechanically. *)

val e3_weak_protocol : scale -> Table.t
(** Thm 3: the weak protocol satisfies Def. 2 under partial synchrony,
    across hops × GST × TM kinds. *)

val e4_patience_sweep : scale -> Table.t
(** Weak liveness is conditional on patience: success rate vs patience
    under randomized GST — the paper's "wait sufficiently long". *)

val e5_scaling : scale -> Table.t
(** Cost scaling in the chain length: messages, latency to Bob, total
    value-lock time; sync protocol vs HTLC vs weak protocol. *)

val e6_fault_matrix : scale -> Table.t
(** Per-role Byzantine strategies vs the Def. 1 / Def. 2 properties: which
    guarantees survive (all applicable ones must). *)

val e7_deals : scale -> Table.t
(** §5: HLS timelock & certified-blockchain protocols on well-formed and
    non-well-formed deals. *)

val e8_tm_committee : scale -> Table.t
(** TM instantiations: single party vs notary committees with crash /
    equivocation faults under partial synchrony; agreement, CC, latency. *)

val e9_drift : scale -> Table.t
(** The fine-tuning claim: violation rate of the drift-blind universal
    protocol vs the tuned protocol as drift grows. *)

val e10_embedding : scale -> Table.t
(** §5: payments are not deals and deals are not payments — two mechanical
    counterexamples. *)

val e11_atomic_vs_weak : scale -> Table.t
(** Prior-work ablation: the Interledger atomic protocol (fixed notary
    deadline) vs the weak protocol (customer-controlled patience) as GST
    grows — "prior to this work, cross-chain payment problems did not
    require this success". Both stay safe; only the weak protocol keeps
    succeeding. *)

val e12_exhaustive_corners : ?domains:int -> scale -> Table.t
(** Small-scope exhaustive verification: every extremal delay × clock-rate
    corner of 1-hop (and, at full scale, 2-hop) payments. The drift-tuned
    protocol must be clean on all corners; the drift-blind baseline fails
    on concrete witnessed corners. The corner sweep shards over [?domains]
    fleet domains (default {!Fleet.default_domains}); the table is
    byte-identical at any domain count. *)

val e13_partition_sweep : scale -> Table.t
(** Partition tolerance of the committee TM: a 2|2 split of the f=1
    committee (no 3-replica quorum) swept over partition onset × heal
    time. Def. 2 safety must hold in every cell; Bob's success degrades
    exactly where the outage window swallows the patience budget. *)

val e14_quorum_partitions : scale -> Table.t
(** E13 generalized to the quorum-system zoo: one unhealed named
    multi-block partition per row over majority, weighted, and grid
    systems. A block keeps deciding iff it contains a full quorum of its
    family, so the same headcount split saves one family and strands
    another; safety holds in every cell regardless. *)

val all : ?domains:int -> scale -> Table.t list
(** Every experiment, in order. [?domains] is forwarded to the sweeps
    that shard over the fleet (currently {!e12_exhaustive_corners}). *)

val by_name : string -> (scale -> Table.t) option
(** Lookup "e1" … "e14". *)

val names : string list
