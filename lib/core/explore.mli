(** Exhaustive small-scope verification over extremal schedules.

    The window inequalities behind Theorem 1 are monotone in every message
    delay and every clock rate: making a delay longer, or a clock faster
    or slower, only moves a schedule {e toward} the binding case of each
    inequality. The binding schedules therefore live at the corners of the
    schedule space — every message delay at its bound ({e min} or {e max})
    and every clock at an envelope extreme ({e slow} or {e fast}).

    This module enumerates {b all} such corners for small instances and
    checks the full Definition 1 report on each: 2{^ messages} delay
    assignments × 2{^ processes} clock assignments. For one hop that is
    6 messages × 3 processes → 512 corners; for two hops 12 × 5 → 131 072.
    Unlike the sampled experiments, a clean sweep here is an {e exhaustive}
    statement about the corner family — and the drift-blind baseline fails
    on concrete corners that the explorer returns as witnesses.

    Delay branching is driven by a deterministic bit-vector adversary
    (send k takes its bound from bit k); clock corners use
    {!Protocols.Runner.config.clock_override}. *)

type result = {
  corners : int;  (** corners explored *)
  violations : int;  (** corners where some applicable property failed *)
  first_witness : string option;
      (** description of the first violating corner — "first" in corner
          enumeration order, identical at any domain count *)
  events : int;  (** engine events across all corners (deterministic) *)
  domains : int;  (** domains the fleet actually used *)
  wall_ns : int;  (** sweep wall time — nondeterministic, keep out of
                      byte-compared output *)
}

val sweep :
  ?hops:int ->
  ?drift_ppm:int ->
  ?max_corners:int ->
  ?domains:int ->
  ?prof:Obsv.Prof.t ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  protocol:Protocols.Runner.protocol ->
  unit ->
  result
(** Enumerates delay × clock corners for a payment of [hops] (default 1)
    legs at [drift_ppm] (default 50 000 = 5%) drift and checks Def. 1
    (eventual-termination flavour) on every corner. [max_corners]
    (default 600_000) guards against accidental explosion; the sweep
    raises [Invalid_argument] if the instance needs more.

    The corner space is sharded over [?domains] OCaml domains (default
    {!Fleet.default_domains}); every result field except [domains] and
    [wall_ns] is byte-identical for any domain count. [?on_progress]
    reports corners done / total from the calling domain — the hook
    behind the live progress line in [xchain explore].

    [prof] profiles every corner's dispatches into one accumulator set
    ({!Obsv.Prof}) and forces [domains = 1] (the profiler is
    single-threaded mutable state). *)

val result_to_json :
  ?hops:int ->
  ?drift_ppm:int ->
  protocol:Protocols.Runner.protocol ->
  result ->
  string
(** The sweep as one JSON object; every member except the trailing
    ["timing"] block is deterministic (strip it before byte-comparing
    across domain counts, as with {!Chaos.summary_to_json}). *)

val message_budget : hops:int -> protocol:Protocols.Runner.protocol -> int
(** How many sends the corner encoding covers for this instance (messages
    beyond the budget fall back to maximal delay — for the supported
    protocols the budget is exact). *)
