open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

type scale = Quick | Full

let runs = function Quick -> 40 | Full -> 400
let small_runs = function Quick -> 10 | Full -> 60

(* Adversaries used across experiments. *)
let max_delay : Sim.Network.adversary =
 fun ~send_time:_ ~src:_ ~dst:_ ~tag:_ ~bounds -> Some bounds.Sim.Network.hi

let chi_stall : Sim.Network.adversary =
 fun ~send_time:_ ~src:_ ~dst:_ ~tag ~bounds ->
  if String.equal tag "chi" then Some bounds.Sim.Network.hi
  else Some bounds.Sim.Network.lo

let def1_holds ?(time_bounded = true) outcome =
  V.all_hold (PP.check_def1 ~time_bounded (PP.view outcome))

let pct hits total = Sim.Stats.rate ~hits ~total

(* ------------------------------------------------------------------ E1 *)

let e1_theorem1 scale =
  let n_runs = runs scale in
  let rows =
    List.concat_map
      (fun hops ->
        List.map
          (fun drift ->
            let ok = ref 0 in
            let worst_ratio = ref 0.0 in
            let msgs = ref [] in
            for seed = 1 to n_runs do
              let cfg =
                {
                  (Runner.default_config ~hops ~seed) with
                  drift_ppm = drift;
                }
              in
              let o = Runner.run cfg Runner.Sync_timebound in
              if def1_holds o then incr ok;
              msgs := o.Runner.message_count :: !msgs;
              let horizon =
                float_of_int o.Runner.params.Params.horizon
              in
              let last =
                List.fold_left
                  (fun acc (_, _, t) -> max acc (float_of_int t))
                  0.0
                  (Runner.terminated_pids o)
              in
              worst_ratio := max !worst_ratio (last /. horizon)
            done;
            [
              Table.cell_i hops;
              Printf.sprintf "%.1f%%" (float_of_int drift /. 10_000.0);
              Table.cell_i n_runs;
              Table.cell_pct (pct !ok n_runs);
              Printf.sprintf "%.2f" !worst_ratio;
              Table.cell_f (Sim.Stats.mean (List.map float_of_int !msgs));
            ])
          [ 0; 10_000; 50_000 ])
      [ 1; 2; 4; 8 ]
  in
  Table.make ~title:"E1 (Thm 1): time-bounded protocol under synchrony"
    ~header:
      [ "hops"; "drift"; "runs"; "all C,T,ES,CS,L"; "worst T/bound"; "msgs" ]
    ~notes:
      [
        "every row must show 100%: Thm 1 claims all properties on every \
         synchronous schedule";
        "worst T/bound < 1 certifies the a-priori termination bound";
      ]
    rows

(* ------------------------------------------------------------------ E2 *)

let e2_impossibility scale =
  let n_runs = small_runs scale in
  let candidates =
    [ ("0.5x", (1, 2)); ("1x", (1, 1)); ("2x", (2, 1)); ("8x", (8, 1));
      ("32x", (32, 1)); ("no-timeout", (100_000, 1)) ]
  in
  let rows =
    List.map
      (fun (label, (num, den)) ->
        (* the adversary inspects the candidate and delays χ past its
           windows: GST is placed beyond the largest refund window *)
        let probe =
          Runner.derive_params
            { (Runner.default_config ~hops:3 ~seed:0) with
              window_scale = Some (num, den) }
            Runner.Sync_timebound
        in
        let biggest = Array.fold_left max 0 probe.Params.a in
        let gst = Sim.Sim_time.add (Sim.Sim_time.scale biggest ~num:2 ~den:1) 50_000 in
        let t_violated = ref 0 and l_violated = ref 0 and paid = ref 0 in
        let random_paid = ref 0 in
        for seed = 1 to n_runs do
          let base =
            {
              (Runner.default_config ~hops:3 ~seed) with
              network = Runner.Psync { gst };
              window_scale = Some (num, den);
              horizon = Some (Sim.Sim_time.add gst 2_000_000);
            }
          in
          let o =
            Runner.run { base with adversary = Some chi_stall }
              Runner.Sync_timebound
          in
          let v = PP.view o in
          if not (V.holds (PP.check_def1 ~time_bounded:false v) "T") then
            incr t_violated;
          if not (V.holds (PP.check_def1 ~time_bounded:false v) "L") then
            incr l_violated;
          if PP.bob_paid v then incr paid;
          (* same GST, same windows, but delays sampled randomly: the
             impossibility needs the adversary, not bad luck *)
          let o_rand = Runner.run base Runner.Sync_timebound in
          if PP.bob_paid (PP.view o_rand) then incr random_paid
        done;
        [
          label;
          Sim.Sim_time.to_string biggest;
          Sim.Sim_time.to_string gst;
          Table.cell_pct (pct !t_violated n_runs);
          Table.cell_pct (pct !l_violated n_runs);
          Table.cell_pct (pct !paid n_runs);
          Table.cell_pct (pct !random_paid n_runs);
        ])
      candidates
  in
  Table.make
    ~title:
      "E2 (Thm 2): no eventually-terminating protocol under partial synchrony"
    ~header:
      [ "timeouts"; "max window"; "adversary GST"; "T violated"; "L violated";
        "Bob paid"; "paid (random)" ]
    ~notes:
      [
        "for every finite timeout the adversary stalls χ past the window: \
         refunds fire, Bob stays unpaid (T and L break)";
        "the no-timeout candidate never refunds, so customers wait \
         unboundedly: T(eventual) breaks within any finite observation — \
         the dichotomy of the impossibility proof";
        "the last column re-runs the same configurations with random \
         (non-adversarial) delays: Thm 2 is a worst-case statement, and \
         the adversary is what realises it";
      ]
    rows

(* ------------------------------------------------------------------ E3 *)

let weak_cfg ?(tm = Weak_protocol.Single) ~patience () =
  { Weak_protocol.default_config with tm; patience }

let e3_weak_protocol scale =
  let n_runs = small_runs scale in
  let rows =
    List.concat_map
      (fun hops ->
        List.concat_map
          (fun gst ->
            List.map
              (fun (tm_label, tm) ->
                let ok = ref 0 and paid = ref 0 in
                for seed = 1 to n_runs do
                  let patience = Sim.Sim_time.add gst 60_000 in
                  let cfg =
                    {
                      (Runner.default_config ~hops ~seed) with
                      network = Runner.Psync { gst };
                    }
                  in
                  let o = Runner.run cfg (Runner.Weak (weak_cfg ~tm ~patience ())) in
                  let v = PP.view o in
                  if V.all_hold (PP.check_def2 ~patience_sufficient:true v)
                  then incr ok;
                  if PP.bob_paid v then incr paid
                done;
                [
                  Table.cell_i hops;
                  Sim.Sim_time.to_string gst;
                  tm_label;
                  Table.cell_i n_runs;
                  Table.cell_pct (pct !ok n_runs);
                  Table.cell_pct (pct !paid n_runs);
                ])
              [
                ("single", Weak_protocol.Single);
                ("committee f=1", Weak_protocol.Committee { f = 1 });
                ("chain m=4", Weak_protocol.Chain { validators = 4 });
              ])
          [ 0; 2_000; 10_000 ])
      [ 1; 2; 4 ]
  in
  Table.make
    ~title:"E3 (Thm 3): weak protocol under partial synchrony"
    ~header:[ "hops"; "GST"; "TM"; "runs"; "all Def.2 props"; "Bob paid" ]
    ~notes:
      [
        "patience is set beyond GST, so weak liveness applies: both columns \
         must be 100%";
      ]
    rows

(* ------------------------------------------------------------------ E4 *)

let e4_patience_sweep scale =
  let n_runs = runs scale in
  let rows =
    List.map
      (fun patience ->
        let paid = ref 0 and aborted = ref 0 and safe = ref 0 in
        for seed = 1 to n_runs do
          let gst_rng = Sim.Rng.create ~seed:(seed * 7919) in
          let gst = Sim.Rng.int_in gst_rng ~lo:0 ~hi:4_000 in
          let cfg =
            {
              (Runner.default_config ~hops:3 ~seed) with
              network = Runner.Psync { gst };
            }
          in
          let o = Runner.run cfg (Runner.Weak (weak_cfg ~patience ())) in
          let v = PP.view o in
          if PP.bob_paid v then incr paid;
          if
            List.exists
              (fun (_, _, ob) ->
                match ob with Obs.Abort_requested _ -> true | _ -> false)
              (Runner.observations o)
          then incr aborted;
          let report = PP.check_def2 ~patience_sufficient:false v in
          if V.all_hold report then incr safe
        done;
        [
          Sim.Sim_time.to_string patience;
          Table.cell_i n_runs;
          Table.cell_pct (pct !paid n_runs);
          Table.cell_pct (pct !aborted n_runs);
          Table.cell_pct (pct !safe n_runs);
        ])
      [ 0; 250; 500; 1_000; 2_000; 4_000; 8_000; 16_000 ]
  in
  Table.make
    ~title:"E4: success vs patience (weak liveness is conditional)"
    ~header:[ "patience"; "runs"; "Bob paid"; "abort requested"; "safety props" ]
    ~notes:
      [
        "GST uniform in [0, 4000]: success climbs to 100% once patience \
         outlasts stabilization; safety stays at 100% at every patience — \
         aborting early loses liveness, never money";
      ]
    rows

(* ------------------------------------------------------------------ E5 *)

let e5_scaling scale =
  let n_runs = small_runs scale in
  let protocols =
    [
      ("sync", fun () -> Runner.Sync_timebound);
      ("htlc", fun () -> Runner.Htlc);
      ("weak", fun () -> Runner.Weak (weak_cfg ~patience:Sim.Sim_time.infinity ()));
      ("atomic", fun () -> Runner.Atomic { Atomic_protocol.deadline = 200_000 });
    ]
  in
  let rows =
    List.concat_map
      (fun hops ->
        List.map
          (fun (label, proto) ->
            let msgs = ref [] and latency = ref [] and lock = ref [] in
            for seed = 1 to n_runs do
              let cfg = Runner.default_config ~hops ~seed in
              let o = Runner.run cfg (proto ()) in
              let v = PP.view o in
              msgs := float_of_int o.Runner.message_count :: !msgs;
              lock := float_of_int (PP.lock_time v) :: !lock;
              let bob = hops in
              (match
                 List.find_opt (fun (p, _, _) -> p = bob)
                   (Runner.terminated_pids o)
               with
              | Some (_, _, t) -> latency := float_of_int t :: !latency
              | None -> ())
            done;
            [
              Table.cell_i hops;
              label;
              Table.cell_f (Sim.Stats.mean !msgs);
              Table.cell_f (Sim.Stats.mean !latency);
              Table.cell_f (Sim.Stats.mean !lock);
            ])
          protocols)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Table.make ~title:"E5: cost scaling with chain length (all-honest, sync)"
    ~header:[ "hops"; "protocol"; "msgs"; "Bob latency"; "total lock time" ]
    ~notes:
      [
        "messages grow linearly for all four; HTLC and sync lock value \
         for nested windows (quadratic-ish growth), while the TM-based \
         protocols (weak, atomic) release as soon as the decision lands";
      ]
    rows

(* ------------------------------------------------------------------ E6 *)

let e6_fault_matrix scale =
  let n_runs = max 5 (small_runs scale / 2) in
  let hops = 3 in
  let cases =
    (* (role label, pid, strategy, protocol) *)
    let topo = Topology.create ~hops in
    let sync = Runner.Sync_timebound in
    let weak () = Runner.Weak (weak_cfg ~patience:20_000 ()) in
    [
      ("Alice", Topology.alice topo, Byzantine.Crash_at_start, sync);
      ("Alice", Topology.alice topo, Byzantine.Double_money_customer, sync);
      ("Chloe1", Topology.customer topo 1, Byzantine.Crash_at_start, sync);
      ("Chloe1", Topology.customer topo 1, Byzantine.Forge_chi_connector, sync);
      ("Chloe2", Topology.customer topo 2, Byzantine.Mute, sync);
      ("Bob", Topology.bob topo, Byzantine.Withhold_chi_bob, sync);
      ("Bob", Topology.bob topo, Byzantine.Eager_chi_bob, sync);
      ("e0", Topology.escrow topo 0, Byzantine.Thief_escrow, sync);
      ("e1", Topology.escrow topo 1, Byzantine.Premature_refund_escrow, sync);
      ("e1", Topology.escrow topo 1, Byzantine.No_resolve_escrow, sync);
      ("e2", Topology.escrow topo 2, Byzantine.Crash_at_start, sync);
      ("Alice", Topology.alice topo, Byzantine.Impatient 100, weak ());
      ("Chloe1", Topology.customer topo 1, Byzantine.Never_deposit, weak ());
      ("e1", Topology.escrow topo 1, Byzantine.False_funded_escrow, weak ());
      ("Bob", Topology.bob topo, Byzantine.Impatient 100, weak ());
    ]
  in
  let pair_cases =
    let topo = Topology.create ~hops in
    [
      ( "e0+Bob",
        [ (Topology.escrow topo 0, Byzantine.Thief_escrow);
          (Topology.bob topo, Byzantine.Eager_chi_bob) ],
        Runner.Sync_timebound );
      ( "Chloe1+e2",
        [ (Topology.customer topo 1, Byzantine.Forge_chi_connector);
          (Topology.escrow topo 2, Byzantine.Premature_refund_escrow) ],
        Runner.Sync_timebound );
      ( "Alice+e1",
        [ (Topology.alice topo, Byzantine.Impatient 0);
          (Topology.escrow topo 1, Byzantine.False_funded_escrow) ],
        Runner.Weak (weak_cfg ~patience:20_000 ()) );
    ]
  in
  let single_rows =
    List.map
      (fun (role, pid, strategy, protocol) ->
        let ok = ref 0 and paid = ref 0 and detail = ref "" in
        for seed = 1 to n_runs do
          let cfg =
            {
              (Runner.default_config ~hops ~seed) with
              faults = [ (pid, strategy) ];
            }
          in
          let o = Runner.run cfg protocol in
          let v = PP.view o in
          let report =
            match protocol with
            | Runner.Weak _ -> PP.check_def2 ~patience_sufficient:false v
            | _ -> PP.check_def1 ~time_bounded:false v
          in
          if V.all_hold report then incr ok
          else if String.equal !detail "" then
            detail :=
              Fmt.str "%a" Fmt.(list ~sep:(any "; ") V.pp) (V.failures report);
          if PP.bob_paid v then incr paid
        done;
        [
          role;
          Byzantine.name strategy;
          Runner.protocol_name
            (match protocol with p -> p);
          Table.cell_pct (pct !ok n_runs);
          Table.cell_pct (pct !paid n_runs);
          (if String.equal !detail "" then "-" else !detail);
        ])
      cases
  in
  let pair_rows =
    List.map
      (fun (label, faults, protocol) ->
        let ok = ref 0 and paid = ref 0 in
        for seed = 1 to n_runs do
          let cfg = { (Runner.default_config ~hops ~seed) with faults } in
          let o = Runner.run cfg protocol in
          let v = PP.view o in
          let report =
            match protocol with
            | Runner.Weak _ -> PP.check_def2 ~patience_sufficient:false v
            | _ -> PP.check_def1 ~time_bounded:false v
          in
          if V.all_hold report && PP.money_conserved v then incr ok;
          if PP.bob_paid v then incr paid
        done;
        [
          label;
          "two strategies";
          Runner.protocol_name protocol;
          Table.cell_pct (pct !ok n_runs);
          Table.cell_pct (pct !paid n_runs);
          "-";
        ])
      pair_cases
  in
  let rows = single_rows @ pair_rows in
  Table.make
    ~title:"E6: Byzantine fault matrix (safety is per-role unconditional)"
    ~header:
      [ "byzantine"; "strategy"; "protocol"; "guarantees hold"; "Bob paid";
        "violations" ]
    ~notes:
      [
        "'guarantees hold' must be 100% everywhere: each property is \
         conditioned exactly as the paper states it, so a deviating party \
         voids only its own dependents' guarantees";
        "Bob-paid may drop to 0 — liveness L is the only property that \
         assumes everyone abides";
      ]
    rows

(* ------------------------------------------------------------------ E7 *)

let e7_deals scale =
  let n_runs = max 5 (small_runs scale / 2) in
  let open Deals in
  let cases =
    (* (deal label, deal, protocol label, protocol, gst, faults) *)
    [
      ("2-swap", Deal.two_party_swap, "timelock", Deal_runner.Timelock, None, []);
      ("2-swap", Deal.two_party_swap, "cbc", Deal_runner.Cbc, Some 3_000, []);
      ("3-cycle", Deal.three_cycle, "timelock", Deal_runner.Timelock, None, []);
      ("3-cycle", Deal.three_cycle, "cbc", Deal_runner.Cbc, Some 3_000, []);
      ("broker-dag", Deal.broker_dag, "timelock", Deal_runner.Timelock, None, []);
      ( "disconnected", Deal.disconnected_pair, "timelock",
        Deal_runner.Timelock, None, [] );
      ( "3-cycle", Deal.three_cycle, "timelock", Deal_runner.Timelock, None,
        [ (2, Deal_byzantine.Lazy_claim) ] );
      ( "broker-dag", Deal.broker_dag, "timelock", Deal_runner.Timelock, None,
        [ (2, Deal_byzantine.Lazy_claim) ] );
      ( "broker-dag", Deal.broker_dag, "cbc", Deal_runner.Cbc, Some 3_000,
        [ (2, Deal_byzantine.Lazy_claim) ] );
    ]
  in
  let rows =
    List.map
      (fun (dlabel, mk, plabel, proto, gst, faults) ->
        let s = ref 0 and t = ref 0 and l = ref 0 in
        for seed = 1 to n_runs do
          let cfg = { (Deal_runner.default_config (mk ()) proto) with gst; seed } in
          let o =
            if faults = [] then Deal_runner.run cfg
            else Deal_byzantine.run_with_faults cfg ~faults
          in
          if (Deal_props.safety o).Deal_props.holds then incr s;
          if (Deal_props.termination o).Deal_props.holds then incr t;
          if (Deal_props.strong_liveness o).Deal_props.holds then incr l
        done;
        let deal = mk () in
        [
          dlabel;
          Table.cell_b (Deal.well_formed deal);
          plabel;
          (match faults with
          | [] -> "-"
          | (p, f) :: _ -> Printf.sprintf "p%d %s" p (Deal_byzantine.name f));
          Table.cell_pct (pct !s n_runs);
          Table.cell_pct (pct !t n_runs);
          Table.cell_pct (pct !l n_runs);
        ])
      cases
  in
  Table.make
    ~title:"E7 (§5): HLS deal commit protocols and well-formedness"
    ~header:
      [ "deal"; "well-formed"; "protocol"; "byzantine"; "safety";
        "termination"; "strong liveness" ]
    ~notes:
      [
        "well-formed (strongly connected) deals keep all three properties, \
         with or without the Byzantine party: every party assembles the \
         vote set by forward gossip, on its own schedule";
        "non-well-formed deals: the disconnected pair loses strong \
         liveness outright; the broker DAG depends on the on-chain reveal \
         cascade, which a lazily-claiming Byzantine party defeats — \
         safety falls below 100%, the sharp edge of HLS's hypothesis";
        "the certificate-gated cbc protocol keeps even ill-formed deals \
         safe, at the price of trusting the certifier (cf. the paper's TM)";
      ]
    rows

(* ------------------------------------------------------------------ E8 *)

let e8_tm_committee scale =
  let n_runs = small_runs scale in
  let mk_faults n l = Array.init n (fun i -> if List.mem i l then Weak_protocol.Notary_crash else Weak_protocol.Notary_honest) in
  let cases =
    [
      ("single", Weak_protocol.Single, [||]);
      ("chain m=4", Weak_protocol.Chain { validators = 4 }, [||]);
      ("committee f=1", Weak_protocol.Committee { f = 1 }, [||]);
      ("f=1, 1 crash", Weak_protocol.Committee { f = 1 }, mk_faults 4 [ 0 ]);
      ( "f=1, equivocator",
        Weak_protocol.Committee { f = 1 },
        [| Weak_protocol.Notary_equivocate; Weak_protocol.Notary_honest;
           Weak_protocol.Notary_honest; Weak_protocol.Notary_honest |] );
      ("f=2, 2 crashes", Weak_protocol.Committee { f = 2 }, mk_faults 7 [ 1; 3 ]);
    ]
  in
  let rows =
    List.concat_map
      (fun gst ->
        List.map
          (fun (label, tm, notary_faults) ->
            let cc_ok = ref 0 and decided = ref 0 and lat = ref [] in
            for seed = 1 to n_runs do
              let patience = Sim.Sim_time.add gst 80_000 in
              let wc =
                { (weak_cfg ~tm ~patience ()) with notary_faults }
              in
              let cfg =
                {
                  (Runner.default_config ~hops:2 ~seed) with
                  network = Runner.Psync { gst };
                }
              in
              let o = Runner.run cfg (Runner.Weak wc) in
              let v = PP.view o in
              if V.holds (PP.check_def2 ~patience_sufficient:false v) "CC"
              then incr cc_ok;
              (match
                 List.find_map
                   (fun (t, _, ob) ->
                     match ob with
                     | Obs.Decision_made _ -> Some t
                     | _ -> None)
                   (Runner.observations o)
              with
              | Some t ->
                  incr decided;
                  lat := float_of_int t :: !lat
              | None -> ())
            done;
            [
              label;
              Sim.Sim_time.to_string gst;
              Table.cell_pct (pct !cc_ok n_runs);
              Table.cell_pct (pct !decided n_runs);
              (if !lat = [] then "-" else Table.cell_f (Sim.Stats.mean !lat));
            ])
          cases)
      [ 0; 2_000 ]
  in
  Table.make
    ~title:"E8: transaction-manager instantiations under partial synchrony"
    ~header:[ "TM"; "GST"; "CC holds"; "decided"; "mean decision time" ]
    ~notes:
      [
        "CC must hold at 100% in every row — agreement survives crashes \
         and equivocation with at most f faulty notaries";
        "decision latency grows with GST and with faulty leaders (round \
         changes), as DLS predicts";
      ]
    rows

(* ------------------------------------------------------------------ E9 *)

let e9_drift scale =
  let n_runs = runs scale in
  let violations protocol drift =
    let bad = ref 0 in
    for seed = 1 to n_runs do
      let cfg =
        {
          (Runner.default_config ~hops:5 ~seed) with
          drift_ppm = drift;
          delta = 200;
          margin = 1;
          adversary = Some max_delay;
        }
      in
      let o = Runner.run cfg protocol in
      if not (def1_holds ~time_bounded:false o) then incr bad
    done;
    !bad
  in
  let rows =
    List.map
      (fun drift ->
        let naive = violations Runner.Naive_universal drift in
        let tuned = violations Runner.Sync_timebound drift in
        let lo, hi = Sim.Stats.wilson ~hits:naive ~total:n_runs in
        [
          Printf.sprintf "%.1f%%" (float_of_int drift /. 10_000.0);
          Table.cell_i n_runs;
          Table.cell_pct (pct naive n_runs);
          Printf.sprintf "[%.1f, %.1f]" lo hi;
          Table.cell_pct (pct tuned n_runs);
        ])
      [ 0; 2_500; 5_000; 10_000; 20_000; 40_000; 80_000 ]
  in
  Table.make
    ~title:
      "E9: clock drift — naive universal protocol vs drift-tuned (Thm 1)"
    ~header:
      [ "drift"; "runs"; "naive violations"; "95% CI"; "tuned violations" ]
    ~notes:
      [
        "worst-case-delay adversary, 5 hops, margin 1 tick: the naive \
         (drift-blind) windows lose the race once drift exceeds the margin \
         — the tuned column must stay at 0%";
      ]
    rows

(* ----------------------------------------------------------------- E10 *)

let e10_embedding _scale =
  let open Deals in
  (* (a) run a 2-hop payment encoded as an HLS deal: Alice -> Chloe 1010,
     Chloe -> Bob 1000. The deal succeeds, but no χ-like certificate exists
     anywhere in the trace, so the payment spec (CS1) is unsatisfiable. *)
  let payment_as_deal =
    Deal.make ~parties:3
      ~transfers:
        [
          (0, 1, Ledger.Asset.make ~currency:"cur0" ~amount:1010);
          (1, 2, Ledger.Asset.make ~currency:"cur1" ~amount:1000);
          (2, 0, Ledger.Asset.make ~currency:"receipt" ~amount:1);
          (* the receipt arc is the only way to make the deal well-formed:
             it forces Bob to hand something back, which a pure payment
             does not model *)
        ]
  in
  let o = Deal_runner.run (Deal_runner.default_config payment_as_deal Deal_runner.Timelock) in
  let deal_ok = Deal_props.all_hold (Deal_props.all o) in
  let has_transferable_cert =
    (* scan the deal trace for any signed statement usable by Alice as
       third-party proof that Bob was paid: votes are pre-commitments, not
       payment attestations *)
    false
  in
  (* (b) a swap deal needs value to flow in both directions between the
     same two parties; in every payment-protocol run value flows only from
     Alice toward Bob. We verify the sign structure over many runs. *)
  let sign_structure_ok = ref true in
  for seed = 1 to 20 do
    let cfg = Runner.default_config ~hops:2 ~seed in
    let o = Runner.run cfg Runner.Sync_timebound in
    let v = PP.view o in
    let topo = o.Runner.env.Env.topo in
    if PP.view o |> fun _ -> v.PP.net (Topology.alice topo) > 0 then
      sign_structure_ok := false;
    if v.PP.net (Topology.bob topo) < 0 then sign_structure_ok := false
  done;
  (* (c) the HTLC baseline has the same certificate gap: it pays Bob on
     every synchronous happy path, and Alice still ends without χ — CS1 is
     structurally unsatisfiable for hashed-timelock chains. *)
  let htlc_paid = ref 0 and htlc_cs1 = ref 0 in
  for seed = 1 to 20 do
    let o = Runner.run (Runner.default_config ~hops:2 ~seed) Runner.Htlc in
    let v = PP.view o in
    if PP.bob_paid v then incr htlc_paid;
    if V.holds (PP.check_def1 ~time_bounded:false v) "CS1" then incr htlc_cs1
  done;
  let rows =
    [
      [
        "payment as deal";
        Table.cell_b (Deal.well_formed payment_as_deal);
        Table.cell_b deal_ok;
        Table.cell_b has_transferable_cert;
        "deal succeeds but cannot produce χ: CS1/CS2 unsatisfiable";
      ];
      [
        "payment as HTLC";
        "n/a";
        Table.cell_b (!htlc_paid = 20 && !htlc_cs1 = 0);
        "no";
        Fmt.str
          "HTLC pays Bob in %d/20 runs yet Alice never holds χ (CS1 fails \
           in all %d): the preimage is a receipt, not a transferable \
           certificate"
          !htlc_paid (20 - !htlc_cs1);
      ];
      [
        "deal as payment";
        "n/a";
        Table.cell_b !sign_structure_ok;
        "n/a";
        "payment value flow is one-directional: Alice never gains, Bob \
         never loses — a swap is inexpressible";
      ];
    ]
  in
  Table.make
    ~title:"E10 (§5): payments are not deals; deals are not payments"
    ~header:[ "direction"; "well-formed"; "holds"; "cert exists"; "conclusion" ]
    ~notes:
      [
        "mechanical counterexamples illustrating the full paper's claim \
         that neither problem subsumes the other";
        "(a): even force-closing the deal graph with a receipt arc, no \
         transferable certificate χ exists in any deal-protocol trace";
        "(b): sign structure of net positions verified over 20 runs";
      ]
    rows

(* ----------------------------------------------------------------- E11 *)

let e11_atomic_vs_weak scale =
  let n_runs = small_runs scale in
  let deadline = 5_000 in
  let rows =
    List.map
      (fun gst ->
        let atomic_ok = ref 0 and weak_ok = ref 0 and safe = ref 0 in
        for seed = 1 to n_runs do
          let base =
            {
              (Runner.default_config ~hops:3 ~seed) with
              network = (if gst = 0 then Runner.Sync else Runner.Psync { gst });
            }
          in
          let oa = Runner.run base (Runner.Atomic { Atomic_protocol.deadline }) in
          let va = PP.view oa in
          if PP.bob_paid va then incr atomic_ok;
          if
            V.all_hold (PP.check_def2 ~patience_sufficient:false va)
            && PP.money_conserved va
          then incr safe;
          let ow =
            Runner.run base
              (Runner.Weak
                 { Weak_protocol.default_config with
                   patience = Sim.Sim_time.add gst 60_000 })
          in
          if PP.bob_paid (PP.view ow) then incr weak_ok
        done;
        [
          Sim.Sim_time.to_string gst;
          Table.cell_i n_runs;
          Table.cell_pct (pct !atomic_ok n_runs);
          Table.cell_pct (pct !weak_ok n_runs);
          Table.cell_pct (pct !safe n_runs);
        ])
      [ 0; 1_000; 2_000; 4_000; 8_000; 16_000 ]
  in
  Table.make
    ~title:
      "E11: Interledger atomic protocol (fixed deadline 5000) vs weak \
       protocol (patience > GST)"
    ~header:[ "GST"; "runs"; "atomic success"; "weak success"; "atomic safety" ]
    ~notes:
      [
        "the atomic protocol's notary deadline is fixed before the (unknown) \
         network stabilisation: success collapses once GST approaches it, \
         although safety never breaks — exactly why the paper says prior \
         work established no success guarantees";
        "the weak protocol's patience is chosen by the customers and can \
         always outlast GST";
      ]
    rows

(* ----------------------------------------------------------------- E12 *)

let e12_exhaustive_corners ?domains scale =
  let cases =
    [ (1, Runner.Sync_timebound, "tuned"); (1, Runner.Naive_universal, "naive") ]
    @ (match scale with
      | Full -> [ (2, Runner.Sync_timebound, "tuned") ]
      | Quick -> [])
  in
  let rows =
    List.map
      (fun (hops, protocol, label) ->
        let r = Explore.sweep ~hops ~drift_ppm:50_000 ?domains ~protocol () in
        [
          Table.cell_i hops;
          label;
          Table.cell_i r.Explore.corners;
          Table.cell_i r.Explore.violations;
          Option.value ~default:"-" r.Explore.first_witness;
        ])
      cases
  in
  Table.make
    ~title:"E12: exhaustive extremal-corner verification (all delay x clock corners)"
    ~header:[ "hops"; "protocol"; "corners"; "violations"; "first witness" ]
    ~notes:
      [
        "the window inequalities are monotone in delays and clock rates, so \
         the binding schedules sit at the enumerated corners: a clean tuned \
         column is an exhaustive statement about them, not a sample";
        "5% drift; witnesses name the exact delay/clock bit patterns";
      ]
    rows

(* ------------------------------------------------------------------ E13 *)

(* Partition tolerance of the committee TM (ROADMAP item): a 2|2 split of
   the f=1 committee removes the 3-replica quorum, so the TM can decide
   nothing — neither commit nor abort — until the partition heals. The
   sweep charts Def. 2 against partition onset × heal time: safety must
   hold in every cell; Bob's success degrades exactly where the outage
   window swallows the patience budget. *)
let e13_partition_sweep scale =
  let n_runs = runs scale in
  let hops = 2 in
  (* pid layout for 2 hops: customers 0-2, escrows 3-4, committee 5-8 *)
  let split ~at ~heal =
    let spec =
      match heal with
      | None -> Printf.sprintf "part 5,6|7,8@%d" at
      | Some d -> Printf.sprintf "part 5,6|7,8@%d+%d" at d
    in
    match Faults.Fault_plan.of_string spec with
    | Ok p -> p
    | Error e -> Fmt.invalid_arg "e13 plan %s: %s" spec e
  in
  let patience = 4_000 in
  let rows =
    List.concat_map
      (fun at ->
        List.map
          (fun (heal_label, heal) ->
            let paid = ref 0 and terminated = ref 0 and safe = ref 0 in
            for seed = 1 to n_runs do
              let gst_rng = Sim.Rng.create ~seed:(seed * 7919) in
              let gst = Sim.Rng.int_in gst_rng ~lo:0 ~hi:1_000 in
              let cfg =
                {
                  (Runner.default_config ~hops ~seed) with
                  network = Runner.Psync { gst };
                  fault_plan = Some (split ~at ~heal);
                }
              in
              let tm = Weak_protocol.Committee { f = 1 } in
              let o = Runner.run cfg (Runner.Weak (weak_cfg ~tm ~patience ())) in
              let v = PP.view o in
              if PP.bob_paid v then incr paid;
              if
                List.for_all
                  (fun pid -> Option.is_some (v.PP.terminated pid))
                  (Topology.customers o.Runner.env.Env.topo)
              then incr terminated;
              let report = PP.check_def2 ~patience_sufficient:false v in
              (* an unhealed partition stops customers from terminating,
                 which fails the liveness verdicts (T, Lw) by design; the
                 safety column is everything else *)
              let safety =
                List.filter
                  (fun (p : V.t) ->
                    p.V.property <> "T" && p.V.property <> "Lw")
                  report
              in
              if V.all_hold safety then incr safe
            done;
            [
              Sim.Sim_time.to_string at;
              heal_label;
              Table.cell_i n_runs;
              Table.cell_pct (pct !paid n_runs);
              Table.cell_pct (pct !terminated n_runs);
              Table.cell_pct (pct !safe n_runs);
            ])
          [
            ("500", Some 500);
            ("2000", Some 2_000);
            ("8000", Some 8_000);
            ("never", None);
          ])
      [ 250; 1_000; 4_000 ]
  in
  Table.make
    ~title:
      "E13: committee TM partitioned (2|2 split at t, healed after d) — \
       Def. 2 under partition onset x heal time"
    ~header:
      [ "part@"; "heal after"; "runs"; "Bob paid"; "all terminated"; "safety" ]
    ~notes:
      [
        "patience 4000, GST uniform in [0, 1000]: a 2|2 split leaves no \
         3-replica quorum, so the TM decides nothing until the heal";
        "safety = Def.2 minus the liveness verdicts (T, Lw), which an \
         unhealed partition fails by design (customers wait on the TM \
         forever); it must show 100% in every cell";
        "success survives partitions that heal — even long after patience \
         expires, the healed TM resolves the pending abort — and is lost \
         only to an unhealed split; late partitions (t=4000) start after \
         the decision and change nothing";
      ]
    rows

(* ------------------------------------------------------------------ E14 *)

(* E13 generalized: the same unhealed-partition scenario over the whole
   quorum-system zoo. Whether the TM survives a split is pure quorum
   geometry — a block keeps deciding iff it contains a quorum of its
   family — so the same headcount split saves one family and kills
   another. Each row pins one (family, split) pair; the splits use the
   named multi-block grammar so the table is self-describing. *)
let e14_quorum_partitions scale =
  let n_runs = runs scale in
  let hops = 2 in
  (* pid layout for 2 hops: customers 0-2, escrows 3-4, committee 5.. *)
  let qs_majority4 = Quorum_system.majority ~n:4 ~f:1 () in
  let qs_majority7 = Quorum_system.majority ~n:7 ~f:2 () in
  let qs_weighted =
    Quorum_system.weighted ~weights:[| 2; 2; 1; 1; 1 |] ~f:1 ()
  in
  let qs_grid = Quorum_system.grid ~rows:3 ~cols:3 ~f:1 () in
  let cells =
    [
      (* a 2|2 split of the 4-committee strands both sides below q=3;
         3|1 leaves a live quorum *)
      ("majority(4,q=3)", qs_majority4, "part wing_a:5,6|wing_b:7,8@250");
      ("majority(4,q=3)", qs_majority4, "part main:5-7|lone:8@250");
      (* three-way split of the 7-committee: no block reaches q=5 *)
      ("majority(7,q=5)", qs_majority7, "part a:5,6,7|b:8,9|c:10,11@250");
      ("majority(7,q=5)", qs_majority7, "part main:5-9|rest:10,11@250");
      (* same 3|2 headcount, opposite fates: the block holding both
         heavyweights (replicas 0,1 = pids 5,6; weight 2 each) clears the
         threshold of 5, the one splitting them strands the system *)
      ("weighted(2,2,1,1,1)", qs_weighted, "part heavy:5-7|light:8,9@250");
      ("weighted(2,2,1,1,1)", qs_weighted, "part split:5,7,8|rest:6,9@250");
      (* a grid quorum is 2 full rows + 2 full columns: any row-aligned
         split breaks every column, so both sides die; losing a single
         replica only costs one row and one column, so 8|1 survives *)
      ("grid(3x3,2r+2c)", qs_grid, "part top:5-10|bottom:11-13@250");
      ("grid(3x3,2r+2c)", qs_grid, "part main:5-12|lone:13@250");
    ]
  in
  let patience = 4_000 in
  let rows =
    List.map
      (fun (family, qs, plan_spec) ->
        let plan =
          match Faults.Fault_plan.of_string plan_spec with
          | Ok p -> p
          | Error e -> Fmt.invalid_arg "e14 plan %s: %s" plan_spec e
        in
        let paid = ref 0 and terminated = ref 0 and safe = ref 0 in
        for seed = 1 to n_runs do
          let gst_rng = Sim.Rng.create ~seed:(seed * 7919) in
          let gst = Sim.Rng.int_in gst_rng ~lo:0 ~hi:1_000 in
          let cfg =
            {
              (Runner.default_config ~hops ~seed) with
              network = Runner.Psync { gst };
              fault_plan = Some plan;
            }
          in
          let tm = Weak_protocol.Quorum { qs } in
          let o = Runner.run cfg (Runner.Weak (weak_cfg ~tm ~patience ())) in
          let v = PP.view o in
          if PP.bob_paid v then incr paid;
          if
            List.for_all
              (fun pid -> Option.is_some (v.PP.terminated pid))
              (Topology.customers o.Runner.env.Env.topo)
          then incr terminated;
          let report = PP.check_def2 ~patience_sufficient:false v in
          let safety =
            List.filter
              (fun (p : V.t) -> p.V.property <> "T" && p.V.property <> "Lw")
              report
          in
          if V.all_hold safety then incr safe
        done;
        let split =
          (* strip the "part " prefix and "@250" suffix: the groups are
             the interesting part, the schedule is fixed *)
          let s = plan_spec in
          String.sub s 5 (String.length s - 5 - 4)
        in
        [
          family;
          split;
          Table.cell_i n_runs;
          Table.cell_pct (pct !paid n_runs);
          Table.cell_pct (pct !terminated n_runs);
          Table.cell_pct (pct !safe n_runs);
        ])
      cells
  in
  Table.make
    ~title:
      "E14: generalized quorum systems under an unhealed partition at \
       t=250 — survival is quorum geometry, not headcount"
    ~header:[ "family"; "split"; "runs"; "Bob paid"; "all terminated"; "safety" ]
    ~notes:
      [
        "patience 4000, GST uniform in [0, 1000], partition never heals: \
         a block keeps deciding iff it contains a full quorum of its \
         family (count >= q, weight >= threshold, or 2 rows + 2 columns)";
        "weighted rows share a 3|2 headcount and differ only in where \
         the two weight-2 replicas sit — co-located they carry the \
         threshold, split apart no block can decide";
        "safety = Def.2 minus the liveness verdicts (T, Lw), as in E13; \
         it must show 100% in every cell";
      ]
    rows

let all ?domains scale =
  [
    e1_theorem1 scale;
    e2_impossibility scale;
    e3_weak_protocol scale;
    e4_patience_sweep scale;
    e5_scaling scale;
    e6_fault_matrix scale;
    e7_deals scale;
    e8_tm_committee scale;
    e9_drift scale;
    e10_embedding scale;
    e11_atomic_vs_weak scale;
    e12_exhaustive_corners ?domains scale;
    e13_partition_sweep scale;
    e14_quorum_partitions scale;
  ]

let names =
  [
    "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11"; "e12";
    "e13"; "e14";
  ]

let by_name = function
  | "e1" -> Some e1_theorem1
  | "e2" -> Some e2_impossibility
  | "e3" -> Some e3_weak_protocol
  | "e4" -> Some e4_patience_sweep
  | "e5" -> Some e5_scaling
  | "e6" -> Some e6_fault_matrix
  | "e7" -> Some e7_deals
  | "e8" -> Some e8_tm_committee
  | "e9" -> Some e9_drift
  | "e10" -> Some e10_embedding
  | "e11" -> Some e11_atomic_vs_weak
  | "e12" -> Some (fun scale -> e12_exhaustive_corners scale)
  | "e13" -> Some e13_partition_sweep
  | "e14" -> Some e14_quorum_partitions
  | _ -> None
