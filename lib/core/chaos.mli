(** Chaos harness: payments under randomized environment faults.

    Each chaos run executes one payment with a {!Faults.Fault_plan.t}
    installed — lossy links, crash–recovery schedules, partitions, GST
    jitter — and checks the {e safety} subset of the paper's properties:
    C, ES, CS1–CS3 and global money conservation. Liveness (T, L) is
    deliberately excluded: a fault plan is allowed to stall a payment, it
    is never allowed to lose or mint money. A stalled run is classified,
    not failed.

    The soak sweeps hundreds of random plans across seeds. Every run is a
    pure function of [(seed, plan)], so each reported violation carries a
    one-line repro ([xchain chaos --seed … --plan '…']) that replays it
    bit-for-bit. *)

type classification =
  | Safe_commit  (** Bob was paid; safety held *)
  | Safe_abort
      (** Bob unpaid, every non-faulted customer terminated; safety held *)
  | Stuck
      (** some non-faulted customer never terminated — liveness lost to
          the faults (expected under drops and partitions), safety held *)
  | Safety_violation  (** an applicable safety property failed *)

val classification_name : classification -> string
(** ["safe-commit"], ["safe-abort"], ["stuck"], ["safety-violation"]. *)

val protocol_flag : Protocols.Runner.protocol -> string
(** The CLI's [-p] spelling of a protocol ("sync", "naive", "htlc",
    "weak", "committee"), as repro lines print it. *)

type run_result = {
  seed : int;
  hops : int;
  protocol : Protocols.Runner.protocol;
  plan : Faults.Fault_plan.t;
  classification : classification;
  failures : Props.Verdict.t list;
      (** the failed verdicts; non-empty iff [Safety_violation] *)
  status : Sim.Engine.status;
  end_time : Sim.Sim_time.t;
  events : int;  (** engine events this run dequeued (deterministic) *)
  paid_node : int;
      (** causal blame sink (Bob's payout), [-1] when untraced/unpaid *)
  settled_node : int;  (** causal node of Bob's termination, or [-1] *)
  fired : int array;
      (** per-clause activation counts in {!Faults.Fault_plan.clause_count}
          order (see {!Faults.Injector.clause_hits}); [[||]] when the run
          carried no plan *)
  injected : int array;
      (** injection totals [[| drops; dups; corruptions; partition
          suppressions |]] ({!Faults.Injector.kind_counts}) *)
}

val safety_report : Props.Payment_props.run_view -> Props.Verdict.report
(** C, ES, CS1, CS2, CS3 plus an [M] (money conservation) verdict. *)

val run_one :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  ?causal:Obsv.Causal.t ->
  ?prof:Obsv.Prof.t ->
  plan:Faults.Fault_plan.t ->
  seed:int ->
  unit ->
  run_result
(** One payment (default: 2 hops, {!Protocols.Runner.Sync_timebound},
    synchronous network) under [plan], classified. [causal] records the
    run's happens-before graph (see {!Protocols.Runner}) and fills
    [paid_node] / [settled_node]; [prof] profiles the run's dispatches
    ({!Obsv.Prof}). Neither changes the schedule. *)

val repro_line : run_result -> string
(** [xchain chaos -p PROTO --hops H --seed N --plan 'P'] — replays this
    run exactly. *)

type summary = {
  runs : int;
  commits : int;
  aborts : int;
  stuck : int;
  violations : run_result list;
  events : int;  (** engine events across all runs (deterministic) *)
  domains : int;  (** domains the fleet actually used *)
  wall_ns : int;  (** batch wall time — nondeterministic, keep out of
                      byte-compared output *)
}

val soak :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  ?runs:int ->
  ?domains:int ->
  ?prof:Obsv.Prof.t ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  seed:int ->
  unit ->
  summary
(** [runs] (default 200) chaos runs: run [i] uses seed [seed + i] and a
    random plan derived from that seed alone, so any single run replays
    from its repro line without re-running the sweep.

    Runs are sharded over [?domains] OCaml domains (default
    {!Fleet.default_domains}); every field of the summary except
    [domains] and [wall_ns] is byte-identical for any domain count.
    [?on_progress] reports completed runs from the calling domain.

    [prof] profiles every run's dispatches into one accumulator set; a
    profiled soak forces [domains = 1] (the profiler is single-threaded
    mutable state), so profile a smaller [runs] count when wall time
    matters. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line of counts, then a repro line per violation. Never prints
    timing, so transcripts stay deterministic. *)

val summary_to_json :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  seed:int ->
  summary ->
  string
(** The soak as one JSON object. Every member except the trailing
    ["timing"] block (wall_ns, domains, events_per_sec) is deterministic;
    strip that block (scripts/strip_timing.py) before byte-comparing
    reports across domain counts. *)
