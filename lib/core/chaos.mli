(** Chaos harness: payments under randomized environment faults.

    Each chaos run executes one payment with a {!Faults.Fault_plan.t}
    installed — lossy links, crash–recovery schedules, partitions, GST
    jitter — and checks the {e safety} subset of the paper's properties:
    C, ES, CS1–CS3 and global money conservation. Liveness (T, L) is
    deliberately excluded: a fault plan is allowed to stall a payment, it
    is never allowed to lose or mint money. A stalled run is classified,
    not failed.

    The soak sweeps hundreds of random plans across seeds. Every run is a
    pure function of [(seed, plan)], so each reported violation carries a
    one-line repro ([xchain chaos --seed … --plan '…']) that replays it
    bit-for-bit. *)

type classification =
  | Safe_commit  (** Bob was paid; safety held *)
  | Safe_abort
      (** Bob unpaid, every non-faulted customer terminated; safety held *)
  | Stuck
      (** some non-faulted customer never terminated — liveness lost to
          the faults (expected under drops and partitions), safety held *)
  | Safety_violation  (** an applicable safety property failed *)

val classification_name : classification -> string
(** ["safe-commit"], ["safe-abort"], ["stuck"], ["safety-violation"]. *)

val protocol_flag : Protocols.Runner.protocol -> string
(** The CLI's [-p] spelling of a protocol ("sync", "naive", "htlc",
    "weak", "committee"), as repro lines print it. *)

type run_result = {
  seed : int;
  hops : int;
  protocol : Protocols.Runner.protocol;
  plan : Faults.Fault_plan.t;
  faults : (int * Protocols.Byzantine.t) list;
      (** Byzantine strategy substitutions the run carried ([[]] for a
          plain environment-fault run) *)
  classification : classification;
  failures : Props.Verdict.t list;
      (** the failed verdicts; non-empty iff [Safety_violation] *)
  status : Sim.Engine.status;
  end_time : Sim.Sim_time.t;
  events : int;  (** engine events this run dequeued (deterministic) *)
  paid_node : int;
      (** causal blame sink (Bob's payout), [-1] when untraced/unpaid *)
  settled_node : int;  (** causal node of Bob's termination, or [-1] *)
  fired : int array;
      (** per-clause activation counts in {!Faults.Fault_plan.clause_count}
          order (see {!Faults.Injector.clause_hits}); [[||]] when the run
          carried no plan *)
  injected : int array;
      (** injection totals [[| drops; dups; corruptions; partition
          suppressions |]] ({!Faults.Injector.kind_counts}) *)
  breach_at : int;
      (** sim-time the online monitor first tripped, [-1] when the run
          was unmonitored or nothing tripped. With [--stop-on-violation]
          the run's [end_time] equals this breach time. *)
}

val safety_report : Props.Payment_props.run_view -> Props.Verdict.report
(** C, ES, CS1, CS2, CS3 plus an [M] (money conservation) verdict. *)

val register_safety_checks : Obsv.Monitor.t -> Protocols.Runner.outcome -> unit
(** Register the safety subset as online monitor checks over a (live,
    provisional) outcome — the closures evaluate the {e same} post-hoc
    predicates as {!safety_report} against the run's own mutable books
    and trace, which is what makes the monitor's final verdict agree with
    the post-hoc report by construction. Called by {!run_one}'s
    [on_ready] hook; exposed for harnesses that assemble their own
    runner configs. *)

val run_one :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  ?causal:Obsv.Causal.t ->
  ?prof:Obsv.Prof.t ->
  ?monitor:Obsv.Monitor.t ->
  ?sampler:Obsv.Sampler.t ->
  ?recorder:Obsv.Recorder.t ->
  ?faults:(int * Protocols.Byzantine.t) list ->
  plan:Faults.Fault_plan.t ->
  seed:int ->
  unit ->
  run_result
(** One payment (default: 2 hops, {!Protocols.Runner.Sync_timebound},
    synchronous network) under [plan], classified. [causal] records the
    run's happens-before graph (see {!Protocols.Runner}) and fills
    [paid_node] / [settled_node]; [prof] profiles the run's dispatches
    ({!Obsv.Prof}). Neither changes the schedule.

    [monitor] arms online verification of the safety subset on every
    dispatch (filling [breach_at]); a stop-on-violation monitor ends the
    run at the first breach with status [Violation_stop]. [sampler]
    records a sim-time series (queue depth plus per-escrow pooled
    funds); [recorder] keeps the flight-recorder ring for {!bundle}.
    [faults] substitutes Byzantine strategies, exactly like
    [xchain audit --fault]; repro lines include them. *)

val repro_line : run_result -> string
(** [xchain chaos -p PROTO --hops H --seed N --plan 'P' [--fault S@R]…] —
    replays this run exactly. *)

val dag_slice_json : Obsv.Causal.t -> string
(** The causal DAG's last (up to) 64 nodes as a JSON object — the slice a
    forensic bundle embeds. Deterministic. *)

val bundle :
  ?causal:Obsv.Causal.t ->
  monitor:Obsv.Monitor.t ->
  recorder:Obsv.Recorder.t ->
  run_result ->
  string
(** The forensic bundle for a failed run (JSON, one line): first-breach
    property/detail/sim-time from the monitor (reason ["violation"]), or
    reason ["stuck"] at [end_time] when nothing tripped; the flight-ring
    window; the causal-DAG slice when [causal] was armed; a metrics
    snapshot; and the one-line repro. Deterministic — replaying the
    repro with the same sinks reproduces the bundle byte for byte. *)

type summary = {
  runs : int;
  commits : int;
  aborts : int;
  stuck : int;
  violations : run_result list;
  events : int;  (** engine events across all runs (deterministic) *)
  domains : int;  (** domains the fleet actually used *)
  wall_ns : int;  (** batch wall time — nondeterministic, keep out of
                      byte-compared output *)
}

type health = {
  h_done : int;
  h_total : int;
  h_commits : int;
  h_aborts : int;
  h_stuck : int;
  h_violations : int;
}
(** A live mid-soak snapshot of the outcome taxonomy, for tty health
    lines. Counts are read from cross-domain atomics, so [h_done] may
    trail the sum of the four outcome counters by in-flight jobs. *)

val soak :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  ?runs:int ->
  ?domains:int ->
  ?prof:Obsv.Prof.t ->
  ?monitor:bool ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  ?on_health:(health -> unit) ->
  seed:int ->
  unit ->
  summary
(** [runs] (default 200) chaos runs: run [i] uses seed [seed + i] and a
    random plan derived from that seed alone, so any single run replays
    from its repro line without re-running the sweep.

    Runs are sharded over [?domains] OCaml domains (default
    {!Fleet.default_domains}); every field of the summary except
    [domains] and [wall_ns] is byte-identical for any domain count.
    [?on_progress] reports completed runs from the calling domain.

    [prof] profiles every run's dispatches into one accumulator set; a
    profiled soak forces [domains = 1] (the profiler is single-threaded
    mutable state), so profile a smaller [runs] count when wall time
    matters.

    [monitor] (default false) arms a fresh online monitor inside every
    job, so each violating run's [breach_at] carries the exact sim-time
    of first breach; the monitors never stop runs, so the summary stays
    byte-identical to an unmonitored soak. [on_health] receives a live
    taxonomy snapshot at every progress callback. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line of counts, then a repro line per violation. Never prints
    timing, so transcripts stay deterministic. *)

val summary_to_json :
  ?hops:int ->
  ?protocol:Protocols.Runner.protocol ->
  seed:int ->
  summary ->
  string
(** The soak as one JSON object. Every member except the trailing
    ["timing"] block (wall_ns, domains, events_per_sec) is deterministic;
    strip that block (scripts/strip_timing.py) before byte-comparing
    reports across domain counts. *)
