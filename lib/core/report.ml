open Protocols
module PP = Props.Payment_props
module V = Props.Verdict

type participant = {
  pid : int;
  name : string;
  byzantine : string option;
  terminated : (int * string) option;
  net : int;
  conforms : bool option;
}

type t = {
  outcome : Runner.outcome;
  headline : string;
  participants : participant list;
  verdicts : V.report;
  breaches : Props.Promises.breach list;
  conserved : bool;
}

let conformance_of outcome pid =
  match outcome.Runner.protocol with
  | Runner.Sync_timebound | Runner.Naive_universal -> (
      match Topology.role_of outcome.Runner.env.Env.topo pid with
      | Some (Topology.Aux _) | None -> None
      | Some _ ->
          let auto = Sync_protocol.automaton_for outcome.Runner.env pid in
          Some
            (Anta.Conformance.check auto ~pid ~tag_of:Msg.tag
               outcome.Runner.trace
            = Ok ()))
  | _ -> None

let build (outcome : Runner.outcome) =
  let v = PP.view outcome in
  let topo = outcome.Runner.env.Env.topo in
  let verdicts =
    match outcome.Runner.protocol with
    | Runner.Weak _ | Runner.Atomic _ ->
        PP.check_def2 ~patience_sufficient:false v
    | _ -> PP.check_def1 ~time_bounded:false v
  in
  let pids =
    Topology.customers topo @ Topology.escrows topo
    @ Array.to_list outcome.Runner.tm_pids
  in
  let participants =
    List.map
      (fun pid ->
        {
          pid;
          name = Api.participant_name outcome pid;
          byzantine = List.assoc_opt pid outcome.Runner.fault_names;
          terminated =
            Option.map
              (fun (t, tag) -> (t, tag))
              (v.PP.terminated pid);
          net = v.PP.net pid;
          conforms = conformance_of outcome pid;
        })
      pids
  in
  let headline =
    if PP.bob_paid v then
      Fmt.str "payment SUCCEEDED under %s at t=%d (%d messages)"
        (Runner.protocol_name outcome.Runner.protocol)
        outcome.Runner.end_time outcome.Runner.message_count
    else
      Fmt.str "payment DID NOT COMPLETE under %s (%d messages, status %s)"
        (Runner.protocol_name outcome.Runner.protocol)
        outcome.Runner.message_count
        (match outcome.Runner.status with
        | Sim.Engine.Quiescent -> "quiescent"
        | Sim.Engine.Horizon_reached -> "horizon reached"
        | Sim.Engine.Event_limit -> "event limit"
        | Sim.Engine.Violation_stop -> "violation stop")
  in
  {
    outcome;
    headline;
    participants;
    verdicts;
    breaches = Props.Promises.breaches v;
    conserved = PP.money_conserved v;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>%s@,@," t.headline;
  Fmt.pf ppf "participants:@,";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-8s" p.name;
      (match p.byzantine with
      | Some s -> Fmt.pf ppf " [byzantine: %s]" s
      | None -> ());
      (match p.terminated with
      | Some (time, tag) -> Fmt.pf ppf " %s at t=%d" tag time
      | None -> Fmt.pf ppf " never terminated");
      if p.net <> 0 then Fmt.pf ppf ", net %+d" p.net;
      (match p.conforms with
      | Some true -> Fmt.pf ppf ", conforms to Fig.2"
      | Some false -> Fmt.pf ppf ", DEVIATES from Fig.2"
      | None -> ());
      Fmt.pf ppf "@,")
    t.participants;
  Fmt.pf ppf "@,properties:@,%a@," V.pp_report t.verdicts;
  (match t.breaches with
  | [] -> Fmt.pf ppf "@,promises: all honoured@,"
  | bs ->
      Fmt.pf ppf "@,promise breaches:@,";
      List.iter (fun b -> Fmt.pf ppf "  %a@," Props.Promises.pp_breach b) bs);
  Fmt.pf ppf "conservation: %s@]"
    (if t.conserved then "every book audits" else "VIOLATED")

let to_string t = Fmt.str "%a" pp t
