type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~header ?(notes = []) rows =
  List.iteri
    (fun i row ->
      if List.length row <> List.length header then
        invalid_arg
          (Printf.sprintf "Table.make (%s): row %d has %d cells, header has %d"
             title i (List.length row) (List.length header)))
    rows;
  { title; header; rows; notes }

let cell_f x = Printf.sprintf "%.1f" x
let cell_pct x = Printf.sprintf "%.1f%%" x
let cell_i = string_of_int
let cell_b b = if b then "yes" else "no"

let render ppf t =
  let cols = List.length t.header in
  let width = Array.make cols 0 in
  let measure row =
    List.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)) row
  in
  measure t.header;
  List.iter measure t.rows;
  let pad i c = c ^ String.make (width.(i) - String.length c) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  Fmt.pf ppf "@[<v>== %s ==@," t.title;
  Fmt.pf ppf "%s@," (line t.header);
  let total = List.fold_left (fun acc w -> acc + w + 2) (-2) (Array.to_list width) in
  Fmt.pf ppf "%s@," (String.make (max 1 total) '-');
  List.iter (fun row -> Fmt.pf ppf "%s@," (line row)) t.rows;
  List.iter (fun n -> Fmt.pf ppf "note: %s@," n) t.notes;
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" render t
