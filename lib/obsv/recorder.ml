(* Flight recorder: a bounded ring of the most recent engine events.
   Recording is a handful of integer/string stores into preallocated
   slots; the ring only matters when a violation or a stuck run needs the
   events that led up to it, at which point [window] yields the retained
   tail (oldest first) for the forensic bundle. *)

type entry = {
  at : int;
  kind : string; (* deliver / fire / crash / recover *)
  src : int; (* sender / owner pid *)
  dst : int; (* destination pid, -1 when not applicable *)
  label : string; (* message tag or timer label *)
}

let empty_entry = { at = 0; kind = ""; src = -1; dst = -1; label = "" }

type t = {
  cap : int;
  ring : entry array;
  mutable recorded : int; (* total entries ever recorded *)
}

let create ?(capacity = 256) () =
  if capacity <= 0 then
    invalid_arg "Recorder.create: capacity must be positive";
  { cap = capacity; ring = Array.make capacity empty_entry; recorded = 0 }

let record t ~at ~kind ~src ~dst ~label =
  t.ring.(t.recorded mod t.cap) <- { at; kind; src; dst; label };
  t.recorded <- t.recorded + 1

let recorded t = t.recorded
let dropped t = if t.recorded > t.cap then t.recorded - t.cap else 0
let capacity t = t.cap

let window t =
  let n = min t.recorded t.cap in
  let first = t.recorded - n in
  List.init n (fun i -> t.ring.((first + i) mod t.cap))

let entry_json e =
  Printf.sprintf "{\"at\":%d,\"kind\":\"%s\",\"src\":%d,\"dst\":%d,\"label\":\"%s\"}"
    e.at (Metrics.json_escape e.kind) e.src e.dst (Metrics.json_escape e.label)

let window_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (entry_json e))
    (window t);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* The forensic bundle: everything a human (or scripts/check_monitor.py)
   needs to understand and replay one failed run. [dag] and [metrics] are
   pre-rendered JSON fragments from the layers that own them; the bundle
   itself is deterministic — replaying the one-line repro reproduces it
   byte for byte. *)
let bundle_json ~reason ~property ~detail ~at ~repro ?(dag = "null")
    ?(metrics = "null") t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"bundle\":{\"reason\":\"%s\",\"property\":\"%s\",\"detail\":\"%s\",\
        \"at\":%d,\"repro\":\"%s\",\"ring\":{\"capacity\":%d,\"recorded\":%d,\
        \"dropped\":%d,\"window\":%s},\"dag\":%s,\"metrics\":%s}}\n"
       (Metrics.json_escape reason)
       (Metrics.json_escape property)
       (Metrics.json_escape detail)
       at
       (Metrics.json_escape repro)
       t.cap t.recorded (dropped t) (window_json t) dag metrics);
  Buffer.contents buf
