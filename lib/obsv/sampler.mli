(** Periodic sim-time telemetry series.

    A sampler owns one probe — a closure returning a row of integers for
    named columns — and reads it whenever the engine clock reaches the
    next multiple-ish of the sampling interval ({!tick} is called after
    every dispatch; sim-time jumps, so rows are stamped with the actual
    clock value that crossed the due time). Deterministic schedule in,
    byte-identical JSONL series out.

    Like the monitor and the profiler, the off path in the engine is one
    [option] match per event; a sampler only costs anything when armed. *)

type t

val create : ?interval:int -> unit -> t
(** [interval] is the sim-time sampling period (default 100 ticks);
    raises [Invalid_argument] when not positive. *)

val set_probe : t -> columns:string list -> (unit -> int array) -> unit
(** Install the probe. The closure must return rows of [columns] length,
    in column order, and must not mutate run state. *)

val tick : t -> now:int -> unit
(** Called by the engine after each dispatch; samples when [now] has
    reached the next due time. *)

val sample : t -> now:int -> unit
(** Force one sample row at [now] regardless of cadence (used for a
    final row at run end). *)

val rows : t -> (int * int array) list
(** Accumulated [(sim_time, row)] samples, oldest first. *)

val row_count : t -> int
val columns : t -> string list
val interval : t -> int

val to_jsonl : t -> string
(** One JSON object per row — [{"t":N,"<col>":v,...}] — followed by a
    trailing [{"series":{"rows":N,"interval":I}}] meta line. Fully
    deterministic. *)
