type category =
  | Queueing
  | Transit
  | Gst_wait
  | Timeout
  | Downtime
  | Processing
  | External

let categories =
  [ Queueing; Transit; Gst_wait; Timeout; Downtime; Processing; External ]

let category_name = function
  | Queueing -> "queueing"
  | Transit -> "transit"
  | Gst_wait -> "gst_wait"
  | Timeout -> "timeout"
  | Downtime -> "downtime"
  | Processing -> "processing"
  | External -> "external"

type segment = {
  seg_src : int;
  seg_dst : int;
  seg_category : category;
  seg_gap : int;
}

type report = {
  trace : int;
  root : int;
  sink : int;
  total : int;
  rooted : bool;
  path : int list;
  segments : segment list;
  by_category : (category * int) list;
}

let category_of_edge = function
  | Causal.Queue -> Queueing
  | Causal.Message -> Transit
  | Causal.Timer -> Timeout
  | Causal.Outage -> Downtime
  | Causal.Program -> Processing

(* The binding predecessor: the dependency that structurally fixed the
   event's time. In the engine every node kind has one such cause — a
   deliver is scheduled by its message arrival (not by whatever its
   receiver happened to do just before), a deferred firing by the reboot,
   a firing by its arming, a note by its explicit queue wait — so kind
   priority dominates, with source time then id as deterministic
   tie-breaks. Predecessors from before the root (another payment's
   history) are ineligible. *)
let edge_priority = function
  | Causal.Queue -> 5
  | Causal.Outage -> 4
  | Causal.Message -> 3
  | Causal.Timer -> 2
  | Causal.Program -> 1

let pick_pred c ~root preds =
  List.fold_left
    (fun best (k, src) ->
      if src < root then best
      else
        let key = (edge_priority k, Causal.time_of c src, src) in
        match best with
        | Some (_, _, bkey) when compare key bkey <= 0 -> best
        | _ -> Some (k, src, key))
    None preds
  |> Option.map (fun (k, s, _) -> (k, s))

let sum_by_category segments =
  List.map
    (fun cat ->
      ( cat,
        List.fold_left
          (fun acc s -> if s.seg_category = cat then acc + s.seg_gap else acc)
          0 segments ))
    categories

let attribute ?delta c ~root ~sink =
  let n = Causal.node_count c in
  if root < 0 || sink < root || sink >= n then
    invalid_arg "Blame.attribute: bad root/sink";
  let t_root = Causal.time_of c root in
  let segment_of_edge kind ~src ~dst =
    let gap = Causal.time_of c dst - Causal.time_of c src in
    match (kind, delta) with
    | Causal.Message, Some d when gap > d ->
        [
          { seg_src = src; seg_dst = dst; seg_category = Transit; seg_gap = d };
          {
            seg_src = src;
            seg_dst = dst;
            seg_category = Gst_wait;
            seg_gap = gap - d;
          };
        ]
    | _ ->
        [
          {
            seg_src = src;
            seg_dst = dst;
            seg_category = category_of_edge kind;
            seg_gap = gap;
          };
        ]
  in
  let rec walk cur path segments =
    if cur = root then (true, path, segments)
    else
      match pick_pred c ~root (Causal.preds c cur) with
      | Some (kind, src) ->
          walk src (src :: path) (segment_of_edge kind ~src ~dst:cur @ segments)
      | None ->
          (* the walk left the payment's own history: charge the remainder
             to the root as one external cut so the sum stays exact *)
          let cut =
            {
              seg_src = -1;
              seg_dst = cur;
              seg_category = External;
              seg_gap = Causal.time_of c cur - t_root;
            }
          in
          (false, path, cut :: segments)
  in
  let rooted, path, segments = walk sink [ sink ] [] in
  {
    trace = Causal.trace_of c sink;
    root;
    sink;
    total = Causal.time_of c sink - t_root;
    rooted;
    path;
    segments;
    by_category = sum_by_category segments;
  }

let check r =
  List.for_all (fun s -> s.seg_gap >= 0) r.segments
  && List.fold_left (fun acc (_, g) -> acc + g) 0 r.by_category = r.total

(* ------------------------------ aggregate ------------------------------ *)

type agg = {
  payments : int;
  agg_total : int;
  agg_by_category : (category * int) list;
  tail_count : int;
  tail_total : int;
  tail_by_category : (category * int) list;
}

let sum_reports reports =
  ( List.fold_left (fun acc r -> acc + r.total) 0 reports,
    List.map
      (fun cat ->
        ( cat,
          List.fold_left
            (fun acc r ->
              acc + List.fold_left
                      (fun a (c, g) -> if c = cat then a + g else a)
                      0 r.by_category)
            0 reports ))
      categories )

let aggregate ?(tail_pct = 1) reports =
  let n = List.length reports in
  let total, by_cat = sum_reports reports in
  let tail_count =
    if n = 0 then 0 else Stdlib.max 1 (((n * tail_pct) + 99) / 100)
  in
  let sorted =
    List.stable_sort (fun a b -> compare b.total a.total) reports
  in
  let tail = List.filteri (fun i _ -> i < tail_count) sorted in
  let tail_total, tail_by_cat = sum_reports tail in
  {
    payments = n;
    agg_total = total;
    agg_by_category = by_cat;
    tail_count;
    tail_total;
    tail_by_category = tail_by_cat;
  }

(* ------------------------------- output -------------------------------- *)

let categories_json by_cat buf =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (cat, gap) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf {|"%s":%d|} (category_name cat) gap)
    by_cat;
  Buffer.add_char buf '}'

let report_to_json r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    {|{"trace":%d,"root":%d,"sink":%d,"total":%d,"rooted":%b,"path":[|}
    r.trace r.root r.sink r.total r.rooted;
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int id))
    r.path;
  Buffer.add_string buf {|],"by_category":|};
  categories_json r.by_category buf;
  Buffer.add_char buf '}';
  Buffer.contents buf

let agg_to_json a =
  let buf = Buffer.create 256 in
  Printf.bprintf buf {|{"payments":%d,"total":%d,"by_category":|} a.payments
    a.agg_total;
  categories_json a.agg_by_category buf;
  Printf.bprintf buf {|,"tail":{"count":%d,"total":%d,"by_category":|}
    a.tail_count a.tail_total;
  categories_json a.tail_by_category buf;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let pp_categories ppf by_cat ~total =
  List.iter
    (fun (cat, gap) ->
      if gap > 0 then
        Format.fprintf ppf "  %-11s %8d ticks  %3d%%@," (category_name cat)
          gap
          (if total = 0 then 0 else 100 * gap / total))
    by_cat

let pp_report ppf r =
  Format.fprintf ppf "@[<v>blame trace=%d total=%d ticks (%s path, %d hops)@,"
    r.trace r.total
    (if r.rooted then "rooted" else "cut")
    (List.length r.path - 1);
  pp_categories ppf r.by_category ~total:r.total;
  Format.fprintf ppf "@]"

let pp_agg ppf a =
  Format.fprintf ppf "@[<v>blame: %d payments, %d ticks end-to-end@,"
    a.payments a.agg_total;
  pp_categories ppf a.agg_by_category ~total:a.agg_total;
  Format.fprintf ppf "slowest %d (p99 tail): %d ticks@," a.tail_count
    a.tail_total;
  pp_categories ppf a.tail_by_category ~total:a.tail_total;
  Format.fprintf ppf "@]"

let pp_path c ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      let label =
        if s.seg_src < 0 then "(external history)"
        else
          Printf.sprintf "%s:%s"
            (Causal.kind_name (Causal.kind_of c s.seg_src))
            (Causal.label_of c s.seg_src)
      in
      Format.fprintf ppf "t=%-8d pid %-4d %-28s +%-6d %s@,"
        (if s.seg_src < 0 then Causal.time_of c r.root
         else Causal.time_of c s.seg_src)
        (if s.seg_src < 0 then -1 else Causal.pid_of c s.seg_src)
        label s.seg_gap
        (category_name s.seg_category))
    r.segments;
  Format.fprintf ppf "t=%-8d pid %-4d %s:%s (sink)@]" (Causal.time_of c r.sink)
    (Causal.pid_of c r.sink)
    (Causal.kind_name (Causal.kind_of c r.sink))
    (Causal.label_of c r.sink)
