(** Hierarchical spans over simulated time.

    A span is a named interval [\[start, end\]] in simulation ticks, with an
    optional parent link — the usual tracing model, except the clock is the
    engine's deterministic sim clock, so two runs with the same seed emit
    identical spans. The runners emit one {e root} span per payment / deal
    (init through commit or abort) with per-participant and per-phase child
    spans underneath.

    Spans accumulate in a collector; {!to_jsonl} dumps them one JSON object
    per line for external tooling. Capture can be switched off (see
    {!set_capture}) to keep timing loops allocation-light: a disabled
    collector records nothing and {!start} returns a dummy span. *)

type t
(** A span collector. *)

type span

val create : unit -> t

val default : t
(** The process-wide collector, used by the runners unless handed an
    explicit one. *)

val set_capture : t -> bool -> unit
(** Enable or disable recording (default: enabled). *)

val capture : t -> bool

val start :
  t ->
  ?parent:span ->
  ?attrs:(string * string) list ->
  name:string ->
  at:int ->
  unit ->
  span
(** Opens a span at sim-time [at]. The result is recorded in the collector
    (unless capture is off) and stays [running] until {!finish}. *)

val finish : ?status:string -> at:int -> span -> unit
(** Closes the span at sim-time [at] with a status (conventionally
    ["ok"], ["commit"], ["abort"], ["error"]; default ["ok"]). Finishing a
    finished span, or finishing before the start time, raises
    [Invalid_argument]. *)

val set_attr : span -> string -> string -> unit
(** Attach or replace a [key=value] attribute. *)

(** {1 Reading} *)

val span_id : span -> int
val span_name : span -> string
val span_parent : span -> int option
val span_start : span -> int

val span_end : span -> int option
(** [None] while running. *)

val span_status : span -> string
(** ["running"] until finished. *)

val span_attrs : span -> (string * string) list

val count : t -> int
val roots : t -> span list
(** Spans with no parent, in start order. *)

val spans : t -> span list
(** All spans, in start order. *)

val clear : t -> unit

val to_jsonl : t -> string
(** One JSON object per span, in start order:
    [{"id":0,"parent":null,"name":"payment","start":0,"end":467,
      "status":"commit","attrs":{"protocol":"sync-timebound"}}].
    A still-running span exports ["end":null] and status ["running"]. *)
