(** Hierarchical spans over simulated time.

    A span is a named interval [\[start, end\]] in simulation ticks, with an
    optional parent link — the usual tracing model, except the clock is the
    engine's deterministic sim clock, so two runs with the same seed emit
    identical spans. The runners emit one {e root} span per payment / deal
    (init through commit or abort) with per-participant and per-phase child
    spans underneath.

    Spans accumulate in a collector; {!to_jsonl} dumps them one JSON object
    per line for external tooling. Capture can be switched off (see
    {!set_capture}) to keep timing loops allocation-light: a disabled
    collector records nothing and {!start} returns a dummy span.

    Domain-safety: appending to a collector ({!start}) is serialized on an
    internal lock, so parallel fleet jobs recording into {!default} cannot
    corrupt it. Span {e ids} are allocation-ordered, hence nondeterministic
    under parallelism — deterministic span dumps require a single-domain
    run, which is why the CLI rejects [--spans-out] combined with [-j > 1].
    {!finish} takes no lock: a span is finished only by the domain that
    started it. Reading ({!spans}, {!to_jsonl}) is safe once the batch has
    been joined. *)

type t
(** A span collector. *)

type span

val create : unit -> t

val default : t
(** The process-wide collector, used by the runners unless handed an
    explicit one. *)

val set_capture : t -> bool -> unit
(** Enable or disable recording (default: enabled). *)

val capture : t -> bool

val start :
  t ->
  ?parent:span ->
  ?attrs:(string * string) list ->
  ?trace_id:int ->
  ?root_event:int ->
  name:string ->
  at:int ->
  unit ->
  span
(** Opens a span at sim-time [at]. The result is recorded in the collector
    (unless capture is off) and stays [running] until {!finish}.

    [trace_id] and [root_event] link the span to a {!Causal} graph: the
    trace id groups it with the causal nodes of the same payment, and
    [root_event] is the causal node id the span hangs off (its root
    event), so {!to_jsonl} rows can be joined against the DAG export by
    id. Unset (the default, or any negative value), the fields are
    omitted from the export entirely. *)

val finish : ?status:string -> at:int -> span -> unit
(** Closes the span at sim-time [at] with a status (conventionally
    ["ok"], ["commit"], ["abort"], ["error"]; default ["ok"]). Finishing a
    finished span, or finishing before the start time, raises
    [Invalid_argument]. *)

val finish_running : ?status:string -> at:int -> t -> int
(** Force-finishes every span in the collector that is still running, at
    sim-time [at] (clamped per span to its start time), with [status]
    (default ["stuck"] — the {!Load} convention for payments that never
    settled by the horizon). Returns how many spans were closed. Exports
    must never show ["running"] intervals for work the scheduler has
    already given up on; run this at the horizon before dumping. *)

val set_attr : span -> string -> string -> unit
(** Attach or replace a [key=value] attribute. *)

(** {1 Reading} *)

val span_id : span -> int
val span_name : span -> string
val span_parent : span -> int option
val span_start : span -> int

val span_end : span -> int option
(** [None] while running. *)

val span_status : span -> string
(** ["running"] until finished. *)

val span_attrs : span -> (string * string) list

val span_trace_id : span -> int option
(** The causal trace id the span was linked to, if any. *)

val span_root_event : span -> int option
(** The causal node id of the span's root event, if linked. *)

val count : t -> int
val roots : t -> span list
(** Spans with no parent, in start order. *)

val spans : t -> span list
(** All spans, in start order. *)

val clear : t -> unit

val to_jsonl : t -> string
(** One JSON object per span, in start order:
    [{"id":0,"parent":null,"name":"payment","start":0,"end":467,
      "status":"commit","attrs":{"protocol":"sync-timebound"}}].
    A still-running span exports ["end":null] and status ["running"]. *)
