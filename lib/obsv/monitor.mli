(** Online runtime verification over a live engine run.

    A monitor holds named safety checks — closures over the run's own
    mutable state (ledger books, the trace) that return [Some detail]
    while their property is violated and [None] while it holds. The
    engine calls {!step} after every dispatched event, so a breach is
    detected at the exact sim-time it first occurs, not at the end of the
    run.

    Two kinds of verdict come out of one monitor:

    - {!violations} is the {e current} violated set: a property that
      recovers (its check returns [None] again) leaves the set. Because
      the registered closures are the post-hoc predicates evaluated over
      the same final state, the set after {!finalize} agrees with the
      post-hoc safety report by construction.
    - {!first_trip} is the {e historical} first breach — never reset —
      which drives [--stop-on-violation] and stamps the flight-recorder
      bundle with the sim-time of first violation.

    Zero cost when off, in the {!Prof} style: an engine without a monitor
    pays one [option] match per event and allocates nothing. *)

type t

type trip = { property : string; detail : string; at : int }

val create : ?stop_on_violation:bool -> unit -> t
(** [stop_on_violation] makes {!should_stop} turn true at the first trip,
    which the engine maps to the [Violation_stop] exit status. *)

val register : t -> name:string -> (unit -> string option) -> unit
(** Add a named check. Closures run in registration order on every
    {!step}; they must be pure reads of run state (never mutate the
    schedule). *)

val step : t -> at:int -> unit
(** Evaluate every check at sim-time [at]: called by the engine after
    each dispatched event. *)

val finalize : t -> at:int -> unit
(** One last {!step} at the run's end time, so {!violations} reflects the
    final state even when the last dispatched event predated quiescence. *)

val violations : t -> trip list
(** Currently-violated properties, registration order; each carries the
    sim-time it {e entered} the violated set. *)

val first_trip : t -> trip option
(** The historical first breach, never reset by recovery. *)

val breach_at : t -> int
(** [first_trip]'s sim-time, or [-1] when nothing ever tripped. *)

val should_stop : t -> bool
val steps : t -> int
