type kind = Deliver | Timer | Crash | Recover

let kind_index = function Deliver -> 0 | Timer -> 1 | Crash -> 2 | Recover -> 3
let kind_name = function
  | Deliver -> "deliver"
  | Timer -> "timer"
  | Crash -> "crash"
  | Recover -> "recover"

let kinds = [| Deliver; Timer; Crash; Recover |]
let label_cap = 1024

type acc = {
  mutable a_count : int;
  mutable a_wall_ns : int;
  mutable a_alloc_words : int;
}

type t = {
  now_ns : unit -> int;
  labels : (string, int) Hashtbl.t;
  mutable label_names : string array; (* id -> name, intern order *)
  mutable nlabels : int;
  accs : (int, acc) Hashtbl.t; (* packed (trace, label, kind) -> acc *)
  mutable t0 : int;
  mutable w0 : int;
  mutable run_t0 : int;
  mutable run_w0 : int;
  mutable run_wall_ns : int;
  mutable run_alloc_words : int;
  mutable nevents : int;
  m_queue_depth : Metrics.histogram;
  m_dispatch : Metrics.counter array; (* per kind *)
  m_alloc : Metrics.counter array; (* per kind *)
}

(* Unboxed external: reading the allocation counter does not allocate. *)
let minor_words () = int_of_float (Gc.minor_words ())

let default_now_ns () = int_of_float (Sys.time () *. 1e9)

let create ?(now_ns = default_now_ns) ?(metrics = Metrics.default) () =
  let per_kind name help =
    Array.map
      (fun k ->
        Metrics.counter metrics ~help ~labels:[ ("kind", kind_name k) ] name)
      kinds
  in
  {
    now_ns;
    labels = Hashtbl.create 16;
    label_names = Array.make 16 "";
    nlabels = 0;
    accs = Hashtbl.create 64;
    t0 = 0;
    w0 = 0;
    run_t0 = 0;
    run_w0 = 0;
    run_wall_ns = 0;
    run_alloc_words = 0;
    nevents = 0;
    m_queue_depth =
      Metrics.histogram metrics
        ~help:"Event-queue depth sampled at each profiled dequeue"
        "xchain_prof_queue_depth";
    m_dispatch =
      per_kind "xchain_prof_dispatch_total" "Profiled dispatches by event kind";
    m_alloc =
      per_kind "xchain_prof_alloc_words_total"
        "Minor-heap words allocated inside dispatch, by event kind";
  }

let insert t name =
  let id = t.nlabels in
  let cap = Array.length t.label_names in
  if id >= cap then begin
    let nn = Array.make (Stdlib.max 16 (2 * cap)) "" in
    Array.blit t.label_names 0 nn 0 t.nlabels;
    t.label_names <- nn
  end;
  t.label_names.(id) <- name;
  t.nlabels <- t.nlabels + 1;
  Hashtbl.replace t.labels name id;
  id

let intern t name =
  match Hashtbl.find_opt t.labels name with
  | Some id -> id
  | None ->
      (* known names keep their ids forever; only {e new} names land in
         the shared last slot once the table is full — the same
         bounded-degradation policy as Metrics.cardinality_cap *)
      if t.nlabels < label_cap - 1 then insert t name
      else
        match Hashtbl.find_opt t.labels "overflow" with
        | Some id -> id
        | None -> insert t "overflow"

let observe_queue_depth t depth = Metrics.observe t.m_queue_depth depth

let enter t =
  t.w0 <- minor_words ();
  t.t0 <- t.now_ns ()

let key ~trace ~label ~kind =
  (((trace + 1) * label_cap) + label) * 4 + kind_index kind

let leave t ~label ~kind ~trace =
  let wall = t.now_ns () - t.t0 in
  let alloc = minor_words () - t.w0 in
  let label = if label < 0 then 0 else label in
  let k = key ~trace ~label ~kind in
  (match Hashtbl.find_opt t.accs k with
  | Some a ->
      a.a_count <- a.a_count + 1;
      a.a_wall_ns <- a.a_wall_ns + wall;
      a.a_alloc_words <- a.a_alloc_words + alloc
  | None ->
      Hashtbl.replace t.accs k
        { a_count = 1; a_wall_ns = wall; a_alloc_words = alloc });
  t.nevents <- t.nevents + 1;
  let ki = kind_index kind in
  Metrics.inc t.m_dispatch.(ki);
  if alloc > 0 then Metrics.add t.m_alloc.(ki) alloc

let run_begin t =
  t.run_w0 <- minor_words ();
  t.run_t0 <- t.now_ns ()

let run_end t =
  t.run_wall_ns <- t.run_wall_ns + (t.now_ns () - t.run_t0);
  t.run_alloc_words <- t.run_alloc_words + (minor_words () - t.run_w0)

(* --- views --- *)

type site = {
  s_trace : int;
  s_label : string;
  s_kind : kind;
  s_count : int;
  s_wall_ns : int;
  s_alloc_words : int;
}

let events t = t.nevents

let label_name t id =
  if id >= 0 && id < t.nlabels then t.label_names.(id) else "?"

let sites t =
  let all =
    Hashtbl.fold
      (fun k a l ->
        let kind = kinds.(k land 3) in
        let rest = k / 4 in
        let label = rest mod label_cap in
        let trace = (rest / label_cap) - 1 in
        ( k,
          {
            s_trace = trace;
            s_label = label_name t label;
            s_kind = kind;
            s_count = a.a_count;
            s_wall_ns = a.a_wall_ns;
            s_alloc_words = a.a_alloc_words;
          } )
        :: l)
      t.accs []
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) all)

let site_totals t =
  Hashtbl.fold
    (fun _ a (c, w, al) ->
      (c + a.a_count, w + a.a_wall_ns, al + a.a_alloc_words))
    t.accs (0, 0, 0)

let run_totals t = (t.run_wall_ns, t.run_alloc_words)

let payment_frame trace =
  if trace < 0 then "run" else Printf.sprintf "pay#%d" trace

let pp_top ?(n = 15) ppf t =
  let all = sites t in
  let ranked =
    List.sort
      (fun a b ->
        let c = compare b.s_wall_ns a.s_wall_ns in
        if c <> 0 then c
        else
          compare
            (a.s_trace, a.s_label, kind_index a.s_kind)
            (b.s_trace, b.s_label, kind_index b.s_kind))
      all
  in
  let _, total_wall, _ = site_totals t in
  Format.fprintf ppf "%-10s %-12s %-8s %10s %12s %10s %6s@."
    "payment" "process" "kind" "events" "wall_ns" "words/ev" "wall%";
  let rec take k = function
    | [] -> ()
    | _ when k = 0 -> ()
    | s :: rest ->
        let share =
          if total_wall = 0 then 0.0
          else 100.0 *. float_of_int s.s_wall_ns /. float_of_int total_wall
        in
        Format.fprintf ppf "%-10s %-12s %-8s %10d %12d %10.1f %5.1f%%@."
          (payment_frame s.s_trace) s.s_label (kind_name s.s_kind) s.s_count
          s.s_wall_ns
          (float_of_int s.s_alloc_words /. float_of_int s.s_count)
          share;
        take (k - 1) rest
  in
  take n ranked;
  let count, wall, alloc = site_totals t in
  let run_wall, run_alloc = run_totals t in
  Format.fprintf ppf
    "total: %d events over %d sites, %d ns, %d words (run loop: %d ns, %d words)@."
    count (List.length all) wall alloc run_wall run_alloc

let to_json t =
  let b = Buffer.create 4096 in
  let count, wall, alloc = site_totals t in
  let run_wall, run_alloc = run_totals t in
  Buffer.add_string b
    (Printf.sprintf "{\"profile\":{\"events\":%d,\"distinct_sites\":%d,"
       t.nevents (Hashtbl.length t.accs));
  Buffer.add_string b "\"sites\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"payment\":%d,\"label\":\"%s\",\"kind\":\"%s\",\"count\":%d,\"alloc_words\":%d,\"prof_timing\":{\"wall_ns\":%d}}"
           s.s_trace
           (Metrics.json_escape s.s_label)
           (kind_name s.s_kind) s.s_count s.s_alloc_words s.s_wall_ns))
    (sites t);
  Buffer.add_string b "],";
  Buffer.add_string b
    (Printf.sprintf
       "\"totals\":{\"count\":%d,\"alloc_words\":%d},\"run\":{\"alloc_words\":%d},\"prof_timing\":{\"wall_ns\":%d,\"run_wall_ns\":%d}}}"
       count alloc run_alloc wall run_wall);
  Buffer.add_char b '\n';
  Buffer.contents b

let to_collapsed t =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%s;%s;%s %d\n" (payment_frame s.s_trace) s.s_label
           (kind_name s.s_kind)
           (Stdlib.max 1 s.s_wall_ns)))
    (sites t);
  Buffer.contents b
