(** Happens-before graphs over engine events.

    A causal recorder accumulates one {e node} per engine event (send,
    deliver, timer arm, timer fire, crash, recover, plus [Note] nodes
    injected by upper layers such as the load scheduler's admission
    points) and {e edges} for the four happens-before relations of the
    simulator:

    - [Program]: the previous event on the same engine pid;
    - [Message]: a send to each of its deliveries ({!Sim.Network} transit);
    - [Timer]: a timer arm to its live firing ({!Sim.Event_queue} wait);
    - [Queue]: an explicit happens-after injected with a [Note] (e.g.
      "this admission waited on that arrival");
    - [Outage]: crash → recover → any firing deferred by the outage
      ({!Faults} downtime).

    Edges may only point from an earlier-recorded node to a later one
    ({!add_edge} enforces [src < dst]), so the graph is acyclic {e by
    construction} and node ids are a topological order. Node times are
    global sim-ticks and non-decreasing in id, which is what lets
    {!Blame} decompose any root→sink path into non-negative gaps that
    telescope exactly to the end-to-end latency.

    Like the rest of [lib/obsv], this module is plain integers and
    strings — no dependency on [lib/sim]; the engine threads its context
    in (see {!Sim.Engine.create}'s [?causal] and
    {!Sim.Engine.causal_note}). Recording is deterministic: the same
    seeded run produces the same graph, so both exporters are
    byte-identical across reruns. *)

type kind = Send | Deliver | Timer_set | Timer_fire | Crash | Recover | Note

type edge_kind = Program | Message | Timer | Queue | Outage

val kind_name : kind -> string
(** ["send"], ["deliver"], ["timer_set"], ["timer_fire"], ["crash"],
    ["recover"], ["note"]. *)

val edge_name : edge_kind -> string
(** ["program"], ["message"], ["timer"], ["queue"], ["outage"]. *)

type t

val create : unit -> t

val record :
  t -> kind:kind -> pid:int -> at:int -> ?trace:int -> label:string -> unit ->
  int
(** Appends a node and returns its id (consecutive from 0). [trace] is an
    opaque grouping id — load runs use the payment index — defaulting to
    [-1] (unassigned). Raises [Invalid_argument] on negative [at]. *)

val add_edge : t -> kind:edge_kind -> src:int -> dst:int -> unit
(** Adds a happens-before edge. Raises [Invalid_argument] unless
    [0 <= src < dst < node_count] — edges only point forward, which keeps
    the graph acyclic by construction. *)

val set_trace : t -> int -> trace:int -> unit
(** Reassign a node's trace id (used to tag a node retroactively). *)

(** {1 Reading} *)

val node_count : t -> int
val kind_of : t -> int -> kind
val pid_of : t -> int -> int
val time_of : t -> int -> int
val trace_of : t -> int -> int
val label_of : t -> int -> string

val preds : t -> int -> (edge_kind * int) list
(** Incoming edges of a node as [(kind, src)], in insertion order. *)

val edge_count : t -> int

val iter_edges : t -> f:(kind:edge_kind -> src:int -> dst:int -> unit) -> unit
(** Every edge, ordered by destination node then insertion. *)

val path_valid : t -> int list -> bool
(** Is this a source→sink path in the DAG: node ids strictly increasing
    and every consecutive pair joined by an edge? (Singleton and empty
    lists are vacuously valid.) *)

(** {1 Exporters} *)

val to_jsonl : t -> string
(** One JSON object per node, in id order, with its incoming edges
    embedded:
    [{"id":4,"kind":"deliver","pid":3,"t":117,"trace":0,"label":"chi",
      "preds":[{"kind":"message","src":2},{"kind":"program","src":3}]}].
    Join against span dumps via the span's [root_event] attribute. *)

val to_chrome : ?payments:(string * int * int * int * string) list -> t ->
  string
(** Chrome trace-event JSON (one object: [{"traceEvents":[...],
    "displayTimeUnit":"ms"}]) loadable in [chrome://tracing] or Perfetto.
    Every node becomes an instant event on track [tid = pid] (process 0,
    "engine"), every [Message] edge a flow-event pair, and each optional
    [payments] entry [(name, track, start, end_, status)] a complete
    ["X"] slice on process 1 ("payments"). Ticks are exported as
    microseconds. Deterministic: byte-identical for identical graphs. *)
