(* Instrument handles are bare atomic cells so the hot path compiles to a
   lock-free read-modify-write: no closure, no option, no boxing beyond
   the one-time [Atomic.make] at registration. Families own their
   children; the registry owns the families. Lookup cost is paid at
   registration time only.

   Domain-safety: the registry is shared by every domain of a fleet run
   (lib/fleet). The cold path — registration, snapshot, reset — takes one
   global mutex; the hot path never does. Counter and histogram updates
   are atomic fetch-and-add, so concurrent engine runs lose no counts and
   sums stay exact regardless of interleaving. Gauge [set] is a plain
   atomic store: concurrent setters race by design (last write wins), so
   point-in-time gauges from parallel runs are best-effort. *)

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  bounds : int array; (* strictly increasing upper bounds; +Inf implicit *)
  counts : int Atomic.t array; (* length = Array.length bounds + 1 *)
  h_sum : int Atomic.t;
  h_count : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

type family = {
  f_name : string;
  f_help : string;
  f_kind : [ `Counter | `Gauge | `Histogram ];
  f_buckets : int array; (* [||] unless histogram *)
  children : (string, instrument) Hashtbl.t; (* key: canonical label string *)
  mutable rev_child_order : (string * (string * string) list) list;
  mutable overflow : ((string * string) list * instrument) option;
}

type t = {
  by_name : (string, family) Hashtbl.t;
  mutable rev_families : family list;
}

(* One lock for every registry: registration is rare (per-run, not
   per-event) and a shared lock keeps the cold path trivially correct. *)
let registry_mutex = Mutex.create ()

let locked f = Mutex.protect registry_mutex f

let cardinality_cap = 64

let log_buckets =
  (* 1-2-5 ladder over seven decades: fine enough for per-hop delays,
     wide enough for end-to-end payment horizons. *)
  let decades = 7 in
  let b = Array.make (3 * decades) 0 in
  let scale = ref 1 in
  for d = 0 to decades - 1 do
    b.(3 * d) <- !scale;
    b.((3 * d) + 1) <- 2 * !scale;
    b.((3 * d) + 2) <- 5 * !scale;
    scale := !scale * 10
  done;
  b

let create () = { by_name = Hashtbl.create 32; rev_families = [] }
let default = create ()

(* --------------------------- name validation -------------------------- *)

let name_ok s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let validate_name s =
  if not (name_ok s) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" s)

let validate_label_name s =
  if not (name_ok s) || String.contains s ':' then
    invalid_arg (Printf.sprintf "Metrics: invalid label name %S" s);
  if String.length s >= 2 && s.[0] = '_' && s.[1] = '_' then
    invalid_arg (Printf.sprintf "Metrics: reserved label name %S" s)

(* ------------------------------ labels -------------------------------- *)

let canonical labels =
  let sorted =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels
  in
  if List.length sorted <> List.length labels then
    invalid_arg "Metrics: duplicate label name";
  List.iter (fun (k, _) -> validate_label_name k) sorted;
  sorted

let label_key labels =
  String.concat "\x00"
    (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let overflow_labels = [ ("overflow", "true") ]

(* ----------------------------- families ------------------------------- *)

let kind_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let family t ~name ~help ~kind ~buckets =
  validate_name name;
  match Hashtbl.find_opt t.by_name name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s re-registered as %s (was %s)" name
             (kind_name kind) (kind_name f.f_kind));
      if kind = `Histogram && f.f_buckets <> buckets then
        invalid_arg
          (Printf.sprintf "Metrics: %s re-registered with different buckets"
             name);
      f
  | None ->
      (if kind = `Histogram then
         let n = Array.length buckets in
         if n = 0 then invalid_arg "Metrics: empty bucket array";
         for i = 1 to n - 1 do
           if buckets.(i) <= buckets.(i - 1) then
             invalid_arg "Metrics: bucket bounds must be strictly increasing"
         done);
      let f =
        {
          f_name = name;
          f_help = help;
          f_kind = kind;
          f_buckets = buckets;
          children = Hashtbl.create 8;
          rev_child_order = [];
          overflow = None;
        }
      in
      Hashtbl.add t.by_name name f;
      t.rev_families <- f :: t.rev_families;
      f

let fresh_instrument f =
  match f.f_kind with
  | `Counter -> C (Atomic.make 0)
  | `Gauge -> G (Atomic.make 0)
  | `Histogram ->
      H
        {
          bounds = f.f_buckets;
          counts = Array.init (Array.length f.f_buckets + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0;
          h_count = Atomic.make 0;
        }

let child f labels =
  let labels = canonical labels in
  let key = label_key labels in
  match Hashtbl.find_opt f.children key with
  | Some i -> i
  | None ->
      if Hashtbl.length f.children >= cardinality_cap then (
        (* past the cap every new label set lands in one shared child:
           bounded memory, degraded (but not lost) signal *)
        match f.overflow with
        | Some (_, i) -> i
        | None ->
            let i = fresh_instrument f in
            f.overflow <- Some (overflow_labels, i);
            i)
      else begin
        let i = fresh_instrument f in
        Hashtbl.add f.children key i;
        f.rev_child_order <- (key, labels) :: f.rev_child_order;
        i
      end

let counter t ?(help = "") ?(labels = []) name =
  locked (fun () ->
      match
        child (family t ~name ~help ~kind:`Counter ~buckets:[||]) labels
      with
      | C c -> c
      | _ -> assert false)

let gauge t ?(help = "") ?(labels = []) name =
  locked (fun () ->
      match child (family t ~name ~help ~kind:`Gauge ~buckets:[||]) labels with
      | G g -> g
      | _ -> assert false)

let histogram t ?(help = "") ?(buckets = log_buckets) ?(labels = []) name =
  locked (fun () ->
      match child (family t ~name ~help ~kind:`Histogram ~buckets) labels with
      | H h -> h
      | _ -> assert false)

(* ------------------------------ hot path ------------------------------ *)

let inc c = Atomic.incr c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  ignore (Atomic.fetch_and_add c n)

let set g v = Atomic.set g v
let gauge_add g d = ignore (Atomic.fetch_and_add g d)

let observe h v =
  (* index of the first bound >= v, i.e. the bucket v falls in; the +Inf
     bucket is index [Array.length bounds] *)
  let bounds = h.bounds in
  let n = Array.length bounds in
  let i =
    if v > Array.unsafe_get bounds (n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Array.unsafe_get bounds mid < v then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  in
  Atomic.incr (Array.unsafe_get h.counts i);
  ignore (Atomic.fetch_and_add h.h_sum v);
  Atomic.incr h.h_count

(* ------------------------------ reading ------------------------------- *)

let counter_value c = Atomic.get c
let gauge_value g = Atomic.get g
let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum

let histogram_buckets h =
  let acc = ref 0 in
  let cumulative =
    Array.to_list
      (Array.mapi
         (fun i n ->
           acc := !acc + Atomic.get n;
           let bound =
             if i < Array.length h.bounds then h.bounds.(i) else max_int
           in
           (bound, !acc))
         h.counts)
  in
  cumulative

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { sum : int; count : int; buckets : (int * int) list }

type sample = {
  s_name : string;
  s_help : string;
  s_kind : [ `Counter | `Gauge | `Histogram ];
  s_labels : (string * string) list;
  s_value : value;
}

let value_of = function
  | C c -> Counter_v (Atomic.get c)
  | G g -> Gauge_v (Atomic.get g)
  | H h ->
      Histogram_v
        {
          sum = Atomic.get h.h_sum;
          count = Atomic.get h.h_count;
          buckets = histogram_buckets h;
        }

let snapshot t =
  locked (fun () ->
      List.concat_map
        (fun f ->
          let children =
            List.rev_map
              (fun (key, labels) -> (labels, Hashtbl.find f.children key))
              f.rev_child_order
          in
          let children =
            match f.overflow with
            | Some (labels, i) -> children @ [ (labels, i) ]
            | None -> children
          in
          List.map
            (fun (labels, i) ->
              {
                s_name = f.f_name;
                s_help = f.f_help;
                s_kind = f.f_kind;
                s_labels = labels;
                s_value = value_of i;
              })
            children)
        (List.rev t.rev_families))

let families t =
  locked (fun () ->
      List.rev_map
        (fun f -> (f.f_name, kind_name f.f_kind, f.f_help))
        t.rev_families)

let reset_instrument = function
  | C c -> Atomic.set c 0
  | G g -> Atomic.set g 0
  | H h ->
      Array.iter (fun c -> Atomic.set c 0) h.counts;
      Atomic.set h.h_sum 0;
      Atomic.set h.h_count 0

let reset t =
  locked (fun () ->
      List.iter
        (fun f ->
          Hashtbl.iter (fun _ i -> reset_instrument i) f.children;
          match f.overflow with
          | Some (_, i) -> reset_instrument i
          | None -> ())
        t.rev_families)

(* ------------------------------- JSON ---------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"labels\":{"
           (json_escape s.s_name) (kind_name s.s_kind));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        s.s_labels;
      Buffer.add_string buf "},";
      (match s.s_value with
      | Counter_v v | Gauge_v v ->
          Buffer.add_string buf (Printf.sprintf "\"value\":%d" v)
      | Histogram_v { sum; count; buckets } ->
          Buffer.add_string buf
            (Printf.sprintf "\"sum\":%d,\"count\":%d,\"buckets\":[" sum count);
          List.iteri
            (fun j (bound, cum) ->
              if j > 0 then Buffer.add_char buf ',';
              if bound = max_int then
                Buffer.add_string buf (Printf.sprintf "[null,%d]" cum)
              else Buffer.add_string buf (Printf.sprintf "[%d,%d]" bound cum))
            buckets;
          Buffer.add_char buf ']');
      Buffer.add_char buf '}')
    (snapshot t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
