(** Flight recorder: bounded ring of recent engine events.

    When armed ([Sim.Engine.create ~recorder]), the engine records one
    entry per dispatched event into a fixed-size ring — old entries are
    overwritten, never reallocated. On the first safety violation (or a
    stuck-at-horizon run) the harness dumps the retained window plus the
    causal-DAG slice, a metrics snapshot and the one-line repro as a
    {e forensic bundle}; replaying the repro reproduces the bundle byte
    for byte.

    Recording costs a few stores per event and is entirely absent when no
    recorder is armed (one [option] match, the {!Prof} contract). *)

type t

type entry = {
  at : int;  (** sim-time of the dispatch *)
  kind : string;  (** deliver / fire / crash / recover *)
  src : int;  (** sender (deliver) or owner (fire/crash/recover) pid *)
  dst : int;  (** destination pid, [-1] when not applicable *)
  label : string;  (** message tag or timer label *)
}

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 256 entries; raises [Invalid_argument]
    when not positive. *)

val record : t -> at:int -> kind:string -> src:int -> dst:int ->
  label:string -> unit

val window : t -> entry list
(** The retained tail, oldest first — at most [capacity] entries. *)

val recorded : t -> int
(** Total entries ever recorded (≥ [List.length (window t)]). *)

val dropped : t -> int
(** Entries overwritten by ring wrap-around. *)

val capacity : t -> int

val window_json : t -> string
(** The window as a JSON array of entry objects. *)

val bundle_json :
  reason:string ->
  property:string ->
  detail:string ->
  at:int ->
  repro:string ->
  ?dag:string ->
  ?metrics:string ->
  t ->
  string
(** Assemble the forensic bundle. [reason] is ["violation"] or
    ["stuck"]; [property]/[detail]/[at] describe the first breach
    ([at] is the exact sim-time the monitor first tripped); [repro] is
    the one-line replay command; [dag] and [metrics] are pre-rendered
    JSON fragments (defaults ["null"]). Deterministic: equal runs give
    byte-identical bundles. *)
