type span = {
  id : int;
  parent : int option;
  name : string;
  start_time : int;
  mutable end_time : int; (* -1 while running *)
  mutable status : string;
  mutable attrs : (string * string) list;
  recorded : bool; (* false for the dummy returned when capture is off *)
}

type t = {
  mutable next_id : int;
  mutable rev_spans : span list;
  mutable n : int;
  mutable capturing : bool;
}

let create () = { next_id = 0; rev_spans = []; n = 0; capturing = true }
let default = create ()
let set_capture t b = t.capturing <- b
let capture t = t.capturing

let start t ?parent ?(attrs = []) ~name ~at () =
  if at < 0 then invalid_arg "Span.start: negative time";
  let parent =
    match parent with
    | Some p when p.recorded -> Some p.id
    | _ -> None
  in
  if not t.capturing then
    {
      id = -1;
      parent = None;
      name;
      start_time = at;
      end_time = -1;
      status = "running";
      attrs;
      recorded = false;
    }
  else begin
    let s =
      {
        id = t.next_id;
        parent;
        name;
        start_time = at;
        end_time = -1;
        status = "running";
        attrs;
        recorded = true;
      }
    in
    t.next_id <- t.next_id + 1;
    t.rev_spans <- s :: t.rev_spans;
    t.n <- t.n + 1;
    s
  end

let finish ?(status = "ok") ~at s =
  if s.end_time >= 0 then invalid_arg "Span.finish: span already finished";
  if at < s.start_time then invalid_arg "Span.finish: ends before it starts";
  s.end_time <- at;
  s.status <- status

let set_attr s k v = s.attrs <- (k, v) :: List.remove_assoc k s.attrs

let span_id s = s.id
let span_name s = s.name
let span_parent s = s.parent
let span_start s = s.start_time
let span_end s = if s.end_time < 0 then None else Some s.end_time
let span_status s = s.status
let span_attrs s = List.rev s.attrs

let count t = t.n
let spans t = List.rev t.rev_spans
let roots t = List.filter (fun s -> s.parent = None) (spans t)

let clear t =
  t.rev_spans <- [];
  t.n <- 0;
  t.next_id <- 0

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "{\"id\":%d,\"parent\":" s.id);
      (match s.parent with
      | None -> Buffer.add_string buf "null"
      | Some p -> Buffer.add_string buf (string_of_int p));
      Buffer.add_string buf
        (Printf.sprintf ",\"name\":\"%s\",\"start\":%d,\"end\":"
           (Metrics.json_escape s.name) s.start_time);
      if s.end_time < 0 then Buffer.add_string buf "null"
      else Buffer.add_string buf (string_of_int s.end_time);
      Buffer.add_string buf
        (Printf.sprintf ",\"status\":\"%s\",\"attrs\":{"
           (Metrics.json_escape s.status));
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k)
               (Metrics.json_escape v)))
        (span_attrs s);
      Buffer.add_string buf "}}\n")
    (spans t);
  Buffer.contents buf
