type span = {
  id : int;
  parent : int option;
  name : string;
  start_time : int;
  mutable end_time : int; (* -1 while running *)
  mutable status : string;
  mutable attrs : (string * string) list;
  recorded : bool; (* false for the dummy returned when capture is off *)
  trace_id : int; (* causal trace id, -1 when the span is not linked *)
  root_event : int; (* causal node id of the span's root event, or -1 *)
}

type t = {
  mutable next_id : int;
  mutable rev_spans : span list;
  mutable n : int;
  mutable capturing : bool;
}

let create () = { next_id = 0; rev_spans = []; n = 0; capturing = true }
let default = create ()

(* Collectors are shared across fleet domains (Runner records into
   [default]); appending a span is a multi-field update, so it needs a
   lock. Span recording is per-participant-per-phase — dozens of calls
   per payment, not per event — so this is nowhere near a hot path. *)
let collector_mutex = Mutex.create ()

let set_capture t b = t.capturing <- b
let capture t = t.capturing

let start t ?parent ?(attrs = []) ?(trace_id = -1) ?(root_event = -1) ~name
    ~at () =
  if at < 0 then invalid_arg "Span.start: negative time";
  let parent =
    match parent with
    | Some p when p.recorded -> Some p.id
    | _ -> None
  in
  if not t.capturing then
    {
      id = -1;
      parent = None;
      name;
      start_time = at;
      end_time = -1;
      status = "running";
      attrs;
      recorded = false;
      trace_id;
      root_event;
    }
  else
    Mutex.protect collector_mutex (fun () ->
        let s =
          {
            id = t.next_id;
            parent;
            name;
            start_time = at;
            end_time = -1;
            status = "running";
            attrs;
            recorded = true;
            trace_id;
            root_event;
          }
        in
        t.next_id <- t.next_id + 1;
        t.rev_spans <- s :: t.rev_spans;
        t.n <- t.n + 1;
        s)

let finish ?(status = "ok") ~at s =
  if s.end_time >= 0 then invalid_arg "Span.finish: span already finished";
  if at < s.start_time then invalid_arg "Span.finish: ends before it starts";
  s.end_time <- at;
  s.status <- status

let finish_running ?(status = "stuck") ~at t =
  List.fold_left
    (fun n s ->
      if s.end_time < 0 then begin
        finish ~status ~at:(Stdlib.max at s.start_time) s;
        n + 1
      end
      else n)
    0 t.rev_spans

let set_attr s k v = s.attrs <- (k, v) :: List.remove_assoc k s.attrs

let span_id s = s.id
let span_name s = s.name
let span_parent s = s.parent
let span_start s = s.start_time
let span_end s = if s.end_time < 0 then None else Some s.end_time
let span_status s = s.status
let span_attrs s = List.rev s.attrs
let span_trace_id s = if s.trace_id < 0 then None else Some s.trace_id
let span_root_event s = if s.root_event < 0 then None else Some s.root_event

let count t = t.n
let spans t = List.rev t.rev_spans
let roots t = List.filter (fun s -> s.parent = None) (spans t)

let clear t =
  t.rev_spans <- [];
  t.n <- 0;
  t.next_id <- 0

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "{\"id\":%d,\"parent\":" s.id);
      (match s.parent with
      | None -> Buffer.add_string buf "null"
      | Some p -> Buffer.add_string buf (string_of_int p));
      Buffer.add_string buf
        (Printf.sprintf ",\"name\":\"%s\",\"start\":%d,\"end\":"
           (Metrics.json_escape s.name) s.start_time);
      if s.end_time < 0 then Buffer.add_string buf "null"
      else Buffer.add_string buf (string_of_int s.end_time);
      Buffer.add_string buf
        (Printf.sprintf ",\"status\":\"%s\"" (Metrics.json_escape s.status));
      (* causal-join fields appear only on linked spans, so span dumps from
         untraced runs are byte-identical to what they always were *)
      if s.trace_id >= 0 then
        Buffer.add_string buf (Printf.sprintf ",\"trace\":%d" s.trace_id);
      if s.root_event >= 0 then
        Buffer.add_string buf
          (Printf.sprintf ",\"root_event\":%d" s.root_event);
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k)
               (Metrics.json_escape v)))
        (span_attrs s);
      Buffer.add_string buf "}}\n")
    (spans t);
  Buffer.contents buf
