(** Process-wide metrics registry.

    Counters, gauges and histograms, named and optionally labeled, in the
    Prometheus data model. The design goal is a hot path that can stay
    enabled at production scale: resolving a (name, labels) pair to an
    instrument handle is done once, up front, and the per-event operations
    on a handle ({!inc}, {!add}, {!set}, {!observe}) are lock-free atomic
    read-modify-writes on preallocated cells — they allocate zero words
    and never block.

    The registry is domain-safe: a fleet run ({!Fleet}) has every worker
    domain recording into the same registry. Counter and histogram updates
    are exact under any interleaving (atomic fetch-and-add); gauge {!set}
    is last-write-wins by design. The cold path — registration,
    {!snapshot}, {!reset} — serializes on one internal mutex, so
    registering handles from inside parallel jobs is safe, just not free;
    hoist handles out of loops as before.

    All values are integers: simulation time is integer ticks
    ({!Sim.Sim_time.t}), and counts are counts. Histograms use preallocated
    bucket arrays; see {!log_buckets} for the default log-scale layout.

    Instruments registered under the same name must agree on kind and
    bucket layout; disagreement is a programming error and raises
    [Invalid_argument]. Label sets are canonicalized (sorted by key), so
    label order at the call site does not create duplicate children. *)

type t
(** A registry: an ordered collection of metric families, each holding one
    child instrument per distinct label set. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Integer that can go up and down. *)

type histogram
(** Integer-valued distribution over preallocated buckets. *)

val create : unit -> t

val default : t
(** The process-wide registry. Library instrumentation (engine, network,
    runners, consensus) records here unless handed an explicit registry. *)

val log_buckets : int array
(** The default 1–2–5 log-scale upper bounds, 1 .. 10^7 (21 buckets plus
    the implicit [+Inf]). Chosen to resolve both single-hop message delays
    (~10^2 ticks) and full payment horizons (~10^6 ticks). *)

val cardinality_cap : int
(** Maximum number of distinct label sets per family (64). Past the cap,
    lookups return the family's shared overflow child, labeled
    [overflow="true"] — unbounded label values can degrade a metric but
    can never exhaust memory. *)

(** {1 Registration}

    Registering an existing (name, labels) pair returns the same handle,
    so call sites may re-register idempotently; hot paths should still
    hoist the handle out of their loop. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?buckets:int array ->
  ?labels:(string * string) list ->
  string ->
  histogram
(** [buckets] are strictly increasing upper bounds (default
    {!log_buckets}); an implicit [+Inf] bucket is always appended. *)

(** {1 Hot path} — zero allocation, O(1) (O(log buckets) for observe). *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c n] with [n < 0] raises [Invalid_argument]: counters only go up. *)

val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Records a value: binary search over the preallocated bounds, two
    integer stores. *)

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_buckets : histogram -> (int * int) list
(** [(upper_bound, cumulative_count)] pairs, ascending; the final pair is
    [(max_int, count)] standing for [+Inf]. *)

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { sum : int; count : int; buckets : (int * int) list }

type sample = {
  s_name : string;
  s_help : string;
  s_kind : [ `Counter | `Gauge | `Histogram ];
  s_labels : (string * string) list;  (** canonical (key-sorted) order *)
  s_value : value;
}

val snapshot : t -> sample list
(** Every child of every family, in registration order — the stable
    iteration order both exporters rely on. *)

val families : t -> (string * string * string) list
(** [(name, kind, help)] per family, registration order — the catalogue
    view used by [xchain metrics]. *)

val reset : t -> unit
(** Zero every value, keeping all families and children registered. Used
    by the bench harness to isolate per-experiment snapshots. *)

val to_json : t -> string
(** The whole registry as one JSON object:
    [{"metrics":[{"name":...,"kind":...,"labels":{...},"value":...}, ...]}].
    Histogram children carry [sum], [count] and a [buckets] array of
    [[upper_bound, cumulative_count]] pairs ([null] bound for +Inf). *)

val validate_name : string -> unit
(** Prometheus metric-name grammar [[a-zA-Z_:][a-zA-Z0-9_:]*]; raises
    [Invalid_argument] otherwise. Label names additionally must not start
    with [__] (reserved). *)

val json_escape : string -> string
(** JSON string-body escaping shared by the exporters: quote, backslash,
    and control characters. *)
