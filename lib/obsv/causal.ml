type kind = Send | Deliver | Timer_set | Timer_fire | Crash | Recover | Note

type edge_kind = Program | Message | Timer | Queue | Outage

let kind_name = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Timer_set -> "timer_set"
  | Timer_fire -> "timer_fire"
  | Crash -> "crash"
  | Recover -> "recover"
  | Note -> "note"

let edge_name = function
  | Program -> "program"
  | Message -> "message"
  | Timer -> "timer"
  | Queue -> "queue"
  | Outage -> "outage"

type node = {
  kind : kind;
  pid : int;
  at : int;
  label : string;
  mutable trace : int;
  mutable rev_preds : (edge_kind * int) list;
}

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable edges : int;
}

let dummy =
  { kind = Note; pid = -1; at = 0; label = ""; trace = -1; rev_preds = [] }

let create () = { nodes = [||]; n = 0; edges = 0 }

let node_count t = t.n
let edge_count t = t.edges

let node t i =
  if i < 0 || i >= t.n then invalid_arg "Causal: node id out of range";
  t.nodes.(i)

let record t ~kind ~pid ~at ?(trace = -1) ~label () =
  if at < 0 then invalid_arg "Causal.record: negative time";
  let nd = { kind; pid; at; label; trace; rev_preds = [] } in
  let cap = Array.length t.nodes in
  if t.n >= cap then begin
    let nn = Array.make (Stdlib.max 64 (2 * cap)) dummy in
    Array.blit t.nodes 0 nn 0 t.n;
    t.nodes <- nn
  end;
  t.nodes.(t.n) <- nd;
  t.n <- t.n + 1;
  t.n - 1

let add_edge t ~kind ~src ~dst =
  if src < 0 || dst <= src || dst >= t.n then
    invalid_arg "Causal.add_edge: edges must go forward (src < dst)";
  let nd = t.nodes.(dst) in
  nd.rev_preds <- (kind, src) :: nd.rev_preds;
  t.edges <- t.edges + 1

let set_trace t i ~trace = (node t i).trace <- trace

let kind_of t i = (node t i).kind
let pid_of t i = (node t i).pid
let time_of t i = (node t i).at
let trace_of t i = (node t i).trace
let label_of t i = (node t i).label
let preds t i = List.rev (node t i).rev_preds

let iter_edges t ~f =
  for dst = 0 to t.n - 1 do
    List.iter (fun (kind, src) -> f ~kind ~src ~dst) (preds t dst)
  done

let path_valid t = function
  | [] | [ _ ] -> true
  | first :: _ as path ->
      first >= 0
      && first < t.n
      && fst
           (List.fold_left
              (fun (ok, prev) cur ->
                if not ok then (false, cur)
                else if cur <= prev || cur >= t.n then (false, cur)
                else
                  ( List.exists (fun (_, s) -> s = prev) (node t cur).rev_preds,
                    cur ))
              (true, first) (List.tl path))

(* ------------------------------ exporters ------------------------------ *)

let to_jsonl t =
  let buf = Buffer.create (256 * (t.n + 1)) in
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    Printf.bprintf buf
      {|{"id":%d,"kind":"%s","pid":%d,"t":%d,"trace":%d,"label":"%s","preds":[|}
      i (kind_name nd.kind) nd.pid nd.at nd.trace
      (Metrics.json_escape nd.label);
    List.iteri
      (fun j (k, s) ->
        if j > 0 then Buffer.add_char buf ',';
        Printf.bprintf buf {|{"kind":"%s","src":%d}|} (edge_name k) s)
      (List.rev nd.rev_preds);
    Buffer.add_string buf "]}\n"
  done;
  Buffer.contents buf

let to_chrome ?(payments = []) t =
  let buf = Buffer.create (256 * (t.n + 1)) in
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  event
    {|{"ph":"M","pid":0,"name":"process_name","args":{"name":"engine"}}|};
  if payments <> [] then
    event
      {|{"ph":"M","pid":1,"name":"process_name","args":{"name":"payments"}}|};
  (* one named track per engine pid that recorded at least one node *)
  let seen = Hashtbl.create 64 in
  for i = 0 to t.n - 1 do
    let pid = t.nodes.(i).pid in
    if not (Hashtbl.mem seen pid) then begin
      Hashtbl.add seen pid ();
      event
        {|{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"pid %d"}}|}
        pid pid
    end
  done;
  for i = 0 to t.n - 1 do
    let nd = t.nodes.(i) in
    event
      {|{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":"%s:%s","cat":"%s","args":{"id":%d,"trace":%d}}|}
      nd.pid nd.at (kind_name nd.kind)
      (Metrics.json_escape nd.label)
      (kind_name nd.kind) i nd.trace
  done;
  (* flow arrows for message transit: one s/f pair per Message edge, keyed
     by the destination node id (unique per edge since a deliver has one
     message predecessor) *)
  iter_edges t ~f:(fun ~kind ~src ~dst ->
      if kind = Message then begin
        let s = t.nodes.(src) and d = t.nodes.(dst) in
        event
          {|{"ph":"s","pid":0,"tid":%d,"ts":%d,"id":%d,"name":"msg","cat":"flow"}|}
          s.pid s.at dst;
        event
          {|{"ph":"f","bp":"e","pid":0,"tid":%d,"ts":%d,"id":%d,"name":"msg","cat":"flow"}|}
          d.pid d.at dst
      end);
  List.iter
    (fun (name, track, start, end_, status) ->
      event
        {|{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":"%s","cat":"payment","args":{"status":"%s"}}|}
        track start
        (Stdlib.max 0 (end_ - start))
        (Metrics.json_escape name)
        (Metrics.json_escape status))
    payments;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
