(** Critical-path latency attribution over a {!Causal} graph.

    {!attribute} walks backward from a payment's sink event to its root,
    at each node following the {e binding} predecessor — the dependency
    that actually gated the event — and charges every hop of the walk to
    a blame category:

    - [Queueing]: a [Queue] edge — the interval an admission (or any
      explicit happens-after) spent waiting behind other work;
    - [Transit]: a [Message] edge up to the synchrony bound δ —
      per-hop compute + network transit;
    - [Gst_wait]: the part of a [Message] gap {e beyond} δ — pre-GST /
      asynchronous stretching (and adversarial delay);
    - [Timeout]: a [Timer] edge — time spent parked on a deadline;
    - [Downtime]: an [Outage] edge — crash-to-recovery dead time;
    - [Processing]: a [Program] edge — same-pid sequencing (usually 0
      gap: handlers run at a single tick);
    - [External]: the remainder when the walk exits the payment's own
      history without passing through the root (e.g. a pre-scheduled
      crash whose program-order past predates the payment) — charged as
      one cut segment so the invariant below still holds.

    Because node times are non-decreasing in id and every edge points
    forward, the chosen path telescopes: {b the category gaps always sum
    exactly to [time sink - time root]}, the observed end-to-end latency.
    That invariant is what makes the per-category table trustworthy — no
    latency is ever double-counted or dropped. *)

type category =
  | Queueing
  | Transit
  | Gst_wait
  | Timeout
  | Downtime
  | Processing
  | External

val categories : category list
(** All categories, in the stable report order above. *)

val category_name : category -> string

type segment = {
  seg_src : int;  (** predecessor node id; [-1] for the [External] cut *)
  seg_dst : int;
  seg_category : category;
  seg_gap : int;  (** [time dst - time src] (split for [Gst_wait]) *)
}

type report = {
  trace : int;  (** the sink node's trace id (payment index in load runs) *)
  root : int;
  sink : int;
  total : int;  (** [time sink - time root]; equals the segment-gap sum *)
  rooted : bool;  (** the walk reached [root] through real edges *)
  path : int list;  (** root (or the cut node) → sink, increasing ids *)
  segments : segment list;  (** sink-most last; gaps sum to [total] *)
  by_category : (category * int) list;  (** all categories, stable order *)
}

val attribute : ?delta:int -> Causal.t -> root:int -> sink:int -> report
(** Critical path and blame decomposition for one payment. [delta]
    (default: none) is the synchrony bound used to split [Message] gaps
    into [Transit] + [Gst_wait]; without it the whole gap is [Transit].
    Raises [Invalid_argument] if [sink < root] or either id is out of
    range. *)

val check : report -> bool
(** The invariant: category gaps sum to [total] and segment gaps are all
    non-negative. Always true for {!attribute} output; exposed so tests
    and CI can assert it. *)

type agg = {
  payments : int;
  agg_total : int;
  agg_by_category : (category * int) list;
  tail_count : int;  (** size of the slowest-[tail_pct]% subset (≥ 1) *)
  tail_total : int;
  tail_by_category : (category * int) list;
}

val aggregate : ?tail_pct:int -> report list -> agg
(** Sum the per-payment decompositions, and separately the slowest
    [tail_pct] percent (default 1 — the p99 tail, rounded up to at least
    one payment), so the tail's blame table shows where the p99 goes. *)

val report_to_json : report -> string
val agg_to_json : agg -> string
val pp_report : Format.formatter -> report -> unit
val pp_agg : Format.formatter -> agg -> unit

val pp_path : Causal.t -> Format.formatter -> report -> unit
(** The critical path, one line per segment with node detail:
    [t=117 pid 3 deliver:chi  <- message  +100 transit]. *)
