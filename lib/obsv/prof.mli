(** Hot-path profiler for {!Sim.Engine} dispatch.

    Attributes host wall-time and minor-heap allocation to {e dispatch
    sites} — one accumulator per (payment × process label × event kind)
    triple, where the payment id is the causal trace id ({!Causal}), the
    label is a low-cardinality process role ("alice", "escrow", "sched",
    …) interned once at {!Sim.Engine.add_process} time, and the kind is
    the dequeued event's class (deliver / timer / crash / recover).

    The contract mirrors {!Causal}: the profiler is always compiled in
    and {e zero-cost when off}. An engine created without [?prof] pays
    exactly one [match] per dispatched event and allocates nothing; an
    engine created with [?prof] pays two clock reads and two
    [Gc.minor_words] reads per event, plus a hashtable upsert on the
    first visit to each site. Allocation is measured in minor-heap
    {b words} ([Gc.minor_words] deltas — unboxed reads, so the probe
    itself does not allocate); wall time comes from an injectable
    [now_ns] clock so library code stays free of [Unix].

    Alongside the per-site table the profiler registers, in a
    {!Metrics} registry, an event-queue depth histogram
    ([xchain_prof_queue_depth], sampled at every dequeue) and per-kind
    dispatch/allocation counters ([xchain_prof_dispatch_total],
    [xchain_prof_alloc_words_total]) — the per-subsystem Gc-pressure
    view that survives into [xchain metrics] and BENCH_metrics.json.

    Reconciliation semantics (tested in [test_obsv.ml]): the per-site
    [count]s sum {e exactly} to the number of profiled dispatches
    ({!events}, = {!Sim.Engine.events_processed} when the profiler was
    attached for the engine's whole life); per-site wall and allocation
    sums are ≤ the {!run_totals}, whose excess — the epsilon — is the
    run loop's own bookkeeping outside [dispatch] (queue pop, peek,
    telemetry stores, the probes themselves). *)

type t

type kind = Deliver | Timer | Crash | Recover
(** The dispatch classes of {!Sim.Engine}'s event type: message
    delivery, timer firing, fault-injected crash, scheduled recovery. *)

val kind_name : kind -> string
(** ["deliver"], ["timer"], ["crash"], ["recover"]. *)

val create : ?now_ns:(unit -> int) -> ?metrics:Metrics.t -> unit -> t
(** [now_ns] is the monotonic host clock in nanoseconds (callers with
    [Unix] pass [Fleet.now_ns]; the default falls back to [Sys.time],
    which is coarse but keeps this library dependency-free). [metrics]
    (default {!Metrics.default}) receives the queue-depth histogram and
    per-kind counters. *)

(** {1 Engine-facing hot path} *)

val label_cap : int
(** Maximum distinct process labels (1024). Past the cap {!intern}
    returns the shared ["overflow"] id — same bounded-degradation policy
    as {!Metrics.cardinality_cap}. *)

val intern : t -> string -> int
(** Resolve a process label to its small-int id, registering it on first
    use. Idempotent; called once per process at [add_process] time, not
    per event. *)

val observe_queue_depth : t -> int -> unit
val enter : t -> unit
(** Stamp the clock and allocation counters just before [dispatch]. *)

val leave : t -> label:int -> kind:kind -> trace:int -> unit
(** Charge the wall/alloc deltas since {!enter} to site
    [(trace, label, kind)]. [trace] is the causal trace (payment) id of
    the dispatched event, or [-1] for unattributed work (crashes,
    recoveries, runs without causal tracing). *)

val run_begin : t -> unit
val run_end : t -> unit
(** Bracket a whole {!Sim.Engine.run} loop; deltas accumulate into
    {!run_totals} (multiple run calls sum). *)

(** {1 Views} *)

type site = {
  s_trace : int;  (** payment id, [-1] for unattributed work *)
  s_label : string;
  s_kind : kind;
  s_count : int;
  s_wall_ns : int;
  s_alloc_words : int;
}

val events : t -> int
(** Total profiled dispatches (= Σ per-site counts, exactly). *)

val sites : t -> site list
(** All sites in deterministic order: by trace, then label id (intern
    order), then kind. *)

val site_totals : t -> int * int * int
(** [(count, wall_ns, alloc_words)] summed over all sites. *)

val run_totals : t -> int * int
(** [(wall_ns, alloc_words)] across every {!run_begin}/{!run_end}
    bracket — site sums plus the loop-overhead epsilon. *)

val pp_top : ?n:int -> Format.formatter -> t -> unit
(** The hot-site table: top [n] (default 15) sites by wall time, with
    count, per-event allocation, and share of total site wall time. *)

val to_json : t -> string
(** The profile report. Deterministic for a fixed seeded workload except
    the flat ["prof_timing"] objects (site and run wall-clock), which
    [scripts/strip_timing.py] removes — same convention as the reports'
    ["timing"] block. *)

val to_collapsed : t -> string
(** Collapsed-stack view, one [frame;frame;frame weight] line per site
    (weight = wall ns, floored at 1), loadable by speedscope or
    flamegraph.pl. Frames nest payment → process label → event kind;
    unattributed work nests under the ["run"] root. Line order is the
    deterministic {!sites} order; only the weights vary across reruns. *)
