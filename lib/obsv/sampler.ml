(* Sim-time telemetry sampler: a probe closure read at a fixed sim-time
   cadence, accumulating one integer row per sample. Sim-time jumps
   between events, so a "tick" fires when the clock has reached or passed
   the next due time and stamps the row with the actual clock — fully
   deterministic for a deterministic schedule. *)

type t = {
  interval : int;
  mutable columns : string array;
  mutable probe : (unit -> int array) option;
  mutable rows : (int * int array) list; (* newest first *)
  mutable nrows : int;
  mutable next_at : int;
}

let create ?(interval = 100) () =
  if interval <= 0 then invalid_arg "Sampler.create: interval must be positive";
  { interval; columns = [||]; probe = None; rows = []; nrows = 0; next_at = 0 }

let set_probe t ~columns f =
  t.columns <- Array.of_list columns;
  t.probe <- Some f

let sample t ~now =
  match t.probe with
  | None -> ()
  | Some f ->
      t.rows <- (now, f ()) :: t.rows;
      t.nrows <- t.nrows + 1

let tick t ~now =
  if now >= t.next_at then begin
    sample t ~now;
    t.next_at <- now + t.interval
  end

let rows t = List.rev t.rows
let row_count t = t.nrows
let columns t = Array.to_list t.columns
let interval t = t.interval

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (at, vals) ->
      Buffer.add_string buf (Printf.sprintf "{\"t\":%d" at);
      Array.iteri
        (fun i v ->
          let col = if i < Array.length t.columns then t.columns.(i)
            else Printf.sprintf "col%d" i
          in
          Buffer.add_string buf
            (Printf.sprintf ",\"%s\":%d" (Metrics.json_escape col) v))
        vals;
      Buffer.add_string buf "}\n")
    (rows t);
  Buffer.add_string buf
    (Printf.sprintf "{\"series\":{\"rows\":%d,\"interval\":%d}}\n" t.nrows
       t.interval);
  Buffer.contents buf
