(** Prometheus text exposition (format version 0.0.4).

    Renders a registry snapshot as the plain-text format scraped by
    Prometheus: per family a [# HELP] line (when help text is present) and
    a [# TYPE] line, then one sample line per child. Histograms expand to
    cumulative [_bucket{le="..."}] series plus [_sum] and [_count].

    Label {e values} are escaped per the spec: backslash, double quote and
    newline; [# HELP] text escapes backslash and newline. Families print
    in registration order and children in creation order, so the output is
    deterministic for a deterministic workload — the CLI cram tests rely
    on this. *)

val escape_label_value : string -> string
val escape_help : string -> string

val render : Metrics.t -> string
(** The full exposition, families in registration order, terminated by a
    newline. *)

val write : Metrics.t -> out_channel -> unit
