let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A label block "{k="v",...}", or "" when there are no labels. [extra]
   appends a trailing label (histograms' le="..."). *)
let label_block ?extra labels =
  let pairs =
    List.map
      (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
      labels
    @ match extra with None -> [] | Some (k, v) -> [ Printf.sprintf "%s=\"%s\"" k v ]
  in
  match pairs with [] -> "" | _ -> "{" ^ String.concat "," pairs ^ "}"

let render t =
  let buf = Buffer.create 2048 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = s.Metrics.s_name in
      if not (Hashtbl.mem seen_header name) then begin
        Hashtbl.add seen_header name ();
        if s.Metrics.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name (escape_help s.Metrics.s_help));
        let kind =
          match s.Metrics.s_kind with
          | `Counter -> "counter"
          | `Gauge -> "gauge"
          | `Histogram -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      end;
      let labels = s.Metrics.s_labels in
      match s.Metrics.s_value with
      | Metrics.Counter_v v | Metrics.Gauge_v v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (label_block labels) v)
      | Metrics.Histogram_v { sum; count; buckets } ->
          List.iter
            (fun (bound, cum) ->
              let le =
                if bound = max_int then "+Inf" else string_of_int bound
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (label_block ~extra:("le", le) labels)
                   cum))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %d\n" name (label_block labels) sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (label_block labels) count))
    (Metrics.snapshot t);
  Buffer.contents buf

let write t oc = output_string oc (render t)
