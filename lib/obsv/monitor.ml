(* Online runtime verification: named safety checks evaluated against live
   run state on every engine dispatch. The monitor itself is generic — a
   check is a closure returning [Some detail] while its property is
   violated and [None] while it holds — so the harnesses (chaos, load)
   register closures that read the very same mutable state (ledger books,
   the trace) their post-hoc verdicts are computed from. Evaluating the
   same predicates on the same state at the end of the run is what makes
   the online verdict agree with the post-hoc report by construction. *)

type trip = { property : string; detail : string; at : int }

type check = { name : string; run : unit -> string option }

type t = {
  mutable checks : check list; (* registration order, reversed *)
  mutable live : (string * trip) list; (* currently-violated properties *)
  mutable first_trip : trip option; (* never reset once set *)
  mutable steps : int;
  mutable stop_on_violation : bool;
}

let create ?(stop_on_violation = false) () =
  { checks = []; live = []; first_trip = None; steps = 0; stop_on_violation }

let register t ~name run = t.checks <- { name; run } :: t.checks

let step t ~at =
  t.steps <- t.steps + 1;
  List.iter
    (fun c ->
      match c.run () with
      | None -> if List.mem_assoc c.name t.live then
            t.live <- List.remove_assoc c.name t.live
      | Some detail ->
          if not (List.mem_assoc c.name t.live) then begin
            let trip = { property = c.name; detail; at } in
            t.live <- (c.name, trip) :: t.live;
            if t.first_trip = None then t.first_trip <- Some trip
          end)
    t.checks

let finalize t ~at = step t ~at

let violations t =
  (* registration order, like a post-hoc report *)
  List.rev (List.map snd t.live)

let first_trip t = t.first_trip
let steps t = t.steps

let breach_at t =
  match t.first_trip with None -> -1 | Some trip -> trip.at

let should_stop t = t.stop_on_violation && t.first_trip <> None
