(** Cross-chain deals (Herlihy, Liskov & Shrira 2019), as summarised in §5
    of the paper.

    A deal is a matrix [M] where [M(i,j)] lists an asset to be transferred
    from party [i] to party [j]; equivalently a directed graph with an arc
    i → j labelled [v] iff [M(i,j)] = v ≠ 0. For each asset type a separate
    blockchain acts as escrow.

    A {e payoff} is acceptable to party [i] if she either receives all
    assets [M(·,i)] while parting with all [M(i,·)] ({e all}), or loses
    nothing at all ({e nothing}); any outcome where she loses less and/or
    gains more than an acceptable outcome is also acceptable.

    A deal is {e well-formed} when its graph is strongly connected — the
    hypothesis under which the HLS protocols are proven correct; E7 shows
    what breaks without it. *)

type party = int

type arc = { from_ : party; to_ : party; asset : Ledger.Asset.t }

type t

val make : parties:int -> transfers:(party * party * Ledger.Asset.t) list -> t
(** Raises [Invalid_argument] on out-of-range parties, self-arcs, duplicate
    (from, to) pairs, or zero-amount assets. *)

val parties : t -> int
val arcs : t -> arc list
val arc_count : t -> int
val transfer : t -> from_:party -> to_:party -> Ledger.Asset.t option

val outgoing : t -> party -> arc list
val incoming : t -> party -> arc list

val successors : t -> party -> party list
val strongly_connected : t -> bool
val well_formed : t -> bool
(** = {!strongly_connected} (and at least one arc). *)

val diameter : t -> int
(** Longest shortest-path over the arc graph, counting hops; 0 for a
    single-party graph, [parties] when unreachable pairs exist (used to size
    timelock ladders conservatively). *)

val expected_gain : t -> party -> Ledger.Asset.Bag.t
(** Everything [M(·,i)] promises party [i]. *)

val expected_loss : t -> party -> Ledger.Asset.Bag.t

val acceptable :
  t -> party -> gained:Ledger.Asset.Bag.t -> lost:Ledger.Asset.Bag.t -> bool
(** The HLS acceptability predicate: dominated-by-nothing-lost or
    dominates-full-execution. *)

(** {1 Stock deals for experiments} *)

val two_party_swap : unit -> t
(** 5 coinA from 0 to 1 against 3 coinB back — the canonical atomic swap. *)

val three_cycle : unit -> t
(** 0 → 1 → 2 → 0, three currencies. *)

val broker_dag : unit -> t
(** 0 → 1 → 2 with no return arcs: {e not} strongly connected — the
    counterexample deal for E7 (its safety breaks under a lazily-claiming
    Byzantine party, because the broker can only learn the full vote set
    from the on-chain reveal of her outgoing leg). *)

val disconnected_pair : unit -> t
(** Two unrelated transfers 0 → 1 and 2 → 3 packaged as one deal: not even
    weakly connected, so no party can ever assemble the vote set — strong
    liveness fails although everything refunds safely. *)

val pp : Format.formatter -> t -> unit
