open Sim
module E = Engine
module Auth = Xcrypto.Auth
module Asset = Ledger.Asset
module Book = Ledger.Book

type commit_protocol = Timelock | Cbc

type config = {
  deal : Deal.t;
  protocol : commit_protocol;
  compliant : bool array;
  delta : Sim_time.t;
  sigma : Sim_time.t;
  drift_ppm : int;
  gst : Sim_time.t option;
  cb_patience : Sim_time.t;
  fault_plan : Faults.Fault_plan.t option;
  seed : int;
  max_events : int;
}

let default_config deal protocol =
  {
    deal;
    protocol;
    compliant = Array.make (Deal.parties deal) true;
    delta = 100;
    sigma = 10;
    drift_ppm = 10_000;
    gst = None;
    cb_patience = 20_000;
    fault_plan = None;
    seed = 11;
    max_events = 100_000;
  }

type outcome = {
  config : config;
  status : E.status;
  trace : (Dmsg.t, Dobs.t) Trace.t;
  books : Book.t array;
  end_time : Sim_time.t;
  message_count : int;
}

let deal_id = 1

(* pid layout *)
let party_pid p = p
let arc_pid cfg k = Deal.parties cfg.deal + k
let cb_pid cfg = Deal.parties cfg.deal + Deal.arc_count cfg.deal

let indexed_arcs cfg = List.mapi (fun k a -> (k, a)) (Deal.arcs cfg.deal)

let vote_ok cfg registry (sv : Dmsg.vote_body Auth.signed) =
  let b = sv.Auth.payload in
  b.Dmsg.v_deal = deal_id
  && b.Dmsg.v_party = sv.Auth.author
  && sv.Auth.author < Deal.parties cfg.deal
  && Auth.verify_value registry ~ser:Dmsg.ser_vote sv

let full_vote_set cfg registry votes =
  let p = Deal.parties cfg.deal in
  let seen = Array.make p false in
  List.iter
    (fun sv -> if vote_ok cfg registry sv then seen.(sv.Auth.author) <- true)
    votes;
  Array.for_all Fun.id seen

(* Timelock ladder: enough real time for deposits, diameter rounds of vote
   gossip, and the claim hop — inflated for drift. *)
let claim_window cfg =
  let step = Sim_time.add cfg.sigma cfg.delta in
  let rungs = Deal.diameter cfg.deal + 7 in
  let raw = Sim_time.scale step ~num:rungs ~den:1 in
  Sim_time.scale raw ~num:(1_000_000 + cfg.drift_ppm) ~den:1_000_000

(* --------------------------- escrow per arc --------------------------- *)

let arc_escrow cfg registry books k (arc : Deal.arc) =
  let self_will_be = () in
  ignore self_will_be;
  let book = books.(k) in
  let deposit = ref None in
  let resolved = ref false in
  (* a valid claim or certificate may race ahead of the deposit (messages
     are unordered across senders); remember it and settle on arrival *)
  let pending :
      [ `Pay of Dmsg.vote_body Auth.signed list | `Refund ] option ref =
    ref None
  in
  let payee = party_pid arc.Deal.to_ in
  let payer = party_pid arc.Deal.from_ in
  let asset = arc.Deal.asset in
  (* On release, the winning claim's vote set becomes public on this chain
     (HLS: proofs are revealed by the claiming transaction), so the payer
     learns it and can redeem her own incoming legs — this is what makes
     a vote-hoarding adversary harmless under the timelock protocol. *)
  let pay ctx ~votes =
    match !deposit with
    | Some dep when not !resolved -> (
        match Book.release book dep ~to_:payee with
        | Ok () ->
            resolved := true;
            E.observe ctx (Dobs.Paid_out { arc = k; to_ = payee; asset });
            E.send ctx ~dst:payee (Dmsg.Paid { arc = k });
            if votes <> [] then E.send ctx ~dst:payer (Dmsg.Votes votes)
        | Error e ->
            E.observe ctx
              (Dobs.Rejected
                 { pid = arc_pid cfg k; what = Fmt.str "release: %a" Book.pp_error e }))
    | None -> pending := Some (`Pay votes)
    | Some _ -> ()
  in
  let refund ctx =
    match !deposit with
    | Some dep when not !resolved -> (
        match Book.refund book dep with
        | Ok () ->
            resolved := true;
            E.observe ctx (Dobs.Refunded { arc = k; to_ = payer; asset });
            E.send ctx ~dst:payer (Dmsg.Refund { arc = k })
        | Error e ->
            E.observe ctx
              (Dobs.Rejected
                 { pid = arc_pid cfg k; what = Fmt.str "refund: %a" Book.pp_error e }))
    | None -> pending := Some `Refund
    | Some _ -> ()
  in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Dmsg.Deposit { arc } when arc = k && src = payer && !deposit = None
          -> (
            match Book.deposit book ~from_:payer ~amount:asset.Asset.amount with
            | Ok dep -> (
                deposit := Some dep;
                E.observe ctx (Dobs.Escrowed { arc = k; party = payer; asset });
                if cfg.protocol = Timelock then
                  E.set_timer_after ctx ~after:(claim_window cfg)
                    ~label:"timelock";
                (* the escrow phase is observable: tell the payee, and under
                   CBC also the certifier, that the leg is funded *)
                E.send ctx ~dst:payee (Dmsg.Escrowed_notice { arc = k });
                if cfg.protocol = Cbc then
                  E.send ctx ~dst:(cb_pid cfg) (Dmsg.Escrowed_notice { arc = k });
                match !pending with
                | Some (`Pay votes) -> pay ctx ~votes
                | Some `Refund -> refund ctx
                | None -> ())
            | Error e ->
                E.observe ctx
                  (Dobs.Rejected
                     { pid = arc_pid cfg k; what = Fmt.str "deposit: %a" Book.pp_error e }))
        | Dmsg.Claim { arc; votes }
          when arc = k && src = payee && cfg.protocol = Timelock ->
            if full_vote_set cfg registry votes then pay ctx ~votes
            else
              E.observe ctx
                (Dobs.Rejected { pid = arc_pid cfg k; what = "incomplete claim" })
        | Dmsg.Cb_cert sv when cfg.protocol = Cbc && src = cb_pid cfg ->
            if Auth.verify_value registry ~ser:Dmsg.ser_cb sv then
              if sv.Auth.payload.Dmsg.c_commit then pay ctx ~votes:[]
              else refund ctx
        | _ -> ());
    on_timer =
      (fun ctx ~label ->
        if String.equal label "timelock" && cfg.protocol = Timelock then
          refund ctx);
  }

(* ------------------------------ parties ------------------------------ *)

let party cfg registry signer p =
  let self = party_pid p in
  let my_out = List.filter (fun (_, a) -> a.Deal.from_ = p) (indexed_arcs cfg) in
  let my_in = List.filter (fun (_, a) -> a.Deal.to_ = p) (indexed_arcs cfg) in
  let succs = Deal.successors cfg.deal p in
  let known : (int, Dmsg.vote_body Auth.signed) Hashtbl.t = Hashtbl.create 8 in
  let escrowed_in : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let voted = ref false in
  let claimed = ref false in
  let outcomes : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let done_ = ref false in
  let maybe_finish ctx =
    (* terminated once every arc this party touches has a known fate *)
    let all_arcs = List.map fst my_out @ List.map fst my_in in
    if (not !done_) && List.for_all (Hashtbl.mem outcomes) all_arcs then begin
      done_ := true;
      let gained =
        List.exists
          (fun (k, _) -> Hashtbl.find_opt outcomes k = Some "paid")
          my_in
      in
      E.observe ctx
        (Dobs.Terminated
           { pid = self; outcome = (if gained then "deal-done" else "deal-off") });
      E.halt ctx
    end
  in
  let gossip ctx =
    let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
    List.iter
      (fun q -> E.send ctx ~dst:(party_pid q) (Dmsg.Votes votes))
      succs
  in
  let try_claim ctx =
    if
      (not !claimed)
      && full_vote_set cfg registry
           (Hashtbl.fold (fun _ sv acc -> sv :: acc) known [])
    then begin
      claimed := true;
      let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
      List.iter
        (fun (k, _) ->
          E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes }))
        my_in
    end
  in
  let learn ctx votes =
    let fresh = ref false in
    List.iter
      (fun sv ->
        if vote_ok cfg registry sv && not (Hashtbl.mem known sv.Auth.author)
        then begin
          Hashtbl.add known sv.Auth.author sv;
          fresh := true
        end)
      votes;
    if !fresh && !voted then begin
      gossip ctx;
      if cfg.protocol = Timelock then try_claim ctx
    end
  in
  (* HLS phase order: a party commits (votes) only once it has observed on
     every incoming chain that its promised asset is actually escrowed.
     Voting earlier lets a freeloader collect transfers it never funded. *)
  let maybe_vote ctx =
    if
      (not !voted)
      && List.for_all (fun (k, _) -> Hashtbl.mem escrowed_in k) my_in
    then begin
      voted := true;
      let my_vote =
        Auth.sign_value signer ~ser:Dmsg.ser_vote
          { Dmsg.v_party = p; v_deal = deal_id }
      in
      E.observe ctx (Dobs.Voted { party = p });
      Hashtbl.add known p my_vote;
      match cfg.protocol with
      | Timelock ->
          gossip ctx;
          try_claim ctx
      | Cbc -> E.send ctx ~dst:(cb_pid cfg) (Dmsg.Cb_vote my_vote)
    end
  in
  {
    E.on_start =
      (fun ctx ->
        (* escrow phase: fund outgoing legs *)
        List.iter
          (fun (k, _) -> E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Deposit { arc = k }))
          my_out;
        maybe_vote ctx);
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Dmsg.Escrowed_notice { arc }
          when List.exists (fun (k, _) -> k = arc) my_in
               && src = arc_pid cfg arc ->
            Hashtbl.replace escrowed_in arc ();
            maybe_vote ctx
        | Dmsg.Votes votes ->
            (* from peers (gossip) or from an arc escrow (on-chain reveal);
               signature checks inside [learn] gate what is accepted *)
            ignore src;
            learn ctx votes
        | Dmsg.Paid { arc } ->
            Hashtbl.replace outcomes arc "paid";
            maybe_finish ctx
        | Dmsg.Refund { arc } ->
            Hashtbl.replace outcomes arc "refunded";
            maybe_finish ctx
        | Dmsg.Cb_cert sv
          when cfg.protocol = Cbc
               && src = cb_pid cfg
               && Auth.verify_value registry ~ser:Dmsg.ser_cb sv ->
            (* nothing to do: escrows resolve; parties wait for Paid/Refund *)
            ()
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* ------------------------ certified blockchain ------------------------ *)

let certified_chain cfg registry signer =
  let p = Deal.parties cfg.deal in
  let arcs_total = Deal.arc_count cfg.deal in
  let votes = Hashtbl.create 8 in
  let escrowed = Hashtbl.create 8 in
  let decided = ref false in
  let everyone ctx cert =
    for q = 0 to p - 1 do
      E.send ctx ~dst:(party_pid q) (Dmsg.Cb_cert cert)
    done;
    List.iter
      (fun (k, _) -> E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Cb_cert cert))
      (indexed_arcs cfg)
  in
  let decide ctx commit =
    if not !decided then begin
      decided := true;
      E.observe ctx (Dobs.Cb_decided { commit });
      let cert =
        Auth.sign_value signer ~ser:Dmsg.ser_cb
          { Dmsg.c_deal = deal_id; c_commit = commit }
      in
      everyone ctx cert
    end
  in
  let maybe_commit ctx =
    if Hashtbl.length votes = p && Hashtbl.length escrowed = arcs_total then
      decide ctx true
  in
  {
    E.on_start =
      (fun ctx ->
        E.set_timer_after ctx ~after:cfg.cb_patience ~label:"cb-patience");
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Dmsg.Cb_vote sv
          when vote_ok cfg registry sv && sv.Auth.author = src ->
            Hashtbl.replace votes sv.Auth.author ();
            maybe_commit ctx
        | Dmsg.Escrowed_notice { arc }
          when arc >= 0 && arc < arcs_total && src = arc_pid cfg arc ->
            Hashtbl.replace escrowed arc ();
            maybe_commit ctx
        | _ -> ());
    on_timer =
      (fun ctx ~label ->
        if String.equal label "cb-patience" then decide ctx false);
  }

(* ------------------------------- run ---------------------------------- *)

(* ----------------------------- telemetry ------------------------------- *)

let protocol_label = function Timelock -> "timelock" | Cbc -> "cbc"

(* Post-run, trace-derived (like Protocols.Runner): one root span per deal,
   one child per party carrying its termination status, plus the per-arc
   settlement spans (escrow -> paid/refunded). *)
let emit_telemetry (o : outcome) =
  let reg = Obsv.Metrics.default in
  let cfg = o.config in
  let labels = [ ("protocol", protocol_label cfg.protocol) ] in
  let obs = Trace.observations o.trace in
  let arcs_total = Deal.arc_count cfg.deal in
  let paid_arcs =
    List.length
      (List.filter (fun (_, _, e) -> match e with Dobs.Paid_out _ -> true | _ -> false) obs)
  in
  let status =
    if paid_arcs = arcs_total then "commit"
    else if paid_arcs = 0 then "abort"
    else "mixed"
  in
  Obsv.Metrics.inc
    (Obsv.Metrics.counter reg ~help:"Deals started" ~labels
       "xchain_deals_started_total");
  Obsv.Metrics.inc
    (Obsv.Metrics.counter reg ~help:"Deals settled, by final status"
       ~labels:(("status", status) :: labels)
       "xchain_deals_settled_total");
  Obsv.Metrics.observe
    (Obsv.Metrics.histogram reg ~labels
       ~help:"Deal wall-clock, init to quiescence, ticks" "xchain_deal_latency")
    o.end_time;
  let spans = Obsv.Span.default in
  if Obsv.Span.capture spans then begin
    let root =
      Obsv.Span.start spans ~name:"deal"
        ~attrs:
          [
            ("protocol", protocol_label cfg.protocol);
            ("parties", string_of_int (Deal.parties cfg.deal));
            ("arcs", string_of_int arcs_total);
            ("seed", string_of_int cfg.seed);
          ]
        ~at:0 ()
    in
    (* per-party children, closed by their Terminated observation *)
    for p = 0 to Deal.parties cfg.deal - 1 do
      let pspan =
        Obsv.Span.start spans ~parent:root
          ~name:(Printf.sprintf "party:%d" p)
          ~at:0 ()
      in
      match
        List.find_opt
          (fun (_, pid, e) ->
            pid = party_pid p
            && match e with Dobs.Terminated _ -> true | _ -> false)
          obs
      with
      | Some (t, _, Dobs.Terminated { outcome; _ }) ->
          Obsv.Span.finish ~status:outcome ~at:t pspan
      | _ -> Obsv.Span.finish ~status:"running" ~at:o.end_time pspan
    done;
    (* per-arc settlement: escrow observation opens, pay/refund closes *)
    List.iter
      (fun (k, _) ->
        let find f = List.find_opt (fun (_, _, e) -> f e) obs in
        let escrowed =
          find (function Dobs.Escrowed { arc; _ } -> arc = k | _ -> false)
        in
        match escrowed with
        | None -> ()
        | Some (t0, _, _) ->
            let closed =
              find (function
                | Dobs.Paid_out { arc; _ } | Dobs.Refunded { arc; _ } -> arc = k
                | _ -> false)
            in
            let aspan =
              Obsv.Span.start spans ~parent:root
                ~name:(Printf.sprintf "arc:%d" k)
                ~at:t0 ()
            in
            (match closed with
            | Some (t1, _, Dobs.Paid_out _) ->
                Obsv.Span.finish ~status:"paid" ~at:t1 aspan
            | Some (t1, _, _) -> Obsv.Span.finish ~status:"refunded" ~at:t1 aspan
            | None -> Obsv.Span.finish ~status:"held" ~at:o.end_time aspan))
      (indexed_arcs cfg);
    Obsv.Span.finish ~status ~at:o.end_time root
  end

let run ?(substitute = fun ~party:_ ~registry:_ ~signer:_ -> None) cfg =
  let p = Deal.parties cfg.deal in
  if Array.length cfg.compliant <> p then
    invalid_arg "Deal_runner.run: compliant array size mismatch";
  let registry = Auth.create ~seed:(cfg.seed + 3) in
  let signers = Array.init p (fun q -> Auth.register registry q) in
  let books =
    Array.of_list
      (List.map
         (fun (k, (a : Deal.arc)) ->
           let book =
             Book.create ~currency:a.Deal.asset.Asset.currency
           in
           Book.open_account book ~owner:(party_pid a.Deal.from_)
             ~balance:a.Deal.asset.Asset.amount;
           Book.open_account book ~owner:(party_pid a.Deal.to_) ~balance:0;
           Book.open_account book ~owner:(arc_pid cfg k) ~balance:0;
           book)
         (indexed_arcs cfg))
  in
  let nprocs =
    p + Deal.arc_count cfg.deal
    + (match cfg.protocol with Cbc -> 1 | Timelock -> 0)
  in
  let injector =
    match cfg.fault_plan with
    | None -> None
    | Some plan when Faults.Fault_plan.is_none plan -> None
    | Some plan -> (
        match Faults.Fault_plan.validate plan ~nprocs with
        | Error e -> invalid_arg ("Deal_runner.run: bad fault plan: " ^ e)
        | Ok () ->
            Some (Faults.Injector.create ~plan ~seed:(cfg.seed + 47) ()))
  in
  let model =
    match cfg.gst with
    | None -> Network.Synchronous { delta = cfg.delta }
    | Some gst -> Network.Partially_synchronous { gst; delta = cfg.delta }
  in
  let model =
    match injector with
    | None -> model
    | Some inj -> Faults.Injector.jittered_model inj model
  in
  let network =
    Network.create
      ?tamper:(Option.map Faults.Injector.tamper injector)
      model
      (Rng.create ~seed:(cfg.seed + 19))
  in
  let engine =
    E.create ~tag_of:Dmsg.tag ~network ~sigma:cfg.sigma ~seed:cfg.seed ()
  in
  let clock_rng = Rng.create ~seed:(cfg.seed + 23) in
  let add handlers =
    ignore
      (E.add_process engine
         ~clock:(Clock.random clock_rng ~drift_ppm:cfg.drift_ppm)
         handlers)
  in
  for q = 0 to p - 1 do
    match substitute ~party:q ~registry ~signer:signers.(q) with
    | Some handlers -> add handlers
    | None ->
        if cfg.compliant.(q) then add (party cfg registry signers.(q) q)
        else add E.silent
  done;
  List.iter (fun (k, a) -> add (arc_escrow cfg registry books k a)) (indexed_arcs cfg);
  (match cfg.protocol with
  | Cbc ->
      let cb_signer = Auth.register registry (cb_pid cfg) in
      add (certified_chain cfg registry cb_signer)
  | Timelock -> ());
  Option.iter
    (fun inj -> Faults.Injector.schedule_crashes inj engine)
    injector;
  let status = E.run ~max_events:cfg.max_events engine in
  let o =
    {
      config = cfg;
      status;
      trace = E.trace engine;
      books;
      end_time = E.now engine;
      message_count = Trace.message_count (E.trace engine);
    }
  in
  emit_telemetry o;
  o

let events outcome = Trace.observations outcome.trace

let gained outcome party =
  List.fold_left
    (fun acc (_, _, o) ->
      match o with
      | Dobs.Paid_out { to_; asset; _ } when to_ = party ->
          Asset.Bag.add acc asset
      | _ -> acc)
    Asset.Bag.empty (events outcome)

let lost outcome party =
  let cfg = outcome.config in
  List.fold_left
    (fun acc (_, _, o) ->
      match o with
      | Dobs.Paid_out { arc; asset; _ } ->
          let a = List.nth (Deal.arcs cfg.deal) arc in
          if a.Deal.from_ = party then Asset.Bag.add acc asset else acc
      | _ -> acc)
    Asset.Bag.empty (events outcome)

let escrowed_forever outcome =
  let cfg = outcome.config in
  List.filter_map
    (fun (k, (a : Deal.arc)) ->
      match Book.deposit_status outcome.books.(k) 0 with
      | Some Book.Held -> Some (k, a.Deal.from_)
      | _ -> None)
    (indexed_arcs cfg)
