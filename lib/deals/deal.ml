module Asset = Ledger.Asset

type party = int
type arc = { from_ : party; to_ : party; asset : Asset.t }
type t = { parties : int; arc_list : arc list }

let make ~parties ~transfers =
  if parties < 1 then invalid_arg "Deal.make: need at least one party";
  let seen = Hashtbl.create 8 in
  let arc_list =
    List.map
      (fun (from_, to_, (asset : Asset.t)) ->
        if from_ < 0 || from_ >= parties || to_ < 0 || to_ >= parties then
          invalid_arg "Deal.make: party out of range";
        if from_ = to_ then invalid_arg "Deal.make: self-transfer";
        if asset.Asset.amount = 0 then invalid_arg "Deal.make: zero asset";
        if Hashtbl.mem seen (from_, to_) then
          invalid_arg "Deal.make: duplicate arc";
        Hashtbl.add seen (from_, to_) ();
        { from_; to_; asset })
      transfers
  in
  { parties; arc_list }

let parties t = t.parties
let arcs t = t.arc_list
let arc_count t = List.length t.arc_list

let transfer t ~from_ ~to_ =
  List.find_map
    (fun a -> if a.from_ = from_ && a.to_ = to_ then Some a.asset else None)
    t.arc_list

let outgoing t p = List.filter (fun a -> a.from_ = p) t.arc_list
let incoming t p = List.filter (fun a -> a.to_ = p) t.arc_list
let successors t p = List.map (fun a -> a.to_) (outgoing t p)

let reachable t from_ =
  let visited = Array.make t.parties false in
  let rec go p =
    if not visited.(p) then begin
      visited.(p) <- true;
      List.iter go (successors t p)
    end
  in
  go from_;
  visited

let strongly_connected t =
  t.parties = 1
  ||
  let rec check p =
    p >= t.parties
    || (Array.for_all Fun.id (reachable t p) && check (p + 1))
  in
  check 0

let well_formed t = arc_count t > 0 && strongly_connected t

let diameter t =
  if t.parties = 1 then 0
  else begin
    (* BFS from every party *)
    let worst = ref 0 in
    for s = 0 to t.parties - 1 do
      let dist = Array.make t.parties (-1) in
      dist.(s) <- 0;
      let q = Queue.create () in
      Queue.add s q;
      while not (Queue.is_empty q) do
        let p = Queue.pop q in
        List.iter
          (fun n ->
            if dist.(n) < 0 then begin
              dist.(n) <- dist.(p) + 1;
              Queue.add n q
            end)
          (successors t p)
      done;
      Array.iter
        (fun d -> worst := max !worst (if d < 0 then t.parties else d))
        dist
    done;
    !worst
  end

let expected_gain t p =
  Asset.Bag.of_list (List.map (fun a -> a.asset) (incoming t p))

let expected_loss t p =
  Asset.Bag.of_list (List.map (fun a -> a.asset) (outgoing t p))

let acceptable t p ~gained ~lost =
  let full_gain = expected_gain t p and full_loss = expected_loss t p in
  (* dominates "nothing": lost nothing (gaining extra is fine) *)
  Asset.Bag.is_empty lost
  || (* dominates "all": gained at least the promised, lost at most the
        promised *)
  (Asset.Bag.geq gained full_gain && Asset.Bag.geq full_loss lost)

let coin c n = Asset.make ~currency:c ~amount:n

let two_party_swap () =
  make ~parties:2 ~transfers:[ (0, 1, coin "coinA" 5); (1, 0, coin "coinB" 3) ]

let three_cycle () =
  make ~parties:3
    ~transfers:
      [ (0, 1, coin "coinA" 5); (1, 2, coin "coinB" 4); (2, 0, coin "coinC" 6) ]

let broker_dag () =
  make ~parties:3
    ~transfers:[ (0, 1, coin "coinA" 5); (1, 2, coin "coinB" 4) ]

let disconnected_pair () =
  make ~parties:4
    ~transfers:[ (0, 1, coin "coinA" 5); (2, 3, coin "coinB" 4) ]

let pp ppf t =
  Fmt.pf ppf "@[<v>deal(%d parties)%a@]" t.parties
    Fmt.(
      list ~sep:nop (fun ppf a ->
          pf ppf "@,  %d -> %d: %a" a.from_ a.to_ Asset.pp a.asset))
    t.arc_list
