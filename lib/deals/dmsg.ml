(** Wire messages of the two cross-chain-deal commit protocols. *)

type vote_body = { v_party : int; v_deal : int }
(** A party's signed commitment to the deal. *)

type cb_body = { c_deal : int; c_commit : bool }
(** The certified blockchain's decision certificate. *)

type t =
  | Deposit of { arc : int }  (** party → arc escrow: fund my leg *)
  | Escrowed_notice of { arc : int }
      (** arc escrow → payee (and → certifier under CBC): the leg is
          funded — the on-chain observability of the HLS escrow phase *)
  | Votes of vote_body Xcrypto.Auth.signed list
      (** party → party gossip along deal arcs *)
  | Claim of { arc : int; votes : vote_body Xcrypto.Auth.signed list }
      (** payee → escrow: full vote set redeems the leg (timelock proto) *)
  | Paid of { arc : int }  (** escrow → payee *)
  | Refund of { arc : int }  (** escrow → payer *)
  | Cb_vote of vote_body Xcrypto.Auth.signed  (** party → certified chain *)
  | Cb_cert of cb_body Xcrypto.Auth.signed
      (** certified chain → everyone: commit or abort *)

let tag = function
  | Deposit _ -> "deposit"
  | Escrowed_notice _ -> "escrowed"
  | Votes _ -> "votes"
  | Claim _ -> "claim"
  | Paid _ -> "paid"
  | Refund _ -> "refund"
  | Cb_vote _ -> "cb-vote"
  | Cb_cert _ -> "cb-cert"

let ser_vote (v : vote_body) = Printf.sprintf "dvote|%d|%d" v.v_party v.v_deal
let ser_cb (c : cb_body) = Printf.sprintf "dcb|%d|%b" c.c_deal c.c_commit

let pp ppf m =
  match m with
  | Votes vs -> Fmt.pf ppf "votes{%d}" (List.length vs)
  | Claim { arc; votes } -> Fmt.pf ppf "claim(arc %d, %d votes)" arc (List.length votes)
  | Cb_cert sv ->
      Fmt.pf ppf "cb-%s" (if sv.Xcrypto.Auth.payload.c_commit then "commit" else "abort")
  | m -> Fmt.string ppf (tag m)
