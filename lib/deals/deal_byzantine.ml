open Sim
module E = Engine
module Auth = Xcrypto.Auth

type t =
  | Freeloader
  | Forged_votes
  | Premature_claim
  | Double_claim
  | Vote_hoarder
  | Lazy_claim

let name = function
  | Freeloader -> "freeloader"
  | Forged_votes -> "forged-votes"
  | Premature_claim -> "premature-claim"
  | Double_claim -> "double-claim"
  | Vote_hoarder -> "vote-hoarder"
  | Lazy_claim -> "lazy-claim"

let deal_id = 1
let party_pid p = p
let arc_pid (cfg : Deal_runner.config) k = Deal.parties cfg.Deal_runner.deal + k
let cb_pid (cfg : Deal_runner.config) =
  Deal.parties cfg.Deal_runner.deal + Deal.arc_count cfg.Deal_runner.deal

let indexed_arcs (cfg : Deal_runner.config) =
  List.mapi (fun k a -> (k, a)) (Deal.arcs cfg.Deal_runner.deal)

let my_incoming cfg p =
  List.filter (fun (_, a) -> a.Deal.to_ = p) (indexed_arcs cfg)

let my_vote signer p =
  Auth.sign_value signer ~ser:Dmsg.ser_vote { Dmsg.v_party = p; v_deal = deal_id }

(* Votes, gossips, never deposits: the attack the HLS phase order exists to
   stop. With the phase discipline in place, its downstream party never
   votes, so it can never assemble a claimable vote set. *)
let freeloader (cfg : Deal_runner.config) ~signer ~party =
  let deal = cfg.Deal_runner.deal in
  let known : (int, Dmsg.vote_body Auth.signed) Hashtbl.t = Hashtbl.create 8 in
  let claimed = ref false in
  let succs = Deal.successors deal party in
  let gossip ctx =
    let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
    List.iter (fun q -> E.send ctx ~dst:(party_pid q) (Dmsg.Votes votes)) succs
  in
  let try_claim ctx =
    let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
    if (not !claimed) && Hashtbl.length known = Deal.parties deal then begin
      claimed := true;
      List.iter
        (fun (k, _) -> E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes }))
        (my_incoming cfg party)
    end
  in
  {
    E.on_start =
      (fun ctx ->
        (* vote immediately, deposit never *)
        Hashtbl.add known party (my_vote signer party);
        E.observe ctx (Dobs.Voted { party });
        (match cfg.Deal_runner.protocol with
        | Deal_runner.Timelock -> gossip ctx
        | Deal_runner.Cbc ->
            E.send ctx ~dst:(cb_pid cfg) (Dmsg.Cb_vote (my_vote signer party))));
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Dmsg.Votes votes when src < Deal.parties deal ->
            List.iter
              (fun (sv : Dmsg.vote_body Auth.signed) ->
                Hashtbl.replace known sv.Auth.author sv)
              votes;
            gossip ctx;
            if cfg.Deal_runner.protocol = Deal_runner.Timelock then try_claim ctx
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* Claims every incoming leg right away with fabricated signatures. *)
let forged_votes (cfg : Deal_runner.config) ~party =
  let deal = cfg.Deal_runner.deal in
  {
    E.on_start =
      (fun ctx ->
        let fake =
          List.init (Deal.parties deal) (fun q ->
              Auth.forge_value ~author:q { Dmsg.v_party = q; v_deal = deal_id })
        in
        List.iter
          (fun (k, _) ->
            E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes = fake }))
          (my_incoming cfg party));
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* Plays honestly except that it claims as soon as it has any votes at all. *)
let premature_claim (cfg : Deal_runner.config) ~signer ~party =
  let collected : (int, Dmsg.vote_body Auth.signed) Hashtbl.t = Hashtbl.create 8 in
  {
    E.on_start =
      (fun ctx ->
        Hashtbl.add collected party (my_vote signer party);
        let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) collected [] in
        List.iter
          (fun (k, _) ->
            E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes }))
          (my_incoming cfg party));
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* Plays the honest protocol (deposits, phase-ordered voting, gossip) but
   submits every claim twice — the ledger's single-resolution rule must
   make the duplicates no-ops. *)
let double_claim (cfg : Deal_runner.config) ~registry ~signer ~party =
  let deal = cfg.Deal_runner.deal in
  let my_out = List.filter (fun (_, a) -> a.Deal.from_ = party) (indexed_arcs cfg) in
  let my_in = my_incoming cfg party in
  let known : (int, Dmsg.vote_body Auth.signed) Hashtbl.t = Hashtbl.create 8 in
  let escrowed_in : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let voted = ref false in
  let succs = Deal.successors deal party in
  let gossip ctx =
    let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
    List.iter (fun q -> E.send ctx ~dst:(party_pid q) (Dmsg.Votes votes)) succs
  in
  let full ctx =
    if Hashtbl.length known = Deal.parties deal then begin
      let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
      List.iter
        (fun (k, _) ->
          (* the deviation: every claim goes out twice *)
          E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes });
          E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes }))
        my_in
    end
  in
  let maybe_vote ctx =
    if
      (not !voted)
      && List.for_all (fun (k, _) -> Hashtbl.mem escrowed_in k) my_in
    then begin
      voted := true;
      Hashtbl.add known party (my_vote signer party);
      E.observe ctx (Dobs.Voted { party });
      gossip ctx;
      full ctx
    end
  in
  ignore registry;
  {
    E.on_start =
      (fun ctx ->
        List.iter
          (fun (k, _) -> E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Deposit { arc = k }))
          my_out;
        maybe_vote ctx);
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Dmsg.Escrowed_notice { arc }
          when List.exists (fun (k, _) -> k = arc) my_in
               && src = arc_pid cfg arc ->
            Hashtbl.replace escrowed_in arc ();
            maybe_vote ctx
        | Dmsg.Votes votes when src < Deal.parties deal && !voted ->
            List.iter
              (fun (sv : Dmsg.vote_body Auth.signed) ->
                Hashtbl.replace known sv.Auth.author sv)
              votes;
            gossip ctx;
            full ctx
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* Escrows and votes but never passes votes on. *)
let vote_hoarder (cfg : Deal_runner.config) ~signer ~party =
  let deal = cfg.Deal_runner.deal in
  let my_out = List.filter (fun (_, a) -> a.Deal.from_ = party) (indexed_arcs cfg) in
  {
    E.on_start =
      (fun ctx ->
        List.iter
          (fun (k, _) -> E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Deposit { arc = k }))
          my_out;
        E.observe ctx (Dobs.Voted { party });
        match cfg.Deal_runner.protocol with
        | Deal_runner.Timelock ->
            (* cast the vote to successors once, then hoard everything *)
            List.iter
              (fun q ->
                E.send ctx ~dst:(party_pid q) (Dmsg.Votes [ my_vote signer party ]))
              (Deal.successors deal party)
        | Deal_runner.Cbc ->
            E.send ctx ~dst:(cb_pid cfg) (Dmsg.Cb_vote (my_vote signer party)));
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* Honest phase-ordered behaviour, except claims are deferred to the last
   moment of the timelock window. *)
let lazy_claim (cfg : Deal_runner.config) ~signer ~party =
  let deal = cfg.Deal_runner.deal in
  let my_out = List.filter (fun (_, a) -> a.Deal.from_ = party) (indexed_arcs cfg) in
  let my_in = my_incoming cfg party in
  let known : (int, Dmsg.vote_body Auth.signed) Hashtbl.t = Hashtbl.create 8 in
  let escrowed_in : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let voted = ref false in
  let claimed = ref false in
  let succs = Deal.successors deal party in
  let gossip ctx =
    let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
    List.iter (fun q -> E.send ctx ~dst:(party_pid q) (Dmsg.Votes votes)) succs
  in
  let late =
    (* aim just inside the window (measured from the escrow notice, which
       trails the deposit by about one hop): late enough that the on-chain
       reveal of this claim reaches the upstream payer only around her own
       expiry *)
    let step = Sim_time.add cfg.Deal_runner.delta cfg.Deal_runner.sigma in
    Sim_time.sub (Deal_runner.claim_window cfg) (Sim_time.scale step ~num:2 ~den:1)
  in
  let maybe_vote ctx =
    if
      (not !voted)
      && List.for_all (fun (k, _) -> Hashtbl.mem escrowed_in k) my_in
    then begin
      voted := true;
      Hashtbl.add known party (my_vote signer party);
      E.observe ctx (Dobs.Voted { party });
      gossip ctx;
      (match cfg.Deal_runner.protocol with
      | Deal_runner.Cbc ->
          E.send ctx ~dst:(cb_pid cfg) (Dmsg.Cb_vote (my_vote signer party))
      | Deal_runner.Timelock -> ());
      if my_in <> [] then E.set_timer_after ctx ~after:late ~label:"lazy"
    end
  in
  {
    E.on_start =
      (fun ctx ->
        List.iter
          (fun (k, _) -> E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Deposit { arc = k }))
          my_out;
        maybe_vote ctx);
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Dmsg.Escrowed_notice { arc }
          when List.exists (fun (k, _) -> k = arc) my_in
               && src = arc_pid cfg arc ->
            Hashtbl.replace escrowed_in arc ();
            maybe_vote ctx
        | Dmsg.Votes votes ->
            List.iter
              (fun (sv : Dmsg.vote_body Auth.signed) ->
                Hashtbl.replace known sv.Auth.author sv)
              votes;
            if !voted then gossip ctx
        | _ -> ());
    on_timer =
      (fun ctx ~label ->
        if
          String.equal label "lazy"
          && (not !claimed)
          && Hashtbl.length known = Deal.parties deal
        then begin
          claimed := true;
          let votes = Hashtbl.fold (fun _ sv acc -> sv :: acc) known [] in
          List.iter
            (fun (k, _) ->
              E.send ctx ~dst:(arc_pid cfg k) (Dmsg.Claim { arc = k; votes }))
            my_in
        end);
  }

let handlers cfg ~registry ~signer ~party strategy =
  ignore registry;
  match strategy with
  | Freeloader -> freeloader cfg ~signer ~party
  | Forged_votes -> forged_votes cfg ~party
  | Premature_claim -> premature_claim cfg ~signer ~party
  | Double_claim -> double_claim cfg ~registry ~signer ~party
  | Vote_hoarder -> vote_hoarder cfg ~signer ~party
  | Lazy_claim -> lazy_claim cfg ~signer ~party

let run_with_faults cfg ~faults =
  let compliant = Array.copy cfg.Deal_runner.compliant in
  List.iter (fun (p, _) -> compliant.(p) <- false) faults;
  let cfg = { cfg with Deal_runner.compliant } in
  Deal_runner.run
    ~substitute:(fun ~party ~registry ~signer ->
      match List.assoc_opt party faults with
      | Some strategy -> Some (handlers cfg ~registry ~signer ~party strategy)
      | None ->
          if compliant.(party) then None else Some E.silent)
    cfg
