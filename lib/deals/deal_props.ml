type verdict = { property : string; holds : bool; detail : string }

let safety (outcome : Deal_runner.outcome) =
  let cfg = outcome.Deal_runner.config in
  let deal = cfg.Deal_runner.deal in
  let bad =
    List.find_map
      (fun p ->
        if not cfg.Deal_runner.compliant.(p) then None
        else
          let gained = Deal_runner.gained outcome p in
          let lost = Deal_runner.lost outcome p in
          if Deal.acceptable deal p ~gained ~lost then None
          else
            Some
              (Fmt.str "party %d: gained %a, lost %a — unacceptable" p
                 Ledger.Asset.Bag.pp gained Ledger.Asset.Bag.pp lost))
      (List.init (Deal.parties deal) Fun.id)
  in
  match bad with
  | None -> { property = "Safety"; holds = true; detail = "all payoffs acceptable" }
  | Some detail -> { property = "Safety"; holds = false; detail }

let termination (outcome : Deal_runner.outcome) =
  let cfg = outcome.Deal_runner.config in
  let stuck =
    List.filter
      (fun (_, party) -> cfg.Deal_runner.compliant.(party))
      (Deal_runner.escrowed_forever outcome)
  in
  match stuck with
  | [] ->
      {
        property = "Termination";
        holds = true;
        detail = "no compliant asset left in escrow";
      }
  | (k, p) :: _ ->
      {
        property = "Termination";
        holds = false;
        detail = Fmt.str "arc %d still holds party %d's asset" k p;
      }

let strong_liveness (outcome : Deal_runner.outcome) =
  let cfg = outcome.Deal_runner.config in
  let deal = cfg.Deal_runner.deal in
  if not (Array.for_all Fun.id cfg.Deal_runner.compliant) then
    {
      property = "StrongLiveness";
      holds = true;
      detail = "vacuous: not all parties compliant";
    }
  else
    let missing =
      List.find_map
        (fun p ->
          let gained = Deal_runner.gained outcome p in
          if Ledger.Asset.Bag.geq gained (Deal.expected_gain deal p) then None
          else Some (Fmt.str "party %d did not receive all transfers" p))
        (List.init (Deal.parties deal) Fun.id)
    in
    match missing with
    | None ->
        { property = "StrongLiveness"; holds = true; detail = "all transfers happened" }
    | Some detail -> { property = "StrongLiveness"; holds = false; detail }

let all outcome = [ safety outcome; termination outcome; strong_liveness outcome ]
let all_hold = List.for_all (fun v -> v.holds)

let pp ppf v =
  Fmt.pf ppf "%-14s %-8s %s" v.property
    (if v.holds then "ok" else "VIOLATED")
    v.detail
