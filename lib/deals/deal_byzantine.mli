(** Byzantine strategies for cross-chain deal parties.

    HLS's Safety property is per-party unconditional: "for {e every}
    protocol execution, every compliant party ends up with an acceptable
    payoff" — no matter what the other parties do. These strategies
    exercise that claim beyond simple silence (which {!Deal_runner}'s
    [compliant] array already models):

    - {!Freeloader}: votes and gossips but never escrows its outgoing
      legs, hoping to collect incoming transfers for free;
    - {!Forged_votes}: claims its incoming legs immediately with a vote
      set padded by forged signatures;
    - {!Premature_claim}: claims with whatever (incomplete) genuine votes
      it has gathered;
    - {!Double_claim}: claims every incoming leg twice (exercises the
      ledger's single-resolution guarantee);
    - {!Vote_hoarder}: escrows and votes but never gossips votes onward,
      starving downstream parties of the set they need (a liveness
      attack that must not become a safety one — the on-chain reveal of
      claimed proofs routes around it in well-formed deals);
    - {!Lazy_claim}: honest except that it claims at the last moment of
      the timelock window. In a strongly connected deal this hurts nobody
      (every party assembles the vote set by forward gossip, on its own
      schedule); in the broker DAG it defeats the reveal cascade and
      breaks Safety for the compliant broker — the sharp edge of HLS's
      well-formedness hypothesis.

    Each strategy produces engine handlers substituted for the party's
    honest ones by {!run_with_faults}. *)

type t =
  | Freeloader
  | Forged_votes
  | Premature_claim
  | Double_claim
  | Vote_hoarder
  | Lazy_claim

val name : t -> string

val handlers :
  Deal_runner.config ->
  registry:Xcrypto.Auth.registry ->
  signer:Xcrypto.Auth.signer ->
  party:int ->
  t ->
  (Dmsg.t, Dobs.t) Sim.Engine.handlers

val run_with_faults :
  Deal_runner.config -> faults:(int * t) list -> Deal_runner.outcome
(** Like {!Deal_runner.run} but substituting the given strategies. Faulty
    parties are also marked non-compliant in the outcome's config, so the
    property monitors condition on them correctly. *)
