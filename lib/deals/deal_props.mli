(** Monitors for the three HLS cross-chain-deal properties (§5):

    - {b Safety}: for every protocol execution, every compliant party ends
      up with an acceptable payoff;
    - {b Termination}: no asset belonging to a compliant party is escrowed
      forever (the paper renames HLS's "weak liveness" to Termination to
      avoid clashing with its own weak liveness — we follow the paper);
    - {b Strong liveness}: if all parties are compliant and willing, all
      transfers happen. *)

type verdict = { property : string; holds : bool; detail : string }

val safety : Deal_runner.outcome -> verdict
val termination : Deal_runner.outcome -> verdict
val strong_liveness : Deal_runner.outcome -> verdict
(** Reported as holding vacuously when some party is non-compliant. *)

val all : Deal_runner.outcome -> verdict list
val all_hold : verdict list -> bool
val pp : Format.formatter -> verdict -> unit
