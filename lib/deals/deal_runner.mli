(** Execute a cross-chain deal under the timelock or certified-blockchain
    commit protocol of Herlihy–Liskov–Shrira (§5 of the paper).

    Process layout: parties get pids [0 .. p-1]; each arc gets its own
    escrow blockchain process at pid [p + arc_index]; the certified
    blockchain — present only for {!Cbc} — is the last pid.

    {b Timelock commit} (requires synchrony): parties sign commit votes and
    gossip them along deal arcs; a payee redeems an incoming leg by
    presenting the complete vote set to the leg's escrow before its
    timelock (sized from the deal's diameter and the drift bound) expires;
    unredeemed legs refund at the deadline.

    {b Certified blockchain commit} (partial synchrony): votes go to a
    certifying blockchain, which issues a single signed commit certificate
    once all votes are in, or an abort certificate when its patience runs
    out; escrows resolve only on certificates, so no honest asset is ever
    lost to a timeout race — but strong liveness is surrendered, exactly as
    §5 states. *)

type commit_protocol = Timelock | Cbc

type config = {
  deal : Deal.t;
  protocol : commit_protocol;
  compliant : bool array;  (** per party; non-compliant parties stay silent *)
  delta : Sim.Sim_time.t;
  sigma : Sim.Sim_time.t;
  drift_ppm : int;
  gst : Sim.Sim_time.t option;  (** None = synchronous network *)
  cb_patience : Sim.Sim_time.t;  (** CBC: certifier aborts after this *)
  fault_plan : Faults.Fault_plan.t option;
      (** environment faults (lossy links, crashes, partitions, GST
          jitter), interpreted deterministically from [seed + 47]; [None]
          (the default) keeps the paper's reliable channels *)
  seed : int;
  max_events : int;
}

val default_config : Deal.t -> commit_protocol -> config

type outcome = {
  config : config;
  status : Sim.Engine.status;
  trace : (Dmsg.t, Dobs.t) Sim.Trace.t;
  books : Ledger.Book.t array;  (** one per arc *)
  end_time : Sim.Sim_time.t;
  message_count : int;
}

val run :
  ?substitute:
    (party:int ->
    registry:Xcrypto.Auth.registry ->
    signer:Xcrypto.Auth.signer ->
    (Dmsg.t, Dobs.t) Sim.Engine.handlers option) ->
  config ->
  outcome
(** [substitute] replaces a party's honest handlers (used by
    {!Deal_byzantine}); [None] keeps the honest/compliant behaviour. *)

val claim_window : config -> Sim.Sim_time.t
(** The (uniform) timelock each leg's escrow applies from its deposit. *)

val gained : outcome -> Deal.party -> Ledger.Asset.Bag.t
(** Assets actually received by the party across all incoming arcs. *)

val lost : outcome -> Deal.party -> Ledger.Asset.Bag.t
(** Assets definitively parted with (released to the payee). *)

val escrowed_forever : outcome -> (int * Deal.party) list
(** Arcs whose deposit was still unresolved at the end, with the depositor
    — termination violations. *)
