(** Observations emitted by deal protocol participants. *)

type t =
  | Escrowed of { arc : int; party : int; asset : Ledger.Asset.t }
  | Paid_out of { arc : int; to_ : int; asset : Ledger.Asset.t }
  | Refunded of { arc : int; to_ : int; asset : Ledger.Asset.t }
  | Voted of { party : int }
  | Cb_decided of { commit : bool }
  | Terminated of { pid : int; outcome : string }
  | Rejected of { pid : int; what : string }

let pp ppf = function
  | Escrowed { arc; party; asset } ->
      Fmt.pf ppf "escrowed(arc %d, by %d, %a)" arc party Ledger.Asset.pp asset
  | Paid_out { arc; to_; asset } ->
      Fmt.pf ppf "paid(arc %d -> %d, %a)" arc to_ Ledger.Asset.pp asset
  | Refunded { arc; to_; asset } ->
      Fmt.pf ppf "refunded(arc %d -> %d, %a)" arc to_ Ledger.Asset.pp asset
  | Voted { party } -> Fmt.pf ppf "voted(%d)" party
  | Cb_decided { commit } ->
      Fmt.pf ppf "cb-decided(%s)" (if commit then "commit" else "abort")
  | Terminated { pid; outcome } -> Fmt.pf ppf "terminated(%d, %s)" pid outcome
  | Rejected { pid; what } -> Fmt.pf ppf "rejected(%d, %s)" pid what
