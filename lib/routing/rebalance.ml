type move = { node : int; from_edge : int; to_edge : int; amount : int }
type plan = { moves : move list; batches : move list list; volume : int }

let chunk n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let plan ?(band_pct = 25) ?(batch = 4) (topo : Topology.t) =
  let moves = ref [] in
  for u = 0 to topo.Topology.nodes - 1 do
    let out =
      List.filter
        (fun (_, (e : Topology.edge)) -> e.Topology.liquidity > 0)
        (Topology.out_edges topo u)
    in
    if List.length out >= 2 then begin
      let total =
        List.fold_left (fun acc (_, e) -> acc + e.Topology.liquidity) 0 out
      in
      let mean = total / List.length out in
      let band = mean * band_pct / 100 in
      let level = Array.of_list (List.map (fun (i, e) -> (i, e.Topology.liquidity)) out) in
      (* drain the richest edge into the poorest until both sit inside
         the band; first-index tie-breaks keep the plan deterministic *)
      let continue = ref true in
      while !continue do
        let rich = ref (-1) and poor = ref (-1) in
        Array.iteri
          (fun j (_, l) ->
            if l > mean + band && (!rich < 0 || l > snd level.(!rich)) then
              rich := j;
            if l < mean - band && (!poor < 0 || l < snd level.(!poor)) then
              poor := j)
          level;
        if !rich < 0 || !poor < 0 then continue := false
        else begin
          let ri, rl = level.(!rich) and pi, pl = level.(!poor) in
          let amount = Stdlib.min (rl - mean) (mean - pl) in
          if amount <= 0 then continue := false
          else begin
            level.(!rich) <- (ri, rl - amount);
            level.(!poor) <- (pi, pl + amount);
            moves := { node = u; from_edge = ri; to_edge = pi; amount } :: !moves
          end
        end
      done
    end
  done;
  let moves = List.rev !moves in
  {
    moves;
    batches = chunk (Stdlib.max 1 batch) moves;
    volume = List.fold_left (fun acc m -> acc + m.amount) 0 moves;
  }

let apply (topo : Topology.t) plan =
  let edges = Array.copy topo.Topology.edges in
  List.iter
    (fun m ->
      let f = edges.(m.from_edge) and t = edges.(m.to_edge) in
      edges.(m.from_edge) <-
        { f with Topology.liquidity = f.Topology.liquidity - m.amount };
      edges.(m.to_edge) <-
        { t with Topology.liquidity = t.Topology.liquidity + m.amount })
    plan.moves;
  { topo with Topology.edges = edges }

let move_to_string m =
  Printf.sprintf "node %d: %d -> %d amount %d" m.node m.from_edge m.to_edge
    m.amount

let pp ppf p =
  if p.moves = [] then Fmt.pf ppf "balanced: no moves proposed"
  else begin
    Fmt.pf ppf "@[<v>rebalance: %d move(s), volume %d, %d batch(es)@,"
      (List.length p.moves) p.volume (List.length p.batches);
    List.iteri
      (fun bi b ->
        Fmt.pf ppf "batch %d:@," bi;
        List.iter (fun m -> Fmt.pf ppf "  %s@," (move_to_string m)) b)
      p.batches;
    Fmt.pf ppf "@]"
  end
