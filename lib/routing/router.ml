type strategy = Shortest | Round_robin

let strategy_name = function
  | Shortest -> "shortest"
  | Round_robin -> "round-robin"

let strategy_of_string = function
  | "shortest" -> Ok Shortest
  | "round-robin" | "rr" -> Ok Round_robin
  | s -> Error (Printf.sprintf "unknown route strategy %S" s)

type split = { path : int list; value : int }

type t = {
  topo : Topology.t;
  strat : strategy;
  mutable cursor : int;  (** Round_robin: which candidate path leads *)
}

let create ?(strategy = Shortest) topo = { topo; strat = strategy; cursor = 0 }
let strategy t = t.strat
let topology t = t.topo

let path_nodes (topo : Topology.t) path =
  match path with
  | [] -> [ 0 ]
  | first :: _ ->
      topo.Topology.edges.(first).Topology.src
      :: List.map (fun i -> topo.Topology.edges.(i).Topology.dst) path

let leg_amounts (topo : Topology.t) ~path ~value =
  let arr = Array.of_list path in
  let n = Array.length arr in
  let amounts = Array.make (max n 1) 0 in
  (* leg i pays the value plus the commissions of every edge after i *)
  let suffix = ref 0 in
  for i = n - 1 downto 0 do
    amounts.(i) <- value + !suffix;
    suffix := !suffix + topo.Topology.edges.(arr.(i)).Topology.commission
  done;
  if n = 0 then [||] else amounts

let path_capacity (topo : Topology.t) ~avail path =
  let arr = Array.of_list path in
  let n = Array.length arr in
  if n = 0 then 0
  else begin
    let cap = ref Topology.unbounded in
    let suffix = ref 0 in
    for i = n - 1 downto 0 do
      let room = avail arr.(i) - !suffix in
      if room < !cap then cap := room;
      suffix := !suffix + topo.Topology.edges.(arr.(i)).Topology.commission
    done;
    !cap
  end

(* Cheapest usable source->sink path: total commission, then hop count,
   then lexicographic node sequence — a total order, so the choice is
   deterministic. Label-correcting search; optimal labels are simple
   paths (a cycle only adds hops and non-negative commission), so it
   terminates. *)
let best_path (topo : Topology.t) ~usable =
  let n = topo.Topology.nodes in
  let label = Array.make n None in
  (* (commission, hops, nodes fwd, edges rev) *)
  label.(0) <- Some (0, 0, [ 0 ], []);
  let better (c1, h1, ns1, _) (c2, h2, ns2, _) =
    c1 < c2 || (c1 = c2 && (h1 < h2 || (h1 = h2 && compare ns1 ns2 < 0)))
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    Array.iteri
      (fun i (e : Topology.edge) ->
        if usable i then
          match label.(e.Topology.src) with
          | None -> ()
          | Some (c, h, ns, es) ->
              let cand =
                (c + e.Topology.commission, h + 1, ns @ [ e.Topology.dst ],
                 i :: es)
              in
              let take =
                match label.(e.Topology.dst) with
                | None -> true
                | Some cur -> better cand cur
              in
              if take then begin
                label.(e.Topology.dst) <- Some cand;
                changed := true
              end)
      topo.Topology.edges
  done;
  match label.(Topology.sink topo) with
  | None -> None
  | Some (_, _, _, es) -> Some (List.rev es)

(* Candidate edge-disjoint paths with their value capacities, cost order.
   A cheapest path whose capacity is non-positive (commissions eat the
   liquidity) has its bottleneck edge dropped and the search retried, so
   a clogged cheap path never hides a usable pricier one. *)
let candidates (topo : Topology.t) ~avail ~max =
  let nedges = Array.length topo.Topology.edges in
  let removed = Array.make nedges false in
  let out = ref [] in
  let found = ref 0 in
  let guard = ref (nedges + max + 2) in
  let continue = ref true in
  while !continue && !found < max && !guard > 0 do
    decr guard;
    let usable i = (not removed.(i)) && avail i >= 1 in
    match best_path topo ~usable with
    | None -> continue := false
    | Some path ->
        let cap = path_capacity topo ~avail path in
        if cap >= 1 then begin
          out := (path, cap) :: !out;
          incr found;
          List.iter (fun i -> removed.(i) <- true) path
        end
        else begin
          (* drop the tightest leg (first minimum) and retry *)
          let arr = Array.of_list path in
          let n = Array.length arr in
          let worst = ref 0 and worst_room = ref max_int in
          let suffix = ref 0 in
          for i = n - 1 downto 0 do
            let room = avail arr.(i) - !suffix in
            if room <= !worst_room then begin
              worst_room := room;
              worst := arr.(i)
            end;
            suffix :=
              !suffix + topo.Topology.edges.(arr.(i)).Topology.commission
          done;
          removed.(!worst) <- true
        end
  done;
  List.rev !out

let paths topo ?avail ~max () =
  let avail =
    match avail with
    | Some f -> f
    | None -> fun i -> Topology.capacity topo.Topology.edges.(i)
  in
  List.map fst (candidates topo ~avail ~max)

let rotate n l =
  if l = [] then l
  else
    let n = n mod List.length l in
    let rec go k acc = function
      | rest when k = 0 -> rest @ List.rev acc
      | x :: rest -> go (k - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    go n [] l

let route t ~avail ~value ~max_splits =
  if value < 1 then invalid_arg "Router.route: value must be positive";
  if max_splits < 1 then invalid_arg "Router.route: max_splits must be >= 1";
  let cands = candidates t.topo ~avail ~max:max_splits in
  let total_cap = List.fold_left (fun acc (_, c) -> acc + c) 0 cands in
  if total_cap < value then
    Error
      (Printf.sprintf
         "no route: %d disjoint path(s) carry at most %d of %d"
         (List.length cands) total_cap value)
  else begin
    let splits =
      match t.strat with
      | Shortest ->
          (* greedy: fill the cheapest path first *)
          let remaining = ref value in
          List.filter_map
            (fun (path, cap) ->
              if !remaining = 0 then None
              else begin
                let v = min cap !remaining in
                remaining := !remaining - v;
                Some { path; value = v }
              end)
            cands
      | Round_robin ->
          (* deal rotating quanta so every path carries a fair share *)
          let cands = Array.of_list (rotate t.cursor cands) in
          let n = Array.length cands in
          let spare = Array.map snd cands in
          let given = Array.make n 0 in
          let remaining = ref value in
          while !remaining > 0 do
            let live = ref 0 in
            Array.iter (fun s -> if s > 0 then incr live) spare;
            let quantum = Stdlib.max 1 (!remaining / Stdlib.max 1 !live) in
            for i = 0 to n - 1 do
              if !remaining > 0 && spare.(i) > 0 then begin
                let g = Stdlib.min spare.(i) (Stdlib.min !remaining quantum) in
                given.(i) <- given.(i) + g;
                spare.(i) <- spare.(i) - g;
                remaining := !remaining - g
              end
            done
          done;
          t.cursor <- t.cursor + 1;
          Array.to_list
            (Array.mapi (fun i (path, _) -> { path; value = given.(i) }) cands)
          |> List.filter (fun s -> s.value > 0)
    in
    Ok splits
  end

let max_flow (topo : Topology.t) ?avail () =
  let cap_of =
    match avail with
    | Some f -> f
    | None -> fun i -> Topology.capacity topo.Topology.edges.(i)
  in
  let nedges = Array.length topo.Topology.edges in
  let residual = Array.init nedges cap_of in
  let back = Array.make nedges 0 in
  let src = Topology.source topo and dst = Topology.sink topo in
  let flow = ref 0 in
  let continue = ref true in
  while !continue && !flow < Topology.unbounded do
    (* BFS over residual capacities, edges in index order for determinism *)
    let pred = Array.make topo.Topology.nodes None in
    let q = Queue.create () in
    Queue.add src q;
    let seen = Array.make topo.Topology.nodes false in
    seen.(src) <- true;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iteri
        (fun i (e : Topology.edge) ->
          let try_step v via_fwd =
            if not seen.(v) then begin
              seen.(v) <- true;
              pred.(v) <- Some (i, via_fwd);
              Queue.add v q
            end
          in
          if e.Topology.src = u && residual.(i) > 0 then
            try_step e.Topology.dst true
          else if e.Topology.dst = u && back.(i) > 0 then
            try_step e.Topology.src false)
        topo.Topology.edges
    done;
    match pred.(dst) with
    | None -> continue := false
    | Some _ ->
        (* walk back to find the bottleneck, then apply it *)
        let aug = ref Topology.unbounded in
        let v = ref dst in
        while !v <> src do
          match pred.(!v) with
          | None -> assert false
          | Some (i, fwd) ->
              let r = if fwd then residual.(i) else back.(i) in
              if r < !aug then aug := r;
              v :=
                (if fwd then topo.Topology.edges.(i).Topology.src
                 else topo.Topology.edges.(i).Topology.dst)
        done;
        let v = ref dst in
        while !v <> src do
          match pred.(!v) with
          | None -> assert false
          | Some (i, fwd) ->
              if fwd then begin
                residual.(i) <- residual.(i) - !aug;
                back.(i) <- back.(i) + !aug;
                v := topo.Topology.edges.(i).Topology.src
              end
              else begin
                back.(i) <- back.(i) - !aug;
                residual.(i) <- residual.(i) + !aug;
                v := topo.Topology.edges.(i).Topology.dst
              end
        done;
        flow := !flow + !aug
  done;
  Stdlib.min !flow Topology.unbounded
