(** Source-to-sink path selection under per-escrow liquidity.

    The router answers one question per payment: which edge-disjoint
    source→sink paths carry it, and how much value rides each path. A
    {e split} is one path plus the value assigned to it; each split runs
    as an independent protocol instance (see {!Traffic.Load}), so a
    payment too large for any single path can still commit by splitting.

    Leg amounts include downstream commissions exactly like the paper's
    linear chain: on a path [e0 .. e(L-1)] carrying value [v], leg [i]
    moves [v + sum of commissions of e(i+1) .. e(L-1)]. A path's value
    capacity is therefore [min over i (avail(ei) - downstream commissions
    at i)], not the raw liquidity minimum.

    Two strategies, both deterministic:

    - {!Shortest}: fill the cheapest usable path (total commission, then
      hop count, then lexicographic node order) to capacity, then the
      next, greedily.
    - {!Round_robin}: collect up to [max_splits] disjoint usable paths in
      cost order, then deal value over them in rotating quanta — the
      cardano-wallet RoundRobin idea of giving every bucket a fair share
      per round, with a per-router cursor rotating which path leads each
      payment.

    Routing is all-or-nothing: if the disjoint paths found cannot jointly
    carry the full value, the route fails and nothing is reserved. *)

type strategy = Shortest | Round_robin

val strategy_name : strategy -> string
(** ["shortest"] / ["round-robin"]. *)

val strategy_of_string : string -> (strategy, string) result

type split = {
  path : int list;  (** edge indices, source first *)
  value : int;  (** value assigned to this path; [> 0] *)
}

type t
(** A stateful router over one topology ({!Round_robin} keeps a rotation
    cursor); liquidity is the caller's, supplied per call via [avail]. *)

val create : ?strategy:strategy -> Topology.t -> t
(** Default {!Shortest}. *)

val strategy : t -> strategy
val topology : t -> Topology.t

val route :
  t -> avail:(int -> int) -> value:int -> max_splits:int ->
  (split list, string) result
(** [avail i] is the spendable liquidity of edge [i] right now. On
    success the splits are edge-disjoint, each carries positive value,
    and their values sum to exactly [value]. *)

val path_nodes : Topology.t -> int list -> int list
(** The node sequence a path visits, source first. *)

val leg_amounts : Topology.t -> path:int list -> value:int -> int array
(** [amounts.(i)] = value plus the commissions of every later edge — what
    the customer at position [i] pays into escrow [i]. *)

val path_capacity : Topology.t -> avail:(int -> int) -> int list -> int
(** Largest value the path can carry under [avail], commissions included.
    May be <= 0 when commissions exceed the available liquidity. *)

val paths : Topology.t -> ?avail:(int -> int) -> max:int -> unit -> int list list
(** Up to [max] edge-disjoint usable paths in cost order — the candidate
    set both strategies draw from ([avail] defaults to full liquidity). *)

val max_flow : Topology.t -> ?avail:(int -> int) -> unit -> int
(** The Edmonds–Karp max source→sink flow over edge capacities — an upper
    bound on simultaneously in-flight value (commissions ignored).
    >= {!Topology.unbounded} means effectively unbounded. *)
