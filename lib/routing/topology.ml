type edge = { src : int; dst : int; liquidity : int; commission : int }
type t = { nodes : int; edges : edge array }

let source _ = 0
let sink t = t.nodes - 1
let unbounded = max_int / 8
let capacity e = if e.liquidity = 0 then unbounded else e.liquidity

let compare_edge a b =
  match compare a.src b.src with 0 -> compare a.dst b.dst | c -> c

let normalize t =
  let edges = Array.copy t.edges in
  Array.sort compare_edge edges;
  { t with edges }

let out_edges t u =
  let acc = ref [] in
  Array.iteri (fun i e -> if e.src = u then acc := (i, e) :: !acc) t.edges;
  List.rev !acc

let reachable t =
  (* forward BFS from the source over the edge set *)
  let seen = Array.make t.nodes false in
  let q = Queue.create () in
  seen.(0) <- true;
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun e ->
        if e.src = u && not seen.(e.dst) then begin
          seen.(e.dst) <- true;
          Queue.add e.dst q
        end)
      t.edges
  done;
  seen

let validate t =
  let err fmt = Fmt.kstr Result.error fmt in
  if t.nodes < 2 then err "topology wants at least 2 nodes"
  else if Array.length t.edges = 0 then err "topology wants at least one edge"
  else begin
    let bad = ref None in
    Array.iter
      (fun e ->
        if !bad = None then
          if e.src < 0 || e.src >= t.nodes || e.dst < 0 || e.dst >= t.nodes
          then bad := Some (Printf.sprintf "edge %d>%d out of range" e.src e.dst)
          else if e.src = e.dst then
            bad := Some (Printf.sprintf "self-loop %d>%d" e.src e.dst)
          else if e.liquidity < 0 then
            bad := Some (Printf.sprintf "edge %d>%d: negative liquidity" e.src e.dst)
          else if e.commission < 0 then
            bad := Some (Printf.sprintf "edge %d>%d: negative commission" e.src e.dst))
      t.edges;
    match !bad with
    | Some m -> Error m
    | None ->
        let dup = ref None in
        let seen = Hashtbl.create 16 in
        Array.iter
          (fun e ->
            if Hashtbl.mem seen (e.src, e.dst) then
              dup := Some (Printf.sprintf "duplicate edge %d>%d" e.src e.dst)
            else Hashtbl.add seen (e.src, e.dst) ())
          t.edges;
        (match !dup with
        | Some m -> Error m
        | None ->
            if not (reachable t).(sink t) then
              err "sink %d is unreachable from source 0" (sink t)
            else Ok ())
  end

let to_string t =
  let t = normalize t in
  let b = Buffer.create 64 in
  Printf.bprintf b "graph:%d;" t.nodes;
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%d>%d:%d:%d" e.src e.dst e.liquidity e.commission)
    t.edges;
  Buffer.contents b

(* --------------------------- generator families --------------------------- *)

let linear ~hops ~liquidity ~commission =
  {
    nodes = hops + 1;
    edges =
      Array.init hops (fun i ->
          { src = i; dst = i + 1; liquidity; commission });
  }

(* Hub node is 1 (the source stays 0 and the sink stays the last node, by
   the global convention); every other node is a spoke. *)
let hub ~spokes ~liquidity ~commission =
  let nodes = spokes + 1 in
  let spoke_list =
    List.filter (fun s -> s <> 1) (List.init nodes (fun i -> i))
  in
  let edges =
    List.concat_map
      (fun s ->
        [
          { src = s; dst = 1; liquidity; commission };
          { src = 1; dst = s; liquidity; commission };
        ])
      spoke_list
  in
  { nodes; edges = Array.of_list edges }

let erdos_renyi ~nodes ~extra ~seed ~liquidity ~commission =
  let rng = Sim.Rng.create ~seed in
  let present = Hashtbl.create 16 in
  let edges = ref [] in
  let add src dst =
    if src <> dst && not (Hashtbl.mem present (src, dst)) then begin
      Hashtbl.add present (src, dst) ();
      edges := { src; dst; liquidity; commission } :: !edges;
      true
    end
    else false
  in
  (* chain backbone guarantees the sink stays reachable *)
  for i = 0 to nodes - 2 do
    ignore (add i (i + 1))
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  let max_extra = (nodes * (nodes - 1)) - (nodes - 1) in
  let want = min extra max_extra in
  while !added < want && !attempts < 100 * (want + 1) do
    incr attempts;
    let u = Sim.Rng.int rng nodes in
    let v = Sim.Rng.int rng nodes in
    if add u v then incr added
  done;
  { nodes; edges = Array.of_list !edges }

let scale_free ~nodes ~degree ~seed ~liquidity ~commission =
  let rng = Sim.Rng.create ~seed in
  let present = Hashtbl.create 16 in
  let deg = Array.make nodes 0 in
  let edges = ref [] in
  let add src dst =
    if src <> dst && not (Hashtbl.mem present (src, dst)) then begin
      Hashtbl.add present (src, dst) ();
      edges := { src; dst; liquidity; commission } :: !edges;
      deg.(src) <- deg.(src) + 1;
      deg.(dst) <- deg.(dst) + 1
    end
  in
  for j = 1 to nodes - 1 do
    let targets = min degree j in
    let chosen = ref [] in
    let tries = ref 0 in
    while List.length !chosen < targets && !tries < 50 * (targets + 1) do
      incr tries;
      (* preferential attachment: draw earlier nodes weighted by degree+1 *)
      let total = ref 0 in
      for u = 0 to j - 1 do
        if not (List.mem u !chosen) then total := !total + deg.(u) + 1
      done;
      if !total > 0 then begin
        let r = Sim.Rng.int rng !total in
        let acc = ref 0 and pick = ref (-1) in
        for u = 0 to j - 1 do
          if !pick < 0 && not (List.mem u !chosen) then begin
            acc := !acc + deg.(u) + 1;
            if r < !acc then pick := u
          end
        done;
        if !pick >= 0 then chosen := !pick :: !chosen
      end
    done;
    List.iter
      (fun u ->
        add u j;
        add j u)
      !chosen
  done;
  { nodes; edges = Array.of_list !edges }

(* -------------------------------- parsing -------------------------------- *)

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s wants an integer, got %S" what s)

let parse_liq_comm what rest =
  let ( let* ) = Result.bind in
  match rest with
  | [] -> Ok (0, 10)
  | [ l ] ->
      let* l = parse_int (what ^ " liquidity") l in
      Ok (l, 10)
  | [ l; c ] ->
      let* l = parse_int (what ^ " liquidity") l in
      let* c = parse_int (what ^ " commission") c in
      Ok (l, c)
  | _ -> Error (Printf.sprintf "too many %s parameters" what)

let parse_edge s =
  let ( let* ) = Result.bind in
  match String.index_opt s '>' with
  | None -> Error (Printf.sprintf "edge %S wants U>V:LIQ:COMM" s)
  | Some i -> (
      let u = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.split_on_char ':' rest with
      | v :: tail when List.length tail <= 2 ->
          let* src = parse_int "edge source" u in
          let* dst = parse_int "edge target" v in
          let* liquidity, commission = parse_liq_comm "edge" tail in
          Ok { src; dst; liquidity; commission }
      | _ -> Error (Printf.sprintf "edge %S wants U>V:LIQ:COMM" s))

let of_string s =
  let ( let* ) = Result.bind in
  let* t =
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "unrecognised topology %S" s)
    | Some i -> (
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match kind with
        | "graph" -> (
            match String.index_opt rest ';' with
            | None -> Error "graph wants NODES;EDGE,EDGE,..."
            | Some j ->
                let* nodes = parse_int "graph nodes" (String.sub rest 0 j) in
                let edges_s =
                  String.sub rest (j + 1) (String.length rest - j - 1)
                in
                let* edges =
                  List.fold_left
                    (fun acc e ->
                      let* acc = acc in
                      let* e = parse_edge e in
                      Ok (e :: acc))
                    (Ok [])
                    (String.split_on_char ',' edges_s
                    |> List.filter (fun e -> e <> ""))
                in
                Ok { nodes; edges = Array.of_list (List.rev edges) })
        | "linear" -> (
            match String.split_on_char ':' rest with
            | h :: tail when List.length tail <= 2 ->
                let* hops = parse_int "linear hops" h in
                if hops < 1 then Error "linear wants hops >= 1"
                else
                  let* liquidity, commission = parse_liq_comm "linear" tail in
                  Ok (linear ~hops ~liquidity ~commission)
            | _ -> Error "linear wants HOPS[:LIQ[:COMM]]")
        | "hub" -> (
            match String.split_on_char ':' rest with
            | k :: tail when List.length tail <= 2 ->
                let* spokes = parse_int "hub spokes" k in
                if spokes < 2 then Error "hub wants spokes >= 2"
                else
                  let* liquidity, commission = parse_liq_comm "hub" tail in
                  Ok (hub ~spokes ~liquidity ~commission)
            | _ -> Error "hub wants SPOKES[:LIQ[:COMM]]")
        | "er" -> (
            match String.split_on_char ':' rest with
            | n :: m :: sd :: tail when List.length tail <= 2 ->
                let* nodes = parse_int "er nodes" n in
                let* extra = parse_int "er extra edges" m in
                let* seed = parse_int "er seed" sd in
                if nodes < 2 then Error "er wants nodes >= 2"
                else if extra < 0 then Error "er wants extra >= 0"
                else
                  let* liquidity, commission = parse_liq_comm "er" tail in
                  Ok (erdos_renyi ~nodes ~extra ~seed ~liquidity ~commission)
            | _ -> Error "er wants NODES:EXTRA:SEED[:LIQ[:COMM]]")
        | "sf" -> (
            match String.split_on_char ':' rest with
            | n :: d :: sd :: tail when List.length tail <= 2 ->
                let* nodes = parse_int "sf nodes" n in
                let* degree = parse_int "sf degree" d in
                let* seed = parse_int "sf seed" sd in
                if nodes < 2 then Error "sf wants nodes >= 2"
                else if degree < 1 then Error "sf wants degree >= 1"
                else
                  let* liquidity, commission = parse_liq_comm "sf" tail in
                  Ok (scale_free ~nodes ~degree ~seed ~liquidity ~commission)
            | _ -> Error "sf wants NODES:DEG:SEED[:LIQ[:COMM]]")
        | k -> Error (Printf.sprintf "unknown topology family %S" k))
  in
  let t = normalize t in
  let* () = validate t in
  Ok t

let random rng =
  let liquidity = 100 * (1 + Sim.Rng.int rng 50) in
  let commission = Sim.Rng.int rng 20 in
  match Sim.Rng.int rng 4 with
  | 0 -> linear ~hops:(1 + Sim.Rng.int rng 4) ~liquidity ~commission
  | 1 -> hub ~spokes:(2 + Sim.Rng.int rng 4) ~liquidity ~commission
  | 2 ->
      let nodes = 3 + Sim.Rng.int rng 5 in
      erdos_renyi ~nodes
        ~extra:(Sim.Rng.int rng (2 * nodes))
        ~seed:(Sim.Rng.int rng 10_000)
        ~liquidity ~commission
  | _ ->
      scale_free
        ~nodes:(3 + Sim.Rng.int rng 5)
        ~degree:(1 + Sim.Rng.int rng 2)
        ~seed:(Sim.Rng.int rng 10_000)
        ~liquidity ~commission

let liquidity_histogram t =
  let buckets = Hashtbl.create 8 in
  let bump key = Hashtbl.replace buckets key (1 + try Hashtbl.find buckets key with Not_found -> 0) in
  Array.iter
    (fun e ->
      if e.liquidity = 0 then bump (-1)
      else begin
        let lo = ref 1 in
        while e.liquidity >= !lo * 10 do
          lo := !lo * 10
        done;
        bump !lo
      end)
    t.edges;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) buckets [] in
  List.map
    (fun k ->
      let label =
        if k = -1 then "unbounded"
        else Printf.sprintf "%d-%d" k ((k * 10) - 1)
      in
      (label, Hashtbl.find buckets k))
    (List.sort compare keys)

let total_commission t =
  Array.fold_left (fun acc e -> acc + e.commission) 0 t.edges

let pp ppf t = Fmt.string ppf (to_string t)
