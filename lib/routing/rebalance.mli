(** Circular rebalancing plans for skewed liquidity.

    When one of a node's outgoing escrows drains while a sibling stays
    flush, the operator can move collateral between them (off-protocol:
    the same party funds both payer accounts). The planner proposes such
    moves Migration/Planning-style: scan every node with at least two
    bounded outgoing edges, target each edge toward the node's mean
    outgoing liquidity, and emit the moves in deterministic batches of
    bounded size so an operator can apply them incrementally.

    The planner is pure — it reads edge liquidity from the topology and
    proposes; {!apply} returns the rebalanced topology. *)

type move = {
  node : int;  (** whose outgoing liquidity is being shuffled *)
  from_edge : int;  (** surplus edge index *)
  to_edge : int;  (** deficit edge index *)
  amount : int;  (** > 0 *)
}

type plan = {
  moves : move list;  (** deterministic order: by node, then edge index *)
  batches : move list list;  (** [moves] chunked, at most [batch] per chunk *)
  volume : int;  (** total value moved *)
}

val plan : ?band_pct:int -> ?batch:int -> Topology.t -> plan
(** [band_pct] (default 25): an edge within ±band of its node's mean
    outgoing liquidity is left alone. [batch] (default 4): moves per
    batch. Unbounded edges never participate. *)

val apply : Topology.t -> plan -> Topology.t
(** The topology with every move's liquidity shifted. *)

val move_to_string : move -> string
(** ["node N: E -> E' amount A"]. *)

val pp : Format.formatter -> plan -> unit
