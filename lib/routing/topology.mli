(** Escrow payment graphs: the generalization of the paper's linear chain.

    A topology is a digraph whose nodes are customer hosts and whose edges
    are escrows: edge [u -> v] means an escrow exists at which [u] can pay
    [v], holding [liquidity] units of payer-side funding and charging the
    payer-side customer [commission] per payment routed through it. The
    paper's linear chain is the special case [linear:H]; Herlihy's
    cross-chain swap digraphs motivate the general form.

    Payments always travel from {!source} (node 0) to {!sink} (the
    highest-numbered node). A topology serializes to a one-line grammar
    with the same round-trip law as {!Faults.Fault_plan}:
    [of_string (to_string t) = Ok (normalize t)].

    Grammar (no spaces — topologies embed in workload specs):

    {v
    graph:NODES;U>V:LIQ:COMM,...      explicit edge list
    linear:HOPS[:LIQ[:COMM]]          the paper's chain, HOPS edges
    hub:SPOKES[:LIQ[:COMM]]          hub-and-spoke, hub = node 1
    er:NODES:EXTRA:SEED[:LIQ[:COMM]]  Erdos-Renyi: chain backbone + EXTRA
                                      random edges
    sf:NODES:DEG:SEED[:LIQ[:COMM]]    scale-free preferential attachment,
                                      DEG bidirectional edges per new node
    v}

    [LIQ = 0] means unbounded liquidity. [to_string] always prints the
    canonical explicit [graph:] form, so generated families normalize to
    plain edge lists. *)

type edge = {
  src : int;
  dst : int;
  liquidity : int;  (** payer-side funding available at this escrow;
                        0 = unbounded *)
  commission : int;  (** charged to the payer-side customer per payment *)
}

type t = { nodes : int; edges : edge array }

val source : t -> int
(** Always node 0. *)

val sink : t -> int
(** Always node [nodes - 1]. *)

val unbounded : int
(** The capacity an [liquidity = 0] edge reports ([max_int / 8]) — large
    enough that no workload exhausts it, small enough not to overflow
    flow sums. *)

val capacity : edge -> int
(** [liquidity], with 0 mapped to {!unbounded}. *)

val out_edges : t -> int -> (int * edge) list
(** [(index, edge)] pairs leaving a node, in normalized edge order. *)

val validate : t -> (unit, string) result
(** Nodes >= 2, at least one edge, endpoints in range, no self-loops, no
    duplicate [(src, dst)] pairs, non-negative liquidity/commission, and
    the sink reachable from the source. *)

val normalize : t -> t
(** Edges sorted by [(src, dst)]. *)

val to_string : t -> string
(** Canonical explicit form; the round-trip law is
    [of_string (to_string t) = Ok (normalize t)]. *)

val of_string : string -> (t, string) result
(** Parses any grammar form above, expands generator families into
    explicit normalized edge lists, and validates. *)

val random : Sim.Rng.t -> t
(** A small random topology (family and parameters drawn from the rng),
    always valid. For property tests. *)

val liquidity_histogram : t -> (string * int) list
(** Edge counts bucketed by liquidity decade (["unbounded"], ["1-9"],
    ["10-99"], ...), in ascending bucket order. *)

val total_commission : t -> int
(** Sum of every edge's commission (an upper bound used to size ample
    funding). *)

val pp : Format.formatter -> t -> unit
