(* Chunked work-sharing over Domain.spawn.

   Determinism: the only shared scheduling state is [next], an atomic
   cursor over the job space. Slice boundaries are [k*chunk, (k+1)*chunk)
   for k = 0.. — a function of (jobs, chunk) alone — and every result
   lands at [results.(job_id)], so the merged output is independent of
   which domain ran what and in which order.

   Memory model: each results slot is written by exactly one domain
   (slices are disjoint) and read by the caller only after every worker
   has been joined; Domain.join establishes the happens-before edge, so
   plain array stores suffice. The same argument covers the per-domain
   stats arrays, where each domain writes only its own index. Progress
   reporting reads the [completed] atomic and runs entirely on the
   calling domain. *)

type failure = { job : int; message : string; backtrace : string }
type 'a outcome = ('a, failure) result

type stats = {
  domains : int;
  jobs : int;
  failed : int;
  chunk : int;
  per_domain_jobs : int array;
  per_domain_chunks : int array;
  per_domain_busy_ns : int array;
  wall_ns : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let recommended_domains () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "XCHAIN_FLEET_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> recommended_domains ())
  | None -> recommended_domains ()

let run_job f results failed i =
  match f i with
  | v -> results.(i) <- Ok v
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Atomic.incr failed;
      results.(i) <- Error { job = i; message = Printexc.to_string e; backtrace }

(* One domain's life: claim slices off [next] until the job space is
   exhausted. [tick] runs after every slice — the calling domain uses it
   to surface progress; spawned workers pass a no-op. *)
let worker ~f ~results ~failed ~next ~completed ~chunk ~jobs ~tick ~idx
    ~per_domain_jobs ~per_domain_chunks ~per_domain_busy_ns =
  let jobs_here = ref 0 and chunks_here = ref 0 and busy = ref 0 in
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add next chunk in
    if start >= jobs then continue := false
    else begin
      let stop = min jobs (start + chunk) in
      let t0 = now_ns () in
      for i = start to stop - 1 do
        run_job f results failed i
      done;
      busy := !busy + (now_ns () - t0);
      jobs_here := !jobs_here + (stop - start);
      incr chunks_here;
      ignore (Atomic.fetch_and_add completed (stop - start));
      tick ()
    end
  done;
  per_domain_jobs.(idx) <- !jobs_here;
  per_domain_chunks.(idx) <- !chunks_here;
  per_domain_busy_ns.(idx) <- !busy

let record_metrics m s =
  let open Obsv.Metrics in
  inc (counter m ~help:"Fleet batches executed" "xchain_fleet_batches_total");
  set
    (gauge m ~help:"Domains used by the most recent fleet batch"
       "xchain_fleet_domains")
    s.domains;
  add
    (counter m ~help:"Fleet jobs finished, by outcome"
       ~labels:[ ("status", "ok") ]
       "xchain_fleet_jobs_total")
    (s.jobs - s.failed);
  add
    (counter m ~help:"Fleet jobs finished, by outcome"
       ~labels:[ ("status", "failed") ]
       "xchain_fleet_jobs_total")
    s.failed;
  Array.iteri
    (fun d jobs_d ->
      let labels = [ ("domain", string_of_int d) ] in
      add
        (counter m ~labels ~help:"Fleet jobs completed, per domain"
           "xchain_fleet_domain_jobs_total")
        jobs_d;
      add
        (counter m ~labels
           ~help:
             "Slices claimed beyond a domain's first — work stolen off the \
              shared queue"
           "xchain_fleet_steals_total")
        (max 0 (s.per_domain_chunks.(d) - 1));
      add
        (counter m ~labels ~help:"Milliseconds spent inside jobs, per domain"
           "xchain_fleet_busy_ms_total")
        (s.per_domain_busy_ns.(d) / 1_000_000);
      add
        (counter m ~labels
           ~help:"Milliseconds of batch wall time spent not running jobs"
           "xchain_fleet_idle_ms_total")
        (max 0 ((s.wall_ns - s.per_domain_busy_ns.(d)) / 1_000_000)))
    s.per_domain_jobs

let run ?domains ?chunk ?on_progress ?(metrics = Obsv.Metrics.default) ~jobs f =
  if jobs < 0 then invalid_arg "Fleet.run: jobs must be >= 0";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Fleet.run: domains must be >= 1"
    | None -> default_domains ()
  in
  let domains = max 1 (min domains jobs) in
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Fleet.run: chunk must be >= 1"
    | None -> max 1 (jobs / (domains * 8))
  in
  let results =
    Array.make jobs (Error { job = -1; message = "unscheduled"; backtrace = "" })
  in
  let failed = Atomic.make 0 in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let per_domain_jobs = Array.make domains 0 in
  let per_domain_chunks = Array.make domains 0 in
  let per_domain_busy_ns = Array.make domains 0 in
  let progress =
    match on_progress with
    | None -> fun _ -> ()
    | Some cb ->
        let last = ref (-1) in
        fun c ->
          if c > !last then begin
            last := c;
            cb ~completed:c ~total:jobs
          end
  in
  let t0 = now_ns () in
  let spawned =
    Array.init (domains - 1) (fun k ->
        Domain.spawn (fun () ->
            worker ~f ~results ~failed ~next ~completed ~chunk ~jobs
              ~tick:(fun () -> ())
              ~idx:(k + 1) ~per_domain_jobs ~per_domain_chunks
              ~per_domain_busy_ns))
  in
  (* The calling domain is worker 0 and the only one that reports
     progress: between its own slices, and then while draining the
     stragglers. *)
  worker ~f ~results ~failed ~next ~completed ~chunk ~jobs
    ~tick:(fun () -> progress (Atomic.get completed))
    ~idx:0 ~per_domain_jobs ~per_domain_chunks ~per_domain_busy_ns;
  while Atomic.get completed < jobs do
    progress (Atomic.get completed);
    Domain.cpu_relax ()
  done;
  Array.iter Domain.join spawned;
  progress jobs;
  let stats =
    {
      domains;
      jobs;
      failed = Atomic.get failed;
      chunk;
      per_domain_jobs;
      per_domain_chunks;
      per_domain_busy_ns;
      wall_ns = max 1 (now_ns () - t0);
    }
  in
  record_metrics metrics stats;
  (results, stats)

let failures outcomes =
  Array.to_list outcomes
  |> List.filter_map (function Error f -> Some f | Ok _ -> None)

let pp_failure ppf { job; message; backtrace } =
  Format.fprintf ppf "job %d: %s" job message;
  if backtrace <> "" then
    String.split_on_char '\n' (String.trim backtrace)
    |> List.iter (fun line -> Format.fprintf ppf "@,  %s" line)
