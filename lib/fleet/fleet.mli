(** Domain-parallel execution of batches of independent deterministic jobs.

    A {e job} is a pure function of its integer id: it builds everything it
    needs from scratch (one fresh [Engine], its own [Rng] seeded from the
    id) and shares no mutable state with other jobs. Under that contract,
    {!run} distributes jobs over a fixed pool of OCaml 5 domains and
    returns results {e merged in job-id order}, so the result array — and
    anything printed from it — is byte-identical for any domain count.
    That determinism contract is load-bearing: the cram suite and CI
    compare [-j 1] output against [-j N] output with [cmp].

    Scheduling is chunked work-sharing: domains claim fixed-size slices of
    the job space off one atomic counter, so slice boundaries depend only
    on [jobs] and [chunk], never on the number of domains or on timing. A
    domain that finishes its slice early steals the next unclaimed slice.

    Failure isolation: a job that raises becomes an [Error] {!failure}
    carrying its job id, exception text and backtrace — the batch always
    completes and every other result is preserved. Nothing escapes {!run}
    except [Invalid_argument] on bad arguments.

    What is {e not} deterministic: {!stats}. Wall-clock time, per-domain
    job counts and busy times depend on scheduling. Callers that print
    deterministic reports must keep stats out of them (or confine them to
    a strippable trailing block, as [xchain load --out] does). *)

type failure = {
  job : int;  (** id of the job that raised *)
  message : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;  (** raw backtrace; [""] unless recording is on *)
}

type 'a outcome = ('a, failure) result

type stats = {
  domains : int;  (** domains actually used (≤ requested; ≤ jobs) *)
  jobs : int;
  failed : int;  (** number of [Error] outcomes *)
  chunk : int;  (** slice size used *)
  per_domain_jobs : int array;  (** jobs completed, indexed by domain *)
  per_domain_chunks : int array;  (** slices claimed, indexed by domain *)
  per_domain_busy_ns : int array;  (** time spent inside jobs, per domain *)
  wall_ns : int;  (** end-to-end batch wall time, ≥ 1 *)
}

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism the
    runtime suggests. *)

val default_domains : unit -> int
(** Domain count used when [?domains] is omitted: the [XCHAIN_FLEET_JOBS]
    environment variable if set to a positive integer, otherwise
    {!recommended_domains}. The env override is how CI re-runs the whole
    test suite single-domain and max-domain without touching flags. *)

val run :
  ?domains:int ->
  ?chunk:int ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  ?metrics:Obsv.Metrics.t ->
  jobs:int ->
  (int -> 'a) ->
  'a outcome array * stats
(** [run ~jobs f] evaluates [f 0 .. f (jobs-1)] across
    [?domains] (default {!default_domains}) domains and returns the
    outcomes in job-id order plus batch stats.

    [?chunk] (default [max 1 (jobs / (domains * 8))]) is the slice size;
    it affects scheduling granularity only, never results. [?on_progress]
    is called from the calling domain only, with monotonically
    non-decreasing [completed] counts, and exactly once with
    [completed = total] at the end (including when [jobs = 0]).
    Per-batch fleet metrics (jobs by status, steals, busy/idle time per
    domain) are recorded into [?metrics] (default
    [Obsv.Metrics.default]) after the batch completes.

    Raises [Invalid_argument] if [jobs < 0], [domains < 1] or
    [chunk < 1]. *)

val failures : 'a outcome array -> failure list
(** The [Error] outcomes, in job-id order. *)

val pp_failure : Format.formatter -> failure -> unit
(** ["job 17: Failure(\"boom\")"] plus indented backtrace when present. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (from [Unix.gettimeofday]); the clock used for
    {!stats} timing, exposed so callers report durations consistently. *)
