(** The Interledger {e atomic} protocol (Thomas & Schwartz 2015) — the
    partially-synchronous baseline the paper compares against.

    Mechanism: legs are {e prepared} (escrowed) hop by hop from Alice
    toward Bob; when Bob's incoming leg is prepared he submits a signed
    receipt (we reuse χ) to a notary, which acts as the shared source of
    truth: it decides {e Executed} if the receipt arrives before a fixed
    deadline [T] on its own clock, else {e Aborted}; escrows settle on the
    notary's signed decision.

    Safety-wise this is sound (the notary's single decision plays the
    χc/χa role, legs settle atomically). What it lacks — the paper's whole
    point — is any {e success guarantee}: the deadline [T] is fixed ahead
    of time against unknown network delays, so under partial synchrony
    with GST beyond [T] the payment aborts even though every participant
    is honest and endlessly patient. Experiment E11 measures exactly this
    collapse, against the weak protocol whose patience is under the
    customers' control.

    The notary is modelled as a single trusted process, the same trust
    base Interledger assumes of its notary group (a committee variant
    would mirror {!Weak_protocol}'s and adds nothing to the comparison —
    see DESIGN.md). *)

type config = {
  deadline : Sim.Sim_time.t;
      (** the notary aborts at this local time if no receipt has arrived *)
}

val default_config : config
(** deadline 5_000. *)

val tm_pid : Env.t -> int
val process_count : Env.t -> int

val handlers_for :
  Env.t -> config -> int -> (Msg.t, Obs.t) Sim.Engine.handlers
