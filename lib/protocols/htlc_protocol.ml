open Sim
module E = Engine
module HL = Xcrypto.Hashlock

type config = { hop_window : Sim_time.t }

let default_config (env : Env.t) =
  let p = env.Env.params.Params.input in
  let step = Sim_time.add p.Params.sigma p.Params.delta in
  let base = Sim_time.add step p.Params.margin in
  { hop_window = Params.up ~drift_ppm:p.Params.drift_ppm base }

let window_of (env : Env.t) cfg i =
  let n = Topology.hops env.Env.topo in
  let rungs = ((n - i) * 4) + 2 in
  Sim_time.scale cfg.hop_window ~num:rungs ~den:1

let fresh_preimage ~seed = HL.fresh (Rng.create ~seed)

(* Escrow e_i: accepts a hashlocked deposit from c_i, pays c_{i+1} against
   the preimage before the leg's timelock, else refunds. *)
let escrow_handlers (env : Env.t) cfg i =
  let topo = env.Env.topo in
  let self = Topology.escrow topo i in
  let cust_up = Topology.customer topo i in
  let cust_down = Topology.customer topo (i + 1) in
  let amount = Env.amount_at env i in
  let book = env.Env.books.(i) in
  let window = window_of env cfg i in
  let contract : (HL.lock * int) option ref = ref None in
  let deposit = ref None in
  let resolved = ref false in
  let finish ctx outcome =
    E.observe ctx (Obs.Terminated { pid = self; outcome });
    E.halt ctx
  in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        if not !resolved then
          match msg with
          | Msg.Htlc_setup { lock; amount = a }
            when src = cust_up && !contract = None && a = amount -> (
              match Ledger.Book.deposit book ~from_:cust_up ~amount with
              | Ok dep ->
                  contract := Some (lock, a);
                  deposit := Some dep;
                  E.observe ctx
                    (Obs.Deposited
                       { escrow = self; depositor = cust_up; amount; deposit = dep });
                  E.set_timer_after ctx ~after:window ~label:"timelock";
                  (* tell the downstream customer her incoming leg exists *)
                  E.send ctx ~dst:cust_down (Msg.Htlc_setup { lock; amount = a })
              | Error e ->
                  E.observe ctx
                    (Obs.Rejected
                       { pid = self; what = Fmt.str "deposit: %a" Ledger.Book.pp_error e }))
          | Msg.Htlc_claim { preimage } when src = cust_down -> (
              match (!contract, !deposit) with
              | Some (lock, _), Some dep when HL.matches lock preimage -> (
                  match Ledger.Book.release book dep ~to_:cust_down with
                  | Ok () ->
                      resolved := true;
                      E.observe ctx
                        (Obs.Released
                           { escrow = self; deposit = dep; to_ = cust_down; amount });
                      E.send ctx ~dst:cust_down (Msg.Money { amount });
                      (* reveal the key upstream, as an on-chain claim would *)
                      E.send ctx ~dst:cust_up (Msg.Htlc_key { preimage });
                      finish ctx "released"
                  | Error e ->
                      E.observe ctx
                        (Obs.Rejected
                           { pid = self; what = Fmt.str "release: %a" Ledger.Book.pp_error e }))
              | Some _, _ ->
                  E.observe ctx
                    (Obs.Rejected { pid = self; what = "claim: wrong preimage" })
              | None, _ ->
                  E.observe ctx
                    (Obs.Rejected { pid = self; what = "claim: no contract" }))
          | _ -> ());
    on_timer =
      (fun ctx ~label ->
        if (not !resolved) && String.equal label "timelock" then
          match !deposit with
          | Some dep -> (
              match Ledger.Book.refund book dep with
              | Ok () ->
                  resolved := true;
                  E.observe ctx
                    (Obs.Refunded
                       { escrow = self; deposit = dep; depositor = cust_up; amount });
                  E.send ctx ~dst:cust_up (Msg.Money { amount });
                  finish ctx "refunded"
              | Error e ->
                  E.observe ctx
                    (Obs.Rejected
                       { pid = self; what = Fmt.str "refund: %a" Ledger.Book.pp_error e }))
          | None -> ());
  }

(* Customer c_i, i < n: on learning the lock (from Bob's invoice for Alice,
   from the upstream escrow's setup notice for connectors), fund the
   outgoing leg; on the revealed key, claim the incoming leg. *)
let customer_handlers (env : Env.t) _cfg i =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let self = Topology.customer topo i in
  let e_down = Topology.escrow topo i in
  let e_up = if i > 0 then Some (Topology.escrow topo (i - 1)) else None in
  let amount = Env.amount_at env i in
  let recv_amount = if i > 0 then Env.amount_at env (i - 1) else 0 in
  let expected_src = if i = 0 then Topology.bob topo else Topology.escrow topo (i - 1) in
  let funded = ref false in
  let refunded = ref false in
  let claimed = ref false in
  let done_ = ref false in
  let finish ctx outcome =
    if not !done_ then begin
      done_ := true;
      E.observe ctx (Obs.Terminated { pid = self; outcome });
      E.halt ctx
    end
  in
  ignore n;
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Htlc_setup { lock; amount = _ } when src = expected_src && not !funded ->
            funded := true;
            E.send ctx ~dst:e_down (Msg.Htlc_setup { lock; amount })
        | Msg.Htlc_key { preimage } when src = e_down && not !claimed -> (
            claimed := true;
            E.observe ctx
              (Obs.Note { pid = self; what = "preimage-learned" });
            match e_up with
            | Some e -> E.send ctx ~dst:e (Msg.Htlc_claim { preimage })
            | None ->
                (* Alice: the revealed preimage is all the receipt HTLC
                   gives her *)
                finish ctx "preimage-receipt")
        | Msg.Money { amount = a } when src = e_down && a = amount ->
            refunded := true;
            finish ctx "refunded"
        | Msg.Money { amount = a } ->
            (match e_up with
            | Some e when src = e && a = recv_amount -> finish ctx "paid"
            | _ -> ())
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let bob_handlers (env : Env.t) _cfg preimage =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let self = Topology.bob topo in
  let e_up = Topology.escrow topo (n - 1) in
  let alice = Topology.alice topo in
  let recv_amount = Env.amount_at env (n - 1) in
  let lock = HL.lock_of preimage in
  {
    E.on_start =
      (fun ctx ->
        (* the invoice: Bob hands Alice the lock *)
        E.send ctx ~dst:alice (Msg.Htlc_setup { lock; amount = env.Env.value }));
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Htlc_setup _ when src = e_up ->
            (* incoming leg funded: claim it *)
            E.send ctx ~dst:e_up (Msg.Htlc_claim { preimage })
        | Msg.Money { amount } when src = e_up && amount = recv_amount ->
            E.observe ctx (Obs.Terminated { pid = self; outcome = "paid" });
            E.halt ctx
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let handlers_for env cfg preimage pid =
  let topo = env.Env.topo in
  match Topology.role_of topo pid with
  | Some Topology.Alice -> customer_handlers env cfg 0
  | Some (Topology.Connector i) -> customer_handlers env cfg i
  | Some Topology.Bob -> bob_handlers env cfg preimage
  | Some (Topology.Escrow i) -> escrow_handlers env cfg i
  | _ -> invalid_arg "Htlc_protocol.handlers_for: unknown pid"
