(** The cross-chain payment protocol with weak liveness guarantees
    (Theorem 3), solvable under partial synchrony with Byzantine failures.

    Mechanism (per §3 of the paper): an external {e transaction manager}
    (TM) issues either a commit certificate χc or an abort certificate χa —
    never both (property CC). Deposits are conditional on that decision:

    - each paying customer c{_i} (i < n) deposits her leg's amount at
      escrow e{_i} when she feels ready (after [deposit_delay] on her
      clock);
    - each escrow reports its funded leg to the TM with a signed
      certificate;
    - the TM decides {e commit} once all n legs are funded, or {e abort}
      when any customer loses patience and requests it;
    - on χc every escrow releases its deposit downstream (Bob is paid at
      e{_{n-1}}, Alice keeps χc as transferable proof that Bob was paid —
      CC + CS2 make it one); on χa every escrow refunds.

    Any customer may abort at any moment of their choice without risking
    value — the [patience] parameter is the local delay after which she
    does. If nobody loses patience and nobody fails, success is guaranteed
    once the network stabilises (weak liveness: patience must outlast
    GST-induced delays — experiment E4 sweeps exactly this).

    The TM is instantiated all three ways the paper suggests: a single
    trusted party ({!Single}); a smart contract replicated over a shared
    blockchain ({!Chain}, built on {!Consensus.Chain}); and a committee of
    notaries running the {!Consensus.Dls} algorithm ({!Committee} for the
    classic 3f+1 majority committee, {!Quorum} for an arbitrary
    {!Quorum_system.t} family — weighted, grid — at any size). *)

type tm_kind =
  | Single
  | Committee of { f : int }
      (** 3f+1 notary processes; their pids follow the payment pids.
          Equivalent to [Quorum] over
          [Quorum_system.majority ~n:(3*f+1) ~f ()]. *)
  | Quorum of { qs : Quorum_system.t }
      (** a notary committee sized and thresholded by an arbitrary
          validated quorum system; replica index i runs at aux pid
          [aux_base + i] *)
  | Chain of { validators : int }
      (** the TM as a smart contract replicated over an authority
          blockchain ({!Consensus.Chain}): escrows and customers submit
          funded reports / abort requests as transactions; every validator
          replays the unique chain, so the contract decides once and each
          validator's signed decision is equivalent — the paper's
          "smart contract running on a permissionless blockchain" *)
  | Shared of {
      pids : int array;
          (** absolute engine pids of the committee replicas;
              [pids.(0)] is the batching sequencer requests go to *)
      item : int;  (** this payment's item id at the committee *)
      verify : Quorum.Committee.batch Consensus.Dls.decision_cert -> bool;
          (** certificate check over the committee's registry and quorum
              system (e.g. [Quorum.Committee.verify_cert cfg]) *)
    }
      (** shared-committee mode: the payment has {e no} TM processes of
          its own ([tm_pids] is [[||]]); instead its participants talk to
          one external {!Quorum.Committee} block that batches verdicts
          for thousands of concurrent payments into shared certificates
          (see [Traffic.Load]). Escrows report funded legs and customers
          request aborts via {!Msg.Quorum_req} sent with absolute pids;
          the decision arrives as a {!Msg.Quorum_decision} batch
          certificate from which each participant extracts its own item's
          verdict after verifying the quorum signatures. Requests are
          content-trusted (the certificate is the cryptographic
          interface) — the honest-participant benchmark scope. *)

type notary_fault =
  | Notary_honest
  | Notary_crash  (** silent from the start *)
  | Notary_equivocate
      (** as leader proposes conflicting values to different peers and
          signs echoes for every value it sees *)

type config = {
  tm : tm_kind;
  patience : Sim.Sim_time.t;
      (** local delay after which a customer requests abort;
          {!Sim.Sim_time.infinity} = never *)
  deposit_delay : Sim.Sim_time.t;  (** local delay before depositing *)
  tm_base_timeout : Sim.Sim_time.t;  (** committee round-0 timeout *)
  notary_faults : notary_fault array;
      (** per-notary behaviour; ignored for {!Single}. Length must be 3f+1
          when given; [||] means all honest. *)
}

val default_config : config
(** Single TM, patience 5_000, deposit delay 10, base timeout 200. *)

val tm_pids : Env.t -> config -> int array
(** The TM process pids implied by the config (aux pids after the payment
    participants). *)

val process_count : Env.t -> config -> int
(** Total processes: payment participants + TM processes. *)

val handlers_for :
  Env.t -> config -> int -> (Msg.t, Obs.t) Sim.Engine.handlers
(** Honest handlers for any pid (customers, escrows, TM/notaries). *)

val customer_handlers :
  Env.t -> config -> int -> (Msg.t, Obs.t) Sim.Engine.handlers
(** By customer index 0..n. Exposed for fault-injection wrappers. *)

val escrow_handlers :
  Env.t -> config -> int -> (Msg.t, Obs.t) Sim.Engine.handlers

val verify_committee_decision :
  Env.t -> config -> bool Consensus.Dls.decision_cert -> bool
(** What participants run on a {!Msg.Committee_decision}: checks that the
    notary signatures over the decided value form a quorum of the
    committee's quorum system. *)
