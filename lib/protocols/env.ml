open Xcrypto

type t = {
  topo : Topology.t;
  params : Params.t;
  payment : int;
  value : int;
  amounts : int array;
  books : Ledger.Book.t array;
  registry : Auth.registry;
  signers : (int, Auth.signer) Hashtbl.t;
}

let signer_of t pid =
  match Hashtbl.find_opt t.signers pid with
  | Some s -> s
  | None ->
      let s = Auth.register t.registry pid in
      Hashtbl.add t.signers pid s;
      s

let make ~topo ~params ?(payment = 1) ?(value = 1000) ?(commission = 10)
    ?amounts ?(seed = 7) ?books () =
  let n = Topology.hops topo in
  if value < 1 then invalid_arg "Env.make: value must be positive";
  if commission < 0 then invalid_arg "Env.make: negative commission";
  let amounts =
    match amounts with
    | None -> Array.init n (fun i -> value + (commission * (n - 1 - i)))
    | Some a ->
        (* per-leg override (graph routing: each edge sets its own
           commission); must still be a valid decreasing payment ladder
           ending at the value Bob is owed *)
        if Array.length a <> n then
          invalid_arg "Env.make: amounts array must have one amount per hop";
        if a.(n - 1) <> value then
          invalid_arg "Env.make: last amount must equal the payment value";
        Array.iteri
          (fun i x ->
            if x < value || (i < n - 1 && x < a.(i + 1)) then
              invalid_arg "Env.make: amounts must be decreasing toward Bob")
          a;
        Array.copy a
  in
  let books =
    match books with
    | Some shared ->
        (* shared books (load runs): the caller owns funding policy, so we
           only ensure the accounts this payment touches exist — never
           re-open a funded account with this payment's amounts *)
        if Array.length shared <> n then
          invalid_arg "Env.make: books array must have one book per hop";
        Array.iteri
          (fun i book ->
            List.iter
              (fun owner ->
                if not (Ledger.Book.has_account book owner) then
                  Ledger.Book.open_account book ~owner ~balance:0)
              [
                Topology.customer topo i;
                Topology.customer topo (i + 1);
                Topology.escrow topo i;
              ])
          shared;
        shared
    | None ->
        Array.init n (fun i ->
            let book = Ledger.Book.create ~currency:(Printf.sprintf "cur%d" i) in
            Ledger.Book.open_account book ~owner:(Topology.customer topo i)
              ~balance:amounts.(i);
            Ledger.Book.open_account book
              ~owner:(Topology.customer topo (i + 1))
              ~balance:0;
            Ledger.Book.open_account book ~owner:(Topology.escrow topo i)
              ~balance:0;
            book)
  in
  let registry = Auth.create ~seed in
  let t =
    {
      topo;
      params;
      payment;
      value;
      amounts;
      books;
      registry;
      signers = Hashtbl.create 16;
    }
  in
  (* Register everyone up front so verification never depends on order. *)
  List.iter
    (fun pid -> ignore (signer_of t pid))
    (Topology.customers topo @ Topology.escrows topo);
  t

let amount_at t i = t.amounts.(i)

let initial_balance t ~pid ~escrow =
  let topo = t.topo in
  if pid = Topology.customer topo escrow then t.amounts.(escrow) else 0

let chi_ok t (sv : Msg.chi_body Auth.signed) =
  let b = sv.Auth.payload in
  b.Msg.x_payment = t.payment
  && b.Msg.x_bob = Topology.bob t.topo
  && sv.Auth.author = Topology.bob t.topo
  && Auth.verify_value t.registry ~ser:Msg.ser_chi sv

let make_chi t =
  let bob = Topology.bob t.topo in
  Auth.sign_value (signer_of t bob) ~ser:Msg.ser_chi
    { Msg.x_payment = t.payment; x_bob = bob }

let promise_g_ok t ~escrow_index (sv : Msg.promise_g Auth.signed) =
  let e = Topology.escrow t.topo escrow_index in
  sv.Auth.author = e
  && sv.Auth.payload.Msg.g_escrow = e
  && Auth.verify_value t.registry ~ser:Msg.ser_promise_g sv

let promise_p_ok t ~escrow_index (sv : Msg.promise_p Auth.signed) =
  let e = Topology.escrow t.topo escrow_index in
  sv.Auth.author = e
  && sv.Auth.payload.Msg.p_escrow = e
  && Auth.verify_value t.registry ~ser:Msg.ser_promise_p sv

let decision_ok t ~tm (sv : Msg.decision_body Auth.signed) =
  sv.Auth.author = tm
  && sv.Auth.payload.Msg.dec_payment = t.payment
  && Auth.verify_value t.registry ~ser:Msg.ser_decision sv

let funded_ok t ~escrow_index (sv : Msg.funded_body Auth.signed) =
  let e = Topology.escrow t.topo escrow_index in
  sv.Auth.author = e
  && sv.Auth.payload.Msg.f_escrow = e
  && sv.Auth.payload.Msg.f_payment = t.payment
  && Auth.verify_value t.registry ~ser:Msg.ser_funded sv
