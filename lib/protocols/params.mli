(** Derivation of the protocol's timeout parameters — the "fine-tuning to
    work correctly in the presence of clock drift" of Theorem 1.

    The brief announcement leaves the values of the d{_i} and a{_i} as
    parameters "calculated in [the full version]". This module performs that
    calculation for our synchrony model:

    - every message is delivered within [delta] ticks of real time;
    - every local computation before a send takes at most [sigma] ticks;
    - every local clock rate lies in [1 ± drift_ppm·10⁻⁶] of real time.

    Write [up x] for x·(1+ρ) rounded up (a real-time duration measured on a
    fast local clock) and [down x] for x/(1−ρ) rounded up (the real time a
    local-clock window may last on a slow clock). One hop's worst real cost
    is [step = sigma + delta].

    The certificate χ must reach escrow e{_i} before its local window a{_i}
    expires. Working backwards from Bob:

    - [a(n-1) ≥ up (2·step + margin)] — P(a{_{n-1}}) travels to Bob and χ
      travels back;
    - [a(i) ≥ up (5·step + down (a(i+1)) + margin)] for i < n−1 — P(a{_i})
      reaches Chloe{_{i+1}}, who may still be waiting for her G(d{_{i+1}})
      (one extra step), pays escrow e{_{i+1}}, which holds its window open
      for up to [down a(i+1)] real ticks before releasing χ, which then
      makes two more hops back to e{_i}.

    The refund promise follows as [d(i) = a(i) + up sigma + margin]: an
    abiding escrow resolves (either way) within its own a{_i} window plus
    one computation, so G(d{_i}) is honourable — which is what property C
    requires of it.

    {!check} verifies the recurrence; property tests assert that derived
    parameters make strong liveness hold on every conforming schedule, and
    that they are tight enough for E9's naive baseline to fail under the
    same schedules. *)

type input = {
  hops : int;  (** number of escrows n ≥ 1 *)
  delta : Sim.Sim_time.t;  (** message-delay bound δ *)
  sigma : Sim.Sim_time.t;  (** computation-time bound σ *)
  drift_ppm : int;  (** clock-rate envelope ρ, in parts per million *)
  margin : Sim.Sim_time.t;  (** slack added at every level; ≥ 1 *)
}

type t = {
  input : input;
  a : Sim.Sim_time.t array;  (** acceptance windows a{_0} … a{_{n-1}} *)
  d : Sim.Sim_time.t array;  (** refund promises d{_0} … d{_{n-1}} *)
  epsilon : Sim.Sim_time.t;  (** payout promptness ε in P(a) *)
  horizon : Sim.Sim_time.t;
      (** global-time bound by which every honest participant has
          terminated when all escrows abide — the "a priori known period"
          of property T *)
  customer_bound : Sim.Sim_time.t array;
      (** [customer_bound.(i)] is the per-customer a-priori bound for
          c{_i} (length hops+1): money reaches e{_i} within (3+2i) steps,
          the escrow resolves within its (drift-stretched) window, and the
          reply makes one more hop. Bob's entry covers the full forward
          path. Each is ≤ {!horizon}. *)
}

val default_input : hops:int -> input
(** δ = 100, σ = 10, drift 10 000 ppm (1%), margin = 5. *)

val derive : input -> t

val up : drift_ppm:int -> Sim.Sim_time.t -> Sim.Sim_time.t
(** Multiply by (1+ρ), rounding up. *)

val down : drift_ppm:int -> Sim.Sim_time.t -> Sim.Sim_time.t
(** Divide by (1−ρ), rounding up. *)

val check : t -> (unit, string) result
(** Re-verifies the recurrence inequalities on a parameter vector (possibly
    hand-modified by a test). *)

val scale_windows : t -> num:int -> den:int -> t
(** Scale every a{_i} and d{_i} by num/den — used by E2 to build the family
    of too-short/too-long timeout candidates. *)

val pp : Format.formatter -> t -> unit
