(** Engine host for a {e shared} batching notary committee
    ({!Quorum.Committee}) serving many concurrent payments.

    Unlike the per-payment committee of {!Weak_protocol.Committee} (3f+1
    fresh notaries per payment), one shared committee block decides the
    fate of every in-flight payment, batching verdicts into certificates
    of up to [batch_cap] items and pipelining slots so certificate
    throughput stays flat as committee size grows.

    Wiring (done by [Traffic.Load] in its shared-committee mode):
    - the committee replicas form one engine block with a common [base];
      intra-committee consensus traffic uses logical pids;
    - payments run {!Weak_protocol} with [tm = Shared]: escrows and
      customers address {!Msg.Quorum_req} to the sequencer's absolute
      pid, and verify the returned {!Msg.Quorum_decision} batch
      certificates locally;
    - the sequencer (replica 0) aggregates requests per item — commit
      once all [hops_of item] legs report funded, abort on the first
      abort request — and announces each certified batch to the
      participants of its items, via [reply_to].

    Requests are content-trusted (honest-participant benchmark scope);
    the batch certificate is the cryptographic interface. Sequencer
    fail-over is out of scope — see [docs/committees.md]. *)

type config = {
  qs : Quorum_system.t;  (** must pass [Quorum_system.validate] *)
  registry : Xcrypto.Auth.registry;
      (** the committee's own registry; replica auth ids are the replica
          indices [0 .. size-1] *)
  batch_cap : int;  (** max verdicts per certificate; >= 1 *)
  pipeline : int;  (** max concurrently undecided slots; >= 1 *)
  base_timeout : Sim.Sim_time.t;  (** per-slot DLS round-0 timeout *)
  reply_to : int -> int array;
      (** absolute engine pids of an item's participants (decision
          fan-out targets) *)
  hops_of : int -> int;  (** legs an item needs funded before commit *)
}

val auth_ids : config -> int array
(** The replica auth identities: [[|0; ...; size-1|]]. *)

val verify :
  config ->
  signer:Xcrypto.Auth.signer ->
  Quorum.Committee.batch Consensus.Dls.decision_cert ->
  bool
(** Outsider certificate verification for participants' [Shared.verify];
    [signer] is any signer registered in any registry — it is unused by
    verification but required to build the committee config. *)

val handlers :
  config ->
  index:int ->
  signer:Xcrypto.Auth.signer ->
  (Msg.t, Obs.t) Sim.Engine.handlers * Quorum.Committee.t
(** Handlers for committee replica [index], to be registered at logical
    pid [index] of the committee block; [signer] must be the registry's
    signer for auth id [index]. The replica's committee state rides along
    so the host can read deterministic post-run statistics
    ({!Quorum.Committee.decided_slots}, {!Quorum.Committee.cert_of_slot},
    …). *)
