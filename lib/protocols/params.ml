open Sim

type input = {
  hops : int;
  delta : Sim_time.t;
  sigma : Sim_time.t;
  drift_ppm : int;
  margin : Sim_time.t;
}

type t = {
  input : input;
  a : Sim_time.t array;
  d : Sim_time.t array;
  epsilon : Sim_time.t;
  horizon : Sim_time.t;
  customer_bound : Sim_time.t array;
}

let ppm = 1_000_000

let default_input ~hops =
  { hops; delta = 100; sigma = 10; drift_ppm = 10_000; margin = 5 }

let up ~drift_ppm t = Sim_time.scale t ~num:(ppm + drift_ppm) ~den:ppm
let down ~drift_ppm t = Sim_time.scale t ~num:ppm ~den:(ppm - drift_ppm)

let validate_input i =
  if i.hops < 1 then invalid_arg "Params: hops must be >= 1";
  if i.delta < 1 then invalid_arg "Params: delta must be >= 1";
  if Sim_time.(i.sigma < 0) then invalid_arg "Params: sigma must be >= 0";
  if i.drift_ppm < 0 || i.drift_ppm >= ppm then
    invalid_arg "Params: drift_ppm out of range";
  if Sim_time.(i.margin < 1) then invalid_arg "Params: margin must be >= 1"

let derive input =
  validate_input input;
  let n = input.hops in
  let r = input.drift_ppm in
  let step = Sim_time.add input.sigma input.delta in
  let a = Array.make n Sim_time.zero in
  a.(n - 1) <-
    up ~drift_ppm:r
      (Sim_time.add (Sim_time.scale step ~num:2 ~den:1) input.margin);
  for i = n - 2 downto 0 do
    let cost =
      Sim_time.add
        (Sim_time.scale step ~num:5 ~den:1)
        (Sim_time.add (down ~drift_ppm:r a.(i + 1)) input.margin)
    in
    a.(i) <- up ~drift_ppm:r cost
  done;
  let d =
    Array.map
      (fun ai ->
        Sim_time.add ai (Sim_time.add (up ~drift_ppm:r input.sigma) input.margin))
      a
  in
  let epsilon =
    Sim_time.add (up ~drift_ppm:r (Sim_time.scale input.sigma ~num:2 ~den:1))
      input.margin
  in
  (* Real-time termination horizon: money reaches e_i within (3 + 2i) steps
     of the start; each escrow resolves within down(a_i) real time after
     that; the reply makes one more hop. a_0 dominates the a_i. *)
  let money_reach =
    Sim_time.scale step ~num:((2 * n) + 3) ~den:1
  in
  let horizon =
    Sim_time.add money_reach
      (Sim_time.add (down ~drift_ppm:r a.(0))
         (Sim_time.add (Sim_time.scale step ~num:2 ~den:1)
            (Sim_time.scale input.margin ~num:4 ~den:1)))
  in
  (* Per-customer bounds (property T is stated per customer): customer c_i
     pays at e_i, whose window a_i opens within (3 + 2i) steps of the start
     and lasts at most down(a_i) real ticks; the reply makes one more hop.
     Bob (i = n) just needs the full forward path. *)
  let customer_bound =
    Array.init (n + 1) (fun i ->
        if i = n then
          Sim_time.add
            (Sim_time.scale step ~num:((2 * n) + 3) ~den:1)
            (Sim_time.scale input.margin ~num:4 ~den:1)
        else
          Sim_time.add
            (Sim_time.scale step ~num:((2 * i) + 3) ~den:1)
            (Sim_time.add (down ~drift_ppm:r a.(i))
               (Sim_time.add (Sim_time.scale step ~num:2 ~den:1)
                  (Sim_time.scale input.margin ~num:4 ~den:1))))
  in
  { input; a; d; epsilon; horizon; customer_bound }

let check t =
  let i = t.input in
  let n = i.hops in
  let r = i.drift_ppm in
  let step = Sim_time.add i.sigma i.delta in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if Array.length t.a <> n || Array.length t.d <> n then
    fail "parameter vectors have wrong length"
  else begin
    let problem = ref None in
    let need idx cond msg =
      if !problem = None && not cond then problem := Some (idx, msg)
    in
    need (n - 1)
      Sim_time.(
        t.a.(n - 1)
        >= up ~drift_ppm:r
             (Sim_time.add (Sim_time.scale step ~num:2 ~den:1) 1))
      "a(n-1) cannot cover Bob's round trip";
    for i' = 0 to n - 2 do
      let lower =
        up ~drift_ppm:r
          (Sim_time.add
             (Sim_time.scale step ~num:5 ~den:1)
             (Sim_time.add (down ~drift_ppm:r t.a.(i' + 1)) 1))
      in
      need i' Sim_time.(t.a.(i') >= lower) "a(i) below the recurrence bound"
    done;
    for i' = 0 to n - 1 do
      need i'
        Sim_time.(t.d.(i') >= Sim_time.add t.a.(i') i.sigma)
        "d(i) does not leave room to resolve after the window"
    done;
    match !problem with
    | None -> Ok ()
    | Some (idx, msg) -> fail "at index %d: %s" idx msg
  end

let scale_windows t ~num ~den =
  if num < 0 || den <= 0 then invalid_arg "Params.scale_windows";
  let sc x = Stdlib.max 1 (Sim_time.scale x ~num ~den) in
  {
    t with
    a = Array.map sc t.a;
    d = Array.map sc t.d;
    (* keep the promised periods consistent with the windows they cover *)
    customer_bound = Array.map sc t.customer_bound;
    horizon = sc t.horizon;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>params n=%d δ=%a σ=%a ρ=%dppm margin=%a@,a=[%a]@,d=[%a]@,ε=%a horizon=%a@]"
    t.input.hops Sim_time.pp t.input.delta Sim_time.pp t.input.sigma
    t.input.drift_ppm Sim_time.pp t.input.margin
    Fmt.(array ~sep:(any "; ") Sim_time.pp)
    t.a
    Fmt.(array ~sep:(any "; ") Sim_time.pp)
    t.d Sim_time.pp t.epsilon Sim_time.pp t.horizon
