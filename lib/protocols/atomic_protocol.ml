open Sim
module E = Engine

type config = { deadline : Sim_time.t }

let default_config = { deadline = 5_000 }
let tm_pid (env : Env.t) = Topology.aux_base env.Env.topo
let process_count env = Topology.payment_count env.Env.topo + 1

(* Customers: Alice prepares unprompted; a connector prepares its outgoing
   leg when its incoming leg is prepared; Bob submits the receipt. All of
   them then await the notary's decision and their leg's settlement. *)
let customer_handlers (env : Env.t) _cfg i =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let self = Topology.customer topo i in
  let pays = i < n in
  let e_down = if pays then Some (Topology.escrow topo i) else None in
  let e_up = if i > 0 then Some (Topology.escrow topo (i - 1)) else None in
  let pay_amount = if pays then Env.amount_at env i else 0 in
  let recv_amount = if i > 0 then Env.amount_at env (i - 1) else 0 in
  let tm = tm_pid env in
  let decision : bool option ref = ref None in
  let refunded = ref false in
  let upstream_paid = ref false in
  let prepared = ref false in
  let done_ = ref false in
  let finish ctx outcome =
    if not !done_ then begin
      done_ := true;
      E.observe ctx (Obs.Terminated { pid = self; outcome });
      E.halt ctx
    end
  in
  let try_finish ctx =
    match !decision with
    | Some false ->
        if (not pays) || !refunded || not !prepared then
          finish ctx (if pays then "refunded" else "aborted")
    | Some true ->
        if i = 0 then finish ctx "certified"
        else if !upstream_paid then finish ctx "paid"
    | None -> ()
  in
  let prepare ctx =
    if pays && not !prepared then begin
      prepared := true;
      match e_down with
      | Some e -> E.send ctx ~dst:e (Msg.Money { amount = pay_amount })
      | None -> ()
    end
  in
  {
    E.on_start = (fun ctx -> if i = 0 then prepare ctx);
    on_receive =
      (fun ctx ~src msg ->
        if not !done_ then begin
          (match msg with
          | Msg.Promise_p sv
            when Some src = e_up
                 && Env.promise_p_ok env ~escrow_index:(i - 1) sv ->
              (* incoming leg prepared *)
              if i = n then begin
                E.observe ctx (Obs.Cert_issued { by = self; kind = Obs.Chi });
                E.send ctx ~dst:tm (Msg.Chi (Env.make_chi env))
              end
              else prepare ctx
          | Msg.Tm_decision sv when src = tm && Env.decision_ok env ~tm sv ->
              if !decision = None then begin
                let commit = sv.Xcrypto.Auth.payload.Msg.dec_commit in
                decision := Some commit;
                let kind = if commit then Obs.Chi_commit else Obs.Chi_abort in
                E.observe ctx
                  (Obs.Cert_received { pid = self; kind; valid = true })
              end
          | Msg.Money { amount } when Some src = e_down && amount = pay_amount
            ->
              refunded := true
          | Msg.Money { amount } when Some src = e_up && amount = recv_amount
            ->
              upstream_paid := true
          | _ -> ());
          try_finish ctx
        end);
    on_timer = (fun _ ~label:_ -> ());
  }

(* Escrows: deposit on the prepare instruction, announce the prepared leg
   downstream (the signed P message doubles as the prepared-notice), and
   settle on the notary's decision. *)
let escrow_handlers (env : Env.t) cfg i =
  let topo = env.Env.topo in
  let self = Topology.escrow topo i in
  let cust_up = Topology.customer topo i in
  let cust_down = Topology.customer topo (i + 1) in
  let amount = Env.amount_at env i in
  let book = env.Env.books.(i) in
  let signer = Env.signer_of env self in
  let tm = tm_pid env in
  ignore tm;
  let deposit = ref None in
  let resolved = ref false in
  let pending_decision : bool option ref = ref None in
  let resolve ctx commit =
    match !deposit with
    | None -> pending_decision := Some commit
    | Some dep ->
        if not !resolved then begin
          resolved := true;
          (if commit then begin
             match Ledger.Book.release book dep ~to_:cust_down with
             | Ok () ->
                 E.observe ctx
                   (Obs.Released
                      { escrow = self; deposit = dep; to_ = cust_down; amount });
                 E.send ctx ~dst:cust_down (Msg.Money { amount })
             | Error e ->
                 E.observe ctx
                   (Obs.Rejected
                      { pid = self; what = Fmt.str "release: %a" Ledger.Book.pp_error e })
           end
           else
             match Ledger.Book.refund book dep with
             | Ok () ->
                 E.observe ctx
                   (Obs.Refunded
                      { escrow = self; deposit = dep; depositor = cust_up; amount });
                 E.send ctx ~dst:cust_up (Msg.Money { amount })
             | Error e ->
                 E.observe ctx
                   (Obs.Rejected
                      { pid = self; what = Fmt.str "refund: %a" Ledger.Book.pp_error e }));
          E.observe ctx
            (Obs.Terminated
               { pid = self; outcome = (if commit then "released" else "refunded") });
          E.halt ctx
        end
  in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Tm_decision sv
          when src = tm_pid env && Env.decision_ok env ~tm:(tm_pid env) sv ->
            resolve ctx sv.Xcrypto.Auth.payload.Msg.dec_commit
        | Msg.Money _ when src = cust_up && !deposit = None -> (
            match Ledger.Book.deposit book ~from_:cust_up ~amount with
            | Ok dep ->
                deposit := Some dep;
                E.observe ctx
                  (Obs.Deposited
                     { escrow = self; depositor = cust_up; amount; deposit = dep });
                (* the prepared-notice: a signed window open until the
                   notary's fixed deadline *)
                E.send ctx ~dst:cust_down
                  (Msg.Promise_p
                     (Xcrypto.Auth.sign_value signer ~ser:Msg.ser_promise_p
                        { Msg.p_escrow = self; p_customer = cust_down;
                          a = cfg.deadline }));
                (match !pending_decision with
                | Some c -> resolve ctx c
                | None -> ())
            | Error e ->
                E.observe ctx
                  (Obs.Rejected
                     { pid = self; what = Fmt.str "deposit: %a" Ledger.Book.pp_error e }))
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* The notary: Executed iff Bob's receipt arrives before the deadline on
   the notary's own clock. *)
let notary_handlers (env : Env.t) cfg =
  let self = tm_pid env in
  let signer = Env.signer_of env self in
  let decided = ref None in
  let decide ctx commit =
    if !decided = None then begin
      decided := Some commit;
      E.observe ctx (Obs.Decision_made { by = self; commit });
      E.observe ctx
        (Obs.Cert_issued
           { by = self; kind = (if commit then Obs.Chi_commit else Obs.Chi_abort) });
      let body = { Msg.dec_payment = env.Env.payment; dec_commit = commit } in
      let signed = Xcrypto.Auth.sign_value signer ~ser:Msg.ser_decision body in
      let topo = env.Env.topo in
      List.iter
        (fun pid -> E.send ctx ~dst:pid (Msg.Tm_decision signed))
        (Topology.customers topo @ Topology.escrows topo)
    end
  in
  {
    E.on_start =
      (fun ctx -> E.set_timer ctx ~deadline:cfg.deadline ~label:"T");
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Chi sv when src = Topology.bob env.Env.topo && Env.chi_ok env sv
          ->
            decide ctx true
        | Msg.Chi _ ->
            E.observe ctx (Obs.Rejected { pid = self; what = "bad receipt" })
        | _ -> ());
    on_timer = (fun ctx ~label -> if String.equal label "T" then decide ctx false);
  }

let handlers_for (env : Env.t) cfg pid =
  let topo = env.Env.topo in
  match Topology.role_of topo pid with
  | Some Topology.Alice -> customer_handlers env cfg 0
  | Some Topology.Bob -> customer_handlers env cfg (Topology.hops topo)
  | Some (Topology.Connector i) -> customer_handlers env cfg i
  | Some (Topology.Escrow i) -> escrow_handlers env cfg i
  | _ ->
      if pid = tm_pid env then notary_handlers env cfg
      else invalid_arg "Atomic_protocol.handlers_for: unknown pid"
