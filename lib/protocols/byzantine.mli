(** Byzantine fault strategies.

    The paper assumes "the classic Byzantine model with authentication":
    faulty participants may deviate arbitrarily but cannot forge
    signatures. Each strategy below is a concrete deviation used by the E6
    fault-matrix experiment and the safety property tests; they cover the
    attack surface the paper's properties are stated against:

    - crashes and silence (fail-stop is a special case of Byzantine);
    - money-grabbing escrows (ES / CS under a non-abiding escrow);
    - promise-breaking escrows (premature refund — the behaviour the
      drift-tuned timeouts protect honest escrows from {e accidentally}
      exhibiting);
    - certificate games (forged χ, χ issued early, χ withheld);
    - weak-protocol deviations (impatience, never funding, lying about
      funding).

    A strategy is turned into engine handlers by {!handlers}; the runner
    substitutes them for the honest automaton of the same pid. *)

type t =
  | Crash_at_start  (** never takes a step *)
  | Crash_after_receives of int  (** halts after the k-th delivery *)
  | Mute  (** stays up, reads everything, sends nothing *)
  | Thief_escrow
      (** plays escrow up to the deposit, then releases the funds to its own
          account and goes silent *)
  | Premature_refund_escrow
      (** issues P(a) but refunds immediately, breaking its promise window *)
  | No_resolve_escrow  (** takes the deposit and never resolves it *)
  | Eager_chi_bob  (** issues χ before any promise, then behaves honestly *)
  | Withhold_chi_bob  (** receives P but never issues χ *)
  | Forge_chi_connector
      (** immediately sends a fabricated χ upstream, then plays honestly *)
  | Double_money_customer  (** sends the $ instruction twice *)
  | Impatient of Sim.Sim_time.t
      (** weak protocol: requests abort after the given local delay,
          regardless of progress *)
  | Never_deposit  (** weak protocol: participates but never funds its leg *)
  | False_funded_escrow
      (** weak protocol: reports its leg funded without any deposit *)

val name : t -> string

val applicable_to : t -> Topology.role -> bool
(** Whether the strategy makes sense for the given role (e.g.
    [Thief_escrow] only for escrows). *)

val handlers :
  Env.t -> ?tms:int array -> pid:int -> t -> (Msg.t, Obs.t) Sim.Engine.handlers
(** Raises [Invalid_argument] if the strategy is not {!applicable_to} the
    pid's role. *)

val all : t list
(** Every parameterless strategy, for sweep experiments (the [Impatient]
    entry uses a zero patience). *)
