type t = { hops : int; mutable aux_count : int }

type role =
  | Alice
  | Bob
  | Connector of int
  | Escrow of int
  | Aux of int

let create ~hops =
  if hops < 1 then invalid_arg "Topology.create: need at least one escrow";
  { hops; aux_count = 0 }

let hops t = t.hops

let customer t i =
  if i < 0 || i > t.hops then invalid_arg "Topology.customer: out of range";
  i

let escrow t i =
  if i < 0 || i >= t.hops then invalid_arg "Topology.escrow: out of range";
  t.hops + 1 + i

let alice t = customer t 0
let bob t = customer t t.hops
let aux_base t = (2 * t.hops) + 1
let payment_count t = (2 * t.hops) + 1
let register_aux t k = t.aux_count <- Stdlib.max t.aux_count (k + 1)

let role_of t pid =
  if pid < 0 then None
  else if pid = 0 then Some Alice
  else if pid = t.hops then Some Bob
  else if pid < t.hops then Some (Connector pid)
  else if pid <= 2 * t.hops then Some (Escrow (pid - t.hops - 1))
  else
    let k = pid - aux_base t in
    if k < t.aux_count then Some (Aux k) else None

let rec range lo hi = if lo > hi then [] else lo :: range (lo + 1) hi
let customers t = List.map (customer t) (range 0 t.hops)
let escrows t = List.map (escrow t) (range 0 (t.hops - 1))

let connectors t =
  if t.hops < 2 then [] else List.map (customer t) (range 1 (t.hops - 1))

let customer_index t pid = if pid >= 0 && pid <= t.hops then Some pid else None

let escrow_index t pid =
  let i = pid - t.hops - 1 in
  if i >= 0 && i < t.hops then Some i else None

let escrow_of_customer_down t i =
  if i < 0 || i > t.hops then None
  else if i = t.hops then None
  else Some (escrow t i)

let escrow_of_customer_up t i =
  if i <= 0 || i > t.hops then None else Some (escrow t (i - 1))

let pp_role ppf = function
  | Alice -> Fmt.string ppf "Alice"
  | Bob -> Fmt.string ppf "Bob"
  | Connector i -> Fmt.pf ppf "Chloe%d" i
  | Escrow i -> Fmt.pf ppf "e%d" i
  | Aux i -> Fmt.pf ppf "aux%d" i

let pp ppf t =
  Fmt.pf ppf "chain(n=%d): c0" t.hops;
  for i = 0 to t.hops - 1 do
    Fmt.pf ppf " - e%d - c%d" i (i + 1)
  done
