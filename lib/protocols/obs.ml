type cert_kind = Chi | Chi_commit | Chi_abort

type t =
  | Deposited of { escrow : int; depositor : int; amount : int; deposit : int }
  | Released of { escrow : int; deposit : int; to_ : int; amount : int }
  | Refunded of { escrow : int; deposit : int; depositor : int; amount : int }
  | Cert_issued of { by : int; kind : cert_kind }
  | Cert_received of { pid : int; kind : cert_kind; valid : bool }
  | Funded_reported of { escrow : int; amount : int }
  | Abort_requested of { by : int }
  | Decision_made of { by : int; commit : bool }
  | Terminated of { pid : int; outcome : string }
  | Rejected of { pid : int; what : string }
  | Note of { pid : int; what : string }

let tag = function
  | Deposited _ -> "deposited"
  | Released _ -> "released"
  | Refunded _ -> "refunded"
  | Cert_issued _ -> "cert-issued"
  | Cert_received _ -> "cert-received"
  | Funded_reported _ -> "funded"
  | Abort_requested _ -> "abort-requested"
  | Decision_made _ -> "decision"
  | Terminated _ -> "terminated"
  | Rejected _ -> "rejected"
  | Note _ -> "note"

let pp_cert_kind ppf = function
  | Chi -> Fmt.string ppf "χ"
  | Chi_commit -> Fmt.string ppf "χc"
  | Chi_abort -> Fmt.string ppf "χa"

let pp ppf = function
  | Deposited { escrow; depositor; amount; deposit } ->
      Fmt.pf ppf "deposited(e=%d, by=%d, %d, #%d)" escrow depositor amount
        deposit
  | Released { escrow; deposit; to_; amount } ->
      Fmt.pf ppf "released(e=%d, #%d -> %d, %d)" escrow deposit to_ amount
  | Refunded { escrow; deposit; depositor; amount } ->
      Fmt.pf ppf "refunded(e=%d, #%d -> %d, %d)" escrow deposit depositor
        amount
  | Cert_issued { by; kind } ->
      Fmt.pf ppf "cert-issued(by=%d, %a)" by pp_cert_kind kind
  | Cert_received { pid; kind; valid } ->
      Fmt.pf ppf "cert-received(pid=%d, %a, valid=%b)" pid pp_cert_kind kind
        valid
  | Funded_reported { escrow; amount } ->
      Fmt.pf ppf "funded(e=%d, %d)" escrow amount
  | Abort_requested { by } -> Fmt.pf ppf "abort-requested(by=%d)" by
  | Decision_made { by; commit } ->
      Fmt.pf ppf "decision(by=%d, %s)" by (if commit then "commit" else "abort")
  | Terminated { pid; outcome } -> Fmt.pf ppf "terminated(%d, %s)" pid outcome
  | Rejected { pid; what } -> Fmt.pf ppf "rejected(%d, %s)" pid what
  | Note { pid; what } -> Fmt.pf ppf "note(%d, %s)" pid what
