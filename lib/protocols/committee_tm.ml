open Sim
module E = Engine
module Committee = Quorum.Committee

type config = {
  qs : Quorum_system.t;
  registry : Xcrypto.Auth.registry;
  batch_cap : int;
  pipeline : int;
  base_timeout : Sim_time.t;
  reply_to : int -> int array;
  hops_of : int -> int;
}

let auth_ids cfg = Array.init (Quorum_system.size cfg.qs) (fun k -> k)

let committee_config cfg ~index ~signer =
  {
    Committee.qs = cfg.qs;
    self = index;
    auth_ids = auth_ids cfg;
    registry = cfg.registry;
    signer;
    batch_cap = cfg.batch_cap;
    pipeline = cfg.pipeline;
    base_timeout = cfg.base_timeout;
  }

let verify cfg ~signer = Committee.verify_cert (committee_config cfg ~index:0 ~signer)

(* Handlers for committee replica [index]. The replicas are registered as
   one block with a common [base], so intra-committee traffic uses logical
   pids (0 .. size-1) and the engine rebases [src] for us; participants
   outside the block are reached with absolute pids via [reply_to]. The
   replica's committee state is returned alongside so the host can read
   deterministic post-run statistics (certs, batches, rounds). *)
let handlers cfg ~index ~signer =
  let n = Quorum_system.size cfg.qs in
  let com = Committee.create (committee_config cfg ~index ~signer) in
  (* per-item request aggregation (sequencer only): an item's verdict is
     [commit] once every leg reported funded, [abort] on the first abort
     request — the single TM's rule, applied across payments *)
  let legs : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let aborted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let announced : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let announce_cert ctx (cert : Committee.batch Consensus.Dls.decision_cert) =
    (* push the batch certificate to every participant of every covered
       item, deduplicated, in batch order — deterministic *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (v : Committee.verdict) ->
        Array.iter
          (fun p ->
            if not (Hashtbl.mem seen p) then begin
              Hashtbl.add seen p ();
              E.send_absolute ctx ~dst:p (Msg.Quorum_decision { cert })
            end)
          (cfg.reply_to v.Committee.item))
      cert.Consensus.Dls.d_value
  in
  let interpret ctx effs =
    List.iter
      (fun eff ->
        match eff with
        | Committee.Send { to_; m } -> E.send ctx ~dst:to_ (Msg.Quorum_msg m)
        | Committee.Broadcast m ->
            for k = 0 to n - 1 do
              E.send ctx ~dst:k (Msg.Quorum_msg m)
            done
        | Committee.Set_slot_timer { slot; round; after } ->
            E.set_timer_after ctx ~after
              ~label:(Printf.sprintf "slot-%d-round-%d" slot round)
        | Committee.Certified { slot; cert } ->
            (* only the sequencer announces, keeping fan-out O(batch)
               rather than O(batch * committee). Sequencer fail-over is
               out of scope (docs/committees.md). *)
            if index = 0 && not (Hashtbl.mem announced slot) then begin
              Hashtbl.add announced slot ();
              announce_cert ctx cert
            end)
      effs
  in
  let submit ctx ~item commit =
    interpret ctx
      (Committee.request com ~now:(E.local_now ctx) { Committee.item; commit })
  in
  let on_request ctx ~item (req : Msg.quorum_req) =
    match Committee.verdict_of com ~item with
    | Some (_, slot) -> (
        (* already decided: the requester likely missed the broadcast —
           re-announce the cached certificate *)
        match Committee.cert_of_slot com slot with
        | Some cert -> announce_cert ctx cert
        | None -> ())
    | None -> (
        match req with
        | Msg.Abort_wanted ->
            if not (Hashtbl.mem aborted item) then begin
              Hashtbl.replace aborted item ();
              submit ctx ~item false
            end
        | Msg.Leg_funded { escrow_index } ->
            let tbl =
              match Hashtbl.find_opt legs item with
              | Some t -> t
              | None ->
                  let t = Hashtbl.create 4 in
                  Hashtbl.replace legs item t;
                  t
            in
            if not (Hashtbl.mem tbl escrow_index) then begin
              Hashtbl.replace tbl escrow_index ();
              if
                Hashtbl.length tbl >= cfg.hops_of item
                && not (Hashtbl.mem aborted item)
              then submit ctx ~item true
            end)
  in
  ( {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Quorum_req { item; req } ->
            (* requests are content-trusted (benchmark scope); only the
               sequencer aggregates them *)
            if index = 0 && item >= 0 then on_request ctx ~item req
        | Msg.Quorum_msg m ->
            (* intra-block traffic: [src] is already the sender's logical
               replica index *)
            if src >= 0 && src < n then
              interpret ctx
                (Committee.on_msg com ~now:(E.local_now ctx) ~from_:src m)
        | _ -> ());
    on_timer =
      (fun ctx ~label ->
        match String.split_on_char '-' label with
        | [ "slot"; s; "round"; r ] -> (
            match (int_of_string_opt s, int_of_string_opt r) with
            | Some slot, Some round ->
                interpret ctx
                  (Committee.on_slot_timeout com ~now:(E.local_now ctx) ~slot
                     ~round)
            | _ -> ())
        | _ -> ());
  },
    com )
