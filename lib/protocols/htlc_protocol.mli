(** Hashed-timelock payment chain — the folklore baseline.

    This is the protocol family deployed by Lightning-style networks and by
    the timelock side of Interledger: Bob mints a secret preimage [s] and
    circulates the lock [H(s)]; each leg is deposited under that hashlock
    with a refund timelock, timelocks {e decreasing} toward Bob so an
    upstream escrow never refunds while a downstream claim is still
    possible; Bob claims with [s], and the revealed key propagates upstream
    hop by hop.

    The baseline exists to quantify what the paper's protocol buys:

    - no certificate χ: Alice's "receipt" is the bare preimage, which only
      proves that {e someone} claimed, not that Bob's obligation
      statement was met;
    - worst-case money-lock time grows as Θ(n²·δ) summed over legs
      (timelocks nest linearly per leg), against the paper's nested a{_i}
      windows that release the moment χ passes — experiment E5 measures
      this;
    - the same drift-race on the refund deadline exists per leg. *)

type config = {
  hop_window : Sim.Sim_time.t;
      (** per-hop slice of the timelock ladder; leg i refunds after
          [(hops - i) * 4 + 2] of these plus drift inflation *)
}

val default_config : Env.t -> config
(** A safe ladder derived from the env's δ, σ and drift. *)

val window_of : Env.t -> config -> int -> Sim.Sim_time.t
(** The refund timelock of leg [i] (local ticks from deposit). *)

val handlers_for :
  Env.t -> config -> Xcrypto.Hashlock.preimage -> int ->
  (Msg.t, Obs.t) Sim.Engine.handlers
(** Honest handlers by pid. The preimage is Bob's; other participants only
    ever see it through protocol messages (their closures ignore it). *)

val fresh_preimage : seed:int -> Xcrypto.Hashlock.preimage
