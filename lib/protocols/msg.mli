(** Wire messages of all payment protocols.

    One message type serves every protocol in the library (the engine is
    monomorphic in its message type per run); each protocol uses the subset
    it needs. The three message kinds of the paper's §4 appear directly:

    - the value message [$] ({!constructor-Money}) — an instruction or
      notification concerning funds held by the receiving/sending escrow;
      value itself moves on the escrow's {!Ledger.Book};
    - the certificate χ ({!constructor-Chi}) — "signed by Bob, saying that
      Alice's obligation to pay him has been met";
    - the promises G(d) and P(a) — signed by the escrow issuing them.

    The weak protocol (Thm 3) adds funded reports, abort requests and the
    transaction manager's decision certificates; the notary-committee
    variant tunnels consensus messages; the HTLC baseline adds hashlock
    setup/claim messages. *)

type promise_g = { g_escrow : int; g_customer : int; d : Sim.Sim_time.t }
(** "I guarantee that if I receive $ from you at my local time w, then I
    will send you either $ or χ by my local time w + d." *)

type promise_p = { p_escrow : int; p_customer : int; a : Sim.Sim_time.t }
(** "I promise that if I receive χ from you at my time v, with
    v < now + a, then I will send you $ by my local time v + ε." *)

type chi_body = { x_payment : int; x_bob : int }
(** χ's statement; [x_payment] identifies the payment, [x_bob] the signer
    whose obligation-satisfaction it certifies. *)

type funded_body = { f_escrow : int; f_payment : int; f_amount : int }
type decision_body = { dec_payment : int; dec_commit : bool }

type chain_tx =
  | Tx_funded of funded_body Xcrypto.Auth.signed
  | Tx_abort of { customer : int; payment : int }
      (** transactions of the chain-hosted transaction-manager contract *)

type t =
  | Money of { amount : int }
  | Promise_g of promise_g Xcrypto.Auth.signed
  | Promise_p of promise_p Xcrypto.Auth.signed
  | Chi of chi_body Xcrypto.Auth.signed
  | Funded of funded_body Xcrypto.Auth.signed
      (** weak protocol: escrow → TM, "my leg is deposited" *)
  | Abort_req of { payment : int }  (** weak protocol: customer → TM *)
  | Tm_decision of decision_body Xcrypto.Auth.signed
      (** single-party TM's χc/χa *)
  | Committee_decision of {
      commit : bool;
      cert : bool Consensus.Dls.decision_cert;
    }  (** notary committee's χc/χa: a consensus decision certificate *)
  | Notary of bool Consensus.Dls.msg  (** committee-internal *)
  | Chain_gossip of chain_tx Consensus.Chain.msg
      (** chain-TM internal: block announcements between validators *)
  | Htlc_setup of { lock : Xcrypto.Hashlock.lock; amount : int }
  | Htlc_claim of { preimage : Xcrypto.Hashlock.preimage }
  | Htlc_key of { preimage : Xcrypto.Hashlock.preimage }
      (** escrow → upstream customer: the revealed key *)
  | Quorum_req of { item : int; req : quorum_req }
      (** shared-committee mode: a payment participant asks the external
          batching committee for a verdict on its item. Sent with
          absolute pids across multiplexer blocks; content-trusted — the
          certificate flowing back is the cryptographic interface *)
  | Quorum_msg of Quorum.Committee.msg
      (** shared-committee internal: slot-tagged consensus traffic *)
  | Quorum_decision of {
      cert : Quorum.Committee.batch Consensus.Dls.decision_cert;
    }
      (** a batch certificate covering many items; each participant
          verifies the quorum signatures and extracts its own verdict *)
  | Start  (** generic kick-off ping *)
  | Traffic_done of { payment : int }
      (** load-scheduler control plane: one participant of [payment]
          reached its terminal state (sent by multiplexer wrappers, never
          by protocol automata) *)

and quorum_req = Leg_funded of { escrow_index : int } | Abort_wanted

val tag : t -> string
(** Stable label used in traces and by adversaries to target message
    classes (e.g. delay only ["chi"]). *)

val pp : Format.formatter -> t -> unit

(** {1 Serialization for signing} *)

val ser_promise_g : promise_g -> string
val ser_promise_p : promise_p -> string
val ser_chi : chi_body -> string
val ser_funded : funded_body -> string
val ser_decision : decision_body -> string
val ser_bool : bool -> string
(** Serializer for committee consensus values (commit?). *)

val chain_tx_equal : chain_tx -> chain_tx -> bool
(** Structural identity used by the chain's mempool/replay dedupe: funded
    reports are keyed by escrow, abort requests by customer. *)
