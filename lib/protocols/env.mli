(** Shared run environment: topology + parameters + ledgers + keys.

    One {!t} describes a single payment attempt: who the participants are,
    how much moves on each leg (Chloe's commissions make the amounts strictly
    decreasing toward Bob), the per-escrow ledger {!Ledger.Book}s, and the
    signature registry with per-participant signing capabilities. *)

type t = {
  topo : Topology.t;
  params : Params.t;
  payment : int;  (** payment identifier signed into certificates *)
  value : int;  (** what Bob is owed *)
  amounts : int array;
      (** [amounts.(i)] is what c{_i} pays at e{_i}; decreasing in [i] *)
  books : Ledger.Book.t array;  (** [books.(i)] is e{_i}'s ledger *)
  registry : Xcrypto.Auth.registry;
  signers : (int, Xcrypto.Auth.signer) Hashtbl.t;
      (** per-pid signing capabilities; use {!signer_of} *)
}

val make :
  topo:Topology.t ->
  params:Params.t ->
  ?payment:int ->
  ?value:int ->
  ?commission:int ->
  ?amounts:int array ->
  ?seed:int ->
  ?books:Ledger.Book.t array ->
  unit ->
  t
(** Books are opened with exactly the balances the protocol needs: c{_i}
    holds [amounts.(i)] at e{_i}, the downstream customer and the escrow
    itself hold 0 there. Default [value] 1000, [commission] 10, [seed] 7.

    [amounts] overrides the uniform-commission ladder with explicit
    per-leg amounts (graph routing charges each edge its own commission).
    It must have one entry per hop, decrease weakly toward Bob, and end
    at exactly [value]; [commission] is then ignored.

    [books] (load runs) shares pre-existing books — one per hop — between
    concurrent payments so they contend for the same liquidity. The caller
    owns funding; [make] only opens any missing accounts with balance 0 and
    never re-funds existing ones. *)

val signer_of : t -> int -> Xcrypto.Auth.signer
(** The signing capability of pid — handed by the runner to the process
    (and only to it; this is what makes signatures unforgeable in the
    model). Idempotent per pid. *)

val amount_at : t -> int -> int
(** [amount_at t i] = what moves through escrow e{_i}. *)

val initial_balance : t -> pid:int -> escrow:int -> int
(** What [pid] held at escrow index [escrow] before the run — the baseline
    for the safety properties. *)

val chi_ok : t -> Msg.chi_body Xcrypto.Auth.signed -> bool
(** Is this a genuine χ for this payment, signed by Bob? *)

val make_chi : t -> Msg.chi_body Xcrypto.Auth.signed
(** Bob's signature over the χ statement (usable only by code holding the
    env — Byzantine strategies instead use {!Xcrypto.Auth.forge_value},
    which verification rejects). *)

val promise_g_ok : t -> escrow_index:int -> Msg.promise_g Xcrypto.Auth.signed -> bool
val promise_p_ok : t -> escrow_index:int -> Msg.promise_p Xcrypto.Auth.signed -> bool
val decision_ok : t -> tm:int -> Msg.decision_body Xcrypto.Auth.signed -> bool
val funded_ok : t -> escrow_index:int -> Msg.funded_body Xcrypto.Auth.signed -> bool
