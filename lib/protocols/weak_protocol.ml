open Sim
module E = Engine
module Dls = Consensus.Dls

type tm_kind =
  | Single
  | Committee of { f : int }
  | Quorum of { qs : Quorum_system.t }
  | Chain of { validators : int }
  | Shared of {
      pids : int array;
      item : int;
      verify : Quorum.Committee.batch Consensus.Dls.decision_cert -> bool;
    }
type notary_fault = Notary_honest | Notary_crash | Notary_equivocate

type config = {
  tm : tm_kind;
  patience : Sim_time.t;
  deposit_delay : Sim_time.t;
  tm_base_timeout : Sim_time.t;
  notary_faults : notary_fault array;
}

let default_config =
  {
    tm = Single;
    patience = 5_000;
    deposit_delay = 10;
    tm_base_timeout = 200;
    notary_faults = [||];
  }

let committee_size f = (3 * f) + 1

let tm_pids (env : Env.t) cfg =
  let base = Topology.aux_base env.Env.topo in
  match cfg.tm with
  | Single -> [| base |]
  | Committee { f } -> Array.init (committee_size f) (fun k -> base + k)
  | Quorum { qs } -> Array.init (Quorum_system.size qs) (fun k -> base + k)
  | Chain { validators } -> Array.init validators (fun k -> base + k)
  | Shared _ -> [||]

let process_count env cfg =
  Topology.payment_count env.Env.topo + Array.length (tm_pids env cfg)

let dls_cfg (env : Env.t) cfg ~self_index ~signer ~validate =
  let pids = tm_pids env cfg in
  let qs =
    match cfg.tm with
    | Committee { f } -> Quorum_system.majority ~n:(committee_size f) ~f ()
    | Quorum { qs } -> qs
    | Single | Chain _ | Shared _ ->
        (* degenerate: these TM kinds never run an in-block DLS, but keep
           the config total (and valid) by requiring every replica to
           sign *)
        let n = max 1 (Array.length pids) in
        Quorum_system.majority ~q:n ~n ~f:0 ()
  in
  {
    Dls.qs;
    self = self_index;
    auth_ids = pids;
    registry = env.Env.registry;
    signer;
    ser = Msg.ser_bool;
    equal = Bool.equal;
    validate;
    base_timeout = cfg.tm_base_timeout;
  }

let verify_committee_decision (env : Env.t) cfg dc =
  match cfg.tm with
  | Single | Chain _ | Shared _ -> false
  | Committee _ | Quorum _ ->
      let pids = tm_pids env cfg in
      (* verification-only config: the signer field is unused by
         verify_decision, any registered signer will do *)
      let signer = Env.signer_of env pids.(0) in
      let vcfg =
        dls_cfg env cfg ~self_index:0 ~signer ~validate:(fun _ -> true)
      in
      Dls.verify_decision vcfg dc

(* Decode a decision message addressed to this run, from any TM kind. *)
let decision_of_msg (env : Env.t) cfg ~src msg =
  let pids = tm_pids env cfg in
  match (cfg.tm, msg) with
  | Single, Msg.Tm_decision sv ->
      if src = pids.(0) && Env.decision_ok env ~tm:pids.(0) sv then
        Some sv.Xcrypto.Auth.payload.Msg.dec_commit
      else None
  | Chain _, Msg.Tm_decision sv ->
      (* the chain is trusted as a whole: any validator's signed decision
         speaks for the contract (they all replay the same chain) *)
      if
        Array.exists (fun p -> p = src) pids
        && Env.decision_ok env ~tm:src sv
      then Some sv.Xcrypto.Auth.payload.Msg.dec_commit
      else None
  | (Committee _ | Quorum _), Msg.Committee_decision { commit; cert } ->
      if
        Array.exists (fun p -> p = src) pids
        && Bool.equal cert.Dls.d_value commit
        && verify_committee_decision env cfg cert
      then Some commit
      else None
  | Shared { item; verify; _ }, Msg.Quorum_decision { cert } ->
      (* the certificate is self-authenticating (a quorum of committee
         signatures over the whole batch), so [src] is irrelevant: any
         process may relay it. Extract this payment's own verdict. *)
      if verify cert then
        List.find_map
          (fun (v : Quorum.Committee.verdict) ->
            if v.Quorum.Committee.item = item then
              Some v.Quorum.Committee.commit
            else None)
          cert.Dls.d_value
      else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Customers                                                            *)
(* ------------------------------------------------------------------ *)

let customer_handlers (env : Env.t) cfg i =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  if i < 0 || i > n then invalid_arg "Weak_protocol.customer_handlers: index";
  let self = Topology.customer topo i in
  let pays = i < n in
  let e_down = if pays then Some (Topology.escrow topo i) else None in
  let e_up = if i > 0 then Some (Topology.escrow topo (i - 1)) else None in
  let pay_amount = if pays then Env.amount_at env i else 0 in
  let recv_amount = if i > 0 then Env.amount_at env (i - 1) else 0 in
  let tms = tm_pids env cfg in
  let decision : bool option ref = ref None in
  let refunded = ref false in
  let upstream_paid = ref false in
  let deposited = ref false in
  let done_ = ref false in
  let request_abort ctx =
    E.observe ctx (Obs.Abort_requested { by = self });
    match cfg.tm with
    | Shared { pids; item; _ } ->
        (* the shared committee lives in its own block: address its
           sequencer with an absolute pid *)
        E.send_absolute ctx ~dst:pids.(0)
          (Msg.Quorum_req { item; req = Msg.Abort_wanted })
    | _ ->
        Array.iter
          (fun tm ->
            E.send ctx ~dst:tm (Msg.Abort_req { payment = env.Env.payment }))
          tms
  in
  let finish ctx outcome =
    if not !done_ then begin
      done_ := true;
      E.observe ctx (Obs.Terminated { pid = self; outcome });
      E.halt ctx
    end
  in
  (* Terminate as soon as this customer's own obligations are settled:
     - abort decided: payers wait for their refund; Bob is done at once
       (his certificate χa is the decision he holds);
     - commit decided: Alice is done (χc in hand, CS1); receivers wait for
       the upstream release. *)
  let try_finish ctx =
    match !decision with
    | Some false ->
        if (not pays) || !refunded || not !deposited then
          finish ctx (if pays then "refunded" else "aborted")
    | Some true ->
        if i = 0 then finish ctx "certified"
        else if !upstream_paid then finish ctx "paid"
    | None -> ()
  in
  {
    E.on_start =
      (fun ctx ->
        if pays then
          E.set_timer_after ctx ~after:cfg.deposit_delay ~label:"deposit";
        if not (Sim_time.is_infinite cfg.patience) then
          E.set_timer_after ctx
            ~after:(Sim_time.add cfg.deposit_delay cfg.patience)
            ~label:"patience");
    on_receive =
      (fun ctx ~src msg ->
        if not !done_ then begin
          (match decision_of_msg env cfg ~src msg with
          | Some commit ->
              if !decision = None then begin
                decision := Some commit;
                let kind = if commit then Obs.Chi_commit else Obs.Chi_abort in
                E.observe ctx
                  (Obs.Cert_received { pid = self; kind; valid = true })
              end
          | None -> ());
          (match msg with
          | Msg.Money { amount } when Some src = e_down && amount = pay_amount
            ->
              refunded := true
          | Msg.Money { amount } when Some src = e_up && amount = recv_amount
            ->
              upstream_paid := true
          | _ -> ());
          try_finish ctx
        end);
    on_timer =
      (fun ctx ~label ->
        if not !done_ then
          match label with
          | "deposit" ->
              if pays && not !deposited then begin
                deposited := true;
                match e_down with
                | Some e -> E.send ctx ~dst:e (Msg.Money { amount = pay_amount })
                | None -> ()
              end
          | "patience" -> if !decision = None then request_abort ctx
          | _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Escrows                                                              *)
(* ------------------------------------------------------------------ *)

let escrow_handlers (env : Env.t) cfg i =
  let topo = env.Env.topo in
  let self = Topology.escrow topo i in
  let cust_up = Topology.customer topo i in
  let cust_down = Topology.customer topo (i + 1) in
  let amount = Env.amount_at env i in
  let book = env.Env.books.(i) in
  let signer = Env.signer_of env self in
  let tms = tm_pids env cfg in
  let deposit = ref None in
  let resolved = ref false in
  let pending_decision : bool option ref = ref None in
  let resolve ctx commit =
    match !deposit with
    | None -> pending_decision := Some commit
    | Some dep ->
        if not !resolved then begin
          resolved := true;
          if commit then begin
            match Ledger.Book.release book dep ~to_:cust_down with
            | Ok () ->
                E.observe ctx
                  (Obs.Released
                     { escrow = self; deposit = dep; to_ = cust_down; amount });
                E.send ctx ~dst:cust_down (Msg.Money { amount })
            | Error e ->
                E.observe ctx
                  (Obs.Rejected
                     { pid = self; what = Fmt.str "release: %a" Ledger.Book.pp_error e })
          end
          else begin
            match Ledger.Book.refund book dep with
            | Ok () ->
                E.observe ctx
                  (Obs.Refunded
                     { escrow = self; deposit = dep; depositor = cust_up; amount });
                E.send ctx ~dst:cust_up (Msg.Money { amount })
            | Error e ->
                E.observe ctx
                  (Obs.Rejected
                     { pid = self; what = Fmt.str "refund: %a" Ledger.Book.pp_error e })
          end;
          E.observe ctx
            (Obs.Terminated
               { pid = self; outcome = (if commit then "released" else "refunded") });
          E.halt ctx
        end
  in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match decision_of_msg env cfg ~src msg with
        | Some commit -> resolve ctx commit
        | None -> (
            match msg with
            | Msg.Money _ when src = cust_up && !deposit = None -> (
                match Ledger.Book.deposit book ~from_:cust_up ~amount with
                | Ok dep ->
                    deposit := Some dep;
                    E.observe ctx
                      (Obs.Deposited
                         { escrow = self; depositor = cust_up; amount; deposit = dep });
                    E.observe ctx (Obs.Funded_reported { escrow = self; amount });
                    (match cfg.tm with
                    | Shared { pids; item; _ } ->
                        E.send_absolute ctx ~dst:pids.(0)
                          (Msg.Quorum_req
                             { item; req = Msg.Leg_funded { escrow_index = i } })
                    | _ ->
                        let body =
                          {
                            Msg.f_escrow = self;
                            f_payment = env.Env.payment;
                            f_amount = amount;
                          }
                        in
                        let signed =
                          Xcrypto.Auth.sign_value signer ~ser:Msg.ser_funded body
                        in
                        Array.iter
                          (fun tm -> E.send ctx ~dst:tm (Msg.Funded signed))
                          tms);
                    (* a decision that raced ahead of the deposit *)
                    (match !pending_decision with
                    | Some c -> resolve ctx c
                    | None -> ())
                | Error e ->
                    E.observe ctx
                      (Obs.Rejected
                         { pid = self; what = Fmt.str "deposit: %a" Ledger.Book.pp_error e }))
            | _ -> ()));
    on_timer = (fun _ ~label:_ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Transaction managers                                                 *)
(* ------------------------------------------------------------------ *)

let broadcast_to_participants (env : Env.t) ctx msg =
  let topo = env.Env.topo in
  List.iter
    (fun pid -> E.send ctx ~dst:pid msg)
    (Topology.customers topo @ Topology.escrows topo)

let single_tm_handlers (env : Env.t) cfg =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let self = (tm_pids env cfg).(0) in
  let signer = Env.signer_of env self in
  let funded = Hashtbl.create 8 in
  let decided = ref None in
  let decide ctx commit =
    if !decided = None then begin
      decided := Some commit;
      E.observe ctx (Obs.Decision_made { by = self; commit });
      E.observe ctx
        (Obs.Cert_issued
           { by = self; kind = (if commit then Obs.Chi_commit else Obs.Chi_abort) });
      let body = { Msg.dec_payment = env.Env.payment; dec_commit = commit } in
      let signed = Xcrypto.Auth.sign_value signer ~ser:Msg.ser_decision body in
      broadcast_to_participants env ctx (Msg.Tm_decision signed)
    end
  in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Funded sv -> (
            match Topology.escrow_index topo src with
            | Some idx when Env.funded_ok env ~escrow_index:idx sv ->
                Hashtbl.replace funded idx ();
                if Hashtbl.length funded = n then decide ctx true
            | Some _ | None ->
                E.observe ctx (Obs.Rejected { pid = self; what = "bad funded report" }))
        | Msg.Abort_req { payment } when payment = env.Env.payment -> (
            match Topology.customer_index topo src with
            | Some _ -> decide ctx false
            | None ->
                E.observe ctx
                  (Obs.Rejected { pid = self; what = "abort-req from non-customer" }))
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let notary_handlers (env : Env.t) cfg ~index =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let pids = tm_pids env cfg in
  let self = pids.(index) in
  let signer = Env.signer_of env self in
  let funded = Hashtbl.create 8 in
  let abort_seen = ref false in
  let started = ref false in
  let has_pref = ref false in
  let announced = ref false in
  (* External validity: commit needs every leg reported funded (to this
     notary), abort needs an actual abort request — a committee never
     aborts a payment nobody complained about. *)
  let validate commit =
    if commit then Hashtbl.length funded >= n else !abort_seen
  in
  let dls =
    Dls.create (dls_cfg env cfg ~self_index:index ~signer ~validate)
  in
  let rec interpret ctx effs =
    List.iter
      (fun eff ->
        match eff with
        | Dls.Send { to_; m } -> E.send ctx ~dst:pids.(to_) (Msg.Notary m)
        | Dls.Broadcast m ->
            Array.iter (fun p -> E.send ctx ~dst:p (Msg.Notary m)) pids
        | Dls.Set_round_timer { round; after } ->
            E.set_timer_after ctx ~after
              ~label:(Printf.sprintf "dls-round-%d" round)
        | Dls.Decided dc ->
            if not !announced then begin
              announced := true;
              E.observe ctx (Obs.Decision_made { by = self; commit = dc.Dls.d_value });
              E.observe ctx
                (Obs.Cert_issued
                   {
                     by = self;
                     kind = (if dc.Dls.d_value then Obs.Chi_commit else Obs.Chi_abort);
                   });
              broadcast_to_participants env ctx
                (Msg.Committee_decision { commit = dc.Dls.d_value; cert = dc })
            end)
      effs;
    ignore interpret
  in
  let maybe_start ctx =
    let pref =
      if !abort_seen then Some false
      else if Hashtbl.length funded >= n then Some true
      else None
    in
    match pref with
    | Some v ->
        if not !started then begin
          started := true;
          has_pref := true;
          interpret ctx (Dls.start dls ~my_value:v)
        end
        else if not !has_pref then begin
          has_pref := true;
          interpret ctx (Dls.update_preference dls v)
        end
    | None -> ()
  in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Funded sv -> (
            match Topology.escrow_index topo src with
            | Some idx when Env.funded_ok env ~escrow_index:idx sv ->
                Hashtbl.replace funded idx ();
                maybe_start ctx
            | Some _ | None -> ())
        | Msg.Abort_req { payment } when payment = env.Env.payment -> (
            match Topology.customer_index topo src with
            | Some _ ->
                abort_seen := true;
                maybe_start ctx
            | None -> ())
        | Msg.Notary m -> (
            match
              Array.to_list pids |> List.mapi (fun k p -> (k, p))
              |> List.find_opt (fun (_, p) -> p = src)
            with
            | Some (k, _) ->
                (* a peer is active: join the rounds even without a
                   preference of our own — we can still echo and vote *)
                if not !started then begin
                  started := true;
                  interpret ctx (Dls.join dls)
                end;
                interpret ctx (Dls.on_msg dls ~from_:k m)
            | None -> ())
        | _ -> ());
    on_timer =
      (fun ctx ~label ->
        match
          int_of_string_opt
            (Option.value ~default:""
               (List.nth_opt (String.split_on_char '-' label) 2))
        with
        | Some round -> interpret ctx (Dls.on_round_timeout dls round)
        | None -> ());
  }

(* An equivocating notary: as round-0 leader it proposes commit to one half
   of the committee and abort to the other, and it signs echoes for every
   proposal it sees. Safety of the committee's decision must survive it. *)
let equivocating_notary (env : Env.t) cfg ~index =
  let pids = tm_pids env cfg in
  let self = pids.(index) in
  let signer = Env.signer_of env self in
  let echo_for round value =
    let body = { Dls.e_round = round; e_value = value } in
    let ser (b : bool Dls.echo_body) =
      Printf.sprintf "echo|%d|%s" b.Dls.e_round (Msg.ser_bool b.Dls.e_value)
    in
    Msg.Notary (Dls.Echo (Xcrypto.Auth.sign_value signer ~ser body))
  in
  {
    E.on_start =
      (fun ctx ->
        if Dls.leader_of ~n:(Array.length pids) 0 = index then
          Array.iteri
            (fun k p ->
              let value = k mod 2 = 0 in
              E.send ctx ~dst:p
                (Msg.Notary (Dls.Propose { round = 0; value; justif = None })))
            pids);
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Notary (Dls.Propose { round; value; _ })
          when Array.exists (fun p -> p = src) pids ->
            Array.iter (fun p -> E.send ctx ~dst:p (echo_for round value)) pids
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* ---------------- the chain-hosted contract validators ---------------- *)

module Chain = Consensus.Chain

type contract_state = { funded_legs : int list; contract_decided : bool option }

let chain_validator_handlers (env : Env.t) cfg ~index =
  let topo = env.Env.topo in
  let n = Topology.hops topo in
  let pids = tm_pids env cfg in
  let self = pids.(index) in
  let signer = Env.signer_of env self in
  let apply st tx =
    match st.contract_decided with
    | Some _ -> (st, [])
    | None -> (
        match tx with
        | Msg.Tx_funded sv ->
            let leg = sv.Xcrypto.Auth.payload.Msg.f_escrow in
            let funded_legs =
              if List.mem leg st.funded_legs then st.funded_legs
              else leg :: st.funded_legs
            in
            if List.length funded_legs = n then
              ({ funded_legs; contract_decided = Some true }, [ true ])
            else ({ st with funded_legs }, [])
        | Msg.Tx_abort _ ->
            ({ st with contract_decided = Some false }, [ false ]))
  in
  let chain =
    Chain.create
      {
        Chain.n = Array.length pids;
        self = index;
        block_interval = cfg.tm_base_timeout;
        initial_state = { funded_legs = []; contract_decided = None };
        apply;
        tx_equal = Msg.chain_tx_equal;
      }
  in
  let announced = ref false in
  let announce_decision ctx commit =
    if not !announced then begin
      announced := true;
      E.observe ctx (Obs.Decision_made { by = self; commit });
      E.observe ctx
        (Obs.Cert_issued
           { by = self; kind = (if commit then Obs.Chi_commit else Obs.Chi_abort) });
      let body = { Msg.dec_payment = env.Env.payment; dec_commit = commit } in
      let signed = Xcrypto.Auth.sign_value signer ~ser:Msg.ser_decision body in
      broadcast_to_participants env ctx (Msg.Tm_decision signed)
    end
  in
  let interpret ctx effs =
    List.iter
      (fun eff ->
        match eff with
        | Chain.Broadcast m ->
            Array.iter (fun p -> E.send ctx ~dst:p (Msg.Chain_gossip m)) pids
        | Chain.Set_round_timer { round; after } ->
            E.set_timer_after ctx ~after
              ~label:(Printf.sprintf "chain-round-%d" round)
        | Chain.Emit events ->
            List.iter (fun commit -> announce_decision ctx commit) events)
      effs
  in
  let validator_index src =
    let rec go k = if k >= Array.length pids then None
      else if pids.(k) = src then Some k else go (k + 1)
    in
    go 0
  in
  {
    E.on_start = (fun ctx -> interpret ctx (Chain.start chain));
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Funded sv -> (
            match Topology.escrow_index topo src with
            | Some idx when Env.funded_ok env ~escrow_index:idx sv ->
                interpret ctx
                  (Chain.on_msg chain ~from_:None (Chain.Submit (Msg.Tx_funded sv)))
            | Some _ | None -> ())
        | Msg.Abort_req { payment } when payment = env.Env.payment -> (
            match Topology.customer_index topo src with
            | Some c ->
                interpret ctx
                  (Chain.on_msg chain ~from_:None
                     (Chain.Submit (Msg.Tx_abort { customer = c; payment })))
            | None -> ())
        | Msg.Chain_gossip m ->
            interpret ctx (Chain.on_msg chain ~from_:(validator_index src) m)
        | _ -> ());
    on_timer =
      (fun ctx ~label ->
        match
          int_of_string_opt
            (Option.value ~default:""
               (List.nth_opt (String.split_on_char '-' label) 2))
        with
        | Some round -> interpret ctx (Chain.on_round_timeout chain round)
        | None -> ());
  }

let tm_handlers (env : Env.t) cfg ~index =
  match cfg.tm with
  | Single -> single_tm_handlers env cfg
  | Shared _ ->
      (* no in-block TM process: the shared committee runs in a block of
         its own (see Traffic.Load) and [tm_pids] is empty, so this
         branch is unreachable; keep the match total *)
      E.silent
  | Chain _ -> chain_validator_handlers env cfg ~index
  | Committee _ | Quorum _ ->
      let fault =
        if Array.length cfg.notary_faults > index then
          cfg.notary_faults.(index)
        else Notary_honest
      in
      (match fault with
      | Notary_honest -> notary_handlers env cfg ~index
      | Notary_crash -> E.silent
      | Notary_equivocate -> equivocating_notary env cfg ~index)

let handlers_for (env : Env.t) cfg pid =
  let topo = env.Env.topo in
  match Topology.role_of topo pid with
  | Some Topology.Alice -> customer_handlers env cfg 0
  | Some Topology.Bob -> customer_handlers env cfg (Topology.hops topo)
  | Some (Topology.Connector i) -> customer_handlers env cfg i
  | Some (Topology.Escrow i) -> escrow_handlers env cfg i
  | _ ->
      let base = Topology.aux_base topo in
      let index = pid - base in
      if index >= 0 && index < Array.length (tm_pids env cfg) then
        tm_handlers env cfg ~index
      else invalid_arg "Weak_protocol.handlers_for: unknown pid"
