(** The chain topology of Figure 1: [c0 — e0 — c1 — e1 — … — c(n-1) — e(n-1) — cn].

    [n] escrows e{_0}…e{_{n-1}} and [n+1] customers c{_0}…c{_n}; c{_0} is
    Alice, c{_n} is Bob, and c{_1}…c{_{n-1}} are the connectors (Chloe{_i}).
    Customers c{_{i-1}} and c{_i} hold accounts at — and trust — escrow
    e{_{i-1}}; there are no other trust relations, and value moves only
    between customers of the same escrow.

    Engine pids are assigned customers-first: customer [i] has pid [i]
    (0 ≤ i ≤ n), escrow [i] has pid [n + 1 + i] (0 ≤ i < n). Auxiliary
    participants (transaction manager, notaries) get pids from
    [2n + 1] upward via {!aux_base}. *)

type t

type role =
  | Alice
  | Bob
  | Connector of int  (** [Connector i] is customer c{_i}, 0 < i < n *)
  | Escrow of int
  | Aux of int  (** TM, notaries, … — index from 0 *)

val create : hops:int -> t
(** [hops] = the number of escrows [n] ≥ 1. [hops = 1] is a direct payment
    Alice → e0 → Bob with no connectors. *)

val hops : t -> int
val customer : t -> int -> int
(** [customer t i] is the pid of c{_i}; [0 <= i <= hops]. *)

val escrow : t -> int -> int
(** [escrow t i] is the pid of e{_i}; [0 <= i < hops]. *)

val alice : t -> int
val bob : t -> int
val aux_base : t -> int
(** First pid available for auxiliary participants. *)

val role_of : t -> int -> role option
(** [None] for pids at or above {!aux_base} — callers track their own aux
    roles — unless registered via {!register_aux}. *)

val register_aux : t -> int -> unit
(** Declare pid [aux_base + k] in use, so {!role_of} reports [Aux k]. *)

val payment_count : t -> int
(** Number of payment pids = [2 * hops + 1]. *)

val customers : t -> int list
val escrows : t -> int list
val connectors : t -> int list

val escrow_of_customer_down : t -> int -> int option
(** The escrow where customer c{_i} {e pays} (e{_i}); [None] for Bob. *)

val escrow_of_customer_up : t -> int -> int option
(** The escrow where customer c{_i} {e gets paid} (e{_{i-1}}); [None] for
    Alice. *)

val customer_index : t -> int -> int option
(** Inverse of {!customer} on pids. *)

val escrow_index : t -> int -> int option
val pp_role : Format.formatter -> role -> unit
val pp : Format.formatter -> t -> unit
