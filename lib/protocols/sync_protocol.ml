open Anta
module A = Automaton
module E = Sim.Engine

let is_money amount = function
  | Msg.Money { amount = a } -> a = amount
  | _ -> false

(* e_i: issue G(d_i); take the deposit; issue P(a_i); then forward χ and pay
   downstream, or time out and refund. *)
let escrow_automaton (env : Env.t) i =
  let topo = env.topo in
  let self = Topology.escrow topo i in
  let cust_up = Topology.customer topo i in
  let cust_down = Topology.customer topo (i + 1) in
  let amount = Env.amount_at env i in
  let book = env.books.(i) in
  let a_i = env.params.Params.a.(i) in
  let d_i = env.params.Params.d.(i) in
  let signer = Env.signer_of env self in
  let deposit = ref None in
  let take_deposit ctx _store _msg =
    match Ledger.Book.deposit book ~from_:cust_up ~amount with
    | Ok dep ->
        deposit := Some dep;
        E.observe ctx
          (Obs.Deposited { escrow = self; depositor = cust_up; amount; deposit = dep })
    | Error e ->
        E.observe ctx
          (Obs.Rejected { pid = self; what = Fmt.str "deposit: %a" Ledger.Book.pp_error e })
  in
  let accept_chi ctx _store msg =
    (match msg with
    | Some (Msg.Chi sv) ->
        E.observe ctx
          (Obs.Cert_received { pid = self; kind = Obs.Chi; valid = Env.chi_ok env sv })
    | Some _ | None -> ())
  in
  let pay_down ctx _store =
    match !deposit with
    | Some dep -> (
        match Ledger.Book.release book dep ~to_:cust_down with
        | Ok () ->
            E.observe ctx
              (Obs.Released { escrow = self; deposit = dep; to_ = cust_down; amount })
        | Error e ->
            E.observe ctx
              (Obs.Rejected { pid = self; what = Fmt.str "release: %a" Ledger.Book.pp_error e }))
    | None ->
        E.observe ctx (Obs.Rejected { pid = self; what = "release: no deposit" })
  in
  let pay_back ctx _store =
    match !deposit with
    | Some dep -> (
        match Ledger.Book.refund book dep with
        | Ok () ->
            E.observe ctx
              (Obs.Refunded { escrow = self; deposit = dep; depositor = cust_up; amount })
        | Error e ->
            E.observe ctx
              (Obs.Rejected { pid = self; what = Fmt.str "refund: %a" Ledger.Book.pp_error e }))
    | None ->
        E.observe ctx (Obs.Rejected { pid = self; what = "refund: no deposit" })
  in
  let terminated outcome ctx _store =
    E.observe ctx (Obs.Terminated { pid = self; outcome })
  in
  A.make
    ~name:(Fmt.str "escrow%d" i)
    ~initial:"send_g"
    ~nodes:
      [
        ( "send_g",
          A.output ~to_:cust_up
            ~message:(fun _ _ ->
              Msg.Promise_g
                (Xcrypto.Auth.sign_value signer ~ser:Msg.ser_promise_g
                   { Msg.g_escrow = self; g_customer = cust_up; d = d_i }))
            ~next:"await_money" () );
        ( "await_money",
          A.input
            [
              A.on_receive ~from_:cust_up ~describe:"$" ~accept:(is_money amount)
                ~save_now:[ "u" ] ~act:take_deposit ~next:"send_p" ();
            ] );
        ( "send_p",
          A.output ~to_:cust_down
            ~message:(fun _ _ ->
              Msg.Promise_p
                (Xcrypto.Auth.sign_value signer ~ser:Msg.ser_promise_p
                   { Msg.p_escrow = self; p_customer = cust_down; a = a_i }))
            ~next:"await_chi" () );
        ( "await_chi",
          A.input
            [
              (* deadline first: at v = u + a_i the strict window is closed *)
              A.on_deadline ~base:"u" ~offset:a_i ~next:"refund" ();
              A.on_receive ~from_:cust_down ~describe:"χ"
                ~accept:(function Msg.Chi sv -> Env.chi_ok env sv | _ -> false)
                ~save_msg:"chi" ~act:accept_chi ~next:"fwd_chi" ();
            ] );
        ( "fwd_chi",
          A.output ~to_:cust_up
            ~message:(fun _ store -> Store.data store "chi")
            ~next:"pay_down" () );
        ( "pay_down",
          A.output ~to_:cust_down ~act:pay_down
            ~message:(fun _ _ -> Msg.Money { amount })
            ~next:"done_released" () );
        ( "refund",
          A.output ~to_:cust_up ~act:pay_back
            ~message:(fun _ _ -> Msg.Money { amount })
            ~next:"done_refunded" () );
        ("done_released", A.final ~act:(terminated "released") ());
        ("done_refunded", A.final ~act:(terminated "refunded") ());
      ]

let cert_received_note self env ctx msg =
  match msg with
  | Some (Msg.Chi sv) ->
      E.observe ctx
        (Obs.Cert_received { pid = self; kind = Obs.Chi; valid = Env.chi_ok env sv })
  | Some _ | None -> ()

(* Chloe_i, 0 < i < n. *)
let connector_automaton (env : Env.t) i =
  let topo = env.topo in
  if i <= 0 || i >= Topology.hops topo then
    invalid_arg "Sync_protocol.connector_automaton: not a connector index";
  let self = Topology.customer topo i in
  let e_down = Topology.escrow topo i in
  let e_up = Topology.escrow topo (i - 1) in
  let pay_amount = Env.amount_at env i in
  let recv_amount = Env.amount_at env (i - 1) in
  let terminated outcome ctx _store =
    E.observe ctx (Obs.Terminated { pid = self; outcome })
  in
  A.make
    ~name:(Fmt.str "chloe%d" i)
    ~initial:"await_g"
    ~nodes:
      [
        ( "await_g",
          A.input
            [
              A.on_receive ~from_:e_down ~describe:"G"
                ~accept:(function
                  | Msg.Promise_g sv -> Env.promise_g_ok env ~escrow_index:i sv
                  | _ -> false)
                ~next:"await_p" ();
            ] );
        ( "await_p",
          A.input
            [
              A.on_receive ~from_:e_up ~describe:"P"
                ~accept:(function
                  | Msg.Promise_p sv ->
                      Env.promise_p_ok env ~escrow_index:(i - 1) sv
                  | _ -> false)
                ~next:"send_money" ();
            ] );
        ( "send_money",
          A.output ~to_:e_down
            ~message:(fun _ _ -> Msg.Money { amount = pay_amount })
            ~next:"await_outcome" () );
        ( "await_outcome",
          A.input
            [
              A.on_receive ~from_:e_down ~describe:"$refund"
                ~accept:(is_money pay_amount) ~next:"done_refunded" ();
              A.on_receive ~from_:e_down ~describe:"χ"
                ~accept:(function Msg.Chi sv -> Env.chi_ok env sv | _ -> false)
                ~save_msg:"chi"
                ~act:(fun ctx _ m -> cert_received_note self env ctx m)
                ~next:"fwd_chi" ();
            ] );
        ( "fwd_chi",
          A.output ~to_:e_up
            ~message:(fun _ store -> Store.data store "chi")
            ~next:"await_payment" () );
        ( "await_payment",
          A.input
            [
              A.on_receive ~from_:e_up ~describe:"$"
                ~accept:(is_money recv_amount) ~next:"done_paid" ();
            ] );
        ("done_refunded", A.final ~act:(terminated "refunded") ());
        ("done_paid", A.final ~act:(terminated "paid") ());
      ]

let alice_automaton (env : Env.t) =
  let topo = env.topo in
  let self = Topology.alice topo in
  let e0 = Topology.escrow topo 0 in
  let amount = Env.amount_at env 0 in
  let terminated outcome ctx _store =
    E.observe ctx (Obs.Terminated { pid = self; outcome })
  in
  A.make ~name:"alice" ~initial:"await_g"
    ~nodes:
      [
        ( "await_g",
          A.input
            [
              A.on_receive ~from_:e0 ~describe:"G"
                ~accept:(function
                  | Msg.Promise_g sv -> Env.promise_g_ok env ~escrow_index:0 sv
                  | _ -> false)
                ~next:"send_money" ();
            ] );
        ( "send_money",
          A.output ~to_:e0
            ~message:(fun _ _ -> Msg.Money { amount })
            ~next:"await_outcome" () );
        ( "await_outcome",
          A.input
            [
              A.on_receive ~from_:e0 ~describe:"$refund" ~accept:(is_money amount)
                ~next:"done_refunded" ();
              A.on_receive ~from_:e0 ~describe:"χ"
                ~accept:(function Msg.Chi sv -> Env.chi_ok env sv | _ -> false)
                ~act:(fun ctx _ m -> cert_received_note self env ctx m)
                ~next:"done_certified" ();
            ] );
        ("done_refunded", A.final ~act:(terminated "refunded") ());
        ("done_certified", A.final ~act:(terminated "certified") ());
      ]

let bob_automaton (env : Env.t) =
  let topo = env.topo in
  let n = Topology.hops topo in
  let self = Topology.bob topo in
  let e_up = Topology.escrow topo (n - 1) in
  let recv_amount = Env.amount_at env (n - 1) in
  let terminated outcome ctx _store =
    E.observe ctx (Obs.Terminated { pid = self; outcome })
  in
  A.make ~name:"bob" ~initial:"await_p"
    ~nodes:
      [
        ( "await_p",
          A.input
            [
              A.on_receive ~from_:e_up ~describe:"P"
                ~accept:(function
                  | Msg.Promise_p sv ->
                      Env.promise_p_ok env ~escrow_index:(n - 1) sv
                  | _ -> false)
                ~next:"send_chi" ();
            ] );
        ( "send_chi",
          A.output ~to_:e_up
            ~act:(fun ctx _ ->
              E.observe ctx (Obs.Cert_issued { by = self; kind = Obs.Chi }))
            ~message:(fun _ _ -> Msg.Chi (Env.make_chi env))
            ~next:"await_money" () );
        ( "await_money",
          A.input
            [
              A.on_receive ~from_:e_up ~describe:"$" ~accept:(is_money recv_amount)
                ~next:"done_paid" ();
            ] );
        ("done_paid", A.final ~act:(terminated "paid") ());
      ]

let automaton_for env pid =
  let topo = env.Env.topo in
  match Topology.role_of topo pid with
  | Some Topology.Alice -> alice_automaton env
  | Some Topology.Bob -> bob_automaton env
  | Some (Topology.Connector i) -> connector_automaton env i
  | Some (Topology.Escrow i) -> escrow_automaton env i
  | Some (Topology.Aux _) | None ->
      invalid_arg "Sync_protocol.automaton_for: not a payment participant"

let check_all env =
  let topo = env.Env.topo in
  let pids = Topology.customers topo @ Topology.escrows topo in
  let rec go = function
    | [] -> Ok ()
    | pid :: rest -> (
        let auto = automaton_for env pid in
        match A.check auto with
        | Ok () -> go rest
        | Error errs ->
            Error
              (Fmt.str "automaton %s: %a" (A.name auto)
                 Fmt.(list ~sep:(any "; ") A.pp_check_error)
                 errs))
  in
  match go pids with
  | Error _ as e -> e
  | Ok () -> (
      (* per-automaton checks passed; now the channels must carry the
         conversation (no dangling sends, no deaf receivers) *)
      let network = List.map (fun pid -> (pid, automaton_for env pid)) pids in
      match Anta.Network_check.(errors (check network)) with
      | [] -> Ok ()
      | issues ->
          Error
            (Fmt.str "network wiring: %a"
               Fmt.(list ~sep:(any "; ") Anta.Network_check.pp_issue)
               issues))
