type promise_g = { g_escrow : int; g_customer : int; d : Sim.Sim_time.t }
type promise_p = { p_escrow : int; p_customer : int; a : Sim.Sim_time.t }
type chi_body = { x_payment : int; x_bob : int }
type funded_body = { f_escrow : int; f_payment : int; f_amount : int }
type decision_body = { dec_payment : int; dec_commit : bool }

type chain_tx =
  | Tx_funded of funded_body Xcrypto.Auth.signed
  | Tx_abort of { customer : int; payment : int }

type t =
  | Money of { amount : int }
  | Promise_g of promise_g Xcrypto.Auth.signed
  | Promise_p of promise_p Xcrypto.Auth.signed
  | Chi of chi_body Xcrypto.Auth.signed
  | Funded of funded_body Xcrypto.Auth.signed
  | Abort_req of { payment : int }
  | Tm_decision of decision_body Xcrypto.Auth.signed
  | Committee_decision of {
      commit : bool;
      cert : bool Consensus.Dls.decision_cert;
    }
  | Notary of bool Consensus.Dls.msg
  | Chain_gossip of chain_tx Consensus.Chain.msg
  | Htlc_setup of { lock : Xcrypto.Hashlock.lock; amount : int }
  | Htlc_claim of { preimage : Xcrypto.Hashlock.preimage }
  | Htlc_key of { preimage : Xcrypto.Hashlock.preimage }
  | Quorum_req of { item : int; req : quorum_req }
      (* a payment participant asks the shared committee for a verdict:
         one leg funded, or an abort request. Sent with absolute pids;
         content-trusted (the certificates flowing back are what carries
         cryptographic weight) *)
  | Quorum_msg of Quorum.Committee.msg
      (* intra-committee consensus traffic for one batching slot *)
  | Quorum_decision of {
      cert : Quorum.Committee.batch Consensus.Dls.decision_cert;
    }
      (* a batch certificate broadcast to every affected participant; each
         extracts its own item's verdict after verifying the signatures *)
  | Start
  | Traffic_done of { payment : int }
      (* load-scheduler control plane: a multiplexer wrapper reports that
         one participant of [payment] reached its terminal state *)

and quorum_req = Leg_funded of { escrow_index : int } | Abort_wanted

let tag = function
  | Money _ -> "money"
  | Promise_g _ -> "G"
  | Promise_p _ -> "P"
  | Chi _ -> "chi"
  | Funded _ -> "funded"
  | Abort_req _ -> "abort-req"
  | Tm_decision _ -> "decision"
  | Committee_decision _ -> "decision"
  | Notary (Consensus.Dls.Propose _) -> "notary:propose"
  | Notary (Consensus.Dls.Echo _) -> "notary:echo"
  | Notary (Consensus.Dls.Commit _) -> "notary:commit"
  | Notary (Consensus.Dls.New_round _) -> "notary:new-round"
  | Chain_gossip (Consensus.Chain.Submit _) -> "chain:submit"
  | Chain_gossip (Consensus.Chain.Announce _) -> "chain:block"
  | Htlc_setup _ -> "htlc-setup"
  | Htlc_claim _ -> "htlc-claim"
  | Htlc_key _ -> "htlc-key"
  | Quorum_req _ -> "quorum:req"
  | Quorum_msg m -> Quorum.Committee.tag_of_msg m
  | Quorum_decision _ -> "quorum:decision"
  | Start -> "start"
  | Traffic_done _ -> "traffic-done"

let pp ppf m =
  match m with
  | Money { amount } -> Fmt.pf ppf "$%d" amount
  | Promise_g sv ->
      let g = sv.Xcrypto.Auth.payload in
      Fmt.pf ppf "G(d=%a) e%d->c%d" Sim.Sim_time.pp g.d g.g_escrow g.g_customer
  | Promise_p sv ->
      let p = sv.Xcrypto.Auth.payload in
      Fmt.pf ppf "P(a=%a) e%d->c%d" Sim.Sim_time.pp p.a p.p_escrow p.p_customer
  | Chi sv ->
      let c = sv.Xcrypto.Auth.payload in
      Fmt.pf ppf "χ(pay=%d, bob=%d)" c.x_payment c.x_bob
  | Funded sv ->
      let f = sv.Xcrypto.Auth.payload in
      Fmt.pf ppf "funded(e=%d, %d)" f.f_escrow f.f_amount
  | Abort_req { payment } -> Fmt.pf ppf "abort-req(pay=%d)" payment
  | Tm_decision sv ->
      let d = sv.Xcrypto.Auth.payload in
      Fmt.pf ppf "%s(pay=%d)" (if d.dec_commit then "χc" else "χa") d.dec_payment
  | Committee_decision { commit; _ } ->
      Fmt.pf ppf "%s(committee)" (if commit then "χc" else "χa")
  | Notary _ | Chain_gossip _ -> Fmt.pf ppf "%s" (tag m)
  | Htlc_setup { lock; amount } ->
      Fmt.pf ppf "htlc-setup(%a, $%d)" Xcrypto.Hashlock.pp_lock lock amount
  | Htlc_claim _ -> Fmt.string ppf "htlc-claim"
  | Htlc_key _ -> Fmt.string ppf "htlc-key"
  | Quorum_req { item; req = Leg_funded { escrow_index } } ->
      Fmt.pf ppf "quorum-req(item=%d, leg=%d)" item escrow_index
  | Quorum_req { item; req = Abort_wanted } ->
      Fmt.pf ppf "quorum-req(item=%d, abort)" item
  | Quorum_msg m -> Quorum.Committee.pp_msg ppf m
  | Quorum_decision { cert } ->
      Fmt.pf ppf "quorum-decision(%d verdicts)"
        (List.length cert.Consensus.Dls.d_value)
  | Start -> Fmt.string ppf "start"
  | Traffic_done { payment } -> Fmt.pf ppf "traffic-done(pay=%d)" payment

let ser_promise_g g =
  Printf.sprintf "G|%d|%d|%s" g.g_escrow g.g_customer (Sim.Sim_time.to_string g.d)

let ser_promise_p p =
  Printf.sprintf "P|%d|%d|%s" p.p_escrow p.p_customer (Sim.Sim_time.to_string p.a)

let ser_chi c = Printf.sprintf "chi|%d|%d" c.x_payment c.x_bob

let ser_funded f =
  Printf.sprintf "funded|%d|%d|%d" f.f_escrow f.f_payment f.f_amount

let ser_decision d =
  Printf.sprintf "dec|%d|%b" d.dec_payment d.dec_commit

let ser_bool b = if b then "commit" else "abort"

let chain_tx_equal a b =
  match (a, b) with
  | Tx_funded x, Tx_funded y ->
      x.Xcrypto.Auth.payload.f_escrow = y.Xcrypto.Auth.payload.f_escrow
      && x.Xcrypto.Auth.payload.f_payment = y.Xcrypto.Auth.payload.f_payment
  | Tx_abort x, Tx_abort y ->
      x.customer = y.customer && x.payment = y.payment
  | _, _ -> false
