open Sim

type protocol =
  | Sync_timebound
  | Naive_universal
  | Htlc
  | Weak of Weak_protocol.config
  | Atomic of Atomic_protocol.config

let protocol_name = function
  | Sync_timebound -> "sync-timebound"
  | Naive_universal -> "naive-universal"
  | Htlc -> "htlc"
  | Weak { tm = Weak_protocol.Single; _ } -> "weak-single-tm"
  | Weak { tm = Weak_protocol.Committee { f }; _ } ->
      Printf.sprintf "weak-committee-f%d" f
  | Weak { tm = Weak_protocol.Quorum { qs }; _ } ->
      Printf.sprintf "weak-quorum-%s-n%d-f%d" (Quorum_system.family_name qs)
        (Quorum_system.size qs)
        (Quorum_system.fault_bound qs)
  | Weak { tm = Weak_protocol.Chain { validators }; _ } ->
      Printf.sprintf "weak-chain-m%d" validators
  | Weak { tm = Weak_protocol.Shared { pids; _ }; _ } ->
      Printf.sprintf "weak-shared-committee-%d" (Array.length pids)
  | Atomic _ -> "ilp-atomic"

type network =
  | Sync
  | Psync of { gst : Sim_time.t }
  | Async of { mean : Sim_time.t; cap : Sim_time.t }

type config = {
  hops : int;
  value : int;
  commission : int;
  delta : Sim_time.t;
  sigma : Sim_time.t;
  drift_ppm : int;
  margin : Sim_time.t;
  network : network;
  adversary : Network.adversary option;
  faults : (int * Byzantine.t) list;
  fault_plan : Faults.Fault_plan.t option;
  window_scale : (int * int) option;
  clock_override : (int -> Sim.Clock.t) option;
  causal : Obsv.Causal.t option;
  prof : Obsv.Prof.t option;
  monitor : Obsv.Monitor.t option;
  sampler : Obsv.Sampler.t option;
  recorder : Obsv.Recorder.t option;
  on_ready : (outcome -> unit) option;
  seed : int;
  horizon : Sim_time.t option;
  max_events : int;
}

and outcome = {
  config : config;
  protocol : protocol;
  env : Env.t;
  params : Params.t;
  engine : (Msg.t, Obs.t) Sim.Engine.t;
  status : Engine.status;
  trace : (Msg.t, Obs.t) Trace.t;
  end_time : Sim_time.t;
  message_count : int;
  events : int;
  fault_names : (int * string) list;
  tm_pids : int array;
  clocks : Sim.Clock.t array;
  paid_node : int;
  settled_node : int;
  injector : Faults.Injector.t option;
}

let default_config ~hops ~seed =
  {
    hops;
    value = 1000;
    commission = 10;
    delta = 100;
    sigma = 10;
    drift_ppm = 10_000;
    margin = 5;
    network = Sync;
    adversary = None;
    faults = [];
    fault_plan = None;
    window_scale = None;
    clock_override = None;
    causal = None;
    prof = None;
    monitor = None;
    sampler = None;
    recorder = None;
    on_ready = None;
    seed;
    horizon = None;
    max_events = 200_000;
  }

let derive_params cfg protocol =
  let drift =
    match protocol with Naive_universal -> 0 | _ -> cfg.drift_ppm
  in
  let params =
    Params.derive
      {
        Params.hops = cfg.hops;
        delta = cfg.delta;
        sigma = cfg.sigma;
        drift_ppm = drift;
        margin = cfg.margin;
      }
  in
  match cfg.window_scale with
  | None -> params
  | Some (num, den) -> Params.scale_windows params ~num ~den

let network_model cfg =
  match cfg.network with
  | Sync -> Network.Synchronous { delta = cfg.delta }
  | Psync { gst } -> Network.Partially_synchronous { gst; delta = cfg.delta }
  | Async { mean; cap } -> Network.Asynchronous { mean; cap }

let default_horizon cfg params =
  let base = Sim_time.scale params.Params.horizon ~num:10 ~den:1 in
  let net_slack =
    match cfg.network with
    | Sync -> Sim_time.zero
    | Psync { gst } -> Sim_time.scale gst ~num:4 ~den:1
    | Async { cap; _ } -> Sim_time.scale cap ~num:20 ~den:1
  in
  Sim_time.add (Sim_time.add base net_slack) 2_000_000

let validate_config cfg =
  let fail fmt = Fmt.kstr invalid_arg ("Runner.run: " ^^ fmt) in
  if cfg.hops < 1 then fail "hops must be >= 1 (got %d)" cfg.hops;
  if cfg.value <= 0 then fail "value must be positive (got %d)" cfg.value;
  if cfg.commission < 0 then
    fail "commission must be >= 0 (got %d)" cfg.commission;
  if Sim_time.(cfg.margin < zero) then
    fail "margin must be >= 0 (got %a)" Sim_time.pp cfg.margin;
  match cfg.network with
  | Psync { gst } when Sim_time.(gst < zero) ->
      fail "partially-synchronous GST must be >= 0 (got %a)" Sim_time.pp gst
  | _ -> ()

(* Build and execute the engine run; [run] below wraps this with the
   post-run telemetry pass. *)
let run_engine cfg protocol =
  validate_config cfg;
  let params = derive_params cfg protocol in
  let topo = Topology.create ~hops:cfg.hops in
  let env =
    Env.make ~topo ~params ~value:cfg.value ~commission:cfg.commission
      ~seed:(cfg.seed + 101) ()
  in
  let tm_pids =
    match protocol with
    | Weak wcfg -> Weak_protocol.tm_pids env wcfg
    | Atomic _ -> [| Atomic_protocol.tm_pid env |]
    | _ -> [||]
  in
  Array.iteri
    (fun k _ -> Topology.register_aux topo k)
    tm_pids;
  let nprocs = Topology.payment_count topo + Array.length tm_pids in
  let injector =
    match cfg.fault_plan with
    | None -> None
    | Some plan when Faults.Fault_plan.is_none plan -> None
    | Some plan -> (
        match Faults.Fault_plan.validate plan ~nprocs with
        | Error e -> invalid_arg ("Runner.run: bad fault plan: " ^ e)
        | Ok () ->
            Some (Faults.Injector.create ~plan ~seed:(cfg.seed + 47) ()))
  in
  let net_rng = Rng.create ~seed:(cfg.seed + 17) in
  let model =
    match injector with
    | None -> network_model cfg
    | Some inj -> Faults.Injector.jittered_model inj (network_model cfg)
  in
  let network =
    Network.create ?adversary:cfg.adversary
      ?tamper:(Option.map Faults.Injector.tamper injector)
      model net_rng
  in
  let engine =
    Engine.create ~tag_of:Msg.tag ~network ~sigma:cfg.sigma
      ?causal:cfg.causal ?prof:cfg.prof ?monitor:cfg.monitor
      ?sampler:cfg.sampler ?recorder:cfg.recorder ~seed:cfg.seed ()
  in
  (* blame anchors: the dispatch context under which Bob's payout was
     released (sink of the commit critical path) and Bob's termination *)
  let paid_node = ref (-1) and settled_node = ref (-1) in
  if Option.is_some cfg.causal then begin
    let bob = Topology.bob topo in
    Trace.on_record (Engine.trace engine) (fun entry ->
        match entry with
        | Trace.Observed { obs = Obs.Released { to_; _ }; _ }
          when to_ = cfg.hops && !paid_node < 0 ->
            paid_node := Engine.current_node engine
        | Trace.Observed { obs = Obs.Terminated { pid; _ }; _ }
          when pid = bob && !settled_node < 0 ->
            settled_node := Engine.current_node engine
        | _ -> ())
  end;
  let clock_rng = Rng.create ~seed:(cfg.seed + 31) in
  let honest pid =
    match protocol with
    | Sync_timebound | Naive_universal ->
        let auto = Sync_protocol.automaton_for env pid in
        fst (Anta.Executor.handlers auto ())
    | Htlc ->
        let preimage = Htlc_protocol.fresh_preimage ~seed:(cfg.seed + 57) in
        Htlc_protocol.handlers_for env
          (Htlc_protocol.default_config env)
          preimage pid
    | Weak wcfg -> Weak_protocol.handlers_for env wcfg pid
    | Atomic acfg -> Atomic_protocol.handlers_for env acfg pid
  in
  let fault_names =
    List.map (fun (pid, s) -> (pid, Byzantine.name s)) cfg.faults
  in
  (* Crashed participants are non-abiding: registering them here lets the
     conditional properties (CS1–CS3) go vacuous instead of blaming the
     protocol for a host we pulled the plug on. *)
  let fault_names =
    match injector with
    | None -> fault_names
    | Some inj ->
        List.fold_left
          (fun acc (c : Faults.Fault_plan.crash_spec) ->
            if List.mem_assoc c.pid acc then acc
            else
              acc
              @ [
                  ( c.pid,
                    match c.recover_at with
                    | None -> "crash-stop"
                    | Some _ -> "crash-recovery" );
                ])
          fault_names
          (Faults.Injector.plan inj).Faults.Fault_plan.crashes
  in
  for pid = 0 to nprocs - 1 do
    let handlers =
      match List.assoc_opt pid cfg.faults with
      | Some strategy -> Byzantine.handlers env ~tms:tm_pids ~pid strategy
      | None -> honest pid
    in
    let clock =
      match cfg.clock_override with
      | Some f -> f pid
      | None -> Clock.random clock_rng ~drift_ppm:cfg.drift_ppm
    in
    (* role class, not role_name: profiler labels stay low-cardinality
       constants ("chloe", not "chloe3") *)
    let label =
      match Topology.role_of topo pid with
      | Some Topology.Alice -> "alice"
      | Some Topology.Bob -> "bob"
      | Some (Topology.Connector _) -> "chloe"
      | Some (Topology.Escrow _) -> "escrow"
      | Some (Topology.Aux _) -> "tm"
      | None -> "proc"
    in
    let added = Engine.add_process engine ~clock ~label handlers in
    assert (added = pid)
  done;
  Option.iter
    (fun inj -> Faults.Injector.schedule_crashes inj engine)
    injector;
  let horizon =
    match cfg.horizon with
    | Some h -> h
    | None -> default_horizon cfg params
  in
  (* Everything the safety checks read — the env's books, the growing
     trace, the static fault names — exists before the run starts, so an
     [on_ready] hook can snapshot a provisional outcome and register
     online monitor checks / sampler probes over the {e live} state. The
     placeholder fields (status, end_time, counters) are exactly the ones
     no safety predicate consults. *)
  let provisional status =
    {
      config = cfg;
      protocol;
      env;
      params;
      engine;
      status;
      trace = Engine.trace engine;
      end_time = Engine.now engine;
      message_count = 0;
      events = Engine.events_processed engine;
      fault_names;
      tm_pids;
      clocks = [||];
      paid_node = !paid_node;
      settled_node = !settled_node;
      injector;
    }
  in
  (match cfg.on_ready with
  | None -> ()
  | Some f -> f (provisional Engine.Quiescent));
  let status = Engine.run ~horizon ~max_events:cfg.max_events engine in
  let trace = Engine.trace engine in
  {
    (provisional status) with
    trace;
    end_time = Engine.now engine;
    message_count = Trace.message_count trace;
    events = Engine.events_processed engine;
    clocks = Array.init nprocs (Engine.clock_of engine);
    paid_node = !paid_node;
    settled_node = !settled_node;
  }

(* ----------------------------- telemetry ------------------------------- *)

let role_name topo pid =
  match Topology.role_of topo pid with
  | Some Topology.Alice -> "alice"
  | Some Topology.Bob -> "bob"
  | Some (Topology.Connector i) -> Printf.sprintf "chloe%d" i
  | Some (Topology.Escrow i) -> Printf.sprintf "e%d" i
  | Some (Topology.Aux i) -> Printf.sprintf "tm%d" i
  | None -> Printf.sprintf "pid%d" pid

(* One root span per payment (init -> commit/abort), one child span per
   participant, and under each participant one span per protocol phase —
   the interval between consecutive observable state changes, keyed by the
   observation tag that opened it. All derived from the trace after the
   run, so instrumentation cannot perturb the schedule. *)
let emit_spans o ~terms ~committed ~settled_at =
  let spans = Obsv.Span.default in
  if Obsv.Span.capture spans then begin
    let topo = o.env.Env.topo in
    let root =
      Obsv.Span.start spans ~name:"payment"
        ~attrs:
          [
            ("protocol", protocol_name o.protocol);
            ("hops", string_of_int o.config.hops);
            ("seed", string_of_int o.config.seed);
          ]
        ~at:0 ()
    in
    let n = Array.length o.clocks in
    let obs_by_pid = Array.make n [] in
    List.iter
      (fun (t, pid, obs) ->
        if pid >= 0 && pid < n then
          obs_by_pid.(pid) <- (t, obs) :: obs_by_pid.(pid))
      (Trace.observations o.trace);
    for pid = 0 to n - 1 do
      let pspan =
        Obsv.Span.start spans ~parent:root
          ~name:("participant:" ^ role_name topo pid)
          ~at:0 ()
      in
      let t_prev = ref 0 and phase = ref "init" in
      List.iter
        (fun (t, obs) ->
          let ph =
            Obsv.Span.start spans ~parent:pspan ~name:("phase:" ^ !phase)
              ~at:!t_prev ()
          in
          Obsv.Span.finish ~at:t ph;
          t_prev := t;
          phase := Obs.tag obs)
        (List.rev obs_by_pid.(pid));
      match List.find_opt (fun (p, _, _) -> p = pid) terms with
      | Some (_, outcome, t) -> Obsv.Span.finish ~status:outcome ~at:t pspan
      | None -> Obsv.Span.finish ~status:"running" ~at:o.end_time pspan
    done;
    Obsv.Span.finish
      ~status:(if committed then "commit" else "abort")
      ~at:settled_at root
  end

let emit_telemetry o =
  let reg = Obsv.Metrics.default in
  let labels = [ ("protocol", protocol_name o.protocol) ] in
  let terms =
    List.filter_map
      (fun (t, _, obs) ->
        match obs with
        | Obs.Terminated { pid; outcome } -> Some (pid, outcome, t)
        | _ -> None)
      (Trace.observations o.trace)
  in
  let bob = Topology.bob o.env.Env.topo in
  let bob_term = List.find_opt (fun (pid, _, _) -> pid = bob) terms in
  let committed =
    match bob_term with Some (_, "paid", _) -> true | _ -> false
  in
  let settled_at =
    match bob_term with Some (_, _, t) -> t | None -> o.end_time
  in
  let started =
    Obsv.Metrics.counter reg ~help:"Payments started" ~labels
      "xchain_payments_started_total"
  and commits =
    Obsv.Metrics.counter reg ~help:"Payments where Bob was paid" ~labels
      "xchain_payments_committed_total"
  and aborts =
    Obsv.Metrics.counter reg
      ~help:"Payments settled without paying Bob" ~labels
      "xchain_payments_aborted_total"
  in
  Obsv.Metrics.inc started;
  Obsv.Metrics.inc (if committed then commits else aborts);
  Obsv.Metrics.observe
    (Obsv.Metrics.histogram reg ~labels
       ~help:"End-to-end payment latency (init to Bob's settlement), ticks"
       "xchain_payment_latency")
    settled_at;
  emit_spans o ~terms ~committed ~settled_at

let run cfg protocol =
  let o = run_engine cfg protocol in
  emit_telemetry o;
  o

let observations outcome = Trace.observations outcome.trace

let balance outcome ~escrow ~pid =
  Ledger.Book.balance outcome.env.Env.books.(escrow) pid

let terminated_pids outcome =
  List.filter_map
    (fun (t, _, obs) ->
      match obs with
      | Obs.Terminated { pid; outcome } -> Some (pid, outcome, t)
      | _ -> None)
    (observations outcome)
