(** Scenario assembly: wire a protocol, a network model, clocks, and faults
    into an engine run; return the trace and everything the property
    monitors need. *)

type protocol =
  | Sync_timebound
      (** Theorem 1's protocol, timeout windows derived with the actual
          drift bound *)
  | Naive_universal
      (** the same automata with drift-blind windows (derived at ρ = 0):
          the uncorrected Thomas–Schwartz universal protocol — E9's
          baseline *)
  | Htlc  (** the hashed-timelock chain baseline *)
  | Weak of Weak_protocol.config  (** Theorem 3's protocol *)
  | Atomic of Atomic_protocol.config
      (** the Interledger atomic protocol — safe but with no success
          guarantee (E11's baseline) *)

val protocol_name : protocol -> string

type network =
  | Sync  (** delays within [\[1, δ\]] *)
  | Psync of { gst : Sim.Sim_time.t }  (** partial synchrony with that GST *)
  | Async of { mean : Sim.Sim_time.t; cap : Sim.Sim_time.t }

type config = {
  hops : int;
  value : int;
  commission : int;
  delta : Sim.Sim_time.t;
  sigma : Sim.Sim_time.t;
  drift_ppm : int;  (** actual clock drift of every participant *)
  margin : Sim.Sim_time.t;
  network : network;
  adversary : Sim.Network.adversary option;
  faults : (int * Byzantine.t) list;  (** pid → strategy substitutions *)
  fault_plan : Faults.Fault_plan.t option;
      (** environment faults — lossy links, crash–recovery schedules,
          partitions, GST jitter — interpreted deterministically from
          [seed + 47]; crashed pids are registered as non-abiding in
          [outcome.fault_names]. [None] (the default): reliable channels,
          no crashes. *)
  window_scale : (int * int) option;
      (** scale the derived a/d windows by num/den — used by E2 to build
          timeout-candidate families; [None] = as derived *)
  clock_override : (int -> Sim.Clock.t) option;
      (** exact per-pid clocks instead of seed-randomized ones — used by
          the exhaustive corner explorer (E12) to pin every clock to an
          envelope extreme *)
  causal : Obsv.Causal.t option;
      (** arm happens-before recording in the engine (see
          {!Sim.Engine.create}); [None] (the default): zero cost. The
          outcome's [paid_node] / [settled_node] anchor {!Obsv.Blame}
          walks into the recorded graph. *)
  prof : Obsv.Prof.t option;
      (** arm the dispatch profiler (see {!Sim.Engine.create});
          processes are labeled by role class (alice / chloe / bob /
          escrow / tm). [None] (the default): zero cost. *)
  monitor : Obsv.Monitor.t option;
      (** arm online runtime verification (see {!Sim.Engine.create});
          checks are registered by the [on_ready] hook. [None] (the
          default): zero cost. *)
  sampler : Obsv.Sampler.t option;
      (** arm the sim-time telemetry sampler; the probe is installed by
          the [on_ready] hook. *)
  recorder : Obsv.Recorder.t option;
      (** arm the flight-recorder ring of recent engine events. *)
  on_ready : (outcome -> unit) option;
      (** called once, after the scenario is fully assembled and
          immediately before the engine runs, with a {e provisional}
          outcome: [env], [engine], [trace], [fault_names], [params],
          [injector] are live and final, while [status], [end_time] and
          the counters are placeholders. This is where harnesses register
          monitor checks and sampler probes over the live run state. *)
  seed : int;
  horizon : Sim.Sim_time.t option;  (** default: generous multiple of the
                                        derived parameter horizon *)
  max_events : int;
}

and outcome = {
  config : config;
  protocol : protocol;
  env : Env.t;
  params : Params.t;  (** the windows the run actually used *)
  engine : (Msg.t, Obs.t) Sim.Engine.t;
      (** the engine itself — live during [on_ready] (sampler probes read
          {!Sim.Engine.queue_depth} through it), stopped afterwards *)
  status : Sim.Engine.status;
  trace : (Msg.t, Obs.t) Sim.Trace.t;
  end_time : Sim.Sim_time.t;
  message_count : int;
  events : int;  (** engine events dequeued; deterministic per (seed, config) *)
  fault_names : (int * string) list;
  tm_pids : int array;  (** empty unless [Weak] *)
  clocks : Sim.Clock.t array;
      (** each participant's (drifting) local clock, for monitors that
          check promises stated in local time *)
  paid_node : int;
      (** causal node under which Bob's payout was released — the blame
          sink for a committed payment; [-1] when untraced or unpaid *)
  settled_node : int;
      (** causal node of Bob's termination; [-1] when untraced or Bob
          never terminated *)
  injector : Faults.Injector.t option;
      (** the fault-plan interpreter this run used, exposed for its
          per-clause activation counters ({!Faults.Injector.clause_hits});
          [None] when the config carried no (non-empty) plan *)
}

val default_config : hops:int -> seed:int -> config
(** value 1000, commission 10, δ 100, σ 10, drift 1%, margin 5, synchronous
    network, no adversary, no faults, 200_000 max events. *)

val run : config -> protocol -> outcome
(** Validates the config first — hops >= 1, value > 0, commission >= 0,
    margin >= 0, partially-synchronous GST >= 0, and any fault plan
    well-formed for the scenario's process count — raising
    [Invalid_argument] with a descriptive message otherwise.

    Executes the payment and, after the engine stops, records telemetry in
    the process-wide {!Obsv} registries: the
    [xchain_payments_started_total] / [_committed_total] / [_aborted_total]
    counters and the [xchain_payment_latency] histogram (all labeled
    [protocol="..."]), plus one root [payment] span with per-participant
    and per-phase children in {!Obsv.Span.default}. Span capture can be
    disabled via {!Obsv.Span.set_capture}; spans are derived from the
    trace post-run, so they never perturb the schedule. *)

val role_name : Topology.t -> int -> string
(** Stable lower-case participant name ("alice", "chloe1", "e0", "tm0"),
    as used in span names. *)

val derive_params : config -> protocol -> Params.t
(** The parameter vector [run] will use (drift-blind for
    {!Naive_universal}). *)

val observations : outcome -> (Sim.Sim_time.t * int * Obs.t) list
val balance : outcome -> escrow:int -> pid:int -> int
(** Final book balance. *)

val terminated_pids : outcome -> (int * string * Sim.Sim_time.t) list
(** [(pid, outcome-tag, time)] for every Terminated observation. *)
