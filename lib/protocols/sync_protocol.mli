(** The time-bounded cross-chain payment protocol of Theorem 1 / Figure 2.

    This is the Interledger "universal" protocol of Thomas & Schwartz,
    fine-tuned for clock drift via the {!Params} derivation, expressed as
    the paper's four automata (escrow e{_i}, Alice, Chloe{_i}, Bob) in the
    {!Anta} formalism. The automata are faithful to Figure 2:

    {v
    escrow e_i:  s(c_i, G(d_i)) ; r(c_i, $) ; s(c_{i+1}, P(a_i)), u := now ;
                 then either r(c_{i+1}, χ) ; s(c_i, χ) ; s(c_{i+1}, $)
                 or timeout now >= u + a_i ; s(c_i, $)
    Chloe_i:     r(e_i, G(d_i)) ; r(e_{i-1}, P(a_{i-1})) ; s(e_i, $) ;
                 then either r(e_i, $)            — refunded, done
                 or r(e_i, χ) ; s(e_{i-1}, χ) ; r(e_{i-1}, $)
    Alice = Chloe_0 without the upstream side;
    Bob:         r(e_{n-1}, P(a_{n-1})) ; s(e_{n-1}, χ) ; r(e_{n-1}, $)
    v}

    The $ message from customer to escrow is a payment instruction executed
    as a {!Ledger.Book.deposit}; the escrow's $ messages report a
    {!Ledger.Book.release} (downstream) or {!Ledger.Book.refund}
    (upstream). χ is accepted only if Bob's signature verifies and it
    arrives strictly inside the promise window ([v < u + a{_i}]: the
    deadline transition is armed first, so a tie resolves to refund,
    matching the strict inequality).

    Passing drift-blind parameters (derived with [drift_ppm = 0]) while the
    clocks actually drift yields exactly the {e naive} universal protocol —
    the E9 baseline; no separate implementation is needed (and one would be
    wrong: the point is that only the parameters differ). *)

val escrow_automaton : Env.t -> int -> (Msg.t, Obs.t) Anta.Automaton.t
(** [escrow_automaton env i] — the automaton for e{_i}. *)

val alice_automaton : Env.t -> (Msg.t, Obs.t) Anta.Automaton.t
val connector_automaton : Env.t -> int -> (Msg.t, Obs.t) Anta.Automaton.t
(** [connector_automaton env i] — Chloe{_i}, [0 < i < n]. *)

val bob_automaton : Env.t -> (Msg.t, Obs.t) Anta.Automaton.t

val automaton_for : Env.t -> int -> (Msg.t, Obs.t) Anta.Automaton.t
(** By pid, for every payment participant. *)

val check_all : Env.t -> (unit, string) result
(** Well-formedness (property C): every participant's automaton checks
    individually {e and} the network wiring carries the conversation
    ({!Anta.Network_check} finds no dangling sends or deaf receivers). *)
