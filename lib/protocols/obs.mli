(** Domain observations.

    Every protocol emits these into the trace as it acts; the property
    monitors (library [props]) are pure functions over them. They are the
    ground truth for the paper's safety and liveness properties: money
    movements come from ledger operations actually performed, certificate
    events from signature checks actually passed. *)

type cert_kind =
  | Chi  (** χ — Bob's payment certificate (Def. 1) *)
  | Chi_commit  (** χc — the transaction manager's commit certificate *)
  | Chi_abort  (** χa — the transaction manager's abort certificate *)

type t =
  | Deposited of { escrow : int; depositor : int; amount : int; deposit : int }
      (** the depositor's funds moved into the escrow pool *)
  | Released of { escrow : int; deposit : int; to_ : int; amount : int }
      (** a held deposit paid out downstream *)
  | Refunded of { escrow : int; deposit : int; depositor : int; amount : int }
  | Cert_issued of { by : int; kind : cert_kind }
      (** [by] signed and sent the certificate — for Bob (χ) this is the act
          CS2 constrains *)
  | Cert_received of { pid : int; kind : cert_kind; valid : bool }
      (** a certificate arrived and was verified ([valid] records the
          signature check's outcome) *)
  | Funded_reported of { escrow : int; amount : int }
      (** weak protocol: escrow told the TM its leg is funded *)
  | Abort_requested of { by : int }
      (** weak protocol: a customer lost patience *)
  | Decision_made of { by : int; commit : bool }
      (** weak protocol: the TM (or a notary) fixed the outcome *)
  | Terminated of { pid : int; outcome : string }
      (** the participant's protocol role completed; [outcome] is a short
          tag such as "paid", "refunded", "certified" *)
  | Rejected of { pid : int; what : string }
      (** an invalid operation or message was refused (forged signature,
          double resolution, insufficient funds, …) *)
  | Note of { pid : int; what : string }  (** free-form diagnostic *)

val tag : t -> string
(** Short constructor name, for filtering. *)

val pp : Format.formatter -> t -> unit
val pp_cert_kind : Format.formatter -> cert_kind -> unit
