open Sim
module E = Engine

type t =
  | Crash_at_start
  | Crash_after_receives of int
  | Mute
  | Thief_escrow
  | Premature_refund_escrow
  | No_resolve_escrow
  | Eager_chi_bob
  | Withhold_chi_bob
  | Forge_chi_connector
  | Double_money_customer
  | Impatient of Sim_time.t
  | Never_deposit
  | False_funded_escrow

let name = function
  | Crash_at_start -> "crash-at-start"
  | Crash_after_receives k -> Printf.sprintf "crash-after-%d" k
  | Mute -> "mute"
  | Thief_escrow -> "thief-escrow"
  | Premature_refund_escrow -> "premature-refund"
  | No_resolve_escrow -> "no-resolve"
  | Eager_chi_bob -> "eager-chi"
  | Withhold_chi_bob -> "withhold-chi"
  | Forge_chi_connector -> "forge-chi"
  | Double_money_customer -> "double-money"
  | Impatient p -> Printf.sprintf "impatient-%s" (Sim_time.to_string p)
  | Never_deposit -> "never-deposit"
  | False_funded_escrow -> "false-funded"

let applicable_to t (role : Topology.role) =
  match (t, role) with
  | (Crash_at_start | Crash_after_receives _ | Mute), _ -> true
  | ( (Thief_escrow | Premature_refund_escrow | No_resolve_escrow
      | False_funded_escrow),
      Topology.Escrow _ ) ->
      true
  | (Eager_chi_bob | Withhold_chi_bob), Topology.Bob -> true
  | Forge_chi_connector, (Topology.Connector _ | Topology.Bob) -> true
  | ( (Double_money_customer | Impatient _ | Never_deposit),
      (Topology.Alice | Topology.Connector _) ) ->
      true
  | (Impatient _ | Never_deposit), Topology.Bob -> true
  | _, _ -> false

let all =
  [
    Crash_at_start;
    Crash_after_receives 1;
    Mute;
    Thief_escrow;
    Premature_refund_escrow;
    No_resolve_escrow;
    Eager_chi_bob;
    Withhold_chi_bob;
    Forge_chi_connector;
    Double_money_customer;
    Impatient Sim_time.zero;
    Never_deposit;
    False_funded_escrow;
  ]

let crash_after k =
  let count = ref 0 in
  {
    E.on_start = (fun _ -> ());
    on_receive =
      (fun ctx ~src:_ _ ->
        incr count;
        if !count >= k then E.halt ctx);
    on_timer = (fun _ ~label:_ -> ());
  }

(* An escrow that plays the opening honestly (G, deposit) and then deviates
   via [after_deposit]. *)
let deviant_escrow (env : Env.t) i ~send_p ~after_deposit =
  let topo = env.Env.topo in
  let self = Topology.escrow topo i in
  let cust_up = Topology.customer topo i in
  let cust_down = Topology.customer topo (i + 1) in
  let amount = Env.amount_at env i in
  let book = env.Env.books.(i) in
  let signer = Env.signer_of env self in
  let d_i = env.Env.params.Params.d.(i) in
  let a_i = env.Env.params.Params.a.(i) in
  let deposit = ref None in
  {
    E.on_start =
      (fun ctx ->
        E.send ctx ~dst:cust_up
          (Msg.Promise_g
             (Xcrypto.Auth.sign_value signer ~ser:Msg.ser_promise_g
                { Msg.g_escrow = self; g_customer = cust_up; d = d_i })));
    on_receive =
      (fun ctx ~src msg ->
        match msg with
        | Msg.Money _ when src = cust_up && !deposit = None -> (
            match Ledger.Book.deposit book ~from_:cust_up ~amount with
            | Ok dep ->
                deposit := Some dep;
                E.observe ctx
                  (Obs.Deposited
                     { escrow = self; depositor = cust_up; amount; deposit = dep });
                if send_p then
                  E.send ctx ~dst:cust_down
                    (Msg.Promise_p
                       (Xcrypto.Auth.sign_value signer ~ser:Msg.ser_promise_p
                          { Msg.p_escrow = self; p_customer = cust_down; a = a_i }));
                after_deposit ctx ~book ~deposit:dep ~self ~cust_up ~cust_down
                  ~amount
            | Error e ->
                E.observe ctx
                  (Obs.Rejected
                     { pid = self; what = Fmt.str "deposit: %a" Ledger.Book.pp_error e }))
        | _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let thief_escrow env i =
  deviant_escrow env i ~send_p:false
    ~after_deposit:(fun ctx ~book ~deposit ~self ~cust_up:_ ~cust_down:_ ~amount ->
      match Ledger.Book.release book deposit ~to_:self with
      | Ok () ->
          E.observe ctx
            (Obs.Released { escrow = self; deposit; to_ = self; amount })
      | Error e ->
          E.observe ctx
            (Obs.Rejected
               { pid = self; what = Fmt.str "steal: %a" Ledger.Book.pp_error e }))

let premature_refund_escrow env i =
  deviant_escrow env i ~send_p:true
    ~after_deposit:(fun ctx ~book ~deposit ~self ~cust_up ~cust_down:_ ~amount ->
      match Ledger.Book.refund book deposit with
      | Ok () ->
          E.observe ctx
            (Obs.Refunded { escrow = self; deposit; depositor = cust_up; amount });
          E.send ctx ~dst:cust_up (Msg.Money { amount })
      | Error e ->
          E.observe ctx
            (Obs.Rejected
               { pid = self; what = Fmt.str "refund: %a" Ledger.Book.pp_error e }))

let no_resolve_escrow env i =
  deviant_escrow env i ~send_p:true
    ~after_deposit:(fun _ ~book:_ ~deposit:_ ~self:_ ~cust_up:_ ~cust_down:_ ~amount:_ -> ())

let eager_chi_bob (env : Env.t) =
  let topo = env.Env.topo in
  let self = Topology.bob topo in
  let e_up = Topology.escrow topo (Topology.hops topo - 1) in
  {
    E.on_start =
      (fun ctx ->
        E.observe ctx (Obs.Cert_issued { by = self; kind = Obs.Chi });
        E.send ctx ~dst:e_up (Msg.Chi (Env.make_chi env)));
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let forge_chi_connector (env : Env.t) pid =
  let topo = env.Env.topo in
  let i =
    match Topology.customer_index topo pid with
    | Some i -> i
    | None -> invalid_arg "forge_chi_connector: not a customer"
  in
  let e_up = Topology.escrow topo (i - 1) in
  let bob = Topology.bob topo in
  {
    E.on_start =
      (fun ctx ->
        let fake =
          Xcrypto.Auth.forge_value ~author:bob
            { Msg.x_payment = env.Env.payment; x_bob = bob }
        in
        E.send ctx ~dst:e_up (Msg.Chi fake));
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let double_money_customer (env : Env.t) pid =
  let topo = env.Env.topo in
  let i =
    match Topology.customer_index topo pid with
    | Some i -> i
    | None -> invalid_arg "double_money_customer: not a customer"
  in
  let e_down = Topology.escrow topo i in
  let amount = Env.amount_at env i in
  {
    E.on_start =
      (fun ctx ->
        E.send ctx ~dst:e_down (Msg.Money { amount });
        E.send ctx ~dst:e_down (Msg.Money { amount }));
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

(* Weak-protocol strategies: an impatient customer aborts unconditionally;
   a lying escrow reports a leg funded that never was. *)
let impatient_customer (env : Env.t) ~tms pid patience =
  {
    E.on_start =
      (fun ctx -> E.set_timer_after ctx ~after:patience ~label:"impatience");
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer =
      (fun ctx ~label ->
        if String.equal label "impatience" then begin
          E.observe ctx (Obs.Abort_requested { by = pid });
          Array.iter
            (fun tm ->
              E.send ctx ~dst:tm (Msg.Abort_req { payment = env.Env.payment }))
            tms
        end);
  }

let false_funded_escrow (env : Env.t) i ~tms =
  let topo = env.Env.topo in
  let self = Topology.escrow topo i in
  let amount = Env.amount_at env i in
  let signer = Env.signer_of env self in
  {
    E.on_start =
      (fun ctx ->
        E.observe ctx (Obs.Funded_reported { escrow = self; amount });
        let signed =
          Xcrypto.Auth.sign_value signer ~ser:Msg.ser_funded
            { Msg.f_escrow = self; f_payment = env.Env.payment; f_amount = amount }
        in
        Array.iter (fun tm -> E.send ctx ~dst:tm (Msg.Funded signed)) tms);
    on_receive = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ ~label:_ -> ());
  }

let handlers (env : Env.t) ?(tms = [||]) ~pid t =
  let topo = env.Env.topo in
  let role =
    match Topology.role_of topo pid with
    | Some r -> r
    | None -> invalid_arg "Byzantine.handlers: unknown pid"
  in
  if not (applicable_to t role) then
    invalid_arg
      (Fmt.str "Byzantine.handlers: %s not applicable to %a" (name t)
         Topology.pp_role role);
  let tms = if Array.length tms = 0 then [| Topology.aux_base topo |] else tms in
  match (t, role) with
  | Crash_at_start, _ -> E.silent
  | Crash_after_receives k, _ -> crash_after k
  | Mute, _ -> E.silent
  | Thief_escrow, Topology.Escrow i -> thief_escrow env i
  | Premature_refund_escrow, Topology.Escrow i -> premature_refund_escrow env i
  | No_resolve_escrow, Topology.Escrow i -> no_resolve_escrow env i
  | Eager_chi_bob, Topology.Bob -> eager_chi_bob env
  | Withhold_chi_bob, Topology.Bob -> E.silent
  | Forge_chi_connector, _ -> forge_chi_connector env pid
  | Double_money_customer, _ -> double_money_customer env pid
  | Impatient p, _ -> impatient_customer env ~tms pid p
  | Never_deposit, _ -> E.silent
  | False_funded_escrow, Topology.Escrow i -> false_funded_escrow env i ~tms
  | _, _ -> assert false
