(** Assets and multi-asset bags.

    The paper lets transferred values "be expressed in different currencies,
    or they may be objects". We model an asset as a (currency, amount) pair
    with integer amounts (smallest indivisible unit), and a {!bag} as a
    multiset of assets — the payoff accounting unit for cross-chain deals. *)

type t = { currency : string; amount : int }

val make : currency:string -> amount:int -> t
(** [amount] must be non-negative. *)

val zero : string -> t
val is_zero : t -> bool
val add : t -> t -> t
(** Same-currency addition; raises [Invalid_argument] on currency
    mismatch. *)

val sub : t -> t -> t
(** Same-currency subtraction; raises if the result would be negative. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** {1 Bags} *)

module Bag : sig
  type asset = t
  type t
  (** A finite map currency → non-negative amount. *)

  val empty : t
  val is_empty : t -> bool
  val of_list : asset list -> t
  val to_list : t -> asset list
  (** Sorted by currency; zero entries omitted. *)

  val add : t -> asset -> t
  val union : t -> t -> t

  val sub : t -> asset -> (t, string) result
  (** Fails (with a message) if the bag does not contain the asset. *)

  val diff : t -> t -> (t, string) result
  val contains : t -> asset -> bool
  val geq : t -> t -> bool
  (** Pointwise ≥ on every currency. *)

  val amount : t -> string -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
