type t = { currency : string; amount : int }

let make ~currency ~amount =
  if amount < 0 then invalid_arg "Asset.make: negative amount";
  { currency; amount }

let zero currency = { currency; amount = 0 }
let is_zero a = a.amount = 0

let check_same op a b =
  if not (String.equal a.currency b.currency) then
    invalid_arg
      (Printf.sprintf "Asset.%s: currency mismatch (%s vs %s)" op a.currency
         b.currency)

let add a b =
  check_same "add" a b;
  { a with amount = a.amount + b.amount }

let sub a b =
  check_same "sub" a b;
  if a.amount < b.amount then invalid_arg "Asset.sub: would go negative";
  { a with amount = a.amount - b.amount }

let equal a b = String.equal a.currency b.currency && a.amount = b.amount

let compare a b =
  let c = String.compare a.currency b.currency in
  if c <> 0 then c else Int.compare a.amount b.amount

let pp ppf a = Fmt.pf ppf "%d %s" a.amount a.currency

module Bag = struct
  type asset = t

  module M = Map.Make (String)

  type nonrec t = int M.t

  let empty = M.empty
  let is_empty b = M.for_all (fun _ v -> v = 0) b

  let add b (a : asset) =
    if a.amount = 0 then b
    else
      M.update a.currency
        (function None -> Some a.amount | Some v -> Some (v + a.amount))
        b

  let of_list l = List.fold_left add M.empty l

  let to_list b =
    M.bindings b
    |> List.filter_map (fun (currency, amount) ->
           if amount = 0 then None else Some { currency; amount })

  let union x y = M.union (fun _ a b -> Some (a + b)) x y
  let amount b c = match M.find_opt c b with None -> 0 | Some v -> v

  let sub b (a : asset) =
    let have = amount b a.currency in
    if have < a.amount then
      Error
        (Printf.sprintf "bag holds %d %s, cannot remove %d" have a.currency
           a.amount)
    else Ok (M.add a.currency (have - a.amount) b)

  let diff x y =
    M.fold
      (fun currency amount acc ->
        match acc with
        | Error _ as e -> e
        | Ok b -> sub b { currency; amount })
      y (Ok x)

  let contains b (a : asset) = amount b a.currency >= a.amount
  let geq x y = M.for_all (fun c v -> amount x c >= v) y

  let equal x y =
    M.for_all (fun c v -> amount y c = v) x
    && M.for_all (fun c v -> amount x c = v) y

  let pp ppf b =
    match to_list b with
    | [] -> Fmt.string ppf "∅"
    | l -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) l
end
