(** A single escrow's book of accounts.

    Each escrow e{_i} is, per the paper, "a bank or a blockchain smart
    contract" holding accounts for its two customers. A {!t} is that bank's
    single-currency book: customer balances plus an {e escrow pool} of
    deposits held pending resolution.

    The book enforces, by construction, the two accounting invariants that
    the paper's safety properties are stated in terms of:

    - {e conservation}: the sum of all balances plus the pool is constant
      across every operation ({!audit});
    - {e single resolution}: a deposit is released or refunded at most once.

    All operations are total and return [result] — an escrow that abides by
    the protocol never performs an invalid operation, and a Byzantine escrow
    that attempts one is recorded as rejected rather than corrupting the
    book. *)

type t
type deposit_id = int

type error =
  | Unknown_account of int
  | Insufficient_funds of { account : int; has : int; needs : int }
  | Unknown_deposit of deposit_id
  | Already_resolved of deposit_id

type deposit_status = Held | Released of int | Refunded

val create : currency:string -> t
val currency : t -> string

val open_account : t -> owner:int -> balance:int -> unit
(** Idempotent for the same owner only if balances match; re-opening with a
    different balance raises. *)

val has_account : t -> int -> bool
val balance : t -> int -> int
(** Balance of an account; 0 for unknown accounts. *)

val accounts : t -> (int * int) list
(** All [(owner, balance)] pairs, sorted by owner. *)

val transfer : t -> src:int -> dst:int -> amount:int -> (unit, error) result
(** Direct transfer between two customers of this escrow. *)

val deposit : t -> from_:int -> amount:int -> (deposit_id, error) result
(** Move [amount] from [from_]'s balance into the escrow pool. *)

val release : t -> deposit_id -> to_:int -> (unit, error) result
(** Pay a held deposit out to [to_] (completing the transfer). *)

val refund : t -> deposit_id -> (unit, error) result
(** Return a held deposit to its depositor. *)

val deposit_status : t -> deposit_id -> deposit_status option
val deposit_amount : t -> deposit_id -> int option
val pool_total : t -> int
(** Sum of all still-held deposits. *)

val total_supply : t -> int
(** Sum of balances plus pool — constant under every successful op. *)

val audit : t -> (unit, string) result
(** Re-checks conservation and non-negativity from the operation journal.
    Returns a diagnostic on the (never expected) failure. *)

val journal_length : t -> int

val pp_error : Format.formatter -> error -> unit
val pp : Format.formatter -> t -> unit
