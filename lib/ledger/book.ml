type deposit_id = int

type error =
  | Unknown_account of int
  | Insufficient_funds of { account : int; has : int; needs : int }
  | Unknown_deposit of deposit_id
  | Already_resolved of deposit_id

type deposit_status = Held | Released of int | Refunded

type deposit_rec = {
  depositor : int;
  amount : int;
  mutable status : deposit_status;
}

type op =
  | Op_open of int * int
  | Op_transfer of int * int * int
  | Op_deposit of deposit_id * int * int
  | Op_release of deposit_id * int
  | Op_refund of deposit_id

type t = {
  currency : string;
  balances : (int, int) Hashtbl.t;
  deposits : (deposit_id, deposit_rec) Hashtbl.t;
  mutable next_deposit : deposit_id;
  mutable journal : op list; (* newest first *)
  mutable initial_supply : int;
}

let create ~currency =
  {
    currency;
    balances = Hashtbl.create 8;
    deposits = Hashtbl.create 8;
    next_deposit = 0;
    journal = [];
    initial_supply = 0;
  }

let currency t = t.currency

let open_account t ~owner ~balance =
  if balance < 0 then invalid_arg "Book.open_account: negative balance";
  match Hashtbl.find_opt t.balances owner with
  | Some b when b = balance -> ()
  | Some _ -> invalid_arg "Book.open_account: account exists with other balance"
  | None ->
      Hashtbl.add t.balances owner balance;
      t.initial_supply <- t.initial_supply + balance;
      t.journal <- Op_open (owner, balance) :: t.journal

let has_account t owner = Hashtbl.mem t.balances owner
let balance t owner = Option.value ~default:0 (Hashtbl.find_opt t.balances owner)

let accounts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.balances []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let debit t account amount =
  match Hashtbl.find_opt t.balances account with
  | None -> Error (Unknown_account account)
  | Some has ->
      if has < amount then Error (Insufficient_funds { account; has; needs = amount })
      else begin
        Hashtbl.replace t.balances account (has - amount);
        Ok ()
      end

let credit t account amount =
  match Hashtbl.find_opt t.balances account with
  | None -> Error (Unknown_account account)
  | Some has ->
      Hashtbl.replace t.balances account (has + amount);
      Ok ()

let transfer t ~src ~dst ~amount =
  if amount < 0 then invalid_arg "Book.transfer: negative amount";
  if not (has_account t dst) then Error (Unknown_account dst)
  else
    match debit t src amount with
    | Error _ as e -> e
    | Ok () ->
        (match credit t dst amount with Ok () -> () | Error _ -> assert false);
        t.journal <- Op_transfer (src, dst, amount) :: t.journal;
        Ok ()

let deposit t ~from_ ~amount =
  if amount < 0 then invalid_arg "Book.deposit: negative amount";
  match debit t from_ amount with
  | Error e -> Error e
  | Ok () ->
      let id = t.next_deposit in
      t.next_deposit <- id + 1;
      Hashtbl.add t.deposits id { depositor = from_; amount; status = Held };
      t.journal <- Op_deposit (id, from_, amount) :: t.journal;
      Ok id

let resolve t id ~into =
  match Hashtbl.find_opt t.deposits id with
  | None -> Error (Unknown_deposit id)
  | Some d -> (
      match d.status with
      | Released _ | Refunded -> Error (Already_resolved id)
      | Held -> (
          match credit t into d.amount with
          | Error _ as e -> e
          | Ok () -> Ok d))

let release t id ~to_ =
  if not (has_account t to_) then Error (Unknown_account to_)
  else
    match resolve t id ~into:to_ with
    | Error e -> Error e
    | Ok d ->
        d.status <- Released to_;
        t.journal <- Op_release (id, to_) :: t.journal;
        Ok ()

let refund t id =
  match Hashtbl.find_opt t.deposits id with
  | None -> Error (Unknown_deposit id)
  | Some d -> (
      match resolve t id ~into:d.depositor with
      | Error e -> Error e
      | Ok d ->
          d.status <- Refunded;
          t.journal <- Op_refund id :: t.journal;
          Ok ())

let deposit_status t id =
  Option.map (fun d -> d.status) (Hashtbl.find_opt t.deposits id)

let deposit_amount t id =
  Option.map (fun d -> d.amount) (Hashtbl.find_opt t.deposits id)

let pool_total t =
  Hashtbl.fold
    (fun _ d acc -> match d.status with Held -> acc + d.amount | _ -> acc)
    t.deposits 0

let total_supply t =
  Hashtbl.fold (fun _ b acc -> acc + b) t.balances 0 + pool_total t

let audit t =
  let neg =
    Hashtbl.fold (fun k b acc -> if b < 0 then k :: acc else acc) t.balances []
  in
  if neg <> [] then
    Error
      (Fmt.str "negative balances for accounts %a" Fmt.(list ~sep:comma int) neg)
  else if total_supply t <> t.initial_supply then
    Error
      (Fmt.str "conservation violated: supply %d, initially %d" (total_supply t)
         t.initial_supply)
  else Ok ()

let journal_length t = List.length t.journal

let pp_error ppf = function
  | Unknown_account a -> Fmt.pf ppf "unknown account %d" a
  | Insufficient_funds { account; has; needs } ->
      Fmt.pf ppf "account %d has %d, needs %d" account has needs
  | Unknown_deposit d -> Fmt.pf ppf "unknown deposit %d" d
  | Already_resolved d -> Fmt.pf ppf "deposit %d already resolved" d

let pp ppf t =
  Fmt.pf ppf "@[<v>book (%s): %a; pool=%d@]" t.currency
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") int int))
    (accounts t) (pool_total t)
