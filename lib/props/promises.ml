open Protocols
module ST = Sim.Sim_time

type breach = { escrow : int; promise : string; detail : string }

let pp_breach ppf b =
  Fmt.pf ppf "escrow %d broke %s: %s" b.escrow b.promise b.detail

(* Local reading of a global trace timestamp on a participant's clock. *)
let local v pid g =
  Sim.Clock.local_of_global v.Payment_props.outcome.Runner.clocks.(pid) g

let entries v = Sim.Trace.to_list v.Payment_props.outcome.Runner.trace

(* First Sent entry from [src] to [dst] at or after global time [from_] that
   satisfies [pred]. *)
let first_send v ~src ~dst ~from_ pred =
  List.find_map
    (function
      | Sim.Trace.Sent { t; src = s; dst = d; msg; _ }
        when s = src && d = dst && ST.(t >= from_) && pred msg ->
          Some t
      | _ -> None)
    (entries v)

let check_g v ~escrow ~cust_up acc =
  (* the promise actually issued *)
  let promised_d =
    List.find_map
      (function
        | Sim.Trace.Sent { src; dst; msg = Msg.Promise_g sv; _ }
          when src = escrow && dst = cust_up ->
            Some sv.Xcrypto.Auth.payload.Msg.d
        | _ -> None)
      (entries v)
  in
  match promised_d with
  | None -> acc (* no promise, nothing to honour *)
  | Some d -> (
      (* the trigger: $ delivered from the customer *)
      let money_at =
        List.find_map
          (function
            | Sim.Trace.Delivered { t; src; dst; msg = Msg.Money _; _ }
              when src = cust_up && dst = escrow ->
                Some t
            | _ -> None)
          (entries v)
      in
      match money_at with
      | None -> acc
      | Some gw -> (
          let w = local v escrow gw in
          let reply =
            first_send v ~src:escrow ~dst:cust_up ~from_:gw (function
              | Msg.Money _ | Msg.Chi _ -> true
              | _ -> false)
          in
          match reply with
          | Some gs when ST.(local v escrow gs <= ST.add w d) -> acc
          | Some gs ->
              {
                escrow;
                promise = "G";
                detail =
                  Fmt.str "replied at local %a, promised by %a"
                    ST.pp (local v escrow gs) ST.pp (ST.add w d);
              }
              :: acc
          | None ->
              {
                escrow;
                promise = "G";
                detail =
                  Fmt.str "never replied to the $ received at local %a (d=%a)"
                    ST.pp w ST.pp d;
              }
              :: acc))

let check_p v ~escrow ~cust_down ~epsilon acc =
  let promised_a =
    List.find_map
      (function
        | Sim.Trace.Sent { t; src; dst; msg = Msg.Promise_p sv; _ }
          when src = escrow && dst = cust_down ->
            Some (t, sv.Xcrypto.Auth.payload.Msg.a)
        | _ -> None)
      (entries v)
  in
  match promised_a with
  | None -> acc
  | Some (g_issue, a) -> (
      let u = local v escrow g_issue in
      (* the trigger: a valid χ delivered inside the window *)
      let env = v.Payment_props.outcome.Runner.env in
      let chi_at =
        List.find_map
          (function
            | Sim.Trace.Delivered { t; src; dst; msg = Msg.Chi sv; _ }
              when src = cust_down && dst = escrow && Env.chi_ok env sv ->
                Some t
            | _ -> None)
          (entries v)
      in
      match chi_at with
      | None -> acc
      | Some gv ->
          let vt = local v escrow gv in
          if ST.(vt >= ST.add u a) then acc (* outside the window: no duty *)
          else
            let payout =
              first_send v ~src:escrow ~dst:cust_down ~from_:gv (function
                | Msg.Money _ -> true
                | _ -> false)
            in
            (match payout with
            | Some gs when ST.(local v escrow gs <= ST.add vt epsilon) -> acc
            | Some gs ->
                {
                  escrow;
                  promise = "P";
                  detail =
                    Fmt.str "paid at local %a, promised by %a"
                      ST.pp (local v escrow gs) ST.pp (ST.add vt epsilon);
                }
                :: acc
            | None ->
                {
                  escrow;
                  promise = "P";
                  detail =
                    Fmt.str
                      "accepted χ at local %a inside its window (a=%a) and \
                       never paid"
                      ST.pp vt ST.pp a;
                }
                :: acc))

let breaches v =
  let outcome = v.Payment_props.outcome in
  let topo = outcome.Runner.env.Env.topo in
  let epsilon = outcome.Runner.params.Params.epsilon in
  List.fold_left
    (fun acc epid ->
      let i = Option.get (Topology.escrow_index topo epid) in
      let cust_up = Topology.customer topo i in
      let cust_down = Topology.customer topo (i + 1) in
      acc
      |> check_g v ~escrow:epid ~cust_up
      |> check_p v ~escrow:epid ~cust_down ~epsilon)
    [] (Topology.escrows topo)
  |> List.rev

let check_promises v =
  let honest_breaches =
    List.filter (fun b -> not (v.Payment_props.byzantine b.escrow)) (breaches v)
  in
  match honest_breaches with
  | [] -> Verdict.ok "PR" "every honest escrow honoured its promises"
  | b :: _ -> Verdict.violated "PR" (Fmt.str "%a" pp_breach b)
