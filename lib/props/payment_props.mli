(** Monitors for the cross-chain payment properties of Definitions 1 and 2.

    All checks are pure functions of a {!Protocols.Runner.outcome} (trace +
    final ledgers + fault roster). Conditional properties ("provided her
    escrows abide…") become {e inapplicable} rather than failing when their
    hypotheses are not met, mirroring the paper's statements exactly.

    The money accounting uses each customer's {e net position}: the sum,
    over the escrows where she holds accounts, of (final − initial)
    balance. A refunded payer nets 0; a paid-through connector nets her
    commission; Alice nets −amounts₀ exactly when her payment went through.

    "Upon termination" clauses bind at the participant's [Terminated]
    observation; a participant that never terminates is caught by T, not by
    CS — as in the paper, where CS constrains terminal states and T
    guarantees reaching one. *)

type run_view = {
  outcome : Protocols.Runner.outcome;
  byzantine : int -> bool;  (** pid was fault-substituted *)
  terminated : int -> (Sim.Sim_time.t * string) option;
  net : int -> int;  (** customer net position, see above *)
}

val view : Protocols.Runner.outcome -> run_view

(** {1 Definition 1 — (time-bounded / eventually terminating) protocol} *)

val check_c : run_view -> Verdict.t
(** Consistency: automata well-formedness plus no honest participant had an
    own-action rejected at runtime. *)

val check_t : time_bounded:bool -> run_view -> Verdict.t
(** Termination for every honest customer whose escrows abide and who made
    a payment or issued a certificate. With [time_bounded], termination
    must occur by the derived horizon (global time — the a-priori known
    period). *)

val check_es : run_view -> Verdict.t
(** No honest escrow lost money: its own account did not go negative, its
    book audits (conservation + single resolution). *)

val check_cs1 : run_view -> Verdict.t
val check_cs2 : run_view -> Verdict.t
val check_cs3 : run_view -> Verdict.t

val check_l : run_view -> Verdict.t
(** Strong liveness: with no faults at all, Bob was paid. *)

val check_def1 : time_bounded:bool -> run_view -> Verdict.report
(** All of the above, in order C, T, ES, CS1, CS2, CS3, L. *)

(** {1 Definition 2 — weak liveness guarantees} *)

val check_cc : run_view -> Verdict.t
(** Certificate consistency: commit and abort certificates never both
    issued (by any TM participant). *)

val check_t_weak : run_view -> Verdict.t
(** Eventual termination of honest customers whose escrows abide (under a
    correct TM). *)

val check_cs1_weak : run_view -> Verdict.t
(** Alice: money back or χc received. *)

val check_cs2_weak : run_view -> Verdict.t
(** Bob: money or χa received. *)

val check_l_weak : patience_sufficient:bool -> run_view -> Verdict.t
(** Weak liveness: applicable only when all abide {e and} the run's
    patience was declared sufficient by the experiment; then Bob must have
    been paid. *)

val check_def2 : patience_sufficient:bool -> run_view -> Verdict.report
(** C, CC, T, ES, CS1w, CS2w, CS3, Lw. *)

(** {1 Helpers for experiments} *)

val bob_paid : run_view -> bool
val alice_has_chi : run_view -> bool
val money_conserved : run_view -> bool
(** Global conservation across all books. *)

val lock_time : run_view -> Sim.Sim_time.t
(** Total time deposits spent unresolved, summed over escrows — the
    griefing-exposure metric of E5. *)
